#!/bin/sh
# check_pkgdocs.sh — CI gate: every package must carry a package doc comment
# ("// Package <name> ..." for libraries, "// Command <name> ..." for mains)
# so godoc explains which part of the paper each layer reproduces.
set -eu

fail=0
for dir in internal/*/ cmd/*/; do
    name=$(basename "$dir")
    if ! grep -rql --include='*.go' -E "^// (Package|Command) $name" "$dir"; then
        echo "undocumented package: $dir (no '// Package $name' doc comment)"
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "package doc gate failed — add godoc comments citing the paper section (see ARCHITECTURE.md)"
    exit 1
fi
echo "package doc gate: all packages documented"
