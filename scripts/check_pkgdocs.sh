#!/bin/sh
# check_pkgdocs.sh — CI docs gate.
#
# 1. Every package must carry a package doc comment ("// Package <name> ..."
#    for libraries, "// Command <name> ..." for mains) so godoc explains
#    which part of the paper each layer reproduces.
# 2. Every relative inter-document link in the repo's *.md files must
#    resolve to an existing file, so the doc set (README, ARCHITECTURE,
#    DESIGN, FRAGMENTATION, EXPERIMENTS, ...) never drifts into dead links.
set -eu

fail=0
for dir in internal/*/ cmd/*/; do
    name=$(basename "$dir")
    if ! grep -rql --include='*.go' -E "^// (Package|Command) $name" "$dir"; then
        echo "undocumented package: $dir (no '// Package $name' doc comment)"
        fail=1
    fi
done

# Markdown link gate: extract [text](target) targets, keep relative ones
# (skip http(s)/mailto and pure #anchors), strip any #fragment, and require
# the file to exist relative to the linking document.
for md in *.md; do
    [ -f "$md" ] || continue
    links=$(grep -o '\[[^]]*\]([^)]*)' "$md" | sed 's/.*](\([^)]*\))/\1/') || true
    for target in $links; do
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path=${target%%#*}
        [ -n "$path" ] || continue
        if [ ! -e "$(dirname "$md")/$path" ]; then
            echo "dead markdown link: $md -> $target"
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "docs gate failed — fix godoc comments / markdown links (see ARCHITECTURE.md)"
    exit 1
fi
echo "docs gate: all packages documented, all markdown links resolve"
