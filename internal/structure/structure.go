// Package structure models molecular systems — atoms, residues, proteins,
// and water boxes — and provides the synthetic structure generators that
// stand in for the paper's SARS-CoV-2 spike protein (PDB 7DF3) and its
// 101,299,008-atom explicit water box (§VI-A). The generators reproduce the
// statistical properties that drive the paper's algorithms: residue/fragment
// size distributions, covalent topology, and solvent pair densities.
package structure

import (
	"fmt"

	"qframan/internal/constants"
	"qframan/internal/geom"
)

// Atom is a single atom with positions in ångströms.
type Atom struct {
	El   constants.Element
	Pos  geom.Vec3
	Name string // PDB-style atom name, e.g. "CA", "HB1", "OW"
}

// Residue is a contiguous run of atoms in a System: either an amino-acid
// residue of a protein chain or a single water molecule.
type Residue struct {
	Name  string // three-letter amino-acid code, or "HOH" for water
	First int    // index of the first atom in System.Atoms
	Count int    // number of atoms
	// Chain identifies the protein chain the residue belongs to; the
	// paper's spike protein is a trimer, and peptide-bond cutting operates
	// per chain.
	Chain int

	// Backbone atom indices (absolute into System.Atoms); −1 for water.
	N, CA, C, O int
}

// IsWater reports whether the residue is a water molecule.
func (r Residue) IsWater() bool { return r.Name == "HOH" }

// System is a molecular system: an optional protein chain (Residues, in
// chain order), any number of water molecules, and any number of generic
// non-protein molecules (ligands, polymers, …) that only the graph
// partitioner can fragment.
type System struct {
	Atoms    []Atom
	Residues []Residue // protein residues in chain order
	Waters   []Residue
	// Molecules holds generic molecules: contiguous atom runs with no
	// backbone annotation (N/CA/C/O are −1). The QF partitioner rejects
	// systems containing them; the graph partitioner infers their covalent
	// topology from geometry (see FRAGMENTATION.md).
	Molecules []Residue
}

// NumAtoms returns the total atom count.
func (s *System) NumAtoms() int { return len(s.Atoms) }

// AtomRange returns the atom index range [first, first+count) of a residue.
func (s *System) AtomRange(r Residue) (int, int) { return r.First, r.First + r.Count }

// Positions returns a copy of all atom positions.
func (s *System) Positions() []geom.Vec3 {
	out := make([]geom.Vec3, len(s.Atoms))
	for i, a := range s.Atoms {
		out[i] = a.Pos
	}
	return out
}

// Masses returns per-atom masses in amu.
func (s *System) Masses() []float64 {
	out := make([]float64, len(s.Atoms))
	for i, a := range s.Atoms {
		out[i] = a.El.MassAMU()
	}
	return out
}

// bondScale is the covalent-bond detection tolerance: two atoms are bonded
// when their distance is below bondScale·(rᵢ+rⱼ) with r the covalent radii.
const bondScale = 1.30

// maxBondLength bounds the neighbor search; generous for S–S.
const maxBondLength = 2.8

// Bonds returns the covalent bond list as unordered index pairs (i<j),
// detected from covalent radii with a cell-list search.
func (s *System) Bonds() [][2]int {
	positions := s.Positions()
	cl := geom.NewCellList(positions, maxBondLength)
	var bonds [][2]int
	cl.ForEachPair(func(i, j int, d2 float64) {
		ri := s.Atoms[i].El.CovalentRadius()
		rj := s.Atoms[j].El.CovalentRadius()
		limit := bondScale * (ri + rj)
		if d2 <= limit*limit {
			bonds = append(bonds, [2]int{i, j})
		}
	})
	return bonds
}

// SubsetBonds detects covalent bonds among an explicit atom set (positions in
// Å, elements parallel). The fragment engine uses this on extracted
// fragments, whose atoms no longer live in a System.
func SubsetBonds(els []constants.Element, pos []geom.Vec3) [][2]int {
	cl := geom.NewCellList(pos, maxBondLength)
	var bonds [][2]int
	cl.ForEachPair(func(i, j int, d2 float64) {
		limit := bondScale * (els[i].CovalentRadius() + els[j].CovalentRadius())
		if d2 <= limit*limit {
			bonds = append(bonds, [2]int{i, j})
		}
	})
	return bonds
}

// Validate performs internal-consistency checks: residues must reference
// valid contiguous atom ranges and backbone indices must point at the right
// elements. It returns the first problem found, or nil.
func (s *System) Validate() error {
	check := func(r Residue, what string) error {
		if r.First < 0 || r.Count <= 0 || r.First+r.Count > len(s.Atoms) {
			return fmt.Errorf("structure: %s %q has invalid atom range [%d,%d)", what, r.Name, r.First, r.First+r.Count)
		}
		if r.IsWater() {
			return nil
		}
		for _, spec := range []struct {
			idx  int
			el   constants.Element
			name string
		}{{r.N, constants.N, "N"}, {r.CA, constants.C, "CA"}, {r.C, constants.C, "C"}, {r.O, constants.O, "O"}} {
			if spec.idx < r.First || spec.idx >= r.First+r.Count {
				return fmt.Errorf("structure: %s %q backbone %s index %d outside range", what, r.Name, spec.name, spec.idx)
			}
			if s.Atoms[spec.idx].El != spec.el {
				return fmt.Errorf("structure: %s %q backbone %s has element %v", what, r.Name, spec.name, s.Atoms[spec.idx].El)
			}
		}
		return nil
	}
	for _, r := range s.Residues {
		if r.IsWater() {
			return fmt.Errorf("structure: water residue in protein chain")
		}
		if err := check(r, "residue"); err != nil {
			return err
		}
	}
	for _, w := range s.Waters {
		if !w.IsWater() {
			return fmt.Errorf("structure: non-water residue %q in Waters", w.Name)
		}
		if err := check(w, "water"); err != nil {
			return err
		}
		if w.Count != 3 {
			return fmt.Errorf("structure: water with %d atoms", w.Count)
		}
	}
	for _, m := range s.Molecules {
		if m.IsWater() {
			return fmt.Errorf("structure: water residue in Molecules")
		}
		if IsAminoAcidName(m.Name) {
			return fmt.Errorf("structure: amino-acid residue %q in Molecules", m.Name)
		}
		if m.First < 0 || m.Count <= 0 || m.First+m.Count > len(s.Atoms) {
			return fmt.Errorf("structure: molecule %q has invalid atom range [%d,%d)", m.Name, m.First, m.First+m.Count)
		}
	}
	return nil
}

// Merge appends other's atoms, residues, and waters into s, offsetting all
// indices. Used to solvate a protein with a water box.
func (s *System) Merge(other *System) {
	off := len(s.Atoms)
	s.Atoms = append(s.Atoms, other.Atoms...)
	shift := func(r Residue) Residue {
		r.First += off
		for _, idx := range []*int{&r.N, &r.CA, &r.C, &r.O} {
			if *idx >= 0 {
				*idx += off
			}
		}
		return r
	}
	for _, r := range other.Residues {
		s.Residues = append(s.Residues, shift(r))
	}
	for _, w := range other.Waters {
		s.Waters = append(s.Waters, shift(w))
	}
	for _, m := range other.Molecules {
		s.Molecules = append(s.Molecules, shift(m))
	}
}
