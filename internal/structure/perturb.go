package structure

import (
	"math/rand"

	"qframan/internal/constants"
	"qframan/internal/geom"
)

// PerturbOptions configures the synthetic MD-like frame generator.
type PerturbOptions struct {
	// Frames is the number of frames to produce, including the unperturbed
	// frame 0.
	Frames int
	// MoveFrac is the fraction of molecules whose atoms receive independent
	// per-atom jitter on each frame after the first — the fragments whose
	// content fingerprints genuinely change.
	MoveFrac float64
	// Jitter is the per-axis amplitude (Å) of the uniform per-atom jitter.
	// Keep it well under the covalent-bond tolerance so perturbed molecules
	// stay chemically intact.
	Jitter float64
	// RigidFrac is the fraction of molecules rigidly translated as a whole
	// on each frame after the first. A rigid translation leaves the
	// rigid-motion-canonical fingerprint unchanged, so these molecules
	// exercise the store's rotation/dedup path, not the recompute path.
	RigidFrac float64
	// RigidStep is the per-axis amplitude (Å) of the rigid translation.
	RigidStep float64
	// Seed drives the deterministic RNG: equal options produce bit-equal
	// trajectories.
	Seed int64
}

// DefaultPerturbOptions returns the benchmark/CI shape: a short trajectory
// where a small minority of molecules move per frame.
func DefaultPerturbOptions() PerturbOptions {
	return PerturbOptions{
		Frames:    3,
		MoveFrac:  0.15,
		Jitter:    0.02,
		RigidFrac: 0,
		RigidStep: 0.25,
		Seed:      1,
	}
}

// PerturbedTrajectory generates a deterministic MD-like frame sequence from
// a base system: frame 0 is the base coordinates bit-exactly, and every
// subsequent frame perturbs a random subset of molecules relative to the
// previous frame (a random walk, like real dynamics). Unchosen molecules
// keep their previous coordinates bit-exactly — the property that lets the
// trajectory engine's fingerprint diff prove "unmoved" without tolerance
// games.
func PerturbedTrajectory(base *System, opt PerturbOptions) []*TrajFrame {
	if opt.Frames <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	mols := make([]Residue, 0, len(base.Residues)+len(base.Waters))
	mols = append(mols, base.Residues...)
	mols = append(mols, base.Waters...)

	els := make([]constants.Element, len(base.Atoms))
	for i, a := range base.Atoms {
		els[i] = a.El
	}
	cur := base.Positions()
	frames := make([]*TrajFrame, 0, opt.Frames)
	for fi := 0; fi < opt.Frames; fi++ {
		if fi > 0 {
			perturbStep(cur, mols, rng, opt)
		}
		f := &TrajFrame{Index: fi, Els: els, Pos: make([]geom.Vec3, len(cur))}
		copy(f.Pos, cur)
		frames = append(frames, f)
	}
	return frames
}

// perturbStep advances the coordinate random walk by one frame.
func perturbStep(cur []geom.Vec3, mols []Residue, rng *rand.Rand, opt PerturbOptions) {
	for _, m := range mols {
		r := rng.Float64()
		switch {
		case r < opt.MoveFrac:
			for i := m.First; i < m.First+m.Count; i++ {
				cur[i].X += (2*rng.Float64() - 1) * opt.Jitter
				cur[i].Y += (2*rng.Float64() - 1) * opt.Jitter
				cur[i].Z += (2*rng.Float64() - 1) * opt.Jitter
			}
		case r < opt.MoveFrac+opt.RigidFrac:
			d := geom.Vec3{
				X: (2*rng.Float64() - 1) * opt.RigidStep,
				Y: (2*rng.Float64() - 1) * opt.RigidStep,
				Z: (2*rng.Float64() - 1) * opt.RigidStep,
			}
			for i := m.First; i < m.First+m.Count; i++ {
				cur[i] = cur[i].Add(d)
			}
		}
	}
}
