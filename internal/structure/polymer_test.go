package structure

import (
	"bytes"
	"testing"
)

func TestPolymerMeltGolden(t *testing.T) {
	// HO–(CH₂CH₂O)ₙ–H: each chain has 7n+3 atoms (3n backbone, 4n+2
	// hydrogens, 1 extra backbone O) and 7n+2 covalent bonds (a tree).
	const chains, monomers = 3, 5
	sys := BuildPolymerMelt(chains, monomers, 42)
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	perChain := 7*monomers + 3
	if got, want := sys.NumAtoms(), chains*perChain; got != want {
		t.Fatalf("melt has %d atoms, want %d", got, want)
	}
	if len(sys.Molecules) != chains || len(sys.Residues) != 0 || len(sys.Waters) != 0 {
		t.Fatalf("melt classified as %d molecules, %d residues, %d waters",
			len(sys.Molecules), len(sys.Residues), len(sys.Waters))
	}
	for i, m := range sys.Molecules {
		if m.Count != perChain || m.First != i*perChain {
			t.Fatalf("chain %d spans [%d,%d), want [%d,%d)", i, m.First, m.First+m.Count,
				i*perChain, (i+1)*perChain)
		}
		if m.N != -1 || m.CA != -1 || m.C != -1 || m.O != -1 {
			t.Fatalf("chain %d has protein backbone indices %+v", i, m)
		}
	}

	// The perceived covalent topology must be exactly chains disjoint
	// trees: 7n+2 bonds per chain, none between chains.
	bonds := sys.Bonds()
	if got, want := len(bonds), chains*(7*monomers+2); got != want {
		t.Fatalf("perceived %d bonds, want %d — chain geometry produced spurious or missing bonds", got, want)
	}
	chainOf := func(a int) int { return a / perChain }
	for _, b := range bonds {
		if chainOf(b[0]) != chainOf(b[1]) {
			t.Fatalf("spurious inter-chain bond %d–%d at 6 Å chain spacing", b[0], b[1])
		}
	}
}

func TestPolymerMeltDeterministicAndSeeded(t *testing.T) {
	a := BuildPolymerMelt(2, 4, 7)
	b := BuildPolymerMelt(2, 4, 7)
	c := BuildPolymerMelt(2, 4, 8)
	var wa, wb, wc bytes.Buffer
	if err := a.WriteText(&wa); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteText(&wb); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteText(&wc); err != nil {
		t.Fatal(err)
	}
	if wa.String() != wb.String() {
		t.Fatal("same seed produced different melts")
	}
	if wa.String() == wc.String() {
		t.Fatal("different seeds produced identical melts")
	}
}

func TestPolymerMeltRoundTrip(t *testing.T) {
	sys := BuildPolymerMelt(2, 3, 1)
	var buf bytes.Buffer
	if err := sys.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSystem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumAtoms() != sys.NumAtoms() || len(got.Molecules) != len(sys.Molecules) {
		t.Fatalf("round trip: %d atoms / %d molecules, want %d / %d",
			got.NumAtoms(), len(got.Molecules), sys.NumAtoms(), len(sys.Molecules))
	}
	for i, m := range got.Molecules {
		o := sys.Molecules[i]
		if m.First != o.First || m.Count != o.Count || m.Name != o.Name {
			t.Fatalf("molecule %d round-tripped as %+v, want %+v", i, m, o)
		}
	}
	// WriteText quantizes coordinates to the text precision, so a second
	// round trip must be exact.
	var buf2 bytes.Buffer
	if err := got.WriteText(&buf2); err != nil {
		t.Fatal(err)
	}
	got2, err := ReadSystem(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Atoms {
		if got.Atoms[i] != got2.Atoms[i] {
			t.Fatalf("atom %d drifted across round trips", i)
		}
	}
}

func FuzzReadSystem(f *testing.F) {
	// Seed with each generator family's text output — protein, water,
	// polymer melt — plus a malformed stub.
	seed := func(sys *System) {
		var buf bytes.Buffer
		if err := sys.WriteText(&buf); err == nil {
			f.Add(buf.Bytes())
		}
	}
	if p, err := BuildProtein("GAG"); err == nil {
		seed(p)
	}
	seed(BuildWaterDimerSystem(2))
	seed(BuildPolymerMelt(1, 2, 3))
	f.Add([]byte("# qframan structure: bogus\nATOM X\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sys, err := ReadSystem(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that parses must round-trip to a system that parses to
		// the same classification.
		var buf bytes.Buffer
		if err := sys.WriteText(&buf); err != nil {
			return
		}
		got, err := ReadSystem(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if got.NumAtoms() != sys.NumAtoms() ||
			len(got.Residues) != len(sys.Residues) ||
			len(got.Waters) != len(sys.Waters) ||
			len(got.Molecules) != len(sys.Molecules) {
			t.Fatalf("round trip changed classification: %d/%d/%d/%d → %d/%d/%d/%d",
				sys.NumAtoms(), len(sys.Residues), len(sys.Waters), len(sys.Molecules),
				got.NumAtoms(), len(got.Residues), len(got.Waters), len(got.Molecules))
		}
	})
}
