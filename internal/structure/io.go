package structure

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"qframan/internal/constants"
	"qframan/internal/geom"
)

// The on-disk format is a simple PDB-inspired text format, one record per
// line:
//
//	ATOM <index> <name> <element> <resname> <resid> <chain> <x> <y> <z>
//
// with residues appearing in chain order, waters (resname HOH) after the
// protein, and generic molecules (any other resname, e.g. PEG) last.
// Coordinates are in Å. Lines starting with '#' are comments.

// WriteText writes the system in the text format.
func (s *System) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# qframan structure: %d atoms, %d residues, %d waters, %d molecules\n",
		len(s.Atoms), len(s.Residues), len(s.Waters), len(s.Molecules))
	write := func(r Residue, resid int) {
		for i := r.First; i < r.First+r.Count; i++ {
			a := s.Atoms[i]
			fmt.Fprintf(bw, "ATOM %d %s %s %s %d %d %.6f %.6f %.6f\n",
				i, a.Name, a.El, r.Name, resid, r.Chain, a.Pos.X, a.Pos.Y, a.Pos.Z)
		}
	}
	for ri, r := range s.Residues {
		write(r, ri)
	}
	for wi, w2 := range s.Waters {
		write(w2, len(s.Residues)+wi)
	}
	for mi, m := range s.Molecules {
		write(m, len(s.Residues)+len(s.Waters)+mi)
	}
	return bw.Flush()
}

// ReadSystem parses the text format produced by WriteText. Residues are
// classified by name: the 20 amino-acid codes become protein residues
// (backbone indices reconstructed from atom names N, CA, C, O), HOH becomes
// water, and any other name becomes a generic molecule for the graph
// partitioner.
func ReadSystem(r io.Reader) (*System, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	sys := &System{}
	type resKey struct {
		name string
		id   int
	}
	var cur resKey
	var curRes *Residue
	flush := func() {
		if curRes == nil {
			return
		}
		switch {
		case curRes.IsWater():
			sys.Waters = append(sys.Waters, *curRes)
		case IsAminoAcidName(curRes.Name):
			sys.Residues = append(sys.Residues, *curRes)
		default:
			sys.Molecules = append(sys.Molecules, *curRes)
		}
		curRes = nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 10 || f[0] != "ATOM" {
			return nil, fmt.Errorf("structure: line %d: malformed record %q", lineNo, line)
		}
		el, ok := constants.ElementFromSymbol(f[3])
		if !ok {
			return nil, fmt.Errorf("structure: line %d: unsupported element %q", lineNo, f[3])
		}
		id, err := strconv.Atoi(f[5])
		if err != nil {
			return nil, fmt.Errorf("structure: line %d: bad residue id: %v", lineNo, err)
		}
		chain, err := strconv.Atoi(f[6])
		if err != nil {
			return nil, fmt.Errorf("structure: line %d: bad chain id: %v", lineNo, err)
		}
		var pos geom.Vec3
		for k, dst := range []*float64{&pos.X, &pos.Y, &pos.Z} {
			v, err := strconv.ParseFloat(f[7+k], 64)
			if err != nil {
				return nil, fmt.Errorf("structure: line %d: bad coordinate: %v", lineNo, err)
			}
			*dst = v
		}
		key := resKey{f[4], id}
		if curRes == nil || key != cur {
			flush()
			cur = key
			curRes = &Residue{Name: f[4], First: len(sys.Atoms), Chain: chain, N: -1, CA: -1, C: -1, O: -1}
		}
		idx := len(sys.Atoms)
		sys.Atoms = append(sys.Atoms, Atom{El: el, Pos: pos, Name: f[2]})
		curRes.Count++
		switch f[2] {
		case "N":
			curRes.N = idx
		case "CA":
			curRes.CA = idx
		case "C":
			curRes.C = idx
		case "O":
			curRes.O = idx
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return sys, sys.Validate()
}
