package structure

import (
	"math"

	"qframan/internal/constants"
	"qframan/internal/geom"
)

// scAtom describes one side-chain heavy atom in an amino-acid template as a
// node in a tree rooted at CA: Parent is the index of the parent side-chain
// atom (−1 means bonded directly to CA) and NH is the number of hydrogens to
// attach.
type scAtom struct {
	El     constants.Element
	Parent int
	NH     int
	Name   string
}

// aaTemplate is an amino-acid template. Geometry is generated, not stored:
// the builder places the backbone in an extended strand and grows the
// side-chain tree with tetrahedral angles and realistic bond lengths.
//
// Aromatic rings (PHE/TYR/TRP/HIS) are approximated by acyclic trees with the
// correct atom counts: the QF algorithm and the load balancer care about
// fragment sizes and covalent topology, not aromaticity (see DESIGN.md §2).
type aaTemplate struct {
	Name    string
	Code    byte
	SC      []scAtom
	ExtraHA bool // glycine's second Hα
}

var aminoAcids = []aaTemplate{
	{Name: "GLY", Code: 'G', ExtraHA: true},
	{Name: "ALA", Code: 'A', SC: []scAtom{{constants.C, -1, 3, "CB"}}},
	{Name: "SER", Code: 'S', SC: []scAtom{{constants.C, -1, 2, "CB"}, {constants.O, 0, 1, "OG"}}},
	{Name: "CYS", Code: 'C', SC: []scAtom{{constants.C, -1, 2, "CB"}, {constants.S, 0, 1, "SG"}}},
	{Name: "THR", Code: 'T', SC: []scAtom{{constants.C, -1, 1, "CB"}, {constants.O, 0, 1, "OG1"}, {constants.C, 0, 3, "CG2"}}},
	{Name: "VAL", Code: 'V', SC: []scAtom{{constants.C, -1, 1, "CB"}, {constants.C, 0, 3, "CG1"}, {constants.C, 0, 3, "CG2"}}},
	{Name: "PRO", Code: 'P', SC: []scAtom{{constants.C, -1, 2, "CB"}, {constants.C, 0, 2, "CG"}, {constants.C, 1, 3, "CD"}}},
	{Name: "LEU", Code: 'L', SC: []scAtom{{constants.C, -1, 2, "CB"}, {constants.C, 0, 1, "CG"}, {constants.C, 1, 3, "CD1"}, {constants.C, 1, 3, "CD2"}}},
	{Name: "ILE", Code: 'I', SC: []scAtom{{constants.C, -1, 1, "CB"}, {constants.C, 0, 2, "CG1"}, {constants.C, 0, 3, "CG2"}, {constants.C, 1, 3, "CD1"}}},
	{Name: "ASN", Code: 'N', SC: []scAtom{{constants.C, -1, 2, "CB"}, {constants.C, 0, 0, "CG"}, {constants.O, 1, 0, "OD1"}, {constants.N, 1, 2, "ND2"}}},
	{Name: "ASP", Code: 'D', SC: []scAtom{{constants.C, -1, 2, "CB"}, {constants.C, 0, 0, "CG"}, {constants.O, 1, 0, "OD1"}, {constants.O, 1, 1, "OD2"}}},
	{Name: "GLN", Code: 'Q', SC: []scAtom{{constants.C, -1, 2, "CB"}, {constants.C, 0, 2, "CG"}, {constants.C, 1, 0, "CD"}, {constants.O, 2, 0, "OE1"}, {constants.N, 2, 2, "NE2"}}},
	{Name: "GLU", Code: 'E', SC: []scAtom{{constants.C, -1, 2, "CB"}, {constants.C, 0, 2, "CG"}, {constants.C, 1, 0, "CD"}, {constants.O, 2, 0, "OE1"}, {constants.O, 2, 1, "OE2"}}},
	{Name: "LYS", Code: 'K', SC: []scAtom{{constants.C, -1, 2, "CB"}, {constants.C, 0, 2, "CG"}, {constants.C, 1, 2, "CD"}, {constants.C, 2, 2, "CE"}, {constants.N, 3, 2, "NZ"}}},
	{Name: "ARG", Code: 'R', SC: []scAtom{{constants.C, -1, 2, "CB"}, {constants.C, 0, 2, "CG"}, {constants.C, 1, 2, "CD"}, {constants.N, 2, 1, "NE"}, {constants.C, 3, 0, "CZ"}, {constants.N, 4, 1, "NH1"}, {constants.N, 4, 2, "NH2"}}},
	{Name: "HIS", Code: 'H', SC: []scAtom{{constants.C, -1, 2, "CB"}, {constants.C, 0, 0, "CG"}, {constants.N, 1, 1, "ND1"}, {constants.C, 1, 1, "CD2"}, {constants.C, 2, 2, "CE1"}, {constants.N, 3, 1, "NE2"}}},
	{Name: "PHE", Code: 'F', SC: []scAtom{{constants.C, -1, 2, "CB"}, {constants.C, 0, 0, "CG"}, {constants.C, 1, 1, "CD1"}, {constants.C, 1, 1, "CD2"}, {constants.C, 2, 1, "CE1"}, {constants.C, 3, 2, "CE2"}, {constants.C, 4, 2, "CZ"}}},
	{Name: "TYR", Code: 'Y', SC: []scAtom{{constants.C, -1, 2, "CB"}, {constants.C, 0, 0, "CG"}, {constants.C, 1, 1, "CD1"}, {constants.C, 1, 1, "CD2"}, {constants.C, 2, 1, "CE1"}, {constants.C, 3, 2, "CE2"}, {constants.C, 4, 1, "CZ"}, {constants.O, 6, 1, "OH"}}},
	// TRP's indole is laid out as one long spine (CB…CH2) with three
	// depth-1 branches (NE1, CE3, CZ3) so no subtree drifts more than one
	// lane from the residue's plane.
	{Name: "TRP", Code: 'W', SC: []scAtom{{constants.C, -1, 2, "CB"}, {constants.C, 0, 1, "CG"}, {constants.C, 1, 0, "CD1"}, {constants.C, 2, 0, "CD2"}, {constants.N, 2, 2, "NE1"}, {constants.C, 3, 0, "CE2"}, {constants.C, 3, 2, "CE3"}, {constants.C, 5, 1, "CZ2"}, {constants.C, 5, 2, "CZ3"}, {constants.C, 7, 2, "CH2"}}},
	{Name: "MET", Code: 'M', SC: []scAtom{{constants.C, -1, 2, "CB"}, {constants.C, 0, 2, "CG"}, {constants.S, 1, 0, "SD"}, {constants.C, 2, 3, "CE"}}},
}

var aaByCode = func() map[byte]*aaTemplate {
	m := make(map[byte]*aaTemplate, len(aminoAcids))
	for i := range aminoAcids {
		m[aminoAcids[i].Code] = &aminoAcids[i]
	}
	return m
}()

var aaByName = func() map[string]bool {
	m := make(map[string]bool, len(aminoAcids))
	for i := range aminoAcids {
		m[aminoAcids[i].Name] = true
	}
	return m
}()

// IsAminoAcidName reports whether the three-letter residue name belongs to
// one of the 20 amino-acid templates. The structure reader uses it to decide
// whether an input residue is a protein residue (backbone atoms required) or
// a generic molecule (graph-partitioner territory).
func IsAminoAcidName(name string) bool { return aaByName[name] }

// AminoAcidCodes returns the 20 one-letter codes in template order.
func AminoAcidCodes() []byte {
	out := make([]byte, len(aminoAcids))
	for i, a := range aminoAcids {
		out[i] = a.Code
	}
	return out
}

// ResidueAtomCount returns the number of atoms the builder produces for a
// mid-chain residue with the given one-letter code (termini add extras).
// The boolean reports whether the code is known.
func ResidueAtomCount(code byte) (int, bool) {
	t, ok := aaByCode[code]
	if !ok {
		return 0, false
	}
	n := 6 // N, H, CA, HA, C, O
	if t.ExtraHA {
		n++
	}
	for _, a := range t.SC {
		n += 1 + a.NH
	}
	return n, true
}

// Bond lengths in Å by element pair (order-independent).
func bondLength(a, b constants.Element) float64 {
	if a > b {
		a, b = b, a
	}
	switch {
	case a == constants.H && b == constants.H:
		return 0.74
	case a == constants.H && b == constants.C:
		return 1.09
	case a == constants.H && b == constants.N:
		return 1.01
	case a == constants.H && b == constants.O:
		return 0.96
	case a == constants.H && b == constants.S:
		return 1.34
	case a == constants.C && b == constants.C:
		return 1.52
	case a == constants.C && b == constants.N:
		return 1.47
	case a == constants.C && b == constants.O:
		return 1.41
	case a == constants.C && b == constants.S:
		return 1.81
	case a == constants.N && b == constants.O:
		return 1.40
	case a == constants.O && b == constants.O:
		return 1.45
	}
	return 1.6
}

const (
	tetCos = -1.0 / 3.0 // cos(109.47°)
)

// tetrahedralDirs returns three unit directions making the tetrahedral angle
// (109.47°) with −dIn, the bond arriving at this atom. The azimuthal phase is
// chosen so that slot 0 points maximally along `grow` (the growth direction,
// away from the backbone): a chain that always continues through slot 0 then
// traces an exact all-trans zig-zag confined to the plane spanned by dIn and
// grow, while slots 1 and 2 branch out of that plane symmetrically. This
// keeps side chains in their own residue's lane and prevents steric clashes
// with neighboring residues.
func tetrahedralDirs(dIn, grow geom.Vec3) [3]geom.Vec3 {
	// Orthonormal frame (u, v) perpendicular to dIn.
	ref := geom.V(0, 0, 1)
	if math.Abs(dIn.Z) > 0.9 {
		ref = geom.V(1, 0, 0)
	}
	u := dIn.Cross(ref).Normalize()
	v := dIn.Cross(u)
	// Azimuth maximizing the component of the slot direction along grow.
	phase := math.Atan2(grow.Dot(v), grow.Dot(u))
	c := -tetCos // cos(70.53°) = 1/3
	s := math.Sqrt(1 - c*c)
	var out [3]geom.Vec3
	for k := 0; k < 3; k++ {
		phi := phase + 2*math.Pi*float64(k)/3
		lat := u.Scale(math.Cos(phi)).Add(v.Scale(math.Sin(phi)))
		out[k] = dIn.Scale(c).Add(lat.Scale(s))
	}
	return out
}

// buildResidue appends one residue's atoms to atoms. nPos is the position of
// the backbone nitrogen; xDir the chain direction; side = ±1 selects which
// side of the backbone the side chain grows toward. nTerm/cTerm add terminal
// hydrogens/oxygen. It returns the Residue descriptor.
func buildResidue(atoms *[]Atom, t *aaTemplate, nPos geom.Vec3, side float64, nTerm, cTerm bool) Residue {
	first := len(*atoms)
	add := func(el constants.Element, pos geom.Vec3, name string) int {
		*atoms = append(*atoms, Atom{El: el, Pos: pos, Name: name})
		return len(*atoms) - 1
	}

	// Extended backbone in the xz plane; chain advances +x by 3.8 Å/residue.
	// Backbone decorations are side-aware: the carbonyl O leans toward the
	// residue's own side-chain face (clear at backbone height, since the
	// side chain rises in z) and the amide H toward the opposite face, so
	// neither can meet the −x-drifting branches of the following residue.
	caPos := nPos.Add(geom.V(1.25, 0, 0.75))
	cPos := nPos.Add(geom.V(2.50, 0, 0))
	oDir := geom.V(0, 0.73*side, -0.684).Normalize()
	oPos := cPos.Add(oDir.Scale(1.23))
	hnDir := geom.V(0, -0.9*side, 0.44).Normalize()
	hnPos := nPos.Add(hnDir.Scale(1.01))

	iN := add(constants.N, nPos, "N")
	add(constants.H, hnPos, "H")
	if nTerm {
		// Second amine hydrogen on the N-terminus.
		h2 := nPos.Add(geom.V(-0.6, 0.75*side, 0.3).Normalize().Scale(1.01))
		add(constants.H, h2, "H2")
	}
	iCA := add(constants.C, caPos, "CA")
	haDir := geom.V(0, -side, 0.35).Normalize()
	add(constants.H, caPos.Add(haDir.Scale(1.09)), "HA")
	if t.ExtraHA {
		ha2Dir := geom.V(0, side, 0.35).Normalize()
		add(constants.H, caPos.Add(ha2Dir.Scale(1.09)), "HA2")
	}
	iC := add(constants.C, cPos, "C")
	iO := add(constants.O, oPos, "O")
	if cTerm {
		// Carboxyl OXT + its hydrogen on the C-terminus.
		oxtDir := geom.V(0.35, -0.8*side, -0.48).Normalize()
		oxt := cPos.Add(oxtDir.Scale(1.34))
		add(constants.O, oxt, "OXT")
		add(constants.H, oxt.Add(geom.V(0.4, -0.75*side, 0.53).Normalize().Scale(0.96)), "HXT")
	}

	// Grow the side-chain tree from CA with tetrahedral geometry. Each
	// placed atom owns a set of three tetrahedral slots (directions at
	// 109.47° from its incoming bond); children consume slots in placement
	// order and hydrogens fill the remainder, so no two bonds from the same
	// atom can come closer than 109.47°.
	if len(t.SC) > 0 {
		type placed struct {
			pos   geom.Vec3
			grow  geom.Vec3 // subtree growth direction (defines the lane)
			slots [3]geom.Vec3
			taken [3]bool
		}
		nodes := make([]placed, len(t.SC))
		rootDir := geom.V(0, side, 0.35).Normalize()
		rootGrow := geom.V(0, side, 0)
		for i, a := range t.SC {
			var pos, dir, grow geom.Vec3
			if a.Parent < 0 {
				dir = rootDir
				grow = rootGrow
				pos = caPos.Add(dir.Scale(bondLength(constants.C, a.El)))
			} else {
				p := &nodes[a.Parent]
				if !p.taken[0] {
					// Spine continuation: slot 0, stay in the parent's lane.
					p.taken[0] = true
					dir = p.slots[0]
					grow = p.grow
				} else {
					// Branch: of the two out-of-lane slots prefer the one
					// pointing toward −x (the previous residue's empty
					// flank, since side chains alternate faces); the
					// subtree then grows outward along its own lane so
					// sibling subtrees diverge instead of re-converging.
					k := 1
					if !p.taken[1] && !p.taken[2] && p.slots[2].X < p.slots[1].X {
						k = 2
					} else if p.taken[1] {
						k = 2
					}
					p.taken[k] = true
					dir = p.slots[k]
					grow = p.grow.Add(dir).Normalize()
				}
				pos = p.pos.Add(dir.Scale(bondLength(t.SC[a.Parent].El, a.El)))
			}
			nodes[i] = placed{pos: pos, grow: grow, slots: tetrahedralDirs(dir, grow)}
			add(a.El, pos, a.Name)
		}
		for i, a := range t.SC {
			if a.NH > 3 {
				panic("structure: more than 3 hydrogens on one heavy atom")
			}
			n := &nodes[i]
			hl := bondLength(a.El, constants.H)
			h := 0
			for k := 0; k < 3 && h < a.NH; k++ {
				if n.taken[k] {
					continue
				}
				n.taken[k] = true
				add(constants.H, n.pos.Add(n.slots[k].Scale(hl)), a.Name+"H")
				h++
			}
			if h < a.NH {
				panic("structure: template exceeds tetrahedral valence")
			}
		}
	}

	return Residue{
		Name:  t.Name,
		First: first,
		Count: len(*atoms) - first,
		N:     iN, CA: iCA, C: iC, O: iO,
	}
}
