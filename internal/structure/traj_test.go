package structure

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"qframan/internal/constants"
	"qframan/internal/geom"
)

// TestTrajectoryRoundTrip: writing a system as frames and reading them back
// reproduces every coordinate bit-exactly — the contract fingerprint diffing
// rests on.
func TestTrajectoryRoundTrip(t *testing.T) {
	sys := BuildWaterBox(2, 2, 1, geom.Vec3{})
	frames := PerturbedTrajectory(sys, PerturbOptions{Frames: 4, MoveFrac: 0.4, Jitter: 0.03, RigidFrac: 0.2, RigidStep: 0.2, Seed: 7})
	var buf bytes.Buffer
	for i, f := range frames {
		fs, err := ApplyFrame(sys, f)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteTrajectoryFrame(&buf, fs, "frame"); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	tr := NewTrajectoryReader(&buf)
	for i, want := range frames {
		got, err := tr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Index != i {
			t.Fatalf("frame %d decoded with index %d", i, got.Index)
		}
		if len(got.Pos) != len(want.Pos) {
			t.Fatalf("frame %d: %d atoms, want %d", i, len(got.Pos), len(want.Pos))
		}
		for a := range got.Pos {
			if got.Els[a] != want.Els[a] {
				t.Fatalf("frame %d atom %d: element %s, want %s", i, a, got.Els[a], want.Els[a])
			}
			for _, pair := range [][2]float64{
				{got.Pos[a].X, want.Pos[a].X}, {got.Pos[a].Y, want.Pos[a].Y}, {got.Pos[a].Z, want.Pos[a].Z},
			} {
				if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
					t.Fatalf("frame %d atom %d: coordinate %v != %v (not bit-exact)", i, a, pair[0], pair[1])
				}
			}
		}
	}
	if _, err := tr.Next(); err != io.EOF {
		t.Fatalf("expected io.EOF at end of stream, got %v", err)
	}
}

// TestTrajectoryReaderErrors: malformed streams must error with context,
// never panic and never return a half-decoded frame.
func TestTrajectoryReaderErrors(t *testing.T) {
	cases := map[string]string{
		"bad count":         "x\ncomment\n",
		"zero count":        "0\ncomment\n",
		"negative count":    "-3\ncomment\n",
		"absurd count":      "999999999999\ncomment\n",
		"missing comment":   "2",
		"truncated atoms":   "3\nc\nO 0 0 0\nH 1 0 0\n",
		"short atom record": "1\nc\nO 0 0\n",
		"unknown element":   "1\nc\nXx 0 0 0\n",
		"bad coordinate":    "1\nc\nO 0 zero 0\n",
		"nan coordinate":    "1\nc\nO NaN 0 0\n",
		"inf coordinate":    "1\nc\nO 0 +Inf 0\n",
		"neg inf":           "1\nc\nO 0 0 -inf\n",
	}
	for name, in := range cases {
		if f, err := DecodeTrajectoryFrame([]byte(in)); err == nil {
			t.Errorf("%s: decoded %d atoms, want error", name, len(f.Els))
		}
	}
	// Extra per-atom columns (velocities, forces) are fine.
	f, err := DecodeTrajectoryFrame([]byte("1\nLattice=...\nO 1.5 2.5 3.5 0.1 0.2 0.3\n"))
	if err != nil {
		t.Fatalf("extended columns: %v", err)
	}
	if f.Pos[0] != (geom.Vec3{X: 1.5, Y: 2.5, Z: 3.5}) {
		t.Fatalf("extended columns decoded %v", f.Pos[0])
	}
	// Blank separator lines between frames are skipped.
	tr := NewTrajectoryReader(strings.NewReader("1\nc\nO 0 0 0\n\n\n1\nc\nO 1 0 0\n"))
	for i := 0; i < 2; i++ {
		if _, err := tr.Next(); err != nil {
			t.Fatalf("frame %d after blank separator: %v", i, err)
		}
	}
}

// TestApplyFrameMismatch: a frame from a different system must be rejected.
func TestApplyFrameMismatch(t *testing.T) {
	sys := BuildWaterBox(1, 1, 1, geom.Vec3{})
	if _, err := ApplyFrame(sys, &TrajFrame{Els: make([]constants.Element, 5), Pos: make([]geom.Vec3, 5)}); err == nil {
		t.Fatal("atom-count mismatch accepted")
	}
	f := &TrajFrame{
		Els: []constants.Element{constants.H, constants.H, constants.O},
		Pos: make([]geom.Vec3, 3),
	}
	if _, err := ApplyFrame(sys, f); err == nil {
		t.Fatal("element mismatch accepted")
	}
}

// TestSystemFromTrajFrame: O,H,H triplets infer a water topology; anything
// else is rejected.
func TestSystemFromTrajFrame(t *testing.T) {
	base := BuildWaterBox(2, 1, 1, geom.Vec3{})
	var buf bytes.Buffer
	if err := WriteTrajectoryFrame(&buf, base, ""); err != nil {
		t.Fatal(err)
	}
	f, err := NewTrajectoryReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := SystemFromTrajFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Waters) != len(base.Waters) || sys.NumAtoms() != base.NumAtoms() {
		t.Fatalf("inferred %d waters / %d atoms, want %d / %d",
			len(sys.Waters), sys.NumAtoms(), len(base.Waters), base.NumAtoms())
	}
	if _, err := SystemFromTrajFrame(&TrajFrame{Els: make([]constants.Element, 4), Pos: make([]geom.Vec3, 4)}); err == nil {
		t.Fatal("non-triplet atom count accepted")
	}
	bad := &TrajFrame{
		Els: []constants.Element{constants.H, constants.O, constants.H},
		Pos: make([]geom.Vec3, 3),
	}
	if _, err := SystemFromTrajFrame(bad); err == nil {
		t.Fatal("non-water triplet accepted")
	}
}

// TestPerturbedTrajectory: frame 0 is the base bit-exactly; later frames
// move some molecules and leave the rest bit-identical; equal seeds
// reproduce the trajectory exactly.
func TestPerturbedTrajectory(t *testing.T) {
	sys := BuildWaterBox(2, 2, 2, geom.Vec3{})
	opt := PerturbOptions{Frames: 3, MoveFrac: 0.3, Jitter: 0.02, Seed: 42}
	frames := PerturbedTrajectory(sys, opt)
	if len(frames) != 3 {
		t.Fatalf("%d frames, want 3", len(frames))
	}
	base := sys.Positions()
	for i, p := range frames[0].Pos {
		if p != base[i] {
			t.Fatalf("frame 0 atom %d moved: %v != %v", i, p, base[i])
		}
	}
	moved, kept := 0, 0
	for _, w := range sys.Waters {
		same := true
		for i := w.First; i < w.First+w.Count; i++ {
			if frames[1].Pos[i] != frames[0].Pos[i] {
				same = false
			}
		}
		if same {
			kept++
		} else {
			moved++
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("frame 1: %d moved, %d kept; want both non-zero", moved, kept)
	}
	again := PerturbedTrajectory(sys, opt)
	for fi := range frames {
		for i := range frames[fi].Pos {
			if frames[fi].Pos[i] != again[fi].Pos[i] {
				t.Fatalf("seeded trajectory not reproducible at frame %d atom %d", fi, i)
			}
		}
	}
}

// FuzzDecodeTrajectoryFrame: the reader must never panic, and any frame it
// does accept must be self-consistent with finite coordinates.
func FuzzDecodeTrajectoryFrame(f *testing.F) {
	f.Add([]byte("3\nwater\nO 0 0 0\nH 0.96 0 0\nH -0.24 0.93 0\n"))
	f.Add([]byte("1\nc\nO 1e308 -1e308 0.5\n"))
	f.Add([]byte("2\nc\nO 0 0 0\n"))         // truncated
	f.Add([]byte("1\nc\nO NaN 0 0\n"))       // non-finite
	f.Add([]byte("-1\nc\n"))                 // negative count
	f.Add([]byte("99999999999999\nc\n"))     // absurd count
	f.Add([]byte("1\nc\nXq 0 0 0\n"))        // unknown element
	f.Add([]byte("\n\n1\nc\nH 1 2 3 v v v")) // blank leaders + extra columns
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeTrajectoryFrame(data)
		if err != nil {
			return
		}
		if len(fr.Els) == 0 || len(fr.Els) != len(fr.Pos) {
			t.Fatalf("accepted frame with %d elements / %d positions", len(fr.Els), len(fr.Pos))
		}
		for _, p := range fr.Pos {
			for _, v := range []float64{p.X, p.Y, p.Z} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("accepted non-finite coordinate %v", v)
				}
			}
		}
	})
}
