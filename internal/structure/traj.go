package structure

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"qframan/internal/constants"
	"qframan/internal/geom"
)

// Trajectory I/O uses the extended-XYZ convention of MD codes: every frame
// is an atom-count line, a free-form comment line, and one "El x y z" line
// per atom (extra per-atom columns — velocities, forces — are tolerated and
// ignored). Coordinates are in Å and written with full float64 precision
// (%.17g), so a frame survives a write/read round trip bit-exactly — the
// property the trajectory engine's fingerprint diffing depends on: an
// unmoved molecule must hash to the same key on every frame.

// maxFrameAtoms bounds the declared atom count of one trajectory frame: a
// hostile or corrupt header must never drive a giant allocation. The cap is
// far above any in-process system (the 100M-atom production shape streams
// through the distributed runtime, not this reader).
const maxFrameAtoms = 50_000_000

// TrajFrame is one decoded trajectory frame.
type TrajFrame struct {
	// Index is the zero-based position of the frame in the stream.
	Index   int
	Comment string
	Els     []constants.Element
	Pos     []geom.Vec3
}

// TrajectoryReader streams extended-XYZ frames from a reader.
type TrajectoryReader struct {
	sc     *bufio.Scanner
	lineNo int
	frame  int
}

// NewTrajectoryReader wraps r for frame-by-frame decoding.
func NewTrajectoryReader(r io.Reader) *TrajectoryReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	return &TrajectoryReader{sc: sc}
}

// Next decodes the next frame. It returns io.EOF at a clean end of stream
// and a descriptive error — never a panic — on malformed input: truncated
// frames, absurd or non-positive atom counts, unknown elements, and
// NaN/Inf coordinates (which would silently poison every downstream solver)
// are all rejected.
func (tr *TrajectoryReader) Next() (*TrajFrame, error) {
	// Skip blank separator lines between frames.
	var header string
	for {
		line, ok := tr.readLine()
		if !ok {
			if err := tr.sc.Err(); err != nil {
				return nil, fmt.Errorf("structure: trajectory line %d: %w", tr.lineNo, err)
			}
			return nil, io.EOF
		}
		if strings.TrimSpace(line) != "" {
			header = strings.TrimSpace(line)
			break
		}
	}
	n, err := strconv.Atoi(header)
	if err != nil {
		return nil, fmt.Errorf("structure: trajectory line %d: bad atom count %q", tr.lineNo, header)
	}
	if n <= 0 || n > maxFrameAtoms {
		return nil, fmt.Errorf("structure: trajectory line %d: atom count %d out of range [1,%d]", tr.lineNo, n, maxFrameAtoms)
	}
	comment, ok := tr.readLine()
	if !ok {
		return nil, fmt.Errorf("structure: trajectory: truncated frame %d (missing comment line)", tr.frame)
	}
	f := &TrajFrame{
		Index:   tr.frame,
		Comment: strings.TrimSpace(comment),
		// Grow incrementally up to n: the declared count is untrusted until
		// the atom lines actually arrive.
		Els: make([]constants.Element, 0, minInt(n, 65536)),
		Pos: make([]geom.Vec3, 0, minInt(n, 65536)),
	}
	for i := 0; i < n; i++ {
		line, ok := tr.readLine()
		if !ok {
			return nil, fmt.Errorf("structure: trajectory: truncated frame %d (%d of %d atoms)", tr.frame, i, n)
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			return nil, fmt.Errorf("structure: trajectory line %d: malformed atom record %q", tr.lineNo, strings.TrimSpace(line))
		}
		el, ok := constants.ElementFromSymbol(fields[0])
		if !ok {
			return nil, fmt.Errorf("structure: trajectory line %d: unsupported element %q", tr.lineNo, fields[0])
		}
		var p geom.Vec3
		for k, dst := range []*float64{&p.X, &p.Y, &p.Z} {
			v, err := strconv.ParseFloat(fields[1+k], 64)
			if err != nil {
				return nil, fmt.Errorf("structure: trajectory line %d: bad coordinate %q", tr.lineNo, fields[1+k])
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("structure: trajectory line %d: non-finite coordinate %q", tr.lineNo, fields[1+k])
			}
			*dst = v
		}
		f.Els = append(f.Els, el)
		f.Pos = append(f.Pos, p)
	}
	tr.frame++
	return f, nil
}

func (tr *TrajectoryReader) readLine() (string, bool) {
	if !tr.sc.Scan() {
		return "", false
	}
	tr.lineNo++
	return tr.sc.Text(), true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// DecodeTrajectoryFrame decodes a single frame from raw bytes — the fuzzing
// entry point of the reader.
func DecodeTrajectoryFrame(data []byte) (*TrajFrame, error) {
	return NewTrajectoryReader(strings.NewReader(string(data))).Next()
}

// WriteTrajectoryFrame appends one frame holding the system's current
// coordinates. Coordinates are written with full precision so that applying
// the frame back onto the same topology reproduces the system bit-exactly.
func WriteTrajectoryFrame(w io.Writer, sys *System, comment string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d\n%s\n", len(sys.Atoms), strings.ReplaceAll(comment, "\n", " "))
	for _, a := range sys.Atoms {
		fmt.Fprintf(bw, "%s %.17g %.17g %.17g\n", a.El, a.Pos.X, a.Pos.Y, a.Pos.Z)
	}
	return bw.Flush()
}

// ApplyFrame returns a copy of the topology template carrying the frame's
// coordinates. The frame must match the template atom-for-atom: trajectory
// frames carry no residue topology of their own, so element disagreement
// means the trajectory belongs to a different system.
func ApplyFrame(tmpl *System, f *TrajFrame) (*System, error) {
	if len(f.Els) != len(tmpl.Atoms) {
		return nil, fmt.Errorf("structure: frame %d has %d atoms, topology has %d", f.Index, len(f.Els), len(tmpl.Atoms))
	}
	out := &System{
		Atoms:    make([]Atom, len(tmpl.Atoms)),
		Residues: tmpl.Residues,
		Waters:   tmpl.Waters,
	}
	copy(out.Atoms, tmpl.Atoms)
	for i := range out.Atoms {
		if f.Els[i] != tmpl.Atoms[i].El {
			return nil, fmt.Errorf("structure: frame %d atom %d is %s, topology has %s",
				f.Index, i, f.Els[i], tmpl.Atoms[i].El)
		}
		out.Atoms[i].Pos = f.Pos[i]
	}
	return out, nil
}

// SystemFromTrajFrame infers a water-only topology from a frame whose atoms
// are O,H,H triplets — the common case of a neat-water MD trajectory with no
// separate topology file. Anything else is an error: protein trajectories
// need an explicit topology (qframan -in) because residue boundaries cannot
// be recovered from elements alone.
func SystemFromTrajFrame(f *TrajFrame) (*System, error) {
	if len(f.Els)%3 != 0 {
		return nil, fmt.Errorf("structure: frame %d: %d atoms is not a whole number of waters; water-topology inference needs O,H,H triplets (use an explicit topology otherwise)", f.Index, len(f.Els))
	}
	sys := &System{Atoms: make([]Atom, 0, len(f.Els))}
	names := [3]string{"OW", "HW1", "HW2"}
	for i := 0; i < len(f.Els); i += 3 {
		if f.Els[i] != constants.O || f.Els[i+1] != constants.H || f.Els[i+2] != constants.H {
			return nil, fmt.Errorf("structure: frame %d: atoms %d..%d are %s,%s,%s, want O,H,H; water-topology inference needs O,H,H triplets", f.Index, i, i+2, f.Els[i], f.Els[i+1], f.Els[i+2])
		}
		for k := 0; k < 3; k++ {
			sys.Atoms = append(sys.Atoms, Atom{El: f.Els[i+k], Pos: f.Pos[i+k], Name: names[k]})
		}
		sys.Waters = append(sys.Waters, Residue{
			Name: "HOH", First: i, Count: 3, N: -1, CA: -1, C: -1, O: -1,
		})
	}
	return sys, sys.Validate()
}
