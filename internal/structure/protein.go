package structure

import (
	"fmt"
	"math/rand"

	"qframan/internal/geom"
)

// residuePitch is the chain advance per residue in Å (extended strand).
const residuePitch = 3.8

// BuildProtein constructs a synthetic polypeptide from a one-letter sequence,
// placing residues along an extended strand with side chains alternating
// between the two faces. The first residue gets an N-terminal amine hydrogen
// and the last a C-terminal carboxyl.
//
// The geometry is a stand-in for a real fold: what matters downstream is the
// covalent topology (peptide bonds between consecutive residues, correct
// per-residue atom counts) and, for the generalized-concap machinery,
// that some non-neighboring residues come spatially close — which the fold
// option below provides.
func BuildProtein(sequence string) (*System, error) {
	return BuildProteinFolded(sequence, 0)
}

// BuildProteinFolded is BuildProtein with a serpentine fold: after every
// foldEvery residues the chain makes a hairpin turn, so residues in adjacent
// legs of the serpentine are spatially close without being sequence
// neighbors — exactly the situation the paper's generalized concaps
// (two-body corrections within λ) exist for. foldEvery ≤ 0 builds a straight
// extended chain.
func BuildProteinFolded(sequence string, foldEvery int) (*System, error) {
	if len(sequence) == 0 {
		return nil, fmt.Errorf("structure: empty sequence")
	}
	sys := &System{}
	// legSeparation stacks serpentine legs along z (side chains grow along
	// ±y, so legs cannot interpenetrate); 5.5 Å puts facing backbone atoms
	// of adjacent legs within the λ=4 Å concap threshold without any
	// covalent-detection overlap.
	const legSeparation = 5.5
	for i := 0; i < len(sequence); i++ {
		code := sequence[i]
		t, ok := aaByCode[code]
		if !ok {
			return nil, fmt.Errorf("structure: unknown amino-acid code %q at position %d", code, i)
		}
		var nPos geom.Vec3
		leg, col := 0, i
		if foldEvery > 0 {
			leg = i / foldEvery
			col = i % foldEvery
			if leg%2 == 1 {
				col = foldEvery - 1 - col // reverse direction on odd legs
			}
		}
		nPos = geom.V(float64(col)*residuePitch, 0, float64(leg)*legSeparation)
		side := 1.0
		if i%2 == 1 {
			side = -1
		}
		r := buildResidue(&sys.Atoms, t, nPos, side, i == 0, i == len(sequence)-1)
		sys.Residues = append(sys.Residues, r)
	}
	return sys, nil
}

// typicalComposition is an approximate amino-acid frequency table for
// globular proteins (per-mille), used to draw random sequences whose
// fragment-size distribution matches a real protein's.
var typicalComposition = []struct {
	code   byte
	permil int
}{
	{'A', 83}, {'R', 55}, {'N', 40}, {'D', 54}, {'C', 14},
	{'Q', 39}, {'E', 67}, {'G', 71}, {'H', 22}, {'I', 59},
	{'L', 96}, {'K', 58}, {'M', 24}, {'F', 38}, {'P', 47},
	{'S', 66}, {'T', 53}, {'W', 11}, {'Y', 29}, {'V', 68},
}

// BuildMultimer builds several independent chains (e.g. the trimeric
// architecture of the paper's spike protein), stacking them with a clear
// separation so no accidental covalent contacts arise. All chains share the
// sequence; chain indices are recorded on the residues.
func BuildMultimer(sequence string, chains, foldEvery int) (*System, error) {
	if chains < 1 {
		return nil, fmt.Errorf("structure: need at least one chain")
	}
	sys := &System{}
	const chainGap = 30.0 // Å between chain bounding boxes
	for c := 0; c < chains; c++ {
		one, err := BuildProteinFolded(sequence, foldEvery)
		if err != nil {
			return nil, err
		}
		lo, hi := boundingBox(one)
		shift := geom.V(0, float64(c)*(hi.Y-lo.Y+chainGap), 0)
		off := len(sys.Atoms)
		for _, a := range one.Atoms {
			a.Pos = a.Pos.Add(shift)
			sys.Atoms = append(sys.Atoms, a)
		}
		for _, r := range one.Residues {
			r.First += off
			r.N += off
			r.CA += off
			r.C += off
			r.O += off
			r.Chain = c
			sys.Residues = append(sys.Residues, r)
		}
	}
	return sys, nil
}

// RandomSequence draws an n-residue sequence from the typical globular
// composition using the given seed; identical seeds give identical sequences.
func RandomSequence(n int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var total int
	for _, c := range typicalComposition {
		total += c.permil
	}
	out := make([]byte, n)
	for i := range out {
		x := rng.Intn(total)
		for _, c := range typicalComposition {
			x -= c.permil
			if x < 0 {
				out[i] = c.code
				break
			}
		}
	}
	return string(out)
}
