package structure

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"qframan/internal/constants"
	"qframan/internal/geom"
)

// allCodes is a sequence containing every amino acid once.
const allCodes = "GASCTVPLINDQEKRHFYWM"

func TestResidueAtomCounts(t *testing.T) {
	// Spot-check canonical counts (backbone 6 + side chain; GLY has HA2).
	// Template truth: acyclic-tree approximations of the aromatic rings
	// carry one extra hydrogen (F/Y) and protonated acids one extra (D/E),
	// keeping every count within ±1 of the physical residue.
	want := map[byte]int{
		'G': 7, 'A': 10, 'S': 11, 'C': 11, 'T': 14, 'V': 16,
		'L': 19, 'I': 19, 'N': 14, 'D': 13, 'Q': 17, 'E': 16,
		'K': 21, 'R': 23, 'F': 22, 'Y': 23, 'M': 17, 'W': 28, 'H': 19,
	}
	for code, n := range want {
		got, ok := ResidueAtomCount(code)
		if !ok {
			t.Fatalf("unknown code %c", code)
		}
		if got != n {
			t.Errorf("ResidueAtomCount(%c) = %d, want %d", code, got, n)
		}
	}
	if _, ok := ResidueAtomCount('Z'); ok {
		t.Error("ResidueAtomCount accepted unknown code Z")
	}
	if len(AminoAcidCodes()) != 20 {
		t.Errorf("expected 20 amino acids, got %d", len(AminoAcidCodes()))
	}
}

func TestBuildProteinBasics(t *testing.T) {
	sys, err := BuildProtein(allCodes)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sys.Residues) != 20 {
		t.Fatalf("residues = %d", len(sys.Residues))
	}
	// Mid-chain residue counts must match the template counts.
	for i, r := range sys.Residues {
		if i == 0 || i == len(sys.Residues)-1 {
			continue
		}
		want, _ := ResidueAtomCount(allCodes[i])
		if r.Count != want {
			t.Errorf("residue %d (%s): %d atoms, want %d", i, r.Name, r.Count, want)
		}
	}
	// Termini have extras: +1 H at N-term, +2 (OXT, HXT) at C-term.
	w0, _ := ResidueAtomCount(allCodes[0])
	if sys.Residues[0].Count != w0+1 {
		t.Errorf("N-terminal residue has %d atoms, want %d", sys.Residues[0].Count, w0+1)
	}
	wl, _ := ResidueAtomCount(allCodes[len(allCodes)-1])
	last := sys.Residues[len(sys.Residues)-1]
	if last.Count != wl+2 {
		t.Errorf("C-terminal residue has %d atoms, want %d", last.Count, wl+2)
	}
}

func TestBuildProteinRejectsBadInput(t *testing.T) {
	if _, err := BuildProtein(""); err == nil {
		t.Error("empty sequence accepted")
	}
	if _, err := BuildProtein("AXB"); err == nil {
		t.Error("unknown code accepted")
	}
}

// minInterAtomDistance returns the smallest pairwise distance in the system.
func minInterAtomDistance(sys *System) float64 {
	min := math.Inf(1)
	for i := range sys.Atoms {
		for j := i + 1; j < len(sys.Atoms); j++ {
			if d := sys.Atoms[i].Pos.Dist(sys.Atoms[j].Pos); d < min {
				min = d
			}
		}
	}
	return min
}

func TestProteinGeometrySane(t *testing.T) {
	sys, err := BuildProtein(allCodes)
	if err != nil {
		t.Fatal(err)
	}
	if d := minInterAtomDistance(sys); d < 0.72 {
		t.Fatalf("atoms too close: min distance %.3f Å", d)
	}
}

func TestProteinTopologyConnected(t *testing.T) {
	sys, err := BuildProtein("GAVLK")
	if err != nil {
		t.Fatal(err)
	}
	bonds := sys.Bonds()
	// Union-find over atoms: the peptide chain must be a single component.
	parent := make([]int, len(sys.Atoms))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, b := range bonds {
		parent[find(b[0])] = find(b[1])
	}
	root := find(0)
	for i := range parent {
		if find(i) != root {
			t.Fatalf("atom %d (%s) disconnected from the chain", i, sys.Atoms[i].Name)
		}
	}
}

func TestPeptideBondsPresent(t *testing.T) {
	sys, err := BuildProtein("AAAA")
	if err != nil {
		t.Fatal(err)
	}
	bonds := sys.Bonds()
	has := func(i, j int) bool {
		for _, b := range bonds {
			if (b[0] == i && b[1] == j) || (b[0] == j && b[1] == i) {
				return true
			}
		}
		return false
	}
	for k := 0; k+1 < len(sys.Residues); k++ {
		if !has(sys.Residues[k].C, sys.Residues[k+1].N) {
			t.Errorf("missing peptide bond between residues %d and %d", k, k+1)
		}
	}
	// And no bond between non-adjacent backbones.
	if has(sys.Residues[0].C, sys.Residues[2].N) {
		t.Error("spurious long-range backbone bond")
	}
}

func TestEveryResidueGeometry(t *testing.T) {
	// Each amino acid alone in a tripeptide context: check hydrogen counts
	// via bonds — every H must have exactly one bond.
	for _, code := range AminoAcidCodes() {
		seq := "G" + string(code) + "G"
		sys, err := BuildProtein(seq)
		if err != nil {
			t.Fatalf("%c: %v", code, err)
		}
		bonds := sys.Bonds()
		deg := make([]int, len(sys.Atoms))
		for _, b := range bonds {
			deg[b[0]]++
			deg[b[1]]++
		}
		for i, a := range sys.Atoms {
			if a.El == constants.H && deg[i] != 1 {
				t.Errorf("%c: hydrogen %d (%s) has %d bonds", code, i, a.Name, deg[i])
			}
			// Carbonyl/carboxyl oxygens are terminal (degree 1); every
			// heavy atom must be bonded to something.
			if a.El != constants.H && deg[i] < 1 {
				t.Errorf("%c: heavy atom %d (%s) has no bonds", code, i, a.Name)
			}
		}
	}
}

func TestBuildProteinFoldedBringsLegsClose(t *testing.T) {
	seq := RandomSequence(40, 7)
	sys, err := BuildProteinFolded(seq, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	// Some pair of residues ≥3 apart in sequence must have atoms within 4 Å.
	found := false
	for i := 0; i < len(sys.Residues) && !found; i++ {
		for j := i + 3; j < len(sys.Residues) && !found; j++ {
			ri, rj := sys.Residues[i], sys.Residues[j]
			for a := ri.First; a < ri.First+ri.Count && !found; a++ {
				for b := rj.First; b < rj.First+rj.Count; b++ {
					if sys.Atoms[a].Pos.Dist(sys.Atoms[b].Pos) <= 4.0 {
						found = true
						break
					}
				}
			}
		}
	}
	if !found {
		t.Error("folded protein has no non-neighbor residue pairs within 4 Å; generalized concaps would be empty")
	}
	// Folding must not fuse the legs covalently: min distance stays sane.
	if d := minInterAtomDistance(sys); d < 0.72 {
		t.Fatalf("folded protein atoms overlap: min distance %.3f Å", d)
	}
}

func TestWaterBox(t *testing.T) {
	sys := BuildWaterBox(3, 3, 3, geom.Vec3{})
	if len(sys.Waters) != 27 {
		t.Fatalf("waters = %d", len(sys.Waters))
	}
	if len(sys.Atoms) != 81 {
		t.Fatalf("atoms = %d", len(sys.Atoms))
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each water internally bonded, no inter-molecular covalent bonds.
	bonds := sys.Bonds()
	for _, b := range bonds {
		w1 := -1
		w2 := -2
		for wi, w := range sys.Waters {
			if b[0] >= w.First && b[0] < w.First+w.Count {
				w1 = wi
			}
			if b[1] >= w.First && b[1] < w.First+w.Count {
				w2 = wi
			}
		}
		if w1 != w2 {
			t.Fatalf("inter-molecular covalent bond between waters %d and %d", w1, w2)
		}
	}
	if len(bonds) != 2*27 {
		t.Fatalf("bond count = %d, want 54", len(bonds))
	}
}

func TestWaterGeometry(t *testing.T) {
	sys := BuildWaterBox(2, 2, 2, geom.Vec3{})
	for _, w := range sys.Waters {
		o := sys.Atoms[w.First].Pos
		h1 := sys.Atoms[w.First+1].Pos
		h2 := sys.Atoms[w.First+2].Pos
		if math.Abs(o.Dist(h1)-waterOH) > 1e-9 || math.Abs(o.Dist(h2)-waterOH) > 1e-9 {
			t.Fatal("O–H length wrong")
		}
		cosA := h1.Sub(o).Normalize().Dot(h2.Sub(o).Normalize())
		if math.Abs(math.Acos(cosA)-waterAngle) > 1e-9 {
			t.Fatal("H–O–H angle wrong")
		}
	}
}

func TestWaterBoxDeterministic(t *testing.T) {
	a := BuildWaterBox(2, 3, 4, geom.Vec3{})
	b := BuildWaterBox(2, 3, 4, geom.Vec3{})
	for i := range a.Atoms {
		if a.Atoms[i].Pos != b.Atoms[i].Pos {
			t.Fatal("water box generation is not deterministic")
		}
	}
}

func TestStreamWaterBoxMatchesBuild(t *testing.T) {
	built := BuildWaterBox(2, 2, 2, geom.Vec3{})
	i := 0
	StreamWaterBox(2, 2, 2, func(idx int, o, h1, h2 geom.Vec3) {
		_ = idx
		w := built.Waters[i]
		if built.Atoms[w.First].Pos != o {
			t.Fatalf("stream water %d oxygen mismatch", i)
		}
		i++
	})
	if i != 8 {
		t.Fatalf("streamed %d waters, want 8", i)
	}
}

func TestWaterDimerSystem(t *testing.T) {
	sys := BuildWaterDimerSystem(5)
	if len(sys.Waters) != 10 || len(sys.Atoms) != 30 {
		t.Fatalf("dimer system: %d waters, %d atoms", len(sys.Waters), len(sys.Atoms))
	}
	// Within a dimer, O–O distance is 2.8 Å; across dimers, much larger.
	for i := 0; i < 5; i++ {
		o1 := sys.Atoms[sys.Waters[2*i].First].Pos
		o2 := sys.Atoms[sys.Waters[2*i+1].First].Pos
		if math.Abs(o1.Dist(o2)-2.8) > 1e-9 {
			t.Fatalf("dimer %d O–O distance %.3f", i, o1.Dist(o2))
		}
	}
}

func TestSolvate(t *testing.T) {
	protein, err := BuildProtein("GAG")
	if err != nil {
		t.Fatal(err)
	}
	solvated := SolvateInWater(protein, 6.0, 2.4)
	if err := solvated.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(solvated.Waters) == 0 {
		t.Fatal("solvation added no waters")
	}
	if len(solvated.Residues) != 3 {
		t.Fatal("solvation lost protein residues")
	}
	// No water oxygen within the exclusion radius of any protein atom.
	for _, w := range solvated.Waters {
		o := solvated.Atoms[w.First].Pos
		for i := 0; i < protein.NumAtoms(); i++ {
			if o.Dist(solvated.Atoms[i].Pos) < 2.4 {
				t.Fatalf("water at %v overlaps protein atom %d", o, i)
			}
		}
	}
}

func TestRandomSequence(t *testing.T) {
	s1 := RandomSequence(500, 1)
	s2 := RandomSequence(500, 1)
	if s1 != s2 {
		t.Fatal("RandomSequence not deterministic for equal seeds")
	}
	if RandomSequence(500, 2) == s1 {
		t.Fatal("RandomSequence identical across seeds")
	}
	// All codes valid.
	for i := 0; i < len(s1); i++ {
		if _, ok := ResidueAtomCount(s1[i]); !ok {
			t.Fatalf("invalid code %c in random sequence", s1[i])
		}
	}
	// Leucine should be the most common residue in a long draw.
	counts := map[byte]int{}
	long := RandomSequence(20000, 3)
	for i := 0; i < len(long); i++ {
		counts[long[i]]++
	}
	if counts['L'] < counts['W'] {
		t.Error("composition weights ignored: W more common than L")
	}
}

func TestIORoundTrip(t *testing.T) {
	protein, err := BuildProtein("GAVK")
	if err != nil {
		t.Fatal(err)
	}
	sys := SolvateInWater(protein, 4.0, 2.4)
	var buf bytes.Buffer
	if err := sys.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSystem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumAtoms() != sys.NumAtoms() ||
		len(got.Residues) != len(sys.Residues) ||
		len(got.Waters) != len(sys.Waters) {
		t.Fatalf("round trip shape mismatch: %d/%d/%d vs %d/%d/%d",
			got.NumAtoms(), len(got.Residues), len(got.Waters),
			sys.NumAtoms(), len(sys.Residues), len(sys.Waters))
	}
	for i := range sys.Atoms {
		if sys.Atoms[i].El != got.Atoms[i].El {
			t.Fatalf("atom %d element mismatch", i)
		}
		if sys.Atoms[i].Pos.Dist(got.Atoms[i].Pos) > 1e-5 {
			t.Fatalf("atom %d position mismatch", i)
		}
	}
	for i := range sys.Residues {
		if sys.Residues[i].N != got.Residues[i].N || sys.Residues[i].CA != got.Residues[i].CA {
			t.Fatalf("residue %d backbone indices mismatch", i)
		}
	}
}

func TestReadSystemErrors(t *testing.T) {
	cases := []string{
		"ATOM bogus line",
		"ATOM 0 X Zz GLY 0 0 0 0 0",
		"ATOM 0 N N GLY zero 0 0 0 0",
		"ATOM 0 N N GLY 0 chain 0 0 0",
		"ATOM 0 N N GLY 0 0 x 0 0",
	}
	for _, c := range cases {
		if _, err := ReadSystem(strings.NewReader(c)); err == nil {
			t.Errorf("ReadSystem accepted %q", c)
		}
	}
}

func TestMerge(t *testing.T) {
	p1, _ := BuildProtein("GA")
	p2 := BuildWaterBox(2, 1, 1, geom.Vec3{X: 50})
	n1 := p1.NumAtoms()
	p1.Merge(p2)
	if p1.NumAtoms() != n1+6 {
		t.Fatal("merge atom count wrong")
	}
	if len(p1.Waters) != 2 {
		t.Fatal("merge water count wrong")
	}
	if p1.Waters[0].First != n1 {
		t.Fatal("merge did not offset water indices")
	}
	if err := p1.Validate(); err != nil {
		t.Fatal(err)
	}
}
