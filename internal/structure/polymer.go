package structure

import (
	"math/rand"

	"qframan/internal/constants"
	"qframan/internal/geom"
)

// Polymer geometry: an all-trans zig-zag backbone. Consecutive backbone
// bonds alternate between the unit directions (a, 0, ±c) with a² = 2/3 and
// c² = 1/3, which makes every backbone angle exactly tetrahedral (109.47°)
// for any mix of bond lengths.
const (
	zigA = 0.8164965809277260 // sqrt(2/3)
	zigC = 0.5773502691896258 // sqrt(1/3)
)

// BuildPolymerMelt builds a melt of PEG-like chains HO–(CH₂–CH₂–O)ₙ–H:
// `chains` parallel polyether chains of `monomers` repeat units each, laid
// out on a y–z grid with a deterministic seed-derived rigid jitter per chain.
// The spacing keeps chains outside covalent-detection range of each other, so
// the bond graph the fragmentation stage infers has exactly one connected
// component per chain.
//
// This is the repository's first non-protein, non-water workload: the QF
// partitioner has no peptide bonds to cut here and rejects the system, while
// the graph partitioner fragments each chain across its severable C–C and
// C–O single bonds (see FRAGMENTATION.md). Each chain is one entry of
// System.Molecules with residue name "PEG" and 7·monomers+3 atoms.
func BuildPolymerMelt(chains, monomers int, seed int64) *System {
	if chains < 1 {
		chains = 1
	}
	if monomers < 1 {
		monomers = 1
	}
	rng := rand.New(rand.NewSource(seed))
	// 6 Å between chain axes: side-group hydrogens reach ~1 Å off the
	// backbone and the jitter another 0.3 Å, leaving > 3 Å of vacuum —
	// far outside every covalent-detection threshold.
	const chainSpacing = 6.0
	// Chains per grid row before wrapping to the next z level.
	const perRow = 8

	sys := &System{}
	for ch := 0; ch < chains; ch++ {
		jitter := geom.V(rng.Float64()-0.5, rng.Float64()-0.5, rng.Float64()-0.5).Scale(0.6)
		origin := geom.V(0, float64(ch%perRow)*chainSpacing, float64(ch/perRow)*chainSpacing).Add(jitter)
		first := len(sys.Atoms)
		buildPEGChain(&sys.Atoms, origin, monomers)
		sys.Molecules = append(sys.Molecules, Residue{
			Name: "PEG", First: first, Count: len(sys.Atoms) - first,
			Chain: ch, N: -1, CA: -1, C: -1, O: -1,
		})
	}
	return sys
}

// buildPEGChain appends one HO–(CH₂–CH₂–O)ₙ–H chain starting at origin.
// Backbone heavy atoms are O, (C, C, O)×n; every carbon carries two
// hydrogens and both terminal oxygens a hydroxyl hydrogen.
func buildPEGChain(atoms *[]Atom, origin geom.Vec3, monomers int) {
	els := make([]constants.Element, 0, 1+3*monomers)
	els = append(els, constants.O)
	for m := 0; m < monomers; m++ {
		els = append(els, constants.C, constants.C, constants.O)
	}

	// Backbone positions: alternate zig directions scaled per bond.
	pos := make([]geom.Vec3, len(els))
	dirs := make([]geom.Vec3, len(els)) // dirs[k] = unit direction of bond k−1→k
	pos[0] = origin
	for k := 1; k < len(els); k++ {
		sign := 1.0
		if k%2 == 0 {
			sign = -1
		}
		d := geom.V(zigA, 0, sign*zigC)
		dirs[k] = d
		pos[k] = pos[k-1].Add(d.Scale(bondLength(els[k-1], els[k])))
	}
	dirs[0] = dirs[1] // incoming direction for the head oxygen's slot frame

	add := func(el constants.Element, p geom.Vec3, name string) {
		*atoms = append(*atoms, Atom{El: el, Pos: p, Name: name})
	}
	name := func(el constants.Element, k int) string {
		if el == constants.O {
			return "O" + itoa(k)
		}
		return "C" + itoa(k)
	}

	for k := range els {
		add(els[k], pos[k], name(els[k], k))
		switch {
		case k == 0:
			// Head hydroxyl: H opposite the first backbone bond, tilted in y.
			hd := geom.V(-zigA, 0.5, -zigC).Normalize()
			add(constants.H, pos[0].Add(hd.Scale(bondLength(constants.O, constants.H))), "HO0")
		case k == len(els)-1:
			// Tail hydroxyl: continue the zig-zag with an O–H bond.
			slots := tetrahedralDirs(dirs[k], geom.V(1, 0, 0))
			add(constants.H, pos[k].Add(slots[0].Scale(bondLength(constants.O, constants.H))), "HO"+itoa(k))
		case els[k] == constants.C:
			// Two methylene hydrogens in the out-of-plane slots.
			slots := tetrahedralDirs(dirs[k], dirs[k+1])
			hl := bondLength(constants.C, constants.H)
			add(constants.H, pos[k].Add(slots[1].Scale(hl)), "H"+itoa(k)+"A")
			add(constants.H, pos[k].Add(slots[2].Scale(hl)), "H"+itoa(k)+"B")
		}
	}
}

// itoa is a tiny strconv.Itoa for non-negative atom numbering.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
