package structure

import (
	"math"

	"qframan/internal/constants"
	"qframan/internal/geom"
)

// Water geometry (gas-phase experimental values).
const (
	waterOH    = 0.9572 // Å
	waterAngle = 104.52 * math.Pi / 180
	// waterLatticeSpacing reproduces liquid density (~0.997 g/cm³):
	// (18.015 amu / ρ·N_A)^(1/3) ≈ 3.105 Å between molecules.
	waterLatticeSpacing = 3.105
)

// waterSite returns the three atom positions (O, H1, H2) of the water
// molecule at integer lattice site (ix,iy,iz), with a deterministic
// pseudo-random orientation and a small positional jitter derived from the
// site coordinates, so water boxes of any size are generated procedurally
// (and reproducibly) without storing state — this is what lets the
// fragment-statistics mode reach 100M+ atoms in streaming fashion.
func waterSite(ix, iy, iz int) (o, h1, h2 geom.Vec3) {
	h := siteHash(ix, iy, iz)
	// Three orientation parameters and three jitter parameters from the hash.
	u1 := float64(h&0xFFFF) / 65536.0
	u2 := float64((h>>16)&0xFFFF) / 65536.0
	u3 := float64((h>>32)&0xFFFF) / 65536.0
	j1 := (float64((h>>48)&0xFF)/256.0 - 0.5) * 0.5
	j2 := (float64((h>>56)&0xFF)/256.0 - 0.5) * 0.5
	j3 := (float64((h>>40)&0xFF)/256.0 - 0.5) * 0.5

	o = geom.V(
		(float64(ix)+0.5)*waterLatticeSpacing+j1,
		(float64(iy)+0.5)*waterLatticeSpacing+j2,
		(float64(iz)+0.5)*waterLatticeSpacing+j3,
	)
	// Random orientation: first O–H along a uniformly random direction,
	// second rotated by the water angle about a random perpendicular azimuth.
	theta := math.Acos(2*u1 - 1)
	phi := 2 * math.Pi * u2
	d1 := geom.V(math.Sin(theta)*math.Cos(phi), math.Sin(theta)*math.Sin(phi), math.Cos(theta))
	ref := geom.V(0, 0, 1)
	if math.Abs(d1.Z) > 0.9 {
		ref = geom.V(1, 0, 0)
	}
	u := d1.Cross(ref).Normalize()
	v := d1.Cross(u)
	psi := 2 * math.Pi * u3
	lat := u.Scale(math.Cos(psi)).Add(v.Scale(math.Sin(psi)))
	d2 := d1.Scale(math.Cos(waterAngle)).Add(lat.Scale(math.Sin(waterAngle)))
	h1 = o.Add(d1.Scale(waterOH))
	h2 = o.Add(d2.Scale(waterOH))
	return o, h1, h2
}

// WaterSite exposes the procedural water-molecule generator: it returns the
// O, H1, H2 positions (Å) of the lattice site (ix,iy,iz). Streaming
// consumers (100M-atom fragment statistics) call this directly instead of
// materializing a System.
func WaterSite(ix, iy, iz int) (o, h1, h2 geom.Vec3) { return waterSite(ix, iy, iz) }

// siteHash is a split-mix style integer hash of a lattice site.
func siteHash(ix, iy, iz int) uint64 {
	x := uint64(ix)*0x9E3779B97F4A7C15 ^ uint64(iy)*0xC2B2AE3D27D4EB4F ^ uint64(iz)*0x165667B19E3779F9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// BuildWaterBox builds an nx×ny×nz lattice of water molecules at liquid
// density with deterministic pseudo-random orientations, shifted by origin.
func BuildWaterBox(nx, ny, nz int, origin geom.Vec3) *System {
	sys := &System{}
	sys.Atoms = make([]Atom, 0, nx*ny*nz*3)
	for iz := 0; iz < nz; iz++ {
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				o, h1, h2 := waterSite(ix, iy, iz)
				first := len(sys.Atoms)
				sys.Atoms = append(sys.Atoms,
					Atom{El: constants.O, Pos: o.Add(origin), Name: "OW"},
					Atom{El: constants.H, Pos: h1.Add(origin), Name: "HW1"},
					Atom{El: constants.H, Pos: h2.Add(origin), Name: "HW2"},
				)
				sys.Waters = append(sys.Waters, Residue{
					Name: "HOH", First: first, Count: 3,
					N: -1, CA: -1, C: -1, O: -1,
				})
			}
		}
	}
	return sys
}

// BuildWaterDimerSystem builds n water dimers: pairs of water molecules
// 2.8 Å apart (an H-bonded O···O distance), each pair well separated from
// the others. This reproduces the paper's "water dimer" benchmark system
// whose fragments all have exactly 6 atoms.
func BuildWaterDimerSystem(n int) *System {
	sys := &System{}
	const pairSep = 12.0 // Å between dimers: outside every λ threshold
	for i := 0; i < n; i++ {
		origin := geom.V(float64(i%100)*pairSep, float64((i/100)%100)*pairSep, float64(i/10000)*pairSep)
		o1, h11, h12 := waterSite(3*i, 1, 7)
		base := geom.Vec3{}.Sub(o1).Add(origin)
		o2, h21, h22 := waterSite(3*i+1, 5, 11)
		shift2 := o1.Add(geom.V(2.8, 0, 0)).Sub(o2)
		first := len(sys.Atoms)
		sys.Atoms = append(sys.Atoms,
			Atom{El: constants.O, Pos: o1.Add(base), Name: "OW"},
			Atom{El: constants.H, Pos: h11.Add(base), Name: "HW1"},
			Atom{El: constants.H, Pos: h12.Add(base), Name: "HW2"},
		)
		sys.Waters = append(sys.Waters, Residue{Name: "HOH", First: first, Count: 3, N: -1, CA: -1, C: -1, O: -1})
		first = len(sys.Atoms)
		sys.Atoms = append(sys.Atoms,
			Atom{El: constants.O, Pos: o2.Add(shift2).Add(base), Name: "OW"},
			Atom{El: constants.H, Pos: h21.Add(shift2).Add(base), Name: "HW1"},
			Atom{El: constants.H, Pos: h22.Add(shift2).Add(base), Name: "HW2"},
		)
		sys.Waters = append(sys.Waters, Residue{Name: "HOH", First: first, Count: 3, N: -1, CA: -1, C: -1, O: -1})
	}
	return sys
}

// SolvateInWater surrounds the protein with a water box padded by pad Å on
// every side, removing waters whose oxygen lies within exclusion Å of any
// protein atom.
func SolvateInWater(protein *System, pad, exclusion float64) *System {
	lo, hi := boundingBox(protein)
	lo = lo.Sub(geom.V(pad, pad, pad))
	hi = hi.Add(geom.V(pad, pad, pad))
	nx := int(math.Ceil((hi.X - lo.X) / waterLatticeSpacing))
	ny := int(math.Ceil((hi.Y - lo.Y) / waterLatticeSpacing))
	nz := int(math.Ceil((hi.Z - lo.Z) / waterLatticeSpacing))

	// Cell list over protein atoms for exclusion tests.
	ppos := protein.Positions()
	cl := geom.NewCellList(ppos, exclusion)

	out := &System{}
	out.Atoms = append(out.Atoms, protein.Atoms...)
	out.Residues = append(out.Residues, protein.Residues...)
	out.Waters = append(out.Waters, protein.Waters...)
	for iz := 0; iz < nz; iz++ {
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				o, h1, h2 := waterSite(ix, iy, iz)
				o = o.Add(lo)
				if len(cl.Neighbors(o, -1)) > 0 {
					continue // too close to the protein
				}
				first := len(out.Atoms)
				out.Atoms = append(out.Atoms,
					Atom{El: constants.O, Pos: o, Name: "OW"},
					Atom{El: constants.H, Pos: h1.Add(lo), Name: "HW1"},
					Atom{El: constants.H, Pos: h2.Add(lo), Name: "HW2"},
				)
				out.Waters = append(out.Waters, Residue{Name: "HOH", First: first, Count: 3, N: -1, CA: -1, C: -1, O: -1})
			}
		}
	}
	return out
}

func boundingBox(s *System) (lo, hi geom.Vec3) {
	if len(s.Atoms) == 0 {
		return
	}
	lo, hi = s.Atoms[0].Pos, s.Atoms[0].Pos
	for _, a := range s.Atoms[1:] {
		lo.X = math.Min(lo.X, a.Pos.X)
		lo.Y = math.Min(lo.Y, a.Pos.Y)
		lo.Z = math.Min(lo.Z, a.Pos.Z)
		hi.X = math.Max(hi.X, a.Pos.X)
		hi.Y = math.Max(hi.Y, a.Pos.Y)
		hi.Z = math.Max(hi.Z, a.Pos.Z)
	}
	return
}

// StreamWaterBox invokes fn once per water molecule of an nx×ny×nz box
// without materializing the system, enabling fragment statistics for boxes
// with hundreds of millions of atoms. fn receives the molecule's lattice
// index and its three atom positions.
func StreamWaterBox(nx, ny, nz int, fn func(i int, o, h1, h2 geom.Vec3)) {
	i := 0
	for iz := 0; iz < nz; iz++ {
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				o, h1, h2 := waterSite(ix, iy, iz)
				fn(i, o, h1, h2)
				i++
			}
		}
	}
}
