// Package constants provides physical constants, unit conversions, and
// per-element data used throughout the QF-RAMAN reproduction.
//
// Internally the quantum engine works in Hartree atomic units (energy in
// hartree, length in bohr, mass in electron masses), while structure
// generation and user-facing geometry use ångströms and vibrational
// frequencies are reported in cm⁻¹, matching the conventions of the paper's
// Raman spectra (§VI-A).
package constants

import "math"

// Unit conversions.
const (
	// BohrPerAngstrom converts ångströms to bohr.
	BohrPerAngstrom = 1.8897259886
	// AngstromPerBohr converts bohr to ångströms.
	AngstromPerBohr = 1.0 / BohrPerAngstrom
	// EVPerHartree converts hartree to electron volts.
	EVPerHartree = 27.211386245988
	// AMUToElectronMass converts atomic mass units to electron masses.
	AMUToElectronMass = 1822.888486209
	// HartreeToInvCM converts an energy in hartree to a wavenumber in cm⁻¹.
	HartreeToInvCM = 219474.6313632
)

// FreqAUToInvCM converts a harmonic angular frequency in atomic units
// (sqrt of a mass-weighted Hessian eigenvalue, hartree/(bohr²·mₑ)) to cm⁻¹.
//
// If λ is an eigenvalue of the mass-weighted Hessian in atomic units, the
// wavenumber is sqrt(λ)·FreqAUToInvCM for λ ≥ 0.
const FreqAUToInvCM = HartreeToInvCM

// WavenumberFromEigenvalue converts a mass-weighted Hessian eigenvalue in
// atomic units to a signed wavenumber in cm⁻¹: negative eigenvalues (unstable
// modes) map to negative wavenumbers, the usual quantum-chemistry convention.
func WavenumberFromEigenvalue(lambda float64) float64 {
	if lambda < 0 {
		return -math.Sqrt(-lambda) * FreqAUToInvCM
	}
	return math.Sqrt(lambda) * FreqAUToInvCM
}

// Element identifies a chemical element supported by the engine.
type Element uint8

// Supported elements. The fragment engine caps dangling bonds with hydrogen
// and biological systems need only H, C, N, O, S.
const (
	H Element = iota + 1
	C
	N
	O
	S
	numElements
)

// String returns the element symbol.
func (e Element) String() string {
	switch e {
	case H:
		return "H"
	case C:
		return "C"
	case N:
		return "N"
	case O:
		return "O"
	case S:
		return "S"
	}
	return "X"
}

// ElementFromSymbol returns the Element for a symbol such as "C" or "Na".
// The boolean reports whether the symbol is supported.
func ElementFromSymbol(s string) (Element, bool) {
	switch s {
	case "H", "h":
		return H, true
	case "C", "c":
		return C, true
	case "N", "n":
		return N, true
	case "O", "o":
		return O, true
	case "S", "s":
		return S, true
	}
	return 0, false
}

// elemData collects per-element parameters for the SCC tight-binding model.
type elemData struct {
	symbol string
	massA  float64 // atomic mass in amu
	// covalentR is the covalent radius in Å, used for bond detection.
	covalentR float64
	// nOrbitals is the number of valence orbitals in the minimal basis
	// (1 for H: 1s; 4 for C/N/O/S: 2s + 2p).
	nOrbitals int
	// nValence is the number of valence electrons contributed.
	nValence int
	// esS and esP are on-site energies (hartree) of the valence s and p
	// shells, taken from tabulated DFTB-style atomic calculations.
	esS, esP float64
	// hubbardU is the Hubbard parameter (hartree) controlling the
	// second-order charge self-consistency.
	hubbardU float64
	// alpha is the Gaussian exponent (1/bohr²) of the valence orbitals:
	// the minimal basis uses a single normalized Cartesian Gaussian per
	// orbital, sized so that bonded-neighbor overlaps land in the 0.2–0.6
	// range typical of minimal atomic bases.
	alpha float64
}

var elements = [numElements]elemData{
	H: {symbol: "H", massA: 1.00794, covalentR: 0.31, nOrbitals: 1, nValence: 1,
		esS: -0.2386, esP: 0, hubbardU: 0.4195, alpha: 0.40},
	C: {symbol: "C", massA: 12.0107, covalentR: 0.76, nOrbitals: 4, nValence: 4,
		esS: -0.5049, esP: -0.1944, hubbardU: 0.3647, alpha: 0.45},
	N: {symbol: "N", massA: 14.0067, covalentR: 0.71, nOrbitals: 4, nValence: 5,
		esS: -0.6400, esP: -0.2607, hubbardU: 0.4309, alpha: 0.50},
	O: {symbol: "O", massA: 15.9994, covalentR: 0.66, nOrbitals: 4, nValence: 6,
		esS: -0.8788, esP: -0.3321, hubbardU: 0.4954, alpha: 0.60},
	S: {symbol: "S", massA: 32.065, covalentR: 1.05, nOrbitals: 4, nValence: 6,
		esS: -0.6989, esP: -0.2600, hubbardU: 0.3288, alpha: 0.35},
}

// MassAMU returns the atomic mass in amu.
func (e Element) MassAMU() float64 { return elements[e].massA }

// MassAU returns the atomic mass in electron masses (atomic units).
func (e Element) MassAU() float64 { return elements[e].massA * AMUToElectronMass }

// CovalentRadius returns the covalent radius in Å.
func (e Element) CovalentRadius() float64 { return elements[e].covalentR }

// electronegativity holds Pauling electronegativities, used by the graph
// partitioner's cut-quality score: severing a polar bond perturbs the
// fragments' charge distribution more than severing an apolar C–C bond, so
// polar bonds carry a higher severance cost (see FRAGMENTATION.md).
var electronegativity = [numElements]float64{
	H: 2.20, C: 2.55, N: 3.04, O: 3.44, S: 2.58,
}

// Electronegativity returns the Pauling electronegativity of the element.
func (e Element) Electronegativity() float64 { return electronegativity[e] }

// NumOrbitals returns the number of valence basis functions on the element.
func (e Element) NumOrbitals() int { return elements[e].nOrbitals }

// NumValence returns the number of valence electrons the element contributes.
func (e Element) NumValence() int { return elements[e].nValence }

// OnsiteS returns the valence s on-site energy in hartree.
func (e Element) OnsiteS() float64 { return elements[e].esS }

// OnsiteP returns the valence p on-site energy in hartree.
func (e Element) OnsiteP() float64 { return elements[e].esP }

// HubbardU returns the Hubbard parameter in hartree.
func (e Element) HubbardU() float64 { return elements[e].hubbardU }

// GaussianAlpha returns the Gaussian exponent of the valence orbitals in
// 1/bohr².
func (e Element) GaussianAlpha() float64 { return elements[e].alpha }

// Valid reports whether e is a supported element.
func (e Element) Valid() bool { return e >= H && e < numElements }
