package constants

import (
	"math"
	"testing"
)

func TestUnitConversionsRoundTrip(t *testing.T) {
	if math.Abs(BohrPerAngstrom*AngstromPerBohr-1) > 1e-15 {
		t.Fatal("bohr/Å conversions are not inverses")
	}
	// 1 hartree ≈ 27.211 eV ≈ 219474.6 cm⁻¹: cross-check the ratio.
	if math.Abs(HartreeToInvCM/EVPerHartree-8065.54) > 0.1 {
		t.Fatalf("hartree→cm⁻¹ per eV = %v, want ≈8065.54", HartreeToInvCM/EVPerHartree)
	}
}

func TestWavenumberFromEigenvalue(t *testing.T) {
	// A known case: water's O–H stretch near 3650 cm⁻¹ corresponds to
	// λ = (ν/conv)².
	nu := 3650.0
	lambda := (nu / FreqAUToInvCM) * (nu / FreqAUToInvCM)
	if got := WavenumberFromEigenvalue(lambda); math.Abs(got-nu) > 1e-9 {
		t.Fatalf("round trip gave %v", got)
	}
	// Negative eigenvalues map to negative (imaginary) wavenumbers.
	if got := WavenumberFromEigenvalue(-lambda); math.Abs(got+nu) > 1e-9 {
		t.Fatalf("negative eigenvalue gave %v", got)
	}
	if WavenumberFromEigenvalue(0) != 0 {
		t.Fatal("zero eigenvalue should map to zero")
	}
}

func TestElementData(t *testing.T) {
	for _, el := range []Element{H, C, N, O, S} {
		if !el.Valid() {
			t.Fatalf("%v invalid", el)
		}
		if el.MassAMU() <= 0 || el.CovalentRadius() <= 0 || el.HubbardU() <= 0 || el.GaussianAlpha() <= 0 {
			t.Fatalf("%v has non-positive parameters", el)
		}
		if el.MassAU() <= el.MassAMU() {
			t.Fatalf("%v: a.u. mass must exceed amu mass", el)
		}
		if el.OnsiteS() >= 0 {
			t.Fatalf("%v: valence s level should be bound (negative)", el)
		}
		if el == H {
			if el.NumOrbitals() != 1 || el.NumValence() != 1 {
				t.Fatal("H should have one orbital and one electron")
			}
			continue
		}
		if el.NumOrbitals() != 4 {
			t.Fatalf("%v should carry s+p", el)
		}
		// p levels lie above s levels.
		if el.OnsiteP() <= el.OnsiteS() {
			t.Fatalf("%v: ε_p ≤ ε_s", el)
		}
	}
	// Chemistry orderings: electronegativity trend H < C < N < O on the
	// s levels (deeper = more electronegative).
	if !(O.OnsiteS() < N.OnsiteS() && N.OnsiteS() < C.OnsiteS() && C.OnsiteS() < H.OnsiteS()) {
		t.Fatal("on-site energies do not follow the electronegativity trend")
	}
}

func TestElementSymbols(t *testing.T) {
	for _, c := range []struct {
		sym string
		el  Element
	}{{"H", H}, {"C", C}, {"N", N}, {"O", O}, {"S", S}} {
		got, ok := ElementFromSymbol(c.sym)
		if !ok || got != c.el {
			t.Fatalf("ElementFromSymbol(%q) = %v, %v", c.sym, got, ok)
		}
		if got.String() != c.sym {
			t.Fatalf("%v.String() = %q", got, got.String())
		}
	}
	if _, ok := ElementFromSymbol("Na"); ok {
		t.Fatal("accepted unsupported element")
	}
	if Element(0).Valid() || Element(99).Valid() {
		t.Fatal("invalid element codes accepted")
	}
}
