// Package scf implements the ground-state electronic-structure engine that
// stands in for the paper's all-electron DFT: a self-consistent-charge
// tight-binding model over the minimal Gaussian basis (see DESIGN.md §2).
// It has the full structure of an SCF DFT code — overlap matrix, generalized
// eigenproblem HC = SCε, density matrix, charge self-consistency, total
// energy, and analytic nuclear gradients — plus a bonded reference force
// field (bond + angle terms parameterized to experimental vibrational
// frequencies) playing the role of the DFTB repulsive potential.
package scf

import (
	"fmt"
	"math"

	"qframan/internal/basis"
	"qframan/internal/constants"
	"qframan/internal/geom"
	"qframan/internal/linalg"
	"qframan/internal/structure"
)

// wolfsbergK is the Wolfsberg–Helmholz constant of the off-site Hamiltonian
// H⁰_μν = K/2·(ε_μ+ε_ν)·S_μν.
const wolfsbergK = 1.75

// Bond is a bond term ½k(r−r0)² + c(r−r0) of the repulsive potential. The
// linear coefficient c is fitted by CalibrateRestForces so the reference
// geometry is a stationary point of the total energy — the same role the
// fitted repulsive potential plays in DFTB parameterizations.
type Bond struct {
	I, J int
	K    float64 // hartree/bohr²
	R0   float64 // bohr (reference geometry)
	C    float64 // hartree/bohr, linear force-balance term
}

// Angle is a cosine-harmonic angle term ½k(cosθ−cos0)² + c(cosθ−cos0)
// centered at atom J.
type Angle struct {
	I, J, Kk int
	K        float64 // hartree
	Cos0     float64
	C        float64 // hartree, linear force-balance term
}

// Dihedral is a torsion term ½k·Δ² + c·Δ with Δ = wrap(φ−φ0) over the atoms
// I–J–K–L (J–K the central bond). The harmonic acts on the angle itself —
// a cos-harmonic would have zero quadratic stiffness at planar equilibria
// (φ0 = 0 or π), leaving amide out-of-plane wags unstable. Torsions are the
// softest internal coordinates; without them the fitted linear terms can
// leave spurious negative curvature along methyl and backbone rotations.
type Dihedral struct {
	I, J, Kk, L int
	K           float64 // hartree/rad²
	Phi0        float64 // radians
	C           float64 // hartree/rad, linear force-balance term
}

// dihedralAngle returns the torsion angle φ ∈ (−π, π] for positions a-b-c-d.
func dihedralAngle(a, b, c, d geom.Vec3) float64 {
	b1 := b.Sub(a)
	b2 := c.Sub(b)
	b3 := d.Sub(c)
	n1 := b1.Cross(b2)
	n2 := b2.Cross(b3)
	if n1.Norm() < 1e-12 || n2.Norm() < 1e-12 {
		return 0 // collinear chain: torsion undefined
	}
	return math.Atan2(b2.Norm()*b1.Dot(n2), n1.Dot(n2))
}

// dihedralDelta returns wrap(φ−φ0) ∈ (−π, π], smooth around Δ = 0 even when
// φ0 sits at the ±π branch cut.
func dihedralDelta(a, b, c, d geom.Vec3, phi0 float64) float64 {
	phi := dihedralAngle(a, b, c, d)
	return math.Atan2(math.Sin(phi-phi0), math.Cos(phi-phi0))
}

// dihedralDeltaGrad returns ∂Δ/∂(a,b,c,d) by central differences — the pure
// geometry is cheap next to an SCF solve and the FD gradient is exact to
// ~1e-10.
func dihedralDeltaGrad(a, b, c, d geom.Vec3, phi0 float64) [4]geom.Vec3 {
	const h = 1e-6
	pts := [4]geom.Vec3{a, b, c, d}
	var out [4]geom.Vec3
	for p := 0; p < 4; p++ {
		for ax := 0; ax < 3; ax++ {
			pp, pm := pts, pts
			switch ax {
			case 0:
				pp[p].X += h
				pm[p].X -= h
			case 1:
				pp[p].Y += h
				pm[p].Y -= h
			case 2:
				pp[p].Z += h
				pm[p].Z -= h
			}
			g := (dihedralDelta(pp[0], pp[1], pp[2], pp[3], phi0) -
				dihedralDelta(pm[0], pm[1], pm[2], pm[3], phi0)) / (2 * h)
			switch ax {
			case 0:
				out[p].X = g
			case 1:
				out[p].Y = g
			case 2:
				out[p].Z = g
			}
		}
	}
	return out
}

// Model is a molecular fragment ready for SCF at a given geometry. The
// force-field equilibria (R0, Cos0) are frozen at the reference geometry the
// model was created with, so displaced evaluations (finite-difference
// Hessians, the paper's per-displacement worker step) see a consistent
// potential energy surface.
type Model struct {
	Els []constants.Element
	Pos []geom.Vec3 // bohr (current geometry)

	Basis *basis.Set
	S     *linalg.Matrix
	H0    *linalg.Matrix
	Gamma *linalg.Matrix // atom×atom Klopman–Ohno matrix
	Dip   [3]*linalg.Matrix

	Zval      []float64 // valence charge per atom
	Bonds     []Bond
	Angles    []Angle
	Dihedrals []Dihedral

	// Ops receives the BLAS accounting for this model's computations.
	Ops *linalg.Ops
}

// NewModel builds a model from elements and positions in ångströms. Bond
// and angle terms are detected from covalent radii at this reference
// geometry and their equilibria frozen there.
func NewModel(els []constants.Element, posAngstrom []geom.Vec3) (*Model, error) {
	if len(els) == 0 || len(els) != len(posAngstrom) {
		return nil, fmt.Errorf("scf: %d elements vs %d positions", len(els), len(posAngstrom))
	}
	for _, el := range els {
		if !el.Valid() {
			return nil, fmt.Errorf("scf: invalid element %v", el)
		}
	}
	pos := make([]geom.Vec3, len(posAngstrom))
	for i, p := range posAngstrom {
		pos[i] = p.Scale(constants.BohrPerAngstrom)
	}
	m := &Model{Els: els, Pos: pos, Ops: &linalg.DefaultOps}
	m.Zval = make([]float64, len(els))
	for i, el := range els {
		m.Zval[i] = float64(el.NumValence())
	}
	if m.numElectrons()%2 != 0 {
		return nil, fmt.Errorf("scf: fragment has odd electron count %d (open shells unsupported)", m.numElectrons())
	}
	m.buildFF(posAngstrom)
	m.rebuild()
	return m, nil
}

func (m *Model) numElectrons() int {
	n := 0
	for _, el := range m.Els {
		n += el.NumValence()
	}
	return n
}

// NumAtoms returns the atom count.
func (m *Model) NumAtoms() int { return len(m.Els) }

// buildFF detects bonds, angles, and dihedrals at the reference geometry
// (Å input) and sets equilibrium values from it.
func (m *Model) buildFF(posAngstrom []geom.Vec3) {
	bonds := structure.SubsetBonds(m.Els, posAngstrom)
	adj := make([][]int, len(m.Els))
	for _, b := range bonds {
		i, j := b[0], b[1]
		r0 := m.Pos[i].Dist(m.Pos[j]) // bohr
		m.Bonds = append(m.Bonds, Bond{
			I: i, J: j,
			K:  bondForceConstant(m.Els[i], m.Els[j], posAngstrom[i].Dist(posAngstrom[j])),
			R0: r0,
		})
		adj[i] = append(adj[i], j)
		adj[j] = append(adj[j], i)
	}
	for j, nbrs := range adj {
		for a := 0; a < len(nbrs); a++ {
			for b := a + 1; b < len(nbrs); b++ {
				i, k := nbrs[a], nbrs[b]
				u := m.Pos[i].Sub(m.Pos[j]).Normalize()
				v := m.Pos[k].Sub(m.Pos[j]).Normalize()
				m.Angles = append(m.Angles, Angle{
					I: i, J: j, Kk: k,
					K:    angleForceConstant(m.Els[i], m.Els[j], m.Els[k]),
					Cos0: u.Dot(v),
				})
			}
		}
	}
	// Dihedral terms: one per i–j–k–l path through each central bond j–k.
	// They act only on the torsional coordinate, so they stabilize methyl
	// and backbone rotations without stiffening stretches or bends.
	const torsionK = 0.06 // hartree
	for j := range adj {
		for _, k := range adj[j] {
			if k <= j {
				continue
			}
			for _, i := range adj[j] {
				if i == k {
					continue
				}
				for _, l := range adj[k] {
					if l == j || l == i {
						continue
					}
					m.Dihedrals = append(m.Dihedrals, Dihedral{
						I: i, J: j, Kk: k, L: l,
						K:    torsionK,
						Phi0: dihedralAngle(m.Pos[i], m.Pos[j], m.Pos[k], m.Pos[l]),
					})
				}
			}
		}
	}
}

// WithPositions returns a model at new positions (bohr) sharing the frozen
// force field and counters. Electronic matrices are rebuilt.
func (m *Model) WithPositions(posBohr []geom.Vec3) *Model {
	if len(posBohr) != len(m.Els) {
		panic("scf: WithPositions length mismatch")
	}
	n := *m
	n.Pos = append([]geom.Vec3(nil), posBohr...)
	n.rebuild()
	return &n
}

// Displaced returns a model with atom a moved by delta (bohr) along axis
// (0=x, 1=y, 2=z) — one worker unit of the paper's displacement loop.
func (m *Model) Displaced(atom, axis int, delta float64) *Model {
	pos := append([]geom.Vec3(nil), m.Pos...)
	switch axis {
	case 0:
		pos[atom].X += delta
	case 1:
		pos[atom].Y += delta
	case 2:
		pos[atom].Z += delta
	default:
		panic("scf: axis out of range")
	}
	return m.WithPositions(pos)
}

// rebuild recomputes the geometry-dependent electronic matrices.
func (m *Model) rebuild() {
	m.Basis = basis.ForAtoms(m.Els, m.Pos)
	m.S = m.Basis.OverlapMatrix()
	m.Dip = m.Basis.DipoleMatrices()
	n := m.Basis.Size()
	m.H0 = linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		fi := &m.Basis.Funcs[i]
		m.H0.Set(i, i, fi.OnsiteE)
		for j := i + 1; j < n; j++ {
			fj := &m.Basis.Funcs[j]
			var v float64
			if fi.Atom != fj.Atom {
				v = 0.5 * wolfsbergK * (fi.OnsiteE + fj.OnsiteE) * m.S.At(i, j)
			}
			// On-atom off-diagonal blocks vanish by orthogonality of the
			// s/p functions on the same center (S is the identity there).
			m.H0.Set(i, j, v)
			m.H0.Set(j, i, v)
		}
	}
	// Klopman–Ohno gamma.
	na := len(m.Els)
	m.Gamma = linalg.NewMatrix(na, na)
	for a := 0; a < na; a++ {
		ua := m.Els[a].HubbardU()
		m.Gamma.Set(a, a, ua)
		for b := a + 1; b < na; b++ {
			g := klopmanOhno(m.Pos[a].Dist(m.Pos[b]), ua, m.Els[b].HubbardU())
			m.Gamma.Set(a, b, g)
			m.Gamma.Set(b, a, g)
		}
	}
}

func klopmanOhno(r, ua, ub float64) float64 {
	c := 0.5 * (1/ua + 1/ub)
	return 1 / math.Sqrt(r*r+c*c)
}
