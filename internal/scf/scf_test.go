package scf

import (
	"math"
	"testing"

	"qframan/internal/constants"
	"qframan/internal/geom"
)

// waterGeometry returns the experimental water geometry in Å.
func waterGeometry() ([]constants.Element, []geom.Vec3) {
	theta := 104.52 * math.Pi / 180
	return []constants.Element{constants.O, constants.H, constants.H},
		[]geom.Vec3{
			{},
			geom.V(0.9572, 0, 0),
			geom.V(0.9572*math.Cos(theta), 0.9572*math.Sin(theta), 0),
		}
}

// methane returns a tetrahedral CH4 in Å.
func methane() ([]constants.Element, []geom.Vec3) {
	d := 1.09 / math.Sqrt(3)
	return []constants.Element{constants.C, constants.H, constants.H, constants.H, constants.H},
		[]geom.Vec3{
			{},
			geom.V(d, d, d),
			geom.V(d, -d, -d),
			geom.V(-d, d, -d),
			geom.V(-d, -d, d),
		}
}

func solveWater(t *testing.T) (*Model, *Result) {
	t.Helper()
	els, pos := waterGeometry()
	m, err := NewModel(els, pos)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.SolveSCF(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

func TestWaterSCFConverges(t *testing.T) {
	m, res := solveWater(t)
	if res.Iterations <= 1 {
		t.Fatal("SCF converged suspiciously fast; SCC term inactive?")
	}
	// Electron count: tr(P·S) = 8.
	n := traceProduct(res.P, m.S)
	if math.Abs(n-8) > 1e-8 {
		t.Fatalf("tr(PS) = %v, want 8", n)
	}
	// Charge neutrality: Σ Δq = 0.
	var sum float64
	for _, q := range res.DeltaQ {
		sum += q
	}
	if math.Abs(sum) > 1e-8 {
		t.Fatalf("Σ Δq = %v", sum)
	}
	// Oxygen pulls electrons: Δq_O > 0 (electron excess), Δq_H < 0.
	if res.DeltaQ[0] <= 0 || res.DeltaQ[1] >= 0 || res.DeltaQ[2] >= 0 {
		t.Fatalf("unphysical charges %v (want O negative, H positive)", res.DeltaQ)
	}
	// HOMO-LUMO gap positive (closed-shell insulating molecule).
	if res.Gap <= 0 {
		t.Fatalf("gap = %v", res.Gap)
	}
	// Repulsive energy at the reference geometry is exactly zero (FF
	// equilibria frozen there).
	if math.Abs(res.ERep) > 1e-14 {
		t.Fatalf("ERep at reference = %v", res.ERep)
	}
}

func TestEnergyTranslationInvariance(t *testing.T) {
	els, pos := waterGeometry()
	m1, _ := NewModel(els, pos)
	r1, err := m1.SolveSCF(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	shift := geom.V(3.7, -2.1, 0.9)
	pos2 := make([]geom.Vec3, len(pos))
	for i, p := range pos {
		pos2[i] = p.Add(shift)
	}
	m2, _ := NewModel(els, pos2)
	r2, err := m2.SolveSCF(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Energy-r2.Energy) > 1e-10 {
		t.Fatalf("translation changed energy by %g", r1.Energy-r2.Energy)
	}
}

func TestEnergyRotationInvariance(t *testing.T) {
	els, pos := waterGeometry()
	m1, _ := NewModel(els, pos)
	r1, err := m1.SolveSCF(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	axis := geom.V(1, 2, -1)
	pos2 := make([]geom.Vec3, len(pos))
	for i, p := range pos {
		pos2[i] = geom.RotateAbout(p, geom.Vec3{}, axis, 0.83)
	}
	m2, _ := NewModel(els, pos2)
	r2, err := m2.SolveSCF(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Energy-r2.Energy) > 1e-9 {
		t.Fatalf("rotation changed energy by %g", r1.Energy-r2.Energy)
	}
}

// totalEnergyAt computes the SCF energy with atom a displaced by delta bohr
// along axis.
func totalEnergyAt(t *testing.T, m *Model, atom, axis int, delta float64) float64 {
	t.Helper()
	md := m.Displaced(atom, axis, delta)
	res, err := md.SolveSCF(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res.Energy
}

func testForcesAgainstFD(t *testing.T, els []constants.Element, pos []geom.Vec3) {
	t.Helper()
	m, err := NewModel(els, pos)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.SolveSCF(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	forces := m.Forces(res)
	const h = 1e-4
	for a := 0; a < m.NumAtoms(); a++ {
		want := geom.V(
			-(totalEnergyAt(t, m, a, 0, h)-totalEnergyAt(t, m, a, 0, -h))/(2*h),
			-(totalEnergyAt(t, m, a, 1, h)-totalEnergyAt(t, m, a, 1, -h))/(2*h),
			-(totalEnergyAt(t, m, a, 2, h)-totalEnergyAt(t, m, a, 2, -h))/(2*h),
		)
		if forces[a].Sub(want).Norm() > 2e-6 {
			t.Fatalf("atom %d: analytic force %v vs FD %v (diff %g)",
				a, forces[a], want, forces[a].Sub(want).Norm())
		}
	}
}

func TestForcesMatchFiniteDifferenceWater(t *testing.T) {
	els, pos := waterGeometry()
	testForcesAgainstFD(t, els, pos)
}

func TestForcesMatchFiniteDifferenceMethane(t *testing.T) {
	els, pos := methane()
	testForcesAgainstFD(t, els, pos)
}

func TestForcesMatchFiniteDifferenceDistorted(t *testing.T) {
	// Displaced geometry: FF terms active, Pulay terms large.
	els, pos := waterGeometry()
	pos[1] = pos[1].Add(geom.V(0.08, -0.05, 0.03))
	pos[2] = pos[2].Add(geom.V(-0.04, 0.06, -0.07))
	testForcesAgainstFD(t, els, pos)
}

func TestForcesMatchFDWithStrongSmearing(t *testing.T) {
	// With a large electronic temperature the occupations are genuinely
	// fractional; the analytic forces must equal the gradient of the
	// Mermin free energy (which Result.Energy is).
	els, pos := waterGeometry()
	pos[1] = pos[1].Add(geom.V(0.06, -0.03, 0.02))
	m, err := NewModel(els, pos)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Smearing = 0.08
	res, err := m.SolveSCF(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Confirm fractionality so the test is not vacuous.
	fractional := false
	for _, f := range res.Occ {
		if f > 0.05 && f < 1.95 {
			fractional = true
		}
	}
	if !fractional {
		t.Fatal("occupations not fractional at σ=0.08; raise σ")
	}
	forces := m.Forces(res)
	const h = 1e-4
	for a := 0; a < m.NumAtoms(); a++ {
		var want geom.Vec3
		for axis := 0; axis < 3; axis++ {
			rp, err := m.Displaced(a, axis, h).SolveSCF(opt)
			if err != nil {
				t.Fatal(err)
			}
			rm, err := m.Displaced(a, axis, -h).SolveSCF(opt)
			if err != nil {
				t.Fatal(err)
			}
			g := -(rp.Energy - rm.Energy) / (2 * h)
			switch axis {
			case 0:
				want.X = g
			case 1:
				want.Y = g
			case 2:
				want.Z = g
			}
		}
		if forces[a].Sub(want).Norm() > 5e-6 {
			t.Fatalf("atom %d: smeared analytic force %v vs FD %v", a, forces[a], want)
		}
	}
}

func TestForcesSumToZero(t *testing.T) {
	els, pos := waterGeometry()
	pos[1] = pos[1].Add(geom.V(0.05, 0.02, -0.01))
	m, _ := NewModel(els, pos)
	res, err := m.SolveSCF(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sum geom.Vec3
	for _, f := range m.Forces(res) {
		sum = sum.Add(f)
	}
	if sum.Norm() > 1e-9 {
		t.Fatalf("force sum %v (translation invariance violated)", sum)
	}
}

func TestWaterDipole(t *testing.T) {
	m, res := solveWater(t)
	mu := m.Dipole(res)
	// Water is polar: |μ| between 0.1 and 2 a.u. and symmetric about the
	// bisector plane (z component zero for our planar geometry).
	if mu.Norm() < 0.05 || mu.Norm() > 2.5 {
		t.Fatalf("water dipole magnitude %v a.u. unphysical", mu.Norm())
	}
	if math.Abs(mu.Z) > 1e-9 {
		t.Fatalf("water dipole out of plane: %v", mu)
	}
	// It must point from O toward the H side (positive x+y region).
	if mu.X <= 0 || mu.Y <= 0 {
		t.Fatalf("water dipole direction %v (want toward hydrogens)", mu)
	}
}

func TestFieldShiftsDipole(t *testing.T) {
	els, pos := waterGeometry()
	m, _ := NewModel(els, pos)
	opt := DefaultOptions()
	r0, err := m.SolveSCF(opt)
	if err != nil {
		t.Fatal(err)
	}
	mu0 := m.Dipole(r0)
	opt.Field = geom.V(0.005, 0, 0)
	r1, err := m.SolveSCF(opt)
	if err != nil {
		t.Fatal(err)
	}
	mu1 := m.Dipole(r1)
	// With H_elec = +E·r for electrons, electrons move toward −E, so the
	// dipole μ = ΣZR − tr(PD) gains a positive x component: polarizability
	// α_xx = ∂μ_x/∂E_x must be positive.
	if (mu1.X-mu0.X)/0.005 <= 0 {
		t.Fatalf("α_xx = %v ≤ 0: field convention broken", (mu1.X-mu0.X)/0.005)
	}
}

func TestOddElectronRejected(t *testing.T) {
	if _, err := NewModel(
		[]constants.Element{constants.H},
		[]geom.Vec3{{}},
	); err == nil {
		t.Fatal("accepted an odd-electron fragment")
	}
}

func TestInvalidOptions(t *testing.T) {
	els, pos := waterGeometry()
	m, _ := NewModel(els, pos)
	for _, opt := range []Options{
		{MaxIter: 0, Tol: 1e-8, Mixing: 0.4},
		{MaxIter: 10, Tol: 0, Mixing: 0.4},
		{MaxIter: 10, Tol: 1e-8, Mixing: 0},
		{MaxIter: 10, Tol: 1e-8, Mixing: 1.5},
	} {
		if _, err := m.SolveSCF(opt); err == nil {
			t.Fatalf("accepted options %+v", opt)
		}
	}
}

func TestModelValidation(t *testing.T) {
	if _, err := NewModel(nil, nil); err == nil {
		t.Fatal("accepted empty model")
	}
	if _, err := NewModel([]constants.Element{constants.O},
		[]geom.Vec3{{}, {}}); err == nil {
		t.Fatal("accepted mismatched lengths")
	}
}

func TestFFDetectsWaterTopology(t *testing.T) {
	els, pos := waterGeometry()
	m, _ := NewModel(els, pos)
	if len(m.Bonds) != 2 {
		t.Fatalf("water bonds = %d, want 2", len(m.Bonds))
	}
	if len(m.Angles) != 1 {
		t.Fatalf("water angles = %d, want 1", len(m.Angles))
	}
	if m.Angles[0].J != 0 {
		t.Fatalf("angle vertex = %d, want O (0)", m.Angles[0].J)
	}
}

func TestDisplacedKeepsFFEquilibria(t *testing.T) {
	els, pos := waterGeometry()
	m, _ := NewModel(els, pos)
	md := m.Displaced(1, 0, 0.1)
	// Same bonds with same equilibria, but nonzero ERep now.
	if len(md.Bonds) != len(m.Bonds) || md.Bonds[0].R0 != m.Bonds[0].R0 {
		t.Fatal("displacement changed force-field equilibria")
	}
	if e := md.repulsiveEnergy(); e <= 0 {
		t.Fatalf("displaced repulsive energy %v, want > 0", e)
	}
}
