package scf

import (
	"fmt"

	"qframan/internal/geom"
	"qframan/internal/linalg"
)

// CalibrateRestForces fits the linear internal-coordinate terms of the
// bonded reference potential so that the model's reference geometry becomes
// a (least-squares) stationary point of the total energy. This mirrors how
// DFTB repulsive potentials are fitted: the electronic band structure alone
// exerts residual forces at any given geometry; a linear term per bond and
// angle absorbs them, so finite-difference Hessians taken at the reference
// are free of rigid-rotation contamination.
//
// The model must be at its reference geometry (freshly built by NewModel).
// One SCF solve is performed.
func (m *Model) CalibrateRestForces(opt Options) error {
	res, err := m.SolveSCFRobust(opt)
	if err != nil {
		return fmt.Errorf("scf: calibration SCF: %w", err)
	}
	// Total gradient at the reference: the harmonic FF terms vanish there
	// (equilibria frozen at reference), so this is the electronic gradient
	// plus any existing linear terms (zero on a fresh model).
	forces := m.Forces(res)
	n3 := 3 * m.NumAtoms()
	g := make([]float64, n3)
	for a, f := range forces {
		g[3*a] = -f.X
		g[3*a+1] = -f.Y
		g[3*a+2] = -f.Z
	}

	// Internal-coordinate gradient rows: B[t] = ∂(internal_t)/∂R.
	nt := len(m.Bonds) + len(m.Angles) + len(m.Dihedrals)
	if nt == 0 {
		return fmt.Errorf("scf: no internal coordinates to calibrate")
	}
	b := linalg.NewMatrix(nt, n3)
	addVec := func(row int, atom int, v geom.Vec3) {
		b.Add(row, 3*atom, v.X)
		b.Add(row, 3*atom+1, v.Y)
		b.Add(row, 3*atom+2, v.Z)
	}
	for t, bd := range m.Bonds {
		d := m.Pos[bd.I].Sub(m.Pos[bd.J])
		u := d.Normalize()
		addVec(t, bd.I, u)
		addVec(t, bd.J, u.Scale(-1))
	}
	off := len(m.Bonds)
	for t, an := range m.Angles {
		u := m.Pos[an.I].Sub(m.Pos[an.J])
		w := m.Pos[an.Kk].Sub(m.Pos[an.J])
		ru, rw := u.Norm(), w.Norm()
		uh, wh := u.Scale(1/ru), w.Scale(1/rw)
		cosT := uh.Dot(wh)
		gi := wh.Sub(uh.Scale(cosT)).Scale(1 / ru)
		gk := uh.Sub(wh.Scale(cosT)).Scale(1 / rw)
		addVec(off+t, an.I, gi)
		addVec(off+t, an.Kk, gk)
		addVec(off+t, an.J, gi.Add(gk).Scale(-1))
	}
	off += len(m.Angles)
	for t, dh := range m.Dihedrals {
		g := dihedralDeltaGrad(m.Pos[dh.I], m.Pos[dh.J], m.Pos[dh.Kk], m.Pos[dh.L], dh.Phi0)
		for gi2, atom := range [4]int{dh.I, dh.J, dh.Kk, dh.L} {
			addVec(off+t, atom, g[gi2])
		}
	}

	// Least squares: minimize ‖g + Bᵀc‖² ⇒ (B·Bᵀ + λI)·c = −B·g.
	bbt := linalg.MatMul(false, true, b, b, m.Ops)
	for i := 0; i < nt; i++ {
		bbt.Add(i, i, 1e-10)
	}
	rhs := make([]float64, nt)
	linalg.Gemv(false, -1, b, g, 0, rhs, m.Ops)
	c, err := linalg.SolveLinear(bbt, rhs)
	if err != nil {
		return fmt.Errorf("scf: calibration solve: %w", err)
	}
	for t := range m.Bonds {
		m.Bonds[t].C = c[t]
	}
	for t := range m.Angles {
		m.Angles[t].C = c[len(m.Bonds)+t]
	}
	for t := range m.Dihedrals {
		m.Dihedrals[t].C = c[off+t]
	}
	return nil
}
