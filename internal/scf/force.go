package scf

import (
	"math"

	"qframan/internal/basis"
	"qframan/internal/geom"
	"qframan/internal/par"
)

// Forces returns the analytic nuclear forces −dE/dR (hartree/bohr) for a
// converged field-free ground state. The gradient has the standard
// SCC-tight-binding structure: Hellmann–Feynman + Pulay terms through the
// overlap derivatives, the charge-fluctuation γ term, and the bonded
// reference potential.
func (m *Model) Forces(res *Result) []geom.Vec3 {
	na := m.NumAtoms()
	grad := make([]geom.Vec3, na)

	v := m.sccPotential(res.DeltaQ)
	n := m.Basis.Size()
	// The O(n²) overlap-derivative pair sum dominates displacement
	// post-processing. It shards over basis rows i with one gradient
	// accumulator per chunk; partials are combined in ascending chunk order,
	// so the result is bit-identical for any kernel width (DESIGN.md §7).
	// The pool's dynamic chunk cursor absorbs the triangular row imbalance.
	const pairChunk = 16
	partials := make([][]geom.Vec3, par.Chunks(n, pairChunk))
	par.ForChunks("scf_forces", n, pairChunk, func(c, lo, hi int) {
		g := make([]geom.Vec3, na)
		for i := lo; i < hi; i++ {
			fi := &m.Basis.Funcs[i]
			pRow, wRow := res.P.Row(i), res.W.Row(i)
			a, va, ei := fi.Atom, v[fi.Atom], fi.OnsiteE
			for j := i + 1; j < n; j++ {
				fj := &m.Basis.Funcs[j]
				b := fj.Atom
				if a == b {
					continue
				}
				ds := basis.OverlapDeriv(fi, fj) // d S_ij / d R_a
				// Both (i,j) and (j,i) contribute identically: factor 2.
				coeff := 2 * (pRow[j]*0.5*wolfsbergK*(ei+fj.OnsiteE) -
					wRow[j] +
					pRow[j]*0.5*(va+v[b]))
				g[a] = g[a].Add(ds.Scale(coeff))
				g[b] = g[b].Sub(ds.Scale(coeff))
			}
		}
		partials[c] = g
	})
	for _, g := range partials { // ordered combine: chunk 0, 1, 2, …
		for a := range grad {
			grad[a] = grad[a].Add(g[a])
		}
	}

	// Charge-fluctuation term: ½ Σ_ab Δq_a Δq_b dγ_ab/dR.
	for a := 0; a < na; a++ {
		ua := m.Els[a].HubbardU()
		for b := a + 1; b < na; b++ {
			d := m.Pos[a].Sub(m.Pos[b])
			r := d.Norm()
			c := 0.5 * (1/ua + 1/m.Els[b].HubbardU())
			dg := -1 / math.Pow(r*r+c*c, 1.5) // dγ/dR ÷ R direction handled below
			g := d.Scale(dg * res.DeltaQ[a] * res.DeltaQ[b])
			grad[a] = grad[a].Add(g)
			grad[b] = grad[b].Sub(g)
		}
	}

	// Bonded reference potential (harmonic + fitted linear terms).
	for _, bd := range m.Bonds {
		d := m.Pos[bd.I].Sub(m.Pos[bd.J])
		r := d.Norm()
		f := (bd.K*(r-bd.R0) + bd.C) / r
		grad[bd.I] = grad[bd.I].Add(d.Scale(f))
		grad[bd.J] = grad[bd.J].Sub(d.Scale(f))
	}
	for _, an := range m.Angles {
		u := m.Pos[an.I].Sub(m.Pos[an.J])
		w := m.Pos[an.Kk].Sub(m.Pos[an.J])
		ru, rw := u.Norm(), w.Norm()
		uh, wh := u.Scale(1/ru), w.Scale(1/rw)
		cosT := uh.Dot(wh)
		pref := an.K*(cosT-an.Cos0) + an.C
		// ∂cosθ/∂I = (ŵ − cosθ·û)/|u|, ∂cosθ/∂K = (û − cosθ·ŵ)/|w|.
		gi := wh.Sub(uh.Scale(cosT)).Scale(pref / ru)
		gk := uh.Sub(wh.Scale(cosT)).Scale(pref / rw)
		grad[an.I] = grad[an.I].Add(gi)
		grad[an.Kk] = grad[an.Kk].Add(gk)
		grad[an.J] = grad[an.J].Sub(gi.Add(gk))
	}
	for _, t := range m.Dihedrals {
		delta := dihedralDelta(m.Pos[t.I], m.Pos[t.J], m.Pos[t.Kk], m.Pos[t.L], t.Phi0)
		pref := t.K*delta + t.C
		if pref == 0 {
			continue
		}
		g := dihedralDeltaGrad(m.Pos[t.I], m.Pos[t.J], m.Pos[t.Kk], m.Pos[t.L], t.Phi0)
		for gi2, atom := range [4]int{t.I, t.J, t.Kk, t.L} {
			grad[atom] = grad[atom].Add(g[gi2].Scale(pref))
		}
	}

	out := make([]geom.Vec3, na)
	for a := range out {
		out[a] = grad[a].Scale(-1)
	}
	return out
}
