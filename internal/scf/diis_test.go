package scf

import (
	"math"
	"math/rand"
	"testing"
)

// linearFixedPoint iterates x ← A·x + b (spectral radius < 1) through a
// mixer and returns the iterations to reach tol.
func linearFixedPoint(mixer func(in, out []float64) []float64, n int, tol float64, maxIter int) int {
	rng := rand.New(rand.NewSource(5))
	// A = ρ·Q diag Q⁻¹ with eigenvalues up to 0.97: slow linear contraction.
	diag := make([]float64, n)
	for i := range diag {
		diag[i] = 0.97 * (1 - float64(i)/float64(2*n))
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	apply := func(x []float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = diag[i]*x[i] + b[i]
		}
		return out
	}
	x := make([]float64, n)
	for k := 1; k <= maxIter; k++ {
		out := apply(x)
		var delta float64
		for i := range x {
			delta = math.Max(delta, math.Abs(out[i]-x[i]))
		}
		if delta < tol {
			return k
		}
		x = mixer(x, out)
	}
	return maxIter
}

func TestDIISBeatsLinearMixing(t *testing.T) {
	const n = 12
	linear := linearFixedPoint(func(in, out []float64) []float64 {
		next := make([]float64, n)
		for i := range next {
			next[i] = 0.7*in[i] + 0.3*out[i]
		}
		return next
	}, n, 1e-10, 5000)
	d := newDIIS(0.3, 6)
	diisIters := linearFixedPoint(d.next, n, 1e-10, 5000)
	if diisIters*5 > linear {
		t.Fatalf("DIIS took %d iterations vs linear %d — expected ≥5× speedup", diisIters, linear)
	}
}

func TestDIISRecoversFromReset(t *testing.T) {
	d := newDIIS(0.4, 4)
	// Feed identical residuals: the DIIS matrix is singular; the mixer must
	// fall back to a damped step rather than fail.
	in := []float64{1, 2}
	out := []float64{1.5, 2.5}
	for k := 0; k < 6; k++ {
		next := d.next(in, out)
		if math.IsNaN(next[0]) || math.IsNaN(next[1]) {
			t.Fatal("DIIS produced NaN on a degenerate history")
		}
	}
}

func TestSolveSCFRobustEscalates(t *testing.T) {
	// With an absurdly low iteration cap the plain solve fails but the
	// interface still returns a clear error (escalation can't fix MaxIter).
	els, pos := waterGeometry()
	m, _ := NewModel(els, pos)
	opt := DefaultOptions()
	opt.MaxIter = 1
	if _, err := m.SolveSCFRobust(opt); err == nil {
		t.Fatal("expected failure at MaxIter=1")
	}
	// And the normal path succeeds.
	if _, err := m.SolveSCFRobust(DefaultOptions()); err != nil {
		t.Fatal(err)
	}
}
