package scf

import (
	"fmt"
	"math"
	"time"

	"qframan/internal/geom"
	"qframan/internal/linalg"
	"qframan/internal/obs"
)

// Options configures the SCF iteration.
type Options struct {
	// MaxIter bounds the charge self-consistency loop.
	MaxIter int
	// Tol is the convergence threshold on the max charge change.
	Tol float64
	// Mixing is the linear charge-mixing factor in (0,1].
	Mixing float64
	// Smearing is the Fermi–Dirac electronic temperature in hartree.
	// Fractional occupations stabilize small-gap fragments (some capped
	// peptide fragments develop near-degenerate frontier orbitals in this
	// model) and regularize the DFPT denominators; for well-gapped systems
	// the occupations are numerically integral and results are unchanged.
	// Energies are then Mermin free energies (see Result.EEntropy).
	Smearing float64
	// Field is a uniform external electric field (a.u.); the electronic
	// Hamiltonian gains +E·D (electron charge −1), used by the
	// finite-field polarizability validation.
	Field geom.Vec3
	// InitDeltaQ warm-starts the charge loop (e.g. with the converged
	// charges of the undisplaced reference geometry — the displacement
	// loop's dominant speedup). Must have one entry per atom; nil starts
	// from neutral atoms.
	InitDeltaQ []float64
	// Obs carries the observability handles (span tracer, metrics
	// registry, per-fragment accumulator). Execution-only: it never
	// affects a converged result and is excluded from the store's content
	// fingerprint. The zero Scope disables instrumentation.
	Obs obs.Scope
}

// DefaultOptions returns robust SCF settings: conservative mixing converges
// across the full range of fragment sizes (small-gap peptide fragments
// oscillate at aggressive mixing).
func DefaultOptions() Options {
	return Options{MaxIter: 500, Tol: 1e-9, Mixing: 0.2, Smearing: 0.002}
}

// Result holds a converged ground state.
type Result struct {
	Energy   float64 // Mermin free energy (hartree): EBand+ECoul+ERep+EEntropy
	EBand    float64 // tr(P·H0)
	ECoul    float64 // ½ Σ γ Δq Δq
	ERep     float64 // bonded reference potential
	EEntropy float64 // −T·S electronic entropy term (≤ 0)

	Eps   []float64      // orbital energies, ascending
	Occ   []float64      // occupations in [0,2]
	Mu    float64        // Fermi level (hartree)
	Sigma float64        // the smearing the state was computed with
	C     *linalg.Matrix // S-orthonormal MO coefficients (columns)
	P     *linalg.Matrix // density matrix
	W     *linalg.Matrix // energy-weighted density matrix

	DeltaQ     []float64 // per-atom electron excess n_A − Z_A
	Iterations int
	Gap        float64 // nominal HOMO–LUMO gap (hartree); 0 if no virtuals
}

// NumOcc returns the number of doubly occupied orbitals.
func (m *Model) NumOcc() int { return m.numElectrons() / 2 }

// SolveSCF runs the charge self-consistency loop to convergence.
func (m *Model) SolveSCF(opt Options) (*Result, error) {
	if opt.MaxIter <= 0 || opt.Tol <= 0 || opt.Mixing <= 0 || opt.Mixing > 1 {
		return nil, fmt.Errorf("scf: invalid options %+v", opt)
	}
	n := m.Basis.Size()
	na := m.NumAtoms()
	nocc := m.NumOcc()
	if nocc > n {
		return nil, fmt.Errorf("scf: %d occupied orbitals exceed basis size %d", nocc, n)
	}

	var obsStart time.Time
	if opt.Obs.Enabled() {
		obsStart = time.Now()
	}

	// External field term: +Σ_k E_k D^k.
	hExt := linalg.NewMatrix(n, n)
	for k, e := range []float64{opt.Field.X, opt.Field.Y, opt.Field.Z} {
		if e != 0 {
			hExt.AddMatrix(m.Dip[k], e)
		}
	}

	dq := make([]float64, na)
	if opt.InitDeltaQ != nil {
		if len(opt.InitDeltaQ) != na {
			return nil, fmt.Errorf("scf: InitDeltaQ has %d entries for %d atoms", len(opt.InitDeltaQ), na)
		}
		copy(dq, opt.InitDeltaQ)
	}

	// The overlap matrix is fixed across the charge loop: orthogonalize
	// once with X = S^{−1/2}, then each iteration is a plain symmetric
	// eigensolve of X·H·X with C = X·Y.
	x, err := symOrth(m.S)
	if err != nil {
		return nil, fmt.Errorf("scf: overlap orthogonalization: %w", err)
	}
	ht := linalg.NewMatrix(n, n)
	tmp := linalg.NewMatrix(n, n)

	var res *Result
	mixer := newDIIS(opt.Mixing, 6)
	for iter := 1; iter <= opt.MaxIter; iter++ {
		h := m.H0.Clone()
		h.AddMatrix(hExt, 1)
		m.addSCCPotential(h, dq)

		linalg.Gemm(false, false, 1, x, h, 0, tmp, m.Ops)
		linalg.Gemm(false, false, 1, tmp, x, 0, ht, m.Ops)
		ht.Symmetrize()
		eps, y := linalg.EigSym(ht)
		c := linalg.MatMul(false, false, x, y, m.Ops)
		occ, _, _ := occupations(eps, 2*nocc, opt.Smearing)
		p := densityMatrix(c, occ, m.Ops)
		newDq := m.mullikenDeltaQ(p)

		var maxDelta float64
		for a := range dq {
			if d := math.Abs(newDq[a] - dq[a]); d > maxDelta {
				maxDelta = d
			}
		}
		dq = mixer.next(dq, newDq)
		if maxDelta < opt.Tol {
			// Converged: assemble the result from the final orbitals using
			// the self-consistent charges.
			occ, mu, entropy := occupations(eps, 2*nocc, opt.Smearing)
			w := weightedDensityMatrix(eps, c, occ, m.Ops)
			res = &Result{
				Eps: eps, Occ: occ, Mu: mu, Sigma: opt.Smearing,
				C: c, P: p, W: w,
				DeltaQ:     newDq,
				Iterations: iter,
			}
			res.EBand = traceProduct(p, m.H0) + traceProduct(p, hExt)
			res.ECoul = m.coulombEnergy(newDq)
			res.ERep = m.repulsiveEnergy()
			res.EEntropy = entropy
			res.Energy = res.EBand + res.ECoul + res.ERep + res.EEntropy
			if nocc > 0 && nocc < n {
				res.Gap = eps[nocc] - eps[nocc-1]
			}
			if opt.Obs.Enabled() {
				opt.Obs.RecordSCF(obsStart, iter)
			}
			return res, nil
		}
	}
	// Failed solves are recorded too: a rung of the smearing ladder that
	// burns MaxIter iterations is exactly the cost a straggler report must
	// see.
	if opt.Obs.Enabled() {
		opt.Obs.RecordSCF(obsStart, opt.MaxIter)
	}
	return nil, fmt.Errorf("scf: not converged after %d iterations", opt.MaxIter)
}

// SolveSCFRobust is SolveSCF with the standard escalation ladder for
// difficult fragments: if the charge loop fails to converge, the electronic
// temperature is raised (2.5×, then 5×, then 10×) — higher smearing smooths
// the charge-sloshing instabilities of near-degenerate frontier orbitals at
// the cost of slightly more fractional occupations.
func (m *Model) SolveSCFRobust(opt Options) (*Result, error) {
	var firstErr error
	for _, scale := range []float64{1, 2.5, 5, 10} {
		o := opt
		o.Smearing = opt.Smearing * scale
		if o.Smearing == 0 && scale > 1 {
			o.Smearing = 0.002 * scale
		}
		res, err := m.SolveSCF(o)
		if err == nil {
			return res, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, firstErr
}

// symOrth returns S^{−1/2} by symmetric (Löwdin) orthogonalization.
func symOrth(s *linalg.Matrix) (*linalg.Matrix, error) {
	vals, vecs := linalg.EigSym(s)
	n := s.Rows
	for _, v := range vals {
		if v < 1e-10 {
			return nil, fmt.Errorf("scf: overlap matrix near-singular (eigenvalue %g)", v)
		}
	}
	// X = U·diag(1/√λ)·Uᵀ.
	scaled := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			scaled.Set(i, j, vecs.At(i, j)/math.Sqrt(vals[j]))
		}
	}
	x := linalg.NewMatrix(n, n)
	linalg.Gemm(false, true, 1, scaled, vecs, 0, x, nil)
	x.Symmetrize()
	return x, nil
}

// addSCCPotential adds the second-order charge term
// H_μν += ½·S_μν·(V_A(μ) + V_A(ν)) with V_A = Σ_B γ_AB Δq_B.
func (m *Model) addSCCPotential(h *linalg.Matrix, dq []float64) {
	na := m.NumAtoms()
	v := make([]float64, na)
	for a := 0; a < na; a++ {
		var s float64
		for b := 0; b < na; b++ {
			s += m.Gamma.At(a, b) * dq[b]
		}
		v[a] = s
	}
	n := m.Basis.Size()
	for i := 0; i < n; i++ {
		ai := m.Basis.Funcs[i].Atom
		for j := 0; j < n; j++ {
			aj := m.Basis.Funcs[j].Atom
			h.Add(i, j, 0.5*m.S.At(i, j)*(v[ai]+v[aj]))
		}
	}
}

// sccPotential returns V_A = Σ_B γ_AB Δq_B for the given charges.
func (m *Model) sccPotential(dq []float64) []float64 {
	na := m.NumAtoms()
	v := make([]float64, na)
	for a := 0; a < na; a++ {
		var s float64
		for b := 0; b < na; b++ {
			s += m.Gamma.At(a, b) * dq[b]
		}
		v[a] = s
	}
	return v
}

// occupations fills orbitals with ne electrons. With zero smearing the
// lowest ne/2 orbitals get occupation 2; otherwise Fermi–Dirac occupations
// at electronic temperature sigma are used, with the chemical potential
// found by bisection. It returns the occupations, the Fermi level, and the
// electronic-entropy free-energy term −T·S (≤ 0).
func occupations(eps []float64, ne int, sigma float64) (occ []float64, mu, entropy float64) {
	n := len(eps)
	occ = make([]float64, n)
	nocc := ne / 2
	if sigma <= 0 {
		for i := 0; i < nocc; i++ {
			occ[i] = 2
		}
		if nocc > 0 {
			mu = eps[nocc-1]
			if nocc < n {
				mu = 0.5 * (eps[nocc-1] + eps[nocc])
			}
		}
		return occ, mu, 0
	}
	count := func(mu float64) float64 {
		var s float64
		for _, e := range eps {
			s += 2 / (1 + math.Exp((e-mu)/sigma))
		}
		return s
	}
	lo, hi := eps[0]-30*sigma, eps[n-1]+30*sigma
	for iter := 0; iter < 200; iter++ {
		mu = 0.5 * (lo + hi)
		if count(mu) < float64(ne) {
			lo = mu
		} else {
			hi = mu
		}
	}
	for i, e := range eps {
		g := 1 / (1 + math.Exp((e-mu)/sigma)) // per-spin occupation
		occ[i] = 2 * g
		if g > 1e-14 && g < 1-1e-14 {
			entropy += 2 * sigma * (g*math.Log(g) + (1-g)*math.Log(1-g))
		}
	}
	return occ, mu, entropy
}

// densityMatrix builds P = Σ_p f_p c_p c_pᵀ.
func densityMatrix(c *linalg.Matrix, occ []float64, ops *linalg.Ops) *linalg.Matrix {
	return occWeighted(c, occ, nil, ops)
}

// weightedDensityMatrix builds W = Σ_p f_p ε_p c_p c_pᵀ.
func weightedDensityMatrix(eps []float64, c *linalg.Matrix, occ []float64, ops *linalg.Ops) *linalg.Matrix {
	return occWeighted(c, occ, eps, ops)
}

// occWeighted computes Σ_p f_p (ε_p) c_p c_pᵀ over orbitals with
// non-negligible occupation.
func occWeighted(c *linalg.Matrix, occ, eps []float64, ops *linalg.Ops) *linalg.Matrix {
	n := c.Rows
	var cols []int
	for k, f := range occ {
		if f > 1e-14 {
			cols = append(cols, k)
		}
	}
	a := linalg.NewMatrix(n, len(cols))
	b := linalg.NewMatrix(n, len(cols))
	for i := 0; i < n; i++ {
		for j, k := range cols {
			v := c.At(i, k)
			a.Set(i, j, v)
			wv := occ[k] * v
			if eps != nil {
				wv *= eps[k]
			}
			b.Set(i, j, wv)
		}
	}
	out := linalg.NewMatrix(n, n)
	linalg.Gemm(false, true, 1, b, a, 0, out, ops)
	return out
}

// mullikenDeltaQ computes per-atom electron excess n_A − Z_A with
// n_A = Σ_{μ∈A} (P·S)_μμ.
func (m *Model) mullikenDeltaQ(p *linalg.Matrix) []float64 {
	na := m.NumAtoms()
	out := make([]float64, na)
	n := m.Basis.Size()
	for i := 0; i < n; i++ {
		a := m.Basis.Funcs[i].Atom
		out[a] += linalg.Dot(p.Row(i), m.S.Row(i))
	}
	for a := 0; a < na; a++ {
		out[a] -= m.Zval[a]
	}
	return out
}

func (m *Model) coulombEnergy(dq []float64) float64 {
	var e float64
	na := m.NumAtoms()
	for a := 0; a < na; a++ {
		for b := 0; b < na; b++ {
			e += 0.5 * dq[a] * m.Gamma.At(a, b) * dq[b]
		}
	}
	return e
}

func (m *Model) repulsiveEnergy() float64 {
	var e float64
	for _, b := range m.Bonds {
		d := m.Pos[b.I].Dist(m.Pos[b.J]) - b.R0
		e += 0.5*b.K*d*d + b.C*d
	}
	for _, a := range m.Angles {
		u := m.Pos[a.I].Sub(m.Pos[a.J]).Normalize()
		v := m.Pos[a.Kk].Sub(m.Pos[a.J]).Normalize()
		d := u.Dot(v) - a.Cos0
		e += 0.5*a.K*d*d + a.C*d
	}
	for _, t := range m.Dihedrals {
		d := dihedralDelta(m.Pos[t.I], m.Pos[t.J], m.Pos[t.Kk], m.Pos[t.L], t.Phi0)
		e += 0.5*t.K*d*d + t.C*d
	}
	return e
}

// traceProduct returns tr(A·B) for symmetric-compatible shapes.
func traceProduct(a, b *linalg.Matrix) float64 {
	if a.Rows != b.Cols || a.Cols != b.Rows {
		panic("scf: traceProduct shape mismatch")
	}
	var s float64
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		for j, av := range arow {
			s += av * b.At(j, i)
		}
	}
	return s
}

// Dipole returns the molecular dipole moment μ = Σ_A Z_A R_A − tr(P·D) in
// atomic units (electron charge −1).
func (m *Model) Dipole(res *Result) geom.Vec3 {
	var mu geom.Vec3
	for a := range m.Els {
		mu = mu.Add(m.Pos[a].Scale(m.Zval[a]))
	}
	return mu.Sub(geom.V(
		traceProduct(res.P, m.Dip[0]),
		traceProduct(res.P, m.Dip[1]),
		traceProduct(res.P, m.Dip[2]),
	))
}
