package scf

import (
	"math"

	"qframan/internal/linalg"
)

// diis is Pulay mixing (direct inversion in the iterative subspace) on the
// Mulliken charge vector: the next input charges are the residual-minimizing
// linear combination of the recent history, plus a damped residual step.
// This kills the charge-sloshing slow modes that make plain linear mixing
// take thousands of iterations on extended peptide fragments.
type diis struct {
	beta float64 // damping of the extrapolated residual
	max  int     // history length
	ins  [][]float64
	res  [][]float64
}

func newDIIS(beta float64, max int) *diis {
	return &diis{beta: beta, max: max}
}

// next consumes the (input, output) pair of one SCF iteration and returns
// the next input charge vector.
func (d *diis) next(in, out []float64) []float64 {
	n := len(in)
	r := make([]float64, n)
	for i := range r {
		r[i] = out[i] - in[i]
	}
	d.ins = append(d.ins, append([]float64(nil), in...))
	d.res = append(d.res, r)
	if len(d.ins) > d.max {
		d.ins = d.ins[1:]
		d.res = d.res[1:]
	}
	k := len(d.ins)
	if k >= 2 {
		if next := d.extrapolate(k, n); next != nil {
			return next
		}
	}
	// Fallback / warm-up: damped linear step.
	next := make([]float64, n)
	for i := range next {
		next[i] = in[i] + d.beta*r[i]
	}
	return next
}

// extrapolate solves the constrained least squares min ‖Σ cᵢ rᵢ‖², Σcᵢ = 1
// via the bordered normal equations and returns Σ cᵢ (inᵢ + β rᵢ), or nil
// if the system is ill-conditioned.
func (d *diis) extrapolate(k, n int) []float64 {
	b := linalg.NewMatrix(k+1, k+1)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			b.Set(i, j, linalg.Dot(d.res[i], d.res[j]))
		}
		b.Set(i, k, 1)
		b.Set(k, i, 1)
	}
	rhs := make([]float64, k+1)
	rhs[k] = 1
	c, err := linalg.SolveLinear(b, rhs)
	if err != nil {
		d.reset()
		return nil
	}
	var norm float64
	for i := 0; i < k; i++ {
		norm += math.Abs(c[i])
	}
	if norm > 1e4 || math.IsNaN(norm) {
		d.reset()
		return nil
	}
	next := make([]float64, n)
	for i := 0; i < k; i++ {
		ci := c[i]
		if ci == 0 {
			continue
		}
		for a := 0; a < n; a++ {
			next[a] += ci * (d.ins[i][a] + d.beta*d.res[i][a])
		}
	}
	return next
}

func (d *diis) reset() {
	d.ins = nil
	d.res = nil
}
