package scf

import "testing"

func BenchmarkSolveSCFWater(b *testing.B) {
	els, pos := waterGeometry()
	m, err := NewModel(els, pos)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SolveSCF(DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveSCFMethaneWarm(b *testing.B) {
	els, pos := methane()
	m, err := NewModel(els, pos)
	if err != nil {
		b.Fatal(err)
	}
	ref, err := m.SolveSCF(DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultOptions()
	opt.InitDeltaQ = ref.DeltaQ
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SolveSCF(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForces(b *testing.B) {
	els, pos := waterGeometry()
	m, _ := NewModel(els, pos)
	res, err := m.SolveSCF(DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forces(res)
	}
}
