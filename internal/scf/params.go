package scf

import "qframan/internal/constants"

// Force constants of the bonded reference potential, in atomic units
// (hartree/bohr² for bonds, hartree for cosine-harmonic angles). They are
// parameterized so that, together with the electronic band contribution, the
// model's normal modes land in the experimentally known regions: O–H stretch
// ~3400–3700 cm⁻¹, C–H ~2900, amide C=O ~1650, CH₂/HOH bends ~1450–1600,
// backbone C–N/C–C ~1000–1300. This is the tight-binding analogue of a
// DFT functional + basis choice and is documented as a substitution in
// DESIGN.md.

// bondForceConstant returns k for an element pair; the bond length (Å) at
// the reference geometry discriminates single from double bonds (e.g. the
// 1.23 Å carbonyl vs a 1.41 Å C–O single bond).
func bondForceConstant(a, b constants.Element, refLenA float64) float64 {
	if a > b {
		a, b = b, a
	}
	switch {
	case a == constants.H && b == constants.H:
		return 0.35
	case a == constants.H && b == constants.C:
		return 0.42
	case a == constants.H && b == constants.N:
		return 0.52
	case a == constants.H && b == constants.O:
		return 0.44
	case a == constants.H && b == constants.S:
		return 0.23
	case a == constants.C && b == constants.C:
		if refLenA < 1.42 {
			return 0.45 // aromatic/double
		}
		return 0.25
	case a == constants.C && b == constants.N:
		if refLenA < 1.38 {
			return 0.50 // amide / partial double
		}
		return 0.38
	case a == constants.C && b == constants.O:
		if refLenA < 1.30 {
			return 0.64 // carbonyl
		}
		return 0.35
	case a == constants.C && b == constants.S:
		return 0.18
	case a == constants.N && b == constants.O:
		return 0.40
	case a == constants.O && b == constants.O:
		return 0.30
	}
	return 0.25
}

// angleForceConstant returns the cosine-harmonic angle constant for the
// triple i–j–k (j is the vertex).
func angleForceConstant(i, j, k constants.Element) float64 {
	switch j {
	case constants.O:
		return 0.09 // H–O–H bend target ~1600 cm⁻¹
	case constants.N:
		return 0.14
	case constants.C:
		return 0.13 // H–C–H bend target ~1450 cm⁻¹
	case constants.S:
		return 0.10
	}
	return 0.12
}
