// Package basis implements the minimal Cartesian-Gaussian atomic-orbital
// basis of the quantum engine: one s function on hydrogen, s + (px,py,pz) on
// C/N/O/S. Overlap and dipole integrals and their center derivatives are
// analytic (Obara–Saika one-dimensional recursions), and functions can be
// evaluated — with gradients — on real-space grid points for the DFPT
// density and Hamiltonian phases (paper §V-A; the per-batch tabulations
// feed the batched grid GEMMs of §V-C).
//
// All lengths are in bohr and the basis is orthonormalized per function
// (<χ|χ> = 1); the overlap matrix S is therefore unit-diagonal.
package basis

import (
	"math"

	"qframan/internal/constants"
	"qframan/internal/geom"
	"qframan/internal/linalg"
)

// Func is a single normalized Cartesian Gaussian basis function
// N·(x−Ax)^lx (y−Ay)^ly (z−Az)^lz exp(−α|r−A|²).
type Func struct {
	Atom   int // owning atom index within the fragment
	L      [3]int
	Alpha  float64
	Norm   float64
	Center geom.Vec3 // bohr
	// OnsiteE is the on-site orbital energy (hartree) used by the
	// tight-binding Hamiltonian.
	OnsiteE float64
}

// doubleFactorial returns (2n−1)!! with the convention (−1)!! = 1.
func doubleFactorial(n int) float64 {
	out := 1.0
	for k := 2*n - 1; k > 1; k -= 2 {
		out *= float64(k)
	}
	return out
}

// newFunc builds a normalized Gaussian.
func newFunc(atom int, l [3]int, alpha float64, center geom.Vec3, onsite float64) Func {
	lt := l[0] + l[1] + l[2]
	n := math.Pow(2*alpha/math.Pi, 0.75) * math.Pow(4*alpha, float64(lt)/2)
	n /= math.Sqrt(doubleFactorial(l[0]) * doubleFactorial(l[1]) * doubleFactorial(l[2]))
	return Func{Atom: atom, L: l, Alpha: alpha, Norm: n, Center: center, OnsiteE: onsite}
}

// Set is the basis of a fragment.
type Set struct {
	Funcs []Func
	// FirstOfAtom[a] is the index of atom a's first basis function;
	// functions of an atom are contiguous.
	FirstOfAtom []int
	// NumElectrons is the total number of valence electrons.
	NumElectrons int
}

// ForAtoms builds the minimal basis for a list of atoms. Positions are in
// bohr.
func ForAtoms(els []constants.Element, posBohr []geom.Vec3) *Set {
	s := &Set{FirstOfAtom: make([]int, len(els))}
	for a, el := range els {
		s.FirstOfAtom[a] = len(s.Funcs)
		alpha := el.GaussianAlpha()
		s.Funcs = append(s.Funcs, newFunc(a, [3]int{0, 0, 0}, alpha, posBohr[a], el.OnsiteS()))
		if el.NumOrbitals() == 4 {
			s.Funcs = append(s.Funcs,
				newFunc(a, [3]int{1, 0, 0}, alpha, posBohr[a], el.OnsiteP()),
				newFunc(a, [3]int{0, 1, 0}, alpha, posBohr[a], el.OnsiteP()),
				newFunc(a, [3]int{0, 0, 1}, alpha, posBohr[a], el.OnsiteP()),
			)
		}
		s.NumElectrons += el.NumValence()
	}
	return s
}

// Size returns the number of basis functions.
func (s *Set) Size() int { return len(s.Funcs) }

// SupportRadius returns the radius (bohr) beyond which the function is
// negligible (envelope < 1e−8 of its peak scale).
func (f *Func) SupportRadius() float64 {
	return math.Sqrt(19.0 / f.Alpha)
}

// ValueAt evaluates the function at point p (bohr).
func (f *Func) ValueAt(p geom.Vec3) float64 {
	d := p.Sub(f.Center)
	r2 := d.Norm2()
	v := f.Norm * math.Exp(-f.Alpha*r2)
	for k := 0; k < f.L[0]; k++ {
		v *= d.X
	}
	for k := 0; k < f.L[1]; k++ {
		v *= d.Y
	}
	for k := 0; k < f.L[2]; k++ {
		v *= d.Z
	}
	return v
}

// GradAt evaluates ∇χ at point p (bohr).
func (f *Func) GradAt(p geom.Vec3) geom.Vec3 {
	d := p.Sub(f.Center)
	e := f.Norm * math.Exp(-f.Alpha*d.Norm2())
	mono := func(x float64, l int) float64 {
		v := 1.0
		for k := 0; k < l; k++ {
			v *= x
		}
		return v
	}
	px, py, pz := mono(d.X, f.L[0]), mono(d.Y, f.L[1]), mono(d.Z, f.L[2])
	// d/dx [x^l e^{-αx²}] = (l·x^{l−1} − 2αx^{l+1}) e^{-αx²}
	dx := -2 * f.Alpha * d.X * px
	if f.L[0] > 0 {
		dx += float64(f.L[0]) * mono(d.X, f.L[0]-1)
	}
	dy := -2 * f.Alpha * d.Y * py
	if f.L[1] > 0 {
		dy += float64(f.L[1]) * mono(d.Y, f.L[1]-1)
	}
	dz := -2 * f.Alpha * d.Z * pz
	if f.L[2] > 0 {
		dz += float64(f.L[2]) * mono(d.Z, f.L[2]-1)
	}
	return geom.V(dx*py*pz*e, px*dy*pz*e, px*py*dz*e)
}

// os1D computes the Obara–Saika one-dimensional integrals
// s(i,j) = ∫ (x−A)^i (x−B)^j exp(−α(x−A)² − β(x−B)²) dx
// for all i ≤ imax, j ≤ jmax, returned as a (imax+1)×(jmax+1) table.
func os1D(alpha, beta, a, b float64, imax, jmax int) [][]float64 {
	p := alpha + beta
	mu := alpha * beta / p
	pc := (alpha*a + beta*b) / p
	s := make([][]float64, imax+1)
	for i := range s {
		s[i] = make([]float64, jmax+1)
	}
	s[0][0] = math.Sqrt(math.Pi/p) * math.Exp(-mu*(a-b)*(a-b))
	get := func(i, j int) float64 {
		if i < 0 || j < 0 {
			return 0
		}
		return s[i][j]
	}
	// Fill j = 0 column by raising i, then raise j across.
	for i := 0; i < imax; i++ {
		s[i+1][0] = (pc-a)*get(i, 0) + float64(i)/(2*p)*get(i-1, 0)
	}
	for j := 0; j < jmax; j++ {
		for i := 0; i <= imax; i++ {
			s[i][j+1] = (pc-b)*get(i, j) +
				(float64(i)*get(i-1, j)+float64(j)*get(i, j-1))/(2*p)
		}
	}
	return s
}

// axes1D returns the per-axis OS tables for a pair of functions, with room
// for `extra` additional powers on each index (needed by dipole and
// derivative integrals).
func axes1D(f, g *Func, extra int) [3][][]float64 {
	var out [3][][]float64
	ca := [3]float64{f.Center.X, f.Center.Y, f.Center.Z}
	cb := [3]float64{g.Center.X, g.Center.Y, g.Center.Z}
	for ax := 0; ax < 3; ax++ {
		out[ax] = os1D(f.Alpha, g.Alpha, ca[ax], cb[ax], f.L[ax]+extra, g.L[ax]+extra)
	}
	return out
}

// Overlap returns <f|g>.
func Overlap(f, g *Func) float64 {
	t := axes1D(f, g, 0)
	return f.Norm * g.Norm *
		t[0][f.L[0]][g.L[0]] * t[1][f.L[1]][g.L[1]] * t[2][f.L[2]][g.L[2]]
}

// OverlapDeriv returns d<f|g>/dA where A is the center of f.
// (By translational invariance d/dB = −d/dA.)
func OverlapDeriv(f, g *Func) geom.Vec3 {
	t := axes1D(f, g, 1)
	base := [3]float64{
		t[0][f.L[0]][g.L[0]],
		t[1][f.L[1]][g.L[1]],
		t[2][f.L[2]][g.L[2]],
	}
	var d [3]float64
	for ax := 0; ax < 3; ax++ {
		i, j := f.L[ax], g.L[ax]
		// d/dA of the 1D factor: 2α·s(i+1,j) − i·s(i−1,j).
		dd := 2 * f.Alpha * t[ax][i+1][j]
		if i > 0 {
			dd -= float64(i) * t[ax][i-1][j]
		}
		prod := dd
		for o := 0; o < 3; o++ {
			if o != ax {
				prod *= base[o]
			}
		}
		d[ax] = prod
	}
	n := f.Norm * g.Norm
	return geom.V(n*d[0], n*d[1], n*d[2])
}

// Dipole returns <f| r |g> in absolute coordinates (bohr).
func Dipole(f, g *Func) geom.Vec3 {
	t := axes1D(f, g, 1)
	base := [3]float64{
		t[0][f.L[0]][g.L[0]],
		t[1][f.L[1]][g.L[1]],
		t[2][f.L[2]][g.L[2]],
	}
	ca := [3]float64{f.Center.X, f.Center.Y, f.Center.Z}
	var d [3]float64
	for ax := 0; ax < 3; ax++ {
		i, j := f.L[ax], g.L[ax]
		// x = (x−A) + A ⇒ <x> factor = s(i+1,j) + A·s(i,j).
		mom := t[ax][i+1][j] + ca[ax]*t[ax][i][j]
		prod := mom
		for o := 0; o < 3; o++ {
			if o != ax {
				prod *= base[o]
			}
		}
		d[ax] = prod
	}
	n := f.Norm * g.Norm
	return geom.V(n*d[0], n*d[1], n*d[2])
}

// OverlapMatrix returns the full overlap matrix S.
func (s *Set) OverlapMatrix() *linalg.Matrix {
	n := s.Size()
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, Overlap(&s.Funcs[i], &s.Funcs[i]))
		for j := i + 1; j < n; j++ {
			v := Overlap(&s.Funcs[i], &s.Funcs[j])
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// DipoleMatrices returns the three Cartesian dipole matrices D^x, D^y, D^z
// with D^k_ij = <i| r_k |j>.
func (s *Set) DipoleMatrices() [3]*linalg.Matrix {
	n := s.Size()
	var out [3]*linalg.Matrix
	for k := range out {
		out[k] = linalg.NewMatrix(n, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			d := Dipole(&s.Funcs[i], &s.Funcs[j])
			v := [3]float64{d.X, d.Y, d.Z}
			for k := 0; k < 3; k++ {
				out[k].Set(i, j, v[k])
				out[k].Set(j, i, v[k])
			}
		}
	}
	return out
}
