package basis

import (
	"math"
	"math/rand"
	"testing"

	"qframan/internal/constants"
	"qframan/internal/geom"
	"qframan/internal/linalg"
)

// numericIntegral3D integrates fn over a cube centered between the two
// function centers, wide enough to capture both supports.
func numericIntegral3D(f, g *Func, fn func(p geom.Vec3) float64) float64 {
	lo := geom.V(
		math.Min(f.Center.X, g.Center.X)-8,
		math.Min(f.Center.Y, g.Center.Y)-8,
		math.Min(f.Center.Z, g.Center.Z)-8,
	)
	hi := geom.V(
		math.Max(f.Center.X, g.Center.X)+8,
		math.Max(f.Center.Y, g.Center.Y)+8,
		math.Max(f.Center.Z, g.Center.Z)+8,
	)
	const n = 60
	hx := (hi.X - lo.X) / n
	hy := (hi.Y - lo.Y) / n
	hz := (hi.Z - lo.Z) / n
	var sum float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				p := geom.V(lo.X+(float64(i)+0.5)*hx, lo.Y+(float64(j)+0.5)*hy, lo.Z+(float64(k)+0.5)*hz)
				sum += fn(p)
			}
		}
	}
	return sum * hx * hy * hz
}

func testPairs() []([2]Func) {
	a := newFunc(0, [3]int{0, 0, 0}, 0.5, geom.V(0, 0, 0), -0.5)
	px := newFunc(0, [3]int{1, 0, 0}, 0.5, geom.V(0, 0, 0), -0.2)
	b := newFunc(1, [3]int{0, 0, 0}, 0.4, geom.V(1.7, 0.4, -0.3), -0.3)
	py := newFunc(1, [3]int{0, 1, 0}, 0.6, geom.V(1.7, 0.4, -0.3), -0.2)
	pz := newFunc(1, [3]int{0, 0, 1}, 0.45, geom.V(-0.8, 1.1, 0.9), -0.2)
	return [][2]Func{
		{a, a}, {a, b}, {a, px}, {px, b}, {px, py}, {py, pz}, {a, pz}, {px, px},
	}
}

func TestNormalization(t *testing.T) {
	for _, l := range [][3]int{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}} {
		f := newFunc(0, l, 0.7, geom.V(0.3, -0.2, 0.5), -0.4)
		if s := Overlap(&f, &f); math.Abs(s-1) > 1e-12 {
			t.Errorf("L=%v: <f|f> = %v, want 1", l, s)
		}
	}
}

func TestOverlapMatchesNumeric(t *testing.T) {
	for idx, pr := range testPairs() {
		f, g := pr[0], pr[1]
		want := numericIntegral3D(&f, &g, func(p geom.Vec3) float64 {
			return f.ValueAt(p) * g.ValueAt(p)
		})
		got := Overlap(&f, &g)
		if math.Abs(got-want) > 2e-4 {
			t.Errorf("pair %d: overlap analytic %v vs numeric %v", idx, got, want)
		}
	}
}

func TestOverlapSymmetry(t *testing.T) {
	for idx, pr := range testPairs() {
		f, g := pr[0], pr[1]
		if d := math.Abs(Overlap(&f, &g) - Overlap(&g, &f)); d > 1e-14 {
			t.Errorf("pair %d: overlap asymmetry %g", idx, d)
		}
	}
}

func TestDipoleMatchesNumeric(t *testing.T) {
	for idx, pr := range testPairs() {
		f, g := pr[0], pr[1]
		got := Dipole(&f, &g)
		for ax, sel := range []func(geom.Vec3) float64{
			func(p geom.Vec3) float64 { return p.X },
			func(p geom.Vec3) float64 { return p.Y },
			func(p geom.Vec3) float64 { return p.Z },
		} {
			want := numericIntegral3D(&f, &g, func(p geom.Vec3) float64 {
				return f.ValueAt(p) * sel(p) * g.ValueAt(p)
			})
			gotAx := [3]float64{got.X, got.Y, got.Z}[ax]
			if math.Abs(gotAx-want) > 5e-4 {
				t.Errorf("pair %d axis %d: dipole analytic %v vs numeric %v", idx, ax, gotAx, want)
			}
		}
	}
}

func TestOverlapDerivMatchesFiniteDifference(t *testing.T) {
	const h = 1e-5
	for idx, pr := range testPairs() {
		f, g := pr[0], pr[1]
		got := OverlapDeriv(&f, &g)
		var want [3]float64
		for ax := 0; ax < 3; ax++ {
			fp, fm := f, f
			switch ax {
			case 0:
				fp.Center.X += h
				fm.Center.X -= h
			case 1:
				fp.Center.Y += h
				fm.Center.Y -= h
			case 2:
				fp.Center.Z += h
				fm.Center.Z -= h
			}
			want[ax] = (Overlap(&fp, &g) - Overlap(&fm, &g)) / (2 * h)
		}
		gotArr := [3]float64{got.X, got.Y, got.Z}
		for ax := 0; ax < 3; ax++ {
			if math.Abs(gotArr[ax]-want[ax]) > 1e-8 {
				t.Errorf("pair %d axis %d: dS/dA analytic %v vs FD %v", idx, ax, gotArr[ax], want[ax])
			}
		}
	}
}

func TestGradMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const h = 1e-6
	for _, l := range [][3]int{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}} {
		f := newFunc(0, l, 0.55, geom.V(0.2, -0.7, 0.4), -0.4)
		for trial := 0; trial < 5; trial++ {
			p := geom.V(rng.NormFloat64()*2, rng.NormFloat64()*2, rng.NormFloat64()*2)
			g := f.GradAt(p)
			fd := geom.V(
				(f.ValueAt(p.Add(geom.V(h, 0, 0)))-f.ValueAt(p.Sub(geom.V(h, 0, 0))))/(2*h),
				(f.ValueAt(p.Add(geom.V(0, h, 0)))-f.ValueAt(p.Sub(geom.V(0, h, 0))))/(2*h),
				(f.ValueAt(p.Add(geom.V(0, 0, h)))-f.ValueAt(p.Sub(geom.V(0, 0, h))))/(2*h),
			)
			if g.Sub(fd).Norm() > 1e-6 {
				t.Fatalf("L=%v: grad %v vs FD %v", l, g, fd)
			}
		}
	}
}

func TestForAtoms(t *testing.T) {
	els := []constants.Element{constants.O, constants.H, constants.H}
	pos := []geom.Vec3{{}, geom.V(1.8, 0, 0), geom.V(-0.45, 1.75, 0)}
	set := ForAtoms(els, pos)
	if set.Size() != 6 {
		t.Fatalf("water basis size = %d, want 6", set.Size())
	}
	if set.NumElectrons != 8 {
		t.Fatalf("water electrons = %d, want 8", set.NumElectrons)
	}
	if set.FirstOfAtom[0] != 0 || set.FirstOfAtom[1] != 4 || set.FirstOfAtom[2] != 5 {
		t.Fatalf("FirstOfAtom = %v", set.FirstOfAtom)
	}
	s := set.OverlapMatrix()
	if !s.IsSymmetric(1e-14) {
		t.Fatal("overlap matrix not symmetric")
	}
	for i := 0; i < s.Rows; i++ {
		if math.Abs(s.At(i, i)-1) > 1e-12 {
			t.Fatalf("S[%d][%d] = %v", i, i, s.At(i, i))
		}
	}
	// S must be positive definite.
	vals, _ := linalg.EigSym(s)
	for _, v := range vals {
		if v <= 0 {
			t.Fatalf("overlap matrix has non-positive eigenvalue %v", v)
		}
	}
}

func TestSupportRadius(t *testing.T) {
	f := newFunc(0, [3]int{0, 0, 0}, 0.5, geom.Vec3{}, -0.4)
	r := f.SupportRadius()
	peak := f.ValueAt(geom.Vec3{})
	edge := f.ValueAt(geom.V(r, 0, 0))
	if math.Abs(edge/peak) > 1e-7 {
		t.Fatalf("function not negligible at support radius: ratio %g", edge/peak)
	}
}

func TestDipoleMatrices(t *testing.T) {
	els := []constants.Element{constants.O, constants.H}
	pos := []geom.Vec3{{}, geom.V(1.8, 0, 0)}
	set := ForAtoms(els, pos)
	ds := set.DipoleMatrices()
	for k := 0; k < 3; k++ {
		if !ds[k].IsSymmetric(1e-14) {
			t.Fatalf("dipole matrix %d not symmetric", k)
		}
	}
	// <s_O| x |s_O> = O's x coordinate (0); <s_H| x |s_H> = 1.8.
	if math.Abs(ds[0].At(0, 0)) > 1e-12 {
		t.Fatalf("O on-site x dipole = %v", ds[0].At(0, 0))
	}
	if math.Abs(ds[0].At(4, 4)-1.8) > 1e-12 {
		t.Fatalf("H on-site x dipole = %v", ds[0].At(4, 4))
	}
}
