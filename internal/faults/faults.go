// Package faults is the runtime's fault-tolerance toolkit: error
// classification (transient failures worth retrying vs deterministic ones
// worth escalating or dropping), a bounded exponential-backoff retry policy,
// and a deterministic, seedable fault injector for chaos testing the
// master–leader–worker runtime (internal/sched). The paper's runtime
// survives 96,000-node runs because misbehaving workers are recovered, not
// fatal — straggler requeue (Fig. 4(a)) plus the per-fragment retry and
// fail-soft degradation built on this package.
//
// Every injector decision is a pure function of (seed, fragment, attempt):
// two runs with the same seed inject exactly the same faults regardless of
// goroutine scheduling, which makes chaos tests reproducible and race-clean.
package faults

import (
	"fmt"
	"runtime/debug"
	"time"
)

// Class partitions errors by the recovery they deserve.
type Class int

const (
	// Deterministic failures reproduce on retry — the same fragment will
	// fail the same way on any worker (e.g. SCF/DFPT non-convergence at
	// every smearing rung). The scheduler escalates or fail-softs these.
	Deterministic Class = iota
	// Transient failures are environmental — injected chaos, recovered
	// panics, flaky nodes — and are retried with backoff on another
	// attempt.
	Transient
)

func (c Class) String() string {
	if c == Transient {
		return "transient"
	}
	return "deterministic"
}

// transientMarker is the wrapping type MarkTransient uses; Classify
// recognizes it anywhere in an error chain.
type transientMarker struct{ err error }

func (e *transientMarker) Error() string   { return e.err.Error() }
func (e *transientMarker) Unwrap() error   { return e.err }
func (e *transientMarker) Transient() bool { return true }

// MarkTransient wraps err so Classify reports it as Transient. A nil err
// stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientMarker{err: err}
}

// Classify inspects the error chain: anything implementing
// `Transient() bool` (returning true) is Transient, everything else —
// including plain engine errors like SCF divergence — is Deterministic.
// Unknown errors default to Deterministic on purpose: retrying a
// reproducible failure only burns node-hours.
func Classify(err error) Class {
	for err != nil {
		if t, ok := err.(interface{ Transient() bool }); ok && t.Transient() {
			return Transient
		}
		switch u := err.(type) {
		case interface{ Unwrap() error }:
			err = u.Unwrap()
		case interface{ Unwrap() []error }:
			for _, e := range u.Unwrap() {
				if Classify(e) == Transient {
					return Transient
				}
			}
			return Deterministic
		default:
			return Deterministic
		}
	}
	return Deterministic
}

// IsTransient reports whether Classify(err) == Transient.
func IsTransient(err error) bool { return err != nil && Classify(err) == Transient }

// InjectedError is a fault produced by an Injector. It is Transient unless
// Hard is set (a forced deterministic failure).
type InjectedError struct {
	Frag    int
	Attempt int
	Hard    bool
	Msg     string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected %s failure (%s) on fragment %d attempt %d",
		map[bool]string{false: "transient", true: "deterministic"}[e.Hard], e.Msg, e.Frag, e.Attempt)
}

// Transient implements the classification marker.
func (e *InjectedError) Transient() bool { return !e.Hard }

// PanicError wraps a panic recovered at a leader so it can travel the error
// path; it classifies as Transient (the work is retried on another attempt,
// matching how a fleet treats a crashed worker process).
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string   { return fmt.Sprintf("faults: recovered panic: %v", e.Value) }
func (e *PanicError) Transient() bool { return true }

// Recovered converts a recover() value into a PanicError, capturing the
// stack at the recovery site.
func Recovered(v any) *PanicError {
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// Action is the injector's verdict for one processing attempt, applied by
// the scheduler around the fragment engine.
type Action struct {
	// Delay stalls the attempt first — an artificial straggler that the
	// watchdog (sched.Options.StragglerTimeout) should requeue.
	Delay time.Duration
	// Err, if non-nil, replaces the attempt's result (the worker "failed"
	// before producing anything).
	Err error
	// Panic makes the attempt panic mid-processing; the leader must
	// recover it.
	Panic bool
	// NaN poisons the attempt's result with NaNs after the engine runs —
	// an injected SCF/DFPT divergence that the scheduler's result scrub
	// must catch and classify as transient.
	NaN bool
}

// Injector plans faults for processing attempts. Implementations must be
// safe for concurrent use and deterministic in (frag, attempt).
type Injector interface {
	Plan(frag, attempt int) Action
}

// Config parameterizes the deterministic injector. Rates are per-attempt
// probabilities in [0,1]; the *Frags lists force a fault on specific
// fragments (first attempt only), which tests use for precise scenarios.
type Config struct {
	Seed int64
	// TransientRate injects plain transient errors.
	TransientRate float64
	// NaNRate poisons results with NaN (injected divergence).
	NaNRate float64
	// PanicRate makes attempts panic.
	PanicRate float64
	// StragglerRate delays attempts by StragglerDelay.
	StragglerRate  float64
	StragglerDelay time.Duration
	// StragglerFrags always stall on their first attempt.
	StragglerFrags []int
	// HardFailFrags fail deterministically on every attempt — the fragment
	// can only complete via fail-soft degradation.
	HardFailFrags []int
	// MaxPerFragment caps random injections (errors, NaNs, panics) per
	// fragment so a bounded retry budget always suffices; attempts past
	// the cap run clean. Zero means the default of 2.
	MaxPerFragment int
}

// NewInjector builds the deterministic injector; a nil-equivalent (all
// rates zero, no forced fragments) plans no faults.
func NewInjector(cfg Config) *RandomInjector {
	if cfg.MaxPerFragment <= 0 {
		cfg.MaxPerFragment = 2
	}
	inj := &RandomInjector{cfg: cfg}
	inj.straggle = make(map[int]bool, len(cfg.StragglerFrags))
	for _, f := range cfg.StragglerFrags {
		inj.straggle[f] = true
	}
	inj.hard = make(map[int]bool, len(cfg.HardFailFrags))
	for _, f := range cfg.HardFailFrags {
		inj.hard[f] = true
	}
	return inj
}

// RandomInjector draws every decision from a hash of (seed, frag, attempt),
// so it needs no state and no locks.
type RandomInjector struct {
	cfg      Config
	straggle map[int]bool
	hard     map[int]bool
}

// salts decorrelate the per-fault-kind draws.
const (
	saltTransient = 0x51
	saltNaN       = 0x52
	saltPanic     = 0x53
	saltStraggler = 0x54
)

// Plan implements Injector.
func (in *RandomInjector) Plan(frag, attempt int) Action {
	var act Action
	if in.hard[frag] {
		act.Err = &InjectedError{Frag: frag, Attempt: attempt, Hard: true, Msg: "forced divergence"}
		return act
	}
	if in.straggle[frag] && attempt == 1 {
		act.Delay = in.cfg.StragglerDelay
	} else if in.cfg.StragglerRate > 0 && attempt == 1 &&
		Uniform(in.cfg.Seed, frag, attempt, saltStraggler) < in.cfg.StragglerRate {
		act.Delay = in.cfg.StragglerDelay
	}
	if attempt > in.cfg.MaxPerFragment {
		return act
	}
	switch {
	case Uniform(in.cfg.Seed, frag, attempt, saltTransient) < in.cfg.TransientRate:
		act.Err = &InjectedError{Frag: frag, Attempt: attempt, Msg: "worker error"}
	case Uniform(in.cfg.Seed, frag, attempt, saltNaN) < in.cfg.NaNRate:
		act.NaN = true
	case Uniform(in.cfg.Seed, frag, attempt, saltPanic) < in.cfg.PanicRate:
		act.Panic = true
	}
	return act
}

// WouldFault reports whether Plan(frag, attempt) would inject a fault
// (error, NaN, or panic — not a mere delay). Tests use it to precompute the
// exact fault population for a seed.
func (in *RandomInjector) WouldFault(frag, attempt int) bool {
	a := in.Plan(frag, attempt)
	return a.Err != nil || a.NaN || a.Panic
}

// Uniform is a deterministic hash-based draw in [0,1) from the tuple
// (seed, frag, attempt, salt) — the same splitmix-style finalizer the
// supercomputer simulator uses for its execution-time jitter.
func Uniform(seed int64, frag, attempt, salt int) float64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 ^
		uint64(frag)*0xC2B2AE3D27D4EB4F ^
		uint64(attempt)*0x165667B19E3779F9 ^
		uint64(salt)*0xD6E8FEB86659FD93
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return float64(x>>11) / float64(1<<53)
}
