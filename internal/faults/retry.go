package faults

import (
	"math"
	"time"
)

// RetryPolicy bounds per-fragment retries of transient failures and spaces
// them with capped exponential backoff. Attempt numbers are 1-based: the
// first retry (attempt 2) waits roughly Base, the next roughly
// Base·Multiplier, and so on up to Max.
type RetryPolicy struct {
	// MaxAttempts is the total number of processing attempts a fragment
	// gets before its transient failures are treated as deterministic.
	// Zero or negative means a single attempt (no retries).
	MaxAttempts int
	// Base is the backoff before the first retry.
	Base time.Duration
	// Max caps the backoff growth.
	Max time.Duration
	// Multiplier is the exponential growth factor (values < 1 are treated
	// as 2).
	Multiplier float64
	// JitterFraction spreads each backoff by ±JitterFraction
	// deterministically in (frag, attempt), decorrelating retry storms
	// without hurting reproducibility.
	JitterFraction float64
	// Seed feeds the deterministic jitter.
	Seed int64
}

// DefaultRetryPolicy suits both tests and functional runs: three attempts
// with millisecond-scale backoff (the in-process runtime has no network to
// soothe; the policy shape, not the absolute scale, is what production
// deployments tune).
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:    3,
		Base:           time.Millisecond,
		Max:            50 * time.Millisecond,
		Multiplier:     2,
		JitterFraction: 0.2,
	}
}

// Attempts returns the effective total attempt budget (at least 1).
func (p RetryPolicy) Attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff returns the wait before retrying frag after its attempt-th
// attempt failed (attempt ≥ 1).
func (p RetryPolicy) Backoff(frag, attempt int) time.Duration {
	if p.Base <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(p.Base) * math.Pow(mult, float64(attempt-1))
	if p.Max > 0 && d > float64(p.Max) {
		d = float64(p.Max)
	}
	if p.JitterFraction > 0 {
		u := Uniform(p.Seed, frag, attempt, 0x77) // in [0,1)
		d *= 1 + p.JitterFraction*(2*u-1)
	}
	return time.Duration(d)
}
