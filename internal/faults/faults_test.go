package faults

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	base := errors.New("scf: not converged after 400 iterations")
	if Classify(base) != Deterministic {
		t.Fatal("plain engine errors must classify deterministic")
	}
	if Classify(MarkTransient(base)) != Transient {
		t.Fatal("marked error must classify transient")
	}
	// The marker must survive fmt wrapping.
	wrapped := fmt.Errorf("sched: fragment 3: %w", MarkTransient(base))
	if !IsTransient(wrapped) {
		t.Fatal("transience lost through %w wrapping")
	}
	// And survive errors.Join.
	if !IsTransient(errors.Join(base, MarkTransient(base))) {
		t.Fatal("transience lost through errors.Join")
	}
	if IsTransient(nil) {
		t.Fatal("nil is not transient")
	}
	if Classify((&InjectedError{Hard: true})) != Deterministic {
		t.Fatal("hard injected error must classify deterministic")
	}
	if Classify((&InjectedError{})) != Transient {
		t.Fatal("injected error must classify transient")
	}
	if Classify(Recovered("boom")) != Transient {
		t.Fatal("recovered panic must classify transient")
	}
}

func TestMarkTransientNil(t *testing.T) {
	if MarkTransient(nil) != nil {
		t.Fatal("MarkTransient(nil) must stay nil")
	}
}

func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, TransientRate: 0.3, NaNRate: 0.1, PanicRate: 0.05,
		StragglerRate: 0.1, StragglerDelay: time.Millisecond}
	a, b := NewInjector(cfg), NewInjector(cfg)
	for frag := 0; frag < 200; frag++ {
		for attempt := 1; attempt <= 4; attempt++ {
			pa, pb := a.Plan(frag, attempt), b.Plan(frag, attempt)
			if pa.NaN != pb.NaN || pa.Panic != pb.Panic || pa.Delay != pb.Delay ||
				(pa.Err == nil) != (pb.Err == nil) {
				t.Fatalf("same seed diverged at frag %d attempt %d", frag, attempt)
			}
		}
	}
	c := NewInjector(Config{Seed: 43, TransientRate: 0.3})
	same := 0
	for frag := 0; frag < 200; frag++ {
		if (a.Plan(frag, 1).Err == nil) == (c.Plan(frag, 1).Err == nil) {
			same++
		}
	}
	if same == 200 {
		t.Fatal("different seeds produced identical fault plans")
	}
}

func TestInjectorRates(t *testing.T) {
	inj := NewInjector(Config{Seed: 7, TransientRate: 0.25})
	faulted := 0
	const n = 2000
	for frag := 0; frag < n; frag++ {
		if inj.Plan(frag, 1).Err != nil {
			faulted++
		}
	}
	got := float64(faulted) / n
	if got < 0.18 || got > 0.32 {
		t.Fatalf("transient rate 0.25 realized as %.3f", got)
	}
}

func TestInjectorCapAndForcedFragments(t *testing.T) {
	inj := NewInjector(Config{
		Seed:           1,
		TransientRate:  1.0, // every capped attempt faults
		MaxPerFragment: 2,
		HardFailFrags:  []int{9},
		StragglerFrags: []int{4},
		StragglerDelay: 3 * time.Millisecond,
	})
	if inj.Plan(0, 1).Err == nil || inj.Plan(0, 2).Err == nil {
		t.Fatal("attempts within the cap must fault at rate 1")
	}
	if inj.Plan(0, 3).Err != nil {
		t.Fatal("attempts past MaxPerFragment must run clean")
	}
	for attempt := 1; attempt <= 5; attempt++ {
		err := inj.Plan(9, attempt).Err
		if err == nil || IsTransient(err) {
			t.Fatalf("hard-fail fragment must fail deterministically on attempt %d", attempt)
		}
	}
	if inj.Plan(4, 1).Delay != 3*time.Millisecond {
		t.Fatal("forced straggler must stall on first attempt")
	}
	if inj.Plan(4, 2).Delay != 0 {
		t.Fatal("forced straggler must not stall retries")
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, Base: time.Millisecond, Max: 8 * time.Millisecond, Multiplier: 2}
	var prev time.Duration
	for attempt := 1; attempt <= 6; attempt++ {
		d := p.Backoff(0, attempt)
		if d < prev {
			t.Fatalf("backoff shrank at attempt %d: %v < %v", attempt, d, prev)
		}
		if d > p.Max {
			t.Fatalf("backoff %v exceeds cap %v", d, p.Max)
		}
		prev = d
	}
	if p.Backoff(0, 1) != time.Millisecond {
		t.Fatalf("first backoff %v, want Base", p.Backoff(0, 1))
	}
	if p.Backoff(0, 6) != 8*time.Millisecond {
		t.Fatalf("late backoff %v, want cap", p.Backoff(0, 6))
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	p := DefaultRetryPolicy()
	p.Seed = 5
	if p.Backoff(3, 2) != p.Backoff(3, 2) {
		t.Fatal("jittered backoff must be deterministic")
	}
	lo, hi := float64(p.Base)*2*(1-p.JitterFraction), float64(p.Base)*2*(1+p.JitterFraction)
	d := float64(p.Backoff(3, 2))
	if d < lo || d > hi {
		t.Fatalf("attempt-2 backoff %v outside jitter band [%v, %v]", time.Duration(d), time.Duration(lo), time.Duration(hi))
	}
}

func TestAttempts(t *testing.T) {
	if (RetryPolicy{}).Attempts() != 1 {
		t.Fatal("zero policy must allow exactly one attempt")
	}
	if (RetryPolicy{MaxAttempts: 4}).Attempts() != 4 {
		t.Fatal("MaxAttempts not honored")
	}
}

func TestUniformRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		u := Uniform(9, i, 1, 3)
		if u < 0 || u >= 1 {
			t.Fatalf("Uniform out of range: %v", u)
		}
	}
}
