// Package accel implements the paper's elastic workload offloading (§V-C,
// Fig. 5). The DFPT grid phases emit thousands of tiny GEMMs, each far too
// short to amortize an accelerator launch; the BatchingExecutor pads their
// shapes to a stride, groups calls of identical padded shape (i.e. similar
// computational strength) into batched workloads, and offloads a batch only
// when it is profitable under the device's cost model — otherwise the batch
// stays on the host. Devices are simulated: numerics always execute on the
// host so results are bit-identical, while a calibrated cost model
// accumulates the *virtual* time an accelerator (ORISE-like GPU or
// Sunway-like many-core CPE cluster) would have spent, which is what the
// Fig. 9 and Table I benchmarks report.
package accel

import (
	"time"

	"qframan/internal/linalg"
)

// Device models one accelerator's cost structure.
type Device struct {
	Name string
	// LaunchOverhead is the fixed cost per offloaded workload (kernel
	// launch + driver).
	LaunchOverhead time.Duration
	// TransferBytesPerSec is the host↔device bandwidth; zero means
	// shared memory (the Sunway CPE model: no PCIe copies).
	TransferBytesPerSec float64
	// FLOPsPerSec is the sustained GEMM rate of the device.
	FLOPsPerSec float64
	// HostFLOPsPerSec is the host core's rate, used to decide
	// profitability and to cost unbatched work.
	HostFLOPsPerSec float64
}

// ORISEDevice models one GPU of the ORISE supercomputer: high peak rate,
// PCIe transfers, large launch overhead.
func ORISEDevice() Device {
	// The FP64 peak per GPU is implied by the paper's Table I: 85.27
	// PFLOPS at 53.8% of peak over 24,000 GPUs → 6.6 TFLOPS each.
	return Device{
		Name:                "orise-gpu",
		LaunchOverhead:      12 * time.Microsecond,
		TransferBytesPerSec: 12e9,
		FLOPsPerSec:         6.6e12,
		HostFLOPsPerSec:     19.2e9, // one host core's share
	}
}

// SunwayDevice models one SW26010-pro core group: shared memory (no copy),
// smaller launch overhead, lower peak.
func SunwayDevice() Device {
	// Table I implies 399.9 PFLOPS at 29.5% of peak over 96,000 nodes →
	// 14.1 TFLOPS per node, 2.35 TFLOPS per core group (6 per node).
	return Device{
		Name:            "sunway-cg",
		LaunchOverhead:  4 * time.Microsecond,
		FLOPsPerSec:     2.35e12,
		HostFLOPsPerSec: 8e9,
	}
}

// Stats accumulates executor accounting.
type Stats struct {
	GEMMs          int64
	Batches        int64 // offloaded batched workloads
	OffloadedGEMMs int64
	HostGEMMs      int64
	// HostTime/DeviceTime are modeled times under the cost model.
	HostTime   time.Duration
	DeviceTime time.Duration
	// MeasuredHostTime is the wall time the host actually spent executing
	// the numerics (batched blocked kernels, internal/linalg). Comparing it
	// against the modeled times validates the profitability model against
	// the machine it runs on rather than trusting the calibration constants.
	MeasuredHostTime time.Duration
	// FLOPs moved to the device vs kept on host.
	OffloadedFLOPs int64
	HostFLOPs      int64
}

// ModeledTime returns the total virtual execution time (host and device
// phases are serialized, matching the synchronous offload of the paper's
// per-strip execution).
func (s *Stats) ModeledTime() time.Duration { return s.HostTime + s.DeviceTime }

// MeasuredVsModeled returns the ratio of measured host execution time to
// the modeled total — the batch-profitability calibration figure (>1 means
// the cost model is optimistic about this host, <1 pessimistic). Zero when
// nothing has been modeled yet.
func (s *Stats) MeasuredVsModeled() float64 {
	m := s.ModeledTime()
	if m == 0 {
		return 0
	}
	return float64(s.MeasuredHostTime) / float64(m)
}

// Options tunes the elastic batching decisions.
type Options struct {
	// Stride pads each GEMM dimension up to a multiple of this value
	// before grouping (the paper batches with a stride of 32).
	Stride int
	// MinBatch is the smallest batch worth offloading. The paper reports
	// packing at least 64 calls per workload when several fragments share
	// a process; a single fragment's strip yields smaller groups, so the
	// default gate is lower and profitability does the real filtering.
	MinBatch int
	// Offload enables the device; when false everything is costed on the
	// host (the Fig. 9 baseline).
	Offload bool
	// BatchingDisabled offloads each GEMM individually (the strawman that
	// shows why elastic batching is needed).
	BatchingDisabled bool
}

// DefaultOptions mirrors the paper's settings (stride 32). The batch gate
// is left at 1: the profitability model already keeps unprofitably small
// groups on the host, and a hard gate is only useful for the ablation
// benchmarks.
func DefaultOptions() Options {
	return Options{Stride: 32, MinBatch: 1, Offload: true}
}

// BatchingExecutor implements linalg.Executor with elastic offloading.
type BatchingExecutor struct {
	Device Device
	Opt    Options
	Stats  Stats
	// PhaseStats splits the accounting by pipeline phase (set via
	// BeginPhase); Table I reports the n⁽¹⁾ and H⁽¹⁾ phases separately.
	PhaseStats map[string]*Stats
	phase      string
	host       linalg.HostExecutor
}

// NewBatchingExecutor builds an executor over the device.
func NewBatchingExecutor(dev Device, opt Options) *BatchingExecutor {
	return &BatchingExecutor{Device: dev, Opt: opt, PhaseStats: map[string]*Stats{}}
}

// BeginPhase labels subsequent Execute calls; the DFPT pipeline announces
// its grid phases ("n1", "h1") so per-phase rates can be reported.
func (e *BatchingExecutor) BeginPhase(name string) { e.phase = name }

// phaseStats returns the current phase's accumulator.
func (e *BatchingExecutor) phaseStats() *Stats {
	s, ok := e.PhaseStats[e.phase]
	if !ok {
		s = &Stats{}
		e.PhaseStats[e.phase] = s
	}
	return s
}

// shapeKey is the padded GEMM shape used for grouping.
type shapeKey struct{ m, k, n int }

func (e *BatchingExecutor) pad(v int) int {
	s := e.Opt.Stride
	if s <= 1 {
		return v
	}
	return (v + s - 1) / s * s
}

// Execute runs all calls on the host (numerics) and accumulates the modeled
// cost of the chosen offload strategy.
func (e *BatchingExecutor) Execute(calls []linalg.GemmCall) {
	t0 := time.Now()
	e.host.Execute(calls) // numerics: always exact, always on host
	measured := time.Since(t0)
	e.Stats.MeasuredHostTime += measured
	e.Stats.GEMMs += int64(len(calls))
	ps := e.phaseStats()
	ps.MeasuredHostTime += measured
	ps.GEMMs += int64(len(calls))

	if !e.Opt.Offload {
		for i := range calls {
			e.costHost(&calls[i])
		}
		return
	}
	if e.Opt.BatchingDisabled {
		for i := range calls {
			e.costDevice(1, calls[i].FLOPs(), e.bytesOf(&calls[i]))
			e.Stats.OffloadedGEMMs++
			e.phaseStats().OffloadedGEMMs++
		}
		return
	}

	// Elastic batching: group by padded shape; offload profitable groups.
	groups := map[shapeKey][]int{}
	for i := range calls {
		m, k, n := calls[i].Shape()
		key := shapeKey{e.pad(m), e.pad(k), e.pad(n)}
		groups[key] = append(groups[key], i)
	}
	for key, idxs := range groups {
		var padded, actual, bytes int64
		for _, i := range idxs {
			// The batched kernel computes the padded shape; the host
			// alternative computes the actual shapes.
			padded += linalg.GemmFLOPs(key.m, key.k, key.n)
			actual += calls[i].FLOPs()
			bytes += e.bytesOf(&calls[i])
		}
		if len(idxs) >= e.Opt.MinBatch && e.profitable(padded, actual, bytes) {
			e.costDevice(1, padded, bytes)
			e.Stats.Batches++
			e.Stats.OffloadedGEMMs += int64(len(idxs))
			ps := e.phaseStats()
			ps.Batches++
			ps.OffloadedGEMMs += int64(len(idxs))
		} else {
			for _, i := range idxs {
				e.costHost(&calls[i])
			}
		}
	}
}

// bytesOf estimates the host↔device traffic of one call: the caller's
// explicit figure when provided, otherwise A and B in plus C out.
func (e *BatchingExecutor) bytesOf(c *linalg.GemmCall) int64 {
	if c.TransferBytes > 0 {
		return c.TransferBytes
	}
	return 8 * int64(len(c.A.Data)+len(c.B.Data)+len(c.C.Data))
}

// profitable reports whether offloading (computing paddedFLOPs on the
// device, plus launch and transfer) beats computing the actual FLOPs on the
// host.
func (e *BatchingExecutor) profitable(paddedFLOPs, actualFLOPs, bytes int64) bool {
	dev := e.deviceCost(1, paddedFLOPs, bytes)
	host := time.Duration(float64(actualFLOPs) / e.Device.HostFLOPsPerSec * 1e9)
	return dev < host
}

func (e *BatchingExecutor) deviceCost(launches int, flops, bytes int64) time.Duration {
	d := time.Duration(launches) * e.Device.LaunchOverhead
	d += time.Duration(float64(flops) / e.Device.FLOPsPerSec * 1e9)
	if e.Device.TransferBytesPerSec > 0 {
		d += time.Duration(float64(bytes) / e.Device.TransferBytesPerSec * 1e9)
	}
	return d
}

func (e *BatchingExecutor) costDevice(launches int, flops, bytes int64) {
	d := e.deviceCost(launches, flops, bytes)
	e.Stats.DeviceTime += d
	e.Stats.OffloadedFLOPs += flops
	ps := e.phaseStats()
	ps.DeviceTime += d
	ps.OffloadedFLOPs += flops
}

func (e *BatchingExecutor) costHost(c *linalg.GemmCall) {
	f := c.FLOPs()
	d := time.Duration(float64(f) / e.Device.HostFLOPsPerSec * 1e9)
	e.Stats.HostTime += d
	e.Stats.HostGEMMs++
	e.Stats.HostFLOPs += f
	ps := e.phaseStats()
	ps.HostTime += d
	ps.HostGEMMs++
	ps.HostFLOPs += f
}
