package accel

import (
	"math/rand"
	"testing"

	"qframan/internal/linalg"
)

// smallCalls fabricates n independent small GEMMs of similar shapes. With
// rows ~20·dim and columns ~dim they match the profile of the DFPT grid
// batches (a few hundred points × a few dozen basis functions).
func smallCalls(rng *rand.Rand, n, dim int) []linalg.GemmCall {
	calls := make([]linalg.GemmCall, n)
	for i := range calls {
		rows := 20*dim + rng.Intn(32)
		k := dim + rng.Intn(5)
		a := linalg.NewMatrix(rows, k)
		b := linalg.NewMatrix(k, k)
		for j := range a.Data {
			a.Data[j] = rng.NormFloat64()
		}
		for j := range b.Data {
			b.Data[j] = rng.NormFloat64()
		}
		calls[i] = linalg.GemmCall{Alpha: 1, A: a, B: b, C: linalg.NewMatrix(rows, k)}
	}
	return calls
}

func cloneCalls(calls []linalg.GemmCall) []linalg.GemmCall {
	out := make([]linalg.GemmCall, len(calls))
	for i, c := range calls {
		out[i] = c
		out[i].C = linalg.NewMatrix(c.C.Rows, c.C.Cols)
	}
	return out
}

func TestNumericsIdenticalToHost(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	calls := smallCalls(rng, 20, 12)
	ref := cloneCalls(calls)
	(&linalg.HostExecutor{}).Execute(ref)

	e := NewBatchingExecutor(ORISEDevice(), DefaultOptions())
	e.Execute(calls)
	for i := range calls {
		if d := calls[i].C.MaxAbsDiff(ref[i].C); d != 0 {
			t.Fatalf("call %d: offloaded result differs from host by %g", i, d)
		}
	}
}

func TestBatchingReducesModeledTime(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	calls := smallCalls(rng, 256, 16)

	// Baseline: no offload at all (pure host cost).
	hostOnly := NewBatchingExecutor(ORISEDevice(), Options{Stride: 32, MinBatch: 64, Offload: false})
	hostOnly.Execute(cloneCalls(calls))

	// Strawman: offload each tiny GEMM individually.
	naive := NewBatchingExecutor(ORISEDevice(), Options{Stride: 32, MinBatch: 64, Offload: true, BatchingDisabled: true})
	naive.Execute(cloneCalls(calls))

	// Elastic batching.
	batched := NewBatchingExecutor(ORISEDevice(), DefaultOptions())
	batched.Execute(cloneCalls(calls))

	if batched.Stats.Batches == 0 {
		t.Fatal("elastic executor never batched")
	}
	if batched.Stats.ModeledTime() >= naive.Stats.ModeledTime() {
		t.Fatalf("batched %v not faster than per-call offload %v",
			batched.Stats.ModeledTime(), naive.Stats.ModeledTime())
	}
	if batched.Stats.ModeledTime() >= hostOnly.Stats.ModeledTime() {
		t.Fatalf("batched %v not faster than host-only %v",
			batched.Stats.ModeledTime(), hostOnly.Stats.ModeledTime())
	}
}

func TestSmallGroupsStayOnHost(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Fewer calls than MinBatch: everything must stay on the host.
	calls := smallCalls(rng, 10, 8)
	e := NewBatchingExecutor(ORISEDevice(), DefaultOptions())
	e.Execute(calls)
	if e.Stats.OffloadedGEMMs != 0 {
		t.Fatalf("offloaded %d GEMMs from an unprofitable group", e.Stats.OffloadedGEMMs)
	}
	if e.Stats.HostGEMMs != 10 {
		t.Fatalf("host GEMMs = %d, want 10", e.Stats.HostGEMMs)
	}
}

func TestPadding(t *testing.T) {
	e := NewBatchingExecutor(SunwayDevice(), DefaultOptions())
	if e.pad(1) != 32 || e.pad(32) != 32 || e.pad(33) != 64 {
		t.Fatalf("pad: %d %d %d", e.pad(1), e.pad(32), e.pad(33))
	}
	e.Opt.Stride = 1
	if e.pad(17) != 17 {
		t.Fatal("stride 1 must not pad")
	}
}

func TestGroupingBySimilarStrength(t *testing.T) {
	// Calls within the same padded shape bucket form one batch; a much
	// larger call lands in its own group.
	rng := rand.New(rand.NewSource(4))
	small := smallCalls(rng, 128, 10) // k pads to 32
	big := smallCalls(rng, 70, 100)   // k pads to 128
	opt := DefaultOptions()
	opt.MinBatch = 16
	e := NewBatchingExecutor(SunwayDevice(), opt)
	e.Execute(append(small, big...))
	if e.Stats.Batches < 2 {
		t.Fatalf("expected at least 2 batches, got %d", e.Stats.Batches)
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	calls := smallCalls(rng, 100, 12)
	e := NewBatchingExecutor(ORISEDevice(), DefaultOptions())
	e.Execute(calls)
	if e.Stats.GEMMs != 100 {
		t.Fatalf("GEMMs = %d", e.Stats.GEMMs)
	}
	if e.Stats.OffloadedGEMMs+e.Stats.HostGEMMs != 100 {
		t.Fatalf("offloaded %d + host %d != 100", e.Stats.OffloadedGEMMs, e.Stats.HostGEMMs)
	}
	if e.Stats.ModeledTime() <= 0 {
		t.Fatal("no modeled time accumulated")
	}
}
