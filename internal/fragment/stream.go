package fragment

import (
	"qframan/internal/geom"
	"qframan/internal/structure"
)

// WaterBoxStats reproduces the paper's §VI-A headline statistics for a pure
// water box of nx×ny×nz molecules — number of one-body water fragments and
// water–water two-body pairs within λ — in streaming fashion, without ever
// materializing the atoms. This is how the repository handles the
// 101,250,000-atom water system: the box is generated procedurally and only
// counters are kept.
//
// The returned atom count is 3·nx·ny·nz.
func WaterBoxStats(nx, ny, nz int, lambda float64) (atoms, waterFragments, wwPairs int64) {
	atoms = int64(nx) * int64(ny) * int64(nz) * 3
	waterFragments = int64(nx) * int64(ny) * int64(nz)

	// Two molecules are a pair when their O–O distance is ≤ λ (Eq. 1
	// measures waters at their molecular position). Molecules sit on a
	// jittered lattice, so only sites within a small Chebyshev radius can
	// qualify.
	maxReach := lambda + 2*0.3 // jitter of each oxygen
	chev := int(maxReach/3.0) + 1

	// Forward half of the neighbor offsets so each pair is counted once.
	type off struct{ dx, dy, dz int }
	var offs []off
	for dz := -chev; dz <= chev; dz++ {
		for dy := -chev; dy <= chev; dy++ {
			for dx := -chev; dx <= chev; dx++ {
				if dz > 0 || (dz == 0 && dy > 0) || (dz == 0 && dy == 0 && dx > 0) {
					offs = append(offs, off{dx, dy, dz})
				}
			}
		}
	}

	l2 := lambda * lambda
	oxygen := func(ix, iy, iz int) geom.Vec3 {
		o, _, _ := structure.WaterSite(ix, iy, iz)
		return o
	}
	for iz := 0; iz < nz; iz++ {
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				a := oxygen(ix, iy, iz)
				for _, d := range offs {
					jx, jy, jz := ix+d.dx, iy+d.dy, iz+d.dz
					if jx < 0 || jx >= nx || jy < 0 || jy >= ny || jz < 0 || jz >= nz {
						continue
					}
					if a.Dist2(oxygen(jx, jy, jz)) <= l2 {
						wwPairs++
					}
				}
			}
		}
	}
	return atoms, waterFragments, wwPairs
}
