package fragment

import (
	"sort"

	"qframan/internal/constants"
	"qframan/internal/geom"
	"qframan/internal/structure"
)

// BondClass is the perceived character of a covalent bond, inferred from the
// bond length relative to tabulated reference lengths (FRAGMENTATION.md §2).
type BondClass uint8

const (
	// BondSingle is an ordinary σ bond.
	BondSingle BondClass = iota + 1
	// BondPartial is a conjugated single bond with partial double character
	// (the amide/peptide C–N): severable — the QF baseline severs exactly
	// these — but at an elevated cut cost.
	BondPartial
	// BondMultiple is a double, triple, or aromatic-length bond. Never
	// severed.
	BondMultiple
)

// String returns a short label for the class.
func (c BondClass) String() string {
	switch c {
	case BondSingle:
		return "single"
	case BondPartial:
		return "partial"
	case BondMultiple:
		return "multiple"
	}
	return "unknown"
}

// BondEdge is one perceived covalent bond of a BondGraph.
type BondEdge struct {
	I, J  int // atom indices, I < J
	Class BondClass
	// Ring marks bonds lying on a cycle (non-bridges of the molecule
	// graph). Severing a ring bond does not disconnect anything and leaves
	// an open ring with two caps, so ring bonds are never severed.
	Ring bool
	// Severable reports whether the partitioner may cut this bond: a
	// non-ring, non-multiple bond between two heavy atoms.
	Severable bool
	// Cost is the severance penalty (dimensionless, ≥ 1 for severable
	// bonds): the balanced min-cut prefers cutting the cheapest bonds.
	Cost float64
}

// BondGraph is the perceived covalent topology of a system: atoms as nodes,
// classified bonds as edges, with per-atom adjacency.
type BondGraph struct {
	NumAtoms int
	Edges    []BondEdge
	adj      [][]int32 // atom → indices into Edges, ascending
}

// Adjacent returns the indices (into Edges) of the bonds incident on atom a.
func (g *BondGraph) Adjacent(a int) []int32 { return g.adj[a] }

// multipleBondThreshold returns the bond length (Å) at or below which a bond
// between the two elements is classified as multiple (double/triple/aromatic
// length regime). Pairs without an entry are always single.
func multipleBondThreshold(a, b constants.Element) float64 {
	if a > b {
		a, b = b, a
	}
	switch {
	case a == constants.C && b == constants.C:
		// C=C 1.34 Å, aromatic ~1.39 Å, single 1.52–1.54 Å.
		return 1.42
	case a == constants.C && b == constants.O:
		// Carbonyl C=O 1.23 Å, ester/ether single 1.41–1.43 Å.
		return 1.32
	case a == constants.C && b == constants.N:
		// Imine C=N 1.28 Å is multiple; the amide/peptide C–N
		// (1.30–1.35 Å) must stay below this threshold's reach — it is
		// classified BondPartial instead (see amideThreshold).
		return 1.25
	case a == constants.N && b == constants.N:
		return 1.30
	case a == constants.N && b == constants.O:
		return 1.30
	case a == constants.C && b == constants.S:
		// Thiocarbonyl C=S 1.60 Å, single 1.81 Å.
		return 1.67
	}
	return 0
}

// amideThreshold is the C–N length (Å) below which a single C–N bond is
// treated as conjugated (amide/peptide character): severable, higher cost.
const amideThreshold = 1.38

// bondCost scores the penalty for severing a bond (lower = better cut):
// 1 for an apolar C–C σ bond, plus the Pauling electronegativity difference
// (severing polar bonds perturbs the fragment charge distribution more),
// plus a conjugation penalty for partial-double bonds.
func bondCost(a, b constants.Element, class BondClass) float64 {
	cost := 1.0
	dEN := a.Electronegativity() - b.Electronegativity()
	if dEN < 0 {
		dEN = -dEN
	}
	cost += dEN
	if class == BondPartial {
		cost += 1.0
	}
	return cost
}

// BuildBondGraph perceives the covalent topology of an explicit atom set:
// bonds from covalent radii (the same cell-list criterion as
// structure.SubsetBonds), bond class from length thresholds, ring membership
// from bridge detection, and severance costs. The edge list is sorted by
// (I, J), so the graph is a pure deterministic function of the geometry.
func BuildBondGraph(els []constants.Element, pos []geom.Vec3) *BondGraph {
	g := &BondGraph{NumAtoms: len(els)}
	for _, b := range structure.SubsetBonds(els, pos) {
		i, j := b[0], b[1]
		d := pos[i].Dist(pos[j])
		ei, ej := els[i], els[j]
		class := BondSingle
		if th := multipleBondThreshold(ei, ej); th > 0 && d <= th {
			class = BondMultiple
		} else if lo, hi := ei, ej; (lo == constants.C && hi == constants.N || lo == constants.N && hi == constants.C) && d <= amideThreshold {
			class = BondPartial
		}
		g.Edges = append(g.Edges, BondEdge{I: i, J: j, Class: class})
	}
	sort.Slice(g.Edges, func(a, b int) bool {
		if g.Edges[a].I != g.Edges[b].I {
			return g.Edges[a].I < g.Edges[b].I
		}
		return g.Edges[a].J < g.Edges[b].J
	})

	g.adj = make([][]int32, len(els))
	for e := range g.Edges {
		g.adj[g.Edges[e].I] = append(g.adj[g.Edges[e].I], int32(e))
		g.adj[g.Edges[e].J] = append(g.adj[g.Edges[e].J], int32(e))
	}

	g.markBridges()
	for e := range g.Edges {
		ed := &g.Edges[e]
		ed.Severable = ed.Class != BondMultiple && !ed.Ring &&
			els[ed.I] != constants.H && els[ed.J] != constants.H
		if ed.Severable {
			ed.Cost = bondCost(els[ed.I], els[ed.J], ed.Class)
		}
	}
	return g
}

// markBridges sets Ring on every edge that is NOT a bridge, using an
// iterative Tarjan lowpoint DFS (no recursion: systems can be large).
func (g *BondGraph) markBridges() {
	const unvisited = -1
	disc := make([]int32, g.NumAtoms)
	low := make([]int32, g.NumAtoms)
	parentEdge := make([]int32, g.NumAtoms)
	for i := range disc {
		disc[i] = unvisited
		parentEdge[i] = -1
	}
	type frame struct {
		atom int32
		next int32 // next index into adj[atom] to examine
	}
	var stack []frame
	var timer int32
	for root := 0; root < g.NumAtoms; root++ {
		if disc[root] != unvisited {
			continue
		}
		disc[root], low[root] = timer, timer
		timer++
		stack = append(stack[:0], frame{atom: int32(root)})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			a := f.atom
			if int(f.next) < len(g.adj[a]) {
				ei := g.adj[a][f.next]
				f.next++
				if ei == parentEdge[a] {
					continue
				}
				e := &g.Edges[ei]
				b := int32(e.I)
				if b == a {
					b = int32(e.J)
				}
				if disc[b] == unvisited {
					disc[b], low[b] = timer, timer
					timer++
					parentEdge[b] = ei
					stack = append(stack, frame{atom: b})
				} else if disc[b] < low[a] {
					// Back edge: part of a cycle.
					e.Ring = true
					low[a] = disc[b]
				} else if disc[b] < disc[a] {
					e.Ring = true
				}
			} else {
				stack = stack[:len(stack)-1]
				if pe := parentEdge[a]; pe >= 0 {
					e := &g.Edges[pe]
					p := int32(e.I)
					if p == a {
						p = int32(e.J)
					}
					if low[a] < low[p] {
						low[p] = low[a]
					}
					if low[a] <= disc[p] {
						// The subtree under a reaches back to p or
						// above: the tree edge (p, a) is on a cycle.
						e.Ring = true
					}
				}
			}
		}
	}
}
