// Package fragment implements the quantum-fragmentation (QF) algorithm of
// the paper (Eq. 1): a protein is cut through every peptide bond except the
// first and the last, each naked residue is dressed with its two conjugate
// caps, concap fragments are subtracted to remove double counting, every
// water molecule is a one-body fragment, and two-body corrections
// ("generalized concaps") are added for spatially close residue–residue,
// residue–water, and water–water pairs within a distance threshold λ.
//
// The central invariant — verified by the test suite as a property test — is
// that the signed fragment combination covers every real atom exactly once:
// for any atom a, Σ_f coeff(f)·[a ∈ f] = 1. This is what makes assembling
// per-fragment Hessians and polarizability derivatives into whole-system
// quantities (the paper's E⁽²⁾ and ∂α/∂ξ) consistent.
package fragment

import (
	"fmt"

	"qframan/internal/constants"
	"qframan/internal/geom"
	"qframan/internal/structure"
)

// Kind labels the role of a fragment in the Eq. 1 combination.
type Kind uint8

const (
	// KindResidue is a capped naked-residue fragment Cap*_{k-1} a_k Cap_{k+1}.
	KindResidue Kind = iota
	// KindConcap is a subtracted conjugate-cap pair Cap*_k Cap_{k+1}.
	KindConcap
	// KindWater is a one-body water fragment.
	KindWater
	// KindPairRR is a residue–residue generalized-concap dimer.
	KindPairRR
	// KindMonoRR is a subtracted monomer of a residue–residue pair.
	KindMonoRR
	// KindPairRW is a residue–water dimer.
	KindPairRW
	// KindMonoRW is a subtracted monomer of a residue–water pair.
	KindMonoRW
	// KindPairWW is a water–water dimer.
	KindPairWW
	// KindMonoWW is a subtracted water monomer of a water–water pair.
	KindMonoWW
	// KindPart is a connected part of the graph partitioner's
	// severable-bond forest (+1; the graph analogue of KindResidue).
	KindPart
	// KindPairBond is a dimer of two parts joined by a severed bond (+1) —
	// the graph generalization of the conjugate-cap correction.
	KindPairBond
	// KindMonoBond is a subtracted monomer of a bonded part dimer (−1).
	KindMonoBond
	// KindPairSpace is a spatial λ-sphere dimer of two parts (+1) — the
	// graph generalization of the QF generalized concap.
	KindPairSpace
	// KindMonoSpace is a subtracted monomer of a spatial part dimer (−1).
	KindMonoSpace
	numKinds
)

// String returns a short label for the kind.
func (k Kind) String() string {
	switch k {
	case KindResidue:
		return "residue"
	case KindConcap:
		return "concap"
	case KindWater:
		return "water"
	case KindPairRR:
		return "pair-rr"
	case KindMonoRR:
		return "mono-rr"
	case KindPairRW:
		return "pair-rw"
	case KindMonoRW:
		return "mono-rw"
	case KindPairWW:
		return "pair-ww"
	case KindMonoWW:
		return "mono-ww"
	case KindPart:
		return "part"
	case KindPairBond:
		return "pair-bond"
	case KindMonoBond:
		return "mono-bond"
	case KindPairSpace:
		return "pair-space"
	case KindMonoSpace:
		return "mono-space"
	}
	return "unknown"
}

// Fragment is one term of the Eq. 1 combination: a small molecular system
// extracted from the parent System, with hydrogen caps terminating every cut
// covalent bond.
type Fragment struct {
	ID    int
	Kind  Kind
	Coeff float64 // +1 or −1 in the combination

	// Els and Pos are the fragment's atoms (positions in Å). Cap hydrogens
	// come last.
	Els []constants.Element
	Pos []geom.Vec3

	// GlobalIdx maps local atom index → atom index in the parent system;
	// −1 for cap hydrogens (their contributions cancel in the combination
	// and are dropped at assembly).
	GlobalIdx []int

	// NumReal is the number of non-cap atoms (== count of GlobalIdx ≥ 0,
	// stored for convenience; cap hydrogens are the NumAtoms−NumReal tail).
	NumReal int
}

// NumAtoms returns the total atom count including cap hydrogens.
func (f *Fragment) NumAtoms() int { return len(f.Els) }

// Options configures the decomposition.
type Options struct {
	// LambdaRR/RW/WW are the distance thresholds (Å) for the two-body
	// terms; the paper uses 4 Å for all three.
	LambdaRR float64
	LambdaRW float64
	LambdaWW float64
	// MinSeqSeparation is the minimum |i−j| in sequence for a
	// residue–residue pair to count as "sequentially non-neighboring";
	// pairs closer in sequence are already covered by the capped fragments.
	MinSeqSeparation int
}

// DefaultOptions returns the paper's settings: λ = 4 Å everywhere.
func DefaultOptions() Options {
	return Options{LambdaRR: 4, LambdaRW: 4, LambdaWW: 4, MinSeqSeparation: 3}
}

// Stats summarizes a decomposition, reproducing the quantities the paper
// reports in §VI-A (fragment counts, concaps, generalized concaps, pair
// counts, size range).
type Stats struct {
	// Partitioner is the engine that produced the decomposition
	// ("qf" or "graph").
	Partitioner         string
	NumResidueFragments int
	NumConcaps          int
	NumWaterFragments   int
	NumRRPairs          int // generalized concaps
	NumRWPairs          int
	NumWWPairs          int
	// Graph-partitioner counters (zero for QF decompositions).
	NumParts        int // +1 parts of the severable-bond forest
	NumCutBonds     int // severed bonds (each capped on both sides)
	NumBondedPairs  int // dimer corrections across severed bonds
	NumSpatialPairs int // λ-sphere part dimers
	// MinAtoms/MaxAtoms bound the sizes over all emitted fragments
	// (dimers included).
	MinAtoms, MaxAtoms int
	TotalFragments     int
	// SizeHistogram[n] counts fragments with n atoms.
	SizeHistogram map[int]int
}

// Decomposition is the full output of the QF algorithm.
type Decomposition struct {
	Fragments []Fragment
	Stats     Stats
}

// Decompose runs the QF algorithm on a system. Systems containing generic
// molecules are rejected: the QF chemistry rules know only peptide chains
// and water, so such systems need the graph partitioner (FRAGMENTATION.md).
func Decompose(sys *structure.System, opt Options) (*Decomposition, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if n := len(sys.Molecules); n > 0 {
		return nil, fmt.Errorf("fragment: the QF partitioner cannot fragment %d generic molecule(s); use the graph partitioner (-partitioner graph)", n)
	}
	if opt.MinSeqSeparation < 2 {
		return nil, fmt.Errorf("fragment: MinSeqSeparation must be ≥ 2 (neighbors are covered by caps)")
	}
	d := &Decomposition{}
	d.Stats.Partitioner = "qf"
	ex := newExtractor(sys)

	// 1. Capped residue fragments and concaps, independently per protein
	// chain (the paper's spike protein is a trimer: 3,180 residues in 3
	// chains yield 3·(n_c−3) = 3,171 conjugate caps).
	for _, chain := range chainRanges(sys) {
		nc := chain.hi - chain.lo + 1
		pieces := chainPieces(nc)
		for p, piece := range pieces {
			resSet := make([]int, 0, piece.hi-piece.lo+3)
			if p > 0 {
				resSet = append(resSet, chain.lo+pieces[p-1].hi)
			}
			for r := piece.lo; r <= piece.hi; r++ {
				resSet = append(resSet, chain.lo+r)
			}
			if p < len(pieces)-1 {
				resSet = append(resSet, chain.lo+pieces[p+1].lo)
			}
			d.add(ex.extract(KindResidue, +1, resSet, nil))
			d.Stats.NumResidueFragments++
		}
		// Concaps: one per cut; cut c sits between residues c+1 and c+2
		// of the chain.
		if nc >= 4 {
			for c := 0; c <= nc-4; c++ {
				d.add(ex.extract(KindConcap, -1, []int{chain.lo + c + 1, chain.lo + c + 2}, nil))
				d.Stats.NumConcaps++
			}
		}
	}

	// 2. One-body water fragments.
	for w := range sys.Waters {
		d.add(ex.extract(KindWater, +1, nil, []int{w}))
		d.Stats.NumWaterFragments++
	}

	// 3. Two-body generalized concaps and solvent pairs.
	pairs := findPairs(sys, opt)
	for _, pr := range pairs.rr {
		d.add(ex.extract(KindPairRR, +1, []int{pr[0], pr[1]}, nil))
		d.add(ex.extract(KindMonoRR, -1, []int{pr[0]}, nil))
		d.add(ex.extract(KindMonoRR, -1, []int{pr[1]}, nil))
		d.Stats.NumRRPairs++
	}
	for _, pr := range pairs.rw {
		d.add(ex.extract(KindPairRW, +1, []int{pr[0]}, []int{pr[1]}))
		d.add(ex.extract(KindMonoRW, -1, []int{pr[0]}, nil))
		d.add(ex.extract(KindMonoRW, -1, nil, []int{pr[1]}))
		d.Stats.NumRWPairs++
	}
	for _, pr := range pairs.ww {
		d.add(ex.extract(KindPairWW, +1, nil, []int{pr[0], pr[1]}))
		d.add(ex.extract(KindMonoWW, -1, nil, []int{pr[0]}))
		d.add(ex.extract(KindMonoWW, -1, nil, []int{pr[1]}))
		d.Stats.NumWWPairs++
	}

	d.finishStats()
	return d, nil
}

func (d *Decomposition) add(f Fragment) {
	f.ID = len(d.Fragments)
	d.Fragments = append(d.Fragments, f)
}

func (d *Decomposition) finishStats() {
	s := &d.Stats
	s.TotalFragments = len(d.Fragments)
	s.SizeHistogram = make(map[int]int)
	for i := range d.Fragments {
		n := d.Fragments[i].NumAtoms()
		s.SizeHistogram[n]++
		if s.MinAtoms == 0 || n < s.MinAtoms {
			s.MinAtoms = n
		}
		if n > s.MaxAtoms {
			s.MaxAtoms = n
		}
	}
}

// chainRanges returns the [lo,hi] global residue index range of each chain.
// Residues of one chain must be contiguous in the System.
func chainRanges(sys *structure.System) []piece {
	var out []piece
	for i := 0; i < len(sys.Residues); {
		j := i
		for j+1 < len(sys.Residues) && sys.Residues[j+1].Chain == sys.Residues[i].Chain {
			j++
		}
		out = append(out, piece{i, j})
		i = j + 1
	}
	return out
}

// piece is a contiguous run of residues [lo, hi].
type piece struct{ lo, hi int }

func (p piece) slice() []int {
	out := make([]int, 0, p.hi-p.lo+1)
	for r := p.lo; r <= p.hi; r++ {
		out = append(out, r)
	}
	return out
}

// chainPieces cuts an n-residue chain at every peptide bond except the first
// and the last, following the paper: n−3 cuts yield n−2 pieces, the first
// and last of which hold two residues. Chains with n ≤ 3 stay whole.
func chainPieces(n int) []piece {
	if n == 0 {
		return nil
	}
	if n <= 3 {
		return []piece{{0, n - 1}}
	}
	out := make([]piece, 0, n-2)
	out = append(out, piece{0, 1})
	for r := 2; r <= n-3; r++ {
		out = append(out, piece{r, r})
	}
	out = append(out, piece{n - 2, n - 1})
	return out
}
