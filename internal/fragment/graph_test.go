package fragment

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"qframan/internal/constants"
	"qframan/internal/geom"
	"qframan/internal/structure"
)

func graphPartition(t *testing.T, sys *structure.System, opt GraphOptions) *Decomposition {
	t.Helper()
	d, err := GraphPartitioner{Opt: opt}.Partition(sys)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// encodeDecomposition serializes every field that feeds downstream physics,
// so two decompositions compare byte-identically.
func encodeDecomposition(d *Decomposition) string {
	out := fmt.Sprintf("stats=%+v\n", d.Stats)
	for i := range d.Fragments {
		f := &d.Fragments[i]
		out += fmt.Sprintf("frag %d kind=%s coeff=%v real=%d\n", f.ID, f.Kind, f.Coeff, f.NumReal)
		for a := range f.Els {
			out += fmt.Sprintf("  %d %d %.17g %.17g %.17g\n",
				f.Els[a], f.GlobalIdx[a], f.Pos[a].X, f.Pos[a].Y, f.Pos[a].Z)
		}
	}
	return out
}

func TestGraphDeterminism(t *testing.T) {
	// The determinism contract (FRAGMENTATION.md §6): byte-identical
	// decompositions on every run, at every GOMAXPROCS.
	seq := structure.RandomSequence(20, 5)
	prot, err := structure.BuildProteinFolded(seq, 6)
	if err != nil {
		t.Fatal(err)
	}
	melt := structure.BuildPolymerMelt(3, 5, 9)
	for name, sys := range map[string]*structure.System{"protein": prot, "melt": melt} {
		ref := encodeDecomposition(graphPartition(t, sys, DefaultGraphOptions()))
		for run := 0; run < 3; run++ {
			prev := runtime.GOMAXPROCS(1 + run)
			got := encodeDecomposition(graphPartition(t, sys, DefaultGraphOptions()))
			runtime.GOMAXPROCS(prev)
			if got != ref {
				t.Fatalf("%s: run %d produced a different decomposition", name, run)
			}
		}
	}
}

func TestGraphCoverageInvariant(t *testing.T) {
	seq := structure.RandomSequence(25, 3)
	prot, err := structure.BuildProteinFolded(seq, 8)
	if err != nil {
		t.Fatal(err)
	}
	solv := structure.SolvateInWater(prot, 4.0, 2.4)
	melt := structure.BuildPolymerMelt(4, 6, 2)
	for name, sys := range map[string]*structure.System{
		"protein": prot, "solvated": solv, "melt": melt,
	} {
		d := graphPartition(t, sys, DefaultGraphOptions())
		for i, c := range coverage(d, sys.NumAtoms()) {
			if math.Abs(c-1) > 1e-12 {
				t.Fatalf("%s: atom %d covered with net coefficient %v, want 1", name, i, c)
			}
		}
	}
}

func TestGraphFragmentsAreClosedShell(t *testing.T) {
	// The SCF engine rejects odd electron counts, so every emitted
	// fragment — caps included — must carry an even valence-electron sum
	// (the parity-repair pass guarantees it for parts; dimers and monomers
	// inherit it).
	seq := structure.RandomSequence(40, 13)
	prot, err := structure.BuildProteinFolded(seq, 12)
	if err != nil {
		t.Fatal(err)
	}
	melt := structure.BuildPolymerMelt(3, 4, 6)
	for name, sys := range map[string]*structure.System{"protein": prot, "melt": melt} {
		d := graphPartition(t, sys, DefaultGraphOptions())
		for i := range d.Fragments {
			f := &d.Fragments[i]
			n := 0
			for _, el := range f.Els {
				n += el.NumValence()
			}
			if n%2 != 0 {
				t.Fatalf("%s: fragment %d (%s) has odd electron count %d", name, f.ID, f.Kind, n)
			}
		}
	}
}

func TestGraphNeverSeversForbiddenBonds(t *testing.T) {
	// Every severed bond must be a severable single bond: reconstruct the
	// cut set as bonds whose endpoints sit in different KindPart fragments
	// and check it against the bond graph.
	seq := structure.RandomSequence(30, 7)
	sys, err := structure.BuildProteinFolded(seq, 10)
	if err != nil {
		t.Fatal(err)
	}
	d := graphPartition(t, sys, DefaultGraphOptions())
	partOf := make([]int, sys.NumAtoms())
	for i := range partOf {
		partOf[i] = -1
	}
	for i := range d.Fragments {
		f := &d.Fragments[i]
		if f.Kind != KindPart {
			continue
		}
		for _, g := range f.GlobalIdx {
			if g >= 0 {
				if partOf[g] != -1 {
					t.Fatalf("atom %d in two parts", g)
				}
				partOf[g] = f.ID
			}
		}
	}
	for i, p := range partOf {
		if p == -1 {
			t.Fatalf("atom %d in no part", i)
		}
	}
	g := BuildBondGraph(elsOf(sys), sys.Positions())
	cuts := 0
	for _, e := range g.Edges {
		if partOf[e.I] == partOf[e.J] {
			continue
		}
		cuts++
		if !e.Severable {
			t.Fatalf("severed unseverable bond %d–%d (class %s, ring %v)",
				e.I, e.J, e.Class, e.Ring)
		}
	}
	if cuts != d.Stats.NumCutBonds {
		t.Fatalf("NumCutBonds=%d, found %d cross-part bonds", d.Stats.NumCutBonds, cuts)
	}
}

func TestGraphPartSizeBounds(t *testing.T) {
	// The agglomeration stops at TargetAtoms; the tiny-part cleanup may
	// grow a part up to MaxAtoms, and the electron-parity repair may pair
	// two such parts — so 2·MaxAtoms is the guaranteed bound (the
	// synthetic protein's small rigid groups rule out the oversized-group
	// exception here).
	seq := structure.RandomSequence(40, 13)
	sys, err := structure.BuildProteinFolded(seq, 12)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultGraphOptions()
	opt.TargetAtoms = 30
	opt.MaxAtoms = 45
	d := graphPartition(t, sys, opt)
	for i := range d.Fragments {
		f := &d.Fragments[i]
		if f.Kind == KindPart && f.NumReal > 2*opt.MaxAtoms {
			t.Fatalf("part %d has %d real atoms > 2×cap %d", f.ID, f.NumReal, 2*opt.MaxAtoms)
		}
	}
	if d.Stats.NumParts < 2 {
		t.Fatalf("expected a real partition, got %d parts", d.Stats.NumParts)
	}
}

func TestGraphWatersStayWhole(t *testing.T) {
	// Water has no severable bonds (every bond touches H), so each molecule
	// must come out as exactly one 3-atom part.
	sys := structure.BuildWaterBox(3, 3, 3, geom.Vec3{})
	d := graphPartition(t, sys, DefaultGraphOptions())
	if d.Stats.NumParts != len(sys.Waters) {
		t.Fatalf("%d parts for %d waters", d.Stats.NumParts, len(sys.Waters))
	}
	if d.Stats.NumCutBonds != 0 {
		t.Fatalf("severed %d bonds inside water", d.Stats.NumCutBonds)
	}
	for i := range d.Fragments {
		f := &d.Fragments[i]
		if f.Kind == KindPart && f.NumAtoms() != 3 {
			t.Fatalf("water part with %d atoms", f.NumAtoms())
		}
	}
	if d.Stats.NumSpatialPairs == 0 {
		t.Fatal("expected spatial water–water pairs within λ")
	}
}

func TestGraphRejectsQFOnlyErrors(t *testing.T) {
	// The QF engine refuses generic molecules and points at the graph
	// engine; the graph engine must accept the same system.
	melt := structure.BuildPolymerMelt(2, 3, 1)
	if _, err := Decompose(melt, DefaultOptions()); err == nil {
		t.Fatal("QF accepted a generic-molecule system")
	}
	d := graphPartition(t, melt, DefaultGraphOptions())
	if d.Stats.Partitioner != "graph" || d.Stats.NumParts == 0 {
		t.Fatalf("graph partition failed on melt: %+v", d.Stats)
	}
}

func TestBondGraphClassification(t *testing.T) {
	// A synthetic peptide: the builder places the C=O carbonyl at 1.23 Å
	// (multiple, never severed) and the peptide C–N at 1.30 Å (partial:
	// severable at elevated cost — exactly the bonds QF severs).
	sys, err := structure.BuildProtein("GAG")
	if err != nil {
		t.Fatal(err)
	}
	g := BuildBondGraph(elsOf(sys), sys.Positions())
	var sawCarbonyl, sawPeptide bool
	els := elsOf(sys)
	for _, e := range g.Edges {
		a, b := els[e.I], els[e.J]
		if a > b {
			a, b = b, a
		}
		switch {
		case a == constants.C && b == constants.O && e.Class == BondMultiple:
			sawCarbonyl = true
			if e.Severable {
				t.Fatalf("carbonyl %d–%d marked severable", e.I, e.J)
			}
		case a == constants.C && b == constants.N && e.Class == BondPartial:
			sawPeptide = true
			if !e.Severable {
				t.Fatalf("peptide bond %d–%d not severable", e.I, e.J)
			}
			if e.Cost <= 1.5 {
				t.Fatalf("peptide bond cost %v — conjugation penalty missing", e.Cost)
			}
		}
		if (a == constants.H || b == constants.H) && e.Severable {
			t.Fatalf("bond to hydrogen %d–%d marked severable", e.I, e.J)
		}
	}
	if !sawCarbonyl || !sawPeptide {
		t.Fatalf("classification missed carbonyl (%v) or peptide (%v) bonds", sawCarbonyl, sawPeptide)
	}
}

func TestBondGraphRingDetection(t *testing.T) {
	// A planar C₆ hexagon at aromatic-ish single-bond spacing (1.50 Å, above
	// the multiple threshold) with one exocyclic substituent: the six ring
	// bonds must be marked Ring/unseverable, the exocyclic bond severable.
	els := make([]constants.Element, 7)
	pos := make([]geom.Vec3, 7)
	r := 1.50
	for i := 0; i < 6; i++ {
		th := 2 * math.Pi * float64(i) / 6
		els[i] = constants.C
		// Hexagon side = circumradius for a regular hexagon.
		pos[i] = geom.V(r*math.Cos(th), r*math.Sin(th), 0)
	}
	els[6] = constants.C
	pos[6] = geom.V(r+1.53, 0, 0)
	g := BuildBondGraph(els, pos)
	ring, exo := 0, 0
	for _, e := range g.Edges {
		if e.I == 0 && e.J == 6 {
			exo++
			if e.Ring || !e.Severable {
				t.Fatalf("exocyclic bond misclassified: ring=%v severable=%v", e.Ring, e.Severable)
			}
			continue
		}
		ring++
		if !e.Ring || e.Severable {
			t.Fatalf("ring bond %d–%d misclassified: ring=%v severable=%v", e.I, e.J, e.Ring, e.Severable)
		}
	}
	if ring != 6 || exo != 1 {
		t.Fatalf("found %d ring + %d exocyclic bonds, want 6 + 1", ring, exo)
	}
	// The whole molecule is one rigid group: partitioning must keep it as a
	// single 7-atom part even with a tiny target.
	sys := &structure.System{}
	for i := range els {
		sys.Atoms = append(sys.Atoms, structure.Atom{El: els[i], Pos: pos[i]})
	}
	sys.Molecules = []structure.Residue{{Name: "RNG", First: 0, Count: 7, N: -1, CA: -1, C: -1, O: -1}}
	opt := DefaultGraphOptions()
	opt.TargetAtoms = 4
	d := graphPartition(t, sys, opt)
	if d.Stats.NumParts != 1 || d.Stats.NumCutBonds != 0 {
		t.Fatalf("ring split: %d parts, %d cuts", d.Stats.NumParts, d.Stats.NumCutBonds)
	}
}

func TestGraphFragSizeKnob(t *testing.T) {
	// Larger targets → fewer, bigger parts; the accuracy/cost knob must
	// actually move.
	seq := structure.RandomSequence(30, 21)
	sys, err := structure.BuildProteinFolded(seq, 10)
	if err != nil {
		t.Fatal(err)
	}
	small := GraphOptions{TargetAtoms: 12, Lambda: 4, BondedPairs: true}
	large := GraphOptions{TargetAtoms: 60, Lambda: 4, BondedPairs: true}
	ds := graphPartition(t, sys, small)
	dl := graphPartition(t, sys, large)
	if ds.Stats.NumParts <= dl.Stats.NumParts {
		t.Fatalf("target 12 → %d parts, target 60 → %d parts: knob has no effect",
			ds.Stats.NumParts, dl.Stats.NumParts)
	}
}

func elsOf(sys *structure.System) []constants.Element {
	els := make([]constants.Element, len(sys.Atoms))
	for i, a := range sys.Atoms {
		els[i] = a.El
	}
	return els
}
