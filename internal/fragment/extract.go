package fragment

import (
	"sort"

	"qframan/internal/constants"
	"qframan/internal/geom"
	"qframan/internal/structure"
)

// Hydrogen cap bond lengths in Å, by the element of the retained atom.
func capBondLength(el constants.Element) float64 {
	switch el {
	case constants.C:
		return 1.09
	case constants.N:
		return 1.01
	case constants.O:
		return 0.96
	case constants.S:
		return 1.34
	}
	return 1.0
}

// appendCap terminates a severed bond with a hydrogen cap: keep is the
// retained atom, removed the lost bond partner. The cap sits along the
// original bond direction at the element-specific cap length, and its
// GlobalIdx is −1 so assembly drops its (cancelling) contributions. Both the
// QF extractor (peptide C–N cuts) and the graph partitioner (any severed
// single bond) emit caps through this helper.
func (f *Fragment) appendCap(keep, removed structure.Atom) {
	dir := removed.Pos.Sub(keep.Pos).Normalize()
	f.Els = append(f.Els, constants.H)
	f.Pos = append(f.Pos, keep.Pos.Add(dir.Scale(capBondLength(keep.El))))
	f.GlobalIdx = append(f.GlobalIdx, -1)
}

// extractor pulls fragments out of a parent system.
type extractor struct {
	sys *structure.System
}

func newExtractor(sys *structure.System) *extractor {
	return &extractor{sys: sys}
}

// extract builds a fragment from whole protein residues (indices into
// sys.Residues) and whole waters (indices into sys.Waters). Peptide bonds
// from included residues to excluded chain neighbors are cut and terminated
// with hydrogen caps placed along the original bond direction.
func (ex *extractor) extract(kind Kind, coeff float64, residues, waters []int) Fragment {
	sys := ex.sys
	f := Fragment{Kind: kind, Coeff: coeff}

	resIncluded := make(map[int]bool, len(residues))
	for _, r := range residues {
		resIncluded[r] = true
	}
	sorted := append([]int(nil), residues...)
	sort.Ints(sorted)

	addAtom := func(global int) {
		a := sys.Atoms[global]
		f.Els = append(f.Els, a.El)
		f.Pos = append(f.Pos, a.Pos)
		f.GlobalIdx = append(f.GlobalIdx, global)
	}
	for _, r := range sorted {
		res := sys.Residues[r]
		for i := res.First; i < res.First+res.Count; i++ {
			addAtom(i)
		}
	}
	for _, w := range waters {
		wr := sys.Waters[w]
		for i := wr.First; i < wr.First+wr.Count; i++ {
			addAtom(i)
		}
	}
	f.NumReal = len(f.Els)

	// Hydrogen caps for cut peptide bonds. A residue r is cut on the left
	// when r−1 exists in the same chain but not in the fragment (cap the
	// N), and on the right when r+1 exists in the same chain but is
	// excluded (cap the C).
	addCap := func(keepIdx, removedIdx int) {
		f.appendCap(sys.Atoms[keepIdx], sys.Atoms[removedIdx])
	}
	sameChain := func(a, b int) bool {
		return sys.Residues[a].Chain == sys.Residues[b].Chain
	}
	for _, r := range sorted {
		if r > 0 && !resIncluded[r-1] && sameChain(r, r-1) {
			addCap(sys.Residues[r].N, sys.Residues[r-1].C)
		}
		if r < len(sys.Residues)-1 && !resIncluded[r+1] && sameChain(r, r+1) {
			addCap(sys.Residues[r].C, sys.Residues[r+1].N)
		}
	}
	return f
}

// pairLists holds the detected two-body partners.
type pairLists struct {
	rr [][2]int // residue index pairs, i<j, |i−j| ≥ MinSeqSeparation
	rw [][2]int // (residue index, water index)
	ww [][2]int // water index pairs, i<j
}

// findPairs detects all two-body partners within the λ thresholds using a
// single cell-list pass over all atoms at the largest threshold, classifying
// each close atom pair by the owners of its endpoints.
//
// Distance criteria follow Eq. 1 of the paper: residue–residue pairs use the
// minimal distance between any two atoms ("spatially in close contact"),
// while water positions are represented by their oxygen (|r_w| in Eq. 1 is a
// per-molecule coordinate), so residue–water and water–water pairs measure
// to/between oxygens.
func findPairs(sys *structure.System, opt Options) pairLists {
	maxLambda := opt.LambdaRR
	if opt.LambdaRW > maxLambda {
		maxLambda = opt.LambdaRW
	}
	if opt.LambdaWW > maxLambda {
		maxLambda = opt.LambdaWW
	}
	var out pairLists
	if maxLambda <= 0 || sys.NumAtoms() == 0 {
		return out
	}

	// owner[i] = (isWater, index, isOxygen) for every atom.
	type owner struct {
		water  bool
		idx    int
		oxygen bool
	}
	owners := make([]owner, sys.NumAtoms())
	for ri, r := range sys.Residues {
		for i := r.First; i < r.First+r.Count; i++ {
			owners[i] = owner{false, ri, false}
		}
	}
	for wi, w := range sys.Waters {
		for i := w.First; i < w.First+w.Count; i++ {
			owners[i] = owner{true, wi, i == w.First}
		}
	}

	seenRR := map[[2]int]bool{}
	seenRW := map[[2]int]bool{}
	seenWW := map[[2]int]bool{}
	lrr2 := opt.LambdaRR * opt.LambdaRR
	lrw2 := opt.LambdaRW * opt.LambdaRW
	lww2 := opt.LambdaWW * opt.LambdaWW

	cl := geom.NewCellList(sys.Positions(), maxLambda)
	cl.ForEachPair(func(i, j int, d2 float64) {
		oi, oj := owners[i], owners[j]
		switch {
		case !oi.water && !oj.water:
			a, b := oi.idx, oj.idx
			if a > b {
				a, b = b, a
			}
			// Cross-chain residue pairs are always sequentially
			// non-neighboring; within a chain the caps already cover
			// close-in-sequence neighbors.
			if sys.Residues[a].Chain == sys.Residues[b].Chain && b-a < opt.MinSeqSeparation {
				return
			}
			if d2 > lrr2 {
				return
			}
			key := [2]int{a, b}
			if !seenRR[key] {
				seenRR[key] = true
				out.rr = append(out.rr, key)
			}
		case oi.water != oj.water:
			var r, w int
			if oi.water {
				if !oi.oxygen {
					return // water measured at its oxygen
				}
				r, w = oj.idx, oi.idx
			} else {
				if !oj.oxygen {
					return
				}
				r, w = oi.idx, oj.idx
			}
			if d2 > lrw2 {
				return
			}
			key := [2]int{r, w}
			if !seenRW[key] {
				seenRW[key] = true
				out.rw = append(out.rw, key)
			}
		default:
			if !oi.oxygen || !oj.oxygen {
				return // O–O distance defines water–water pairs
			}
			a, b := oi.idx, oj.idx
			if a == b {
				return
			}
			if a > b {
				a, b = b, a
			}
			if d2 > lww2 {
				return
			}
			key := [2]int{a, b}
			if !seenWW[key] {
				seenWW[key] = true
				out.ww = append(out.ww, key)
			}
		}
	})

	sortPairs(out.rr)
	sortPairs(out.rw)
	sortPairs(out.ww)
	return out
}

func sortPairs(p [][2]int) {
	sort.Slice(p, func(i, j int) bool {
		if p[i][0] != p[j][0] {
			return p[i][0] < p[j][0]
		}
		return p[i][1] < p[j][1]
	})
}
