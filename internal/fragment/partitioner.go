package fragment

import (
	"fmt"

	"qframan/internal/structure"
)

// Partitioner turns a molecular system into an Eq. 1 fragment combination.
// Implementations must be deterministic: the same system and options must
// produce byte-identical Decompositions on every run, at every GOMAXPROCS
// (see FRAGMENTATION.md for the contract and DESIGN.md for the rationale).
//
// Two implementations exist:
//
//   - QFPartitioner — the paper's chemistry-rule engine: peptide-bond cuts,
//     conjugate caps, one-body waters, λ-sphere two-body corrections.
//     Proteins and water only.
//   - GraphPartitioner — the general engine: bond graph inferred from
//     geometry, quality-aware balanced min-cut over severable single bonds,
//     generic hydrogen capping. Any covalent system, with fragment size as a
//     tunable accuracy/cost knob.
type Partitioner interface {
	// Name returns the short CLI-facing identifier ("qf", "graph").
	Name() string
	// Partition decomposes the system. The returned Decomposition must
	// satisfy the exactly-once coverage invariant Σ_f coeff(f)·[a ∈ f] = 1
	// for every real atom a.
	Partition(sys *structure.System) (*Decomposition, error)
}

// QFPartitioner adapts the paper's quantum-fragmentation algorithm
// (Decompose) to the Partitioner interface.
type QFPartitioner struct {
	Opt Options
}

// Name implements Partitioner.
func (QFPartitioner) Name() string { return "qf" }

// Partition implements Partitioner by running the QF decomposition.
func (p QFPartitioner) Partition(sys *structure.System) (*Decomposition, error) {
	return Decompose(sys, p.Opt)
}

// NewPartitioner resolves a CLI partitioner name. qfOpt configures the "qf"
// engine and gOpt the "graph" engine.
func NewPartitioner(name string, qfOpt Options, gOpt GraphOptions) (Partitioner, error) {
	switch name {
	case "", "qf":
		return QFPartitioner{Opt: qfOpt}, nil
	case "graph":
		return GraphPartitioner{Opt: gOpt}, nil
	}
	return nil, fmt.Errorf("fragment: unknown partitioner %q (want qf or graph)", name)
}
