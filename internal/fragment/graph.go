package fragment

import (
	"fmt"
	"sort"

	"qframan/internal/constants"
	"qframan/internal/geom"
	"qframan/internal/structure"
)

// GraphOptions configures the graph partitioner. The zero value is
// normalized to the documented defaults by Partition.
type GraphOptions struct {
	// TargetAtoms is the soft fragment-size target: the agglomeration
	// stops growing a part once merging would push it past this many
	// atoms. Larger targets mean fewer, bigger, more accurate, more
	// expensive fragments (≤ 0 → 24).
	TargetAtoms int
	// MaxAtoms is the hard size cap used by the tiny-part cleanup pass
	// (≤ 0 → 2·TargetAtoms). A part can exceed it in exactly two cases:
	// a single unseverable group (a ring system with its substituents)
	// larger than the cap, and the electron-parity repair pass pairing two
	// odd-electron parts (bounded by 2·MaxAtoms).
	MaxAtoms int
	// MinAtoms is the tiny-part threshold: parts smaller than this are
	// merged into a bonded neighbor when that stays within MaxAtoms
	// (≤ 0 → TargetAtoms/4, at least 4).
	MinAtoms int
	// Lambda is the spatial two-body threshold in Å: two parts whose
	// minimal atom–atom distance is within Lambda get a dimer − monomers
	// correction, the graph generalization of the QF generalized concap.
	// 0 disables spatial pairs; < 0 → the paper's 4 Å.
	Lambda float64
	// BondedPairs emits a dimer − monomers correction across every
	// severed bond — the graph generalization of the conjugate-cap
	// subtraction. Strongly recommended (the cross-validation tolerance
	// in FRAGMENTATION.md is measured with it on).
	BondedPairs bool
}

// DefaultGraphOptions returns the documented defaults: 24-atom target,
// 48-atom cap, λ = 4 Å, bonded dimer corrections on.
func DefaultGraphOptions() GraphOptions {
	return GraphOptions{TargetAtoms: 24, Lambda: 4, BondedPairs: true}
}

// normalize fills derived defaults.
func (o GraphOptions) normalize() GraphOptions {
	if o.TargetAtoms <= 0 {
		o.TargetAtoms = 24
	}
	if o.MaxAtoms <= 0 {
		o.MaxAtoms = 2 * o.TargetAtoms
	}
	if o.MinAtoms <= 0 {
		o.MinAtoms = o.TargetAtoms / 4
		if o.MinAtoms < 4 {
			o.MinAtoms = 4
		}
	}
	if o.Lambda < 0 {
		o.Lambda = 4
	}
	return o
}

// GraphPartitioner is the general fragmentation engine: it infers a bond
// graph from geometry and covalent radii, contracts every unseverable bond
// (multiple bonds, ring bonds, bonds to hydrogen) into rigid groups,
// partitions the resulting severable-bond forest with a deterministic
// quality-aware balanced min-cut, caps every severed bond with hydrogen, and
// emits two-body corrections. See FRAGMENTATION.md for the full model and
// the determinism contract.
type GraphPartitioner struct {
	Opt GraphOptions
}

// Name implements Partitioner.
func (GraphPartitioner) Name() string { return "graph" }

// unionFind is a deterministic union–find over atom indices with union by
// smaller root index, so every set's representative is its minimum member —
// stable tie-breaking needs no extra bookkeeping.
type unionFind struct {
	parent []int32
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int32, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

func (u *unionFind) find(a int32) int32 {
	for u.parent[a] != a {
		u.parent[a] = u.parent[u.parent[a]] // path halving
		a = u.parent[a]
	}
	return a
}

// union merges the sets of a and b; the smaller root index wins.
func (u *unionFind) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
}

// Partition implements Partitioner.
func (p GraphPartitioner) Partition(sys *structure.System) (*Decomposition, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	n := sys.NumAtoms()
	if n == 0 {
		return nil, fmt.Errorf("fragment: graph partitioner: empty system")
	}
	opt := p.Opt.normalize()

	els := make([]constants.Element, n)
	pos := make([]geom.Vec3, n)
	for i, a := range sys.Atoms {
		els[i] = a.El
		pos[i] = a.Pos
	}
	g := BuildBondGraph(els, pos)

	// 1. Contract every unseverable bond: the resulting sets ("groups")
	// are the rigid units the min-cut may arrange but never split.
	uf := newUnionFind(n)
	for _, e := range g.Edges {
		if !e.Severable {
			uf.union(int32(e.I), int32(e.J))
		}
	}

	// Severable edges connect distinct groups, and because every severable
	// edge is a bridge of its molecule the group graph is a forest — two
	// groups can never be joined by two different severable bonds.
	size := make([]int32, n) // per-root atom count
	for i := 0; i < n; i++ {
		size[uf.find(int32(i))]++
	}
	sev := make([]int32, 0, len(g.Edges))
	for e := range g.Edges {
		if g.Edges[e].Severable {
			sev = append(sev, int32(e))
		}
	}
	// Quality order: most expensive bonds first, so agglomeration keeps
	// them inside parts and the eventual cut set is made of the cheapest
	// bonds. Ties break on ascending atom indices — the edge list itself
	// is (I, J)-sorted, so the order is a pure function of the geometry.
	sort.SliceStable(sev, func(a, b int) bool {
		ea, eb := &g.Edges[sev[a]], &g.Edges[sev[b]]
		if ea.Cost != eb.Cost {
			return ea.Cost > eb.Cost
		}
		if ea.I != eb.I {
			return ea.I < eb.I
		}
		return ea.J < eb.J
	})

	// 2. Balanced agglomeration (Kruskal with a size cap): grow parts
	// across the priciest severable bonds while the merge stays within
	// TargetAtoms.
	for _, ei := range sev {
		e := &g.Edges[ei]
		ra, rb := uf.find(int32(e.I)), uf.find(int32(e.J))
		if ra == rb {
			continue
		}
		if size[ra]+size[rb] <= int32(opt.TargetAtoms) {
			uf.union(ra, rb)
			r := uf.find(ra)
			size[r] = size[ra] + size[rb]
		}
	}
	// 3. Tiny-part cleanup: a leftover part below MinAtoms (a terminal
	// hydroxyl, a lone methyl) merges into a bonded neighbor as long as
	// the result respects the MaxAtoms hard cap. Repeat to fixpoint.
	for changed := true; changed; {
		changed = false
		for _, ei := range sev {
			e := &g.Edges[ei]
			ra, rb := uf.find(int32(e.I)), uf.find(int32(e.J))
			if ra == rb {
				continue
			}
			small := size[ra]
			if size[rb] < small {
				small = size[rb]
			}
			if small < int32(opt.MinAtoms) && size[ra]+size[rb] <= int32(opt.MaxAtoms) {
				total := size[ra] + size[rb]
				uf.union(ra, rb)
				size[uf.find(ra)] = total
				changed = true
			}
		}
	}

	// 3b. Electron-parity repair: the SCF engine is closed-shell, so every
	// part must carry an even valence-electron count (atoms plus one
	// electron per boundary cap). Odd parts appear when cuts land next to
	// atoms with non-standard valences, and they always come in pairs
	// within a molecule (the total is even), so merging them across cut
	// bonds — preferring direct odd–odd merges — always converges to
	// all-even parts. The pass is deterministic: edges are scanned in their
	// (I, J) order and the lowest odd root moves first.
	valPar := make([]uint8, n)
	for i := range els {
		valPar[i] = uint8(els[i].NumValence() & 1)
	}
	par := make([]uint8, n) // per-root electron parity
	for {
		for i := range par {
			par[i] = 0
		}
		for i := 0; i < n; i++ {
			par[uf.find(int32(i))] ^= valPar[i]
		}
		for _, ei := range sev {
			e := &g.Edges[ei]
			ra, rb := uf.find(int32(e.I)), uf.find(int32(e.J))
			if ra != rb {
				par[ra] ^= 1
				par[rb] ^= 1
			}
		}
		var odd []int32 // odd roots, ascending
		for i := 0; i < n; i++ {
			if int(uf.find(int32(i))) == i && par[i] == 1 {
				odd = append(odd, int32(i))
			}
		}
		if len(odd) == 0 {
			break
		}
		merged := false
		for _, ei := range sev { // direct odd–odd merges first
			e := &g.Edges[ei]
			ra, rb := uf.find(int32(e.I)), uf.find(int32(e.J))
			if ra != rb && par[ra] == 1 && par[rb] == 1 {
				total := size[ra] + size[rb]
				uf.union(ra, rb)
				size[uf.find(ra)] = total
				par[uf.find(ra)] = 0
				merged = true
			}
		}
		if merged {
			continue
		}
		// No adjacent odd pair left: pair the remaining odd parts in
		// ascending root order into single (possibly disconnected)
		// fragments — the same thing the QF engine does implicitly when a
		// synthetic fold geometry breaks the perceived chain. A lone odd
		// part means the whole system is open-shell, which nothing
		// downstream supports.
		if len(odd) == 1 {
			return nil, fmt.Errorf("fragment: graph partitioner: the system has an odd total valence-electron count (open shells unsupported)")
		}
		for i := 0; i+1 < len(odd); i += 2 {
			total := size[uf.find(odd[i])] + size[uf.find(odd[i+1])]
			uf.union(odd[i], odd[i+1])
			size[uf.find(odd[i])] = total
		}
	}

	// 4. Materialize parts ordered by their minimum atom index (which is
	// exactly the union–find root).
	partOf := make([]int32, n)
	var roots []int32
	for i := 0; i < n; i++ {
		r := uf.find(int32(i))
		if int(r) == i {
			roots = append(roots, r)
		}
	}
	for i := 0; i < n; i++ {
		partOf[i] = uf.find(int32(i))
	}
	partIdx := make(map[int32]int32, len(roots))
	for i, r := range roots {
		partIdx[r] = int32(i)
	}
	parts := make([][]int, len(roots))
	for i := 0; i < n; i++ {
		pi := partIdx[partOf[i]]
		parts[pi] = append(parts[pi], i)
		partOf[i] = pi
	}

	// 5. The cut set: severable bonds whose endpoints landed in different
	// parts. Edges iterate in (I, J) order, so cuts are deterministic.
	var cuts []int32
	for _, ei := range sev {
		e := &g.Edges[ei]
		if partOf[e.I] != partOf[e.J] {
			cuts = append(cuts, ei)
		}
	}
	sort.Slice(cuts, func(a, b int) bool {
		ea, eb := &g.Edges[cuts[a]], &g.Edges[cuts[b]]
		if ea.I != eb.I {
			return ea.I < eb.I
		}
		return ea.J < eb.J
	})

	d := &Decomposition{}
	d.Stats.Partitioner = "graph"
	d.Stats.NumParts = len(parts)
	d.Stats.NumCutBonds = len(cuts)
	ex := newGraphExtractor(sys, g)

	// 6. One +1 fragment per part, every severed boundary bond capped.
	for _, atoms := range parts {
		d.add(ex.extract(KindPart, +1, atoms))
	}

	// 7. Bonded dimer corrections: for each severed bond, add the joined
	// dimer and subtract both monomers. Atom-wise the monomers cancel the
	// dimer, so the exactly-once coverage invariant is preserved while the
	// interaction across the cut is restored at two-body level.
	if opt.BondedPairs {
		for _, ei := range cuts {
			e := &g.Edges[ei]
			pa, pb := partOf[e.I], partOf[e.J]
			if pa > pb {
				pa, pb = pb, pa
			}
			d.add(ex.extract(KindPairBond, +1, mergedAtoms(parts[pa], parts[pb])))
			d.add(ex.extract(KindMonoBond, -1, parts[pa]))
			d.add(ex.extract(KindMonoBond, -1, parts[pb]))
			d.Stats.NumBondedPairs++
		}
	}

	// 8. Spatial dimer corrections: part pairs within λ that are not
	// already covalently adjacent.
	if opt.Lambda > 0 {
		adjacent := make(map[[2]int32]bool, len(cuts))
		for _, ei := range cuts {
			e := &g.Edges[ei]
			pa, pb := partOf[e.I], partOf[e.J]
			if pa > pb {
				pa, pb = pb, pa
			}
			adjacent[[2]int32{pa, pb}] = true
		}
		seen := make(map[[2]int32]bool)
		var pairs [][2]int32
		cl := geom.NewCellList(pos, opt.Lambda)
		cl.ForEachPair(func(i, j int, d2 float64) {
			pa, pb := partOf[i], partOf[j]
			if pa == pb {
				return
			}
			if pa > pb {
				pa, pb = pb, pa
			}
			key := [2]int32{pa, pb}
			if adjacent[key] || seen[key] {
				return
			}
			seen[key] = true
			pairs = append(pairs, key)
		})
		sort.Slice(pairs, func(a, b int) bool {
			if pairs[a][0] != pairs[b][0] {
				return pairs[a][0] < pairs[b][0]
			}
			return pairs[a][1] < pairs[b][1]
		})
		for _, pr := range pairs {
			d.add(ex.extract(KindPairSpace, +1, mergedAtoms(parts[pr[0]], parts[pr[1]])))
			d.add(ex.extract(KindMonoSpace, -1, parts[pr[0]]))
			d.add(ex.extract(KindMonoSpace, -1, parts[pr[1]]))
			d.Stats.NumSpatialPairs++
		}
	}

	d.finishStats()
	return d, nil
}

// mergedAtoms merges two ascending atom-index lists into one ascending list.
func mergedAtoms(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// graphExtractor builds fragments from explicit atom sets, capping every
// bond that crosses the set boundary — the generalization of the QF
// extractor's peptide-specific capping to arbitrary severed bonds.
type graphExtractor struct {
	sys   *structure.System
	g     *BondGraph
	inSet []bool // scratch membership mask, cleared after each extract
}

func newGraphExtractor(sys *structure.System, g *BondGraph) *graphExtractor {
	return &graphExtractor{sys: sys, g: g, inSet: make([]bool, sys.NumAtoms())}
}

// extract builds a fragment from the ascending atom-index list. Cap
// hydrogens come last, ordered by (retained atom, lost atom) index.
func (ex *graphExtractor) extract(kind Kind, coeff float64, atoms []int) Fragment {
	f := Fragment{Kind: kind, Coeff: coeff}
	f.Els = make([]constants.Element, 0, len(atoms)+2)
	f.Pos = make([]geom.Vec3, 0, len(atoms)+2)
	f.GlobalIdx = make([]int, 0, len(atoms)+2)
	for _, a := range atoms {
		ex.inSet[a] = true
		at := ex.sys.Atoms[a]
		f.Els = append(f.Els, at.El)
		f.Pos = append(f.Pos, at.Pos)
		f.GlobalIdx = append(f.GlobalIdx, a)
	}
	f.NumReal = len(f.Els)
	for _, a := range atoms {
		for _, ei := range ex.g.Adjacent(a) {
			e := &ex.g.Edges[ei]
			other := e.I
			if other == a {
				other = e.J
			}
			if !ex.inSet[other] {
				f.appendCap(ex.sys.Atoms[a], ex.sys.Atoms[other])
			}
		}
	}
	for _, a := range atoms {
		ex.inSet[a] = false
	}
	return f
}
