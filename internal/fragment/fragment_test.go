package fragment

import (
	"math"
	"testing"
	"testing/quick"

	"qframan/internal/constants"
	"qframan/internal/geom"
	"qframan/internal/structure"
)

func mustProtein(t *testing.T, seq string) *structure.System {
	t.Helper()
	sys, err := structure.BuildProtein(seq)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestChainPieces(t *testing.T) {
	cases := []struct {
		n    int
		want []piece
	}{
		{0, nil},
		{1, []piece{{0, 0}}},
		{2, []piece{{0, 1}}},
		{3, []piece{{0, 2}}},
		{4, []piece{{0, 1}, {2, 3}}},
		{5, []piece{{0, 1}, {2, 2}, {3, 4}}},
		{7, []piece{{0, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 6}}},
	}
	for _, c := range cases {
		got := chainPieces(c.n)
		if len(got) != len(c.want) {
			t.Fatalf("chainPieces(%d) = %v, want %v", c.n, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("chainPieces(%d) = %v, want %v", c.n, got, c.want)
			}
		}
		// The paper's count: n residues → n−2 pieces (n ≥ 4).
		if c.n >= 4 && len(got) != c.n-2 {
			t.Fatalf("chainPieces(%d): %d pieces, want n-2", c.n, len(got))
		}
	}
}

func TestDecomposeCounts(t *testing.T) {
	// 7-residue chain: n−2 = 5 capped fragments, n−3 = 4 concaps.
	sys := mustProtein(t, "GAGAGAG")
	d, err := Decompose(sys, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d.Stats.NumResidueFragments != 5 {
		t.Errorf("residue fragments = %d, want 5", d.Stats.NumResidueFragments)
	}
	if d.Stats.NumConcaps != 4 {
		t.Errorf("concaps = %d, want 4", d.Stats.NumConcaps)
	}
	if d.Stats.NumWaterFragments != 0 || d.Stats.NumRWPairs != 0 || d.Stats.NumWWPairs != 0 {
		t.Error("water terms on a dry protein")
	}
	// Straight extended chain: no generalized concaps expected.
	if d.Stats.NumRRPairs != 0 {
		t.Errorf("straight chain produced %d rr pairs", d.Stats.NumRRPairs)
	}
}

func TestDecomposeSmallChains(t *testing.T) {
	for _, seq := range []string{"G", "GA", "GAV"} {
		sys := mustProtein(t, seq)
		d, err := Decompose(sys, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", seq, err)
		}
		if d.Stats.NumResidueFragments != 1 || d.Stats.NumConcaps != 0 {
			t.Fatalf("%s: fragments=%d concaps=%d, want 1/0",
				seq, d.Stats.NumResidueFragments, d.Stats.NumConcaps)
		}
		// The single fragment must contain every atom and no caps.
		f := d.Fragments[0]
		if f.NumAtoms() != sys.NumAtoms() || f.NumReal != sys.NumAtoms() {
			t.Fatalf("%s: fragment has %d atoms (%d real), system has %d",
				seq, f.NumAtoms(), f.NumReal, sys.NumAtoms())
		}
	}
}

// coverage checks the Eq. 1 invariant: every real atom is covered with net
// coefficient exactly 1.
func coverage(d *Decomposition, numAtoms int) []float64 {
	cov := make([]float64, numAtoms)
	for i := range d.Fragments {
		f := &d.Fragments[i]
		for _, g := range f.GlobalIdx {
			if g >= 0 {
				cov[g] += f.Coeff
			}
		}
	}
	return cov
}

func checkCoverage(t *testing.T, sys *structure.System, d *Decomposition) {
	t.Helper()
	for i, c := range coverage(d, sys.NumAtoms()) {
		if math.Abs(c-1) > 1e-12 {
			t.Fatalf("atom %d covered with net coefficient %v, want 1", i, c)
		}
	}
}

func TestCoverageInvariantDryProtein(t *testing.T) {
	sys := mustProtein(t, structure.RandomSequence(25, 3))
	d, err := Decompose(sys, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkCoverage(t, sys, d)
}

func TestCoverageInvariantFoldedProtein(t *testing.T) {
	// Folded protein has generalized concaps; invariant must still hold.
	seq := structure.RandomSequence(30, 11)
	sys, err := structure.BuildProteinFolded(seq, 8)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decompose(sys, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d.Stats.NumRRPairs == 0 {
		t.Fatal("folded protein produced no generalized concaps; test is vacuous")
	}
	checkCoverage(t, sys, d)
}

func TestCoverageInvariantSolvated(t *testing.T) {
	protein := mustProtein(t, "GAVK")
	sys := structure.SolvateInWater(protein, 5.0, 2.6)
	d, err := Decompose(sys, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d.Stats.NumWWPairs == 0 {
		t.Fatal("no water-water pairs in a water box; test is vacuous")
	}
	if d.Stats.NumRWPairs == 0 {
		t.Fatal("no residue-water pairs for a solvated protein; test is vacuous")
	}
	checkCoverage(t, sys, d)
}

// Property: coverage invariant holds for random folded proteins of random
// lengths.
func TestCoverageProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 4 + int(seed%23+23)%23 // 4..26
		seq := structure.RandomSequence(n, seed)
		sys, err := structure.BuildProteinFolded(seq, 6)
		if err != nil {
			return false
		}
		d, err := Decompose(sys, DefaultOptions())
		if err != nil {
			return false
		}
		for _, c := range coverage(d, sys.NumAtoms()) {
			if math.Abs(c-1) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestCapHydrogens(t *testing.T) {
	sys := mustProtein(t, "GAGAG")
	d, err := Decompose(sys, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Fragments {
		f := &d.Fragments[i]
		nCaps := f.NumAtoms() - f.NumReal
		// All caps are hydrogens with GlobalIdx −1, placed after real atoms.
		for k := f.NumReal; k < f.NumAtoms(); k++ {
			if f.Els[k] != constants.H {
				t.Fatalf("fragment %d cap %d is %v", i, k, f.Els[k])
			}
			if f.GlobalIdx[k] != -1 {
				t.Fatalf("fragment %d cap %d has global index %d", i, k, f.GlobalIdx[k])
			}
		}
		// Expected number of caps: one per cut peptide bond.
		switch f.Kind {
		case KindResidue:
			// Interior residue fragments cut on both sides; terminal
			// fragments on one side.
			if nCaps == 0 {
				t.Fatalf("residue fragment %d has no caps", i)
			}
		case KindConcap:
			if nCaps != 2 {
				t.Fatalf("concap %d has %d caps, want 2", i, nCaps)
			}
		}
	}
}

func TestCapHydrogenGeometry(t *testing.T) {
	sys := mustProtein(t, "GAGAG")
	d, err := Decompose(sys, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Every cap H must sit on the line from its host heavy atom toward the
	// removed atom, at the cap bond length; verify by checking it is within
	// a chemically sane distance of exactly one heavy atom of the fragment.
	for i := range d.Fragments {
		f := &d.Fragments[i]
		for k := f.NumReal; k < f.NumAtoms(); k++ {
			close := 0
			for a := 0; a < f.NumReal; a++ {
				d := f.Pos[k].Dist(f.Pos[a])
				if d < 0.9 {
					t.Fatalf("fragment %d: cap %d overlaps atom %d (d=%.3f)", i, k, a, d)
				}
				if d <= 1.15 {
					close++
				}
			}
			if close != 1 {
				t.Fatalf("fragment %d: cap %d bonded to %d atoms, want 1", i, k, close)
			}
		}
	}
}

func TestGeneralizedConcapPairsMatchBruteForce(t *testing.T) {
	seq := structure.RandomSequence(24, 5)
	sys, err := structure.BuildProteinFolded(seq, 6)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	got := findPairs(sys, opt)

	// Brute force reference.
	var want [][2]int
	for i := 0; i < len(sys.Residues); i++ {
		for j := i + opt.MinSeqSeparation; j < len(sys.Residues); j++ {
			ri, rj := sys.Residues[i], sys.Residues[j]
			found := false
			for a := ri.First; a < ri.First+ri.Count && !found; a++ {
				for b := rj.First; b < rj.First+rj.Count; b++ {
					if sys.Atoms[a].Pos.Dist(sys.Atoms[b].Pos) <= opt.LambdaRR {
						found = true
						break
					}
				}
			}
			if found {
				want = append(want, [2]int{i, j})
			}
		}
	}
	if len(got.rr) != len(want) {
		t.Fatalf("rr pairs: got %d, want %d", len(got.rr), len(want))
	}
	for i := range want {
		if got.rr[i] != want[i] {
			t.Fatalf("rr pair %d: got %v, want %v", i, got.rr[i], want[i])
		}
	}
}

func TestWaterPairCounts(t *testing.T) {
	sys := structure.BuildWaterBox(3, 3, 3, geom.Vec3{})
	d, err := Decompose(sys, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d.Stats.NumWaterFragments != 27 {
		t.Fatalf("water fragments = %d", d.Stats.NumWaterFragments)
	}
	// At liquid density with λ=4 Å each interior molecule has many
	// neighbors; the exact count is deterministic. Sanity bounds: at least
	// the 54 nearest-neighbor lattice pairs, at most all pairs.
	if d.Stats.NumWWPairs < 54 || d.Stats.NumWWPairs > 27*26/2 {
		t.Fatalf("ww pairs = %d out of sane range", d.Stats.NumWWPairs)
	}
	// Each ww pair adds 3 fragments (dimer + 2 monomers).
	want := 27 + 3*d.Stats.NumWWPairs
	if d.Stats.TotalFragments != want {
		t.Fatalf("total fragments = %d, want %d", d.Stats.TotalFragments, want)
	}
}

func TestWaterDimerFragmentsAllSixAtoms(t *testing.T) {
	// The paper's water-dimer benchmark: every dimer fragment has 6 atoms.
	sys := structure.BuildWaterDimerSystem(10)
	d, err := Decompose(sys, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d.Stats.NumWWPairs != 10 {
		t.Fatalf("ww pairs = %d, want 10 (one per dimer)", d.Stats.NumWWPairs)
	}
	for i := range d.Fragments {
		f := &d.Fragments[i]
		if f.Kind == KindPairWW && f.NumAtoms() != 6 {
			t.Fatalf("ww dimer fragment with %d atoms", f.NumAtoms())
		}
	}
}

func TestStreamingWaterStatsMatchDecompose(t *testing.T) {
	const n = 4
	atoms, frags, pairs := WaterBoxStats(n, n, n, 4.0)
	if atoms != 3*n*n*n || frags != n*n*n {
		t.Fatalf("streaming counts: atoms=%d frags=%d", atoms, frags)
	}
	sys := structure.BuildWaterBox(n, n, n, geom.Vec3{})
	d, err := Decompose(sys, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if int(pairs) != d.Stats.NumWWPairs {
		t.Fatalf("streaming ww pairs = %d, Decompose found %d", pairs, d.Stats.NumWWPairs)
	}
}

func TestFragmentSizeRange(t *testing.T) {
	// Realistic sequence: capped fragments span roughly the paper's 9–68
	// atom range (their Fig. 7 protein: 9 to 68).
	seq := structure.RandomSequence(60, 17)
	sys := mustProtein(t, seq)
	d, err := Decompose(sys, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d.Stats.MinAtoms < 5 {
		t.Errorf("min fragment %d atoms: too small", d.Stats.MinAtoms)
	}
	if d.Stats.MaxAtoms > 100 {
		t.Errorf("max fragment %d atoms: too large", d.Stats.MaxAtoms)
	}
	if d.Stats.MaxAtoms < 40 {
		t.Errorf("max fragment %d atoms: expected some large capped fragments", d.Stats.MaxAtoms)
	}
}

func TestMinSeqSeparationValidation(t *testing.T) {
	sys := mustProtein(t, "GAG")
	opt := DefaultOptions()
	opt.MinSeqSeparation = 1
	if _, err := Decompose(sys, opt); err == nil {
		t.Fatal("accepted MinSeqSeparation < 2")
	}
}

func TestKindString(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no label", k)
		}
	}
}

func TestTrimerConcapCount(t *testing.T) {
	// The paper's §VI-A: the spike protein has 3,180 residues in 3 chains
	// and 3,171 conjugate caps — exactly 3·(1060−3). Reproduce the per-
	// chain counting at reduced size: 3 chains of 10 residues → 3·7 = 21
	// concaps and 3·8 = 24 capped fragments.
	seq := structure.RandomSequence(10, 9)
	sys, err := structure.BuildMultimer(seq, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decompose(sys, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d.Stats.NumConcaps != 21 {
		t.Errorf("trimer concaps = %d, want 21", d.Stats.NumConcaps)
	}
	if d.Stats.NumResidueFragments != 24 {
		t.Errorf("trimer residue fragments = %d, want 24", d.Stats.NumResidueFragments)
	}
	checkCoverage(t, sys, d)
}

func TestCrossChainPairsEligible(t *testing.T) {
	// Two chains brought close: residues with the same in-chain index are
	// sequence-neighbors by number but different chains, so they must be
	// eligible generalized-concap partners.
	seq := "GAG"
	a, err := structure.BuildProtein(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := structure.BuildProtein(seq)
	if err != nil {
		t.Fatal(err)
	}
	sys := &structure.System{}
	sys.Atoms = append(sys.Atoms, a.Atoms...)
	sys.Residues = append(sys.Residues, a.Residues...)
	off := len(sys.Atoms)
	for _, at := range b.Atoms {
		at.Pos = at.Pos.Add(geom.V(0, 0, 6.5)) // backbones ~4 Å at closest contact
		sys.Atoms = append(sys.Atoms, at)
	}
	for _, r := range b.Residues {
		r.First += off
		r.N += off
		r.CA += off
		r.C += off
		r.O += off
		r.Chain = 1
		sys.Residues = append(sys.Residues, r)
	}
	d, err := Decompose(sys, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d.Stats.NumRRPairs == 0 {
		t.Fatal("no cross-chain generalized concaps found for adjacent chains")
	}
	checkCoverage(t, sys, d)
}
