package fragment

import (
	"testing"

	"qframan/internal/geom"
	"qframan/internal/structure"
)

func BenchmarkDecomposeProtein(b *testing.B) {
	seq := structure.RandomSequence(200, 5)
	sys, err := structure.BuildProteinFolded(seq, 20)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(sys.NumAtoms()), "atoms")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(sys, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecomposeWaterBox(b *testing.B) {
	sys := structure.BuildWaterBox(12, 12, 12, geom.Vec3{})
	b.ReportMetric(float64(sys.NumAtoms()), "atoms")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(sys, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWaterBoxStatsStreaming(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WaterBoxStats(40, 40, 40, 4.0)
	}
}
