// Package perf runs the paper's per-fragment performance experiments on the
// real quantum engine: the step-by-step speedups of symmetry-aware strength
// reduction and elastic workload offloading (Fig. 9) and the double-precision
// rates of the n⁽¹⁾ and H⁽¹⁾ phases (Table I). Numerics always execute on
// the host; accelerator time comes from the calibrated device cost models in
// internal/accel. The measured unit is one DFPT cycle — the paper's own
// metric ("DFPT time per cycle").
package perf

import (
	"fmt"
	"math"
	"time"

	"qframan/internal/accel"
	"qframan/internal/dfpt"
	"qframan/internal/fragment"
	"qframan/internal/scf"
	"qframan/internal/structure"
)

// overheadFraction models the non-GEMM share of a DFPT cycle relative to
// the naive GEMM time. The paper measures 85% of the Hamiltonian-phase time
// in GEMM on a medium fragment, i.e. other work ≈ 15/85 of the GEMM time.
const overheadFraction = 0.176

// SampleFragments returns one real fragment per requested atom count
// (nearest available), drawn from a QF decomposition of a synthetic folded
// protein. Water-sized entries (≤6 atoms) come from a water box.
func SampleFragments(sizes []int, seed int64) ([]*fragment.Fragment, error) {
	seq := structure.RandomSequence(80, seed)
	sys, err := structure.BuildProteinFolded(seq, 16)
	if err != nil {
		return nil, err
	}
	dec, err := fragment.Decompose(sys, fragment.DefaultOptions())
	if err != nil {
		return nil, err
	}
	out := make([]*fragment.Fragment, 0, len(sizes))
	for _, want := range sizes {
		var best *fragment.Fragment
		bestDiff := math.MaxInt32
		for i := range dec.Fragments {
			f := &dec.Fragments[i]
			d := f.NumAtoms() - want
			if d < 0 {
				d = -d
			}
			// Fragments must be closed-shell for the engine; all are.
			if d < bestDiff {
				bestDiff = d
				best = f
			}
		}
		if best == nil {
			return nil, fmt.Errorf("perf: no fragment near %d atoms", want)
		}
		out = append(out, best)
	}
	return out, nil
}

// gridOptions returns the per-cycle measurement configuration: a single
// DFPT cycle on the real-space pipeline.
func gridOptions(reduced bool, exec *accel.BatchingExecutor) dfpt.Options {
	opt := dfpt.DefaultOptions()
	opt.Coulomb = dfpt.GridCoulomb
	opt.GridSpacing = 0.85
	opt.GridMargin = 4.0
	opt.BatchSide = 6
	opt.StrengthReduction = reduced
	// One cycle per field direction: a huge tolerance accepts the first
	// iterate, making the run a pure per-cycle cost measurement.
	opt.Tol = 1e12
	opt.MaxIter = 2
	if exec != nil {
		opt.Executor = exec
	}
	return opt
}

// CycleCost is the modeled cost of one DFPT cycle under a device model.
type CycleCost struct {
	GEMMs     int64
	GEMMTime  time.Duration // modeled host+device time of the GEMM work
	TotalTime time.Duration // including the non-GEMM overhead share
	Phase     map[string]accel.Stats
	Metrics   dfpt.PhaseMetrics
}

// MeasureCycle runs one DFPT cycle (all three field directions) of the
// fragment on the grid pipeline with the given kernel variant and offload
// options, returning the modeled cost.
func MeasureCycle(f *fragment.Fragment, dev accel.Device, reduced bool, offload accel.Options) (*CycleCost, error) {
	m, err := scf.NewModel(f.Els, f.Pos)
	if err != nil {
		return nil, err
	}
	ground, err := m.SolveSCFRobust(scf.DefaultOptions())
	if err != nil {
		return nil, err
	}
	exec := accel.NewBatchingExecutor(dev, offload)
	resp, err := dfpt.Polarizability(m, ground, gridOptions(reduced, exec))
	if err != nil {
		return nil, err
	}
	cost := &CycleCost{
		GEMMs:    exec.Stats.GEMMs,
		GEMMTime: exec.Stats.ModeledTime(),
		Metrics:  resp.Metrics,
		Phase:    map[string]accel.Stats{},
	}
	for name, s := range exec.PhaseStats {
		cost.Phase[name] = *s
	}
	return cost, nil
}

// Fig9Row is one bar group of the paper's Fig. 9.
type Fig9Row struct {
	Atoms        int
	GEMMsNaive   int64
	GEMMsReduced int64
	// SpeedupSR is the DFPT-cycle speedup from symmetry-aware strength
	// reduction alone (paper: 3.0–4.4× on ORISE, up to 6.0× on Sunway).
	SpeedupSR float64
	// SpeedupSROffload adds elastic workload offloading (paper:
	// 6.3–11.6× on ORISE, up to 16.2× on Sunway).
	SpeedupSROffload float64
}

// Fig9 measures the step-by-step speedups across fragment sizes.
func Fig9(dev accel.Device, sizes []int, seed int64) ([]Fig9Row, error) {
	frags, err := SampleFragments(sizes, seed)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig9Row, 0, len(frags))
	for _, f := range frags {
		hostOnly := accel.Options{Stride: 32, MinBatch: 64, Offload: false}
		naive, err := MeasureCycle(f, dev, false, hostOnly)
		if err != nil {
			return nil, err
		}
		sr, err := MeasureCycle(f, dev, true, hostOnly)
		if err != nil {
			return nil, err
		}
		srOff, err := MeasureCycle(f, dev, true, accel.DefaultOptions())
		if err != nil {
			return nil, err
		}
		other := time.Duration(overheadFraction * float64(naive.GEMMTime))
		base := naive.GEMMTime + other
		rows = append(rows, Fig9Row{
			Atoms:            f.NumAtoms(),
			GEMMsNaive:       naive.GEMMs,
			GEMMsReduced:     sr.GEMMs,
			SpeedupSR:        float64(base) / float64(sr.GEMMTime+other),
			SpeedupSROffload: float64(base) / float64(srOff.GEMMTime+other),
		})
	}
	return rows, nil
}

// Table1Row is one line of the paper's Table I.
type Table1Row struct {
	Platform string
	Part     string // "n1" or "h1"
	// MinTFLOPS/MaxTFLOPS are sustained per-accelerator FP64 rates across
	// fragment sizes.
	MinTFLOPS, MaxTFLOPS float64
	// PFLOPS is the full-system estimate (rate averaged over the fragment
	// population × accelerator count), and PctOfPeak its fraction of the
	// machine's FP64 peak.
	PFLOPS    float64
	PctOfPeak float64
}

// Table1 measures per-accelerator sustained rates of the n⁽¹⁾ and H⁽¹⁾
// phases across fragment sizes and extrapolates to the full system, exactly
// as the paper does ("the performance … could thus be estimated").
// unitsPerAccel aggregates executor units into the reported accelerator:
// 1 for an ORISE GPU, 6 for a SW26010-pro node (six core groups).
func Table1(platform string, dev accel.Device, nAccel, unitsPerAccel int, peakPFLOPS float64, sizes []int, seed int64) ([]Table1Row, error) {
	frags, err := SampleFragments(sizes, seed)
	if err != nil {
		return nil, err
	}
	type rate struct{ min, max, sum float64 }
	rates := map[string]*rate{"n1": {min: math.Inf(1)}, "h1": {min: math.Inf(1)}}
	for _, f := range frags {
		cost, err := MeasureCycle(f, dev, true, accel.DefaultOptions())
		if err != nil {
			return nil, err
		}
		for part, r := range rates {
			ps, ok := cost.Phase[part]
			if !ok {
				return nil, fmt.Errorf("perf: phase %q not recorded", part)
			}
			t := ps.ModeledTime().Seconds()
			if t <= 0 {
				continue
			}
			var flops int64
			if part == "n1" {
				flops = cost.Metrics.FLOPsN1
			} else {
				flops = cost.Metrics.FLOPsH1
			}
			tf := float64(flops) / t / 1e12 * float64(unitsPerAccel)
			r.min = math.Min(r.min, tf)
			r.max = math.Max(r.max, tf)
			r.sum += tf
		}
	}
	var rows []Table1Row
	for _, part := range []string{"n1", "h1"} {
		r := rates[part]
		mean := r.sum / float64(len(frags))
		pf := mean * float64(nAccel) / 1e3 // TFLOPS → PFLOPS
		rows = append(rows, Table1Row{
			Platform:  platform,
			Part:      part,
			MinTFLOPS: r.min,
			MaxTFLOPS: r.max,
			PFLOPS:    pf,
			PctOfPeak: pf / peakPFLOPS,
		})
	}
	return rows, nil
}

// Machines' full-system parameters for the Table I extrapolation.
const (
	ORISEAccelerators = 24000
	ORISEPeakPFLOPS   = 158.5 // implied by 85.27 PFLOPS at 53.8%
	SunwayNodes       = 96000
	SunwayCoreGroups  = 96000 * 6
	SunwayPeakPFLOPS  = 1355.6 // implied by 399.90 PFLOPS at 29.5%
)
