package perf

import (
	"testing"

	"qframan/internal/accel"
	"qframan/internal/structure"
)

// TestSampleFragmentsSeedDeterministic pins the sampling contract: the same
// (sizes, seed) pair always yields the same fragments — IDs, atom counts,
// and coordinates bitwise — because every perf figure's reproducibility
// rests on it. The golden values double as a regression gate on the
// synthetic-protein decomposition itself.
func TestSampleFragmentsSeedDeterministic(t *testing.T) {
	sizes := []int{4, 8, 12, 16, 24}
	a, err := SampleFragments(sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleFragments(sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(sizes) || len(b) != len(sizes) {
		t.Fatalf("got %d and %d fragments for %d sizes", len(a), len(b), len(sizes))
	}
	// Golden: seed 1 on the 80-residue folded protein.
	wantID := []int{162, 162, 171, 175, 148}
	wantAtoms := []int{9, 9, 12, 16, 24}
	for i := range sizes {
		if a[i].ID != wantID[i] || a[i].NumAtoms() != wantAtoms[i] {
			t.Errorf("size %d: fragment id=%d atoms=%d, golden id=%d atoms=%d",
				sizes[i], a[i].ID, a[i].NumAtoms(), wantID[i], wantAtoms[i])
		}
		if a[i].ID != b[i].ID || a[i].NumAtoms() != b[i].NumAtoms() {
			t.Fatalf("size %d: repeat call diverged (%d/%d vs %d/%d)",
				sizes[i], a[i].ID, a[i].NumAtoms(), b[i].ID, b[i].NumAtoms())
		}
		for j := range a[i].Pos {
			if a[i].Pos[j] != b[i].Pos[j] {
				t.Fatalf("size %d atom %d: coordinates differ across identical calls", sizes[i], j)
			}
		}
	}
	// Different seeds draw from different proteins.
	if structure.RandomSequence(80, 1) == structure.RandomSequence(80, 2) {
		t.Fatal("seeds 1 and 2 generate the same protein sequence")
	}
}

// TestFig9SpeedupsMonotone checks the shape of the modeled Fig. 9 curves on
// the ORISE device model: strength reduction cuts the GEMM count and yields
// a real speedup, offloading adds on top of it, and the combined speedup
// grows with fragment size (larger fragments amortize transfers better),
// matching the paper's reported trend. Everything here is the deterministic
// cost model, so the run is also checked to be bit-reproducible.
func TestFig9SpeedupsMonotone(t *testing.T) {
	sizes := []int{6, 14}
	rows, err := Fig9(accel.ORISEDevice(), sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(sizes) {
		t.Fatalf("%d rows for %d sizes", len(rows), len(sizes))
	}
	for i, r := range rows {
		if r.GEMMsReduced >= r.GEMMsNaive {
			t.Errorf("row %d (%d atoms): strength reduction kept %d of %d GEMMs",
				i, r.Atoms, r.GEMMsReduced, r.GEMMsNaive)
		}
		if r.SpeedupSR <= 1 {
			t.Errorf("row %d (%d atoms): SR speedup %.3f ≤ 1", i, r.Atoms, r.SpeedupSR)
		}
		if r.SpeedupSROffload <= r.SpeedupSR {
			t.Errorf("row %d (%d atoms): offload does not add to SR (%.3f ≤ %.3f)",
				i, r.Atoms, r.SpeedupSROffload, r.SpeedupSR)
		}
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Atoms <= rows[i-1].Atoms {
			t.Fatalf("sampled sizes not increasing: %d then %d", rows[i-1].Atoms, rows[i].Atoms)
		}
		if rows[i].SpeedupSROffload < rows[i-1].SpeedupSROffload {
			t.Errorf("combined speedup not monotone in fragment size: %.3f (%d atoms) then %.3f (%d atoms)",
				rows[i-1].SpeedupSROffload, rows[i-1].Atoms, rows[i].SpeedupSROffload, rows[i].Atoms)
		}
	}

	again, err := Fig9(accel.ORISEDevice(), sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != again[i] {
			t.Fatalf("row %d not bit-reproducible: %+v vs %+v", i, rows[i], again[i])
		}
	}
}
