// Package serve is the high-throughput spectra service: a long-lived,
// multi-tenant job-queue daemon wrapping the QF-RAMAN engine, in the spirit
// of high-throughput first-principles Raman pipelines (arXiv:2209.15423)
// where many structures flow through one shared computation service. Jobs
// submitted over HTTP/JSON run through one shared fragment-level scheduler
// (internal/sched) backed by one shared content-addressed store
// (internal/store), so overlapping solvated systems submitted by different
// tenants share water-fragment results automatically. A weighted fair-share
// queue arbitrates tenants, admission control bounds queue depth and job
// size (429 + Retry-After instead of OOM under burst), and per-job labeled
// metrics (internal/obs) stream progress through /status and /jobs/{id}.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"qframan/internal/geom"
	"qframan/internal/obs"
	"qframan/internal/raman"
	"qframan/internal/structure"
)

// Submit validation errors. ErrTooLarge maps to 413; every other
// validation failure maps to 400.
var (
	ErrTooLarge = errors.New("serve: system exceeds the admission size limit")
)

// Limits bound what a single submission may ask for.
type Limits struct {
	// MaxAtoms caps the atom count of one job's system.
	MaxAtoms int
	// MaxTextBytes caps the inline structure text payload.
	MaxTextBytes int
}

// SystemSpec names the structure a job wants computed. Exactly one kind:
//
//	{"kind":"waterbox","nx":2,"ny":2,"nz":2,"origin":[0,0,0]}
//	{"kind":"dimers","n":3}
//	{"kind":"text","text":"ATOM 0 OW O HOH 0 0 1.0 2.0 3.0\n..."}
type SystemSpec struct {
	Kind   string     `json:"kind"`
	NX     int        `json:"nx,omitempty"`
	NY     int        `json:"ny,omitempty"`
	NZ     int        `json:"nz,omitempty"`
	Origin [3]float64 `json:"origin,omitempty"`
	N      int        `json:"n,omitempty"`
	Text   string     `json:"text,omitempty"`
}

// SpectrumSpec carries the optional per-job spectrum settings; zero values
// select the engine defaults.
type SpectrumSpec struct {
	FreqMin  float64 `json:"fmin,omitempty"`
	FreqMax  float64 `json:"fmax,omitempty"`
	FreqStep float64 `json:"fstep,omitempty"`
	Sigma    float64 `json:"sigma,omitempty"`
	LanczosK int     `json:"k,omitempty"`
	// Dense selects exact dense diagonalization (small systems only).
	Dense bool `json:"dense,omitempty"`
}

// SubmitRequest is the POST /jobs payload.
type SubmitRequest struct {
	// Tenant is the fair-share accounting identity; [A-Za-z0-9._-]{1,64}.
	Tenant   string     `json:"tenant"`
	Priority int        `json:"priority,omitempty"` // -2 (batch) … +2 (interactive), FIFO within
	System   SystemSpec `json:"system"`
	// HessianOnly skips the polarizability displacements and the spectrum.
	HessianOnly bool         `json:"hessian_only,omitempty"`
	Spectrum    SpectrumSpec `json:"spectrum,omitempty"`
}

// PriorityMin and PriorityMax bound SubmitRequest.Priority.
const (
	PriorityMin = -2
	PriorityMax = 2
)

const maxTenantLen = 64

// validTenant accepts [A-Za-z0-9._-]{1,64}: safe in metric labels, log
// lines, and JSON without escaping.
func validTenant(s string) bool {
	if len(s) == 0 || len(s) > maxTenantLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// ParseSubmitRequest decodes and validates a submit payload against the
// limits. Malformed JSON, unknown fields, bad tenants, out-of-range
// priorities, non-finite geometry, and oversized systems are all rejected
// with an error — never a panic — which is what FuzzSubmitRequest pins.
func ParseSubmitRequest(data []byte, lim Limits) (*SubmitRequest, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("serve: invalid submit payload: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("serve: trailing data after submit payload")
	}
	if !validTenant(req.Tenant) {
		return nil, fmt.Errorf("serve: invalid tenant %q (want [A-Za-z0-9._-]{1,64})", req.Tenant)
	}
	if req.Priority < PriorityMin || req.Priority > PriorityMax {
		return nil, fmt.Errorf("serve: priority %d out of range [%d, %d]", req.Priority, PriorityMin, PriorityMax)
	}
	if err := req.System.validate(lim); err != nil {
		return nil, err
	}
	if err := req.Spectrum.validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

func (sp *SpectrumSpec) validate() error {
	for _, v := range []float64{sp.FreqMin, sp.FreqMax, sp.FreqStep, sp.Sigma} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("serve: spectrum settings must be finite and non-negative")
		}
	}
	if sp.FreqMax > 0 && sp.FreqMax <= sp.FreqMin {
		return fmt.Errorf("serve: fmax must exceed fmin")
	}
	if sp.LanczosK < 0 || sp.LanczosK > 100000 {
		return fmt.Errorf("serve: lanczos k out of range")
	}
	return nil
}

// apply overlays the non-zero settings onto the engine defaults.
func (sp *SpectrumSpec) apply(o *raman.Options) {
	if sp.FreqMin > 0 {
		o.FreqMin = sp.FreqMin
	}
	if sp.FreqMax > 0 {
		o.FreqMax = sp.FreqMax
	}
	if sp.FreqStep > 0 {
		o.FreqStep = sp.FreqStep
	}
	if sp.Sigma > 0 {
		o.Sigma = sp.Sigma
	}
	if sp.LanczosK > 0 {
		o.LanczosK = sp.LanczosK
	}
}

// validate checks the spec's shape and size bounds without building
// anything, so a hostile nx=1e9 is rejected before any allocation.
func (s *SystemSpec) validate(lim Limits) error {
	maxAtoms := lim.MaxAtoms
	if maxAtoms <= 0 {
		maxAtoms = DefaultMaxAtomsPerJob
	}
	for _, v := range s.Origin {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("serve: non-finite origin")
		}
	}
	switch s.Kind {
	case "waterbox":
		if s.NX < 1 || s.NY < 1 || s.NZ < 1 {
			return fmt.Errorf("serve: waterbox dims must be ≥ 1")
		}
		// Compare by division so a hostile nx·ny·nz can never wrap int64:
		// atoms·d > max ⟺ atoms > ⌊max/d⌋ exactly (d ≥ 1), and the
		// multiply only happens once the product is proven ≤ max. The
		// earlier multiply-then-compare version still wrapped for dims
		// near 2^62 (found by fuzzing).
		atoms := int64(3)
		for _, d := range [3]int{s.NX, s.NY, s.NZ} {
			if atoms > int64(maxAtoms)/int64(d) {
				return fmt.Errorf("%w: waterbox %d×%d×%d exceeds the %d-atom limit",
					ErrTooLarge, s.NX, s.NY, s.NZ, maxAtoms)
			}
			atoms *= int64(d)
		}
	case "dimers":
		if s.N < 1 {
			return fmt.Errorf("serve: dimers count must be ≥ 1")
		}
		// Same division form: 6·N wraps int64 for N near 2^62.
		if int64(s.N) > int64(maxAtoms)/6 {
			return fmt.Errorf("%w: %d dimers exceed the %d-atom limit", ErrTooLarge, s.N, maxAtoms)
		}
	case "text":
		maxText := lim.MaxTextBytes
		if maxText <= 0 {
			maxText = DefaultMaxTextBytes
		}
		if s.Text == "" {
			return fmt.Errorf("serve: empty structure text")
		}
		if len(s.Text) > maxText {
			return fmt.Errorf("%w: structure text is %d bytes, limit %d", ErrTooLarge, len(s.Text), maxText)
		}
	default:
		return fmt.Errorf("serve: unknown system kind %q", s.Kind)
	}
	return nil
}

// Build materializes the system and re-validates it end to end: element
// sanity, finite coordinates, and the atom-count limit (the text format can
// smuggle what validate couldn't see).
func (s *SystemSpec) Build(lim Limits) (*structure.System, error) {
	if err := s.validate(lim); err != nil {
		return nil, err
	}
	maxAtoms := lim.MaxAtoms
	if maxAtoms <= 0 {
		maxAtoms = DefaultMaxAtomsPerJob
	}
	var sys *structure.System
	switch s.Kind {
	case "waterbox":
		sys = structure.BuildWaterBox(s.NX, s.NY, s.NZ, geom.V(s.Origin[0], s.Origin[1], s.Origin[2]))
	case "dimers":
		sys = structure.BuildWaterDimerSystem(s.N)
	case "text":
		var err error
		sys, err = structure.ReadSystem(strings.NewReader(s.Text))
		if err != nil {
			return nil, fmt.Errorf("serve: structure text: %w", err)
		}
	}
	if sys.NumAtoms() == 0 {
		return nil, fmt.Errorf("serve: system has no atoms")
	}
	if sys.NumAtoms() > maxAtoms {
		return nil, fmt.Errorf("%w: %d atoms, limit %d", ErrTooLarge, sys.NumAtoms(), maxAtoms)
	}
	for _, a := range sys.Atoms {
		for _, v := range []float64{a.Pos.X, a.Pos.Y, a.Pos.Z} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("serve: non-finite atom coordinate")
			}
		}
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("serve: invalid system: %w", err)
	}
	return sys, nil
}

// JobState is the lifecycle of one submission.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// ReportSummary is the service-level digest of a finished (or running)
// job's scheduler report, including the cross-job dedup accounting the
// shared store makes possible.
type ReportSummary struct {
	Fragments   int `json:"fragments"`
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	Resumed     int `json:"resumed"`
	Deduped     int `json:"deduped"`
	// CrossJobHits counts this job's fragments whose results already
	// existed in the shared store when the job started — work inherited
	// from other jobs (any tenant) or previous daemon runs.
	CrossJobHits int `json:"cross_job_hits"`
	// CrossTenantHits is the subset of CrossJobHits produced by a
	// *different* tenant within this daemon's lifetime.
	CrossTenantHits int     `json:"cross_tenant_hits"`
	Retries         int     `json:"retries"`
	Requeues        int     `json:"requeues"`
	Panics          int     `json:"panics"`
	Degraded        bool    `json:"degraded"`
	ElapsedSeconds  float64 `json:"elapsed_seconds"`
}

// SpectrumPayload is the wire form of a computed spectrum.
type SpectrumPayload struct {
	Freq      []float64 `json:"freq"`
	Intensity []float64 `json:"intensity"`
}

// Job is one submission moving through the queue and the shared scheduler.
type Job struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority"`
	seq      int64  // FIFO tiebreak within a tenant+priority

	req *SubmitRequest
	sys *structure.System

	// cancel is the job-scoped run handle: closed exactly once to kill the
	// job whether queued or mid-run (sched.Options.Cancel).
	cancel     chan struct{}
	cancelOnce sync.Once

	mu         sync.Mutex
	state      JobState
	finalized  bool // inputs released + retention bookkeeping done
	errMsg     string
	submitted  time.Time
	started    time.Time
	finished   time.Time
	fragsTotal int
	queueDepth *obs.Gauge // labeled sched_queue_depth handle, set at run start
	report     *ReportSummary
	spectrum   *SpectrumPayload
}

// Cancel closes the job's run handle (idempotent).
func (j *Job) Cancel() {
	j.cancelOnce.Do(func() { close(j.cancel) })
}

// Status is the wire form of GET /jobs/{id}.
type Status struct {
	ID       string   `json:"id"`
	Tenant   string   `json:"tenant"`
	Priority int      `json:"priority"`
	State    JobState `json:"state"`
	Error    string   `json:"error,omitempty"`

	SubmittedAt string  `json:"submitted_at"`
	StartedAt   string  `json:"started_at,omitempty"`
	FinishedAt  string  `json:"finished_at,omitempty"`
	WaitSeconds float64 `json:"wait_seconds,omitempty"`
	RunSeconds  float64 `json:"run_seconds,omitempty"`

	// FragmentsTotal/Done stream progress while running: Done is total
	// minus the job's labeled sched_queue_depth gauge.
	FragmentsTotal int `json:"fragments_total,omitempty"`
	FragmentsDone  int `json:"fragments_done,omitempty"`

	Report   *ReportSummary   `json:"report,omitempty"`
	Spectrum *SpectrumPayload `json:"spectrum,omitempty"`
}

// status snapshots the job under its lock. withSpectrum controls whether
// the (possibly large) spectrum arrays ride along.
func (j *Job) status(withSpectrum bool) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.ID,
		Tenant:      j.Tenant,
		Priority:    j.Priority,
		State:       j.state,
		Error:       j.errMsg,
		SubmittedAt: j.submitted.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
		st.WaitSeconds = j.started.Sub(j.submitted).Seconds()
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
		st.RunSeconds = j.finished.Sub(j.started).Seconds()
	}
	st.FragmentsTotal = j.fragsTotal
	if j.fragsTotal > 0 {
		switch j.state {
		case JobDone:
			st.FragmentsDone = j.fragsTotal
		case JobRunning:
			if remaining := j.queueDepth.Value(); remaining >= 0 && int(remaining) <= j.fragsTotal {
				st.FragmentsDone = j.fragsTotal - int(remaining)
			}
		}
	}
	st.Report = j.report
	if withSpectrum {
		st.Spectrum = j.spectrum
	}
	return st
}
