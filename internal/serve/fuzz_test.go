package serve

import (
	"math"
	"strings"
	"testing"
)

// FuzzSubmitRequest hammers the submit decoder end to end — JSON decode,
// validation, and system build — with hostile payloads. The invariants:
// never panic, never build a system that violates the admission limits,
// never accept non-finite geometry (the text format can smuggle NaN/Inf
// through strconv.ParseFloat), and never allocate unboundedly for an
// oversized spec.
func FuzzSubmitRequest(f *testing.F) {
	seeds := []string{
		`{"tenant":"alice","system":{"kind":"waterbox","nx":2,"ny":2,"nz":2}}`,
		`{"tenant":"bob","priority":2,"system":{"kind":"dimers","n":3},"hessian_only":true}`,
		`{"tenant":"c.d-e_f","system":{"kind":"text","text":"ATOM 0 OW O HOH 1 0 0 0 0\nATOM 1 HW1 H HOH 1 0 0.96 0 0\nATOM 2 HW2 H HOH 1 0 -0.24 0.93 0\n"}}`,
		`{"tenant":"a","system":{"kind":"text","text":"ATOM 0 OW O HOH 1 0 NaN 0 0\n"}}`,
		`{"tenant":"a","system":{"kind":"text","text":"ATOM 0 OW O HOH 1 0 +Inf 0 0\n"}}`,
		`{"tenant":"a","system":{"kind":"waterbox","nx":2000000000,"ny":2000000000,"nz":2000000000}}`,
		// int64-wrapping dims: 3·nx ≡ 2 (mod 2^64), nx=2^62 wraps negative,
		// 6·n ≡ 2 — each slipped past a multiply-then-compare size check.
		`{"tenant":"a","system":{"kind":"waterbox","nx":6148914691236517206,"ny":1,"nz":1}}`,
		`{"tenant":"a","system":{"kind":"waterbox","nx":4611686018427387904,"ny":1,"nz":1}}`,
		`{"tenant":"a","system":{"kind":"dimers","n":3074457345618258603}}`,
		`{"tenant":"a","system":{"kind":"dimers","n":-1}}`,
		`{"tenant":"a","priority":-3,"system":{"kind":"dimers","n":1}}`,
		`{"tenant":"","system":{"kind":"dimers","n":1}}`,
		`{"tenant":"a","system":{"kind":"waterbox","nx":1,"ny":1,"nz":1,"origin":[1e308,1e308,0]}}`,
		`{"tenant":"a","spectrum":{"fmin":100,"fmax":50},"system":{"kind":"dimers","n":1}}`,
		`{"tenant":"a","spectrum":{"sigma":-5},"system":{"kind":"dimers","n":1}}`,
		`null`, `[]`, `{}`, `{"tenant":"a"`, ``,
		`{"tenant":"a","system":{"kind":"dimers","n":1}}{"again":true}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	lim := Limits{MaxAtoms: 120, MaxTextBytes: 1 << 16}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseSubmitRequest(data, lim)
		if err != nil {
			if req != nil {
				t.Fatal("non-nil request returned alongside an error")
			}
			return
		}
		// Parse accepted: its promises must hold.
		if !validTenant(req.Tenant) {
			t.Fatalf("accepted invalid tenant %q", req.Tenant)
		}
		if req.Priority < PriorityMin || req.Priority > PriorityMax {
			t.Fatalf("accepted priority %d", req.Priority)
		}
		sys, err := req.System.Build(lim)
		if err != nil {
			// Build may still reject (e.g. text that only parses partway),
			// but must do so with an error, not a panic.
			if !strings.HasPrefix(err.Error(), "serve:") {
				t.Fatalf("build error lacks package prefix: %v", err)
			}
			return
		}
		if sys.NumAtoms() == 0 || sys.NumAtoms() > lim.MaxAtoms {
			t.Fatalf("built system with %d atoms under limit %d", sys.NumAtoms(), lim.MaxAtoms)
		}
		for _, a := range sys.Atoms {
			for _, v := range []float64{a.Pos.X, a.Pos.Y, a.Pos.Z} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("built system with non-finite coordinate %v", v)
				}
			}
		}
		if err := sys.Validate(); err != nil {
			t.Fatalf("built system fails validation: %v", err)
		}
	})
}
