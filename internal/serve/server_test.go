package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestSubmitRunsToCompletion: the basic service loop — POST a job, poll it
// to done, and find the scheduler report attached.
func TestSubmitRunsToCompletion(t *testing.T) {
	_, ts := newTestServer(t, Config{Runners: 1})
	sr := submitOK(t, ts, SubmitRequest{
		Tenant: "alice",
		System: SystemSpec{Kind: "dimers", N: 3},
	})
	if sr.ID == "" || sr.State != JobQueued {
		t.Fatalf("submit response %+v", sr)
	}
	st := waitState(t, ts, sr.ID, 10*time.Second)
	if st.State != JobDone {
		t.Fatalf("job finished %q (error %q), want done", st.State, st.Error)
	}
	if st.Report == nil || st.Report.Fragments == 0 {
		t.Fatalf("done job carries no report: %+v", st)
	}
	if st.FragmentsDone != st.FragmentsTotal || st.FragmentsTotal == 0 {
		t.Fatalf("progress %d/%d, want full", st.FragmentsDone, st.FragmentsTotal)
	}
	if st.RunSeconds < 0 || st.StartedAt == "" || st.FinishedAt == "" {
		t.Fatalf("timing fields missing: %+v", st)
	}
}

// TestSubmitRejectsBadRequests: the 400 family.
func TestSubmitRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Runners: 1})
	for _, tc := range []struct {
		name string
		body string
	}{
		{"malformed json", `{"tenant": "a", `},
		{"unknown field", `{"tenant":"a","surprise":1,"system":{"kind":"dimers","n":1}}`},
		{"bad tenant", `{"tenant":"no spaces","system":{"kind":"dimers","n":1}}`},
		{"empty tenant", `{"system":{"kind":"dimers","n":1}}`},
		{"bad priority", `{"tenant":"a","priority":9,"system":{"kind":"dimers","n":1}}`},
		{"unknown kind", `{"tenant":"a","system":{"kind":"crystal"}}`},
		{"zero waterbox", `{"tenant":"a","system":{"kind":"waterbox","nx":0,"ny":1,"nz":1}}`},
		{"empty text", `{"tenant":"a","system":{"kind":"text"}}`},
		{"nan in text", `{"tenant":"a","system":{"kind":"text","text":"ATOM 0 OW O HOH 1 0 NaN 0 0\n"}}`},
		{"trailing data", `{"tenant":"a","system":{"kind":"dimers","n":1}} {"x":1}`},
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestSubmitRejectsOversized: systems beyond MaxAtomsPerJob get 413, both
// when the spec's arithmetic shows it (no allocation) and when only the
// built text system reveals it.
func TestSubmitRejectsOversized(t *testing.T) {
	_, ts := newTestServer(t, Config{Runners: 1, MaxAtomsPerJob: 30})
	for _, body := range []string{
		`{"tenant":"a","system":{"kind":"waterbox","nx":100,"ny":100,"nz":100}}`,
		`{"tenant":"a","system":{"kind":"dimers","n":6}}`,
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("status %d, want 413 for %s", resp.StatusCode, body)
		}
	}
	// Within bounds passes.
	submitOK(t, ts, SubmitRequest{Tenant: "a", System: SystemSpec{Kind: "dimers", N: 5}})
}

// TestUnknownJob404s covers the not-found paths.
func TestUnknownJob404s(t *testing.T) {
	_, ts := newTestServer(t, Config{Runners: 1})
	resp, err := http.Get(ts.URL + "/jobs/j999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown job: %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/j999", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown job: %d, want 404", resp.StatusCode)
	}
}

// TestCancelQueuedJob: a job cancelled before any runner picks it up
// finishes as cancelled without running.
func TestCancelQueuedJob(t *testing.T) {
	block := make(chan struct{})
	_, ts := newTestServer(t, Config{
		Runners:      1,
		SkipSpectrum: true,
		Process:      blockingEngine(block),
	})
	defer close(block)
	// First job occupies the single runner…
	submitOK(t, ts, SubmitRequest{Tenant: "a", System: SystemSpec{Kind: "dimers", N: 1}})
	// …second stays queued and is cancelled there.
	second := submitOK(t, ts, SubmitRequest{Tenant: "a", System: SystemSpec{Kind: "dimers", N: 1}})
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+second.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.State != JobCancelled {
		t.Fatalf("cancelled queued job reports %q", st.State)
	}
	if st.StartedAt != "" {
		t.Fatalf("cancelled queued job claims it started: %+v", st)
	}
}

// TestStatusAndMetricsEndpoints: /status aggregates tenants and counters;
// /metrics exposes the per-job labeled scheduler series.
func TestStatusAndMetricsEndpoints(t *testing.T) {
	st := openStore(t, t.TempDir())
	_, ts := newTestServer(t, Config{Runners: 1, Store: st})
	sr := submitOK(t, ts, SubmitRequest{Tenant: "acme", System: SystemSpec{Kind: "dimers", N: 2}})
	waitState(t, ts, sr.ID, 10*time.Second)

	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var ds DaemonStatus
	json.NewDecoder(resp.Body).Decode(&ds)
	resp.Body.Close()
	if ds.JobsSubmitted != 1 || ds.JobsDone != 1 {
		t.Fatalf("status counters %+v", ds)
	}
	if ds.Store == nil || ds.Store.Objects == 0 {
		t.Fatalf("store summary missing from /status: %+v", ds.Store)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	io.Copy(&buf, resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		MetricJobsSubmitted + " 1",
		MetricJobsDone + " 1",
		`sched_cache_misses_total{job="` + sr.ID + `",tenant="acme"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics dump missing %q:\n%s", want, text)
		}
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

// TestPriorityOrderWithinTenant: with one runner, a tenant's high-priority
// job overtakes earlier low-priority submissions.
func TestPriorityOrderWithinTenant(t *testing.T) {
	block := make(chan struct{})
	_, ts := newTestServer(t, Config{
		Runners:      1,
		SkipSpectrum: true,
		Process:      blockingEngine(block),
	})
	// Occupy the runner so subsequent submissions queue up.
	submitOK(t, ts, SubmitRequest{Tenant: "t", System: SystemSpec{Kind: "dimers", N: 1}})
	low := submitOK(t, ts, SubmitRequest{Tenant: "t", Priority: -1, System: SystemSpec{Kind: "dimers", N: 1}})
	high := submitOK(t, ts, SubmitRequest{Tenant: "t", Priority: 2, System: SystemSpec{Kind: "dimers", N: 1}})
	mid := submitOK(t, ts, SubmitRequest{Tenant: "t", System: SystemSpec{Kind: "dimers", N: 1}})

	close(block)
	for _, id := range []string{low.ID, high.ID, mid.ID} {
		waitState(t, ts, id, 10*time.Second)
	}
	started := func(id string) time.Time {
		st := getStatus(t, ts, id, false)
		tm, err := time.Parse(time.RFC3339Nano, st.StartedAt)
		if err != nil {
			t.Fatalf("job %s StartedAt %q: %v", id, st.StartedAt, err)
		}
		return tm
	}
	if !started(high.ID).Before(started(mid.ID)) || !started(mid.ID).Before(started(low.ID)) {
		t.Fatalf("start order violates priority: high=%v mid=%v low=%v",
			started(high.ID), started(mid.ID), started(low.ID))
	}
}
