package serve

import (
	"fmt"
	"testing"
)

// qjob builds a bare queued job for queue-level tests.
func qjob(tenant string, priority int, seq int64) *Job {
	return &Job{
		ID:       fmt.Sprintf("j%d", seq),
		Tenant:   tenant,
		Priority: priority,
		seq:      seq,
		cancel:   make(chan struct{}),
		state:    JobQueued,
	}
}

// TestFairnessFloodCannotStarve is the fairness property: tenant "flood"
// dumps 300 jobs, tenant "light" 30. With weights 1:1, in every selection
// prefix while both are backlogged, light must have received at least
// floor(prefix/2) − 1 picks — the smooth-WRR deviation bound. A flooding
// tenant gaining more than its weight share would fail this immediately.
func TestFairnessFloodCannotStarve(t *testing.T) {
	q := newFairQueue(nil, 1, 0, 0)
	seq := int64(0)
	for i := 0; i < 300; i++ {
		seq++
		if err := q.push(qjob("flood", 0, seq)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		seq++
		if err := q.push(qjob("light", 0, seq)); err != nil {
			t.Fatal(err)
		}
	}

	lightPicks, prefix := 0, 0
	for lightPicks < 30 {
		j := q.pop()
		if j == nil {
			t.Fatalf("queue ran dry with light backlogged (prefix %d)", prefix)
		}
		prefix++
		if j.Tenant == "light" {
			lightPicks++
		}
		if min := prefix/2 - 1; lightPicks < min {
			t.Fatalf("after %d picks light has %d, below fair floor %d: flooding tenant starved it",
				prefix, lightPicks, min)
		}
	}
	// Light's whole backlog cleared within ~2× its size worth of picks.
	if prefix > 61 {
		t.Fatalf("light needed %d total picks to drain 30 jobs at weight 1:1", prefix)
	}
}

// TestFairnessRespectsWeights: weights 3:1 give the heavy tenant ~3/4 of
// the picks over any window where both stay backlogged.
func TestFairnessRespectsWeights(t *testing.T) {
	q := newFairQueue(map[string]int{"gold": 3, "bronze": 1}, 1, 0, 0)
	seq := int64(0)
	for i := 0; i < 200; i++ {
		seq++
		q.push(qjob("gold", 0, seq))
		seq++
		q.push(qjob("bronze", 0, seq))
	}
	gold := 0
	const window = 160 // both tenants stay backlogged throughout
	for i := 0; i < window; i++ {
		if q.pop().Tenant == "gold" {
			gold++
		}
	}
	if gold < window*3/4-1 || gold > window*3/4+1 {
		t.Fatalf("gold got %d of %d picks at weight 3:1, want %d±1", gold, window, window*3/4)
	}
}

// TestFairnessRoundRobinInterleaves: equal weights, equal backlogs → strict
// alternation (deterministic given the lexicographic tiebreak).
func TestFairnessRoundRobinInterleaves(t *testing.T) {
	q := newFairQueue(nil, 1, 0, 0)
	for i := int64(1); i <= 6; i++ {
		q.push(qjob("a", 0, i))
		q.push(qjob("b", 0, i+100))
	}
	var got []string
	for j := q.pop(); j != nil; j = q.pop() {
		got = append(got, j.Tenant)
	}
	want := []string{"a", "b", "a", "b", "a", "b", "a", "b", "a", "b", "a", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pick %d went to %q, want %q (full order %v)", i, got[i], want[i], got)
		}
	}
}

// TestQueuePriorityAndFIFO: within one tenant, higher priority first; FIFO
// inside a priority level.
func TestQueuePriorityAndFIFO(t *testing.T) {
	q := newFairQueue(nil, 1, 0, 0)
	q.push(qjob("t", 0, 1))
	q.push(qjob("t", -2, 2))
	q.push(qjob("t", 2, 3))
	q.push(qjob("t", 0, 4))
	q.push(qjob("t", 2, 5))
	var got []int64
	for j := q.pop(); j != nil; j = q.pop() {
		got = append(got, j.seq)
	}
	want := []int64{3, 5, 1, 4, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// TestQueueAdmissionBounds: the global and per-tenant caps reject with the
// right errors, and removal frees capacity.
func TestQueueAdmissionBounds(t *testing.T) {
	q := newFairQueue(nil, 1, 4, 2)
	a1, a2 := qjob("a", 0, 1), qjob("a", 0, 2)
	if err := q.push(a1); err != nil {
		t.Fatal(err)
	}
	if err := q.push(a2); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob("a", 0, 3)); err != ErrTenantQueueFull {
		t.Fatalf("third job for tenant a: %v, want ErrTenantQueueFull", err)
	}
	q.push(qjob("b", 0, 4))
	q.push(qjob("c", 0, 5))
	if err := q.push(qjob("d", 0, 6)); err != ErrQueueFull {
		t.Fatalf("fifth job overall: %v, want ErrQueueFull", err)
	}
	if !q.remove(a2) {
		t.Fatal("remove of a queued job failed")
	}
	if q.remove(a2) {
		t.Fatal("double remove succeeded")
	}
	if err := q.push(qjob("d", 0, 7)); err != nil {
		t.Fatalf("push after remove: %v", err)
	}
	if q.depth() != 4 {
		t.Fatalf("depth %d, want 4", q.depth())
	}
}

// TestQueueIdleTenantBanksNoCredit: a tenant that sat idle while others
// drained cannot burst ahead of its weight when it returns.
func TestQueueIdleTenantBanksNoCredit(t *testing.T) {
	q := newFairQueue(nil, 1, 0, 0)
	seq := int64(0)
	// "busy" works alone for a while; "idle" is registered but empty.
	q.push(qjob("idle", 0, 1)) // touch the tenant…
	if j := q.pop(); j.Tenant != "idle" {
		t.Fatal("warmup pick")
	}
	for i := 0; i < 50; i++ {
		seq = int64(i + 10)
		q.push(qjob("busy", 0, seq))
	}
	for i := 0; i < 50; i++ {
		q.pop()
	}
	// Now both submit equal backlogs: picks must alternate from the start,
	// not begin with a burst of banked "idle" turns.
	for i := int64(0); i < 4; i++ {
		q.push(qjob("busy", 0, 100+i))
		q.push(qjob("idle", 0, 200+i))
	}
	counts := map[string]int{}
	for i := 0; i < 4; i++ {
		counts[q.pop().Tenant]++
	}
	if counts["idle"] > 3 {
		t.Fatalf("returning idle tenant took %d of the first 4 picks", counts["idle"])
	}
}
