package serve

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"qframan/internal/core"
	"qframan/internal/fragment"
	"qframan/internal/hessian"
	"qframan/internal/obs"
	"qframan/internal/raman"
	"qframan/internal/sched"
	"qframan/internal/store"
	"qframan/internal/structure"
)

// Default admission settings; Config zero values select them.
const (
	DefaultMaxAtomsPerJob  = 20000
	DefaultMaxTextBytes    = 8 << 20
	DefaultMaxQueuedJobs   = 64
	DefaultRunners         = 2
	DefaultRetryAfter      = 2 * time.Second
	DefaultMaxInflightFrag = 8
	DefaultMaxFinishedJobs = 512
	DefaultMaxLedgerKeys   = 1 << 16
)

// Daemon-level metric names (per-job scheduler metrics carry job/tenant
// labels on the internal/sched names instead).
const (
	MetricJobsSubmitted  = "serve_jobs_submitted_total"
	MetricJobsRejected   = "serve_jobs_rejected_total"
	MetricJobsDone       = "serve_jobs_done_total"
	MetricJobsFailed     = "serve_jobs_failed_total"
	MetricJobsCancelled  = "serve_jobs_cancelled_total"
	MetricJobSeconds     = "serve_job_seconds"
	MetricQueueDepth     = "serve_queue_depth"
	MetricInflightFrags  = "serve_inflight_fragments"
	MetricCrossJobHits   = "serve_cross_job_hits_total"
	MetricCrossTenantHit = "serve_cross_tenant_hits_total"
)

// Config wires a Server.
type Config struct {
	// Store is the shared content-addressed fragment store. All jobs run
	// against it, so overlapping systems — same waterbox submitted by two
	// tenants, re-submissions after a crash — share fragment results. Nil
	// disables caching (every job computes everything).
	Store *store.Store
	// Registry receives daemon metrics and the per-job labeled scheduler
	// series; nil allocates a private one.
	Registry *obs.Registry

	// Tenants maps tenant name → fair-share weight; unlisted tenants get
	// DefaultWeight (min 1).
	Tenants       map[string]int
	DefaultWeight int

	// Admission control: bounded queue depth (global and per tenant) and
	// per-job system size. Hitting a queue bound returns 429 +
	// Retry-After; an oversized system returns 413. Zero values pick the
	// package defaults; negative values mean unbounded.
	MaxQueuedJobs      int
	MaxQueuedPerTenant int
	MaxAtomsPerJob     int
	MaxTextBytes       int
	RetryAfter         time.Duration

	// MaxFinishedJobs bounds how many terminal jobs (done/failed/
	// cancelled) stay queryable through GET /jobs/{id}. Beyond it the
	// oldest-finished jobs are evicted from the index, so a long-lived
	// daemon under sustained load holds a bounded set of reports and
	// spectra rather than every job it ever ran. Terminal jobs also drop
	// their inputs (request + system geometry) immediately. Zero picks
	// DefaultMaxFinishedJobs; negative means retain forever.
	MaxFinishedJobs int
	// MaxLedgerKeys bounds the key→tenant attribution ledger behind the
	// cross-tenant dedup counters. Past the cap, arbitrary entries are
	// evicted: CrossTenantHits degrades to a lower bound while memory
	// stays bounded. Zero picks DefaultMaxLedgerKeys; negative means
	// unbounded.
	MaxLedgerKeys int

	// Runners is the number of jobs executing concurrently.
	Runners int
	// MaxInflightFragments bounds fragment attempts in flight across ALL
	// running jobs — the service-level backpressure valve in front of the
	// per-fragment kernel parallelism that internal/par's token budget
	// arbitrates. Zero picks the default; negative means unbounded.
	MaxInflightFragments int

	// NumLeaders/WorkersPerLeader shape each job's scheduler runtime;
	// zero values keep sched.DefaultOptions.
	NumLeaders       int
	WorkersPerLeader int
	// Fragment controls decomposition; the zero value selects
	// fragment.DefaultOptions.
	Fragment fragment.Options
	// Raman is the spectrum default each job's SpectrumSpec overlays; the
	// zero value selects raman.DefaultOptions.
	Raman raman.Options

	// Process overrides the fragment engine (tests, custom backends); nil
	// selects sched.DefaultProcess, the real SCF+DFPT pipeline.
	Process sched.ProcessFunc
	// Backend, when non-nil, replaces every job's in-process fragment
	// loop with a pluggable dispatch backend (e.g. cluster.NewClient to
	// fan fragments out to a qfcoord cluster). Results stay bit-identical
	// by the backend contract; Process and MaxInflightFragments do not
	// apply to backend-dispatched jobs.
	Backend sched.Backend
	// SkipSpectrum stops jobs after the fragment loop: no Hessian
	// assembly, no spectrum. Test engines producing synthetic
	// FragmentData use it; the report and dedup accounting still flow.
	SkipSpectrum bool
}

func (c *Config) fillDefaults() {
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.DefaultWeight < 1 {
		c.DefaultWeight = 1
	}
	if c.MaxQueuedJobs == 0 {
		c.MaxQueuedJobs = DefaultMaxQueuedJobs
	}
	if c.MaxQueuedPerTenant == 0 {
		c.MaxQueuedPerTenant = c.MaxQueuedJobs
	}
	if c.MaxAtomsPerJob == 0 {
		c.MaxAtomsPerJob = DefaultMaxAtomsPerJob
	}
	if c.MaxTextBytes == 0 {
		c.MaxTextBytes = DefaultMaxTextBytes
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	if c.MaxFinishedJobs == 0 {
		c.MaxFinishedJobs = DefaultMaxFinishedJobs
	}
	if c.MaxLedgerKeys == 0 {
		c.MaxLedgerKeys = DefaultMaxLedgerKeys
	}
	if c.Runners < 1 {
		c.Runners = DefaultRunners
	}
	if c.MaxInflightFragments == 0 {
		c.MaxInflightFragments = DefaultMaxInflightFrag
	}
	if c.Fragment.LambdaRR == 0 {
		c.Fragment = fragment.DefaultOptions()
	}
	if c.Raman.FreqStep == 0 {
		c.Raman = raman.DefaultOptions()
	}
}

// Server is the job-queue daemon.
type Server struct {
	cfg      Config
	reg      *obs.Registry
	fragGate chan struct{} // nil = unbounded

	mu       sync.Mutex
	cond     *sync.Cond
	queue    *fairQueue
	jobs     map[string]*Job
	running  map[string]*Job
	finished []*Job               // terminal jobs, oldest first, for bounded retention
	ledger   map[store.Key]string // key → tenant that first produced it (this daemon's lifetime)
	seq      int64
	draining bool
	closed   bool
	started  time.Time

	runnerWG sync.WaitGroup

	submitted, done, failed, cancelled, rejected int64
}

// New builds a Server and starts its runner pool.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Registry,
		queue:   newFairQueue(cfg.Tenants, cfg.DefaultWeight, cfg.MaxQueuedJobs, cfg.MaxQueuedPerTenant),
		jobs:    make(map[string]*Job),
		running: make(map[string]*Job),
		ledger:  make(map[store.Key]string),
		started: time.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.MaxInflightFragments > 0 {
		s.fragGate = make(chan struct{}, cfg.MaxInflightFragments)
	}
	if cfg.Store != nil {
		cfg.Store.SetObs(obs.NewScope(nil, s.reg))
	}
	for i := 0; i < cfg.Runners; i++ {
		s.runnerWG.Add(1)
		go s.runner()
	}
	return s
}

// newJobID returns "j<seq>-<96 random bits>". The sequence number keeps
// logs and metric labels readable; the random suffix makes IDs
// unguessable, so holding a job's ID is the capability to read or cancel
// it — a tenant cannot enumerate or interfere with jobs it didn't submit.
func newJobID(seq int64) string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("serve: crypto/rand unavailable: " + err.Error())
	}
	return fmt.Sprintf("j%d-%s", seq, hex.EncodeToString(b[:]))
}

// Submit admits a parsed request whose system already built. It returns
// the queued job or an admission error (ErrQueueFull / ErrTenantQueueFull /
// ErrDraining).
func (s *Server) Submit(req *SubmitRequest, sys *structure.System) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		return nil, ErrDraining
	}
	s.seq++
	j := &Job{
		ID:        newJobID(s.seq),
		Tenant:    req.Tenant,
		Priority:  req.Priority,
		seq:       s.seq,
		req:       req,
		sys:       sys,
		cancel:    make(chan struct{}),
		state:     JobQueued,
		submitted: time.Now(),
	}
	if err := s.queue.push(j); err != nil {
		s.rejected++
		reason := "queue_full"
		if err == ErrTenantQueueFull {
			reason = "tenant_full"
		}
		s.reg.WithLabel("reason", reason).Counter(MetricJobsRejected).Inc()
		return nil, err
	}
	s.jobs[j.ID] = j
	s.submitted++
	s.reg.Counter(MetricJobsSubmitted).Inc()
	s.reg.Gauge(MetricQueueDepth).Set(int64(s.queue.depth()))
	s.cond.Signal()
	return j, nil
}

// ErrDraining rejects submissions during shutdown (503).
var ErrDraining = errDraining{}

type errDraining struct{}

func (errDraining) Error() string { return "serve: daemon is draining" }

// Job returns a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// finalizeJob runs once per job as it reaches a terminal state: the inputs
// (request payload, system geometry) are released — status queries only
// need the report and spectrum — and the oldest finished jobs beyond
// MaxFinishedJobs are evicted from the index, so a long-lived daemon's
// memory is bounded by the retention cap, not by how many jobs it has ever
// served.
func (s *Server) finalizeJob(j *Job) {
	j.mu.Lock()
	if j.finalized {
		j.mu.Unlock()
		return
	}
	j.finalized = true
	j.req = nil
	j.sys = nil
	j.mu.Unlock()

	max := s.cfg.MaxFinishedJobs
	s.mu.Lock()
	s.finished = append(s.finished, j)
	if max > 0 {
		for len(s.finished) > max {
			old := s.finished[0]
			s.finished[0] = nil
			s.finished = s.finished[1:]
			delete(s.jobs, old.ID)
		}
	}
	s.mu.Unlock()
}

// enforceLedgerCapLocked evicts arbitrary attribution entries beyond
// MaxLedgerKeys (caller holds s.mu). Cross-tenant hit counts become a
// lower bound once eviction kicks in; memory stays bounded.
func (s *Server) enforceLedgerCapLocked() {
	max := s.cfg.MaxLedgerKeys
	if max <= 0 {
		return
	}
	for k := range s.ledger {
		if len(s.ledger) <= max {
			break
		}
		delete(s.ledger, k)
	}
}

// CancelJob cancels a queued or running job; false if the ID is unknown.
func (s *Server) CancelJob(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	wasQueued := s.queue.remove(j)
	if wasQueued {
		s.reg.Gauge(MetricQueueDepth).Set(int64(s.queue.depth()))
	}
	s.mu.Unlock()

	if wasQueued {
		j.mu.Lock()
		j.state = JobCancelled
		j.finished = time.Now()
		j.mu.Unlock()
		s.mu.Lock()
		s.cancelled++
		s.mu.Unlock()
		s.reg.Counter(MetricJobsCancelled).Inc()
		s.finalizeJob(j)
	}
	// Running (or about-to-run) jobs see the closed handle; queued jobs
	// get it closed too so a racing runner pop is a no-op.
	j.Cancel()
	return true
}

// runner is one slot of the job-execution pool.
func (s *Server) runner() {
	defer s.runnerWG.Done()
	for {
		s.mu.Lock()
		var j *Job
		for {
			if s.closed {
				s.mu.Unlock()
				return
			}
			j = s.queue.pop()
			if j != nil {
				break
			}
			if s.draining {
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
		}
		s.running[j.ID] = j
		s.reg.Gauge(MetricQueueDepth).Set(int64(s.queue.depth()))
		s.mu.Unlock()

		s.runJob(j)

		s.mu.Lock()
		delete(s.running, j.ID)
		s.mu.Unlock()
	}
}

// gatedProcess wraps the engine with the service-wide in-flight fragment
// budget and the job's cancellation probe. While an attempt holds a gate
// slot, internal/par's token budget arbitrates its kernel width against
// every other in-flight attempt — the gate bounds how many contenders
// exist at once, which is what keeps a burst of jobs from oversubscribing
// memory instead of queueing.
func (s *Server) gatedProcess(j *Job, inner sched.ProcessFunc) sched.ProcessFunc {
	if inner == nil {
		inner = sched.DefaultProcess
	}
	gauge := s.reg.Gauge(MetricInflightFrags)
	return func(f *fragment.Fragment, opt sched.Options) (*hessian.FragmentData, error) {
		if s.fragGate != nil {
			select {
			case s.fragGate <- struct{}{}:
				defer func() { <-s.fragGate }()
			case <-j.cancel:
				return nil, fmt.Errorf("fragment %d: %w", f.ID, sched.ErrCancelled)
			}
		}
		gauge.Add(1)
		defer gauge.Add(-1)
		return inner(f, opt)
	}
}

// runJob executes one job end to end.
func (s *Server) runJob(j *Job) {
	j.mu.Lock()
	if j.state != JobQueued {
		j.mu.Unlock()
		return
	}
	select {
	case <-j.cancel: // cancelled between pop and here
		j.state = JobCancelled
		j.finished = time.Now()
		j.mu.Unlock()
		s.countFinish(JobCancelled)
		s.finalizeJob(j)
		return
	default:
	}
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()

	sum, spec, err := s.execute(j)

	j.mu.Lock()
	j.finished = time.Now()
	if sum != nil {
		sum.ElapsedSeconds = j.finished.Sub(j.started).Seconds()
		j.report = sum
	}
	var final JobState
	switch {
	case err == nil:
		final = JobDone
		j.spectrum = spec
	case isCancelled(err):
		final = JobCancelled
	default:
		final = JobFailed
		j.errMsg = err.Error()
	}
	j.state = final
	run := j.finished.Sub(j.started)
	j.mu.Unlock()
	s.countFinish(final)
	s.finalizeJob(j)
	s.reg.Histogram(MetricJobSeconds, obs.DurationBuckets).Observe(run.Seconds())
}

func isCancelled(err error) bool {
	return err != nil && errors.Is(err, sched.ErrCancelled)
}

// execute runs decomposition, the shared-store scheduler, and (unless
// configured away) assembly + spectrum. It returns the service report
// digest even on failure when one is available.
func (s *Server) execute(j *Job) (*ReportSummary, *SpectrumPayload, error) {
	dec, err := fragment.Decompose(j.sys, s.cfg.Fragment)
	if err != nil {
		return nil, nil, fmt.Errorf("decompose: %w", err)
	}

	opt := sched.DefaultOptions()
	if s.cfg.NumLeaders > 0 {
		opt.NumLeaders = s.cfg.NumLeaders
	}
	if s.cfg.WorkersPerLeader > 0 {
		opt.WorkersPerLeader = s.cfg.WorkersPerLeader
	}
	opt.Job.SkipAlpha = j.req.HessianOnly
	opt.Cancel = j.cancel
	opt.Process = s.gatedProcess(j, s.cfg.Process)
	opt.Cache = sched.CacheOptions{Store: s.cfg.Store, Resume: true}
	opt.Backend = s.cfg.Backend
	jobReg := s.reg.WithLabel("job", j.ID).WithLabel("tenant", j.Tenant)
	opt.Obs = obs.NewScope(nil, jobReg)

	// Cross-job accounting: fingerprint every fragment up front and count
	// the ones whose results already sit in the shared store — work this
	// job inherits from other jobs (or earlier daemon runs). The ledger
	// attributes in-lifetime producers, so hits on a different tenant's
	// work are visible as such. Fingerprinting hashes every fragment's
	// canonical geometry, so it runs off the server mutex (the store has
	// its own lock); s.mu is held only for the ledger lookups.
	keys := make([]store.Key, len(dec.Fragments))
	crossJob, crossTenant := 0, 0
	if s.cfg.Store != nil {
		hit := make([]bool, len(dec.Fragments))
		for i := range dec.Fragments {
			k, _ := store.Fingerprint(&dec.Fragments[i], opt.Job)
			keys[i] = k
			hit[i] = s.cfg.Store.Has(k)
		}
		s.mu.Lock()
		for i, k := range keys {
			if hit[i] {
				crossJob++
				if owner, ok := s.ledger[k]; ok && owner != j.Tenant {
					crossTenant++
				}
			}
		}
		s.mu.Unlock()
	}

	j.mu.Lock()
	j.fragsTotal = len(dec.Fragments)
	j.queueDepth = jobReg.Gauge(obs.MetricQueueDepth)
	j.mu.Unlock()

	var rep *sched.Report
	var spec *SpectrumPayload
	if s.cfg.SkipSpectrum {
		_, rep, err = sched.Run(dec, opt)
	} else {
		ropt := s.cfg.Raman
		j.req.Spectrum.apply(&ropt)
		cfg := core.Config{
			Fragment:    s.cfg.Fragment,
			Sched:       opt,
			Raman:       ropt,
			UseDense:    j.req.Spectrum.Dense,
			RigidCutoff: 50,
		}
		var res *core.Result
		res, err = core.ComputeRamanDecomposed(j.sys, dec, cfg)
		if err == nil {
			rep = res.SchedReport
			if res.Spectrum != nil {
				spec = &SpectrumPayload{Freq: res.Spectrum.Freq, Intensity: res.Spectrum.Intensity}
			}
		}
	}

	// Record what this job contributed to the shared store: any of its
	// keys now present and unowned were first produced under this tenant.
	// Store probes again run off s.mu; the lock covers only the ledger.
	if s.cfg.Store != nil {
		present := make([]bool, len(keys))
		for i, k := range keys {
			present[i] = s.cfg.Store.Has(k)
		}
		s.mu.Lock()
		for i, k := range keys {
			if _, ok := s.ledger[k]; !ok && present[i] {
				s.ledger[k] = j.Tenant
			}
		}
		s.enforceLedgerCapLocked()
		s.mu.Unlock()
	}

	if rep == nil {
		return nil, nil, err
	}
	sum := &ReportSummary{
		Fragments:       len(dec.Fragments),
		CacheHits:       rep.CacheHits,
		CacheMisses:     rep.CacheMisses,
		Resumed:         rep.Resumed,
		Deduped:         rep.Deduped,
		CrossJobHits:    crossJob,
		CrossTenantHits: crossTenant,
		Retries:         rep.Retries,
		Requeues:        rep.Requeues,
		Panics:          rep.Panics,
		Degraded:        rep.Degraded,
	}
	s.reg.Counter(MetricCrossJobHits).Add(int64(crossJob))
	s.reg.Counter(MetricCrossTenantHit).Add(int64(crossTenant))
	return sum, spec, err
}

func (s *Server) countFinish(st JobState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch st {
	case JobDone:
		s.done++
		s.reg.Counter(MetricJobsDone).Inc()
	case JobFailed:
		s.failed++
		s.reg.Counter(MetricJobsFailed).Inc()
	case JobCancelled:
		s.cancelled++
		s.reg.Counter(MetricJobsCancelled).Inc()
	}
}

// Drain performs the graceful shutdown: stop admitting, let the runners
// finish every queued and running job, and — if the grace period expires
// first — cancel whatever is left. It returns nil when the drain was fully
// graceful.
func (s *Server) Drain(grace time.Duration) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() { s.runnerWG.Wait(); close(idle) }()
	select {
	case <-idle:
		return nil
	case <-time.After(grace):
	}

	// Grace expired: cancel queued jobs, then kill running ones.
	s.mu.Lock()
	var stranded []*Job
	for {
		j := s.queue.pop()
		if j == nil {
			break
		}
		stranded = append(stranded, j)
	}
	runningNow := make([]*Job, 0, len(s.running))
	for _, j := range s.running {
		runningNow = append(runningNow, j)
	}
	s.mu.Unlock()
	for _, j := range stranded {
		j.mu.Lock()
		j.state = JobCancelled
		j.finished = time.Now()
		j.mu.Unlock()
		j.Cancel()
		s.countFinish(JobCancelled)
		s.finalizeJob(j)
	}
	for _, j := range runningNow {
		j.Cancel()
	}
	<-idle
	return fmt.Errorf("serve: drain grace period expired; cancelled %d queued and %d running jobs",
		len(stranded), len(runningNow))
}

// Close force-stops the runner pool without waiting for queued work. Jobs
// already running are cancelled.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	for _, j := range s.running {
		j.Cancel()
	}
	s.mu.Unlock()
	s.runnerWG.Wait()
}

// DaemonStatus is the wire form of GET /status.
type DaemonStatus struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
	Runners       int     `json:"runners"`
	QueueDepth    int     `json:"queue_depth"`
	// Running is a count, not a job-ID list: IDs are per-submitter
	// capabilities and must not be enumerable through /status.
	Running int            `json:"running"`
	Tenants []TenantStatus `json:"tenants"`

	JobsSubmitted int64 `json:"jobs_submitted"`
	JobsDone      int64 `json:"jobs_done"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsCancelled int64 `json:"jobs_cancelled"`
	JobsRejected  int64 `json:"jobs_rejected"`

	Store *StoreStatus `json:"store,omitempty"`
}

// StoreStatus summarizes the shared store for /status.
type StoreStatus struct {
	Objects    int     `json:"objects"`
	Logical    int     `json:"logical"`
	DedupRatio float64 `json:"dedup_ratio"`
	Bytes      int64   `json:"bytes"`
}

func (s *Server) statusSnapshot() DaemonStatus {
	s.mu.Lock()
	ds := DaemonStatus{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Draining:      s.draining,
		Runners:       s.cfg.Runners,
		QueueDepth:    s.queue.depth(),
		Running:       len(s.running),
		Tenants:       s.queue.depths(),
		JobsSubmitted: s.submitted,
		JobsDone:      s.done,
		JobsFailed:    s.failed,
		JobsCancelled: s.cancelled,
		JobsRejected:  s.rejected,
	}
	s.mu.Unlock()
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		ds.Store = &StoreStatus{Objects: st.Objects, Logical: st.Logical, DedupRatio: st.DedupRatio, Bytes: st.Bytes}
	}
	return ds
}

// Handler returns the daemon's HTTP surface:
//
//	POST   /jobs      submit (202, or 400/413/429/503)
//	GET    /jobs/{id} job status; ?spectrum=1 includes the spectrum arrays
//	DELETE /jobs/{id} cancel
//
// Job IDs are unguessable capabilities returned only to the submitter.
// When a request presents a tenant identity (X-Tenant header or ?tenant=,
// typically injected by an authenticating front proxy), it must match the
// job's owner; mismatches 404 like unknown IDs.
//
//	GET    /status    daemon + tenant + store summary
//	GET    /metrics   text metrics dump (labeled per-job series included)
//	GET    /healthz   liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	return mux
}

// SubmitResponse is the wire form of a successful POST /jobs.
type SubmitResponse struct {
	ID         string   `json:"id"`
	State      JobState `json:"state"`
	QueueDepth int      `json:"queue_depth"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxTextBytes)+4096))
	if err != nil {
		// Only the byte-limit breach is 413; an aborted upload or other
		// read error is the client's 400, not an admission rejection.
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.reject(w, http.StatusRequestEntityTooLarge, "request body too large", "too_large")
		} else {
			s.reject(w, http.StatusBadRequest, "failed to read request body", "read_error")
		}
		return
	}
	lim := Limits{MaxAtoms: s.cfg.MaxAtomsPerJob, MaxTextBytes: s.cfg.MaxTextBytes}
	req, err := ParseSubmitRequest(body, lim)
	if err != nil {
		s.rejectErr(w, err)
		return
	}
	sys, err := req.System.Build(lim)
	if err != nil {
		s.rejectErr(w, err)
		return
	}
	j, err := s.Submit(req, sys)
	if err != nil {
		s.rejectErr(w, err)
		return
	}
	s.mu.Lock()
	depth := s.queue.depth()
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: j.ID, State: JobQueued, QueueDepth: depth})
}

// rejectErr maps a submit error to its status code. 429 responses carry
// Retry-After so well-behaved clients back off instead of hammering.
func (s *Server) rejectErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds()+0.999)))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrTooLarge):
		s.reject(w, http.StatusRequestEntityTooLarge, err.Error(), "too_large")
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds()+0.999)))
		s.reject(w, http.StatusServiceUnavailable, err.Error(), "draining")
	default:
		s.reject(w, http.StatusBadRequest, err.Error(), "invalid")
	}
}

func (s *Server) reject(w http.ResponseWriter, code int, msg, reason string) {
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
	s.reg.WithLabel("reason", reason).Counter(MetricJobsRejected).Inc()
	writeJSON(w, code, errorResponse{Error: msg})
}

// requesterTenant is the caller identity an authenticating front proxy
// injects (X-Tenant header, or ?tenant= for curl-grade clients). Job IDs
// are already unguessable capabilities; when a deployment authenticates
// tenants at the edge, this adds hard scoping on top — a presented
// identity must own the job.
func requesterTenant(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return r.URL.Query().Get("tenant")
}

// authorizedJob resolves {id} under the tenant scope. A mismatch is
// reported exactly like an unknown ID so the endpoint is not an existence
// oracle for other tenants' jobs.
func (s *Server) authorizedJob(r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		return nil, false
	}
	if t := requesterTenant(r); t != "" && t != j.Tenant {
		return nil, false
	}
	return j, true
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.authorizedJob(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	withSpectrum := r.URL.Query().Get("spectrum") == "1"
	writeJSON(w, http.StatusOK, j.status(withSpectrum))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.authorizedJob(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	if !s.CancelJob(j.ID) {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status(false))
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.statusSnapshot())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.reg.Snapshot().WriteText(w)
}
