package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"qframan/internal/fragment"
	"qframan/internal/hessian"
	"qframan/internal/linalg"
	"qframan/internal/sched"
	"qframan/internal/store"
)

// fakeData is a deterministic, correctly-sized synthetic payload: a
// symmetric 3N×3N Hessian whose entries depend only on the index pattern,
// so identical-geometry fragments produce identical data (consistent with
// dedup) and the store's canonical-frame roundtrip has real dimensions to
// rotate. (A 1×1 stub would fail every checkpoint Put on non-degenerate
// geometries.)
func fakeData(f *fragment.Fragment) *hessian.FragmentData {
	n := 3 * f.NumAtoms()
	h := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := float64((i*31+j*17)%97) / 97
			h.Set(i, j, v)
			h.Set(j, i, v)
		}
	}
	return &hessian.FragmentData{Hess: h}
}

// fakeEngine is an instant fake Process (requires Config.SkipSpectrum).
func fakeEngine(f *fragment.Fragment, _ sched.Options) (*hessian.FragmentData, error) {
	return fakeData(f), nil
}

// blockingEngine holds every fragment until release closes — or the job is
// cancelled, which the engine honors through opt.Cancel like a well-behaved
// backend — then returns the fake payload.
func blockingEngine(release <-chan struct{}) sched.ProcessFunc {
	return func(f *fragment.Fragment, opt sched.Options) (*hessian.FragmentData, error) {
		select {
		case <-release:
		case <-opt.Cancel:
			return nil, sched.ErrCancelled
		}
		return fakeData(f), nil
	}
}

// openStore opens a store in a test directory.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// newTestServer builds a server (fake engine unless cfg.Process set and
// SkipSpectrum cleared) plus its httptest frontend.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Process == nil && !cfg.SkipSpectrum {
		cfg.Process = fakeEngine
		cfg.SkipSpectrum = true
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// waterText renders a single-water system in the text structure format with
// O–H bond length d (Å) and the oxygen at (x0, 0, 0). Distinct d values
// produce distinct content-addressed keys; distinct x0 values do NOT (the
// fingerprint is rigid-motion canonical), which several tests rely on.
func waterText(d, x0 float64) string {
	return fmt.Sprintf(
		"ATOM 0 OW O HOH 1 0 %.6f 0 0\nATOM 1 HW1 H HOH 1 0 %.6f 0 0\nATOM 2 HW2 H HOH 1 0 %.6f %.6f 0\n",
		x0, x0+d, x0-0.250380*d, 0.968148*d)
}

// submitBody marshals a SubmitRequest.
func submitBody(t *testing.T, req SubmitRequest) []byte {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// postJob submits over HTTP and returns the response.
func postJob(t *testing.T, ts *httptest.Server, req SubmitRequest) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(submitBody(t, req)))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// submitOK submits and decodes the 202 body.
func submitOK(t *testing.T, ts *httptest.Server, req SubmitRequest) SubmitResponse {
	t.Helper()
	resp := postJob(t, ts, req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e errorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit: status %d (%s)", resp.StatusCode, e.Error)
	}
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// getStatus fetches GET /jobs/{id}.
func getStatus(t *testing.T, ts *httptest.Server, id string, spectrum bool) Status {
	t.Helper()
	url := ts.URL + "/jobs/" + id
	if spectrum {
		url += "?spectrum=1"
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: status %d", id, resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls until the job reaches a terminal state and returns it.
func waitState(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getStatus(t, ts, id, false)
		switch st.State {
		case JobDone, JobFailed, JobCancelled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q after %v", id, st.State, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
