package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"qframan/internal/fragment"
	"qframan/internal/hessian"
	"qframan/internal/sched"
)

// victimX is the x-offset marking a sabotage tenant's geometry: the chaos
// engine recognizes its fragments by position and holds them hostage until
// their job is cancelled.
const victimX = 500.0

// chaosEngine delegates to the real SCF+DFPT engine, except fragments at
// the victim offset block until their job's cancel handle closes — a
// deterministic way to catch a job mid-run.
func chaosEngine(f *fragment.Fragment, opt sched.Options) (*hessian.FragmentData, error) {
	if len(f.Pos) > 0 && f.Pos[0].X > victimX/2 {
		<-opt.Cancel
		return nil, fmt.Errorf("fragment %d: backend torn down: %w", f.ID, sched.ErrCancelled)
	}
	return sched.DefaultProcess(f, opt)
}

// chaosConfig runs the real engine (spectra on, dense solver via the
// requests) over a shared store.
func chaosConfig(t *testing.T) Config {
	return Config{
		Store:            openStore(t, t.TempDir()),
		Runners:          3,
		NumLeaders:       1,
		WorkersPerLeader: 1,
		Process:          chaosEngine,
	}
}

// waterJob submits a single-water text system with O–H bond length d.
func waterJob(tenant string, d, x0 float64) SubmitRequest {
	return SubmitRequest{
		Tenant:   tenant,
		System:   SystemSpec{Kind: "text", Text: waterText(d, x0)},
		Spectrum: SpectrumSpec{Dense: true},
	}
}

// TestChaosKillMidRunSurvivorsBitIdentical is the service-grade chaos
// property: victim jobs are killed while their fragments are mid-engine;
// every other tenant's job must complete, and their spectra must be
// bit-identical to the same submissions against an undisturbed daemon —
// cancellation must not perturb anyone else's numerics, even though all
// jobs share one store and one runner pool.
func TestChaosKillMidRunSurvivorsBitIdentical(t *testing.T) {
	type sub struct {
		tenant string
		d      float64
	}
	survivors := []sub{
		{"alice", 0.95}, {"alice", 0.96},
		{"bob", 0.97}, {"bob", 0.98},
	}

	run := func(withVictims bool) map[string]Status {
		s := New(chaosConfig(t))
		ts := httptest.NewServer(s.Handler())
		defer func() { ts.Close(); s.Close() }()

		var victims []string
		if withVictims {
			for i := 0; i < 2; i++ {
				// Victim geometries sit at the marker offset; rigid-motion
				// canonicalization ignores the offset, so give them distinct
				// bond lengths to also keep distinct store keys.
				sr := submitOK(t, ts, waterJob("mallory", 1.05+0.01*float64(i), victimX))
				victims = append(victims, sr.ID)
			}
		}
		ids := make(map[string]string) // "tenant/d" → job id
		for _, sb := range survivors {
			sr := submitOK(t, ts, waterJob(sb.tenant, sb.d, 0))
			ids[fmt.Sprintf("%s/%.2f", sb.tenant, sb.d)] = sr.ID
		}

		if withVictims {
			// Wait until each victim is actually running (its blocked
			// fragment is in-engine), then kill it mid-run.
			for _, id := range victims {
				deadline := time.Now().Add(10 * time.Second)
				for getStatus(t, ts, id, false).State == JobQueued {
					if time.Now().After(deadline) {
						t.Fatalf("victim %s never started", id)
					}
					time.Sleep(time.Millisecond)
				}
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
			}
			for _, id := range victims {
				if st := waitState(t, ts, id, 20*time.Second); st.State != JobCancelled {
					t.Fatalf("victim %s ended %q, want cancelled", id, st.State)
				}
			}
		}

		out := make(map[string]Status)
		for key, id := range ids {
			st := waitState(t, ts, id, 60*time.Second)
			if st.State != JobDone {
				t.Fatalf("survivor %s (%s) ended %q: %s", key, id, st.State, st.Error)
			}
			out[key] = getStatus(t, ts, id, true)
		}
		return out
	}

	chaotic := run(true)
	clean := run(false)
	for key, want := range clean {
		got := chaotic[key]
		if got.Spectrum == nil || want.Spectrum == nil {
			t.Fatalf("%s: missing spectrum (chaotic %v, clean %v)", key, got.Spectrum != nil, want.Spectrum != nil)
		}
		if len(got.Spectrum.Intensity) != len(want.Spectrum.Intensity) {
			t.Fatalf("%s: spectrum length %d vs %d", key, len(got.Spectrum.Intensity), len(want.Spectrum.Intensity))
		}
		for i := range want.Spectrum.Intensity {
			if got.Spectrum.Intensity[i] != want.Spectrum.Intensity[i] || got.Spectrum.Freq[i] != want.Spectrum.Freq[i] {
				t.Fatalf("%s: spectrum differs at sample %d under chaos: %g vs %g",
					key, i, got.Spectrum.Intensity[i], want.Spectrum.Intensity[i])
			}
		}
	}
}

// TestCrossTenantDedupAccounting is the shared-store payoff and the
// acceptance criterion: a second tenant submitting an overlapping system
// reports cross-job cache hits (dedup > 0), pays no recomputation for the
// shared fragments, and gets a bit-identical spectrum.
func TestCrossTenantDedupAccounting(t *testing.T) {
	cfg := chaosConfig(t)
	cfg.Process = nil // real engine, no sabotage
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	first := submitOK(t, ts, waterJob("alice", 0.96, 0))
	stA := waitState(t, ts, first.ID, 60*time.Second)
	if stA.State != JobDone {
		t.Fatalf("first job: %q (%s)", stA.State, stA.Error)
	}
	if stA.Report.CrossJobHits != 0 {
		t.Fatalf("first job claims %d cross-job hits on an empty store", stA.Report.CrossJobHits)
	}

	// Same geometry bytes: the canonical store key collides and the serve
	// contract (identical submission → bit-identical spectrum) applies. A
	// merely *translated* copy still dedups — the fingerprint is rigid-
	// motion canonical — but its spectrum agrees only to rounding, since
	// the de-canonicalizing rotation is recomputed in the new frame.
	second := submitOK(t, ts, waterJob("bob", 0.96, 0))
	stB := waitState(t, ts, second.ID, 60*time.Second)
	if stB.State != JobDone {
		t.Fatalf("second job: %q (%s)", stB.State, stB.Error)
	}
	rep := stB.Report
	if rep.CacheHits == 0 || rep.CrossJobHits == 0 {
		t.Fatalf("overlapping job reports no dedup: %+v", rep)
	}
	if rep.CrossTenantHits == 0 {
		t.Fatalf("hit on alice's fragment not attributed cross-tenant: %+v", rep)
	}
	if rep.CacheMisses != 0 {
		t.Fatalf("fully-overlapping job recomputed %d fragments", rep.CacheMisses)
	}

	specA := getStatus(t, ts, first.ID, true).Spectrum
	specB := getStatus(t, ts, second.ID, true).Spectrum
	for i := range specA.Intensity {
		if specA.Intensity[i] != specB.Intensity[i] {
			t.Fatalf("cached spectrum differs at sample %d: %g vs %g", i, specA.Intensity[i], specB.Intensity[i])
		}
	}
}
