package serve

import (
	"errors"
	"sort"
)

// Admission rejections. Both map to 429 + Retry-After: the client should
// back off and resubmit, which is how the daemon sheds burst load instead
// of growing the queue until the kernel kills it.
var (
	ErrQueueFull       = errors.New("serve: job queue is full")
	ErrTenantQueueFull = errors.New("serve: tenant queue is full")
)

// tenantQueue holds one tenant's pending jobs plus its fair-share credit.
type tenantQueue struct {
	name   string
	weight int
	credit int
	jobs   []*Job
}

// fairQueue is a smooth weighted round-robin scheduler over tenants with a
// strict-priority, FIFO-within-priority order inside each tenant. It is the
// classic SWRR (nginx upstream balancing): on every pick each backlogged
// tenant gains its weight in credit, the richest tenant is served and pays
// back the total active weight. Over any window where a set of tenants
// stays backlogged, tenant t receives picks proportional to w_t/Σw with
// bounded deviation — a flooding tenant cannot starve a light one beyond
// its weight ratio, which the fairness property test pins.
//
// fairQueue is not self-locking; the Server serializes access under its
// own mutex (the fairness test drives it single-threaded on purpose:
// scheduling order is deterministic given the submission order).
type fairQueue struct {
	weights       map[string]int // configured weights; others get defaultWeight
	defaultWeight int
	maxQueued     int // global admission bound (0 = unbounded)
	maxPerTenant  int // per-tenant admission bound (0 = unbounded)

	tenants map[string]*tenantQueue
	queued  int
	picks   int64 // total pops served, for /status
}

func newFairQueue(weights map[string]int, defaultWeight, maxQueued, maxPerTenant int) *fairQueue {
	if defaultWeight < 1 {
		defaultWeight = 1
	}
	return &fairQueue{
		weights:       weights,
		defaultWeight: defaultWeight,
		maxQueued:     maxQueued,
		maxPerTenant:  maxPerTenant,
		tenants:       make(map[string]*tenantQueue),
	}
}

func (q *fairQueue) weightOf(tenant string) int {
	if w, ok := q.weights[tenant]; ok && w >= 1 {
		return w
	}
	return q.defaultWeight
}

// push admits a job or reports which admission bound it hit.
func (q *fairQueue) push(j *Job) error {
	if q.maxQueued > 0 && q.queued >= q.maxQueued {
		return ErrQueueFull
	}
	tq := q.tenants[j.Tenant]
	if tq == nil {
		tq = &tenantQueue{name: j.Tenant, weight: q.weightOf(j.Tenant)}
		q.tenants[j.Tenant] = tq
	}
	if q.maxPerTenant > 0 && len(tq.jobs) >= q.maxPerTenant {
		return ErrTenantQueueFull
	}
	tq.jobs = append(tq.jobs, j)
	q.queued++
	return nil
}

// pop removes and returns the next job to run, or nil when empty.
func (q *fairQueue) pop() *Job {
	// Deterministic tenant order makes tie-breaks (and the fairness test)
	// reproducible.
	active := make([]*tenantQueue, 0, len(q.tenants))
	total := 0
	for _, tq := range q.tenants {
		if len(tq.jobs) == 0 {
			// An idle tenant banks no credit: fair share is computed over
			// backlogged tenants only, so a tenant cannot hoard turns while
			// submitting nothing and then flood ahead of everyone.
			tq.credit = 0
			continue
		}
		active = append(active, tq)
		total += tq.weight
	}
	if len(active) == 0 {
		return nil
	}
	sort.Slice(active, func(a, b int) bool { return active[a].name < active[b].name })
	var best *tenantQueue
	for _, tq := range active {
		tq.credit += tq.weight
		if best == nil || tq.credit > best.credit {
			best = tq
		}
	}
	best.credit -= total

	// Within the tenant: highest priority first, FIFO (submission seq)
	// within a priority level.
	bi := 0
	for i := 1; i < len(best.jobs); i++ {
		j := best.jobs[i]
		if j.Priority > best.jobs[bi].Priority ||
			(j.Priority == best.jobs[bi].Priority && j.seq < best.jobs[bi].seq) {
			bi = i
		}
	}
	j := best.jobs[bi]
	best.jobs = append(best.jobs[:bi], best.jobs[bi+1:]...)
	q.queued--
	q.picks++
	return j
}

// remove unlinks a still-queued job (cancellation); false if not queued.
func (q *fairQueue) remove(j *Job) bool {
	tq := q.tenants[j.Tenant]
	if tq == nil {
		return false
	}
	for i, qj := range tq.jobs {
		if qj == j {
			tq.jobs = append(tq.jobs[:i], tq.jobs[i+1:]...)
			q.queued--
			return true
		}
	}
	return false
}

func (q *fairQueue) depth() int { return q.queued }

// depths reports per-tenant backlog for /status, sorted by tenant name.
func (q *fairQueue) depths() []TenantStatus {
	out := make([]TenantStatus, 0, len(q.tenants))
	for _, tq := range q.tenants {
		out = append(out, TenantStatus{Tenant: tq.name, Weight: tq.weight, Queued: len(tq.jobs)})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Tenant < out[b].Tenant })
	return out
}

// TenantStatus is one tenant's row in GET /status.
type TenantStatus struct {
	Tenant string `json:"tenant"`
	Weight int    `json:"weight"`
	Queued int    `json:"queued"`
}
