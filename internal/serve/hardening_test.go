package serve

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestValidateRejectsOverflowingDims pins the admission overflow fix:
// dimensions chosen so the atom-count product wraps int64 back into the
// accepted range must still be rejected (the original multiply-then-compare
// check passed nx=6148914691236517206 because 3·nx wraps to 2).
func TestValidateRejectsOverflowingDims(t *testing.T) {
	lim := Limits{MaxAtoms: 120}
	hostile := []SystemSpec{
		{Kind: "waterbox", NX: 6148914691236517206, NY: 1, NZ: 1}, // 3·nx wraps to 2
		{Kind: "waterbox", NX: 1 << 62, NY: 1, NZ: 1},             // wraps negative
		{Kind: "waterbox", NX: 1, NY: 1 << 62, NZ: 1},
		{Kind: "waterbox", NX: 1, NY: 1, NZ: 1 << 62},
		{Kind: "waterbox", NX: 1 << 31, NY: 1 << 31, NZ: 1 << 31},
		{Kind: "dimers", N: 3074457345618258603}, // 6·N wraps to 2
		{Kind: "dimers", N: 1 << 62},
	}
	for _, spec := range hostile {
		err := spec.validate(lim)
		if err == nil {
			t.Fatalf("spec %+v accepted despite overflowing the size check", spec)
		}
		if !errors.Is(err, ErrTooLarge) {
			t.Fatalf("spec %+v rejected with %v, want ErrTooLarge", spec, err)
		}
	}
	// Sanity: in-range specs still pass, including the exact boundary.
	for _, spec := range []SystemSpec{
		{Kind: "waterbox", NX: 2, NY: 2, NZ: 2},  // 24 atoms
		{Kind: "waterbox", NX: 40, NY: 1, NZ: 1}, // exactly 120
		{Kind: "dimers", N: 20},                  // exactly 120
	} {
		if err := spec.validate(lim); err != nil {
			t.Fatalf("in-range spec %+v rejected: %v", spec, err)
		}
	}
	if err := (&SystemSpec{Kind: "waterbox", NX: 41, NY: 1, NZ: 1}).validate(lim); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("one past the boundary: got %v, want ErrTooLarge", err)
	}
}

// TestJobIDsAreUnguessableCapabilities: IDs carry a random suffix (no
// enumeration from j1, j2, …) and a presented tenant identity must own the
// job — a mismatch is indistinguishable from an unknown ID.
func TestJobIDsAreUnguessableCapabilities(t *testing.T) {
	_, ts := newTestServer(t, Config{Runners: 1})
	a := submitOK(t, ts, SubmitRequest{Tenant: "alice", System: SystemSpec{Kind: "dimers", N: 1}})
	b := submitOK(t, ts, SubmitRequest{Tenant: "alice", System: SystemSpec{Kind: "dimers", N: 1}})

	for i, id := range []string{a.ID, b.ID} {
		prefix := fmt.Sprintf("j%d-", i+1)
		if !strings.HasPrefix(id, prefix) || len(id) != len(prefix)+24 {
			t.Fatalf("job ID %q: want %q + 24 hex chars of randomness", id, prefix)
		}
	}
	if a.ID[strings.Index(a.ID, "-"):] == b.ID[strings.Index(b.ID, "-"):] {
		t.Fatalf("two jobs share the random suffix: %q %q", a.ID, b.ID)
	}
	// The bare sequential name must not resolve.
	resp, err := http.Get(ts.URL + "/jobs/j1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /jobs/j1: %d, want 404", resp.StatusCode)
	}
	waitState(t, ts, a.ID, 10*time.Second)

	get := func(hdr, query string) int {
		t.Helper()
		url := ts.URL + "/jobs/" + a.ID + query
		req, _ := http.NewRequest(http.MethodGet, url, nil)
		if hdr != "" {
			req.Header.Set("X-Tenant", hdr)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("mallory", ""); code != http.StatusNotFound {
		t.Fatalf("GET with wrong X-Tenant: %d, want 404", code)
	}
	if code := get("", "?tenant=mallory"); code != http.StatusNotFound {
		t.Fatalf("GET with wrong ?tenant: %d, want 404", code)
	}
	if code := get("alice", ""); code != http.StatusOK {
		t.Fatalf("GET with owning X-Tenant: %d, want 200", code)
	}
	if code := get("", ""); code != http.StatusOK {
		t.Fatalf("GET with no identity (capability access): %d, want 200", code)
	}
	// DELETE under the wrong identity must not cancel.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+a.ID, nil)
	req.Header.Set("X-Tenant", "mallory")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE with wrong X-Tenant: %d, want 404", resp.StatusCode)
	}
}

// TestFinishedJobEviction: terminal jobs drop their inputs immediately and
// only MaxFinishedJobs of them stay queryable — the daemon's job index
// cannot grow without bound under sustained load.
func TestFinishedJobEviction(t *testing.T) {
	srv, ts := newTestServer(t, Config{Runners: 1, MaxFinishedJobs: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		sr := submitOK(t, ts, SubmitRequest{Tenant: "a", System: SystemSpec{Kind: "dimers", N: 1}})
		waitState(t, ts, sr.ID, 10*time.Second)
		ids = append(ids, sr.ID)
	}

	for _, id := range ids[:2] {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("evicted job %s: %d, want 404", id, resp.StatusCode)
		}
	}
	for _, id := range ids[2:] {
		st := getStatus(t, ts, id, false)
		if st.State != JobDone || st.Report == nil {
			t.Fatalf("retained job %s lost its result: %+v", id, st)
		}
	}

	srv.mu.Lock()
	indexed := len(srv.jobs)
	srv.mu.Unlock()
	if indexed != 2 {
		t.Fatalf("job index holds %d jobs, want 2 (retention cap)", indexed)
	}
	j, ok := srv.Job(ids[3])
	if !ok {
		t.Fatal("retained job vanished")
	}
	j.mu.Lock()
	leaked := j.sys != nil || j.req != nil
	j.mu.Unlock()
	if leaked {
		t.Fatal("terminal job still holds its system/request inputs")
	}
}

// TestLedgerBounded: the cross-tenant attribution ledger respects
// MaxLedgerKeys instead of accumulating one entry per distinct fragment
// key forever.
func TestLedgerBounded(t *testing.T) {
	st := openStore(t, t.TempDir())
	srv, ts := newTestServer(t, Config{Runners: 1, Store: st, MaxLedgerKeys: 1})
	for _, d := range []float64{0.95, 0.97, 0.99} { // distinct bond lengths → distinct keys
		sr := submitOK(t, ts, SubmitRequest{
			Tenant: "a",
			System: SystemSpec{Kind: "text", Text: waterText(d, 0)},
		})
		waitState(t, ts, sr.ID, 10*time.Second)
	}
	srv.mu.Lock()
	n := len(srv.ledger)
	srv.mu.Unlock()
	if n > 1 {
		t.Fatalf("ledger holds %d keys, cap is 1", n)
	}
}

// TestSubmitBodyReadErrors: only a genuine byte-limit breach is 413; an
// upload the client aborts mid-body is a 400, and neither is counted as a
// too_large admission rejection for the other's reason.
func TestSubmitBodyReadErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Runners: 1, MaxTextBytes: 1024})

	// Over the MaxBytesReader limit (MaxTextBytes + 4096 slack) → 413.
	big := bytes.Repeat([]byte{'x'}, 8192)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want 413", resp.StatusCode)
	}

	// Truncated upload: Content-Length promises more than is sent, then
	// the write side closes. The server's body read fails without hitting
	// the byte limit → 400, not 413.
	addr := strings.TrimPrefix(ts.URL, "http://")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /jobs HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: 500\r\n\r\n{\"tenant\":", addr)
	conn.(*net.TCPConn).CloseWrite()
	reply := make([]byte, 4096)
	n, err := conn.Read(reply)
	if err != nil && n == 0 {
		t.Fatalf("no response to truncated upload: %v", err)
	}
	status := string(reply[:n])
	if !strings.HasPrefix(status, "HTTP/1.1 400") {
		t.Fatalf("truncated upload: got %q, want HTTP/1.1 400", strings.SplitN(status, "\r\n", 2)[0])
	}
}
