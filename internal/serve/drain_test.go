package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestGracefulDrainFinishesQueuedWork: Drain stops admission (503 +
// Retry-After) but completes every job already accepted — queued and
// running — before returning nil.
func TestGracefulDrainFinishesQueuedWork(t *testing.T) {
	block := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Runners:      1,
		SkipSpectrum: true,
		Process:      blockingEngine(block),
	})
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, submitOK(t, ts, SubmitRequest{Tenant: "t", System: SystemSpec{Kind: "dimers", N: 1}}).ID)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(time.Minute) }()

	// Admission must close promptly even while jobs are still blocked.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post(ts.URL+"/jobs", "application/json",
			strings.NewReader(`{"tenant":"t","system":{"kind":"dimers","n":1}}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		code := resp.StatusCode
		retryAfter := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			if retryAfter == "" {
				t.Fatal("503 during drain lacks Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submissions still accepted (status %d) after drain started", code)
		}
		time.Sleep(time.Millisecond)
	}

	close(block) // let the accepted jobs finish
	if err := <-drained; err != nil {
		t.Fatalf("graceful drain returned %v", err)
	}
	for _, id := range ids {
		if st := getStatus(t, ts, id, false); st.State != JobDone {
			t.Fatalf("job %s ended %q after graceful drain, want done", id, st.State)
		}
	}
}

// TestDrainGraceExpiryCancelsStragglers: when the grace period lapses,
// Drain cancels queued and running jobs, reports the forced shutdown, and
// still returns with the pool stopped.
func TestDrainGraceExpiryCancelsStragglers(t *testing.T) {
	block := make(chan struct{}) // never closed: jobs hang until cancelled
	defer close(block)
	s, ts := newTestServer(t, Config{
		Runners:      1,
		SkipSpectrum: true,
		Process:      blockingEngine(block),
	})
	running := submitOK(t, ts, SubmitRequest{Tenant: "t", System: SystemSpec{Kind: "dimers", N: 1}})
	queued := submitOK(t, ts, SubmitRequest{Tenant: "t", System: SystemSpec{Kind: "dimers", N: 1}})

	err := s.Drain(50 * time.Millisecond)
	if err == nil {
		t.Fatal("forced drain reported a graceful shutdown")
	}
	for _, id := range []string{running.ID, queued.ID} {
		if st := getStatus(t, ts, id, false); st.State != JobCancelled {
			t.Fatalf("job %s ended %q after forced drain, want cancelled", id, st.State)
		}
	}
}
