package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qframan/internal/fragment"
	"qframan/internal/hessian"
	"qframan/internal/sched"
)

// TestBackpressureBurstGets429: a burst far beyond the queue bound is shed
// with 429 + Retry-After while admitted jobs survive; once the engine
// unblocks, the queue drains completely and capacity is reusable. This is
// the bounded-memory story: reject at the front door instead of queueing
// until the kernel OOM-kills the daemon.
func TestBackpressureBurstGets429(t *testing.T) {
	block := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Runners:            1,
		MaxQueuedJobs:      3,
		MaxQueuedPerTenant: 3,
		RetryAfter:         7 * time.Second,
		SkipSpectrum:       true,
		Process:            blockingEngine(block),
	})

	const burst = 20
	var mu sync.Mutex
	var accepted []string
	rejected := 0
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJob(t, ts, SubmitRequest{Tenant: "burst", System: SystemSpec{Kind: "dimers", N: 1}})
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				var sr SubmitResponse
				json.NewDecoder(resp.Body).Decode(&sr)
				mu.Lock()
				accepted = append(accepted, sr.ID)
				mu.Unlock()
			case http.StatusTooManyRequests:
				if ra := resp.Header.Get("Retry-After"); ra != "7" {
					t.Errorf("429 Retry-After = %q, want \"7\"", ra)
				}
				io.Copy(io.Discard, resp.Body)
				mu.Lock()
				rejected++
				mu.Unlock()
			default:
				t.Errorf("burst submit got status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()

	// At most 1 running + 3 queued can be in the system; everything else
	// must have been shed.
	if len(accepted) < 3 || len(accepted) > 4 {
		t.Fatalf("burst of %d admitted %d jobs with queue bound 3 (+1 running)", burst, len(accepted))
	}
	if rejected != burst-len(accepted) {
		t.Fatalf("accepted %d + rejected %d ≠ burst %d", len(accepted), rejected, burst)
	}

	// Unblock: every admitted job completes, none fails.
	close(block)
	for _, id := range accepted {
		if st := waitState(t, ts, id, 10*time.Second); st.State != JobDone {
			t.Fatalf("admitted job %s ended %q (%s)", id, st.State, st.Error)
		}
	}

	// The queue drained: capacity is available again.
	submitOK(t, ts, SubmitRequest{Tenant: "burst", System: SystemSpec{Kind: "dimers", N: 1}})
	s.mu.Lock()
	depth := s.queue.depth()
	s.mu.Unlock()
	if depth > 1 {
		t.Fatalf("queue depth %d after drain + 1 submit", depth)
	}
}

// TestBackpressurePerTenantBound: one tenant exhausting its own slice
// cannot consume the whole queue — another tenant still gets in.
func TestBackpressurePerTenantBound(t *testing.T) {
	block := make(chan struct{})
	_, ts := newTestServer(t, Config{
		Runners:            1,
		MaxQueuedJobs:      10,
		MaxQueuedPerTenant: 2,
		SkipSpectrum:       true,
		Process:            blockingEngine(block),
	})
	defer close(block)

	// First occupies the runner; two more fill hog's queue slice.
	for i := 0; i < 3; i++ {
		submitOK(t, ts, SubmitRequest{Tenant: "hog", System: SystemSpec{Kind: "dimers", N: 1}})
	}
	resp := postJob(t, ts, SubmitRequest{Tenant: "hog", System: SystemSpec{Kind: "dimers", N: 1}})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("hog's 4th job got %d, want 429", resp.StatusCode)
	}
	// The other tenant is unaffected.
	submitOK(t, ts, SubmitRequest{Tenant: "guest", System: SystemSpec{Kind: "dimers", N: 1}})
}

// TestInflightFragmentGate: across concurrently running jobs, the number
// of fragment attempts inside the engine never exceeds
// MaxInflightFragments — the service-wide valve in front of the kernel
// token budget.
func TestInflightFragmentGate(t *testing.T) {
	const gate = 2
	var inFlight, peak atomic.Int64
	engine := func(f *fragment.Fragment, opt sched.Options) (*hessian.FragmentData, error) {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		return fakeData(f), nil
	}
	_, ts := newTestServer(t, Config{
		Runners:              4,
		NumLeaders:           2,
		MaxInflightFragments: gate,
		SkipSpectrum:         true,
		Process:              engine,
	})
	var ids []string
	for i := 0; i < 4; i++ {
		ids = append(ids, submitOK(t, ts, SubmitRequest{Tenant: "t", System: SystemSpec{Kind: "dimers", N: 3}}).ID)
	}
	for _, id := range ids {
		if st := waitState(t, ts, id, 30*time.Second); st.State != JobDone {
			t.Fatalf("job %s: %q (%s)", id, st.State, st.Error)
		}
	}
	if p := peak.Load(); p > gate {
		t.Fatalf("observed %d concurrent fragment attempts, gate is %d", p, gate)
	}
	if p := peak.Load(); p == 0 {
		t.Fatal("engine never ran")
	}
}
