// Package store is the crash-safe persistence layer of the runtime: a
// versioned, CRC-guarded binary codec for per-fragment results, content-
// addressed keys derived from a canonical fragment fingerprint (species,
// rigid-motion-canonicalized quantized geometry, and the full job options),
// and an append-only write-ahead manifest over atomically renamed record
// files. Together these give the production property the paper's 33.8M-
// fragment runs (§VI-A) need: a run killed at any instant resumes by replaying the
// manifest and recomputing only missing or corrupt fragments, and the
// near-identical water fragments that dominate a solvated system collapse
// onto a single stored record within and across runs.
package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"qframan/internal/hessian"
	"qframan/internal/linalg"
)

// ErrCorrupt marks a record whose bytes fail structural or CRC validation.
// Callers must treat it as "recompute this fragment" — a corrupt checkpoint
// is requeued, never decoded into a silently wrong spectrum.
var ErrCorrupt = errors.New("store: corrupt record")

// ErrVersion marks a record written by a newer codec than this binary
// understands. Like ErrCorrupt it demotes the record to a cache miss.
var ErrVersion = errors.New("store: unsupported record version")

// Codec format v1 (little endian):
//
//	[0:4)  magic "QFST"
//	[4:6)  u16 version
//	[6:)   body —
//	        u8 hasHess;   if set: u32 rows, u32 cols, rows·cols × f64
//	        u8 hasAlpha;  if set: u32 n, 6 × n × f64   (AlphaComponents order)
//	        u8 hasDipole; if set: u32 n, 3 × n × f64
//	[-4:]  u32 CRC-32C over every preceding byte
//
// Floats are stored as their exact IEEE-754 bit patterns, so a roundtrip is
// bit-identical — the property the crash-resume e2e tests assert on whole
// spectra.
const (
	codecMagic   = "QFST"
	codecVersion = 1
)

// crcTable is the Castagnoli polynomial (hardware-accelerated on amd64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Encode serializes fd into a self-validating record. Optional blocks
// (Hessian-only runs, test fakes) must be all-present or all-nil per field
// family; a ragged DAlpha/DDipole is an error.
func Encode(fd *hessian.FragmentData) ([]byte, error) {
	if fd == nil {
		return nil, fmt.Errorf("store: cannot encode nil fragment data")
	}
	hasAlpha, err := allOrNone(fd.DAlpha[:], "DAlpha")
	if err != nil {
		return nil, err
	}
	hasDip, err := allOrNone(fd.DDipole[:], "DDipole")
	if err != nil {
		return nil, err
	}

	size := 4 + 2 + 3 // magic, version, three presence bytes
	if fd.Hess != nil {
		size += 8 + 8*len(fd.Hess.Data)
	}
	if hasAlpha {
		size += 4 + 8*6*len(fd.DAlpha[0])
	}
	if hasDip {
		size += 4 + 8*3*len(fd.DDipole[0])
	}
	size += 4 // CRC

	buf := make([]byte, 0, size)
	buf = append(buf, codecMagic...)
	buf = appendU16(buf, codecVersion)
	if fd.Hess != nil {
		buf = append(buf, 1)
		buf = appendU32(buf, uint32(fd.Hess.Rows))
		buf = appendU32(buf, uint32(fd.Hess.Cols))
		buf = appendF64s(buf, fd.Hess.Data)
	} else {
		buf = append(buf, 0)
	}
	if hasAlpha {
		buf = append(buf, 1)
		buf = appendU32(buf, uint32(len(fd.DAlpha[0])))
		for c := range fd.DAlpha {
			if len(fd.DAlpha[c]) != len(fd.DAlpha[0]) {
				return nil, fmt.Errorf("store: ragged DAlpha component lengths")
			}
			buf = appendF64s(buf, fd.DAlpha[c])
		}
	} else {
		buf = append(buf, 0)
	}
	if hasDip {
		buf = append(buf, 1)
		buf = appendU32(buf, uint32(len(fd.DDipole[0])))
		for k := range fd.DDipole {
			if len(fd.DDipole[k]) != len(fd.DDipole[0]) {
				return nil, fmt.Errorf("store: ragged DDipole component lengths")
			}
			buf = appendF64s(buf, fd.DDipole[k])
		}
	} else {
		buf = append(buf, 0)
	}
	buf = appendU32(buf, crc32.Checksum(buf, crcTable))
	return buf, nil
}

// Decode parses and validates a record. Any truncation, bit flip, or
// structural inconsistency yields ErrCorrupt (ErrVersion for records from a
// future codec); the CRC is verified over the whole record before any field
// is trusted.
func Decode(b []byte) (*hessian.FragmentData, error) {
	if len(b) < 4+2+3+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any record", ErrCorrupt, len(b))
	}
	if string(b[:4]) != codecMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[:4])
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, crcTable) != readU32(tail) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	r := &reader{b: body, off: 4}
	if v := r.u16(); v != codecVersion {
		return nil, fmt.Errorf("%w: record version %d, codec version %d", ErrVersion, v, codecVersion)
	}
	fd := &hessian.FragmentData{}
	if r.u8() != 0 {
		rows, cols := int(r.u32()), int(r.u32())
		if rows < 0 || cols < 0 || !r.fits(8*rows*cols) {
			return nil, fmt.Errorf("%w: Hessian shape %dx%d exceeds record", ErrCorrupt, rows, cols)
		}
		fd.Hess = linalg.NewMatrixFrom(rows, cols, r.f64s(rows*cols))
	}
	if r.u8() != 0 {
		n := int(r.u32())
		if n < 0 || !r.fits(8*6*n) {
			return nil, fmt.Errorf("%w: DAlpha length %d exceeds record", ErrCorrupt, n)
		}
		for c := range fd.DAlpha {
			fd.DAlpha[c] = r.f64s(n)
		}
	}
	if r.u8() != 0 {
		n := int(r.u32())
		if n < 0 || !r.fits(8*3*n) {
			return nil, fmt.Errorf("%w: DDipole length %d exceeds record", ErrCorrupt, n)
		}
		for k := range fd.DDipole {
			fd.DDipole[k] = r.f64s(n)
		}
	}
	if r.bad || r.off != len(body) {
		return nil, fmt.Errorf("%w: record size inconsistent with contents", ErrCorrupt)
	}
	return fd, nil
}

// allOrNone verifies a component family is uniformly present and reports
// whether it is.
func allOrNone(comps [][]float64, name string) (bool, error) {
	present := 0
	for _, c := range comps {
		if c != nil {
			present++
		}
	}
	if present != 0 && present != len(comps) {
		return false, fmt.Errorf("store: %s has %d of %d components", name, present, len(comps))
	}
	return present > 0, nil
}

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v), byte(v>>8)) }

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendF64s(b []byte, xs []float64) []byte {
	for _, x := range xs {
		b = appendU64(b, math.Float64bits(x))
	}
	return b
}

func readU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func readU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// reader is a bounds-checked cursor over a record body; any overrun sets
// bad instead of panicking, so corrupt length fields degrade to ErrCorrupt.
type reader struct {
	b   []byte
	off int
	bad bool
}

func (r *reader) fits(n int) bool { return n >= 0 && !r.bad && len(r.b)-r.off >= n }

func (r *reader) take(n int) []byte {
	if !r.fits(n) {
		r.bad = true
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0]) | uint16(b[1])<<8
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return readU32(b)
}

func (r *reader) f64s(n int) []float64 {
	b := r.take(8 * n)
	if b == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(readU64(b[8*i:]))
	}
	return out
}
