package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"qframan/internal/hessian"
	"qframan/internal/obs"
)

// TestStoreConcurrentMixedGetPut is the multi-reader safety audit behind the
// serving daemon's shared store: N goroutines hammer a small, overlapping
// key set with mixed Get/Put (as concurrent jobs racing on shared water
// fragments do), under -race in CI. Every Get must serve either a clean
// miss or the exact bytes some Put wrote for that key — never a torn read —
// and the physical object count must equal the number of distinct keys.
func TestStoreConcurrentMixedGetPut(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()

	const nKeys = 8
	const workers = 16
	const opsPerWorker = 60

	// One canonical payload per key: concurrent writers of a key always
	// write the same bytes, exactly like dedup-racing jobs, so any valid
	// serve is bit-checkable.
	keys := make([]Key, nKeys)
	frames := make([]Frame, nKeys)
	want := make([]*hessian.FragmentData, nKeys)
	for i := range keys {
		keys[i], frames[i] = flatKey(byte(i+1), 2)
		want[i] = randomData(2, int64(i+100))
	}

	var gets, hits, puts atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for op := 0; op < opsPerWorker; op++ {
				ki := (w*opsPerWorker + op*7) % nKeys
				if (w+op)%3 == 0 {
					rt, err := s.Put(keys[ki], frames[ki], want[ki])
					if err != nil {
						errs <- fmt.Errorf("worker %d put key %d: %w", w, ki, err)
						return
					}
					if !rt.BitEqual(want[ki]) {
						errs <- fmt.Errorf("worker %d: put roundtrip of key %d differs", w, ki)
						return
					}
					puts.Add(1)
					continue
				}
				fd, _, err := s.Get(keys[ki], frames[ki])
				if err != nil {
					errs <- fmt.Errorf("worker %d get key %d: %w", w, ki, err)
					return
				}
				gets.Add(1)
				if fd == nil {
					continue // clean miss: no writer has landed this key yet
				}
				hits.Add(1)
				if !fd.BitEqual(want[ki]) {
					errs <- fmt.Errorf("worker %d: torn/wrong read of key %d", w, ki)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if s.Len() != nKeys {
		t.Fatalf("store holds %d objects for %d distinct keys", s.Len(), nKeys)
	}
	st := s.Stats()
	if st.Objects != nKeys {
		t.Fatalf("stats report %d objects, want %d", st.Objects, nKeys)
	}
	// Dedup accounting must be stable: every put and every hit appended one
	// logical manifest record; misses appended none.
	wantLogical := int(puts.Load() + hits.Load())
	if st.Logical != wantLogical {
		t.Fatalf("logical records %d, want %d (%d puts + %d served gets)",
			st.Logical, wantLogical, puts.Load(), hits.Load())
	}

	// Reopen: the manifest replay must reconstruct the same index.
	s.Close()
	s2 := mustOpen(t, s.Dir())
	defer s2.Close()
	if s2.Len() != nKeys {
		t.Fatalf("replay reconstructed %d objects, want %d", s2.Len(), nKeys)
	}
	for i := range keys {
		fd, prior, err := s2.Get(keys[i], frames[i])
		if err != nil {
			t.Fatal(err)
		}
		if fd == nil || !fd.BitEqual(want[i]) {
			t.Fatalf("key %d lost or corrupted across reopen", i)
		}
		if !prior {
			t.Fatalf("key %d not marked prior after reopen", i)
		}
	}
}

// TestStoreConcurrentSetObs: every scheduler run sharing the store attaches
// its own scope; attachment must be race-free and first-wins while Get/Put
// traffic is in flight.
func TestStoreConcurrentSetObs(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	k, fr := flatKey(1, 2)
	fd := randomData(2, 1)

	regs := make([]*obs.Registry, 4)
	for i := range regs {
		regs[i] = obs.NewRegistry()
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.SetObs(obs.NewScope(nil, regs[i%len(regs)]))
			if _, err := s.Put(k, fr, fd); err != nil {
				t.Error(err)
			}
			if _, _, err := s.Get(k, fr); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	// Exactly one registry owns the latency series and the replay counter.
	owners := 0
	for _, r := range regs {
		snap := r.Snapshot()
		if _, ok := snap.Hists[obs.MetricStoreGetSeconds]; ok {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("store latency series owned by %d registries, want exactly 1", owners)
	}
}

// TestStoreHas: the existence probe tracks puts and evictions without I/O.
func TestStoreHas(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	k, fr := flatKey(7, 2)
	if s.Has(k) {
		t.Fatal("empty store claims the key")
	}
	if _, err := s.Put(k, fr, randomData(2, 3)); err != nil {
		t.Fatal(err)
	}
	if !s.Has(k) {
		t.Fatal("Has misses a freshly put key")
	}
	s.evict(k)
	if s.Has(k) {
		t.Fatal("Has reports an evicted key")
	}
}
