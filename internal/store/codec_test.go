package store

import (
	"errors"
	"math/rand"
	"testing"

	"qframan/internal/hessian"
	"qframan/internal/linalg"
)

// randomData builds a FragmentData for natoms atoms with every block
// populated from the seeded generator — including negative, tiny, and
// denormal-ish values so roundtrips are checked bit-for-bit, not to a
// tolerance.
func randomData(natoms int, seed int64) *hessian.FragmentData {
	rng := rand.New(rand.NewSource(seed))
	n3 := 3 * natoms
	fd := &hessian.FragmentData{Hess: linalg.NewMatrix(n3, n3)}
	for i := 0; i < n3; i++ {
		for j := 0; j < n3; j++ {
			fd.Hess.Set(i, j, (rng.Float64()-0.5)*rng.ExpFloat64())
		}
	}
	for c := range fd.DAlpha {
		fd.DAlpha[c] = make([]float64, n3)
		for i := range fd.DAlpha[c] {
			fd.DAlpha[c][i] = (rng.Float64() - 0.5) * 1e-7
		}
	}
	for k := range fd.DDipole {
		fd.DDipole[k] = make([]float64, n3)
		for i := range fd.DDipole[k] {
			fd.DDipole[k][i] = (rng.Float64() - 0.5) * 1e3
		}
	}
	return fd
}

func TestCodecRoundtripBitExact(t *testing.T) {
	for _, natoms := range []int{1, 3, 6, 17} {
		fd := randomData(natoms, int64(natoms))
		blob, err := Encode(fd)
		if err != nil {
			t.Fatalf("natoms=%d: Encode: %v", natoms, err)
		}
		got, err := Decode(blob)
		if err != nil {
			t.Fatalf("natoms=%d: Decode: %v", natoms, err)
		}
		if !got.BitEqual(fd) {
			t.Fatalf("natoms=%d: roundtrip is not bit-identical", natoms)
		}
	}
}

// TestCodecOptionalBlocks roundtrips every presence pattern: skipped
// polarizability runs store no DAlpha, IR-only paths may drop blocks, and
// absence must roundtrip as absence (nil, not empty).
func TestCodecOptionalBlocks(t *testing.T) {
	full := randomData(2, 9)
	cases := map[string]*hessian.FragmentData{
		"hess-only":    {Hess: full.Hess},
		"no-alpha":     {Hess: full.Hess, DDipole: full.DDipole},
		"no-dipole":    {Hess: full.Hess, DAlpha: full.DAlpha},
		"derivs-only":  {DAlpha: full.DAlpha, DDipole: full.DDipole},
		"empty-record": {},
	}
	for name, fd := range cases {
		blob, err := Encode(fd)
		if err != nil {
			t.Fatalf("%s: Encode: %v", name, err)
		}
		got, err := Decode(blob)
		if err != nil {
			t.Fatalf("%s: Decode: %v", name, err)
		}
		if !got.BitEqual(fd) {
			t.Fatalf("%s: roundtrip changed the data or its presence pattern", name)
		}
	}
}

func TestCodecRejectsRaggedBlocks(t *testing.T) {
	fd := randomData(2, 4)
	fd.DAlpha[3] = fd.DAlpha[3][:5] // ragged: components disagree in length
	if _, err := Encode(fd); err == nil {
		t.Fatal("Encode accepted ragged DAlpha components")
	}
	fd = randomData(2, 4)
	fd.DDipole[1] = nil // partial presence: all-or-none violated
	if _, err := Encode(fd); err == nil {
		t.Fatal("Encode accepted partially present DDipole")
	}
}

// TestCodecTruncation decodes every proper prefix of a valid record: each
// must fail with ErrCorrupt — a torn object write can never decode into
// data, and must never panic.
func TestCodecTruncation(t *testing.T) {
	blob, err := Encode(randomData(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(blob); n++ {
		got, err := Decode(blob[:n])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", n, len(blob))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix of %d bytes: error %v is not ErrCorrupt", n, err)
		}
		if got != nil {
			t.Fatalf("prefix of %d bytes returned data alongside the error", n)
		}
	}
}

// TestCodecBitFlips flips one bit in every byte of a valid record: the CRC
// (or a structural check it guards) must reject each mutation.
func TestCodecBitFlips(t *testing.T) {
	blob, err := Encode(randomData(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	mut := make([]byte, len(blob))
	for i := range blob {
		for _, bit := range []byte{0x01, 0x80} {
			copy(mut, blob)
			mut[i] ^= bit
			got, err := Decode(mut)
			if err == nil {
				t.Fatalf("flip of bit %#x in byte %d decoded successfully", bit, i)
			}
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("flip in byte %d: error %v is neither ErrCorrupt nor ErrVersion", i, err)
			}
			if got != nil {
				t.Fatalf("flip in byte %d returned data alongside the error", i)
			}
		}
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {}, []byte("QFST"), []byte("hello world this is not a record")} {
		if _, err := Decode(b); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Decode(%q): got %v, want ErrCorrupt", b, err)
		}
	}
}

func BenchmarkStoreCodec(b *testing.B) {
	fd := randomData(6, 1) // an 18-dim record: the waterbox pair-fragment size
	blob, err := Encode(fd)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(len(blob)))
		for i := 0; i < b.N; i++ {
			if _, err := Encode(fd); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(len(blob)))
		for i := 0; i < b.N; i++ {
			if _, err := Decode(blob); err != nil {
				b.Fatal(err)
			}
		}
	})
}
