package store

import (
	"errors"
	"testing"

	"qframan/internal/hessian"
)

// FuzzDecodeFragmentRecord throws arbitrary bytes at Decode. The codec's
// contract under corruption is total: every input either decodes into a
// record whose re-encoding is byte-identical, or fails with ErrCorrupt
// (ErrVersion for future-codec records) — never a panic, never a partially
// populated result, and never an allocation larger than the input itself
// (a hostile length field must not turn a 50-byte record into a gigabyte
// of zeroed floats).
func FuzzDecodeFragmentRecord(f *testing.F) {
	// Seed with every presence pattern a real run can write, so mutations
	// start from structurally valid records and explore the boundary
	// between "CRC caught it" and "structure caught it".
	full := randomData(2, 11)
	seeds := []*hessian.FragmentData{
		full,
		randomData(1, 3),
		randomData(6, 5),
		{Hess: full.Hess},
		{DAlpha: full.DAlpha, DDipole: full.DDipole},
		{},
	}
	for _, fd := range seeds {
		blob, err := Encode(fd)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		// A torn tail and a flipped header are the two corruptions the
		// manifest-replay path sees in practice; seed both shapes.
		f.Add(blob[:len(blob)/2])
		head := append([]byte(nil), blob...)
		head[0] ^= 0xff
		f.Add(head)
	}
	f.Add([]byte(nil))
	f.Add([]byte("QFST"))
	f.Add([]byte("QFST\x02\x00\x00\x00\x00\x00\x00\x00\x00")) // future version, bogus CRC

	f.Fuzz(func(t *testing.T, b []byte) {
		fd, err := Decode(b) // must not panic on any input
		if err != nil {
			if fd != nil {
				t.Fatalf("Decode returned data alongside error %v", err)
			}
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("Decode error %v is neither ErrCorrupt nor ErrVersion", err)
			}
			return
		}
		// Success: the decoded payload is bounded by the record that
		// carried it — no length field can inflate past the input.
		floats := 0
		if fd.Hess != nil {
			floats += len(fd.Hess.Data)
		}
		for _, c := range fd.DAlpha {
			floats += len(c)
		}
		for _, k := range fd.DDipole {
			floats += len(k)
		}
		if 8*floats > len(b) {
			t.Fatalf("decoded %d floats (%d bytes) from a %d-byte record", floats, 8*floats, len(b))
		}
		// And it roundtrips semantically: anything Decode accepts must
		// survive Encode∘Decode bit-for-bit. (Byte equality with the input
		// is deliberately not asserted — Decode tolerates any nonzero
		// presence byte while Encode canonically writes 1.)
		blob, err := Encode(fd)
		if err != nil {
			t.Fatalf("re-encoding a decoded record failed: %v", err)
		}
		again, err := Decode(blob)
		if err != nil {
			t.Fatalf("decoding a freshly encoded record failed: %v", err)
		}
		if !again.BitEqual(fd) {
			t.Fatalf("Encode∘Decode changed the record (%d-byte input)", len(b))
		}
	})
}
