package store

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"qframan/internal/geom"
	"qframan/internal/hessian"
	"qframan/internal/linalg"
)

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// flatKey fabricates a key/frame pair for synthetic (non-rotating) records.
func flatKey(id byte, natoms int) (Key, Frame) {
	var k Key
	k[0] = id
	return k, Frame{NAtoms: natoms}
}

func TestStorePutGetRoundtrip(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	fd := randomData(2, 1)
	k, fr := flatKey(1, 2)
	rt, err := s.Put(k, fr, fd)
	if err != nil {
		t.Fatal(err)
	}
	if !rt.BitEqual(fd) {
		t.Fatal("Put's canonical roundtrip differs from the input in a non-rotating frame")
	}
	got, prior, err := s.Get(k, fr)
	if err != nil {
		t.Fatal(err)
	}
	if prior {
		t.Fatal("record written by this run reported as prior")
	}
	if !got.BitEqual(fd) {
		t.Fatal("Get is not bit-identical to Put")
	}
	if _, _, err := s.Get(Key{0xff}, fr); err != nil {
		t.Fatalf("clean miss returned error %v", err)
	}
}

// TestStoreReplayAcrossReopen is the resume property: a second process sees
// the first one's records, marked prior.
func TestStoreReplayAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	fd := randomData(3, 2)
	k, fr := flatKey(2, 3)
	if _, err := s.Put(k, fr, fd); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("reopen indexed %d records, want 1", s2.Len())
	}
	got, prior, err := s2.Get(k, fr)
	if err != nil {
		t.Fatal(err)
	}
	if !prior {
		t.Fatal("prior-run record not marked prior after replay")
	}
	if !got.BitEqual(fd) {
		t.Fatal("replayed record is not bit-identical")
	}
	// Re-putting the key this run re-vouches it: no longer prior.
	if _, err := s2.Put(k, fr, fd); err != nil {
		t.Fatal(err)
	}
	if _, prior, _ := s2.Get(k, fr); prior {
		t.Fatal("re-vouched record still reported as prior")
	}
}

// TestStoreTornManifestTail simulates a crash mid-append: a partial final
// line must not poison the records before it.
func TestStoreTornManifestTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	fd := randomData(1, 3)
	k, fr := flatKey(3, 1)
	if _, err := s.Put(k, fr, fd); err != nil {
		t.Fatal(err)
	}
	s.Close()

	mf, err := os.OpenFile(filepath.Join(dir, manifestName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	mf.WriteString("put 00ab") // torn mid-key
	mf.Close()

	s2 := mustOpen(t, dir)
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("torn tail dropped valid records: indexed %d, want 1", s2.Len())
	}
	if got, _, err := s2.Get(k, fr); err != nil || !got.BitEqual(fd) {
		t.Fatalf("record unreadable after torn tail: %v", err)
	}
}

// TestStoreWALIntentWithoutObject simulates a crash between the manifest
// append and the object rename: the intent line must be dropped on replay so
// the fragment requeues.
func TestStoreWALIntentWithoutObject(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	fd := randomData(1, 4)
	k, fr := flatKey(4, 1)
	if _, err := s.Put(k, fr, fd); err != nil {
		t.Fatal(err)
	}
	var ghost Key
	ghost[0] = 0xee
	s.mu.Lock()
	s.appendLine("put " + ghost.String() + " 3 999") // intent whose object never landed
	s.mu.Unlock()
	s.Close()

	s2 := mustOpen(t, dir)
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("ghost intent survived replay: indexed %d, want 1", s2.Len())
	}
	if got, _, err := s2.Get(ghost, fr); got != nil || err != nil {
		t.Fatalf("ghost key served (%v, %v), want clean miss", got, err)
	}
}

// TestStoreCorruptObjectEvicted: a flipped bit on disk must surface as
// ErrCorrupt exactly once, evict the record, and leave a clean miss — the
// requeue path.
func TestStoreCorruptObjectEvicted(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	defer s.Close()
	fd := randomData(2, 5)
	k, fr := flatKey(5, 2)
	if _, err := s.Put(k, fr, fd); err != nil {
		t.Fatal(err)
	}
	path := s.objectPath(k)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x10
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := s.Get(k, fr); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt record returned %v, want ErrCorrupt", err)
	}
	if got, _, err := s.Get(k, fr); got != nil || err != nil {
		t.Fatalf("after eviction got (%v, %v), want clean miss", got, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt object left on disk")
	}
}

// TestStoreTruncatedObject: replay validates sizes, so a record truncated on
// disk is dropped at open.
func TestStoreTruncatedObject(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	fd := randomData(2, 6)
	k, fr := flatKey(6, 2)
	if _, err := s.Put(k, fr, fd); err != nil {
		t.Fatal(err)
	}
	path := s.objectPath(k)
	s.Close()
	blob, _ := os.ReadFile(path)
	os.WriteFile(path, blob[:len(blob)/3], 0o644)

	s2 := mustOpen(t, dir)
	defer s2.Close()
	if s2.Len() != 0 {
		t.Fatalf("truncated object survived replay validation: %d records", s2.Len())
	}
}

func TestStoreStats(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	for i := 0; i < 3; i++ {
		k, fr := flatKey(byte(10+i), 3)
		if _, err := s.Put(k, fr, randomData(3, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	k0, fr0 := flatKey(10, 3)
	for i := 0; i < 3; i++ { // serves append refs: the dedup numerator
		if _, _, err := s.Get(k0, fr0); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Objects != 3 {
		t.Fatalf("Objects = %d, want 3", st.Objects)
	}
	if st.Logical != 6 {
		t.Fatalf("Logical = %d, want 6 (3 puts + 3 serves)", st.Logical)
	}
	if got, want := st.DedupRatio, 2.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("DedupRatio = %v, want %v", got, want)
	}
	if st.SizeHistogram[3] != 3 {
		t.Fatalf("SizeHistogram = %v, want {3:3}", st.SizeHistogram)
	}
	if n := len(st.SortedSizes()); n != 1 {
		t.Fatalf("SortedSizes has %d entries, want 1", n)
	}
}

// TestFrameRotationRoundtrip: ToCanonical∘FromCanonical must reproduce the
// input to rounding error for a genuinely rotating frame.
func TestFrameRotationRoundtrip(t *testing.T) {
	f := waterFragment()
	_, fr := Fingerprint(f, hessian.DefaultJobOptions())
	if !fr.Rotate {
		t.Fatal("expected rotating frame")
	}
	fd := randomData(3, 11)
	canon, err := fr.ToCanonical(fd)
	if err != nil {
		t.Fatal(err)
	}
	back, err := fr.FromCanonical(canon)
	if err != nil {
		t.Fatal(err)
	}
	checkClose := func(name string, a, b float64) {
		t.Helper()
		if math.Abs(a-b) > 1e-12*(1+math.Abs(b)) {
			t.Fatalf("%s: %v != %v after rotation roundtrip", name, a, b)
		}
	}
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			checkClose("Hess", back.Hess.At(i, j), fd.Hess.At(i, j))
		}
	}
	for c := range fd.DAlpha {
		for i := range fd.DAlpha[c] {
			checkClose("DAlpha", back.DAlpha[c][i], fd.DAlpha[c][i])
		}
	}
	for k := range fd.DDipole {
		for i := range fd.DDipole[k] {
			checkClose("DDipole", back.DDipole[k][i], fd.DDipole[k][i])
		}
	}
}

// TestFrameRejectsMisshapenData: rotating data whose blocks disagree on the
// atom count would corrupt it silently; it must error instead.
func TestFrameRejectsMisshapenData(t *testing.T) {
	f := waterFragment()
	_, fr := Fingerprint(f, hessian.DefaultJobOptions())
	bad := randomData(3, 12)
	bad.DAlpha[0] = bad.DAlpha[0][:6] // 2 atoms' worth against a 3-atom Hessian
	if _, err := fr.ToCanonical(bad); err == nil {
		t.Fatal("mismatched block dimensions accepted for rotation")
	}
	notSquare := &hessian.FragmentData{Hess: linalg.NewMatrix(5, 6)}
	if _, err := fr.ToCanonical(notSquare); err == nil {
		t.Fatal("non-square Hessian accepted for rotation")
	}
}

// TestStoreServesRotatedFragment is the physics property behind cross-copy
// dedup: compute a water with the real engine in one pose, store it, serve
// it for a rigidly rotated copy, and compare against a direct computation of
// the rotated copy. Agreement is limited only by SCF/DFPT convergence and
// grid orientation, not by the frame transforms.
func TestStoreServesRotatedFragment(t *testing.T) {
	if testing.Short() {
		t.Skip("real-engine computation")
	}
	opt := hessian.DefaultJobOptions()
	fa := waterFragment()
	fb := rotated(translated(fa, geom.Vec3{X: 2.5, Y: -1, Z: 0.5}), geom.Vec3{X: 1}, geom.Vec3{X: 1, Y: 2, Z: 0.5}, 0.9)

	ka, fra := Fingerprint(fa, opt)
	kb, frb := Fingerprint(fb, opt)
	if ka != kb {
		t.Fatal("rigid copies do not share a key")
	}

	da, err := hessian.ComputeFragment(fa, opt)
	if err != nil {
		t.Fatal(err)
	}
	db, err := hessian.ComputeFragment(fb, opt)
	if err != nil {
		t.Fatal(err)
	}

	s := mustOpen(t, t.TempDir())
	defer s.Close()
	if _, err := s.Put(ka, fra, da); err != nil {
		t.Fatal(err)
	}
	served, _, err := s.Get(kb, frb)
	if err != nil {
		t.Fatal(err)
	}

	// Scale-relative tolerance: the two direct computations solve on
	// differently oriented grids, so they agree to solver accuracy, not
	// machine epsilon.
	maxAbs := func(m func(i, j int) float64, n int) float64 {
		var a float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a = math.Max(a, math.Abs(m(i, j)))
			}
		}
		return a
	}
	scale := maxAbs(db.Hess.At, 9)
	var worst float64
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			worst = math.Max(worst, math.Abs(served.Hess.At(i, j)-db.Hess.At(i, j)))
		}
	}
	if worst > 1e-3*scale {
		t.Fatalf("served rotated Hessian deviates by %.3g (scale %.3g) from direct computation", worst, scale)
	}
}
