package store

import (
	"fmt"

	"qframan/internal/geom"
	"qframan/internal/hessian"
	"qframan/internal/linalg"
)

// Frame is the rigid motion that carries a fragment's geometry into its
// canonical pose: x' = R·(x − C). Records are stored in the canonical
// frame, which is what lets every rigid copy of a water molecule — the
// paper's solvent boxes are built from randomly *oriented* rigid waters —
// share one record: the key is computed from canonical coordinates, and the
// stored tensors are rotated back into each fragment's own frame on
// retrieval.
type Frame struct {
	// R rotates fragment coordinates into the canonical frame (row-major,
	// orthonormal, det +1 — mirror images get distinct canonical poses and
	// therefore distinct keys).
	R [3][3]float64
	// C is the fragment centroid (Å).
	C geom.Vec3
	// Rotate is false when no well-defined canonical orientation exists
	// (single atoms, collinear geometries) or when the job applies an
	// external field that breaks rotational isotropy; the frame then
	// canonicalizes translation only and R is ignored.
	Rotate bool
	// NAtoms is the fragment's atom count (including cap hydrogens),
	// recorded in the manifest for the store's size histogram.
	NAtoms int
}

// frameEps is the degeneracy threshold (Å) below which an atom displacement
// is too small to define a frame axis. Coordinates are Å-scale and their
// rigid-motion noise is ~1e-15, so 1e-6 separates the two regimes safely.
const frameEps = 1e-6

// frameFor builds the canonical frame of a geometry: origin at the
// centroid, first axis toward the first atom off the centroid, second axis
// toward the first atom off that line, third completing a right-handed
// basis. Identically ordered rigid copies — fragments are always extracted
// in a deterministic atom order — therefore agree on the frame to within
// floating-point noise, which the key quantization absorbs.
func frameFor(pos []geom.Vec3) Frame {
	fr := Frame{NAtoms: len(pos)}
	if len(pos) == 0 {
		return fr
	}
	var c geom.Vec3
	for _, p := range pos {
		c = c.Add(p)
	}
	fr.C = c.Scale(1 / float64(len(pos)))

	var e1 geom.Vec3
	found := false
	for _, p := range pos {
		d := p.Sub(fr.C)
		if d.Norm() > frameEps {
			e1 = d.Normalize()
			found = true
			break
		}
	}
	if !found {
		return fr // all atoms at the centroid: translation-only
	}
	var e2 geom.Vec3
	found = false
	for _, p := range pos {
		d := p.Sub(fr.C)
		perp := d.Sub(e1.Scale(e1.Dot(d)))
		if perp.Norm() > frameEps {
			e2 = perp.Normalize()
			found = true
			break
		}
	}
	if !found {
		return fr // collinear: no rotation-canonical pose, translation-only
	}
	e3 := e1.Cross(e2)
	fr.R = [3][3]float64{
		{e1.X, e1.Y, e1.Z},
		{e2.X, e2.Y, e2.Z},
		{e3.X, e3.Y, e3.Z},
	}
	fr.Rotate = true
	return fr
}

// Apply maps a fragment-frame point into the canonical frame.
func (fr Frame) Apply(p geom.Vec3) geom.Vec3 {
	d := p.Sub(fr.C)
	if !fr.Rotate {
		return d
	}
	return geom.Vec3{
		X: fr.R[0][0]*d.X + fr.R[0][1]*d.Y + fr.R[0][2]*d.Z,
		Y: fr.R[1][0]*d.X + fr.R[1][1]*d.Y + fr.R[1][2]*d.Z,
		Z: fr.R[2][0]*d.X + fr.R[2][1]*d.Y + fr.R[2][2]*d.Z,
	}
}

// ToCanonical rotates fragment-frame result tensors into the canonical
// frame for storage. Translation never enters: every stored quantity is a
// derivative, invariant under rigid translation.
func (fr Frame) ToCanonical(fd *hessian.FragmentData) (*hessian.FragmentData, error) {
	if !fr.Rotate {
		return fd, nil
	}
	return rotateData(fd, fr.R)
}

// FromCanonical rotates stored canonical-frame tensors back into the
// fragment's own frame.
func (fr Frame) FromCanonical(fd *hessian.FragmentData) (*hessian.FragmentData, error) {
	if !fr.Rotate {
		return fd, nil
	}
	return rotateData(fd, transpose(fr.R))
}

func transpose(r [3][3]float64) [3][3]float64 {
	return [3][3]float64{
		{r[0][0], r[1][0], r[2][0]},
		{r[0][1], r[1][1], r[2][1]},
		{r[0][2], r[1][2], r[2][2]},
	}
}

// rotateData returns fd expressed in a frame rotated by R (coordinates
// transform as x' = R x). The Hessian conjugates blockwise (B' = R B Rᵀ),
// the dipole derivatives contract R on both the dipole and coordinate
// indices, and the polarizability derivatives — a symmetric rank-2 tensor
// differentiated by a coordinate — contract R on all three indices.
func rotateData(fd *hessian.FragmentData, R [3][3]float64) (*hessian.FragmentData, error) {
	natoms, err := rotatableAtoms(fd)
	if err != nil {
		return nil, err
	}
	out := &hessian.FragmentData{}
	if fd.Hess != nil {
		out.Hess = linalg.NewMatrix(fd.Hess.Rows, fd.Hess.Cols)
		var blk, tmp [3][3]float64
		for a := 0; a < natoms; a++ {
			for b := 0; b < natoms; b++ {
				for i := 0; i < 3; i++ {
					for j := 0; j < 3; j++ {
						blk[i][j] = fd.Hess.At(3*a+i, 3*b+j)
					}
				}
				// tmp = R·blk, blk' = tmp·Rᵀ.
				for i := 0; i < 3; i++ {
					for j := 0; j < 3; j++ {
						tmp[i][j] = R[i][0]*blk[0][j] + R[i][1]*blk[1][j] + R[i][2]*blk[2][j]
					}
				}
				for i := 0; i < 3; i++ {
					for j := 0; j < 3; j++ {
						out.Hess.Set(3*a+i, 3*b+j,
							tmp[i][0]*R[j][0]+tmp[i][1]*R[j][1]+tmp[i][2]*R[j][2])
					}
				}
			}
		}
	}
	if fd.DDipole[0] != nil {
		for k := range out.DDipole {
			out.DDipole[k] = make([]float64, len(fd.DDipole[k]))
		}
		for a := 0; a < natoms; a++ {
			var g, g2 [3][3]float64 // g[k][d] = ∂μ_k/∂x_{a,d}
			for k := 0; k < 3; k++ {
				for d := 0; d < 3; d++ {
					g[k][d] = fd.DDipole[k][3*a+d]
				}
			}
			for k := 0; k < 3; k++ {
				for d := 0; d < 3; d++ {
					var s float64
					for kk := 0; kk < 3; kk++ {
						for dd := 0; dd < 3; dd++ {
							s += R[k][kk] * R[d][dd] * g[kk][dd]
						}
					}
					g2[k][d] = s
				}
			}
			for k := 0; k < 3; k++ {
				for d := 0; d < 3; d++ {
					out.DDipole[k][3*a+d] = g2[k][d]
				}
			}
		}
	}
	if fd.DAlpha[0] != nil {
		for c := range out.DAlpha {
			out.DAlpha[c] = make([]float64, len(fd.DAlpha[c]))
		}
		for a := 0; a < natoms; a++ {
			// G[i][j][d] = ∂α_ij/∂x_{a,d}, symmetric in (i,j).
			var G, G2 [3][3][3]float64
			for c, ij := range hessian.AlphaComponents {
				for d := 0; d < 3; d++ {
					v := fd.DAlpha[c][3*a+d]
					G[ij[0]][ij[1]][d] = v
					G[ij[1]][ij[0]][d] = v
				}
			}
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					for d := 0; d < 3; d++ {
						var s float64
						for ii := 0; ii < 3; ii++ {
							for jj := 0; jj < 3; jj++ {
								for dd := 0; dd < 3; dd++ {
									s += R[i][ii] * R[j][jj] * R[d][dd] * G[ii][jj][dd]
								}
							}
						}
						G2[i][j][d] = s
					}
				}
			}
			for c, ij := range hessian.AlphaComponents {
				for d := 0; d < 3; d++ {
					out.DAlpha[c][3*a+d] = G2[ij[0]][ij[1]][d]
				}
			}
		}
	}
	return out, nil
}

// rotatableAtoms infers the atom count from the data's dimensions and
// verifies every present block agrees — rotating mis-shaped data would
// corrupt it silently.
func rotatableAtoms(fd *hessian.FragmentData) (int, error) {
	n3 := -1
	if fd.Hess != nil {
		if fd.Hess.Rows != fd.Hess.Cols {
			return 0, fmt.Errorf("store: cannot rotate non-square %dx%d Hessian", fd.Hess.Rows, fd.Hess.Cols)
		}
		n3 = fd.Hess.Rows
	}
	if fd.DAlpha[0] != nil {
		if n3 >= 0 && len(fd.DAlpha[0]) != n3 {
			return 0, fmt.Errorf("store: DAlpha length %d disagrees with Hessian %d", len(fd.DAlpha[0]), n3)
		}
		n3 = len(fd.DAlpha[0])
	}
	if fd.DDipole[0] != nil {
		if n3 >= 0 && len(fd.DDipole[0]) != n3 {
			return 0, fmt.Errorf("store: DDipole length %d disagrees with other blocks %d", len(fd.DDipole[0]), n3)
		}
		n3 = len(fd.DDipole[0])
	}
	if n3 < 0 || n3%3 != 0 {
		return 0, fmt.Errorf("store: data dimensions %d are not 3N", n3)
	}
	return n3 / 3, nil
}
