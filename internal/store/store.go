package store

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qframan/internal/hessian"
	"qframan/internal/obs"
)

// Store is the on-disk checkpoint/cache. Layout:
//
//	<dir>/manifest.log        append-only write-ahead manifest
//	<dir>/objects/<xx>/<key>  CRC-guarded records, content-addressed by Key
//
// Crash-consistency argument: a `put` manifest line is appended *before*
// the record is written, and the record itself lands via temp-file + fsync
// + atomic rename. A crash therefore leaves one of three states, all safe:
// (a) no line, no object — the fragment is simply recomputed; (b) a line
// but a missing/short object — Open's replay validates each line against
// the object and drops it, requeueing the fragment; (c) line and object —
// the record is served after its CRC verifies on read. No state decodes
// into wrong data, and the manifest is pure bookkeeping: a torn tail or a
// lost line degrades to a recomputation, never to corruption.
//
// Concurrency: one Store may be shared by any number of goroutines — and by
// concurrent scheduler runs of a serving daemon. The index and manifest are
// guarded by s.mu; object files commit via atomic rename, so a reader racing
// a writer sees either no file or a complete record, never a torn one (the
// CRC on every Get backstops the filesystem anyway). SetObs may be called
// concurrently by every run sharing the store: the instruments are atomic
// pointers, re-set idempotently.
type Store struct {
	dir string

	mu       sync.Mutex
	manifest *os.File
	idx      map[Key]*entry
	logical  int // put+ref manifest records across all runs
	replayed int // manifest records replayed at Open

	// Latency instruments; nil until SetObs, atomic because concurrent
	// sched runs sharing the store each attach their scope. Nil-safe to
	// observe. obsOnce makes the first attachment win exactly once.
	obsGet  atomic.Pointer[obs.Histogram]
	obsPut  atomic.Pointer[obs.Histogram]
	obsOnce sync.Once
}

// entry is the in-memory index of one object.
type entry struct {
	natoms int
	bytes  int64
	// prior marks objects that existed when the store was opened — the
	// currency of -resume accounting.
	prior bool
	// fresh marks objects written (or overwritten) by this process, whose
	// bytes this run has vouched for.
	fresh bool
	// writing marks an entry whose object commit is still in flight (WAL
	// line appended, rename pending). A Get that misses the file must not
	// evict such an entry — the rename is about to land — or the
	// manifest-repair path could double-count the racing put.
	writing bool
	refs    int
}

const (
	manifestName   = "manifest.log"
	manifestHeader = "qfstore v1"
	objectsDir     = "objects"
)

// Open opens (creating if needed) a store rooted at dir and replays its
// manifest: every `put` line is validated against the object file (present
// and size-exact — full CRC validation happens on each Get, before any
// byte is trusted); lines that fail validation are dropped so their
// fragments requeue. A torn final line — the signature of a mid-append
// crash — ends the replay without error.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, objectsDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, idx: make(map[Key]*entry)}
	if err := s.replay(); err != nil {
		return nil, err
	}
	s.replayed = s.logical
	f, err := os.OpenFile(filepath.Join(dir, manifestName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.manifest = f
	if st, err := f.Stat(); err == nil && st.Size() == 0 {
		fmt.Fprintln(f, manifestHeader)
	}
	return s, nil
}

// Close releases the manifest handle. Records already written stay valid.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.manifest == nil {
		return nil
	}
	err := s.manifest.Close()
	s.manifest = nil
	return err
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetObs attaches metric instruments: Get/Put latency histograms and a
// counter publishing the manifest records replayed at Open. The first scope
// with a registry wins; later calls — every scheduler run sharing the store
// re-attaches its own scope — are no-ops, so a daemon that attaches its
// process-wide registry at startup keeps store latencies on one stable
// series while per-job labeled scopes come and go. Safe to call
// concurrently; a scope without a registry is a no-op.
func (s *Store) SetObs(sc obs.Scope) {
	if sc.R == nil {
		return
	}
	s.obsOnce.Do(func() {
		s.obsGet.Store(sc.R.Histogram(obs.MetricStoreGetSeconds, obs.DurationBuckets))
		s.obsPut.Store(sc.R.Histogram(obs.MetricStorePutSeconds, obs.DurationBuckets))
		sc.R.Counter(obs.MetricStoreReplayRecs).Add(int64(s.replayed))
	})
}

func (s *Store) replay() error {
	f, err := os.Open(filepath.Join(s.dir, manifestName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == manifestHeader || line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "put" && len(fields) == 4:
			k, err := ParseKey(fields[1])
			if err != nil {
				return nil // torn tail: stop replay, later lines are unreachable anyway
			}
			natoms, err1 := strconv.Atoi(fields[2])
			size, err2 := strconv.ParseInt(fields[3], 10, 64)
			if err1 != nil || err2 != nil {
				return nil
			}
			s.logical++
			st, err := os.Stat(s.objectPath(k))
			if err != nil || st.Size() != size {
				// WAL intent whose object write never completed (or was
				// truncated): drop it — the fragment will requeue.
				delete(s.idx, k)
				continue
			}
			if e := s.idx[k]; e != nil {
				e.natoms, e.bytes = natoms, size
			} else {
				s.idx[k] = &entry{natoms: natoms, bytes: size, prior: true}
			}
		case fields[0] == "ref" && len(fields) == 2:
			k, err := ParseKey(fields[1])
			if err != nil {
				return nil
			}
			s.logical++
			if e := s.idx[k]; e != nil {
				e.refs++
			}
		default:
			return nil // unknown or torn record: stop replay
		}
	}
	return nil
}

func (s *Store) objectPath(k Key) string {
	hexk := k.String()
	return filepath.Join(s.dir, objectsDir, hexk[:2], hexk)
}

// appendLine writes one manifest record; callers hold s.mu.
func (s *Store) appendLine(line string) error {
	if s.manifest == nil {
		return fmt.Errorf("store: closed")
	}
	_, err := fmt.Fprintln(s.manifest, line)
	return err
}

// Put checkpoints a fragment result under its key: the data is rotated into
// the canonical frame, encoded, logged to the manifest, and written with
// temp-file + fsync + atomic rename. If another fragment of this run
// already wrote the key (a within-run duplicate racing past the dedup
// election), only a `ref` line is appended. The returned data is the
// result as a subsequent Get would serve it — the canonical roundtrip of
// the input — and callers should use it in place of the input so computed
// and cache-served fragments are bit-identical.
func (s *Store) Put(k Key, fr Frame, fd *hessian.FragmentData) (*hessian.FragmentData, error) {
	if h := s.obsPut.Load(); h != nil {
		defer func(t0 time.Time) { h.ObserveDuration(time.Since(t0)) }(time.Now())
	}
	canon, err := fr.ToCanonical(fd)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if e := s.idx[k]; e != nil && e.fresh {
		e.refs++
		s.logical++
		err := s.appendLine("ref " + k.String())
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return fr.FromCanonical(canon)
	}
	s.mu.Unlock()

	blob, err := Encode(canon)
	if err != nil {
		return nil, err
	}
	// The index entry is registered in the same critical section as the
	// manifest append, *before* the object write: once the renamed object is
	// visible to a concurrent Get, the index already knows the key, so the
	// manifest-repair ("adoption") path in Get can never double-count a
	// result that a racing Put is in the middle of committing. A Get landing
	// inside the write window sees entry-without-object and degrades to a
	// clean miss, exactly like a crash between the WAL line and the rename.
	if err := s.registerPut(k, fr.NAtoms, int64(len(blob))); err != nil {
		return nil, err
	}
	if err := s.commitObject(k, blob); err != nil {
		return nil, err
	}
	return fr.FromCanonical(canon)
}

// registerPut appends the WAL line of one put and registers its index entry
// atomically with respect to every other index reader, with the write-in-
// flight marker set; commitObject clears it once the rename lands.
func (s *Store) registerPut(k Key, natoms int, size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logical++
	if err := s.appendLine(fmt.Sprintf("put %s %d %d", k.String(), natoms, size)); err != nil {
		return err
	}
	prior := false
	if e := s.idx[k]; e != nil {
		prior = e.prior
	}
	s.idx[k] = &entry{natoms: natoms, bytes: size, prior: prior, fresh: true, writing: true}
	return nil
}

// commitObject writes the object and clears the entry's in-flight marker
// whether or not the write succeeded (a failed write leaves an entry whose
// next Get degrades to an evicting miss — the crash-consistency state (b)).
func (s *Store) commitObject(k Key, blob []byte) error {
	err := s.writeObject(k, blob)
	s.mu.Lock()
	if e := s.idx[k]; e != nil {
		e.writing = false
	}
	s.mu.Unlock()
	return err
}

// writeObject lands a record atomically: temp file in the objects tree,
// fsync, rename. The rename is the commit point.
func (s *Store) writeObject(k Key, blob []byte) error {
	path := s.objectPath(k)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(blob); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Get serves a fragment result from the store, rotated into the caller's
// frame. A clean miss returns (nil, false, nil). A record that fails CRC or
// structural validation is evicted and reported as ErrCorrupt so the caller
// requeues the fragment — corruption is never served. The prior flag
// reports that the record was produced by an earlier run (and not
// re-vouched by this one): resume accounting.
func (s *Store) Get(k Key, fr Frame) (*hessian.FragmentData, bool, error) {
	if h := s.obsGet.Load(); h != nil {
		defer func(t0 time.Time) { h.ObserveDuration(time.Since(t0)) }(time.Now())
	}
	s.mu.Lock()
	e, ok := s.idx[k]
	var prior bool
	if ok {
		prior = e.prior && !e.fresh
	}
	s.mu.Unlock()

	blob, err := os.ReadFile(s.objectPath(k))
	if os.IsNotExist(err) {
		if ok {
			s.evictMissing(k)
		}
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	if !ok {
		// The object exists but the manifest lost it (crash before the
		// line was durable, or an external copy): adopt it as prior after
		// it validates below, and repair the manifest.
		prior = true
	}
	canon, err := Decode(blob)
	if err != nil {
		s.evict(k)
		os.Remove(s.objectPath(k))
		return nil, false, err
	}
	if !ok {
		s.mu.Lock()
		if _, again := s.idx[k]; !again {
			s.idx[k] = &entry{natoms: fr.NAtoms, bytes: int64(len(blob)), prior: true}
			s.logical++
			s.appendLine(fmt.Sprintf("put %s %d %d", k.String(), fr.NAtoms, len(blob)))
		}
		s.mu.Unlock()
	}
	fd, err := fr.FromCanonical(canon)
	if err != nil {
		return nil, false, err
	}
	// Record the serve as a ref so the manifest tallies every logical
	// result the store backed — the numerator of the dedup ratio.
	// Best-effort bookkeeping: a failed append changes no data.
	s.mu.Lock()
	if s.manifest != nil {
		s.logical++
		if e := s.idx[k]; e != nil {
			e.refs++
		}
		s.appendLine("ref " + k.String())
	}
	s.mu.Unlock()
	return fd, prior, nil
}

// GetRaw serves the validated canonical record bytes for k — the peer-fetch
// path of the cluster's tiered cache (DESIGN.md §9): record blobs travel
// CRC-guarded end to end between worker-local stores and the coordinator
// store without a decode/re-encode at each hop. The blob is fully validated
// (magic, CRC, structure) before it is returned; a corrupt object is evicted
// and reported as ErrCorrupt exactly like Get. A clean miss returns
// (nil, false, nil). No ref line is appended: a raw read is peer transport,
// not a logical fragment completion.
func (s *Store) GetRaw(k Key) ([]byte, bool, error) {
	s.mu.Lock()
	_, ok := s.idx[k]
	s.mu.Unlock()
	blob, err := os.ReadFile(s.objectPath(k))
	if os.IsNotExist(err) {
		if ok {
			s.evictMissing(k)
		}
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	if _, err := Decode(blob); err != nil {
		s.evict(k)
		os.Remove(s.objectPath(k))
		return nil, false, err
	}
	return blob, true, nil
}

// PutRaw lands a canonical record blob received from a peer under its key:
// the blob is validated (magic, CRC, structure) before anything is written,
// then committed with the same manifest-line + temp-file + fsync + rename
// discipline as Put. natoms feeds the manifest's size histogram. Unlike Put
// no frame rotation happens — the blob is already in the canonical frame.
func (s *Store) PutRaw(k Key, natoms int, blob []byte) error {
	fd, err := Decode(blob)
	if err != nil {
		return err
	}
	if fd.NumAtoms() != natoms {
		return fmt.Errorf("%w: blob holds %d atoms, manifest claim is %d", ErrCorrupt, fd.NumAtoms(), natoms)
	}
	s.mu.Lock()
	if e := s.idx[k]; e != nil && e.fresh {
		// Already vouched for by this process: record the logical serve only.
		e.refs++
		s.logical++
		err := s.appendLine("ref " + k.String())
		s.mu.Unlock()
		return err
	}
	s.mu.Unlock()
	if err := s.registerPut(k, natoms, int64(len(blob))); err != nil {
		return err
	}
	return s.commitObject(k, blob)
}

func (s *Store) evict(k Key) {
	s.mu.Lock()
	delete(s.idx, k)
	s.mu.Unlock()
}

// evictMissing drops an index entry whose object file is absent — unless the
// entry's object commit is still in flight (the racing put's rename is about
// to make the file appear, so the miss is transient, not damage).
func (s *Store) evictMissing(k Key) {
	s.mu.Lock()
	if e := s.idx[k]; e != nil && !e.writing {
		delete(s.idx, k)
	}
	s.mu.Unlock()
}

// Len returns the number of valid objects currently indexed.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx)
}

// Has reports whether an object for k is currently indexed — a cheap
// existence probe (no I/O, no CRC) that a serving frontend uses for
// cross-job dedup accounting before dispatch. The authoritative check stays
// with Get, which validates the record's bytes.
func (s *Store) Has(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idx[k] != nil
}

// Stats summarizes store contents for tooling (qfstats -store).
type Stats struct {
	// Objects and Bytes count the physical content-addressed records.
	Objects int
	Bytes   int64
	// Logical counts the results recorded across all runs (manifest put +
	// ref lines): every fragment completion that was backed by the store.
	Logical int
	// DedupRatio is Logical/Objects — how many fragment results each
	// stored record serves on average.
	DedupRatio float64
	// SizeHistogram counts objects by fragment atom count (caps included).
	SizeHistogram map[int]int
}

// Stats computes the current store statistics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Logical: s.logical, SizeHistogram: make(map[int]int)}
	for _, e := range s.idx {
		st.Objects++
		st.Bytes += e.bytes
		st.SizeHistogram[e.natoms]++
	}
	if st.Objects > 0 {
		st.DedupRatio = float64(st.Logical) / float64(st.Objects)
	}
	return st
}

// SortedSizes returns the histogram's atom counts in ascending order, for
// deterministic printing.
func (st Stats) SortedSizes() []int {
	sizes := make([]int, 0, len(st.SizeHistogram))
	for n := range st.SizeHistogram {
		sizes = append(sizes, n)
	}
	sort.Ints(sizes)
	return sizes
}
