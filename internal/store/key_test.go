package store

import (
	"math"
	"testing"

	"qframan/internal/constants"
	"qframan/internal/fragment"
	"qframan/internal/geom"
	"qframan/internal/hessian"
)

// waterFragment is a bent 3-atom water in an arbitrary pose.
func waterFragment() *fragment.Fragment {
	return &fragment.Fragment{
		ID:   7,
		Els:  []constants.Element{constants.O, constants.H, constants.H},
		Pos:  []geom.Vec3{{X: 0.1, Y: -0.2, Z: 0.3}, {X: 1.06, Y: -0.2, Z: 0.3}, {X: -0.14, Y: 0.73, Z: 0.3}},
		Kind: fragment.KindWater,
	}
}

// chiralFragment is a 4-atom geometry with no mirror symmetry.
func chiralFragment() *fragment.Fragment {
	return &fragment.Fragment{
		Els: []constants.Element{constants.C, constants.H, constants.N, constants.O},
		Pos: []geom.Vec3{{}, {X: 1.1}, {Y: 1.3}, {X: 0.2, Y: 0.4, Z: 1.5}},
	}
}

func translated(f *fragment.Fragment, d geom.Vec3) *fragment.Fragment {
	g := *f
	g.Pos = make([]geom.Vec3, len(f.Pos))
	for i, p := range f.Pos {
		g.Pos[i] = p.Add(d)
	}
	return &g
}

func rotated(f *fragment.Fragment, o, axis geom.Vec3, theta float64) *fragment.Fragment {
	g := *f
	g.Pos = make([]geom.Vec3, len(f.Pos))
	for i, p := range f.Pos {
		g.Pos[i] = geom.RotateAbout(p, o, axis, theta)
	}
	return &g
}

func mirrored(f *fragment.Fragment) *fragment.Fragment {
	g := *f
	g.Pos = make([]geom.Vec3, len(f.Pos))
	for i, p := range f.Pos {
		g.Pos[i] = geom.Vec3{X: p.X, Y: p.Y, Z: -p.Z}
	}
	return &g
}

// TestKeyRigidMotionInvariance is the dedup property: rigid copies of one
// molecule — the paper's randomly oriented box waters — share one key.
func TestKeyRigidMotionInvariance(t *testing.T) {
	f := waterFragment()
	opt := hessian.DefaultJobOptions()
	k0, fr0 := Fingerprint(f, opt)
	if !fr0.Rotate {
		t.Fatal("bent water should get a rotation-canonical frame")
	}
	if k1, _ := Fingerprint(translated(f, geom.Vec3{X: 5.5, Y: -17, Z: 3.25}), opt); k1 != k0 {
		t.Error("translation changed the key")
	}
	if k2, _ := Fingerprint(rotated(f, geom.Vec3{X: 1, Y: 2, Z: 3}, geom.Vec3{X: 1, Y: 1, Z: -2}, 1.1), opt); k2 != k0 {
		t.Error("rotation changed the key")
	}
	combo := rotated(translated(f, geom.Vec3{X: -8, Z: 2}), geom.Vec3{}, geom.Vec3{Y: 1}, 2.7)
	if k3, _ := Fingerprint(combo, opt); k3 != k0 {
		t.Error("combined rigid motion changed the key")
	}
	// Fragment bookkeeping never enters the fingerprint.
	g := *f
	g.ID, g.Coeff, g.Kind = 99, -1, fragment.KindMonoWW
	if k4, _ := Fingerprint(&g, opt); k4 != k0 {
		t.Error("fragment identity (ID/Coeff/Kind) changed the key")
	}
}

// TestKeyDiscriminates: anything that changes the physics must change the
// key — geometry beyond the quantum, species, chirality, and every solver
// knob. A cross-hit here would serve wrong data silently.
func TestKeyDiscriminates(t *testing.T) {
	f := waterFragment()
	opt := hessian.DefaultJobOptions()
	k0, _ := Fingerprint(f, opt)

	stretched := translated(f, geom.Vec3{})
	stretched.Pos[1].X += 1e-3 // ≈ half a displacement step: a real geometry change
	if k, _ := Fingerprint(stretched, opt); k == k0 {
		t.Error("stretched geometry kept the key")
	}
	heavy := translated(f, geom.Vec3{})
	heavy.Els = []constants.Element{constants.S, constants.H, constants.H}
	if k, _ := Fingerprint(heavy, opt); k == k0 {
		t.Error("species change kept the key")
	}

	c := chiralFragment()
	kc, _ := Fingerprint(c, opt)
	if km, _ := Fingerprint(mirrored(c), opt); km == kc {
		t.Error("mirror image of a chiral fragment kept the key")
	}

	// Every physics knob of JobOptions must move the key (key-isolation:
	// a store populated at one setting never serves another).
	knobs := map[string]func(*hessian.JobOptions){
		"Step":              func(o *hessian.JobOptions) { o.Step *= 2 },
		"SkipAlpha":         func(o *hessian.JobOptions) { o.SkipAlpha = !o.SkipAlpha },
		"SCF.Tol":           func(o *hessian.JobOptions) { o.SCF.Tol *= 10 },
		"SCF.MaxIter":       func(o *hessian.JobOptions) { o.SCF.MaxIter++ },
		"SCF.Mixing":        func(o *hessian.JobOptions) { o.SCF.Mixing += 0.01 },
		"SCF.Smearing":      func(o *hessian.JobOptions) { o.SCF.Smearing += 0.001 },
		"SCF.Field":         func(o *hessian.JobOptions) { o.SCF.Field.Z = 1e-4 },
		"DFPT.Tol":          func(o *hessian.JobOptions) { o.DFPT.Tol *= 10 },
		"DFPT.MaxIter":      func(o *hessian.JobOptions) { o.DFPT.MaxIter++ },
		"DFPT.Mixing":       func(o *hessian.JobOptions) { o.DFPT.Mixing += 0.01 },
		"DFPT.Coulomb":      func(o *hessian.JobOptions) { o.DFPT.Coulomb++ },
		"DFPT.GridSpacing":  func(o *hessian.JobOptions) { o.DFPT.GridSpacing *= 1.5 },
		"DFPT.GridMargin":   func(o *hessian.JobOptions) { o.DFPT.GridMargin += 0.5 },
		"DFPT.BatchSide":    func(o *hessian.JobOptions) { o.DFPT.BatchSide++ },
		"DFPT.StrengthRed.": func(o *hessian.JobOptions) { o.DFPT.StrengthReduction = !o.DFPT.StrengthReduction },
	}
	for name, mutate := range knobs {
		o := hessian.DefaultJobOptions()
		mutate(&o)
		if k, _ := Fingerprint(f, o); k == k0 {
			t.Errorf("JobOptions knob %s kept the key", name)
		}
	}
}

// TestKeyFieldDisablesRotation: an external field breaks isotropy, so
// rotated copies must stop sharing keys (translation dedup still works).
func TestKeyFieldDisablesRotation(t *testing.T) {
	f := waterFragment()
	opt := hessian.DefaultJobOptions()
	opt.SCF.Field = geom.Vec3{Z: 1e-4}
	k0, fr := Fingerprint(f, opt)
	if fr.Rotate {
		t.Fatal("field run kept a rotation-canonical frame")
	}
	if k, _ := Fingerprint(rotated(f, geom.Vec3{}, geom.Vec3{X: 1}, math.Pi/3), opt); k == k0 {
		t.Error("rotated copy kept the key under an external field")
	}
	if k, _ := Fingerprint(translated(f, geom.Vec3{X: 4}), opt); k != k0 {
		t.Error("translated copy lost the key under an external field")
	}
}

// TestKeyDegenerateGeometries: single atoms and collinear chains have no
// canonical orientation; they still fingerprint (translation-only) and
// distinct chains stay distinct.
func TestKeyDegenerateGeometries(t *testing.T) {
	single := &fragment.Fragment{Els: []constants.Element{constants.O}, Pos: []geom.Vec3{{X: 3}}}
	k1, fr1 := Fingerprint(single, hessian.DefaultJobOptions())
	if fr1.Rotate {
		t.Fatal("single atom got a rotation frame")
	}
	k2, _ := Fingerprint(translated(single, geom.Vec3{Y: 9}), hessian.DefaultJobOptions())
	if k1 != k2 {
		t.Error("translated single atom lost the key")
	}
	chain := &fragment.Fragment{
		Els: []constants.Element{constants.H, constants.H, constants.H},
		Pos: []geom.Vec3{{}, {X: 1}, {X: 2}},
	}
	longer := &fragment.Fragment{
		Els: []constants.Element{constants.H, constants.H, constants.H},
		Pos: []geom.Vec3{{}, {X: 1}, {X: 2.5}},
	}
	kc, frc := Fingerprint(chain, hessian.DefaultJobOptions())
	if frc.Rotate {
		t.Fatal("collinear chain got a rotation frame")
	}
	if kl, _ := Fingerprint(longer, hessian.DefaultJobOptions()); kl == kc {
		t.Error("different collinear chains share a key")
	}
}

func TestKeyStringRoundtrip(t *testing.T) {
	k, _ := Fingerprint(waterFragment(), hessian.DefaultJobOptions())
	back, err := ParseKey(k.String())
	if err != nil || back != k {
		t.Fatalf("ParseKey(String) = %v, %v; want original key", back, err)
	}
	if _, err := ParseKey("zz"); err == nil {
		t.Fatal("ParseKey accepted garbage")
	}
}
