package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"sync"

	"qframan/internal/fragment"
	"qframan/internal/geom"
	"qframan/internal/hessian"
)

// Key is the content address of a fragment result: a SHA-256 of the
// canonical fragment fingerprint. Two fragments share a key exactly when
// the displacement loop is guaranteed to produce the same physics for both
// (in the canonical frame): same species sequence, same rigid-motion-
// canonicalized geometry to within the quantization tolerance, and the same
// job options.
type Key [sha256.Size]byte

// String returns the key in hex — the form used in the manifest and for
// object file names.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex form produced by String.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return k, fmt.Errorf("store: invalid key %q", s)
	}
	copy(k[:], b)
	return k, nil
}

// coordQuantum is the coordinate quantization (Å) of the fingerprint.
// Rigid copies of one molecule agree in canonical coordinates to ~1e-15 Å,
// so a 1e-6 Å grid merges them reliably while keeping genuinely different
// geometries — displacement steps are 5e-3 bohr ≈ 2.6e-3 Å — far apart.
const coordQuantum = 1e-6

// fingerprintVersion is bumped whenever the fingerprint byte layout, the
// canonicalization, or the codec changes incompatibly, so stale stores can
// never cross-hit a new binary.
const fingerprintVersion = "qfkey/v1/codec1\n"

// Fingerprint computes the content-addressed key and canonical frame of a
// fragment under the given job options. The fingerprint covers the physics
// inputs only: species, canonicalized quantized coordinates (caps
// included), and every solver setting that can change a converged result.
// It deliberately excludes the fragment's identity (ID, Kind, Coeff,
// GlobalIdx — assembly bookkeeping applied outside the stored data), the
// warm-start fields (InitDeltaQ, InitP1, Executor — starting points and
// execution backends, which do not move a converged answer), and the Obs
// observability scopes (pure instrumentation: a traced run must share keys
// with an untraced one).
//
// A non-zero external SCF field breaks rotational isotropy, so the frame
// then canonicalizes translation only: field runs never dedupe rotated
// copies against each other.
func Fingerprint(f *fragment.Fragment, opt hessian.JobOptions) (Key, Frame) {
	s := fpPool.Get().(*fpScratch)
	k, fr := fingerprintInto(s, f, opt)
	fpPool.Put(s)
	return k, fr
}

// fpScratch is the reusable canonicalization/hashing state of one
// Fingerprint call: the serialization buffer and the SHA-256 digest. The
// trajectory engine fingerprints every fragment of every frame on its diff
// hot path, so the steady state must be allocation-free; the pool also
// serves the scheduler's up-front fingerprint pass and the cluster/serving
// frontends for free.
type fpScratch struct {
	buf []byte
	h   hash.Hash
	// sum receives the digest: Sum appends through an interface, so a
	// stack-local destination would escape and allocate per call.
	sum [sha256.Size]byte
}

var fpPool = sync.Pool{New: func() any {
	return &fpScratch{buf: make([]byte, 0, 1024), h: sha256.New()}
}}

// fingerprintInto is Fingerprint against caller-owned scratch.
func fingerprintInto(s *fpScratch, f *fragment.Fragment, opt hessian.JobOptions) (Key, Frame) {
	fr := frameFor(f.Pos)
	if opt.SCF.Field != (geom.Vec3{}) {
		fr.Rotate = false
	}
	buf := append(s.buf[:0], fingerprintVersion...)
	buf = appendU32(buf, uint32(len(f.Els)))
	for _, el := range f.Els {
		buf = append(buf, byte(el))
	}
	for _, p := range f.Pos {
		q := fr.Apply(p)
		buf = appendU64(buf, uint64(quantize(q.X)))
		buf = appendU64(buf, uint64(quantize(q.Y)))
		buf = appendU64(buf, uint64(quantize(q.Z)))
	}
	buf = appendJobFingerprint(buf, opt)
	s.buf = buf // keep any growth for the next call
	s.h.Reset()
	s.h.Write(buf)
	s.h.Sum(s.sum[:0])
	return Key(s.sum), fr
}

// fingerprintAlloc is the pre-pool implementation — fresh buffers and a
// fresh digest per call — kept as the paired baseline of
// BenchmarkFingerprint so the allocation win stays measured, not asserted.
func fingerprintAlloc(f *fragment.Fragment, opt hessian.JobOptions) (Key, Frame) {
	s := &fpScratch{buf: make([]byte, 0, 64+len(f.Els)+24*len(f.Pos)), h: sha256.New()}
	return fingerprintInto(s, f, opt)
}

// quantize snaps a coordinate to the fingerprint grid.
func quantize(x float64) int64 { return int64(math.Round(x / coordQuantum)) }

// appendJobFingerprint serializes every physics-relevant JobOptions field
// with exact float bit patterns into the caller's buffer. Field order is
// part of the format; extending JobOptions with a new physics knob must
// append it here and bump fingerprintVersion.
func appendJobFingerprint(b []byte, opt hessian.JobOptions) []byte {
	b = appendU64(b, math.Float64bits(opt.Step))
	b = appendBool(b, opt.SkipAlpha)
	b = appendU64(b, uint64(opt.SCF.MaxIter))
	b = appendU64(b, math.Float64bits(opt.SCF.Tol))
	b = appendU64(b, math.Float64bits(opt.SCF.Mixing))
	b = appendU64(b, math.Float64bits(opt.SCF.Smearing))
	b = appendU64(b, math.Float64bits(opt.SCF.Field.X))
	b = appendU64(b, math.Float64bits(opt.SCF.Field.Y))
	b = appendU64(b, math.Float64bits(opt.SCF.Field.Z))
	b = appendU64(b, uint64(opt.DFPT.MaxIter))
	b = appendU64(b, math.Float64bits(opt.DFPT.Tol))
	b = appendU64(b, math.Float64bits(opt.DFPT.Mixing))
	b = appendU64(b, uint64(opt.DFPT.Coulomb))
	b = appendU64(b, math.Float64bits(opt.DFPT.GridSpacing))
	b = appendU64(b, math.Float64bits(opt.DFPT.GridMargin))
	b = appendU64(b, uint64(opt.DFPT.BatchSide))
	b = appendBool(b, opt.DFPT.StrengthReduction)
	return b
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}
