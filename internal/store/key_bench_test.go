package store

import (
	"testing"

	"qframan/internal/hessian"
)

// BenchmarkFingerprint pairs the pooled fingerprint path against the
// pre-pool per-call-allocation implementation on the same fragment. The
// pooled path is the trajectory engine's per-frame diff hot loop, so the
// number to watch is allocs/op: pooled must be ~0, alloc is several per
// call.
func BenchmarkFingerprint(b *testing.B) {
	f := waterFragment()
	opt := hessian.DefaultJobOptions()
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Fingerprint(f, opt)
		}
	})
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fingerprintAlloc(f, opt)
		}
	})
}

// TestFingerprintPooledMatchesAlloc: the pooled path and the baseline must
// agree on every key and frame — the pool is an optimization, not a format
// change — including across reuse of the same scratch.
func TestFingerprintPooledMatchesAlloc(t *testing.T) {
	opt := hessian.DefaultJobOptions()
	w := waterFragment()
	c := chiralFragment()
	for i := 0; i < 3; i++ { // repeat so pooled scratch gets reused
		k1, fr1 := Fingerprint(w, opt)
		k2, fr2 := fingerprintAlloc(w, opt)
		if k1 != k2 || fr1.Rotate != fr2.Rotate {
			t.Fatalf("pooled fingerprint diverged from baseline on water (iter %d)", i)
		}
		k3, _ := Fingerprint(c, opt)
		k4, _ := fingerprintAlloc(c, opt)
		if k3 != k4 {
			t.Fatalf("pooled fingerprint diverged from baseline on chiral fragment (iter %d)", i)
		}
		if k1 == k3 {
			t.Fatal("distinct fragments collided")
		}
	}
}

// TestFingerprintPooledAllocFree: the steady-state pooled path must not
// allocate — the satellite fix this PR pairs with BenchmarkFingerprint.
func TestFingerprintPooledAllocFree(t *testing.T) {
	f := waterFragment()
	opt := hessian.DefaultJobOptions()
	Fingerprint(f, opt) // warm the pool
	avg := testing.AllocsPerRun(100, func() { Fingerprint(f, opt) })
	if avg > 0.1 {
		t.Fatalf("pooled Fingerprint allocates %.1f objects/call, want 0", avg)
	}
}
