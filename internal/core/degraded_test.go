package core

import (
	"testing"
	"time"

	"qframan/internal/faults"
	"qframan/internal/fragment"
	"qframan/internal/raman"
	"qframan/internal/structure"
)

// chaosSched dials the fault machinery up on a config: aggressive transient
// injection (errors + NaN divergences) that bounded retries must fully
// absorb.
func chaosSched(cfg *Config, seed int64) {
	cfg.Sched.Retry = faults.RetryPolicy{
		MaxAttempts:    5,
		Base:           200 * time.Microsecond,
		Max:            2 * time.Millisecond,
		Multiplier:     2,
		JitterFraction: 0.2,
	}
	cfg.Sched.Injector = faults.NewInjector(faults.Config{
		Seed:           seed,
		TransientRate:  0.5,
		NaNRate:        0.3,
		MaxPerFragment: 2,
	})
}

func specEqual(a, b *raman.Spectrum) bool {
	if len(a.Intensity) != len(b.Intensity) {
		return false
	}
	for i := range a.Intensity {
		if a.Intensity[i] != b.Intensity[i] || a.Freq[i] != b.Freq[i] {
			return false
		}
	}
	return true
}

// TestFaultInjectedRunBitMatchesCleanRun is the golden zero-loss guarantee:
// a run whose fragments suffer injected transient failures and NaN
// divergences — all absorbed by retries — produces the *bit-identical*
// spectrum of a fault-free run.
func TestFaultInjectedRunBitMatchesCleanRun(t *testing.T) {
	sys := structure.BuildWaterDimerSystem(2)
	clean, err := ComputeRaman(sys, fastConfig())
	if err != nil {
		t.Fatal(err)
	}

	cfg := fastConfig()
	chaosSched(&cfg, 3)
	res, err := ComputeRaman(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SchedReport.Retries == 0 {
		t.Fatal("chaos config injected no faults — the bit-match proves nothing")
	}
	if res.SchedReport.Degraded || len(res.SchedReport.Failed) != 0 {
		t.Fatalf("retries should have absorbed every fault, got failed %v", res.SchedReport.Failed)
	}
	if !specEqual(clean.Spectrum, res.Spectrum) {
		t.Fatal("fault-injected spectrum differs from the fault-free spectrum")
	}
}

// TestFaultInjectedPeptideBitMatches is the same guarantee on a real
// peptide decomposition (residue fragments, concaps, pairs).
func TestFaultInjectedPeptideBitMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("peptide end-to-end run is expensive")
	}
	sys, err := structure.BuildProtein("GAGA")
	if err != nil {
		t.Fatal(err)
	}
	clean, err := ComputeRaman(sys, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	chaosSched(&cfg, 11)
	res, err := ComputeRaman(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SchedReport.Retries == 0 {
		t.Fatal("chaos config injected no faults")
	}
	if !specEqual(clean.Spectrum, res.Spectrum) {
		t.Fatal("fault-injected peptide spectrum differs from the fault-free spectrum")
	}
}

// TestDegradedWaterFragmentSpectrum drops one water fragment through the
// fail-soft path and checks the degraded spectrum stays close (cosine
// similarity ≥ 0.90) to the complete one — the paper-scale story: losing
// one fragment out of many shifts the spectrum, it does not destroy it.
func TestDegradedWaterFragmentSpectrum(t *testing.T) {
	sys := structure.BuildWaterDimerSystem(2)
	full, err := ComputeRaman(sys, fastConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Pick a one-body water fragment to kill.
	victim := -1
	for i := range full.Decomposition.Fragments {
		if full.Decomposition.Fragments[i].Kind == fragment.KindWater {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no water fragment in a water-dimer decomposition")
	}

	cfg := fastConfig()
	cfg.Sched.MaxFailedFragments = 1
	cfg.Sched.Injector = faults.NewInjector(faults.Config{Seed: 1, HardFailFrags: []int{victim}})
	res, err := ComputeRaman(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.SchedReport
	if !rep.Degraded || len(rep.Failed) != 1 || rep.Failed[0] != victim {
		t.Fatalf("want degraded run with Failed == [%d], got degraded=%v failed=%v", victim, rep.Degraded, rep.Failed)
	}
	if len(res.Global.Dropped) != 1 || res.Global.Dropped[0] != victim {
		t.Fatalf("assembly ledger Dropped = %v, want [%d]", res.Global.Dropped, victim)
	}
	if res.Spectrum == nil || len(res.Spectrum.Intensity) == 0 {
		t.Fatal("degraded run produced no spectrum")
	}
	sim := raman.CosineSimilarity(res.Spectrum, full.Spectrum)
	t.Logf("degraded-vs-full cosine similarity: %v", sim)
	if sim < 0.90 {
		t.Fatalf("degraded spectrum too far from the full one: cosine %v < 0.90", sim)
	}
	if specEqual(res.Spectrum, full.Spectrum) {
		t.Fatal("dropping a fragment changed nothing — the degradation path is not real")
	}
}
