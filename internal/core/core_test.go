package core

import (
	"testing"

	"qframan/internal/fragment"
	"qframan/internal/raman"
	"qframan/internal/structure"
)

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Raman.FreqMin, cfg.Raman.FreqMax, cfg.Raman.FreqStep = 200, 4000, 10
	cfg.Raman.Sigma = 30
	cfg.Raman.LanczosK = 40
	return cfg
}

func TestComputeRamanWaterDimers(t *testing.T) {
	sys := structure.BuildWaterDimerSystem(2)
	res, err := ComputeRaman(sys, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Spectrum == nil || len(res.Spectrum.Intensity) == 0 {
		t.Fatal("no spectrum produced")
	}
	// The O–H stretch region must dominate a water spectrum.
	peakAt := func(s *raman.Spectrum) float64 {
		best, bestI := 0.0, 0.0
		for i, v := range s.Intensity {
			if v > bestI {
				bestI = v
				best = s.Freq[i]
			}
		}
		return best
	}
	p := peakAt(res.Spectrum)
	if p < 1500 || p > 3900 {
		t.Fatalf("spectrum peak at %v cm⁻¹ — expected a vibrational band", p)
	}
	if res.Global.H.Dim() != 3*sys.NumAtoms() {
		t.Fatalf("global Hessian dimension %d", res.Global.H.Dim())
	}
	if res.SchedReport == nil || res.SchedReport.NumTasks == 0 {
		t.Fatal("scheduler report missing")
	}
}

func TestQFMatchesDirectSmallPeptide(t *testing.T) {
	// End-to-end validation: the fragmented spectrum of a small peptide
	// must closely match the direct (unfragmented) spectrum — for both
	// partitioners. The graph engine's pipelines ride along here to reuse
	// the direct reference (measured: QF 0.999, graph 0.933 vs direct,
	// QF vs graph 0.931 — see EXPERIMENTS.md).
	if testing.Short() {
		t.Skip("direct comparison is expensive")
	}
	sys, err := structure.BuildProtein("GAG")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.UseDense = true

	// QF path: with 3 residues the decomposition is a single whole-chain
	// fragment, so force a finer fragmentation via 4 residues.
	sys4, err := structure.BuildProtein("GAGA")
	if err != nil {
		t.Fatal(err)
	}
	_ = sys
	resQF, err := ComputeRaman(sys4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resQF.Decomposition.Stats.NumConcaps == 0 {
		t.Fatal("expected a real fragmentation (with concaps)")
	}

	// Direct path: single fragment covering the whole chain.
	direct := directDecomposition(sys4)
	resDirect, err := ComputeRamanDecomposed(sys4, direct, cfg)
	if err != nil {
		t.Fatal(err)
	}

	sim := raman.CosineSimilarity(resQF.Spectrum, resDirect.Spectrum)
	if sim < 0.85 {
		t.Fatalf("QF vs direct spectrum cosine similarity %v", sim)
	}

	// Graph engine on the same straight chain: cutting mid-residue bonds
	// it chose itself, it must still track both the direct reference and
	// the QF spectrum.
	gOpt := fragment.DefaultGraphOptions()
	gOpt.TargetAtoms = 16
	cfg.Partitioner = fragment.GraphPartitioner{Opt: gOpt}
	resG, err := ComputeRaman(sys4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := resG.Decomposition.Stats; st.NumParts < 2 || st.NumCutBonds == 0 {
		t.Fatalf("graph path did not really fragment: %+v", st)
	}
	simGD := raman.CosineSimilarity(resG.Spectrum, resDirect.Spectrum)
	simGQ := raman.CosineSimilarity(resG.Spectrum, resQF.Spectrum)
	t.Logf("graph vs direct %v, graph vs QF %v", simGD, simGQ)
	if simGD < 0.85 {
		t.Fatalf("graph vs direct spectrum cosine similarity %v < 0.85 (EXPERIMENTS.md)", simGD)
	}
	if simGQ < 0.85 {
		t.Fatalf("graph vs QF spectrum cosine similarity %v < 0.85 (EXPERIMENTS.md)", simGQ)
	}
}

// directDecomposition wraps the whole system as one fragment.
func directDecomposition(sys *structure.System) *fragment.Decomposition {
	f := fragment.Fragment{NumReal: sys.NumAtoms(), Coeff: 1}
	f.Pos = sys.Positions()
	for _, a := range sys.Atoms {
		f.Els = append(f.Els, a.El)
	}
	for i := 0; i < sys.NumAtoms(); i++ {
		f.GlobalIdx = append(f.GlobalIdx, i)
	}
	d := &fragment.Decomposition{Fragments: []fragment.Fragment{f}}
	return d
}

func TestComputeRamanRejectsEmpty(t *testing.T) {
	sys := &structure.System{}
	if _, err := ComputeRaman(sys, DefaultConfig()); err == nil {
		t.Fatal("accepted empty system")
	}
}

func TestHessianOnlyRun(t *testing.T) {
	sys := structure.BuildWaterDimerSystem(1)
	cfg := fastConfig()
	cfg.Sched.Job.SkipAlpha = true
	res, err := ComputeRaman(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spectrum != nil {
		t.Fatal("Hessian-only run produced a spectrum")
	}
	if res.Global.H.NNZ() == 0 {
		t.Fatal("empty Hessian")
	}
}
