package core

import (
	"crypto/sha256"
	"math"
	"runtime"
	"testing"

	"qframan/internal/dfpt"
	"qframan/internal/hessian"
	"qframan/internal/linalg"
	"qframan/internal/par"
	"qframan/internal/store"
	"qframan/internal/structure"
)

// ISSUE 8 extends the PR 5 width-invariance property to the elastic batch
// path: FragmentData and full spectra must be bit-identical not only across
// kernel widths but also with GEMM batching on vs off — the batch planner's
// grouping, cross-fragment merging, and transpose-pair skips must be
// invisible to every output bit.

// TestFragmentDataBitIdenticalAcrossWidthsAndBatching runs the grid-Coulomb
// fragment pipeline over the cross product of kernel widths {1, 3, NumCPU}
// and batching {on, off}, requiring every combination to produce the same
// store-codec bytes.
func TestFragmentDataBitIdenticalAcrossWidthsAndBatching(t *testing.T) {
	opt := hessian.DefaultJobOptions()
	opt.DFPT.Coulomb = dfpt.GridCoulomb
	opt.DFPT.GridSpacing = 0.8
	opt.DFPT.GridMargin = 4.0

	defer par.SetBudget(0)
	defer linalg.SetGemmBatching(true)
	var ref *hessian.FragmentData
	var refSum [sha256.Size]byte
	var refDesc string
	for _, batching := range []bool{true, false} {
		for _, w := range kernelWidths() {
			linalg.SetGemmBatching(batching)
			par.SetBudget(w)
			data, err := hessian.ComputeFragment(waterFragment(), opt)
			if err != nil {
				t.Fatalf("width %d batching %v: %v", w, batching, err)
			}
			blob, err := store.Encode(data)
			if err != nil {
				t.Fatalf("width %d batching %v: encode: %v", w, batching, err)
			}
			sum := sha256.Sum256(blob)
			if ref == nil {
				ref, refSum = data, sum
				refDesc = "width 1 / batching on"
				continue
			}
			if !data.BitEqual(ref) {
				t.Fatalf("width %d batching %v: FragmentData differs bitwise from %s", w, batching, refDesc)
			}
			if sum != refSum {
				t.Fatalf("width %d batching %v: codec hash differs from %s", w, batching, refDesc)
			}
		}
	}
}

// TestSpectrumBitIdenticalBatchingOnOff runs the full pipeline on the water
// box system with batching on and off — at a parallel width, so the
// cross-fragment aggregator actually has concurrent submitters to merge —
// and requires the spectra to match to the last bit.
func TestSpectrumBitIdenticalBatchingOnOff(t *testing.T) {
	sys := structure.BuildWaterDimerSystem(1)
	run := func(batching bool) *Result {
		linalg.SetGemmBatching(batching)
		cfg := DefaultConfig()
		cfg.Raman.FreqMin, cfg.Raman.FreqMax, cfg.Raman.FreqStep = 200, 4000, 10
		res, err := ComputeRaman(sys, cfg)
		if err != nil {
			t.Fatalf("batching %v: %v", batching, err)
		}
		return res
	}
	defer par.SetBudget(0)
	defer linalg.SetGemmBatching(true)
	par.SetBudget(runtime.NumCPU())
	on := run(true)
	off := run(false)
	if len(on.Spectrum.Intensity) != len(off.Spectrum.Intensity) {
		t.Fatalf("spectrum lengths differ: %d vs %d", len(on.Spectrum.Intensity), len(off.Spectrum.Intensity))
	}
	for i := range on.Spectrum.Intensity {
		if math.Float64bits(on.Spectrum.Intensity[i]) != math.Float64bits(off.Spectrum.Intensity[i]) {
			t.Fatalf("intensity[%d] differs between batching on and off: %x vs %x", i,
				math.Float64bits(on.Spectrum.Intensity[i]), math.Float64bits(off.Spectrum.Intensity[i]))
		}
	}
}
