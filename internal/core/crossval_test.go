package core

import (
	"testing"

	"qframan/internal/fragment"
	"qframan/internal/raman"
	"qframan/internal/structure"
)

// TestGraphMatchesQFFoldedProtein cross-validates the two partitioners: the
// graph engine knows nothing about peptide chemistry, yet its spectrum of a
// folded protein must agree with the QF engine's. The tolerance is the one
// recorded in EXPERIMENTS.md (measured 0.939 on this system, 0.990 on a
// fold-2 GAGA; the harsher fold-3 GAGAG case, where both engines drift
// from the direct reference together, is recorded there too) — tighten
// only with the evidence to back it.
func TestGraphMatchesQFFoldedProtein(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation runs two full dense pipelines")
	}
	sys, err := structure.BuildProteinFolded("GGGG", 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.UseDense = true

	resQF, err := ComputeRaman(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resQF.Decomposition.Stats.Partitioner != "qf" || resQF.Decomposition.Stats.NumConcaps == 0 {
		t.Fatalf("QF path did not really fragment: %+v", resQF.Decomposition.Stats)
	}

	// The default 24-atom target would let the cleanup/parity passes merge
	// this 31-atom protein into a single part; 12 forces a real partition
	// (3 parts, 2 cut bonds) while keeping the runtime of two dense
	// pipelines tolerable.
	gOpt := fragment.DefaultGraphOptions()
	gOpt.TargetAtoms = 12
	cfg.Partitioner = fragment.GraphPartitioner{Opt: gOpt}
	resG, err := ComputeRaman(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := resG.Decomposition.Stats
	if st.Partitioner != "graph" || st.NumParts < 2 || st.NumCutBonds == 0 {
		t.Fatalf("graph path did not really fragment: %+v", st)
	}

	sim := raman.CosineSimilarity(resQF.Spectrum, resG.Spectrum)
	t.Logf("QF vs graph spectrum cosine similarity: %v", sim)
	if sim < 0.85 {
		t.Fatalf("QF vs graph spectrum cosine similarity %v < 0.85 (EXPERIMENTS.md)", sim)
	}
}

// TestPolymerMeltEndToEnd runs a non-protein workload through the full
// pipeline: the QF engine must refuse it and the graph engine must produce a
// spectrum with C–H/O–H stretch bands.
func TestPolymerMeltEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("dense pipeline")
	}
	sys := structure.BuildPolymerMelt(1, 3, 5)
	cfg := fastConfig()
	cfg.UseDense = true

	if _, err := ComputeRaman(sys, cfg); err == nil {
		t.Fatal("QF engine accepted a generic-molecule system")
	}

	gOpt := fragment.DefaultGraphOptions()
	gOpt.TargetAtoms = 12
	cfg.Partitioner = fragment.GraphPartitioner{Opt: gOpt}
	res, err := ComputeRaman(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spectrum == nil || len(res.Spectrum.Intensity) == 0 {
		t.Fatal("no spectrum produced")
	}
	st := res.Decomposition.Stats
	if st.NumParts < 2 || st.NumCutBonds == 0 {
		t.Fatalf("melt not fragmented: %+v", st)
	}
	// A PEG chain must show vibrational bands; the strongest intensity in
	// the stretch region must be nonzero.
	var stretch float64
	for i, f := range res.Spectrum.Freq {
		if f >= 2500 && f <= 3800 && res.Spectrum.Intensity[i] > stretch {
			stretch = res.Spectrum.Intensity[i]
		}
	}
	if stretch <= 0 {
		t.Fatal("no C–H/O–H stretch intensity in 2500–3800 cm⁻¹")
	}
}
