// Package core is the QF-RAMAN orchestrator — the paper's primary
// contribution assembled end to end: quantum fragmentation of the input
// system (Eq. 1), parallel per-fragment displacement loops (DFT ground
// state + DFPT polarizability per displacement) on the master–leader–worker
// runtime, signed assembly of the sparse mass-weighted Hessian and ∂α/∂ξ
// vectors, and the Lanczos+GAGQ Raman-spectrum solver (Eq. 5).
package core

import (
	"fmt"

	"qframan/internal/fragment"
	"qframan/internal/hessian"
	"qframan/internal/obs"
	"qframan/internal/raman"
	"qframan/internal/sched"
	"qframan/internal/structure"
)

// Config bundles the pipeline settings.
type Config struct {
	Fragment fragment.Options
	// Partitioner overrides the fragmentation engine. nil selects the QF
	// engine configured by Fragment; set a fragment.GraphPartitioner for
	// the general graph engine (see FRAGMENTATION.md).
	Partitioner fragment.Partitioner
	Sched       sched.Options
	Raman       raman.Options
	// UseDense replaces the Lanczos solver with exact dense
	// diagonalization — only feasible for small systems; used by the
	// validation ladder.
	UseDense bool
	// RigidCutoff (cm⁻¹) drops rigid-body modes in the dense path.
	RigidCutoff float64
	// IR additionally computes the infrared spectrum from the dipole
	// derivatives the displacement loop already produces.
	IR bool
}

// DefaultConfig returns production settings.
func DefaultConfig() Config {
	return Config{
		Fragment:    fragment.DefaultOptions(),
		Sched:       sched.DefaultOptions(),
		Raman:       raman.DefaultOptions(),
		RigidCutoff: 50,
	}
}

// Result is the full pipeline output.
type Result struct {
	Spectrum      *raman.Spectrum
	IRSpectrum    *raman.Spectrum
	Decomposition *fragment.Decomposition
	Global        *hessian.Global
	SchedReport   *sched.Report
}

// ComputeRaman runs the QF-RAMAN pipeline on a molecular system.
func ComputeRaman(sys *structure.System, cfg Config) (*Result, error) {
	part := cfg.Partitioner
	if part == nil {
		part = fragment.QFPartitioner{Opt: cfg.Fragment}
	}
	sc := cfg.Sched.Obs
	_, dspan := sc.Begin("decompose", "core", obs.A("atoms", int64(sys.NumAtoms())))
	dec, err := part.Partition(sys)
	dspan.End()
	if err != nil {
		return nil, fmt.Errorf("core: decompose: %w", err)
	}
	return ComputeRamanDecomposed(sys, dec, cfg)
}

// ComputeRamanDecomposed runs the pipeline on an externally supplied
// decomposition — the validation ladder uses it with a single whole-system
// "direct" fragment to quantify the fragmentation error.
func ComputeRamanDecomposed(sys *structure.System, dec *fragment.Decomposition, cfg Config) (*Result, error) {
	if len(dec.Fragments) == 0 {
		return nil, fmt.Errorf("core: system produced no fragments")
	}
	datas, report, err := sched.Run(dec, cfg.Sched)
	if err != nil {
		return nil, fmt.Errorf("core: fragment jobs: %w", err)
	}
	sc := cfg.Sched.Obs
	// A degraded run (fail-soft budget consumed) completes with nil data at
	// report.Failed; the assembly drops exactly those fragments' signed
	// Eq. 1 terms and records them in Global.Dropped.
	_, aspan := sc.Begin("assemble", "core", obs.A("fragments", int64(len(dec.Fragments))))
	g, err := hessian.AssembleDegraded(dec, sys.Masses(), datas, !cfg.Sched.Job.SkipAlpha, report.Failed)
	aspan.End()
	if err != nil {
		return nil, fmt.Errorf("core: assemble: %w", err)
	}
	res := &Result{Decomposition: dec, Global: g, SchedReport: report}
	if cfg.Sched.Job.SkipAlpha {
		return res, nil // Hessian-only run
	}
	res.Spectrum, res.IRSpectrum, err = SpectrumFromGlobal(g, cfg)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// SpectrumFromGlobal solves the Raman (and, when cfg.IR, infrared) spectrum
// from an assembled Global. One-shot runs and the trajectory engine share
// this path, so a trajectory frame's spectrum is produced by exactly the
// code — and exactly the floating-point schedule — as a one-shot run over
// the same assembly.
func SpectrumFromGlobal(g *hessian.Global, cfg Config) (*raman.Spectrum, *raman.Spectrum, error) {
	sc := cfg.Sched.Obs
	solver := int64(0) // 0 = Lanczos/GAGQ, 1 = dense diagonalization
	if cfg.UseDense {
		solver = 1
	}
	_, sspan := sc.Begin("spectrum", "core", obs.A("dense", solver))
	var spec *raman.Spectrum
	var err error
	if cfg.UseDense {
		spec, err = raman.DenseSpectrum(g, cfg.Raman, cfg.RigidCutoff)
	} else {
		spec, err = raman.LanczosSpectrum(g, cfg.Raman)
	}
	sspan.End()
	if err != nil {
		return nil, nil, fmt.Errorf("core: spectrum: %w", err)
	}
	var ir *raman.Spectrum
	if cfg.IR {
		_, ispan := sc.Begin("spectrum.ir", "core", obs.A("dense", solver))
		if cfg.UseDense {
			ir, err = raman.DenseIRSpectrum(g, cfg.Raman, cfg.RigidCutoff)
		} else {
			ir, err = raman.LanczosIRSpectrum(g, cfg.Raman)
		}
		ispan.End()
		if err != nil {
			return nil, nil, fmt.Errorf("core: IR spectrum: %w", err)
		}
	}
	return spec, ir, nil
}
