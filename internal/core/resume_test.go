package core

import (
	"math"
	"testing"

	"qframan/internal/faults"
	"qframan/internal/sched"
	"qframan/internal/store"
	"qframan/internal/structure"
)

// cacheConfig attaches a checkpoint store at dir to a fast test config.
// The returned store must be closed by the caller (via t.Cleanup here).
func cacheConfig(t *testing.T, dir string, resume bool) Config {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	cfg := fastConfig()
	cfg.Sched.Cache = sched.CacheOptions{Store: s, Resume: resume}
	return cfg
}

// TestResumeBitIdenticalSpectrum is the tentpole end-to-end guarantee: a run
// killed mid-flight by a deterministic hard fault, then resumed from its
// checkpoint store, produces the bit-identical spectrum of an uninterrupted
// run — on the real engine, through assembly and the spectrum solver.
func TestResumeBitIdenticalSpectrum(t *testing.T) {
	sys := structure.BuildWaterDimerSystem(1)

	// Uninterrupted reference, with its own store (checkpointing on, so the
	// served-vs-computed paths match the resumed run's exactly).
	ref, err := ComputeRaman(sys, cacheConfig(t, t.TempDir(), false))
	if err != nil {
		t.Fatal(err)
	}

	// Crash: fragment 0 is a 3-atom water, scheduled after the larger pair
	// fragments by the size-sensitive packer, so the crash leaves completed
	// checkpoints behind.
	dir := t.TempDir()
	crash := cacheConfig(t, dir, false)
	crash.Sched.Injector = faults.NewInjector(faults.Config{Seed: 1, HardFailFrags: []int{0}})
	if _, err := ComputeRaman(sys, crash); err == nil {
		t.Fatal("hard-failed run reported success")
	}

	// Resume into the same store.
	res, err := ComputeRaman(sys, cacheConfig(t, dir, true))
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if res.SchedReport.Resumed == 0 {
		t.Fatal("resume served nothing from the crashed run's checkpoints")
	}
	if !specEqual(ref.Spectrum, res.Spectrum) {
		t.Fatal("resumed spectrum is not bit-identical to the uninterrupted run")
	}

	// Warm rerun: everything is served, nothing recomputes, same bits.
	warm, err := ComputeRaman(sys, cacheConfig(t, dir, true))
	if err != nil {
		t.Fatal(err)
	}
	rep := warm.SchedReport
	if rep.CacheMisses != 0 {
		t.Fatalf("warm rerun recomputed %d fragments, want 0", rep.CacheMisses)
	}
	if rep.CacheHits == 0 || rep.CacheHits != rep.Resumed+rep.Deduped {
		t.Fatalf("inconsistent warm accounting: hits=%d resumed=%d deduped=%d",
			rep.CacheHits, rep.Resumed, rep.Deduped)
	}
	if !specEqual(ref.Spectrum, warm.Spectrum) {
		t.Fatal("warm-cache spectrum is not bit-identical to the reference")
	}
}

// TestCachedRunMatchesCleanRun: attaching a store must not change the
// physics. A cache-backed run serves rigid water copies from one producer's
// record rotated into each copy's frame, so it differs from a storeless run
// only by frame-rotation rounding (~1e-12 relative), never by more: the
// spectra must agree to far better than any physical tolerance, though not
// bit-for-bit.
func TestCachedRunMatchesCleanRun(t *testing.T) {
	sys := structure.BuildWaterDimerSystem(1)
	clean, err := ComputeRaman(sys, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	cached, err := ComputeRaman(sys, cacheConfig(t, t.TempDir(), false))
	if err != nil {
		t.Fatal(err)
	}
	if cached.SchedReport.Deduped == 0 {
		t.Fatal("dimer waters did not dedupe — the comparison proves nothing")
	}
	var peak float64
	for _, v := range clean.Spectrum.Intensity {
		peak = math.Max(peak, math.Abs(v))
	}
	for i := range clean.Spectrum.Intensity {
		if d := math.Abs(clean.Spectrum.Intensity[i] - cached.Spectrum.Intensity[i]); d > 1e-6*peak {
			t.Fatalf("bin %d: cache-backed spectrum deviates by %.3g (peak %.3g) from the storeless run",
				i, d, peak)
		}
	}
}
