package core

import (
	"bytes"
	"testing"

	"qframan/internal/obs"
	"qframan/internal/structure"
)

// TestGoldenTraceStructure is the golden trace check: a fixed-seed water
// run with tracing attached must export a Chrome trace that parses back to
// the exact span set, with intact parent links, the documented hierarchy
// (sched.run → frag → attempt → … → dfpt.cycle), and — the DFPT invariant
// the straggler analytics depend on — exactly four phase children per
// recorded cycle, in execution order n1, v1, h1, p1, tiling the cycle.
func TestGoldenTraceStructure(t *testing.T) {
	sys := structure.BuildWaterDimerSystem(2)
	cfg := fastConfig()
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	cfg.Sched.Obs = obs.NewScope(tr, reg)

	res, err := ComputeRaman(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("tracer dropped %d spans on a tiny run", tr.Dropped())
	}
	if res.SchedReport == nil || res.SchedReport.Stragglers == nil {
		t.Fatal("instrumented run did not attach a straggler summary")
	}

	// Export and re-read: the roundtrip is the schema validation — every
	// event must parse as a trace_event "X" entry with its id_/parent_ args.
	var buf bytes.Buffer
	if err := tr.ExportChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	spans, err := obs.ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exported trace does not parse back: %v", err)
	}
	if len(spans) != tr.Len() {
		t.Fatalf("roundtrip lost spans: exported %d, read %d", tr.Len(), len(spans))
	}

	byID := make(map[uint64]obs.SpanRecord, len(spans))
	children := make(map[uint64][]obs.SpanRecord)
	for _, s := range spans {
		if s.ID == 0 {
			t.Fatalf("span %q has id 0", s.Name)
		}
		if _, dup := byID[s.ID]; dup {
			t.Fatalf("duplicate span id %d (%q)", s.ID, s.Name)
		}
		byID[s.ID] = s
		if s.Parent != 0 {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}

	// Parent links are closed: no span points at an id outside the trace,
	// and each link matches the documented hierarchy.
	wantParent := map[string]map[string]bool{
		"frag":       {"sched.run": true},
		"task":       {"sched.run": true},
		"attempt":    {"frag": true},
		"model":      {"attempt": true},
		"disp":       {"attempt": true},
		"scf":        {"attempt": true, "disp": true}, // reference solve vs displacement solve
		"dfpt":       {"attempt": true, "disp": true},
		"dfpt.dir":   {"dfpt": true},
		"dfpt.cycle": {"dfpt.dir": true},
		"store.get":  {"attempt": true},
		"store.put":  {"attempt": true},
		"n1":         {"dfpt.cycle": true},
		"v1":         {"dfpt.cycle": true},
		"h1":         {"dfpt.cycle": true},
		"p1":         {"dfpt.cycle": true},
	}
	counts := make(map[string]int)
	for _, s := range spans {
		counts[s.Name]++
		if s.Parent == 0 {
			continue
		}
		parent, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("span %d (%q) has dangling parent %d", s.ID, s.Name, s.Parent)
		}
		if want, constrained := wantParent[s.Name]; constrained && !want[parent.Name] {
			t.Fatalf("span %q nested under %q, want one of %v", s.Name, parent.Name, want)
		}
	}

	if counts["sched.run"] != 1 {
		t.Fatalf("got %d sched.run spans, want exactly 1", counts["sched.run"])
	}
	nf := len(res.Decomposition.Fragments)
	if counts["frag"] != nf {
		t.Fatalf("got %d frag spans for %d fragments", counts["frag"], nf)
	}
	if counts["attempt"] < nf {
		t.Fatalf("got %d attempt spans, want ≥ %d (one per fragment)", counts["attempt"], nf)
	}
	if counts["dfpt.cycle"] == 0 || counts["scf"] == 0 {
		t.Fatal("trace has no engine spans — instrumentation not reaching the solvers")
	}

	// The golden DFPT invariant: every recorded cycle carries exactly the
	// four phases, each tagged cat="phase", tiling the cycle span.
	phaseOrder := []string{"n1", "v1", "h1", "p1"}
	for _, s := range spans {
		switch s.Name {
		case "dfpt.cycle":
			kids := children[s.ID]
			if len(kids) != 4 {
				t.Fatalf("dfpt.cycle %d has %d children, want exactly 4 phases", s.ID, len(kids))
			}
			// Phases tile the cycle in order. The µs-granular Chrome
			// timestamps round each boundary by up to ~1ns, so allow a
			// few-ns slop, never a reordering.
			const slop = 16 // ns
			at := s.Start
			for i, kid := range kids {
				if kid.Name != phaseOrder[i] || kid.Cat != "phase" {
					t.Fatalf("dfpt.cycle child %d is %s/%s, want phase/%s", i, kid.Cat, kid.Name, phaseOrder[i])
				}
				if d := kid.Start - at; d < -slop || d > slop {
					t.Fatalf("phase %s starts at %v, want %v (phases must tile the cycle)", kid.Name, kid.Start, at)
				}
				at = kid.Start + kid.Dur
			}
			if at > s.Start+s.Dur+slop {
				t.Fatalf("phases overrun their cycle: end %v > cycle end %v", at, s.Start+s.Dur)
			}
		case "n1", "v1", "h1", "p1":
			if s.Cat != "phase" {
				t.Fatalf("phase span %s has cat %q, want \"phase\"", s.Name, s.Cat)
			}
		}
	}
	if counts["n1"] != counts["dfpt.cycle"] || counts["p1"] != counts["dfpt.cycle"] {
		t.Fatalf("phase/cycle counts disagree: %d cycles, %d n1, %d p1",
			counts["dfpt.cycle"], counts["n1"], counts["p1"])
	}

	// The metrics registry and the trace must tell the same story.
	if got := reg.Counter(obs.MetricDFPTCycles).Value(); got != int64(counts["dfpt.cycle"]) {
		t.Fatalf("dfpt_cycles_total=%d but trace has %d dfpt.cycle spans", got, counts["dfpt.cycle"])
	}
	if got := reg.Counter(obs.MetricSCFSolves).Value(); got != int64(counts["scf"]) {
		t.Fatalf("scf_solves_total=%d but trace has %d scf spans", got, counts["scf"])
	}

	// And the trace alone must reproduce the runtime's straggler analytics:
	// AnalyzeTrace is what qfstats -trace runs on the exported file.
	sum, err := obs.AnalyzeTrace(spans, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.PerCycle {
		t.Fatal("AnalyzeTrace should report per-cycle phase quantiles")
	}
	if got := sum.Phases[obs.PhaseN1].Count; got != counts["dfpt.cycle"] {
		t.Fatalf("AnalyzeTrace saw %d n1 samples, trace has %d cycles", got, counts["dfpt.cycle"])
	}
	if sum.Fragments != nf {
		t.Fatalf("AnalyzeTrace saw %d fragments, run had %d", sum.Fragments, nf)
	}
	if len(sum.TopK) == 0 || len(res.SchedReport.Stragglers.TopK) == 0 {
		t.Fatal("empty straggler top-K")
	}
	// Both tables must name real fragments; cycle counts per fragment come
	// from the same spans, so they agree exactly even where wall-clock
	// rankings may differ between the runtime ledger and the trace view.
	cyclesByFrag := make(map[int]int64)
	for _, row := range res.SchedReport.Stragglers.TopK {
		cyclesByFrag[row.Frag] = row.Cycles
	}
	for _, row := range sum.TopK {
		if row.Frag < 0 || row.Frag >= nf {
			t.Fatalf("trace-derived straggler row names fragment %d of %d", row.Frag, nf)
		}
		if want, ok := cyclesByFrag[row.Frag]; ok && row.Cycles != want {
			t.Fatalf("fragment %d: trace says %d cycles, runtime says %d", row.Frag, row.Cycles, want)
		}
	}
}
