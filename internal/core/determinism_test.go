package core

import (
	"crypto/sha256"
	"math"
	"runtime"
	"testing"

	"qframan/internal/constants"
	"qframan/internal/dfpt"
	"qframan/internal/fragment"
	"qframan/internal/geom"
	"qframan/internal/hessian"
	"qframan/internal/par"
	"qframan/internal/store"
	"qframan/internal/structure"
)

// kernelWidths are the par budgets the determinism property is checked at:
// serial, an odd width that never divides the chunk counts evenly, and
// whatever the host has.
func kernelWidths() []int {
	return []int{1, 3, runtime.NumCPU()}
}

func waterFragment() *fragment.Fragment {
	theta := 104.52 * math.Pi / 180
	return &fragment.Fragment{
		Els: []constants.Element{constants.O, constants.H, constants.H},
		Pos: []geom.Vec3{
			{},
			geom.V(0.9572, 0, 0),
			geom.V(0.9572*math.Cos(theta), 0.9572*math.Sin(theta), 0),
		},
		GlobalIdx: []int{0, 1, 2},
		NumReal:   3,
		Coeff:     1,
	}
}

// TestFragmentDataBitIdenticalAcrossKernelWidths is ISSUE 5's determinism
// property: the same fragment computed at par widths 1, 3, and NumCPU must
// produce bit-identical FragmentData — checked both structurally (BitEqual)
// and through the store codec (the bytes that content addressing and
// crash-resume dedup hash). The grid-Coulomb pipeline is used because it
// exercises every parallel kernel family: batched GEMMs, the Poisson CG
// with its chunked reductions, grid gather/scatter, and the Forces
// chunk-accumulator combine.
func TestFragmentDataBitIdenticalAcrossKernelWidths(t *testing.T) {
	opt := hessian.DefaultJobOptions()
	opt.DFPT.Coulomb = dfpt.GridCoulomb
	opt.DFPT.GridSpacing = 0.8
	opt.DFPT.GridMargin = 4.0

	defer par.SetBudget(0)
	var ref *hessian.FragmentData
	var refSum [sha256.Size]byte
	for _, w := range kernelWidths() {
		par.SetBudget(w)
		data, err := hessian.ComputeFragment(waterFragment(), opt)
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		blob, err := store.Encode(data)
		if err != nil {
			t.Fatalf("width %d: encode: %v", w, err)
		}
		sum := sha256.Sum256(blob)
		if ref == nil {
			ref, refSum = data, sum
			continue
		}
		if !data.BitEqual(ref) {
			t.Fatalf("width %d: FragmentData differs bitwise from width 1", w)
		}
		if sum != refSum {
			t.Fatalf("width %d: codec hash %x differs from width 1's %x", w, sum, refSum)
		}
	}
}

// TestSpectrumBitIdenticalAcrossKernelWidths runs the full pipeline
// (fragmentation → scheduled displacement loops → assembly → Lanczos
// spectrum) at kernel widths 1 and NumCPU and requires the spectra to match
// to the last float64 bit — the end-to-end form of the same guarantee.
func TestSpectrumBitIdenticalAcrossKernelWidths(t *testing.T) {
	sys := structure.BuildWaterDimerSystem(1)
	run := func(width int) *Result {
		par.SetBudget(width)
		cfg := DefaultConfig()
		cfg.Raman.FreqMin, cfg.Raman.FreqMax, cfg.Raman.FreqStep = 200, 4000, 10
		res, err := ComputeRaman(sys, cfg)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		return res
	}
	defer par.SetBudget(0)
	a := run(1)
	b := run(runtime.NumCPU())
	if len(a.Spectrum.Intensity) != len(b.Spectrum.Intensity) {
		t.Fatalf("spectrum lengths differ: %d vs %d", len(a.Spectrum.Intensity), len(b.Spectrum.Intensity))
	}
	for i := range a.Spectrum.Intensity {
		if math.Float64bits(a.Spectrum.Intensity[i]) != math.Float64bits(b.Spectrum.Intensity[i]) {
			t.Fatalf("intensity[%d] differs: %x vs %x", i,
				math.Float64bits(a.Spectrum.Intensity[i]), math.Float64bits(b.Spectrum.Intensity[i]))
		}
	}
}
