package core

import (
	"sort"
	"testing"

	"qframan/internal/dfpt"
	"qframan/internal/par"
	"qframan/internal/structure"
)

// wiredKernels is the roster of par regions the grid-mode pipeline is
// supposed to exercise. The benchmark harness reports per-kernel time from
// the same profile capture; a kernel listed here but recording zero chunks
// means a hot path silently stopped going through the pool (the PR 7 bench
// reported several kernels at 0s because sub-resolution times were rounded
// away — counting chunks is immune to that).
var wiredKernels = []string{
	"dot",
	"gemm_batch",
	"gemv_n",
	"grid_gather",
	"grid_h1_build",
	"grid_scatter",
	"grid_tabulate",
	"lanczos_density",
	"lanczos_vec",
	"poisson_axpy",
	"poisson_boundary",
	"poisson_stencil",
	"scf_forces",
	"spmv",
}

// TestEveryWiredKernelRecordsChunks runs the full grid-Coulomb pipeline
// under profile capture and asserts every wired kernel executed at least
// one chunk.
func TestEveryWiredKernelRecordsChunks(t *testing.T) {
	sys := structure.BuildWaterDimerSystem(1)
	cfg := DefaultConfig()
	cfg.Raman.FreqMin, cfg.Raman.FreqMax, cfg.Raman.FreqStep = 200, 4000, 10
	cfg.Sched.NumLeaders = 1
	cfg.Sched.WorkersPerLeader = 1
	cfg.Sched.Job.DFPT.Coulomb = dfpt.GridCoulomb
	cfg.Sched.Job.DFPT.GridSpacing = 0.8
	cfg.Sched.Job.DFPT.GridMargin = 4.0

	prof := par.StartProfile()
	defer par.StopProfile()
	if _, err := ComputeRaman(sys, cfg); err != nil {
		t.Fatal(err)
	}
	par.StopProfile()

	chunks := prof.ChunksByKernel()
	var missing []string
	for _, k := range wiredKernels {
		if chunks[k] == 0 {
			missing = append(missing, k)
		}
	}
	if len(missing) > 0 {
		var have []string
		for k, n := range chunks {
			if n > 0 {
				have = append(have, k)
			}
		}
		sort.Strings(have)
		t.Fatalf("wired kernels recorded zero chunks: %v (kernels that did run: %v)", missing, have)
	}
}
