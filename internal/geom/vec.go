// Package geom provides 3-D vector arithmetic and linear-time neighbor
// search (cell lists), the geometric substrate for fragmentation (paper
// Eq. 1, §IV-B): detecting covalent bonds, finding generalized-concap
// residue pairs within the distance threshold λ, and enumerating
// residue–water and water–water two-body interactions.
package geom

import "math"

// Vec3 is a point or displacement in 3-D space. Units are whatever the
// caller uses consistently (Å for structures, bohr inside the engine).
type Vec3 struct{ X, Y, Z float64 }

// V constructs a Vec3; it keeps call sites concise where the unkeyed
// composite literal would trip go vet in importing packages.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v − w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns |v|².
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Dist returns |v − w|.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Dist2 returns |v − w|².
func (v Vec3) Dist2(w Vec3) float64 { return v.Sub(w).Norm2() }

// Normalize returns v/|v|; the zero vector is returned unchanged.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Angle returns the angle in radians at vertex b of the triangle a-b-c.
func Angle(a, b, c Vec3) float64 {
	u := a.Sub(b).Normalize()
	w := c.Sub(b).Normalize()
	d := u.Dot(w)
	if d > 1 {
		d = 1
	} else if d < -1 {
		d = -1
	}
	return math.Acos(d)
}

// RotateAbout rotates point p about the axis through origin o with unit
// direction axis by angle theta (radians, right-hand rule).
func RotateAbout(p, o, axis Vec3, theta float64) Vec3 {
	v := p.Sub(o)
	k := axis.Normalize()
	c, s := math.Cos(theta), math.Sin(theta)
	// Rodrigues' rotation formula.
	rot := v.Scale(c).Add(k.Cross(v).Scale(s)).Add(k.Scale(k.Dot(v) * (1 - c)))
	return o.Add(rot)
}
