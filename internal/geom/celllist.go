package geom

import "math"

// CellList is a uniform spatial hash over points, providing linear-time
// enumeration of all pairs within a cutoff. The fragmentation stage uses it
// to find generalized-concap partners and solvent two-body pairs, where an
// O(N²) scan would be hopeless at millions of atoms.
type CellList struct {
	origin     Vec3
	cell       float64 // cell edge length == cutoff
	nx, ny, nz int
	heads      []int32 // head index per cell, −1 when empty
	next       []int32 // linked list through points
	points     []Vec3
}

// NewCellList builds a cell list over points with the given cutoff
// (cell edge). Points may be in any bounded region; the grid adapts to the
// bounding box. cutoff must be positive.
func NewCellList(points []Vec3, cutoff float64) *CellList {
	if cutoff <= 0 {
		panic("geom: NewCellList cutoff must be positive")
	}
	cl := &CellList{cell: cutoff, points: points}
	if len(points) == 0 {
		cl.nx, cl.ny, cl.nz = 1, 1, 1
		cl.heads = []int32{-1}
		return cl
	}
	lo := points[0]
	hi := points[0]
	for _, p := range points[1:] {
		lo.X = math.Min(lo.X, p.X)
		lo.Y = math.Min(lo.Y, p.Y)
		lo.Z = math.Min(lo.Z, p.Z)
		hi.X = math.Max(hi.X, p.X)
		hi.Y = math.Max(hi.Y, p.Y)
		hi.Z = math.Max(hi.Z, p.Z)
	}
	cl.origin = lo
	dim := func(span float64) int {
		n := int(span/cutoff) + 1
		if n < 1 {
			n = 1
		}
		return n
	}
	cl.nx = dim(hi.X - lo.X)
	cl.ny = dim(hi.Y - lo.Y)
	cl.nz = dim(hi.Z - lo.Z)
	cl.heads = make([]int32, cl.nx*cl.ny*cl.nz)
	for i := range cl.heads {
		cl.heads[i] = -1
	}
	cl.next = make([]int32, len(points))
	for i, p := range points {
		c := cl.cellIndex(p)
		cl.next[i] = cl.heads[c]
		cl.heads[c] = int32(i)
	}
	return cl
}

func (cl *CellList) cellCoords(p Vec3) (int, int, int) {
	ix := int((p.X - cl.origin.X) / cl.cell)
	iy := int((p.Y - cl.origin.Y) / cl.cell)
	iz := int((p.Z - cl.origin.Z) / cl.cell)
	clamp := func(v, n int) int {
		if v < 0 {
			return 0
		}
		if v >= n {
			return n - 1
		}
		return v
	}
	return clamp(ix, cl.nx), clamp(iy, cl.ny), clamp(iz, cl.nz)
}

func (cl *CellList) cellIndex(p Vec3) int {
	ix, iy, iz := cl.cellCoords(p)
	return (iz*cl.ny+iy)*cl.nx + ix
}

// ForEachPair invokes fn(i, j, d2) once per unordered pair (i < j) whose
// squared distance d2 is ≤ cutoff². Iteration order is deterministic for a
// fixed input.
func (cl *CellList) ForEachPair(fn func(i, j int, d2 float64)) {
	r2 := cl.cell * cl.cell
	for cz := 0; cz < cl.nz; cz++ {
		for cy := 0; cy < cl.ny; cy++ {
			for cx := 0; cx < cl.nx; cx++ {
				c := (cz*cl.ny+cy)*cl.nx + cx
				for i := cl.heads[c]; i >= 0; i = cl.next[i] {
					// Pairs within the same cell.
					for j := cl.next[i]; j >= 0; j = cl.next[j] {
						cl.emit(int(i), int(j), r2, fn)
					}
					// Pairs with forward half of the 26 neighbors.
					for _, d := range forwardNeighbors {
						nx, ny, nz := cx+d[0], cy+d[1], cz+d[2]
						if nx < 0 || nx >= cl.nx || ny < 0 || ny >= cl.ny || nz < 0 || nz >= cl.nz {
							continue
						}
						nc := (nz*cl.ny+ny)*cl.nx + nx
						for j := cl.heads[nc]; j >= 0; j = cl.next[j] {
							cl.emit(int(i), int(j), r2, fn)
						}
					}
				}
			}
		}
	}
}

func (cl *CellList) emit(i, j int, r2 float64, fn func(i, j int, d2 float64)) {
	d2 := cl.points[i].Dist2(cl.points[j])
	if d2 <= r2 {
		a, b := i, j
		if a > b {
			a, b = b, a
		}
		fn(a, b, d2)
	}
}

// Neighbors returns the indices of all points within cutoff of p,
// excluding exact index self (pass −1 to keep all).
func (cl *CellList) Neighbors(p Vec3, self int) []int {
	r2 := cl.cell * cl.cell
	cx, cy, cz := cl.cellCoords(p)
	var out []int
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny, nz := cx+dx, cy+dy, cz+dz
				if nx < 0 || nx >= cl.nx || ny < 0 || ny >= cl.ny || nz < 0 || nz >= cl.nz {
					continue
				}
				c := (nz*cl.ny+ny)*cl.nx + nx
				for i := cl.heads[c]; i >= 0; i = cl.next[i] {
					if int(i) == self {
						continue
					}
					if cl.points[i].Dist2(p) <= r2 {
						out = append(out, int(i))
					}
				}
			}
		}
	}
	return out
}

// forwardNeighbors is the 13-cell "forward" half of the 26 neighbor offsets,
// chosen so each cell pair is visited exactly once.
var forwardNeighbors = [13][3]int{
	{1, 0, 0},
	{-1, 1, 0}, {0, 1, 0}, {1, 1, 0},
	{-1, -1, 1}, {0, -1, 1}, {1, -1, 1},
	{-1, 0, 1}, {0, 0, 1}, {1, 0, 1},
	{-1, 1, 1}, {0, 1, 1}, {1, 1, 1},
}
