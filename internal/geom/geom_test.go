package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecArithmetic(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, -5, 6}
	if got := a.Add(b); got != (Vec3{5, -3, 9}) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{-3, 7, -3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestCross(t *testing.T) {
	x := Vec3{1, 0, 0}
	y := Vec3{0, 1, 0}
	if got := x.Cross(y); got != (Vec3{0, 0, 1}) {
		t.Fatalf("x×y = %v", got)
	}
	// Anticommutativity.
	if got := y.Cross(x); got != (Vec3{0, 0, -1}) {
		t.Fatalf("y×x = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	v := Vec3{3, 4, 0}.Normalize()
	if math.Abs(v.Norm()-1) > 1e-15 {
		t.Fatalf("normalized norm = %v", v.Norm())
	}
	z := Vec3{}.Normalize()
	if z != (Vec3{}) {
		t.Fatal("normalizing zero vector changed it")
	}
}

func TestAngle(t *testing.T) {
	// Right angle at origin.
	a := Vec3{1, 0, 0}
	b := Vec3{0, 0, 0}
	c := Vec3{0, 1, 0}
	if got := Angle(a, b, c); math.Abs(got-math.Pi/2) > 1e-14 {
		t.Fatalf("Angle = %v want π/2", got)
	}
	// Water-like angle: 104.5°.
	theta := 104.5 * math.Pi / 180
	c2 := Vec3{math.Cos(theta), math.Sin(theta), 0}
	if got := Angle(a, b, c2); math.Abs(got-theta) > 1e-12 {
		t.Fatalf("Angle = %v want %v", got, theta)
	}
}

func TestRotateAbout(t *testing.T) {
	p := Vec3{1, 0, 0}
	got := RotateAbout(p, Vec3{}, Vec3{0, 0, 1}, math.Pi/2)
	want := Vec3{0, 1, 0}
	if got.Dist(want) > 1e-14 {
		t.Fatalf("RotateAbout = %v want %v", got, want)
	}
	// Rotation preserves distance to axis point.
	q := RotateAbout(Vec3{2, 3, 4}, Vec3{1, 1, 1}, Vec3{1, 2, -1}, 0.7)
	d0 := Vec3{2, 3, 4}.Dist(Vec3{1, 1, 1})
	if math.Abs(q.Dist(Vec3{1, 1, 1})-d0) > 1e-12 {
		t.Fatal("rotation changed distance to the origin point")
	}
}

// bruteForcePairs is the O(N²) reference.
func bruteForcePairs(points []Vec3, cutoff float64) map[[2]int]bool {
	out := map[[2]int]bool{}
	r2 := cutoff * cutoff
	for i := range points {
		for j := i + 1; j < len(points); j++ {
			if points[i].Dist2(points[j]) <= r2 {
				out[[2]int{i, j}] = true
			}
		}
	}
	return out
}

func TestCellListMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		n := 50 + rng.Intn(300)
		points := make([]Vec3, n)
		for i := range points {
			points[i] = Vec3{rng.Float64() * 20, rng.Float64() * 15, rng.Float64() * 25}
		}
		cutoff := 2.0 + rng.Float64()*3
		want := bruteForcePairs(points, cutoff)
		got := map[[2]int]bool{}
		NewCellList(points, cutoff).ForEachPair(func(i, j int, d2 float64) {
			if got[[2]int{i, j}] {
				t.Fatalf("pair (%d,%d) emitted twice", i, j)
			}
			got[[2]int{i, j}] = true
			if d := points[i].Dist2(points[j]); math.Abs(d-d2) > 1e-12 {
				t.Fatalf("pair (%d,%d) wrong d2", i, j)
			}
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: cell list found %d pairs, brute force %d", trial, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: missing pair %v", trial, k)
			}
		}
	}
}

func TestCellListNeighbors(t *testing.T) {
	points := []Vec3{{0, 0, 0}, {1, 0, 0}, {5, 0, 0}, {0.5, 0.5, 0}}
	cl := NewCellList(points, 1.5)
	nbrs := cl.Neighbors(points[0], 0)
	found := map[int]bool{}
	for _, i := range nbrs {
		found[i] = true
	}
	if !found[1] || !found[3] || found[2] || found[0] {
		t.Fatalf("Neighbors = %v", nbrs)
	}
}

func TestCellListEmptyAndSingle(t *testing.T) {
	cl := NewCellList(nil, 1)
	count := 0
	cl.ForEachPair(func(i, j int, d2 float64) { count++ })
	if count != 0 {
		t.Fatal("empty cell list emitted pairs")
	}
	cl = NewCellList([]Vec3{{1, 2, 3}}, 1)
	cl.ForEachPair(func(i, j int, d2 float64) { count++ })
	if count != 0 {
		t.Fatal("single-point cell list emitted pairs")
	}
}

// Property: rotation about any axis preserves vector norms.
func TestRotationIsometryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := Vec3{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		axis := Vec3{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		if axis.Norm() == 0 {
			return true
		}
		theta := r.Float64() * 2 * math.Pi
		q := RotateAbout(p, Vec3{}, axis, theta)
		return math.Abs(q.Norm()-p.Norm()) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: cell-list pair count is invariant under rigid translation.
func TestCellListTranslationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(60)
		points := make([]Vec3, n)
		for i := range points {
			points[i] = Vec3{r.Float64() * 10, r.Float64() * 10, r.Float64() * 10}
		}
		shift := Vec3{r.NormFloat64() * 100, r.NormFloat64() * 100, r.NormFloat64() * 100}
		shifted := make([]Vec3, n)
		for i, p := range points {
			shifted[i] = p.Add(shift)
		}
		count := func(ps []Vec3) int {
			c := 0
			NewCellList(ps, 2.5).ForEachPair(func(i, j int, d2 float64) { c++ })
			return c
		}
		return count(points) == count(shifted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
