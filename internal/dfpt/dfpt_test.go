package dfpt

import (
	"math"
	"testing"

	"qframan/internal/constants"
	"qframan/internal/geom"
	"qframan/internal/linalg"
	"qframan/internal/scf"
)

func waterModel(t *testing.T) (*scf.Model, *scf.Result) {
	t.Helper()
	theta := 104.52 * math.Pi / 180
	els := []constants.Element{constants.O, constants.H, constants.H}
	pos := []geom.Vec3{
		{},
		geom.V(0.9572, 0, 0),
		geom.V(0.9572*math.Cos(theta), 0.9572*math.Sin(theta), 0),
	}
	m, err := scf.NewModel(els, pos)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.SolveSCF(scf.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

func methaneModel(t *testing.T) (*scf.Model, *scf.Result) {
	t.Helper()
	d := 1.09 / math.Sqrt(3)
	els := []constants.Element{constants.C, constants.H, constants.H, constants.H, constants.H}
	pos := []geom.Vec3{
		{},
		geom.V(d, d, d), geom.V(d, -d, -d), geom.V(-d, d, -d), geom.V(-d, -d, d),
	}
	m, err := scf.NewModel(els, pos)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.SolveSCF(scf.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

// finiteFieldAlpha computes α by numerical differentiation of the dipole
// under a small field — the ground-truth for the γ-mode DFPT.
func finiteFieldAlpha(t *testing.T, m *scf.Model) [3][3]float64 {
	t.Helper()
	const e = 2e-4
	var alpha [3][3]float64
	for j := 0; j < 3; j++ {
		field := geom.Vec3{}
		switch j {
		case 0:
			field.X = e
		case 1:
			field.Y = e
		case 2:
			field.Z = e
		}
		opt := scf.DefaultOptions()
		opt.Tol = 1e-11
		opt.Field = field
		rp, err := m.SolveSCF(opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Field = field.Scale(-1)
		rm, err := m.SolveSCF(opt)
		if err != nil {
			t.Fatal(err)
		}
		dp := m.Dipole(rp).Sub(m.Dipole(rm)).Scale(1 / (2 * e))
		alpha[0][j], alpha[1][j], alpha[2][j] = dp.X, dp.Y, dp.Z
	}
	return alpha
}

func TestGammaDFPTMatchesFiniteField(t *testing.T) {
	m, res := waterModel(t)
	opt := DefaultOptions()
	opt.Tol = 1e-10
	resp, err := Polarizability(m, res, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := finiteFieldAlpha(t, m)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if d := math.Abs(resp.Alpha[i][j] - want[i][j]); d > 5e-5 {
				t.Errorf("α[%d][%d]: DFPT %v vs finite-field %v", i, j, resp.Alpha[i][j], want[i][j])
			}
		}
	}
}

func TestAlphaSymmetricAndPositive(t *testing.T) {
	m, res := waterModel(t)
	resp, err := Polarizability(m, res, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if d := math.Abs(resp.Alpha[i][j] - resp.Alpha[j][i]); d > 1e-6 {
				t.Errorf("α asymmetry [%d][%d]: %g", i, j, d)
			}
		}
	}
	// Eigenvalues of α must be positive (stable ground state).
	a := linalg.NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, resp.Alpha[i][j])
		}
	}
	a.Symmetrize()
	vals, _ := linalg.EigSym(a)
	for _, v := range vals {
		if v <= 0 {
			t.Fatalf("non-positive polarizability eigenvalue %v (all: %v)", v, vals)
		}
	}
}

func TestAlphaRotationCovariance(t *testing.T) {
	m, res := waterModel(t)
	resp, err := Polarizability(m, res, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Rotate the molecule and recompute; mean polarizability is invariant.
	theta := 104.52 * math.Pi / 180
	axis := geom.V(0.3, 1.1, -0.7)
	pos := []geom.Vec3{
		{},
		geom.V(0.9572, 0, 0),
		geom.V(0.9572*math.Cos(theta), 0.9572*math.Sin(theta), 0),
	}
	for i := range pos {
		pos[i] = geom.RotateAbout(pos[i], geom.Vec3{}, axis, 1.1)
	}
	m2, err := scf.NewModel([]constants.Element{constants.O, constants.H, constants.H}, pos)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := m2.SolveSCF(scf.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := Polarizability(m2, res2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(resp.MeanPolarizability() - resp2.MeanPolarizability()); d > 1e-5 {
		t.Fatalf("mean polarizability changed under rotation by %g", d)
	}
}

func TestMethaneAlphaIsotropic(t *testing.T) {
	m, res := methaneModel(t)
	resp, err := Polarizability(m, res, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mean := resp.MeanPolarizability()
	for i := 0; i < 3; i++ {
		if math.Abs(resp.Alpha[i][i]-mean)/mean > 1e-4 {
			t.Errorf("methane α[%d][%d]=%v deviates from mean %v", i, i, resp.Alpha[i][i], mean)
		}
		for j := 0; j < 3; j++ {
			if i != j && math.Abs(resp.Alpha[i][j])/mean > 1e-4 {
				t.Errorf("methane off-diagonal α[%d][%d]=%v", i, j, resp.Alpha[i][j])
			}
		}
	}
}

func gridOptions() Options {
	opt := DefaultOptions()
	opt.Coulomb = GridCoulomb
	opt.GridSpacing = 0.55
	opt.GridMargin = 6.0
	opt.Tol = 1e-6
	return opt
}

func TestGridModeRuns(t *testing.T) {
	m, res := waterModel(t)
	resp, err := Polarizability(m, res, gridOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Same order of magnitude as the γ-mode reference.
	gres, err := Polarizability(m, res, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := resp.MeanPolarizability() / gres.MeanPolarizability()
	if r < 0.3 || r > 3 {
		t.Fatalf("grid-mode ᾱ=%v vs γ-mode ᾱ=%v: ratio %v out of range",
			resp.MeanPolarizability(), gres.MeanPolarizability(), r)
	}
	// Phase metrics must be populated.
	met := resp.Metrics
	if met.GEMMsN1 == 0 || met.GEMMsH1 == 0 || met.FLOPsN1 == 0 || met.FLOPsH1 == 0 {
		t.Fatalf("grid phase metrics empty: %+v", met)
	}
	if met.PoissonIters == 0 {
		t.Fatal("no Poisson iterations recorded")
	}
	if met.TimeN1 == 0 || met.TimeV1 == 0 || met.TimeH1 == 0 || met.TimeP1 == 0 {
		t.Fatal("phase timings empty")
	}
	// ∫∇n⁽¹⁾ diagnostic stays small.
	if math.Abs(met.GradN1Integral) > 1e-3*float64(resp.Cycles) {
		t.Fatalf("∫∇n1 = %v too large", met.GradN1Integral)
	}
}

func TestStrengthReductionExactness(t *testing.T) {
	// The symmetry-reduced kernels (Fig. 6) must give bit-near-identical
	// polarizabilities with strictly fewer GEMM invocations.
	m, res := waterModel(t)

	optR := gridOptions()
	optR.StrengthReduction = true
	respR, err := Polarizability(m, res, optR)
	if err != nil {
		t.Fatal(err)
	}

	optN := gridOptions()
	optN.StrengthReduction = false
	respN, err := Polarizability(m, res, optN)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if d := math.Abs(respR.Alpha[i][j] - respN.Alpha[i][j]); d > 1e-9 {
				t.Errorf("α[%d][%d] differs between reduced and naive kernels by %g", i, j, d)
			}
		}
	}
	// GEMM reduction: naive issues 2 GEMMs per batch in phase 2 and 3 in
	// phase 4; reduced issues 1 and 1.
	if respR.Metrics.GEMMsN1*2 > respN.Metrics.GEMMsN1 {
		t.Errorf("phase-2 GEMMs: reduced %d vs naive %d — expected 2× reduction",
			respR.Metrics.GEMMsN1, respN.Metrics.GEMMsN1)
	}
	if respR.Metrics.GEMMsH1*2 > respN.Metrics.GEMMsH1 {
		t.Errorf("phase-4 GEMMs: reduced %d vs naive %d — expected 3× reduction",
			respR.Metrics.GEMMsH1, respN.Metrics.GEMMsH1)
	}
	if respR.Metrics.FLOPsN1 >= respN.Metrics.FLOPsN1 {
		t.Error("strength reduction did not reduce phase-2 FLOPs")
	}
}

func TestInvalidDFPTOptions(t *testing.T) {
	m, res := waterModel(t)
	for _, opt := range []Options{
		{MaxIter: 0, Tol: 1e-7, Mixing: 0.5},
		{MaxIter: 10, Tol: 0, Mixing: 0.5},
		{MaxIter: 10, Tol: 1e-7, Mixing: 0},
	} {
		if _, err := Polarizability(m, res, opt); err == nil {
			t.Errorf("accepted options %+v", opt)
		}
	}
	bad := gridOptions()
	bad.GridSpacing = -1
	if _, err := Polarizability(m, res, bad); err == nil {
		t.Error("accepted negative grid spacing")
	}
}

func TestResponseP1Traceless(t *testing.T) {
	// tr(P⁽¹⁾·S) = 0: a field does not change the electron count.
	m, res := waterModel(t)
	resp, err := Polarizability(m, res, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 3; d++ {
		tr := 0.0
		n := m.Basis.Size()
		for i := 0; i < n; i++ {
			tr += linalg.Dot(resp.P1[d].Row(i), m.S.Row(i))
		}
		if math.Abs(tr) > 1e-8 {
			t.Errorf("direction %d: tr(P1·S) = %g", d, tr)
		}
	}
}

// benchModel builds the shared benchmark fragment (water).
func benchModel(tb testing.TB) (*scf.Model, *scf.Result) {
	theta := 104.52 * math.Pi / 180
	els := []constants.Element{constants.O, constants.H, constants.H}
	pos := []geom.Vec3{
		{},
		geom.V(0.9572, 0, 0),
		geom.V(0.9572*math.Cos(theta), 0.9572*math.Sin(theta), 0),
	}
	m, err := scf.NewModel(els, pos)
	if err != nil {
		tb.Fatal(err)
	}
	res, err := m.SolveSCF(scf.DefaultOptions())
	if err != nil {
		tb.Fatal(err)
	}
	return m, res
}
