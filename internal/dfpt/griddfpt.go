package dfpt

import (
	"fmt"
	"time"

	"qframan/internal/grid"
	"qframan/internal/linalg"
	"qframan/internal/par"
	"qframan/internal/poisson"
	"qframan/internal/scf"
)

// gridEnv holds the precomputed real-space machinery for one fragment
// geometry: the integration grid, its batches, and per-batch tabulated basis
// values and gradients. Building it once per geometry and reusing it across
// DFPT cycles and field directions mirrors the paper's setup/loop split.
type gridEnv struct {
	g       *grid.Grid
	batches []batchData
}

// batchData is one grid batch: the local basis tabulation X (points×nloc)
// and its Cartesian gradients, plus the index maps back to the global grid
// and basis.
type batchData struct {
	indices []int // global grid point indices
	funcs   []int // global basis function indices
	x       *linalg.Matrix
	gx      [3]*linalg.Matrix
}

func newGridEnv(m *scf.Model, opt Options) (*gridEnv, error) {
	if opt.GridSpacing <= 0 || opt.GridMargin <= 0 || opt.BatchSide <= 0 {
		return nil, fmt.Errorf("dfpt: invalid grid options %+v", opt)
	}
	g := grid.Cover(m.Pos, opt.GridMargin, opt.GridSpacing)
	raw := g.Batches(opt.BatchSide, m.Basis)
	env := &gridEnv{g: g, batches: make([]batchData, len(raw))}
	// Tabulation is the expensive part of every displaced geometry's setup;
	// batches are independent (each writes only env.batches[bi]), so it
	// shards across the kernel pool.
	par.For("grid_tabulate", len(raw), 1, func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			b := raw[bi]
			npts, nloc := len(b.Indices), len(b.Funcs)
			x := linalg.NewMatrix(npts, nloc)
			var gx [3]*linalg.Matrix
			for d := range gx {
				gx[d] = linalg.NewMatrix(npts, nloc)
			}
			for p, idx := range b.Indices {
				pt := g.Point(idx)
				for c, fi := range b.Funcs {
					f := &m.Basis.Funcs[fi]
					x.Set(p, c, f.ValueAt(pt))
					gr := f.GradAt(pt)
					gx[0].Set(p, c, gr.X)
					gx[1].Set(p, c, gr.Y)
					gx[2].Set(p, c, gr.Z)
				}
			}
			env.batches[bi] = batchData{indices: b.Indices, funcs: b.Funcs, x: x, gx: gx}
		}
	})
	return env, nil
}

// gather extracts the local block p1[funcs×funcs].
func (b *batchData) gather(p1 *linalg.Matrix) *linalg.Matrix {
	nloc := len(b.funcs)
	out := linalg.NewMatrix(nloc, nloc)
	for i, fi := range b.funcs {
		row := out.Row(i)
		src := p1.Row(fi)
		for j, fj := range b.funcs {
			row[j] = src[fj]
		}
	}
	return out
}

// addGridResponse runs phases 2–4 of the DFPT cycle: response density on the
// grid, Poisson solve, and the grid response Hamiltonian added into h1.
func (e *gridEnv) addGridResponse(m *scf.Model, p1, h1 *linalg.Matrix, dir int, opt Options, met *PhaseMetrics) error {
	exec := opt.Executor
	if exec == nil {
		exec = &linalg.HostExecutor{Ops: m.Ops}
	}
	// Phase-aware executors (the elastic-offloading accel.BatchingExecutor)
	// get told which pipeline phase the upcoming GEMMs belong to.
	phased, _ := exec.(interface{ BeginPhase(string) })

	// ---- Phase 2: n⁽¹⁾(r) (and ∇n⁽¹⁾) by batched GEMMs. ----
	// Transfer model (paper §V-F, aggregated data transfer): P⁽¹⁾ is
	// uploaded once per cycle and scattered on the device, so each call
	// carries only its share of that upload plus its own small output.
	nb := m.Basis.Size()
	p1Share := 8 * int64(nb) * int64(nb) / int64(len(e.batches))
	t0 := time.Now()
	n1 := make([]float64, e.g.NumPoints())
	gradN1 := make([]float64, e.g.NumPoints()) // ∇n⁽¹⁾ along dir (diagnostic)
	g1s := make([]*linalg.Matrix, len(e.batches))
	calls := make([]linalg.GemmCall, len(e.batches))
	// Per-batch gathers write disjoint slots of calls/g1s — point-sharded
	// over batches.
	par.For("grid_gather", len(e.batches), 1, func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			b := &e.batches[bi]
			p1loc := b.gather(p1)
			g1 := linalg.NewMatrix(b.x.Rows, b.x.Cols)
			g1s[bi] = g1
			calls[bi] = linalg.GemmCall{
				Alpha: 1, A: b.x, B: p1loc, C: g1,
				// Offloaded as a fused density kernel: X is resident on the
				// device, the aggregated P⁽¹⁾ share moves in, the reduced
				// n⁽¹⁾ values move out.
				TransferBytes: p1Share + 8*int64(b.x.Rows),
			}
		}
	})
	var extra []linalg.GemmCall
	var naiveG []*linalg.Matrix
	if !opt.StrengthReduction {
		// Naive ∇n⁽¹⁾ ignores the symmetry of P⁽¹⁾ and computes the second
		// contraction ∇X·P⁽¹⁾ with its own GEMM per batch (Fig. 6(b)).
		naiveG = make([]*linalg.Matrix, len(e.batches))
		extra = make([]linalg.GemmCall, len(e.batches))
		par.For("grid_gather", len(e.batches), 1, func(lo, hi int) {
			for bi := lo; bi < hi; bi++ {
				b := &e.batches[bi]
				p1loc := b.gather(p1)
				ng := linalg.NewMatrix(b.x.Rows, b.x.Cols)
				naiveG[bi] = ng
				extra[bi] = linalg.GemmCall{
					Alpha: 1, A: b.gx[dir], B: p1loc, C: ng,
					TransferBytes: p1Share + 8*int64(b.x.Rows),
				}
			}
		})
	}
	all := append(calls, extra...)
	met.GEMMsN1 += int64(len(all))
	for i := range all {
		met.FLOPsN1 += all[i].FLOPs()
	}
	if phased != nil {
		phased.BeginPhase("n1")
	}
	exec.Execute(all)
	// Batches partition the grid, so their point scatters into n1/gradN1
	// touch disjoint indices — safe to shard over batches.
	par.For("grid_scatter", len(e.batches), 1, func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			b := &e.batches[bi]
			g1 := g1s[bi]
			for p, idx := range b.indices {
				n1[idx] += linalg.Dot(g1.Row(p), b.x.Row(p))
				if opt.StrengthReduction {
					// Symmetric P⁽¹⁾: ∇n⁽¹⁾ = 2·(X·P⁽¹⁾)∘∇X, no extra GEMM.
					gradN1[idx] += 2 * linalg.Dot(g1.Row(p), b.gx[dir].Row(p))
				} else {
					gradN1[idx] += linalg.Dot(g1.Row(p), b.gx[dir].Row(p)) +
						linalg.Dot(naiveG[bi].Row(p), b.x.Row(p))
				}
			}
		}
	})
	// ∫∇n⁽¹⁾ d³r vanishes for a density that decays inside the box; the
	// accumulated value is exposed as a pipeline health diagnostic.
	for _, v := range gradN1 {
		met.GradN1Integral += v * e.g.Weight()
	}
	met.TimeN1 += time.Since(t0)

	// ---- Phase 3: Poisson solve for the response potential. ----
	t0 = time.Now()
	v1, iters, err := poisson.Solve(e.g, n1, poisson.Options{Tol: 1e-7, MaxIter: 20000})
	if err != nil {
		return fmt.Errorf("dfpt: response Poisson solve: %w", err)
	}
	met.PoissonIters += iters
	met.TimeV1 += time.Since(t0)

	// ---- Phase 4: response Hamiltonian H⁽¹⁾ by batched GEMMs. ----
	// Transfer model: each call uploads its batch's v⁽¹⁾ values; the H⁽¹⁾
	// blocks accumulate on the device and come back as one aggregated
	// matrix per cycle (its share is charged per call).
	h1Share := 8 * int64(nb) * int64(nb) / int64(len(e.batches))
	t0 = time.Now()
	w := e.g.Weight()
	type h1Batch struct {
		bi   int
		mats []*linalg.Matrix // result matrices to scatter
	}
	// Each batch contributes a fixed number of calls (1 strength-reduced,
	// 3 naive), so the call list is preallocated and every batch writes its
	// own slots — sharded over batches like the density phase.
	callsPerBatch := 1
	if !opt.StrengthReduction {
		callsPerBatch = 3
	}
	h1calls := make([]linalg.GemmCall, callsPerBatch*len(e.batches))
	h1batches := make([]h1Batch, len(e.batches))
	par.For("grid_h1_build", len(e.batches), 1, func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			b := &e.batches[bi]
			npts, nloc := b.x.Rows, b.x.Cols
			// V = w·v⁽¹⁾ on the batch points.
			vv := make([]float64, npts)
			for p, idx := range b.indices {
				vv[p] = w * v1[idx]
			}
			if opt.StrengthReduction {
				// Fig. 6(a): B = Xᵀ·V·(X/2 + ∇X_dir); H⁽¹⁾ block = B + Bᵀ.
				y := linalg.NewMatrix(npts, nloc)
				for p := 0; p < npts; p++ {
					xr, gr, yr := b.x.Row(p), b.gx[dir].Row(p), y.Row(p)
					for c := 0; c < nloc; c++ {
						yr[c] = vv[p] * (0.5*xr[c] + gr[c])
					}
				}
				bm := linalg.NewMatrix(nloc, nloc)
				h1calls[bi] = linalg.GemmCall{
					TransA: true, Alpha: 1, A: b.x, B: y, C: bm,
					// Fused Hamiltonian kernel: v⁽¹⁾ values in, aggregated
					// H⁽¹⁾ share out.
					TransferBytes: 8*int64(npts) + h1Share,
				}
				h1batches[bi] = h1Batch{bi: bi, mats: []*linalg.Matrix{bm}}
			} else {
				// Naive: Xᵀ(VX) + Xᵀ(V∇X) + (V∇X)ᵀX — three GEMMs. The third
				// term is ∇Xᵀ·V·X written with V absorbed into ∇X, which
				// makes it the literal operand-swapped transpose pair of the
				// second call — the pattern the batch planner's §V-D strength
				// reduction detects and replaces with a bit-exact copy.
				vx := linalg.NewMatrix(npts, nloc)
				vgx := linalg.NewMatrix(npts, nloc)
				for p := 0; p < npts; p++ {
					xr, gr := b.x.Row(p), b.gx[dir].Row(p)
					vxr, vgr := vx.Row(p), vgx.Row(p)
					for c := 0; c < nloc; c++ {
						vxr[c] = vv[p] * xr[c]
						vgr[c] = vv[p] * gr[c]
					}
				}
				m1 := linalg.NewMatrix(nloc, nloc)
				m2 := linalg.NewMatrix(nloc, nloc)
				m3 := linalg.NewMatrix(nloc, nloc)
				tb := 8*int64(npts) + h1Share
				h1calls[3*bi] = linalg.GemmCall{TransA: true, Alpha: 1, A: b.x, B: vx, C: m1, TransferBytes: tb}
				h1calls[3*bi+1] = linalg.GemmCall{TransA: true, Alpha: 1, A: b.x, B: vgx, C: m2, TransferBytes: tb}
				h1calls[3*bi+2] = linalg.GemmCall{TransA: true, Alpha: 1, A: vgx, B: b.x, C: m3, TransferBytes: tb}
				h1batches[bi] = h1Batch{bi: bi, mats: []*linalg.Matrix{m1, m2, m3}}
			}
		}
	})
	met.GEMMsH1 += int64(len(h1calls))
	for i := range h1calls {
		met.FLOPsH1 += h1calls[i].FLOPs()
	}
	if phased != nil {
		phased.BeginPhase("h1")
	}
	exec.Execute(h1calls)
	for _, hb := range h1batches {
		b := &e.batches[hb.bi]
		nloc := len(b.funcs)
		for i := 0; i < nloc; i++ {
			gi := b.funcs[i]
			for j := 0; j < nloc; j++ {
				gj := b.funcs[j]
				var v float64
				if opt.StrengthReduction {
					v = hb.mats[0].At(i, j) + hb.mats[0].At(j, i)
				} else {
					// m1 symmetric + m2 + m3, where m3 = m2ᵀ bit for bit
					// (whether the planner skipped it or computed it).
					v = hb.mats[0].At(i, j) + hb.mats[1].At(i, j) + hb.mats[2].At(i, j)
				}
				h1.Add(gi, gj, v)
			}
		}
	}
	met.TimeH1 += time.Since(t0)
	return nil
}
