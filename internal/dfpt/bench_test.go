package dfpt

import "testing"

func BenchmarkPolarizabilityGamma(b *testing.B) {
	m, res := benchModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Polarizability(m, res, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolarizabilityGridCycle(b *testing.B) {
	m, res := benchModel(b)
	opt := DefaultOptions()
	opt.Coulomb = GridCoulomb
	opt.GridSpacing = 0.8
	opt.GridMargin = 4.0
	opt.Tol = 1e12 // single cycle: the paper's "DFPT time per cycle"
	opt.MaxIter = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Polarizability(m, res, opt); err != nil {
			b.Fatal(err)
		}
	}
}
