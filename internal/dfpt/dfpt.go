// Package dfpt implements density-functional-perturbation-theory response
// calculations on top of the scf engine: the polarizability tensor α from
// the first-order response to a uniform electric field. This is the
// per-displacement worker step of the paper (§V-A): each DFPT cycle runs the
// four phases the paper names — response density matrix P⁽¹⁾, real-space
// response density n⁽¹⁾(r), Poisson solve for the response potential
// v⁽¹⁾(r), and response Hamiltonian H⁽¹⁾ — with per-phase timing, GEMM, and
// FLOP accounting (Table I's two reported parts are n⁽¹⁾ and H⁽¹⁾).
//
// Two Coulomb-response modes exist:
//
//   - GammaCoulomb: the charge-fluctuation response is evaluated through the
//     same Klopman–Ohno γ kernel as the ground state. This mode is exactly
//     the derivative of the variational SCF energy and is validated against
//     finite-field calculations to machine-ish precision.
//   - GridCoulomb: the paper's real-space pipeline — batched basis
//     evaluation, many small GEMMs, conjugate-gradient Poisson solve. It
//     exercises the exact computational pattern the paper optimizes
//     (including the symmetry-reduced kernels of Fig. 6) and is the mode
//     benchmarked for Table I and Fig. 9.
package dfpt

import (
	"fmt"
	"math"
	"time"

	"qframan/internal/linalg"
	"qframan/internal/obs"
	"qframan/internal/scf"
)

// CoulombMode selects how the response Coulomb potential is computed.
type CoulombMode int

const (
	// GammaCoulomb uses the Klopman–Ohno charge-fluctuation kernel.
	GammaCoulomb CoulombMode = iota
	// GridCoulomb uses the real-space grid + Poisson pipeline.
	GridCoulomb
)

// Options configures the DFPT cycle.
type Options struct {
	MaxIter int
	Tol     float64 // convergence on max |ΔP⁽¹⁾| between cycles
	Mixing  float64

	Coulomb CoulombMode

	// Grid parameters (GridCoulomb only); bohr.
	GridSpacing float64
	GridMargin  float64
	BatchSide   int // grid points per batch edge

	// StrengthReduction enables the symmetry-aware kernels of §V-D
	// (Fig. 6): identical results with fewer GEMM invocations.
	StrengthReduction bool

	// Executor runs the batched grid GEMMs; nil means a host executor.
	Executor linalg.Executor

	// InitP1 warm-starts the response density matrices per field direction
	// (e.g. with the converged response of the undisplaced reference
	// geometry in the displacement loop). The matrices are copied, never
	// written, so one set may be shared across concurrent workers.
	InitP1 [3]*linalg.Matrix

	// Obs carries the observability handles; each DFPT cycle then records a
	// span with its four phase children (P⁽¹⁾, n⁽¹⁾, v⁽¹⁾, H⁽¹⁾) plus the
	// per-phase histograms. Execution-only: excluded from the store's
	// content fingerprint; the zero Scope disables instrumentation.
	Obs obs.Scope

	// cycBuf, when set, is a scratch buffer respond reuses for its cycle
	// samples instead of allocating one per solve. Polarizability points it
	// at a stack variable shared by its (sequential) direction and retry
	// solves; it must never be shared across goroutines.
	cycBuf *[]obs.CycleSample
}

// DefaultOptions returns settings adequate for fragment polarizabilities.
func DefaultOptions() Options {
	return Options{
		MaxIter:     400,
		Tol:         1e-7,
		Mixing:      0.3,
		Coulomb:     GammaCoulomb,
		GridSpacing: 0.7,
		GridMargin:  5.0,
		BatchSide:   6,
		// The reduced kernels are the production path.
		StrengthReduction: true,
	}
}

// PhaseMetrics accumulates per-phase cost over all cycles and field
// directions of one polarizability calculation.
type PhaseMetrics struct {
	// Wall time per phase.
	TimeP1, TimeN1, TimeV1, TimeH1 time.Duration
	// GEMM invocation counts for the grid phases.
	GEMMsN1, GEMMsH1 int64
	// FLOPs for the grid phases (Table I reports these two parts).
	FLOPsN1, FLOPsH1 int64
	// PoissonIters accumulates CG iterations of phase 3.
	PoissonIters int
	// GradN1Integral accumulates ∫∇n⁽¹⁾ d³r over all cycles — a grid
	// health diagnostic that must stay near zero (the response density
	// decays inside the box).
	GradN1Integral float64
}

// Response is the converged field response.
type Response struct {
	// Alpha is the polarizability tensor α_ij = ∂μ_i/∂E_j (a.u.).
	Alpha [3][3]float64
	// P1 are the response density matrices per field direction.
	P1 [3]*linalg.Matrix
	// Cycles is the total number of DFPT cycles summed over directions.
	Cycles int
	// MixingUsed is the mixing factor that actually converged (the
	// robustness ladder may have reduced it); callers running many related
	// responses (the displacement loop) reuse it to skip doomed attempts.
	MixingUsed float64
	// Metrics holds the per-phase accounting.
	Metrics PhaseMetrics
}

// MeanPolarizability returns ᾱ = tr(α)/3.
func (r *Response) MeanPolarizability() float64 {
	return (r.Alpha[0][0] + r.Alpha[1][1] + r.Alpha[2][2]) / 3
}

// Polarizability computes the static polarizability tensor of a converged
// ground state by running one DFPT response per field direction.
func Polarizability(m *scf.Model, ground *scf.Result, opt Options) (*Response, error) {
	if opt.MaxIter <= 0 || opt.Tol <= 0 || opt.Mixing <= 0 || opt.Mixing > 1 {
		return nil, fmt.Errorf("dfpt: invalid options %+v", opt)
	}
	resp := &Response{}
	sc, dfptSpan := opt.Obs.Begin("dfpt", "dfpt")
	defer dfptSpan.End()
	if opt.Obs.Enabled() {
		var cycScratch []obs.CycleSample
		opt.cycBuf = &cycScratch
	}
	var gridEnv *gridEnv
	if opt.Coulomb == GridCoulomb {
		var err error
		gridEnv, err = newGridEnv(m, opt)
		if err != nil {
			return nil, err
		}
	}
	for dir := 0; dir < 3; dir++ {
		dirSc, dirSpan := sc.Begin("dfpt.dir", "dfpt", obs.A("dir", int64(dir)))
		// Robustness ladder: small-gap fragments can oscillate in the
		// response loop; halving the mixing is the standard remedy.
		var p1 *linalg.Matrix
		var cycles int
		var err error
		for _, scale := range []float64{1, 0.5, 0.25, 0.1} {
			o := opt
			o.Mixing = opt.Mixing * scale
			o.MaxIter = int(float64(opt.MaxIter) / scale)
			if o.MaxIter > 3*opt.MaxIter {
				o.MaxIter = 3 * opt.MaxIter
			}
			o.Obs = dirSc
			p1, cycles, err = respond(m, ground, dir, o, gridEnv, &resp.Metrics)
			if err == nil {
				resp.MixingUsed = o.Mixing
				break
			}
		}
		dirSpan.End(obs.A("cycles", int64(cycles)))
		if err != nil {
			return nil, fmt.Errorf("dfpt: direction %d: %w", dir, err)
		}
		resp.P1[dir] = p1
		resp.Cycles += cycles
		for i := 0; i < 3; i++ {
			// α_i,dir = ∂μ_i/∂E_dir = −tr(P⁽¹⁾_dir · D^i).
			resp.Alpha[i][dir] = -traceProduct(p1, m.Dip[i])
		}
	}
	return resp, nil
}

// respond runs the self-consistent DFPT cycle for one field direction and
// returns the converged response density matrix.
func respond(m *scf.Model, ground *scf.Result, dir int, opt Options, env *gridEnv, met *PhaseMetrics) (*linalg.Matrix, int, error) {
	n := m.Basis.Size()
	nocc := m.NumOcc()
	nvirt := n - nocc
	if nvirt == 0 {
		return nil, 0, fmt.Errorf("dfpt: no virtual orbitals (basis %d, occupied %d)", n, nocc)
	}
	hExt := m.Dip[dir] // +D^dir per unit field (electron charge −1)

	p1 := linalg.NewMatrix(n, n)
	if init := opt.InitP1[dir]; init != nil && init.Rows == n {
		p1.CopyFrom(init)
	}
	h1 := linalg.NewMatrix(n, n)
	obsOn := opt.Obs.Enabled()
	var samples []obs.CycleSample
	var base time.Time
	if obsOn {
		// Cycles are accumulated locally and flushed as one batch per
		// solve: on µs-scale gamma cycles, per-cycle locking and histogram
		// updates alone would cost several percent of the solve. Phase
		// boundaries are marked as time.Since(base) offsets — a single
		// monotonic clock read, roughly half the cost of time.Now.
		base = time.Now()
		if opt.cycBuf != nil {
			samples = (*opt.cycBuf)[:0]
		} else {
			samples = make([]obs.CycleSample, 0, min(opt.MaxIter, 16))
		}
		defer func() {
			opt.Obs.RecordDFPTCycles(base, samples)
			if opt.cycBuf != nil {
				// Hand the (possibly grown) buffer back for the next solve;
				// RecordDFPTCycles copied the samples out synchronously.
				*opt.cycBuf = samples
			}
		}()
	}
	for iter := 1; iter <= opt.MaxIter; iter++ {
		var cycOff, hEndOff time.Duration
		var durs [obs.NumPhases]time.Duration
		// Response Hamiltonian: external + Coulomb response of current P1.
		switch opt.Coulomb {
		case GammaCoulomb:
			if obsOn {
				cycOff = time.Since(base)
				durs[obs.PhaseN1], durs[obs.PhaseV1], durs[obs.PhaseH1], hEndOff =
					gammaResponseTimed(m, p1, hExt, h1, met, base, cycOff)
			} else {
				h1.CopyFrom(hExt)
				addGammaResponse(m, p1, h1)
			}
		case GridCoulomb:
			if obsOn {
				cycOff = time.Since(base)
			}
			h1.CopyFrom(hExt)
			// The grid pipeline already times its three phases into met;
			// per-cycle durations are the deltas across the call.
			preN1, preV1, preH1 := met.TimeN1, met.TimeV1, met.TimeH1
			if err := env.addGridResponse(m, p1, h1, dir, opt, met); err != nil {
				return nil, iter, err
			}
			durs[obs.PhaseN1] = met.TimeN1 - preN1
			durs[obs.PhaseV1] = met.TimeV1 - preV1
			durs[obs.PhaseH1] = met.TimeH1 - preH1
			if obsOn {
				hEndOff = time.Since(base)
			}
		}

		// Phase 1: response density matrix by sum over states. When
		// instrumented, the H1 boundary read doubles as the P1 start.
		var t0 time.Time
		if !obsOn {
			t0 = time.Now()
		}
		newP1 := responseDensity(m, ground, h1, ground.Sigma)
		var dP1, cycTotal time.Duration
		if obsOn {
			endOff := time.Since(base)
			dP1 = endOff - hEndOff
			durs[obs.PhaseP1] = dP1
			// The cycle span ends at the last phase boundary: mixing and
			// the convergence test stay outside, so phases tile the cycle.
			cycTotal = endOff - cycOff
		} else {
			dP1 = time.Since(t0)
		}
		met.TimeP1 += dP1

		var maxDelta float64
		for i, v := range newP1.Data {
			d := math.Abs(v - p1.Data[i])
			if d > maxDelta {
				maxDelta = d
			}
			if math.IsNaN(d) {
				// NaN compares false against everything — without this
				// check a diverged response would slip past the
				// convergence test wherever its healthy entries settle.
				return nil, iter, fmt.Errorf("dfpt: response diverged (NaN) at cycle %d", iter)
			}
			p1.Data[i] = (1-opt.Mixing)*p1.Data[i] + opt.Mixing*v
		}
		if maxDelta > 1e12 {
			return nil, iter, fmt.Errorf("dfpt: response diverging (|ΔP1| = %g) at cycle %d", maxDelta, iter)
		}
		if obsOn {
			samples = append(samples, obs.CycleSample{
				Iter: int32(iter), Start: cycOff, Durs: durs, Total: cycTotal,
			})
		}
		if maxDelta < opt.Tol {
			return p1, iter, nil
		}
	}
	return nil, opt.MaxIter, fmt.Errorf("dfpt: cycle not converged after %d iterations", opt.MaxIter)
}

// responseDensity computes the uncoupled first-order density matrix for the
// perturbation h1 (the field leaves S unchanged, so no overlap-response
// terms appear). With occupations f_p the standard perturbation sum is
//
//	P⁽¹⁾ = Σ_{p≠q} w_pq (c_qᵀ h1 c_p) c_q c_pᵀ,
//	w_pq = (f_p − f_q)/(ε_p − ε_q),
//
// which reduces to the closed-shell occupied→virtual sum for integral
// occupations, and which Fermi smearing regularizes: for near-degenerate
// pairs w_pq tends to the finite derivative f'(ε), so small-gap fragments
// stay well-conditioned.
func responseDensity(m *scf.Model, ground *scf.Result, h1 *linalg.Matrix, smearing float64) *linalg.Matrix {
	n := m.Basis.Size()
	// Fast path: when every orbital is within occTol of full or empty,
	// only occupied×virtual pairs carry non-negligible weight (intra-group
	// pairs have |f_p−f_q| ≤ occTol), and the block formulation halves the
	// GEMM work — this is the hot loop of the whole displacement pipeline.
	// The block still uses the exact per-pair occupation differences, so
	// the smearing tails are treated exactly.
	const occTol = 1e-3
	fractional := false
	for _, f := range ground.Occ {
		if f > occTol && f < 2-occTol {
			fractional = true
			break
		}
	}
	if !fractional {
		return responseDensityGapped(m, ground, h1, occTol)
	}
	// hmo = Cᵀ h1 C.
	tmp := linalg.MatMul(true, false, ground.C, h1, m.Ops)
	hmo := linalg.MatMul(false, false, tmp, ground.C, m.Ops)
	// Scale by the occupation-difference ratio: M_qp = w_pq · hmo_qp.
	for q := 0; q < n; q++ {
		row := hmo.Row(q)
		for p := 0; p < n; p++ {
			if p == q {
				row[p] = 0
				continue
			}
			df := ground.Occ[p] - ground.Occ[q]
			de := ground.Eps[p] - ground.Eps[q]
			switch {
			case math.Abs(de) > 1e-8:
				row[p] *= df / de
			case smearing > 0:
				// Degenerate pair: use the analytic limit f'(ε̄).
				g := 0.25 * (ground.Occ[p] + ground.Occ[q]) // per-spin mean
				row[p] *= -2 / smearing * g * (1 - g)
			default:
				row[p] = 0
			}
		}
	}
	// P1 = C·M·Cᵀ (M_qp includes the pair weight; the symmetric partner
	// (q,p) carries the same weight, so P1 is symmetric).
	cm := linalg.MatMul(false, false, ground.C, hmo, m.Ops)
	p1 := linalg.NewMatrix(n, n)
	linalg.Gemm(false, true, 1, cm, ground.C, 0, p1, m.Ops)
	p1.Symmetrize()
	return p1
}

// responseDensityGapped is the (near-)integral-occupation specialization:
// P⁽¹⁾ = Z + Zᵀ with Z = C_v·U·C_oᵀ, U_ai = (f_i−f_a)·(c_aᵀ h1 c_i)/(ε_i−ε_a).
func responseDensityGapped(m *scf.Model, ground *scf.Result, h1 *linalg.Matrix, occTol float64) *linalg.Matrix {
	n := m.Basis.Size()
	var occIdx, virtIdx []int
	for k, f := range ground.Occ {
		if f > occTol {
			occIdx = append(occIdx, k)
		} else {
			virtIdx = append(virtIdx, k)
		}
	}
	no, nv := len(occIdx), len(virtIdx)
	cOcc := linalg.NewMatrix(n, no)
	cVirt := linalg.NewMatrix(n, nv)
	for i := 0; i < n; i++ {
		for k, o := range occIdx {
			cOcc.Set(i, k, ground.C.At(i, o))
		}
		for k, v := range virtIdx {
			cVirt.Set(i, k, ground.C.At(i, v))
		}
	}
	tmp := linalg.MatMul(true, false, cVirt, h1, m.Ops)
	u := linalg.MatMul(false, false, tmp, cOcc, m.Ops)
	for a := 0; a < nv; a++ {
		ea := ground.Eps[virtIdx[a]]
		fa := ground.Occ[virtIdx[a]]
		row := u.Row(a)
		for i := 0; i < no; i++ {
			de := ground.Eps[occIdx[i]] - ea
			if de > -1e-9 && de < 1e-9 {
				row[i] = 0
			} else {
				row[i] *= (ground.Occ[occIdx[i]] - fa) / de
			}
		}
	}
	vu := linalg.MatMul(false, false, cVirt, u, m.Ops)
	p1 := linalg.NewMatrix(n, n)
	linalg.Gemm(false, true, 1, vu, cOcc, 0, p1, m.Ops)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			s := p1.At(i, j) + p1.At(j, i)
			p1.Set(i, j, s)
			p1.Set(j, i, s)
		}
		p1.Set(i, i, 2*p1.At(i, i))
	}
	return p1
}

// addGammaResponse adds the charge-fluctuation response Hamiltonian
// ½S_μν(V⁽¹⁾_A + V⁽¹⁾_B) with V⁽¹⁾ = γ·Δq⁽¹⁾ to h1. The three steps are
// the γ-mode realizations of the paper's n⁽¹⁾, v⁽¹⁾ and H⁽¹⁾ phases (the
// response charges stand in for the real-space response density).
func addGammaResponse(m *scf.Model, p1, h1 *linalg.Matrix) {
	dq1 := gammaResponseCharges(m, p1)
	v1 := gammaResponsePotential(m, dq1)
	addGammaResponseH1(m, v1, h1)
}

// gammaResponseTimed runs the same three steps as addGammaResponse with a
// monotonic clock read (offset from base) at each phase boundary, resetting
// h1 from hExt inside the H⁽¹⁾ phase. The caller supplies the n⁽¹⁾ start
// offset (its cycle-start read) and receives the H⁽¹⁾ end offset, which
// doubles as the P⁽¹⁾ start — two clock reads inside instead of four. It
// both accumulates the package metrics and returns the per-cycle durations
// for the span recorder.
func gammaResponseTimed(m *scf.Model, p1, hExt, h1 *linalg.Matrix, met *PhaseMetrics, base time.Time, start time.Duration) (dn1, dv1, dh1, end time.Duration) {
	dq1 := gammaResponseCharges(m, p1)
	t1 := time.Since(base)
	v1 := gammaResponsePotential(m, dq1)
	t2 := time.Since(base)
	h1.CopyFrom(hExt)
	addGammaResponseH1(m, v1, h1)
	end = time.Since(base)
	dn1, dv1, dh1 = t1-start, t2-t1, end-t2
	met.TimeN1 += dn1
	met.TimeV1 += dv1
	met.TimeH1 += dh1
	return dn1, dv1, dh1, end
}

// gammaResponseCharges computes the response Mulliken charges
// Δq⁽¹⁾_A = Σ_{μ∈A} (P⁽¹⁾·S)_μμ — the n⁽¹⁾ phase of γ mode.
func gammaResponseCharges(m *scf.Model, p1 *linalg.Matrix) []float64 {
	na := m.NumAtoms()
	dq1 := make([]float64, na)
	n := m.Basis.Size()
	for i := 0; i < n; i++ {
		a := m.Basis.Funcs[i].Atom
		dq1[a] += linalg.Dot(p1.Row(i), m.S.Row(i))
	}
	return dq1
}

// gammaResponsePotential computes V⁽¹⁾ = γ·Δq⁽¹⁾ — the v⁽¹⁾ phase.
func gammaResponsePotential(m *scf.Model, dq1 []float64) []float64 {
	na := m.NumAtoms()
	v1 := make([]float64, na)
	for a := 0; a < na; a++ {
		var s float64
		for b := 0; b < na; b++ {
			s += m.Gamma.At(a, b) * dq1[b]
		}
		v1[a] = s
	}
	return v1
}

// addGammaResponseH1 adds ½S_μν(V⁽¹⁾_A + V⁽¹⁾_B) to h1 — the H⁽¹⁾ phase.
func addGammaResponseH1(m *scf.Model, v1 []float64, h1 *linalg.Matrix) {
	n := m.Basis.Size()
	for i := 0; i < n; i++ {
		ai := m.Basis.Funcs[i].Atom
		for j := 0; j < n; j++ {
			aj := m.Basis.Funcs[j].Atom
			h1.Add(i, j, 0.5*m.S.At(i, j)*(v1[ai]+v1[aj]))
		}
	}
}

func traceProduct(a, b *linalg.Matrix) float64 {
	var s float64
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		for j, av := range arow {
			s += av * b.At(j, i)
		}
	}
	return s
}
