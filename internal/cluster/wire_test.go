package cluster

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"qframan/internal/constants"
	"qframan/internal/fragment"
	"qframan/internal/geom"
	"qframan/internal/hessian"
	"qframan/internal/sched"
	"qframan/internal/store"
)

func testGeometry() ([]constants.Element, []geom.Vec3) {
	els := []constants.Element{constants.O, constants.H, constants.H}
	pos := []geom.Vec3{
		{X: 0.1, Y: -0.2, Z: 0.3},
		{X: 0.95, Y: 0, Z: 0.11},
		{X: -0.3, Y: 0.9, Z: -1e-9},
	}
	return els, pos
}

func testKey() store.Key {
	var k store.Key
	for i := range k {
		k[i] = byte(i*7 + 3)
	}
	return k
}

func TestWireMessageRoundtrips(t *testing.T) {
	els, pos := testGeometry()
	k := testKey()
	jw := JobWireFrom(hessian.DefaultJobOptions())

	check := func(name string, got, want any, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s roundtrip:\n got %+v\nwant %+v", name, got, want)
		}
	}

	{
		m := Hello{Role: RoleWorker, Proto: ProtoVersion, Slots: 8, Name: "wk-α"}
		got, err := decodeHello(m.encode())
		check("HELLO", got, m, err)
	}
	{
		m := Welcome{Proto: ProtoVersion, Session: 1 << 40}
		got, err := decodeWelcome(m.encode())
		check("WELCOME", got, m, err)
	}
	{
		m := Reject{Code: RejectVersion, Reason: "speak v1"}
		got, err := decodeReject(m.encode())
		check("REJECT", got, m, err)
	}
	{
		m := Job{Job: 3, NFrags: 77, Opt: jw}
		got, err := decodeJob(m.encode())
		check("JOB", got, m, err)
	}
	{
		m := Frag{Job: 3, Frag: 12, Key: k, Els: els, Pos: pos}
		got, err := decodeFrag(m.encode())
		check("FRAG", got, m, err)
	}
	{
		m := Lease{Task: 9, Epoch: 2, Key: k, Opt: jw, Els: els, Pos: pos}
		got, err := decodeLease(m.encode())
		check("LEASE", got, m, err)
	}
	{
		m := Result{Task: 9, Epoch: 2, Tier: TierLocal, Blob: []byte{1, 2, 3}}
		got, err := decodeResult(m.encode())
		check("RESULT", got, m, err)
	}
	{
		m := Serve{Job: 3, Frag: 12, Tier: TierCoord, Blob: []byte{9, 8}}
		got, err := decodeServe(m.encode())
		check("SERVE", got, m, err)
	}
	{
		m := Fetch{Key: k}
		got, err := decodeFetch(m.encode())
		check("FETCH", got, m, err)
	}
	{
		m := FetchOK{Key: k, Blob: []byte{0xFE}}
		got, err := decodeFetchOK(m.encode())
		check("FETCH_OK", got, m, err)
	}
	{
		m := FetchMiss{Key: k}
		got, err := decodeFetchMiss(m.encode())
		check("FETCH_MISS", got, m, err)
	}
	{
		m := Heartbeat{Inflight: 5}
		got, err := decodeHeartbeat(m.encode())
		check("HEARTBEAT", got, m, err)
	}
	{
		m := Steal{Task: 9, Epoch: 4}
		got, err := decodeSteal(m.encode())
		check("STEAL", got, m, err)
	}
	{
		m := TaskFail{Task: 9, Epoch: 4, Transient: true, Msg: "scf diverged"}
		got, err := decodeTaskFail(m.encode())
		check("TASK_FAIL", got, m, err)
	}
	{
		m := JobDone{Job: 3, Computed: 5, LocalHits: 1, CoordHits: 2, FetchHits: 3, Reassigns: 4}
		got, err := decodeJobDone(m.encode())
		check("JOB_DONE", got, m, err)
	}
	{
		m := Bye{Reason: "drain"}
		got, err := decodeBye(m.encode())
		check("BYE", got, m, err)
	}
}

// TestWireEmptyBlobRoundtrip pins the TierFetch convention: a RESULT with
// no blob survives the wire (empty, not lost).
func TestWireEmptyBlobRoundtrip(t *testing.T) {
	m := Result{Task: 1, Epoch: 1, Tier: TierFetch}
	got, err := decodeResult(m.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Task != m.Task || got.Epoch != m.Epoch || got.Tier != m.Tier || len(got.Blob) != 0 {
		t.Fatalf("empty-blob RESULT roundtrip: %+v", got)
	}
}

// TestWireRejectsTruncationAndTrailing feeds every strict prefix and one
// trailing byte of each payload to its decoder: all must fail with
// ErrProtocol, none may panic or over-allocate.
func TestWireRejectsTruncationAndTrailing(t *testing.T) {
	els, pos := testGeometry()
	k := testKey()
	jw := JobWireFrom(hessian.DefaultJobOptions())

	msgs := map[string]struct {
		payload []byte
		dec     func([]byte) error
	}{
		"HELLO":      {Hello{Role: RoleClient, Proto: 1, Name: "n"}.encode(), func(b []byte) error { _, err := decodeHello(b); return err }},
		"WELCOME":    {Welcome{Proto: 1, Session: 2}.encode(), func(b []byte) error { _, err := decodeWelcome(b); return err }},
		"REJECT":     {Reject{Code: 1, Reason: "r"}.encode(), func(b []byte) error { _, err := decodeReject(b); return err }},
		"JOB":        {Job{Job: 1, NFrags: 2, Opt: jw}.encode(), func(b []byte) error { _, err := decodeJob(b); return err }},
		"FRAG":       {Frag{Job: 1, Frag: 2, Key: k, Els: els, Pos: pos}.encode(), func(b []byte) error { _, err := decodeFrag(b); return err }},
		"LEASE":      {Lease{Task: 1, Epoch: 1, Key: k, Opt: jw, Els: els, Pos: pos}.encode(), func(b []byte) error { _, err := decodeLease(b); return err }},
		"RESULT":     {Result{Task: 1, Epoch: 1, Tier: 0, Blob: []byte{1}}.encode(), func(b []byte) error { _, err := decodeResult(b); return err }},
		"SERVE":      {Serve{Job: 1, Frag: 1, Tier: 2, Blob: []byte{1}}.encode(), func(b []byte) error { _, err := decodeServe(b); return err }},
		"FETCH":      {Fetch{Key: k}.encode(), func(b []byte) error { _, err := decodeFetch(b); return err }},
		"FETCH_OK":   {FetchOK{Key: k, Blob: []byte{1}}.encode(), func(b []byte) error { _, err := decodeFetchOK(b); return err }},
		"FETCH_MISS": {FetchMiss{Key: k}.encode(), func(b []byte) error { _, err := decodeFetchMiss(b); return err }},
		"HEARTBEAT":  {Heartbeat{Inflight: 1}.encode(), func(b []byte) error { _, err := decodeHeartbeat(b); return err }},
		"STEAL":      {Steal{Task: 1, Epoch: 1}.encode(), func(b []byte) error { _, err := decodeSteal(b); return err }},
		"TASK_FAIL":  {TaskFail{Task: 1, Epoch: 1, Msg: "m"}.encode(), func(b []byte) error { _, err := decodeTaskFail(b); return err }},
		"JOB_DONE":   {JobDone{Job: 1}.encode(), func(b []byte) error { _, err := decodeJobDone(b); return err }},
		"BYE":        {Bye{Reason: "r"}.encode(), func(b []byte) error { _, err := decodeBye(b); return err }},
	}
	for name, m := range msgs {
		for cut := 0; cut < len(m.payload); cut++ {
			if err := m.dec(m.payload[:cut]); !errors.Is(err, ErrProtocol) {
				t.Fatalf("%s truncated at %d/%d: got %v, want ErrProtocol", name, cut, len(m.payload), err)
			}
		}
		long := append(append([]byte(nil), m.payload...), 0xCC)
		if err := m.dec(long); !errors.Is(err, ErrProtocol) {
			t.Fatalf("%s with trailing byte: got %v, want ErrProtocol", name, err)
		}
	}
}

// TestGeometryCountOverflow pins the pre-allocation guard: a declared atom
// count the payload cannot hold must fail cleanly, including counts whose
// 25-byte sizing would overflow int.
func TestGeometryCountOverflow(t *testing.T) {
	k := testKey()
	for _, n := range []uint32{3, 1000, 1 << 30, math.MaxUint32} {
		b := appendU64(nil, 1) // Job
		b = appendU32(b, 1)    // Frag
		b = append(b, k[:]...) // Key
		b = appendU32(b, n)    // declared atom count, no atoms follow
		if _, err := decodeFrag(b); !errors.Is(err, ErrProtocol) {
			t.Fatalf("n=%d: got %v, want ErrProtocol", n, err)
		}
	}
}

// TestJobWireFingerprintAgreement is the cross-build determinism contract:
// a worker reconstructing JobOptions from the wire must compute the same
// content key as the client that fingerprinted the fragment.
func TestJobWireFingerprintAgreement(t *testing.T) {
	opt := sched.DefaultOptions().Job
	opt.SCF.Tol = 3.25e-7
	opt.SCF.Field = geom.Vec3{X: 0.001}
	opt.DFPT.StrengthReduction = true

	els, pos := testGeometry()
	f := &fragment.Fragment{ID: 4, Coeff: 1, Els: els, Pos: pos}
	k1, _ := store.Fingerprint(f, opt)

	rebuilt := JobWireFrom(opt).Options()
	k2, _ := store.Fingerprint(f, rebuilt)
	if k1 != k2 {
		t.Fatalf("fingerprint changed across the wire: %s vs %s", k1, k2)
	}

	// And the wire encoding itself roundtrips exactly.
	w := JobWireFrom(opt)
	r := reader{b: appendJobWire(nil, w)}
	got := r.jobWire()
	if err := r.done("JOBWIRE"); err != nil {
		t.Fatal(err)
	}
	if got != w {
		t.Fatalf("JobWire roundtrip:\n got %+v\nwant %+v", got, w)
	}
}
