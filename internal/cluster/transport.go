package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"qframan/internal/obs"
)

// transport wraps one TCP connection with frame I/O, per-RPC metrics, and
// the chaos injector. Writes are serialized by wmu so concurrent
// goroutines (dispatcher, fetch responder, heartbeat ticker) can share the
// connection; reads belong to a single reader goroutine.
type transport struct {
	c          net.Conn
	maxPayload int

	wmu  sync.Mutex
	wseq int // outbound frame counter, the injector's draw index
	inj  FrameInjector

	// nil-safe metric instruments (left nil without a registry).
	bytesIn, bytesOut *obs.Counter
	frames            [msgMax + 1]*obs.Counter
	frameErrors       *obs.Counter

	writeTimeout time.Duration
}

func newTransport(c net.Conn, maxPayload int, reg *obs.Registry) *transport {
	t := &transport{c: c, maxPayload: maxPayload, writeTimeout: 30 * time.Second}
	if t.maxPayload <= 0 {
		t.maxPayload = DefaultMaxPayload
	}
	if reg != nil {
		t.bytesIn = reg.Counter(obs.MetricClusterBytesIn)
		t.bytesOut = reg.Counter(obs.MetricClusterBytesOut)
		t.frameErrors = reg.Counter(obs.MetricClusterFrameErrors)
		for mt := MsgType(1); mt <= msgMax; mt++ {
			t.frames[mt] = reg.WithLabel("rpc", mt.String()).Counter(obs.MetricClusterFrames)
		}
	}
	return t
}

// write encodes and sends one frame, consulting the injector first. A
// dropped frame returns nil (the peer never sees it — exactly a lossy
// network); a severed connection closes the socket and reports the error.
func (t *transport) write(mt MsgType, payload []byte) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	seq := t.wseq
	t.wseq++
	b := EncodeFrame(mt, payload)
	if t.inj != nil {
		plan := t.inj.PlanFrame(seq, mt)
		if plan.Delay > 0 {
			time.Sleep(plan.Delay)
		}
		switch {
		case plan.Sever:
			t.c.Close()
			return fmt.Errorf("cluster: chaos severed connection before %s", mt)
		case plan.Drop:
			return nil
		case plan.Corrupt:
			// Flip one payload bit: the receiver's CRC rejects the frame
			// and drops the connection, exercising the recovery path.
			b[len(b)-trailerSize-1] ^= 0x01
		}
	}
	if t.writeTimeout > 0 {
		t.c.SetWriteDeadline(time.Now().Add(t.writeTimeout))
	}
	n, err := t.c.Write(b)
	if t.bytesOut != nil {
		t.bytesOut.Add(int64(n))
	}
	if err == nil {
		if c := t.frames[mt]; c != nil {
			c.Inc()
		}
	}
	return err
}

// read blocks for the next frame. Framing errors (bad magic, CRC, size)
// poison the stream; the caller must drop the connection.
func (t *transport) read() (Frame, error) {
	f, n, err := ReadFrame(t.c, t.maxPayload)
	if t.bytesIn != nil {
		t.bytesIn.Add(int64(n))
	}
	if err != nil {
		if t.frameErrors != nil && n > 0 {
			t.frameErrors.Inc()
		}
		return Frame{}, err
	}
	if c := t.frames[f.Type]; c != nil {
		c.Inc()
	}
	return f, nil
}

// setReadDeadline arms (or with zero time disarms) the read timeout.
func (t *transport) setReadDeadline(d time.Time) { t.c.SetReadDeadline(d) }

func (t *transport) close() error { return t.c.Close() }
