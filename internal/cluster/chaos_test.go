package cluster

import (
	"fmt"
	"math"
	"testing"
	"time"

	"qframan/internal/constants"
	"qframan/internal/core"
	"qframan/internal/fragment"
	"qframan/internal/geom"
	"qframan/internal/hessian"
	"qframan/internal/linalg"
	"qframan/internal/obs"
	"qframan/internal/sched"
	"qframan/internal/store"
)

// severResults is a worker-side injector that models kill -9 from the
// coordinator's point of view: the instant the worker tries to report its
// first result, the connection is cut with no BYE, leaving every lease it
// held dangling.
var severResults = ChaosConfig{
	Seed:      1,
	SeverRate: 1,
	Protect: map[MsgType]bool{
		MsgHeartbeat: true, MsgFetch: true, MsgTaskFail: true, MsgBye: true,
	},
}

// TestClusterSurvivesWorkerDeath kills one of three workers mid-run — its
// connection is severed without a BYE while it holds a lease — and
// requires the run to complete with a spectrum bit-identical to the
// single-process golden, with the dead worker's leases reassigned.
func TestClusterSurvivesWorkerDeath(t *testing.T) {
	co, addr := testCoordinator(t, CoordConfig{
		Registry:         obs.NewRegistry(),
		HeartbeatTimeout: 2 * time.Second,
	})
	// Two survivors and one doomed worker that dies on its first RESULT
	// and never reconnects.
	startTestWorker(t, WorkerConfig{Addr: addr, Name: "w0", Slots: 1, Throttle: 100 * time.Millisecond})
	startTestWorker(t, WorkerConfig{Addr: addr, Name: "w1", Slots: 1, Throttle: 100 * time.Millisecond})
	startTestWorker(t, WorkerConfig{
		Addr: addr, Name: "doomed", Slots: 1,
		Throttle:      100 * time.Millisecond,
		Injector:      severResults,
		MaxReconnects: -1,
	})
	waitForWorkers(t, co, 3)

	cfg := clusterTestConfig()
	cfg.Sched.Backend = NewClient(addr)
	res, err := core.ComputeRaman(testWaterbox(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameSpectrum(res.Spectrum, waterboxGolden(t)); err != nil {
		t.Fatalf("spectrum deviates after worker death: %v", err)
	}
	snap := co.Snapshot()
	if snap.Reassigns == 0 {
		t.Fatalf("the doomed worker's leases were never reassigned: %+v", snap)
	}
	if res.SchedReport.Requeues == 0 {
		t.Fatalf("client report shows no requeues: %+v", res.SchedReport)
	}
}

// waitForWorkers blocks until n workers appear in the roster (they connect
// asynchronously; the dispatch-spread assertions need all of them seated).
func waitForWorkers(t *testing.T, co *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for len(co.Snapshot().Workers) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers connected", len(co.Snapshot().Workers), n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ---- synthetic-engine chaos runs ----
//
// The frame-level drop/corrupt tests use a deterministic fake engine so a
// run has dozens of fragments for the chaos schedule to hit without
// minutes of real DFPT. The engine is a pure function of the fragment
// geometry — any worker, after any number of reassignments, produces the
// same bits.

// fakeEngine derives a 3N×3N "Hessian" from interatomic offsets. It is
// translation-invariant, so rigid translated copies share canonical
// records exactly like real rigid waters do.
func fakeEngine(f *fragment.Fragment, _ sched.Options) (*hessian.FragmentData, error) {
	n := len(f.Els)
	h := linalg.NewMatrix(3*n, 3*n)
	for i := 0; i < 3*n; i++ {
		for j := 0; j < 3*n; j++ {
			a, b := f.Pos[i/3], f.Pos[j/3]
			h.Set(i, j, (a.X-b.X)+0.5*(a.Y-b.Y)+0.25*(a.Z-b.Z)+0.125*float64(i%3)-0.0625*float64(j%3))
		}
	}
	return &hessian.FragmentData{Hess: h}, nil
}

// fakeDecomposition builds nUnique distinct water-like triangles, each
// replicated copies times by pure translation (rigid copies → one content
// key per unique shape).
func fakeDecomposition(nUnique, copies int) *fragment.Decomposition {
	dec := &fragment.Decomposition{}
	id := 0
	for u := 0; u < nUnique; u++ {
		base := []geom.Vec3{
			{X: 0, Y: 0, Z: 0},
			{X: 0.96 + 0.01*float64(u), Y: 0, Z: 0},
			{X: -0.24, Y: 0.93, Z: 0.1 + 0.005*float64(u)},
		}
		for c := 0; c < copies; c++ {
			shift := geom.Vec3{X: 8 * float64(c), Y: 3 * float64(u), Z: 0}
			pos := make([]geom.Vec3, len(base))
			for i, p := range base {
				pos[i] = p.Add(shift)
			}
			dec.Fragments = append(dec.Fragments, fragment.Fragment{
				ID:      id,
				Coeff:   1,
				NumReal: len(base),
				Els:     []constants.Element{constants.O, constants.H, constants.H},
				Pos:     pos,
			})
			id++
		}
	}
	return dec
}

// localFakeRun computes the single-process store-backed reference results
// for a synthetic decomposition.
func localFakeRun(t *testing.T, dec *fragment.Decomposition) []*hessian.FragmentData {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	opt := sched.DefaultOptions()
	opt.Process = fakeEngine
	opt.Cache.Store = st
	datas, _, err := sched.Run(dec, opt)
	if err != nil {
		t.Fatal(err)
	}
	return datas
}

func sameDatas(a, b []*hessian.FragmentData) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d vs %d results", len(a), len(b))
	}
	for i := range a {
		if a[i] == nil || b[i] == nil {
			return fmt.Errorf("fragment %d: nil result", i)
		}
		ha, hb := a[i].Hess, b[i].Hess
		if ha.Rows != hb.Rows || ha.Cols != hb.Cols || len(ha.Data) != len(hb.Data) {
			return fmt.Errorf("fragment %d: shape mismatch", i)
		}
		for k := range ha.Data {
			if math.Float64bits(ha.Data[k]) != math.Float64bits(hb.Data[k]) {
				return fmt.Errorf("fragment %d: element %d differs: %x vs %x",
					i, k, math.Float64bits(ha.Data[k]), math.Float64bits(hb.Data[k]))
			}
		}
	}
	return nil
}

// TestClusterSurvivesFrameChaos runs a 30-fragment synthetic job through a
// coordinator that drops and corrupts frames toward its workers. Dropped
// LEASEs must be recovered by lease expiry, corrupted frames by the CRC
// check plus reconnection — and the final results must still be
// bit-identical to the fault-free single-process run.
func TestClusterSurvivesFrameChaos(t *testing.T) {
	dec := fakeDecomposition(10, 3)
	want := localFakeRun(t, dec)

	co, addr := testCoordinator(t, CoordConfig{
		Registry:         obs.NewRegistry(),
		LeaseTimeout:     600 * time.Millisecond,
		HeartbeatTimeout: 2 * time.Second,
		Injector: ChaosConfig{
			Seed:        7,
			DropRate:    0.15,
			CorruptRate: 0.05,
			Protect:     map[MsgType]bool{MsgWelcome: true},
		},
	})
	for i := 0; i < 3; i++ {
		startTestWorker(t, WorkerConfig{
			Addr: addr, Name: fmt.Sprintf("w%d", i), Slots: 2,
			Process:      fakeEngine,
			FetchTimeout: 500 * time.Millisecond,
		})
	}
	waitForWorkers(t, co, 3)

	opt := sched.DefaultOptions()
	got, rep, err := NewClient(addr).Run(dec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameDatas(got, want); err != nil {
		t.Fatalf("chaotic cluster run deviates from fault-free local run: %v", err)
	}
	if rep.NumTasks != 10 || rep.Deduped != 20 {
		t.Fatalf("dedup accounting: %+v", rep)
	}
	snap := co.Snapshot()
	if snap.JobsDone != 1 || snap.JobsFailed != 0 {
		t.Fatalf("job accounting under chaos: %+v", snap)
	}
	t.Logf("chaos run: %d leases, %d reassigns, %d dup results, tiers compute=%d local=%d coord=%d fetch=%d",
		snap.Leases, snap.Reassigns, snap.DupResults,
		snap.Recomputes, snap.TierLocal, snap.TierCoord, snap.TierFetch)
}

// TestClusterDelayChaosStealsStragglers pins the straggler path under a
// clean network: a worker whose compute stalls past the lease timeout gets
// its lease stolen and reassigned, the late duplicate is suppressed, and
// the results stay bit-identical.
func TestClusterDelayChaosStealsStragglers(t *testing.T) {
	dec := fakeDecomposition(6, 2)
	want := localFakeRun(t, dec)

	co, addr := testCoordinator(t, CoordConfig{
		Registry:         obs.NewRegistry(),
		LeaseTimeout:     300 * time.Millisecond,
		HeartbeatTimeout: 2 * time.Second,
	})
	// One fast worker and one straggler that sleeps past every lease
	// timeout before producing its (correct) result.
	startTestWorker(t, WorkerConfig{
		Addr: addr, Name: "fast", Slots: 2, Process: fakeEngine,
	})
	startTestWorker(t, WorkerConfig{
		Addr: addr, Name: "slow", Slots: 1, Process: fakeEngine,
		Throttle: 900 * time.Millisecond,
	})
	waitForWorkers(t, co, 2)

	got, _, err := NewClient(addr).Run(dec, sched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sameDatas(got, want); err != nil {
		t.Fatalf("straggler run deviates: %v", err)
	}
	snap := co.Snapshot()
	if snap.Reassigns == 0 {
		t.Fatalf("no lease was stolen from the straggler: %+v", snap)
	}
}
