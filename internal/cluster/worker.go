package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"qframan/internal/faults"
	"qframan/internal/fragment"
	"qframan/internal/obs"
	"qframan/internal/sched"
	"qframan/internal/store"
)

// WorkerConfig configures a worker daemon.
type WorkerConfig struct {
	// Addr is the coordinator's TCP address.
	Addr string
	// Name identifies the worker in logs and per-worker metrics.
	Name string
	// Slots is the number of concurrent leases (fragment-level
	// parallelism); zero selects 1.
	Slots int
	// Threads is the per-fragment displacement fan-out width
	// (sched.Options.WorkersPerLeader); zero keeps sched's default.
	Threads int
	// Store is the worker-local cache tier; nil disables it.
	Store *store.Store
	// Registry receives the worker's transport metrics (nil disables).
	Registry *obs.Registry
	// Injector applies chaos to the worker's outbound frames.
	Injector FrameInjector
	// Throttle sleeps this long before computing each fragment — a test
	// and chaos knob to keep a run in flight long enough to kill things.
	Throttle time.Duration
	// HeartbeatInterval paces liveness beacons (default 3 s; must stay
	// under the coordinator's HeartbeatTimeout).
	HeartbeatInterval time.Duration
	// FetchTimeout bounds a coordinator blob fetch before the worker
	// falls back to recomputing (default 30 s).
	FetchTimeout time.Duration
	// DialTimeout bounds connection attempts (default 5 s).
	DialTimeout time.Duration
	// MaxReconnects bounds reconnection attempts after a connection
	// failure; zero retries forever (daemon mode), negative disables
	// reconnection entirely.
	MaxReconnects int
	// MaxPayload bounds inbound frame payloads (0 = DefaultMaxPayload).
	MaxPayload int
	// Process overrides the fragment engine (tests); nil selects
	// sched.DefaultProcess — the real SCF+DFPT pipeline.
	Process sched.ProcessFunc
	// Logf receives operational log lines (nil discards).
	Logf func(format string, args ...any)
}

// Worker executes fragment leases for a coordinator: tiered cache lookup
// (local store → coordinator fetch → compute), canonical-blob results,
// heartbeats, and bounded reconnection with exponential backoff.
type Worker struct {
	cfg WorkerConfig
}

// NewWorker builds a worker daemon; call Run to start it.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 3 * time.Second
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 30 * time.Second
	}
	return &Worker{cfg: cfg}
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// Run connects to the coordinator and serves leases until ctx is
// cancelled. Connection failures reconnect with exponential backoff under
// the MaxReconnects budget; a protocol version rejection is permanent.
func (w *Worker) Run(ctx context.Context) error {
	attempt := 0
	for {
		err := w.session(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if errors.Is(err, ErrVersionSkew) || errors.Is(err, ErrRejected) {
			return err
		}
		attempt++
		if w.cfg.MaxReconnects < 0 || (w.cfg.MaxReconnects > 0 && attempt > w.cfg.MaxReconnects) {
			return fmt.Errorf("cluster: worker: reconnect budget exhausted: %w", err)
		}
		backoff := 500 * time.Millisecond << min(attempt-1, 5)
		w.logf("cluster: worker %q: connection lost (%v), reconnecting in %s", w.cfg.Name, err, backoff)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
	}
}

// workerSession is the state of one live connection.
type workerSession struct {
	w    *Worker
	tr   *transport
	done chan struct{} // closed when the session tears down

	mu       sync.Mutex
	stolen   map[uint64]struct{}         // tasks revoked by STEAL
	fetches  map[store.Key][]chan []byte // pending FETCH correlations
	slots    chan struct{}               // lease-concurrency semaphore
	inflight int
}

func (w *Worker) session(ctx context.Context) error {
	tr, wel, err := handshake(w.cfg.Addr, Hello{
		Role:  RoleWorker,
		Proto: ProtoVersion,
		Slots: uint32(w.cfg.Slots),
		Name:  w.cfg.Name,
	}, w.cfg.DialTimeout, w.cfg.MaxPayload, w.cfg.Registry)
	if err != nil {
		return err
	}
	if w.cfg.Injector != nil {
		tr.inj = w.cfg.Injector
	}
	w.logf("cluster: worker %q: connected as session %d", w.cfg.Name, wel.Session)

	s := &workerSession{
		w:       w,
		tr:      tr,
		done:    make(chan struct{}),
		stolen:  make(map[uint64]struct{}),
		fetches: make(map[store.Key][]chan []byte),
		slots:   make(chan struct{}, w.cfg.Slots),
	}
	var once sync.Once
	teardown := func() {
		once.Do(func() {
			close(s.done)
			tr.close()
		})
	}
	defer teardown()

	// ctx cancellation and heartbeats ride a side goroutine; closing the
	// conn unblocks the reader below.
	go func() {
		ticker := time.NewTicker(w.cfg.HeartbeatInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				tr.write(MsgBye, Bye{Reason: "shutdown"}.encode())
				teardown()
				return
			case <-s.done:
				return
			case <-ticker.C:
				s.mu.Lock()
				n := s.inflight
				s.mu.Unlock()
				if err := tr.write(MsgHeartbeat, Heartbeat{Inflight: uint32(n)}.encode()); err != nil {
					teardown()
					return
				}
			}
		}
	}()

	for {
		f, err := tr.read()
		if err != nil {
			s.failFetches()
			return err
		}
		switch f.Type {
		case MsgLease:
			l, err := decodeLease(f.Payload)
			if err != nil {
				s.failFetches()
				return err
			}
			s.mu.Lock()
			s.inflight++
			s.mu.Unlock()
			select {
			case s.slots <- struct{}{}:
			case <-s.done:
				return errors.New("cluster: worker: session closed")
			}
			go s.processLease(l)
		case MsgSteal:
			st, err := decodeSteal(f.Payload)
			if err != nil {
				s.failFetches()
				return err
			}
			s.mu.Lock()
			s.stolen[st.Task] = struct{}{}
			s.mu.Unlock()
		case MsgFetchOK:
			m, err := decodeFetchOK(f.Payload)
			if err != nil {
				s.failFetches()
				return err
			}
			s.deliverFetch(m.Key, m.Blob)
		case MsgFetchMiss:
			m, err := decodeFetchMiss(f.Payload)
			if err != nil {
				s.failFetches()
				return err
			}
			s.deliverFetch(m.Key, nil)
		case MsgBye:
			s.failFetches()
			return errors.New("cluster: worker: coordinator said bye")
		default:
			s.failFetches()
			return fmt.Errorf("%w: unexpected %s at worker", ErrProtocol, f.Type)
		}
	}
}

// deliverFetch resolves every waiter parked on a key (nil blob = miss).
func (s *workerSession) deliverFetch(k store.Key, blob []byte) {
	s.mu.Lock()
	chans := s.fetches[k]
	delete(s.fetches, k)
	s.mu.Unlock()
	for _, ch := range chans {
		ch <- blob
	}
}

// failFetches resolves all pending fetches as misses (session teardown).
func (s *workerSession) failFetches() {
	s.mu.Lock()
	all := s.fetches
	s.fetches = make(map[store.Key][]chan []byte)
	s.mu.Unlock()
	for _, chans := range all {
		for _, ch := range chans {
			ch <- nil
		}
	}
}

// fetch asks the coordinator for a blob, with a timeout falling back to a
// miss. The reply channel is buffered so a late delivery never blocks the
// reader.
func (s *workerSession) fetch(k store.Key) []byte {
	ch := make(chan []byte, 1)
	s.mu.Lock()
	first := len(s.fetches[k]) == 0
	s.fetches[k] = append(s.fetches[k], ch)
	s.mu.Unlock()
	if first {
		if err := s.tr.write(MsgFetch, Fetch{Key: k}.encode()); err != nil {
			return nil
		}
	}
	select {
	case blob := <-ch:
		return blob
	case <-time.After(s.w.cfg.FetchTimeout):
		return nil
	case <-s.done:
		return nil
	}
}

// processLease resolves one lease through the cache tiers and reports the
// result (or failure) back.
func (s *workerSession) processLease(l Lease) {
	defer func() {
		<-s.slots
		s.mu.Lock()
		s.inflight--
		s.mu.Unlock()
	}()
	tier, blob, err := s.resolve(l)
	s.mu.Lock()
	_, wasStolen := s.stolen[l.Task]
	delete(s.stolen, l.Task)
	s.mu.Unlock()
	if wasStolen {
		// Revoked: the coordinator reassigned the task. Suppress the
		// result (its replacement is bit-identical by determinism).
		return
	}
	if err != nil {
		s.tr.write(MsgTaskFail, TaskFail{
			Task: l.Task, Epoch: l.Epoch,
			Transient: faults.IsTransient(err), Msg: err.Error(),
		}.encode())
		return
	}
	if tier == TierFetch {
		// The blob came from the coordinator; no need to echo it back.
		blob = nil
	}
	s.tr.write(MsgResult, Result{Task: l.Task, Epoch: l.Epoch, Tier: tier, Blob: blob}.encode())
}

// resolve walks the cache tiers for one lease: worker-local store,
// coordinator fetch, recompute. It returns the canonical blob and the
// tier that produced it.
func (s *workerSession) resolve(l Lease) (uint8, []byte, error) {
	cfg := &s.w.cfg
	f := &fragment.Fragment{ID: int(l.Task), Coeff: 1, Els: l.Els, Pos: l.Pos}
	opt := sched.DefaultOptions()
	opt.Job = l.Opt.Options()
	if cfg.Threads > 0 {
		opt.WorkersPerLeader = cfg.Threads
	}
	key, fr := store.Fingerprint(f, opt.Job)
	if key != l.Key {
		// The coordinator and this build disagree on the content
		// fingerprint: a deterministic mismatch (skewed builds), never
		// retried.
		return 0, nil, fmt.Errorf("cluster: worker: fingerprint mismatch for task %d (have %s, lease says %s)",
			l.Task, key, l.Key)
	}

	// Tier: worker-local store.
	if cfg.Store != nil {
		if blob, ok, err := cfg.Store.GetRaw(key); err == nil && ok {
			return TierLocal, blob, nil
		}
	}
	// Tier: coordinator fetch (covers straggler races where another
	// worker checkpointed the key after this lease was cut).
	if blob := s.fetch(key); blob != nil {
		if cfg.Store != nil {
			if err := cfg.Store.PutRaw(key, len(l.Els), blob); err != nil {
				s.w.logf("cluster: worker %q: local checkpoint: %v", cfg.Name, err)
			}
		}
		return TierFetch, blob, nil
	}
	// Tier: recompute.
	if cfg.Throttle > 0 {
		time.Sleep(cfg.Throttle)
	}
	process := cfg.Process
	if process == nil {
		process = sched.DefaultProcess
	}
	data, err := process(f, opt)
	if err != nil {
		return 0, nil, err
	}
	canon, err := fr.ToCanonical(data)
	if err != nil {
		return 0, nil, err
	}
	blob, err := store.Encode(canon)
	if err != nil {
		return 0, nil, err
	}
	if cfg.Store != nil {
		if err := cfg.Store.PutRaw(key, len(l.Els), blob); err != nil {
			s.w.logf("cluster: worker %q: local checkpoint: %v", cfg.Name, err)
		}
	}
	return TierCompute, blob, nil
}
