package cluster

import (
	"fmt"
	"math"

	"qframan/internal/constants"
	"qframan/internal/dfpt"
	"qframan/internal/geom"
	"qframan/internal/hessian"
	"qframan/internal/store"
)

// Peer roles carried in HELLO.
const (
	RoleWorker uint8 = 1
	RoleClient uint8 = 2
)

// Result/serve cache tiers: where a fragment's canonical blob came from.
// The lookup order is the tiered cache of DESIGN.md §9 — coordinator
// store, worker-local store, coordinator fetch, recompute.
const (
	TierCompute uint8 = 0 // worker ran the engine (recompute)
	TierLocal   uint8 = 1 // worker-local disk store
	TierCoord   uint8 = 2 // coordinator's store, served at lease time
	TierFetch   uint8 = 3 // worker fetched the blob from the coordinator
)

// TierName returns the metrics/report name of a cache tier.
func TierName(t uint8) string {
	switch t {
	case TierLocal:
		return "local"
	case TierCoord:
		return "coord"
	case TierFetch:
		return "fetch"
	default:
		return "compute"
	}
}

// Hello opens every connection: the peer's role, application protocol
// version, lease capacity (workers), and display name.
type Hello struct {
	Role  uint8
	Proto uint32
	Slots uint32
	Name  string
}

// Welcome accepts a handshake and assigns the peer a session ID.
type Welcome struct {
	Proto   uint32
	Session uint64
}

// Reject codes: why a handshake was declined.
const (
	RejectOther   uint8 = 0
	RejectVersion uint8 = 1 // application protocol version skew
)

// Reject declines a handshake with a typed code and a reason. Peers map
// RejectVersion to ErrVersionSkew.
type Reject struct {
	Code   uint8
	Reason string
}

// Job announces a client run: its ID, how many FRAG frames follow, and the
// physics options every lease of this job carries.
type Job struct {
	Job    uint64
	NFrags uint32
	Opt    JobWire
}

// Frag submits one unique fragment of a job: its index in the client's
// decomposition, its content key, and its geometry.
type Frag struct {
	Job  uint64
	Frag uint32
	Key  store.Key
	Els  []constants.Element
	Pos  []geom.Vec3
}

// Lease grants a task to a worker under an ownership epoch. The epoch
// increments every time the coordinator reassigns the task (lease expiry,
// worker death); stale results are identified by their (task, epoch) pair.
type Lease struct {
	Task  uint64
	Epoch uint32
	Key   store.Key
	Opt   JobWire
	Els   []constants.Element
	Pos   []geom.Vec3
}

// Result returns a completed task: the tier that produced the canonical
// blob, and the blob itself. An empty blob means "the coordinator already
// has this key" (TierFetch: the worker pulled it *from* the coordinator,
// so echoing the bytes back would be pure waste).
type Result struct {
	Task  uint64
	Epoch uint32
	Tier  uint8
	Blob  []byte
}

// Serve delivers one fragment result to a client: the producing tier and
// the canonical blob.
type Serve struct {
	Job  uint64
	Frag uint32
	Tier uint8
	Blob []byte
}

// Fetch asks the coordinator for a canonical blob by content key
// (worker-side tier-3 lookup).
type Fetch struct {
	Key store.Key
}

// FetchOK answers a FETCH with the blob.
type FetchOK struct {
	Key  store.Key
	Blob []byte
}

// FetchMiss answers a FETCH the coordinator cannot serve.
type FetchMiss struct {
	Key store.Key
}

// Heartbeat is the worker's liveness beacon with its in-flight lease count.
type Heartbeat struct {
	Inflight uint32
}

// Steal revokes a lease (straggler re-dispatch): the worker should abandon
// the task if it has not finished. Best-effort — the epoch check on RESULT
// is what guarantees correctness.
type Steal struct {
	Task  uint64
	Epoch uint32
}

// TaskFail reports a failed attempt. Transient failures are retried under
// a bounded budget; deterministic ones fail the job.
type TaskFail struct {
	Task      uint64
	Epoch     uint32
	Transient bool
	Msg       string
}

// JobDone closes a job toward the client, with the coordinator's
// per-tier accounting for it. Err is empty on success.
type JobDone struct {
	Job       uint64
	Err       string
	Computed  uint32
	LocalHits uint32
	CoordHits uint32
	FetchHits uint32
	Reassigns uint32
}

// Bye announces an orderly departure.
type Bye struct {
	Reason string
}

// JobWire is the physics subset of hessian.JobOptions that crosses the
// wire — exactly the fields of the store's content fingerprint
// (appendJobFingerprint), so a worker reconstructing JobOptions from it computes
// the same content key and bit-identical results. Execution-only fields
// (Obs, executors, warm starts) never travel.
type JobWire struct {
	Step      float64
	SkipAlpha bool

	SCFMaxIter  uint32
	SCFTol      float64
	SCFMixing   float64
	SCFSmearing float64
	SCFField    geom.Vec3

	DFPTMaxIter     uint32
	DFPTTol         float64
	DFPTMixing      float64
	DFPTCoulomb     uint8
	DFPTGridSpacing float64
	DFPTGridMargin  float64
	DFPTBatchSide   uint32
	DFPTStrengthRed bool
}

// JobWireFrom extracts the wire subset of a JobOptions.
func JobWireFrom(opt hessian.JobOptions) JobWire {
	return JobWire{
		Step:            opt.Step,
		SkipAlpha:       opt.SkipAlpha,
		SCFMaxIter:      uint32(opt.SCF.MaxIter),
		SCFTol:          opt.SCF.Tol,
		SCFMixing:       opt.SCF.Mixing,
		SCFSmearing:     opt.SCF.Smearing,
		SCFField:        opt.SCF.Field,
		DFPTMaxIter:     uint32(opt.DFPT.MaxIter),
		DFPTTol:         opt.DFPT.Tol,
		DFPTMixing:      opt.DFPT.Mixing,
		DFPTCoulomb:     uint8(opt.DFPT.Coulomb),
		DFPTGridSpacing: opt.DFPT.GridSpacing,
		DFPTGridMargin:  opt.DFPT.GridMargin,
		DFPTBatchSide:   uint32(opt.DFPT.BatchSide),
		DFPTStrengthRed: opt.DFPT.StrengthReduction,
	}
}

// Options reconstructs the JobOptions a worker executes with. Executors
// and observability are the worker's own; warm starts are set by the
// engine internally, so the physics — and the bits — match the client's
// run exactly.
func (w JobWire) Options() hessian.JobOptions {
	var opt hessian.JobOptions
	opt.Step = w.Step
	opt.SkipAlpha = w.SkipAlpha
	opt.SCF.MaxIter = int(w.SCFMaxIter)
	opt.SCF.Tol = w.SCFTol
	opt.SCF.Mixing = w.SCFMixing
	opt.SCF.Smearing = w.SCFSmearing
	opt.SCF.Field = w.SCFField
	opt.DFPT.MaxIter = int(w.DFPTMaxIter)
	opt.DFPT.Tol = w.DFPTTol
	opt.DFPT.Mixing = w.DFPTMixing
	opt.DFPT.Coulomb = dfpt.CoulombMode(w.DFPTCoulomb)
	opt.DFPT.GridSpacing = w.DFPTGridSpacing
	opt.DFPT.GridMargin = w.DFPTGridMargin
	opt.DFPT.BatchSide = int(w.DFPTBatchSide)
	opt.DFPT.StrengthReduction = w.DFPTStrengthRed
	return opt
}

// ---- payload encoding ----

func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }

func appendStr(b []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	b = appendU16(b, uint16(len(s)))
	return append(b, s...)
}

func appendBytes(b, blob []byte) []byte {
	b = appendU32(b, uint32(len(blob)))
	return append(b, blob...)
}

func appendVec(b []byte, v geom.Vec3) []byte {
	b = appendF64(b, v.X)
	b = appendF64(b, v.Y)
	return appendF64(b, v.Z)
}

func appendGeom(b []byte, els []constants.Element, pos []geom.Vec3) []byte {
	b = appendU32(b, uint32(len(els)))
	for _, e := range els {
		b = append(b, byte(e))
	}
	for _, p := range pos {
		b = appendVec(b, p)
	}
	return b
}

func appendJobWire(b []byte, w JobWire) []byte {
	b = appendF64(b, w.Step)
	b = appendBool(b, w.SkipAlpha)
	b = appendU32(b, w.SCFMaxIter)
	b = appendF64(b, w.SCFTol)
	b = appendF64(b, w.SCFMixing)
	b = appendF64(b, w.SCFSmearing)
	b = appendVec(b, w.SCFField)
	b = appendU32(b, w.DFPTMaxIter)
	b = appendF64(b, w.DFPTTol)
	b = appendF64(b, w.DFPTMixing)
	b = append(b, w.DFPTCoulomb)
	b = appendF64(b, w.DFPTGridSpacing)
	b = appendF64(b, w.DFPTGridMargin)
	b = appendU32(b, w.DFPTBatchSide)
	return appendBool(b, w.DFPTStrengthRed)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func (m Hello) encode() []byte {
	b := []byte{m.Role}
	b = appendU32(b, m.Proto)
	b = appendU32(b, m.Slots)
	return appendStr(b, m.Name)
}

func (m Welcome) encode() []byte {
	b := appendU32(nil, m.Proto)
	return appendU64(b, m.Session)
}

func (m Reject) encode() []byte { return appendStr([]byte{m.Code}, m.Reason) }

func (m Job) encode() []byte {
	b := appendU64(nil, m.Job)
	b = appendU32(b, m.NFrags)
	return appendJobWire(b, m.Opt)
}

func (m Frag) encode() []byte {
	b := appendU64(nil, m.Job)
	b = appendU32(b, m.Frag)
	b = append(b, m.Key[:]...)
	return appendGeom(b, m.Els, m.Pos)
}

func (m Lease) encode() []byte {
	b := appendU64(nil, m.Task)
	b = appendU32(b, m.Epoch)
	b = append(b, m.Key[:]...)
	b = appendJobWire(b, m.Opt)
	return appendGeom(b, m.Els, m.Pos)
}

func (m Result) encode() []byte {
	b := appendU64(nil, m.Task)
	b = appendU32(b, m.Epoch)
	b = append(b, m.Tier)
	return appendBytes(b, m.Blob)
}

func (m Serve) encode() []byte {
	b := appendU64(nil, m.Job)
	b = appendU32(b, m.Frag)
	b = append(b, m.Tier)
	return appendBytes(b, m.Blob)
}

func (m Fetch) encode() []byte { return append([]byte(nil), m.Key[:]...) }

func (m FetchOK) encode() []byte {
	b := append([]byte(nil), m.Key[:]...)
	return appendBytes(b, m.Blob)
}

func (m FetchMiss) encode() []byte { return append([]byte(nil), m.Key[:]...) }

func (m Heartbeat) encode() []byte { return appendU32(nil, m.Inflight) }

func (m Steal) encode() []byte {
	b := appendU64(nil, m.Task)
	return appendU32(b, m.Epoch)
}

func (m TaskFail) encode() []byte {
	b := appendU64(nil, m.Task)
	b = appendU32(b, m.Epoch)
	b = appendBool(b, m.Transient)
	return appendStr(b, m.Msg)
}

func (m JobDone) encode() []byte {
	b := appendU64(nil, m.Job)
	b = appendStr(b, m.Err)
	b = appendU32(b, m.Computed)
	b = appendU32(b, m.LocalHits)
	b = appendU32(b, m.CoordHits)
	b = appendU32(b, m.FetchHits)
	return appendU32(b, m.Reassigns)
}

func (m Bye) encode() []byte { return appendStr(nil, m.Reason) }

// ---- payload decoding ----

// reader is a bounds-checked cursor: any out-of-range read sets bad and
// yields zeros, checked once at the end (the store codec's pattern).
type reader struct {
	b   []byte
	off int
	bad bool
}

func (r *reader) fits(n int) bool { return n >= 0 && !r.bad && len(r.b)-r.off >= n }

func (r *reader) take(n int) []byte {
	if !r.fits(n) {
		r.bad = true
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *reader) u8() byte {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (r *reader) u16() uint16 {
	s := r.take(2)
	if s == nil {
		return 0
	}
	return readU16(s)
}

func (r *reader) u32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return readU32(s)
}

func (r *reader) u64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return readU64(s)
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) str() string {
	n := int(r.u16())
	s := r.take(n)
	if s == nil {
		return ""
	}
	return string(s)
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	s := r.take(n)
	if s == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, s)
	return out
}

func (r *reader) boolean() bool { return r.u8() != 0 }

func (r *reader) key() store.Key {
	var k store.Key
	s := r.take(len(k))
	copy(k[:], s)
	return k
}

func (r *reader) vec() geom.Vec3 {
	return geom.Vec3{X: r.f64(), Y: r.f64(), Z: r.f64()}
}

func (r *reader) geometry() ([]constants.Element, []geom.Vec3) {
	n := int(r.u32())
	// A geometry needs 1 + 24 bytes per atom; reject declared counts the
	// payload cannot hold before allocating.
	if !r.fits(n * 25) {
		r.bad = true
		return nil, nil
	}
	els := make([]constants.Element, n)
	for i := range els {
		els[i] = constants.Element(r.u8())
	}
	pos := make([]geom.Vec3, n)
	for i := range pos {
		pos[i] = r.vec()
	}
	return els, pos
}

func (r *reader) jobWire() JobWire {
	var w JobWire
	w.Step = r.f64()
	w.SkipAlpha = r.boolean()
	w.SCFMaxIter = r.u32()
	w.SCFTol = r.f64()
	w.SCFMixing = r.f64()
	w.SCFSmearing = r.f64()
	w.SCFField = r.vec()
	w.DFPTMaxIter = r.u32()
	w.DFPTTol = r.f64()
	w.DFPTMixing = r.f64()
	w.DFPTCoulomb = r.u8()
	w.DFPTGridSpacing = r.f64()
	w.DFPTGridMargin = r.f64()
	w.DFPTBatchSide = r.u32()
	w.DFPTStrengthRed = r.boolean()
	return w
}

// done validates that the payload was consumed exactly.
func (r *reader) done(what string) error {
	if r.bad {
		return fmt.Errorf("%w: truncated %s payload", ErrProtocol, what)
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes in %s payload", ErrProtocol, len(r.b)-r.off, what)
	}
	return nil
}

func decodeHello(b []byte) (Hello, error) {
	r := reader{b: b}
	m := Hello{Role: r.u8(), Proto: r.u32(), Slots: r.u32(), Name: r.str()}
	return m, r.done("HELLO")
}

func decodeWelcome(b []byte) (Welcome, error) {
	r := reader{b: b}
	m := Welcome{Proto: r.u32(), Session: r.u64()}
	return m, r.done("WELCOME")
}

func decodeReject(b []byte) (Reject, error) {
	r := reader{b: b}
	m := Reject{Code: r.u8(), Reason: r.str()}
	return m, r.done("REJECT")
}

func decodeJob(b []byte) (Job, error) {
	r := reader{b: b}
	m := Job{Job: r.u64(), NFrags: r.u32(), Opt: r.jobWire()}
	return m, r.done("JOB")
}

func decodeFrag(b []byte) (Frag, error) {
	r := reader{b: b}
	m := Frag{Job: r.u64(), Frag: r.u32(), Key: r.key()}
	m.Els, m.Pos = r.geometry()
	return m, r.done("FRAG")
}

func decodeLease(b []byte) (Lease, error) {
	r := reader{b: b}
	m := Lease{Task: r.u64(), Epoch: r.u32(), Key: r.key(), Opt: r.jobWire()}
	m.Els, m.Pos = r.geometry()
	return m, r.done("LEASE")
}

func decodeResult(b []byte) (Result, error) {
	r := reader{b: b}
	m := Result{Task: r.u64(), Epoch: r.u32(), Tier: r.u8(), Blob: r.bytes()}
	return m, r.done("RESULT")
}

func decodeServe(b []byte) (Serve, error) {
	r := reader{b: b}
	m := Serve{Job: r.u64(), Frag: r.u32(), Tier: r.u8(), Blob: r.bytes()}
	return m, r.done("SERVE")
}

func decodeFetch(b []byte) (Fetch, error) {
	r := reader{b: b}
	m := Fetch{Key: r.key()}
	return m, r.done("FETCH")
}

func decodeFetchOK(b []byte) (FetchOK, error) {
	r := reader{b: b}
	m := FetchOK{Key: r.key(), Blob: r.bytes()}
	return m, r.done("FETCH_OK")
}

func decodeFetchMiss(b []byte) (FetchMiss, error) {
	r := reader{b: b}
	m := FetchMiss{Key: r.key()}
	return m, r.done("FETCH_MISS")
}

func decodeHeartbeat(b []byte) (Heartbeat, error) {
	r := reader{b: b}
	m := Heartbeat{Inflight: r.u32()}
	return m, r.done("HEARTBEAT")
}

func decodeSteal(b []byte) (Steal, error) {
	r := reader{b: b}
	m := Steal{Task: r.u64(), Epoch: r.u32()}
	return m, r.done("STEAL")
}

func decodeTaskFail(b []byte) (TaskFail, error) {
	r := reader{b: b}
	m := TaskFail{Task: r.u64(), Epoch: r.u32(), Transient: r.boolean(), Msg: r.str()}
	return m, r.done("TASK_FAIL")
}

func decodeJobDone(b []byte) (JobDone, error) {
	r := reader{b: b}
	m := JobDone{Job: r.u64(), Err: r.str(), Computed: r.u32(),
		LocalHits: r.u32(), CoordHits: r.u32(), FetchHits: r.u32(), Reassigns: r.u32()}
	return m, r.done("JOB_DONE")
}

func decodeBye(b []byte) (Bye, error) {
	r := reader{b: b}
	m := Bye{Reason: r.str()}
	return m, r.done("BYE")
}
