package cluster

import (
	"time"

	"qframan/internal/faults"
)

// FramePlan is the injector's verdict for one outbound frame. At most one
// destructive action applies per frame (Sever wins over Drop over
// Corrupt); Delay composes with any of them.
type FramePlan struct {
	// Drop swallows the frame: the peer never sees it (lossy network).
	Drop bool
	// Corrupt flips one payload bit before sending; the peer's CRC check
	// rejects the frame and the connection is dropped.
	Corrupt bool
	// Sever closes the connection instead of writing (network partition /
	// peer death as seen from this side).
	Sever bool
	// Delay stalls the write (congestion, slow link).
	Delay time.Duration
}

// FrameInjector decides the fate of each outbound frame. seq is the
// connection's outbound frame counter, so a deterministic injector
// reproduces the same fault schedule run after run.
type FrameInjector interface {
	PlanFrame(seq int, t MsgType) FramePlan
}

// ChaosConfig is the deterministic frame-level injector: each rate is a
// probability evaluated against an independent faults.Uniform draw keyed
// by (Seed, seq, message type), so the schedule is a pure function of the
// seed — the same discipline as the scheduler's attempt-level injector.
type ChaosConfig struct {
	Seed int64
	// DropRate is the probability of swallowing a frame.
	DropRate float64
	// CorruptRate is the probability of flipping a payload bit.
	CorruptRate float64
	// SeverRate is the probability of closing the connection instead of
	// writing.
	SeverRate float64
	// DelayRate and Delay stall a frame's write.
	DelayRate float64
	Delay     time.Duration
	// Protect exempts message types from destructive faults (e.g. keep
	// the handshake clean so a test exercises steady-state recovery, not
	// connect storms). Delay still applies.
	Protect map[MsgType]bool
}

// Draw salts, one per fault class (arbitrary distinct constants).
const (
	saltDrop = iota + 0x6200
	saltCorrupt
	saltSever
	saltDelay
)

// PlanFrame implements FrameInjector.
func (c ChaosConfig) PlanFrame(seq int, t MsgType) FramePlan {
	var plan FramePlan
	if c.DelayRate > 0 && faults.Uniform(c.Seed, seq, int(t), saltDelay) < c.DelayRate {
		plan.Delay = c.Delay
	}
	if c.Protect[t] {
		return plan
	}
	switch {
	case c.SeverRate > 0 && faults.Uniform(c.Seed, seq, int(t), saltSever) < c.SeverRate:
		plan.Sever = true
	case c.DropRate > 0 && faults.Uniform(c.Seed, seq, int(t), saltDrop) < c.DropRate:
		plan.Drop = true
	case c.CorruptRate > 0 && faults.Uniform(c.Seed, seq, int(t), saltCorrupt) < c.CorruptRate:
		plan.Corrupt = true
	}
	return plan
}
