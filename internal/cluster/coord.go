package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"qframan/internal/constants"
	"qframan/internal/geom"
	"qframan/internal/obs"
	"qframan/internal/store"
)

// CoordConfig configures a coordinator.
type CoordConfig struct {
	// Store is the coordinator's content-addressed cache tier; nil
	// disables it (every fragment is computed or served worker-locally).
	Store *store.Store
	// LeaseTimeout re-dispatches tasks leased longer than this without a
	// result (straggler STEAL + epoch bump). Zero selects 2 minutes.
	LeaseTimeout time.Duration
	// HeartbeatTimeout declares a silent worker dead and requeues its
	// leases. Zero selects 15 seconds.
	HeartbeatTimeout time.Duration
	// MaxTaskRetries bounds transient failures per task before the owning
	// job fails. Zero selects 3.
	MaxTaskRetries int
	// MaxPayload bounds inbound frame payloads (0 = DefaultMaxPayload).
	MaxPayload int
	// Registry receives the cluster metrics (nil disables).
	Registry *obs.Registry
	// Injector, when non-nil, applies chaos to outbound frames on worker
	// connections (never client connections: result delivery to clients
	// rides TCP's own guarantees; a truly dead client link fails the job,
	// which is the correct semantic).
	Injector FrameInjector
	// Logf receives operational log lines (nil discards).
	Logf func(format string, args ...any)
}

// task lifecycle states.
const (
	taskPending = iota // queued, waiting for a worker slot
	taskLeased         // owned by a worker under an epoch
	taskWaiting        // parked: an identical key is already in flight
	taskDone
	taskDead // owning client left or job failed
)

// task is one unique fragment the coordinator must resolve.
type task struct {
	id     uint64
	client uint64 // owning client session
	job    uint64
	frag   uint32
	key    store.Key
	els    []constants.Element
	pos    []geom.Vec3
	opt    JobWire

	state    int
	epoch    uint32 // bumped on every reassignment
	owner    uint64 // worker session while leased
	leasedAt time.Time
	fails    int
}

// workerConn is the coordinator's view of one connected worker.
type workerConn struct {
	session  uint64
	name     string
	slots    int
	tr       *transport
	inflight map[uint64]struct{}
	lastSeen time.Time
	frags    int // completed fragments
	fragsCtr *obs.Counter
}

// jobState tracks one client job's progress and per-tier accounting.
type jobState struct {
	id        uint64
	nfrags    uint32
	announced uint32
	done      uint32
	finished  bool
	opt       JobWire

	computed, localHits, coordHits, fetchHits, reassigns uint32
}

// clientConn is the coordinator's view of one connected client.
type clientConn struct {
	session  uint64
	name     string
	tr       *transport
	jobs     map[uint64]*jobState
	lastSeen time.Time
}

// coordCounters mirrors the cluster metrics for the STATS snapshot (the
// registry may be absent).
type coordCounters struct {
	leases, reassigns, dupResults, taskFails  uint64
	localHits, coordHits, fetchHits, computed uint64
	jobsDone, jobsFailed                      uint64
}

// send is one outbound frame computed under the coordinator lock and
// written after it is released (transports may block; the lock must not).
type send struct {
	tr      *transport
	mt      MsgType
	payload []byte
}

// persist is a deferred store write (blob checkpoints happen outside the
// coordinator lock; the store has its own).
type persist struct {
	key    store.Key
	natoms int
	blob   []byte
}

// Coordinator owns fragment assignment: it accepts worker and client
// connections, leases tasks under ownership epochs, reassigns on lease
// expiry and worker death, suppresses duplicate results, and layers its
// content-addressed store over the workers' as the cluster-wide cache.
type Coordinator struct {
	cfg CoordConfig

	mu       sync.Mutex
	closed   bool
	ln       net.Listener
	workers  map[uint64]*workerConn
	clients  map[uint64]*clientConn
	tasks    map[uint64]*task
	queue    []uint64
	inflight map[store.Key]uint64   // key → producing task
	waiters  map[store.Key][]uint64 // tasks parked on an in-flight key
	nextSess uint64
	nextTask uint64
	stats    coordCounters
	wg       sync.WaitGroup

	mWorkers   *obs.Gauge
	mLeases    *obs.Counter
	mReassigns *obs.Counter
	mDup       *obs.Counter
	mLocal     *obs.Counter
	mCoord     *obs.Counter
	mFetch     *obs.Counter
	mRecomp    *obs.Counter
	mFails     *obs.Counter
	mLeaseSec  *obs.Histogram
}

// NewCoordinator builds a coordinator; call Serve to start it.
func NewCoordinator(cfg CoordConfig) *Coordinator {
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 2 * time.Minute
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 15 * time.Second
	}
	if cfg.MaxTaskRetries <= 0 {
		cfg.MaxTaskRetries = 3
	}
	co := &Coordinator{
		cfg:      cfg,
		workers:  make(map[uint64]*workerConn),
		clients:  make(map[uint64]*clientConn),
		tasks:    make(map[uint64]*task),
		inflight: make(map[store.Key]uint64),
		waiters:  make(map[store.Key][]uint64),
	}
	if r := cfg.Registry; r != nil {
		co.mWorkers = r.Gauge(obs.MetricClusterWorkers)
		co.mLeases = r.Counter(obs.MetricClusterLeases)
		co.mReassigns = r.Counter(obs.MetricClusterReassigns)
		co.mDup = r.Counter(obs.MetricClusterDupResults)
		co.mLocal = r.Counter(obs.MetricClusterLocalHits)
		co.mCoord = r.Counter(obs.MetricClusterCoordHits)
		co.mFetch = r.Counter(obs.MetricClusterFetchHits)
		co.mRecomp = r.Counter(obs.MetricClusterRecomputes)
		co.mFails = r.Counter(obs.MetricClusterTaskFails)
		co.mLeaseSec = r.Histogram(obs.MetricClusterLeaseSeconds, obs.DurationBuckets)
	}
	return co
}

func (co *Coordinator) logf(format string, args ...any) {
	if co.cfg.Logf != nil {
		co.cfg.Logf(format, args...)
	}
}

// ListenAndServe binds addr and serves until Close.
func (co *Coordinator) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return co.Serve(ln)
}

// Serve accepts connections on ln until Close. It blocks.
func (co *Coordinator) Serve(ln net.Listener) error {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		ln.Close()
		return errors.New("cluster: coordinator closed")
	}
	co.ln = ln
	co.mu.Unlock()

	co.wg.Add(1)
	go co.reaper()

	for {
		c, err := ln.Accept()
		if err != nil {
			co.mu.Lock()
			closed := co.closed
			co.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		co.wg.Add(1)
		go co.handleConn(c)
	}
}

// Addr returns the bound listen address (nil before Serve).
func (co *Coordinator) Addr() net.Addr {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.ln == nil {
		return nil
	}
	return co.ln.Addr()
}

// Close stops the coordinator: the listener and every connection are
// closed and the handler goroutines drained.
func (co *Coordinator) Close() error {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return nil
	}
	co.closed = true
	ln := co.ln
	var conns []*transport
	for _, w := range co.workers {
		conns = append(conns, w.tr)
	}
	for _, cl := range co.clients {
		conns = append(conns, cl.tr)
	}
	co.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, tr := range conns {
		tr.close()
	}
	co.wg.Wait()
	return nil
}

func (co *Coordinator) flush(sends []send) {
	for _, s := range sends {
		if err := s.tr.write(s.mt, s.payload); err != nil {
			// The reader goroutine of that connection observes the
			// failure and runs the drop path; nothing to do here.
			co.logf("cluster: coord: send %s failed: %v", s.mt, err)
		}
	}
}

func (co *Coordinator) persistAll(ps []persist) {
	if co.cfg.Store == nil {
		return
	}
	for _, p := range ps {
		if err := co.cfg.Store.PutRaw(p.key, p.natoms, p.blob); err != nil {
			co.logf("cluster: coord: checkpoint %s: %v", p.key, err)
		}
	}
}

// handleConn performs the handshake and enters the role loop.
func (co *Coordinator) handleConn(c net.Conn) {
	defer co.wg.Done()
	tr := newTransport(c, co.cfg.MaxPayload, co.cfg.Registry)
	tr.setReadDeadline(time.Now().Add(10 * time.Second))
	f, err := tr.read()
	if err != nil || f.Type != MsgHello {
		tr.close()
		return
	}
	hello, err := decodeHello(f.Payload)
	if err != nil {
		tr.close()
		return
	}
	if hello.Proto != ProtoVersion {
		tr.write(MsgReject, Reject{Code: RejectVersion, Reason: fmt.Sprintf(
			"protocol version %d not supported (coordinator speaks %d)",
			hello.Proto, ProtoVersion)}.encode())
		tr.close()
		return
	}
	switch hello.Role {
	case RoleWorker:
		co.runWorker(tr, hello)
	case RoleClient:
		co.runClient(tr, hello)
	default:
		tr.write(MsgReject, Reject{Reason: fmt.Sprintf("unknown role %d", hello.Role)}.encode())
		tr.close()
		return
	}
}

// handshake dials addr and performs the HELLO/WELCOME exchange for a peer
// (worker or client), mapping REJECT to the typed errors.
func handshake(addr string, hello Hello, dialTimeout time.Duration, maxPayload int, reg *obs.Registry) (*transport, Welcome, error) {
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	c, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, Welcome{}, err
	}
	tr := newTransport(c, maxPayload, reg)
	if err := tr.write(MsgHello, hello.encode()); err != nil {
		tr.close()
		return nil, Welcome{}, err
	}
	tr.setReadDeadline(time.Now().Add(10 * time.Second))
	f, err := tr.read()
	if err != nil {
		tr.close()
		return nil, Welcome{}, err
	}
	switch f.Type {
	case MsgWelcome:
		wel, err := decodeWelcome(f.Payload)
		if err != nil {
			tr.close()
			return nil, Welcome{}, err
		}
		if wel.Proto != ProtoVersion {
			tr.close()
			return nil, Welcome{}, fmt.Errorf("%w: coordinator speaks %d, we speak %d",
				ErrVersionSkew, wel.Proto, ProtoVersion)
		}
		tr.setReadDeadline(time.Time{})
		return tr, wel, nil
	case MsgReject:
		rej, derr := decodeReject(f.Payload)
		tr.close()
		if derr != nil {
			return nil, Welcome{}, derr
		}
		if rej.Code == RejectVersion {
			return nil, Welcome{}, fmt.Errorf("%w: %s", ErrVersionSkew, rej.Reason)
		}
		return nil, Welcome{}, fmt.Errorf("%w: %s", ErrRejected, rej.Reason)
	default:
		tr.close()
		return nil, Welcome{}, fmt.Errorf("%w: %s during handshake", ErrProtocol, f.Type)
	}
}

func (co *Coordinator) runWorker(tr *transport, hello Hello) {
	if co.cfg.Injector != nil {
		tr.inj = co.cfg.Injector
	}
	slots := int(hello.Slots)
	if slots <= 0 {
		slots = 1
	}
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		tr.close()
		return
	}
	co.nextSess++
	w := &workerConn{
		session:  co.nextSess,
		name:     hello.Name,
		slots:    slots,
		tr:       tr,
		inflight: make(map[uint64]struct{}),
		lastSeen: time.Now(),
	}
	if w.name == "" {
		w.name = fmt.Sprintf("worker-%d", w.session)
	}
	if r := co.cfg.Registry; r != nil {
		w.fragsCtr = r.WithLabel("worker", w.name).Counter(obs.MetricClusterWorkerFrags)
	}
	co.workers[w.session] = w
	if co.mWorkers != nil {
		co.mWorkers.Set(int64(len(co.workers)))
	}
	sends := []send{{tr, MsgWelcome, Welcome{Proto: ProtoVersion, Session: w.session}.encode()}}
	sends = append(sends, co.dispatch()...)
	co.mu.Unlock()
	co.logf("cluster: coord: worker %q connected (session %d, %d slots)", w.name, w.session, slots)
	co.flush(sends)

	for {
		tr.setReadDeadline(time.Now().Add(3 * co.cfg.HeartbeatTimeout))
		f, err := tr.read()
		if err != nil {
			co.dropWorker(w, err.Error())
			return
		}
		switch f.Type {
		case MsgResult:
			res, err := decodeResult(f.Payload)
			if err != nil {
				co.dropWorker(w, err.Error())
				return
			}
			co.handleResult(w, res)
		case MsgTaskFail:
			tf, err := decodeTaskFail(f.Payload)
			if err != nil {
				co.dropWorker(w, err.Error())
				return
			}
			co.handleTaskFail(w, tf)
		case MsgFetch:
			fe, err := decodeFetch(f.Payload)
			if err != nil {
				co.dropWorker(w, err.Error())
				return
			}
			co.handleFetch(w, fe)
		case MsgHeartbeat:
			co.mu.Lock()
			w.lastSeen = time.Now()
			co.mu.Unlock()
		case MsgBye:
			co.dropWorker(w, "bye")
			return
		default:
			co.dropWorker(w, fmt.Sprintf("unexpected %s from worker", f.Type))
			return
		}
	}
}

// dropWorker removes a worker and requeues its leases under a bumped
// epoch — the core of surviving worker death and network partitions.
func (co *Coordinator) dropWorker(w *workerConn, reason string) {
	co.mu.Lock()
	if _, ok := co.workers[w.session]; !ok {
		co.mu.Unlock()
		return
	}
	delete(co.workers, w.session)
	if co.mWorkers != nil {
		co.mWorkers.Set(int64(len(co.workers)))
	}
	requeued := 0
	for id := range w.inflight {
		if t := co.tasks[id]; t != nil && t.state == taskLeased {
			co.requeueLocked(t)
			requeued++
		}
	}
	sends := co.dispatch()
	co.mu.Unlock()
	w.tr.close()
	co.logf("cluster: coord: worker %q gone (%s), %d leases requeued", w.name, reason, requeued)
	co.flush(sends)
}

// requeueLocked puts a leased/waiting task back on the queue under a new
// epoch. Caller holds co.mu.
func (co *Coordinator) requeueLocked(t *task) {
	t.epoch++
	t.state = taskPending
	t.owner = 0
	co.stats.reassigns++
	if co.mReassigns != nil {
		co.mReassigns.Inc()
	}
	if js := co.jobOf(t); js != nil {
		js.reassigns++
	}
	co.queue = append(co.queue, t.id)
}

func (co *Coordinator) jobOf(t *task) *jobState {
	cl := co.clients[t.client]
	if cl == nil {
		return nil
	}
	return cl.jobs[t.job]
}

// dispatch leases queued tasks onto free worker slots. Caller holds co.mu;
// returned sends go out after unlock. Workers are scanned in session order
// (deterministic), preferring the most free slots.
func (co *Coordinator) dispatch() []send {
	var sends []send
	for len(co.queue) > 0 {
		// Pop the oldest live pending task.
		t := co.tasks[co.queue[0]]
		if t == nil || t.state != taskPending {
			co.queue = co.queue[1:]
			continue
		}
		var best *workerConn
		for _, w := range co.workers {
			free := w.slots - len(w.inflight)
			if free <= 0 {
				continue
			}
			if best == nil || free > best.slots-len(best.inflight) ||
				(free == best.slots-len(best.inflight) && w.session < best.session) {
				best = w
			}
		}
		if best == nil {
			return sends
		}
		co.queue = co.queue[1:]
		t.state = taskLeased
		t.owner = best.session
		t.leasedAt = time.Now()
		best.inflight[t.id] = struct{}{}
		co.stats.leases++
		if co.mLeases != nil {
			co.mLeases.Inc()
		}
		sends = append(sends, send{best.tr, MsgLease, Lease{
			Task: t.id, Epoch: t.epoch, Key: t.key, Opt: t.opt,
			Els: t.els, Pos: t.pos,
		}.encode()})
	}
	return sends
}

// handleResult records a completed task, suppresses duplicates, serves
// the owning client and every waiter, checkpoints the blob, and refills
// the freed slot.
func (co *Coordinator) handleResult(w *workerConn, res Result) {
	co.mu.Lock()
	w.lastSeen = time.Now()
	delete(w.inflight, res.Task)
	t := co.tasks[res.Task]
	if t == nil || t.state == taskDone || t.state == taskDead {
		// Lowest-epoch-wins in effect: the first completion recorded the
		// result; later deliveries (reassigned epochs racing the
		// original owner) are counted and dropped. Determinism makes
		// either copy bit-identical, so dropping is safe.
		co.stats.dupResults++
		if co.mDup != nil {
			co.mDup.Inc()
		}
		sends := co.dispatch()
		co.mu.Unlock()
		co.flush(sends)
		return
	}
	blob := res.Blob
	if len(blob) == 0 {
		// TierFetch result: the worker got the blob from us, so it did
		// not echo it back. Serve clients from our own store.
		if co.cfg.Store != nil {
			if b, ok, err := co.cfg.Store.GetRaw(t.key); err == nil && ok {
				blob = b
			}
		}
		if len(blob) == 0 {
			// The store lost the object between fetch and result (or a
			// protocol violation). Recompute: requeue under a new epoch.
			co.requeueLocked(t)
			sends := co.dispatch()
			co.mu.Unlock()
			co.flush(sends)
			return
		}
	}
	if co.mLeaseSec != nil && !t.leasedAt.IsZero() {
		co.mLeaseSec.Observe(time.Since(t.leasedAt).Seconds())
	}
	t.state = taskDone
	w.frags++
	if w.fragsCtr != nil {
		w.fragsCtr.Inc()
	}
	switch res.Tier {
	case TierLocal:
		co.stats.localHits++
		if co.mLocal != nil {
			co.mLocal.Inc()
		}
	case TierFetch:
		co.stats.fetchHits++
		if co.mFetch != nil {
			co.mFetch.Inc()
		}
	default:
		co.stats.computed++
		if co.mRecomp != nil {
			co.mRecomp.Inc()
		}
	}
	var ps []persist
	if co.cfg.Store != nil && res.Tier != TierFetch {
		ps = append(ps, persist{key: t.key, natoms: len(t.els), blob: blob})
	}
	var sends []send
	sends = co.serveTaskLocked(sends, t, res.Tier, blob)
	// Waiters parked on this key: served from the same blob as coord-tier
	// hits (cluster-wide dedup across jobs and clients).
	for _, id := range co.waiters[t.key] {
		tw := co.tasks[id]
		if tw == nil || tw.state != taskWaiting {
			continue
		}
		tw.state = taskDone
		co.stats.coordHits++
		if co.mCoord != nil {
			co.mCoord.Inc()
		}
		sends = co.serveTaskLocked(sends, tw, TierCoord, blob)
	}
	delete(co.waiters, t.key)
	delete(co.inflight, t.key)
	sends = append(sends, co.dispatch()...)
	co.mu.Unlock()
	co.persistAll(ps)
	co.flush(sends)
}

// serveTaskLocked emits the SERVE frame for a completed task and, when it
// was the job's last fragment, the JOB_DONE. Caller holds co.mu.
func (co *Coordinator) serveTaskLocked(sends []send, t *task, tier uint8, blob []byte) []send {
	cl := co.clients[t.client]
	if cl == nil {
		return sends
	}
	js := cl.jobs[t.job]
	if js == nil || js.finished {
		return sends
	}
	switch tier {
	case TierLocal:
		js.localHits++
	case TierCoord:
		js.coordHits++
	case TierFetch:
		js.fetchHits++
	default:
		js.computed++
	}
	js.done++
	sends = append(sends, send{cl.tr, MsgServe, Serve{
		Job: t.job, Frag: t.frag, Tier: tier, Blob: blob,
	}.encode()})
	if js.done == js.nfrags && js.announced == js.nfrags {
		js.finished = true
		co.stats.jobsDone++
		sends = append(sends, send{cl.tr, MsgJobDone, JobDone{
			Job: t.job, Computed: js.computed, LocalHits: js.localHits,
			CoordHits: js.coordHits, FetchHits: js.fetchHits,
			Reassigns: js.reassigns,
		}.encode()})
	}
	return sends
}

// handleTaskFail retries transient failures under the bounded budget and
// fails the owning job (and any waiter jobs — the failure is
// deterministic for the key) otherwise.
func (co *Coordinator) handleTaskFail(w *workerConn, tf TaskFail) {
	co.mu.Lock()
	w.lastSeen = time.Now()
	delete(w.inflight, tf.Task)
	co.stats.taskFails++
	if co.mFails != nil {
		co.mFails.Inc()
	}
	t := co.tasks[tf.Task]
	if t == nil || t.state != taskLeased {
		co.mu.Unlock()
		return
	}
	t.fails++
	var sends []send
	if tf.Transient && t.fails <= co.cfg.MaxTaskRetries {
		co.requeueLocked(t)
		sends = co.dispatch()
		co.mu.Unlock()
		co.logf("cluster: coord: task %d transient failure %d/%d, requeued: %s",
			t.id, t.fails, co.cfg.MaxTaskRetries, tf.Msg)
		co.flush(sends)
		return
	}
	// Unrecoverable: fail this task's job and every job waiting on the key.
	msg := tf.Msg
	if msg == "" {
		msg = "task failed"
	}
	failed := append([]uint64{t.id}, co.waiters[t.key]...)
	for _, id := range failed {
		ft := co.tasks[id]
		if ft == nil {
			continue
		}
		ft.state = taskDead
		sends = co.failJobLocked(sends, ft.client, ft.job, msg)
	}
	delete(co.waiters, t.key)
	delete(co.inflight, t.key)
	sends = append(sends, co.dispatch()...)
	co.mu.Unlock()
	co.logf("cluster: coord: task %d failed permanently: %s", t.id, msg)
	co.flush(sends)
}

// failJobLocked marks a job failed, kills its remaining tasks, and emits
// the error JOB_DONE. Caller holds co.mu.
func (co *Coordinator) failJobLocked(sends []send, client, job uint64, msg string) []send {
	cl := co.clients[client]
	if cl == nil {
		return sends
	}
	js := cl.jobs[job]
	if js == nil || js.finished {
		return sends
	}
	js.finished = true
	co.stats.jobsFailed++
	for _, t := range co.tasks {
		if t.client == client && t.job == job && t.state != taskDone {
			co.killTaskLocked(t)
		}
	}
	return append(sends, send{cl.tr, MsgJobDone, JobDone{Job: job, Err: msg}.encode()})
}

// killTaskLocked abandons one task. If it was the in-flight producer for
// its key, a parked waiter is promoted to a live pending task so other
// jobs sharing the key still complete. Caller holds co.mu.
func (co *Coordinator) killTaskLocked(t *task) {
	prev := t.state
	t.state = taskDead
	if prev == taskLeased {
		if w := co.workers[t.owner]; w != nil {
			delete(w.inflight, t.id)
		}
	}
	if prev == taskWaiting {
		ws := co.waiters[t.key]
		for i, id := range ws {
			if id == t.id {
				co.waiters[t.key] = append(ws[:i:i], ws[i+1:]...)
				break
			}
		}
		return
	}
	if co.inflight[t.key] != t.id {
		return
	}
	// Promote the first live waiter to producer.
	delete(co.inflight, t.key)
	ws := co.waiters[t.key]
	for i, id := range ws {
		tw := co.tasks[id]
		if tw == nil || tw.state != taskWaiting {
			continue
		}
		co.waiters[t.key] = ws[i+1:]
		tw.state = taskPending
		co.inflight[t.key] = tw.id
		co.queue = append(co.queue, tw.id)
		return
	}
	delete(co.waiters, t.key)
}

// handleFetch serves a worker's tier-3 lookup from the coordinator store.
func (co *Coordinator) handleFetch(w *workerConn, fe Fetch) {
	co.mu.Lock()
	w.lastSeen = time.Now()
	co.mu.Unlock()
	if co.cfg.Store != nil {
		if blob, ok, err := co.cfg.Store.GetRaw(fe.Key); err == nil && ok {
			if err := w.tr.write(MsgFetchOK, FetchOK{Key: fe.Key, Blob: blob}.encode()); err != nil {
				co.logf("cluster: coord: fetch reply failed: %v", err)
			}
			return
		}
	}
	if err := w.tr.write(MsgFetchMiss, FetchMiss{Key: fe.Key}.encode()); err != nil {
		co.logf("cluster: coord: fetch reply failed: %v", err)
	}
}

func (co *Coordinator) runClient(tr *transport, hello Hello) {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		tr.close()
		return
	}
	co.nextSess++
	cl := &clientConn{
		session:  co.nextSess,
		name:     hello.Name,
		tr:       tr,
		jobs:     make(map[uint64]*jobState),
		lastSeen: time.Now(),
	}
	co.clients[cl.session] = cl
	co.mu.Unlock()
	co.flush([]send{{tr, MsgWelcome, Welcome{Proto: ProtoVersion, Session: cl.session}.encode()}})

	for {
		tr.setReadDeadline(time.Now().Add(3 * co.cfg.HeartbeatTimeout))
		f, err := tr.read()
		if err != nil {
			co.dropClient(cl, err.Error())
			return
		}
		switch f.Type {
		case MsgJob:
			m, err := decodeJob(f.Payload)
			if err != nil || m.NFrags == 0 {
				co.dropClient(cl, "bad JOB")
				return
			}
			co.mu.Lock()
			cl.lastSeen = time.Now()
			if _, dup := cl.jobs[m.Job]; dup {
				co.mu.Unlock()
				co.dropClient(cl, "duplicate job id")
				return
			}
			cl.jobs[m.Job] = &jobState{id: m.Job, nfrags: m.NFrags, opt: m.Opt}
			co.mu.Unlock()
		case MsgFrag:
			m, err := decodeFrag(f.Payload)
			if err != nil {
				co.dropClient(cl, "bad FRAG")
				return
			}
			co.handleFrag(cl, m)
		case MsgHeartbeat:
			co.mu.Lock()
			cl.lastSeen = time.Now()
			co.mu.Unlock()
		case MsgStats:
			blob, err := json.Marshal(co.Snapshot())
			if err != nil {
				blob = []byte("{}")
			}
			co.flush([]send{{tr, MsgStatsOK, blob}})
		case MsgBye:
			co.dropClient(cl, "bye")
			return
		default:
			co.dropClient(cl, fmt.Sprintf("unexpected %s from client", f.Type))
			return
		}
	}
}

// handleFrag admits one unique fragment through the tiered cache:
// coordinator store hit → serve immediately; identical key in flight →
// park as waiter; otherwise queue as producer.
func (co *Coordinator) handleFrag(cl *clientConn, m Frag) {
	if len(m.Els) == 0 || len(m.Els) != len(m.Pos) {
		co.dropClient(cl, "bad FRAG geometry")
		return
	}
	co.mu.Lock()
	cl.lastSeen = time.Now()
	js := cl.jobs[m.Job]
	if js == nil || js.announced >= js.nfrags {
		co.mu.Unlock()
		co.dropClient(cl, "FRAG outside job")
		return
	}
	js.announced++
	co.nextTask++
	t := &task{
		id: co.nextTask, client: cl.session, job: m.Job, frag: m.Frag,
		key: m.Key, els: m.Els, pos: m.Pos, opt: js.opt, state: taskPending,
	}
	co.tasks[t.id] = t
	// Tier: coordinator store (serves without leasing anything).
	coordBlob := []byte(nil)
	if co.cfg.Store != nil {
		if blob, ok, err := co.cfg.Store.GetRaw(m.Key); err == nil && ok {
			coordBlob = blob
		}
	}
	var sends []send
	switch {
	case coordBlob != nil:
		t.state = taskDone
		co.stats.coordHits++
		if co.mCoord != nil {
			co.mCoord.Inc()
		}
		sends = co.serveTaskLocked(sends, t, TierCoord, coordBlob)
	case co.aliveProducer(m.Key):
		t.state = taskWaiting
		co.waiters[m.Key] = append(co.waiters[m.Key], t.id)
	default:
		co.inflight[m.Key] = t.id
		co.queue = append(co.queue, t.id)
		sends = co.dispatch()
	}
	co.mu.Unlock()
	co.flush(sends)
}

// aliveProducer reports whether the key already has a live producing task.
// Caller holds co.mu.
func (co *Coordinator) aliveProducer(k store.Key) bool {
	id, ok := co.inflight[k]
	if !ok {
		return false
	}
	t := co.tasks[id]
	return t != nil && (t.state == taskPending || t.state == taskLeased)
}

// dropClient removes a client and abandons its unfinished tasks,
// promoting cross-client waiters where needed.
func (co *Coordinator) dropClient(cl *clientConn, reason string) {
	co.mu.Lock()
	if _, ok := co.clients[cl.session]; !ok {
		co.mu.Unlock()
		return
	}
	delete(co.clients, cl.session)
	for _, t := range co.tasks {
		if t.client == cl.session && t.state != taskDone && t.state != taskDead {
			co.killTaskLocked(t)
		}
	}
	sends := co.dispatch()
	co.mu.Unlock()
	cl.tr.close()
	co.logf("cluster: coord: client session %d gone (%s)", cl.session, reason)
	co.flush(sends)
}

// reaper enforces heartbeat and lease timeouts: silent workers are
// disconnected (their reader goroutine then requeues the leases) and
// stragglers are stolen back under a bumped epoch.
func (co *Coordinator) reaper() {
	defer co.wg.Done()
	tick := co.cfg.HeartbeatTimeout / 4
	if lt := co.cfg.LeaseTimeout / 4; lt < tick {
		tick = lt
	}
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for range ticker.C {
		co.mu.Lock()
		if co.closed {
			co.mu.Unlock()
			return
		}
		now := time.Now()
		var dead []*transport
		for _, w := range co.workers {
			if now.Sub(w.lastSeen) > co.cfg.HeartbeatTimeout {
				co.logf("cluster: coord: worker %q heartbeat timeout", w.name)
				dead = append(dead, w.tr)
			}
		}
		var sends []send
		for _, t := range co.tasks {
			if t.state != taskLeased || now.Sub(t.leasedAt) <= co.cfg.LeaseTimeout {
				continue
			}
			w := co.workers[t.owner]
			oldEpoch := t.epoch
			if w != nil {
				delete(w.inflight, t.id)
				sends = append(sends, send{w.tr, MsgSteal, Steal{Task: t.id, Epoch: oldEpoch}.encode()})
			}
			co.requeueLocked(t)
			co.logf("cluster: coord: task %d lease expired, stolen (epoch %d→%d)", t.id, oldEpoch, t.epoch)
		}
		sends = append(sends, co.dispatch()...)
		co.mu.Unlock()
		// Closing a dead worker's conn unblocks its reader, which
		// requeues the leases through the regular drop path.
		for _, tr := range dead {
			tr.close()
		}
		co.flush(sends)
	}
}

// WorkerStat is one worker's row in the STATS snapshot.
type WorkerStat struct {
	Name      string `json:"name"`
	Session   uint64 `json:"session"`
	Slots     int    `json:"slots"`
	Inflight  int    `json:"inflight"`
	Fragments int    `json:"fragments"`
	LastSeen  int64  `json:"last_seen_ms"` // milliseconds ago
}

// Snapshot is the coordinator's STATS reply (also what qfstats -cluster
// renders).
type Snapshot struct {
	Proto        int          `json:"proto_version"`
	Workers      []WorkerStat `json:"workers"`
	Clients      int          `json:"clients"`
	TasksPending int          `json:"tasks_pending"`
	TasksLeased  int          `json:"tasks_leased"`
	TasksWaiting int          `json:"tasks_waiting"`
	TasksDone    int          `json:"tasks_done"`
	Leases       uint64       `json:"leases"`
	Reassigns    uint64       `json:"lease_reassigns"`
	DupResults   uint64       `json:"duplicate_results"`
	TaskFails    uint64       `json:"task_failures"`
	TierLocal    uint64       `json:"cache_local_hits"`
	TierCoord    uint64       `json:"cache_coord_hits"`
	TierFetch    uint64       `json:"cache_fetch_hits"`
	Recomputes   uint64       `json:"cache_recomputes"`
	JobsDone     uint64       `json:"jobs_done"`
	JobsFailed   uint64       `json:"jobs_failed"`
	StoreObjects int          `json:"store_objects"`
	StoreBytes   int64        `json:"store_bytes"`
	StoreLogical int          `json:"store_logical"`
}

// Snapshot captures the coordinator's current state and counters.
func (co *Coordinator) Snapshot() Snapshot {
	co.mu.Lock()
	now := time.Now()
	s := Snapshot{
		Proto:      ProtoVersion,
		Clients:    len(co.clients),
		Leases:     co.stats.leases,
		Reassigns:  co.stats.reassigns,
		DupResults: co.stats.dupResults,
		TaskFails:  co.stats.taskFails,
		TierLocal:  co.stats.localHits,
		TierCoord:  co.stats.coordHits,
		TierFetch:  co.stats.fetchHits,
		Recomputes: co.stats.computed,
		JobsDone:   co.stats.jobsDone,
		JobsFailed: co.stats.jobsFailed,
	}
	for _, w := range co.workers {
		s.Workers = append(s.Workers, WorkerStat{
			Name: w.name, Session: w.session, Slots: w.slots,
			Inflight: len(w.inflight), Fragments: w.frags,
			LastSeen: now.Sub(w.lastSeen).Milliseconds(),
		})
	}
	for _, t := range co.tasks {
		switch t.state {
		case taskPending:
			s.TasksPending++
		case taskLeased:
			s.TasksLeased++
		case taskWaiting:
			s.TasksWaiting++
		case taskDone:
			s.TasksDone++
		}
	}
	co.mu.Unlock()
	sortWorkers(s.Workers)
	if co.cfg.Store != nil {
		st := co.cfg.Store.Stats()
		s.StoreObjects = st.Objects
		s.StoreBytes = st.Bytes
		s.StoreLogical = st.Logical
	}
	return s
}

func sortWorkers(ws []WorkerStat) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].Session < ws[j-1].Session; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}
