package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"qframan/internal/core"
	"qframan/internal/geom"
	"qframan/internal/obs"
	"qframan/internal/raman"
	"qframan/internal/store"
	"qframan/internal/structure"
)

// testCoordinator starts a coordinator on a loopback listener with its own
// store, registering cleanup. The store may be nil to disable the
// coordinator cache tier.
func testCoordinator(t *testing.T, cfg CoordConfig) (*Coordinator, string) {
	t.Helper()
	if cfg.Store == nil {
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		cfg.Store = st
	}
	co := NewCoordinator(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		co.Serve(ln)
	}()
	t.Cleanup(func() {
		co.Close()
		<-done
	})
	return co, ln.Addr().String()
}

// startTestWorker runs one worker daemon with a fresh local store until the
// test ends.
func startTestWorker(t *testing.T, cfg WorkerConfig) {
	t.Helper()
	if cfg.Store == nil {
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		cfg.Store = st
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 200 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	w := NewWorker(cfg)
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
}

// clusterTestConfig is the fast Raman pipeline configuration every e2e test
// shares (the bit-identity comparisons need both sides to use one config).
func clusterTestConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Raman.FreqMin, cfg.Raman.FreqMax, cfg.Raman.FreqStep = 200, 4000, 10
	cfg.Raman.Sigma = 30
	cfg.Raman.LanczosK = 40
	return cfg
}

// waterboxGolden computes the single-process, store-backed waterbox
// spectrum exactly once per test binary — the golden every distributed run
// must match bit for bit. The store matters: Put serves the canonical
// roundtrip, which is the representation the cluster path ships.
var goldenOnce sync.Once
var goldenSpec *raman.Spectrum
var goldenErr error

func waterboxGolden(t *testing.T) *raman.Spectrum {
	t.Helper()
	goldenOnce.Do(func() {
		dir, err := store.Open(t.TempDir())
		if err != nil {
			goldenErr = err
			return
		}
		defer dir.Close()
		cfg := clusterTestConfig()
		cfg.Sched.Cache.Store = dir
		res, err := core.ComputeRaman(testWaterbox(), cfg)
		if err != nil {
			goldenErr = err
			return
		}
		goldenSpec = res.Spectrum
	})
	if goldenErr != nil {
		t.Fatalf("golden run: %v", goldenErr)
	}
	return goldenSpec
}

func testWaterbox() *structure.System {
	return structure.BuildWaterBox(2, 2, 1, geom.Vec3{})
}

func sameSpectrum(a, b *raman.Spectrum) error {
	if len(a.Intensity) != len(b.Intensity) || len(a.Freq) != len(b.Freq) {
		return fmt.Errorf("spectrum shapes differ: %d/%d vs %d/%d",
			len(a.Freq), len(a.Intensity), len(b.Freq), len(b.Intensity))
	}
	for i := range a.Intensity {
		if math.Float64bits(a.Intensity[i]) != math.Float64bits(b.Intensity[i]) {
			return fmt.Errorf("intensity[%d] differs: %x vs %x",
				i, math.Float64bits(a.Intensity[i]), math.Float64bits(b.Intensity[i]))
		}
	}
	for i := range a.Freq {
		if math.Float64bits(a.Freq[i]) != math.Float64bits(b.Freq[i]) {
			return fmt.Errorf("freq[%d] differs", i)
		}
	}
	return nil
}

// TestClusterBitIdenticalWaterbox is the acceptance run: a 1-coordinator,
// 4-worker loopback cluster computing the waterbox spectrum must emit
// bit-identical results to the single-process store-backed run.
func TestClusterBitIdenticalWaterbox(t *testing.T) {
	co, addr := testCoordinator(t, CoordConfig{Registry: obs.NewRegistry()})
	for i := 0; i < 4; i++ {
		startTestWorker(t, WorkerConfig{Addr: addr, Name: fmt.Sprintf("w%d", i), Slots: 1})
	}

	cfg := clusterTestConfig()
	cfg.Sched.Backend = NewClient(addr)
	res, err := core.ComputeRaman(testWaterbox(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameSpectrum(res.Spectrum, waterboxGolden(t)); err != nil {
		t.Fatalf("cluster spectrum deviates from single-process run: %v", err)
	}

	rep := res.SchedReport
	nf := len(res.Decomposition.Fragments)
	if rep.NumTasks == 0 || rep.NumTasks > nf {
		t.Fatalf("report: %d unique tasks for %d fragments", rep.NumTasks, nf)
	}
	// The waterbox monomers are rigid copies of one water: the client-side
	// dedup election must have collapsed them.
	if rep.Deduped == 0 {
		t.Fatalf("no within-run dedup on a rigid-copy waterbox (report %+v)", rep)
	}
	if rep.CacheMisses != rep.NumTasks {
		t.Fatalf("cold cluster run: %d computed of %d unique", rep.CacheMisses, rep.NumTasks)
	}

	snap := co.Snapshot()
	if snap.Recomputes == 0 || snap.Recomputes != uint64(rep.NumTasks) {
		t.Fatalf("coordinator counted %d recomputes, client saw %d", snap.Recomputes, rep.NumTasks)
	}
	if snap.JobsDone != 1 || snap.JobsFailed != 0 {
		t.Fatalf("job accounting: %+v", snap)
	}
}

// TestClusterDedupAcrossJobs pins the cluster-wide cache: a second client
// running the same system against a warm coordinator must be served
// entirely from the coordinator tier — zero new computes.
func TestClusterDedupAcrossJobs(t *testing.T) {
	co, addr := testCoordinator(t, CoordConfig{Registry: obs.NewRegistry()})
	startTestWorker(t, WorkerConfig{Addr: addr, Name: "w0", Slots: 2})

	cfg := clusterTestConfig()
	cfg.Sched.Backend = NewClient(addr)
	res1, err := core.ComputeRaman(testWaterbox(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	computed := co.Snapshot().Recomputes

	cfg2 := clusterTestConfig()
	cfg2.Sched.Backend = NewClient(addr)
	res2, err := core.ComputeRaman(testWaterbox(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameSpectrum(res1.Spectrum, res2.Spectrum); err != nil {
		t.Fatalf("warm run deviates: %v", err)
	}
	if err := sameSpectrum(res2.Spectrum, waterboxGolden(t)); err != nil {
		t.Fatalf("warm cluster run deviates from single-process run: %v", err)
	}

	snap := co.Snapshot()
	if snap.Recomputes != computed {
		t.Fatalf("warm run recomputed fragments: %d → %d", computed, snap.Recomputes)
	}
	if snap.TierCoord < computed {
		t.Fatalf("warm run served %d coord-tier hits, want ≥ %d", snap.TierCoord, computed)
	}
	rep := res2.SchedReport
	if rep.CacheMisses != 0 || rep.Resumed != rep.NumTasks {
		t.Fatalf("warm report: %+v", rep)
	}
}

// TestClusterWorkerLocalTier pins the worker-local cache: a worker that
// already holds every blob on its own disk serves leases without touching
// the engine or the coordinator store.
func TestClusterWorkerLocalTier(t *testing.T) {
	wstore, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer wstore.Close()

	// Warm the worker's local store through a first coordinator.
	co1, addr1 := testCoordinator(t, CoordConfig{Registry: obs.NewRegistry()})
	startTestWorker(t, WorkerConfig{Addr: addr1, Name: "w0", Slots: 2, Store: wstore})
	cfg := clusterTestConfig()
	cfg.Sched.Backend = NewClient(addr1)
	if _, err := core.ComputeRaman(testWaterbox(), cfg); err != nil {
		t.Fatal(err)
	}
	if co1.Snapshot().Recomputes == 0 {
		t.Fatal("cold run computed nothing")
	}

	// A brand-new coordinator (cold store) with the same worker: every
	// fragment must come back TierLocal.
	co2, addr2 := testCoordinator(t, CoordConfig{Registry: obs.NewRegistry()})
	startTestWorker(t, WorkerConfig{Addr: addr2, Name: "w0b", Slots: 2, Store: wstore})
	cfg2 := clusterTestConfig()
	cfg2.Sched.Backend = NewClient(addr2)
	res, err := core.ComputeRaman(testWaterbox(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameSpectrum(res.Spectrum, waterboxGolden(t)); err != nil {
		t.Fatalf("local-tier run deviates: %v", err)
	}
	snap := co2.Snapshot()
	if snap.Recomputes != 0 {
		t.Fatalf("worker recomputed %d fragments despite a warm local store", snap.Recomputes)
	}
	if snap.TierLocal == 0 {
		t.Fatalf("no local-tier hits recorded: %+v", snap)
	}
}

// TestHandshakeVersionSkew is the negative handshake test: a peer speaking
// an unknown protocol version must get a clean typed error — REJECT with
// the version code, mapped to ErrVersionSkew — never a hang or a dropped
// conn it has to time out on.
func TestHandshakeVersionSkew(t *testing.T) {
	_, addr := testCoordinator(t, CoordConfig{})

	start := time.Now()
	_, _, err := handshake(addr, Hello{Role: RoleWorker, Proto: ProtoVersion + 7, Name: "future"},
		time.Second, 0, nil)
	if !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("got %v, want ErrVersionSkew", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("version rejection took %v — the peer hung instead of rejecting", elapsed)
	}

	// The same skew at the raw frame level: the coordinator answers with a
	// typed REJECT frame, not silence.
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := WriteFrame(c, MsgHello, Hello{Role: RoleClient, Proto: 0}.encode()); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, _, err := ReadFrame(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != MsgReject {
		t.Fatalf("got %s, want REJECT", f.Type)
	}
	rej, err := decodeReject(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if rej.Code != RejectVersion {
		t.Fatalf("reject code %d, want RejectVersion", rej.Code)
	}
}

// TestHandshakeUnknownRole pins the generic rejection path (distinct from
// version skew).
func TestHandshakeUnknownRole(t *testing.T) {
	_, addr := testCoordinator(t, CoordConfig{})
	_, _, err := handshake(addr, Hello{Role: 99, Proto: ProtoVersion}, time.Second, 0, nil)
	if !errors.Is(err, ErrRejected) || errors.Is(err, ErrVersionSkew) {
		t.Fatalf("got %v, want plain ErrRejected", err)
	}
}

// TestWorkerVersionSkewPermanent: a worker facing version skew must give up
// instead of burning its reconnect budget against an incompatible peer.
func TestWorkerVersionSkewPermanent(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			ReadFrame(c, 0)
			WriteFrame(c, MsgReject, Reject{Code: RejectVersion, Reason: "nope"}.encode())
			c.Close()
		}
	}()

	w := NewWorker(WorkerConfig{Addr: ln.Addr().String(), Name: "skewed"})
	errc := make(chan error, 1)
	go func() { errc <- w.Run(context.Background()) }()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrVersionSkew) {
			t.Fatalf("got %v, want ErrVersionSkew", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker kept reconnecting after a version rejection")
	}
}

// TestFetchStats exercises the STATS RPC end to end over a live cluster.
func TestFetchStats(t *testing.T) {
	_, addr := testCoordinator(t, CoordConfig{Registry: obs.NewRegistry()})
	startTestWorker(t, WorkerConfig{Addr: addr, Name: "w0", Slots: 2})

	cfg := clusterTestConfig()
	cfg.Sched.Backend = NewClient(addr)
	res, err := core.ComputeRaman(testWaterbox(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	s, err := FetchStats(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if s.Proto != ProtoVersion {
		t.Fatalf("snapshot proto %d", s.Proto)
	}
	if len(s.Workers) != 1 || s.Workers[0].Name != "w0" {
		t.Fatalf("worker roster: %+v", s.Workers)
	}
	if s.Workers[0].Fragments == 0 {
		t.Fatal("per-worker fragment count missing")
	}
	if s.TasksDone != res.SchedReport.NumTasks {
		t.Fatalf("snapshot shows %d done tasks, report %d", s.TasksDone, res.SchedReport.NumTasks)
	}
	if s.Recomputes == 0 || s.StoreObjects == 0 {
		t.Fatalf("cache accounting empty: %+v", s)
	}
}
