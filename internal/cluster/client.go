package cluster

import (
	"encoding/json"
	"fmt"
	"time"

	"qframan/internal/fragment"
	"qframan/internal/hessian"
	"qframan/internal/obs"
	"qframan/internal/sched"
	"qframan/internal/store"
)

// Client is the sched.Backend that fans a run's fragments out to a
// coordinator: it fingerprints every fragment, submits one producer per
// content class (lowest index, matching the in-process runtime's
// election), and expands each canonical result to all class members via
// their own rigid frames — so the assembled spectrum is bit-identical to
// the single-process store-backed run.
type Client struct {
	// Addr is the coordinator's TCP address.
	Addr string
	// Name identifies the client in coordinator logs.
	Name string
	// DialTimeout bounds the connection attempt (default 5 s).
	DialTimeout time.Duration
	// HeartbeatInterval paces liveness beacons toward the coordinator
	// (default 3 s).
	HeartbeatInterval time.Duration
	// MaxPayload bounds inbound frame payloads (0 = DefaultMaxPayload).
	MaxPayload int
	// Logf receives operational log lines (nil discards).
	Logf func(format string, args ...any)
}

// NewClient returns a cluster dispatch backend for a coordinator address.
func NewClient(addr string) *Client { return &Client{Addr: addr} }

// Run implements sched.Backend.
func (c *Client) Run(dec *fragment.Decomposition, opt sched.Options) ([]*hessian.FragmentData, *sched.Report, error) {
	start := time.Now()
	nf := len(dec.Fragments)
	if nf == 0 {
		return nil, &sched.Report{}, nil
	}
	_, runSpan := opt.Obs.Begin("cluster.run", "sched", obs.A("frags", int64(nf)))
	defer runSpan.End()

	// Fingerprint every fragment and elect one producer per content class
	// (lowest index first — the same deterministic election the
	// in-process runtime uses).
	keys := make([]store.Key, nf)
	frames := make([]store.Frame, nf)
	classes := make(map[store.Key][]int, nf)
	var producers []int
	for i := range dec.Fragments {
		k, fr := store.Fingerprint(&dec.Fragments[i], opt.Job)
		keys[i], frames[i] = k, fr
		if len(classes[k]) == 0 {
			producers = append(producers, i)
		}
		classes[k] = append(classes[k], i)
	}

	hb := c.HeartbeatInterval
	if hb <= 0 {
		hb = 3 * time.Second
	}
	var reg *obs.Registry
	if opt.Obs.R != nil {
		reg = opt.Obs.R
	}
	tr, _, err := handshake(c.Addr, Hello{Role: RoleClient, Proto: ProtoVersion, Name: c.Name},
		c.DialTimeout, c.MaxPayload, reg)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: connect %s: %w", c.Addr, err)
	}
	done := make(chan struct{})
	defer func() {
		close(done)
		tr.close()
	}()

	// Heartbeats and cancellation: closing the conn unblocks the read
	// loop below, which then reports ErrCancelled.
	cancelled := make(chan struct{}, 1)
	go func() {
		ticker := time.NewTicker(hb)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-optCancel(opt.Cancel):
				cancelled <- struct{}{}
				tr.write(MsgBye, Bye{Reason: "cancelled"}.encode())
				tr.close()
				return
			case <-ticker.C:
				if err := tr.write(MsgHeartbeat, Heartbeat{}.encode()); err != nil {
					return
				}
			}
		}
	}()

	const jobID = 1
	if err := tr.write(MsgJob, Job{Job: jobID, NFrags: uint32(len(producers)), Opt: JobWireFrom(opt.Job)}.encode()); err != nil {
		return nil, nil, fmt.Errorf("cluster: submit job: %w", err)
	}
	for _, i := range producers {
		f := &dec.Fragments[i]
		if err := tr.write(MsgFrag, Frag{
			Job: jobID, Frag: uint32(i), Key: keys[i], Els: f.Els, Pos: f.Pos,
		}.encode()); err != nil {
			return nil, nil, fmt.Errorf("cluster: submit fragment %d: %w", i, err)
		}
	}

	results := make([]*hessian.FragmentData, nf)
	rep := &sched.Report{NumTasks: len(producers)}
	received := 0
	gotDone := false
	var jd JobDone
	for received < len(producers) || !gotDone {
		f, err := tr.read()
		if err != nil {
			select {
			case <-cancelled:
				return nil, nil, fmt.Errorf("cluster: %w", sched.ErrCancelled)
			default:
			}
			return nil, nil, fmt.Errorf("cluster: coordinator connection: %w", err)
		}
		switch f.Type {
		case MsgServe:
			sv, err := decodeServe(f.Payload)
			if err != nil {
				return nil, nil, err
			}
			i := int(sv.Frag)
			if i < 0 || i >= nf || results[i] != nil {
				return nil, nil, fmt.Errorf("%w: SERVE for unknown fragment %d", ErrProtocol, i)
			}
			canon, err := store.Decode(sv.Blob)
			if err != nil {
				return nil, nil, fmt.Errorf("cluster: fragment %d result: %w", i, err)
			}
			// Expand the canonical result to every member of the class
			// through its own rigid frame — exactly the store's Get
			// path, so bits match the single-process run.
			for _, m := range classes[keys[i]] {
				results[m], err = frames[m].FromCanonical(canon)
				if err != nil {
					return nil, nil, fmt.Errorf("cluster: fragment %d result: %w", m, err)
				}
			}
			received++
		case MsgJobDone:
			m, err := decodeJobDone(f.Payload)
			if err != nil {
				return nil, nil, err
			}
			if m.Err != "" {
				return nil, nil, fmt.Errorf("cluster: job failed: %s", m.Err)
			}
			jd, gotDone = m, true
		default:
			return nil, nil, fmt.Errorf("%w: unexpected %s at client", ErrProtocol, f.Type)
		}
	}

	// Map the coordinator's per-tier accounting onto the scheduler
	// report: recomputed fragments are cache misses; tier hits are
	// resume-equivalent (work inherited from the cluster's stores);
	// within-run rigid copies are dedup.
	tierHits := int(jd.LocalHits + jd.CoordHits + jd.FetchHits)
	rep.CacheMisses = int(jd.Computed)
	rep.Resumed = tierHits
	rep.Deduped = nf - len(producers)
	rep.CacheHits = rep.Resumed + rep.Deduped
	rep.Requeues = int(jd.Reassigns)
	rep.Elapsed = time.Since(start)
	return results, rep, nil
}

// FetchStats connects to a coordinator as a client, requests its STATS
// snapshot, and returns it decoded.
func FetchStats(addr string, timeout time.Duration) (Snapshot, error) {
	tr, _, err := handshake(addr, Hello{Role: RoleClient, Proto: ProtoVersion, Name: "qfstats"},
		timeout, 0, nil)
	if err != nil {
		return Snapshot{}, err
	}
	defer tr.close()
	if err := tr.write(MsgStats, nil); err != nil {
		return Snapshot{}, err
	}
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	tr.setReadDeadline(time.Now().Add(timeout))
	f, err := tr.read()
	if err != nil {
		return Snapshot{}, err
	}
	if f.Type != MsgStatsOK {
		return Snapshot{}, fmt.Errorf("%w: %s in reply to STATS", ErrProtocol, f.Type)
	}
	var s Snapshot
	if err := json.Unmarshal(f.Payload, &s); err != nil {
		return Snapshot{}, fmt.Errorf("cluster: stats payload: %w", err)
	}
	tr.write(MsgBye, Bye{Reason: "stats done"}.encode())
	return s, nil
}

// optCancel turns a possibly-nil cancel channel into a never-firing one.
func optCancel(ch <-chan struct{}) <-chan struct{} {
	if ch != nil {
		return ch
	}
	return neverChan
}

var neverChan = make(chan struct{})
