package cluster

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundtripAllTypes(t *testing.T) {
	payloads := [][]byte{nil, {}, {0x42}, bytes.Repeat([]byte{0xA5}, 1000)}
	for mt := MsgType(1); mt <= msgMax; mt++ {
		for _, p := range payloads {
			b := EncodeFrame(mt, p)
			f, err := DecodeFrame(b)
			if err != nil {
				t.Fatalf("%s payload %d: %v", mt, len(p), err)
			}
			if f.Type != mt || !bytes.Equal(f.Payload, p) {
				t.Fatalf("%s payload %d: roundtrip mismatch", mt, len(p))
			}
			// The stream reader must agree with the whole-buffer decoder.
			rf, n, err := ReadFrame(bytes.NewReader(b), 0)
			if err != nil || n != len(b) || rf.Type != mt || !bytes.Equal(rf.Payload, p) {
				t.Fatalf("%s payload %d: ReadFrame disagrees (n=%d err=%v)", mt, len(p), n, err)
			}
		}
	}
}

func TestDecodeFrameRejectsDamage(t *testing.T) {
	valid := EncodeFrame(MsgHeartbeat, Heartbeat{Inflight: 3}.encode())

	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrBadFrame},
		{"truncated header", func(b []byte) []byte { return b[:7] }, ErrBadFrame},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-5] }, ErrBadFrame},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrBadFrame},
		{"frame version skew", func(b []byte) []byte { b[4] = 2; return b }, ErrFrameVersion},
		{"payload bit flip", func(b []byte) []byte { b[headerSize] ^= 0x80; return b }, ErrBadFrame},
		{"header bit flip", func(b []byte) []byte { b[6] ^= 0x01; return b }, ErrBadFrame},
		{"CRC bit flip", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }, ErrBadFrame},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0) }, ErrBadFrame},
		{"giant declared length", func(b []byte) []byte {
			b[7], b[8], b[9], b[10] = 0xFF, 0xFF, 0xFF, 0x7F
			return b
		}, ErrFrameTooLarge},
	}
	for _, tc := range cases {
		b := tc.mut(append([]byte(nil), valid...))
		if _, err := DecodeFrame(b); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}

	// A structurally perfect frame with an out-of-range message type is
	// corrupt, not a future protocol extension: type is covered by the CRC.
	bad := EncodeFrame(msgMax+1, nil)
	if _, err := DecodeFrame(bad); !errors.Is(err, ErrBadFrame) {
		t.Errorf("unknown type: got %v, want ErrBadFrame", err)
	}
}

func TestReadFramePayloadCap(t *testing.T) {
	b := EncodeFrame(MsgResult, make([]byte, 4096))
	if _, _, err := ReadFrame(bytes.NewReader(b), 1024); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	if f, _, err := ReadFrame(bytes.NewReader(b), 4096); err != nil || len(f.Payload) != 4096 {
		t.Fatalf("within cap: %v", err)
	}
}

func TestReadFrameTruncatedStream(t *testing.T) {
	b := EncodeFrame(MsgServe, []byte("spectrum"))
	for cut := 1; cut < len(b); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(b[:cut]), 0)
		if err == nil {
			t.Fatalf("accepted a stream truncated at %d/%d bytes", cut, len(b))
		}
		if cut < headerSize {
			// Header truncation surfaces as a raw io error so stream
			// consumers can tell clean EOF from a poisoned stream.
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("cut %d: got %v, want io EOF family", cut, err)
			}
		} else if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("cut %d: got %v, want ErrBadFrame", cut, err)
		}
	}
}

// FuzzDecodeClusterFrame is the protocol's structural fuzz target: no input
// may panic or over-allocate, and anything DecodeFrame accepts must
// re-encode to exactly the input bytes (the frame layout is canonical) and
// be accepted identically by the stream reader.
func FuzzDecodeClusterFrame(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(EncodeFrame(MsgHello, Hello{Role: RoleWorker, Proto: ProtoVersion, Slots: 4, Name: "w0"}.encode()))
	f.Add(EncodeFrame(MsgResult, Result{Task: 7, Epoch: 2, Tier: TierCompute, Blob: []byte("blob")}.encode()))
	f.Add(EncodeFrame(MsgJobDone, JobDone{Job: 1, Computed: 9}.encode()))
	// Truncated frame.
	f.Add(EncodeFrame(MsgLease, bytes.Repeat([]byte{1}, 64))[:30])
	// Bit-flipped payload (CRC must catch it).
	flipped := EncodeFrame(MsgServe, []byte("intensity"))
	flipped[headerSize+2] ^= 0x10
	f.Add(flipped)
	// Version-skewed frame.
	skewed := EncodeFrame(MsgHeartbeat, Heartbeat{}.encode())
	skewed[4] = 0xFF
	f.Add(skewed)
	// Wrong magic.
	f.Add(append([]byte("QFXX"), EncodeFrame(MsgBye, nil)[4:]...))

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := DecodeFrame(b)
		if err != nil {
			return
		}
		if fr.Type == 0 || fr.Type > msgMax {
			t.Fatalf("accepted out-of-range message type %d", fr.Type)
		}
		if got := EncodeFrame(fr.Type, fr.Payload); !bytes.Equal(got, b) {
			t.Fatalf("accepted frame is not canonical: re-encodes to %d bytes from %d", len(got), len(b))
		}
		sf, n, err := ReadFrame(bytes.NewReader(b), 0)
		if err != nil || n != len(b) || sf.Type != fr.Type || !bytes.Equal(sf.Payload, fr.Payload) {
			t.Fatalf("ReadFrame disagrees with DecodeFrame (n=%d err=%v)", n, err)
		}
	})
}
