// Package cluster is the distributed master–leader–worker runtime: it
// lifts the paper's three-level MPI hierarchy (§V-B, Fig. 4) out of a
// single process and onto plain TCP. A coordinator owns fragment
// assignment with epoch-based ownership leases; worker daemons execute
// fragments with their own in-process leader/worker fan-out and stream
// results back over a versioned, length-prefixed binary RPC protocol that
// reuses internal/store's CRC-32C codec discipline (magic, version, CRC
// per frame). The content-addressed store becomes a tiered cache —
// worker-local disk, coordinator fetch, recompute — so rigid-copy dedup
// works cluster-wide, and internal/faults-driven chaos (dropped frames,
// corrupted frames, severed connections, worker death) is injectable at
// the transport and survivable: bounded retry, lease expiry plus
// reassignment, and duplicate-result suppression keep results
// bit-identical to a single-process run.
package cluster

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame layout (all integers little-endian), mirroring the store codec's
// discipline — magic, version, length, CRC on every frame:
//
//	[0:4)       magic "QFCL"
//	[4:6)       u16 frame-codec version
//	[6:7)       u8  message type
//	[7:11)      u32 payload length N
//	[11:11+N)   payload
//	[11+N:15+N) u32 CRC-32C (Castagnoli) over bytes [0:11+N)
//
// The frame-codec version covers the frame layout itself (like the store
// codec's record version); the application protocol version rides inside
// the HELLO payload and is negotiated at handshake (ErrVersionSkew).
const (
	frameMagic   = "QFCL"
	FrameVersion = 1
	// ProtoVersion is the application protocol version carried in HELLO.
	// A peer advertising a different version is rejected at handshake.
	ProtoVersion = 1

	headerSize  = 11
	trailerSize = 4

	// DefaultMaxPayload bounds a frame's payload. The largest legitimate
	// payload is a RESULT blob for a big capped fragment (a few MB); 64
	// MiB leaves ample headroom while keeping a corrupt length field from
	// provoking a giant allocation.
	DefaultMaxPayload = 64 << 20
)

// Typed protocol errors, mirroring internal/store's ErrCorrupt/ErrVersion
// discipline.
var (
	// ErrBadFrame marks a frame that fails structural validation: wrong
	// magic, truncated header or body, or CRC mismatch. A connection that
	// produces one is dropped — the stream offset can no longer be
	// trusted.
	ErrBadFrame = errors.New("cluster: corrupt frame")
	// ErrFrameVersion marks a frame whose codec version this build does
	// not understand.
	ErrFrameVersion = errors.New("cluster: unsupported frame version")
	// ErrVersionSkew marks a handshake whose application protocol version
	// does not match ours; the peer is rejected cleanly (REJECT frame),
	// never hung up on silently.
	ErrVersionSkew = errors.New("cluster: protocol version mismatch")
	// ErrFrameTooLarge marks a frame whose declared payload exceeds the
	// transport's size cap.
	ErrFrameTooLarge = errors.New("cluster: frame exceeds payload cap")
	// ErrProtocol marks a structurally valid frame that is illegal in the
	// current conversation state (bad payload encoding, unexpected type).
	ErrProtocol = errors.New("cluster: protocol violation")
	// ErrRejected wraps the reason string of a REJECT frame received at
	// handshake.
	ErrRejected = errors.New("cluster: handshake rejected")
)

// MsgType enumerates the protocol's message types.
type MsgType uint8

const (
	MsgHello MsgType = iota + 1
	MsgWelcome
	MsgReject
	MsgJob
	MsgFrag
	MsgLease
	MsgResult
	MsgServe
	MsgFetch
	MsgFetchOK
	MsgFetchMiss
	MsgHeartbeat
	MsgSteal
	MsgTaskFail
	MsgJobDone
	MsgStats
	MsgStatsOK
	MsgBye

	msgMax = MsgBye
)

var msgNames = [...]string{
	MsgHello:     "HELLO",
	MsgWelcome:   "WELCOME",
	MsgReject:    "REJECT",
	MsgJob:       "JOB",
	MsgFrag:      "FRAG",
	MsgLease:     "LEASE",
	MsgResult:    "RESULT",
	MsgServe:     "SERVE",
	MsgFetch:     "FETCH",
	MsgFetchOK:   "FETCH_OK",
	MsgFetchMiss: "FETCH_MISS",
	MsgHeartbeat: "HEARTBEAT",
	MsgSteal:     "STEAL",
	MsgTaskFail:  "TASK_FAIL",
	MsgJobDone:   "JOB_DONE",
	MsgStats:     "STATS",
	MsgStatsOK:   "STATS_OK",
	MsgBye:       "BYE",
}

// String returns the wire name of the message type (used as the {rpc=...}
// metric label).
func (t MsgType) String() string {
	if int(t) < len(msgNames) && msgNames[t] != "" {
		return msgNames[t]
	}
	return fmt.Sprintf("MSG_%d", uint8(t))
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame is one decoded protocol frame.
type Frame struct {
	Type    MsgType
	Payload []byte
}

// EncodeFrame serializes one frame: header, payload, CRC trailer.
func EncodeFrame(t MsgType, payload []byte) []byte {
	b := make([]byte, 0, headerSize+len(payload)+trailerSize)
	b = append(b, frameMagic...)
	b = appendU16(b, FrameVersion)
	b = append(b, byte(t))
	b = appendU32(b, uint32(len(payload)))
	b = append(b, payload...)
	return appendU32(b, crc32.Checksum(b, castagnoli))
}

// DecodeFrame parses one complete frame from b, which must contain exactly
// one frame (the fuzz target's entry point). Stream consumers use
// ReadFrame instead.
func DecodeFrame(b []byte) (Frame, error) {
	if len(b) < headerSize+trailerSize {
		return Frame{}, fmt.Errorf("%w: %d bytes, need at least %d", ErrBadFrame, len(b), headerSize+trailerSize)
	}
	if string(b[:4]) != frameMagic {
		return Frame{}, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	if v := readU16(b[4:]); v != FrameVersion {
		return Frame{}, fmt.Errorf("%w: frame version %d, want %d", ErrFrameVersion, v, FrameVersion)
	}
	n := int(readU32(b[7:]))
	if n > DefaultMaxPayload {
		return Frame{}, fmt.Errorf("%w: payload %d > %d", ErrFrameTooLarge, n, DefaultMaxPayload)
	}
	if len(b) != headerSize+n+trailerSize {
		return Frame{}, fmt.Errorf("%w: length %d, header declares payload %d", ErrBadFrame, len(b), n)
	}
	body := b[:headerSize+n]
	if got, want := readU32(b[headerSize+n:]), crc32.Checksum(body, castagnoli); got != want {
		return Frame{}, fmt.Errorf("%w: CRC mismatch", ErrBadFrame)
	}
	t := MsgType(b[6])
	if t == 0 || t > msgMax {
		return Frame{}, fmt.Errorf("%w: unknown message type %d", ErrBadFrame, uint8(t))
	}
	payload := make([]byte, n)
	copy(payload, b[headerSize:headerSize+n])
	return Frame{Type: t, Payload: payload}, nil
}

// WriteFrame encodes and writes one frame, returning the bytes written.
func WriteFrame(w io.Writer, t MsgType, payload []byte) (int, error) {
	return w.Write(EncodeFrame(t, payload))
}

// ReadFrame reads exactly one frame from the stream. maxPayload bounds the
// declared payload length (≤ 0 selects DefaultMaxPayload). It returns the
// decoded frame and the total bytes consumed. Any framing error poisons
// the stream: the caller must drop the connection.
func ReadFrame(r io.Reader, maxPayload int) (Frame, int, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, 0, err
	}
	if string(hdr[:4]) != frameMagic {
		return Frame{}, headerSize, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	if v := readU16(hdr[4:]); v != FrameVersion {
		return Frame{}, headerSize, fmt.Errorf("%w: frame version %d, want %d", ErrFrameVersion, v, FrameVersion)
	}
	n := int(readU32(hdr[7:]))
	if n > maxPayload {
		return Frame{}, headerSize, fmt.Errorf("%w: payload %d > %d", ErrFrameTooLarge, n, maxPayload)
	}
	rest := make([]byte, n+trailerSize)
	if _, err := io.ReadFull(r, rest); err != nil {
		return Frame{}, headerSize, fmt.Errorf("%w: truncated body: %v", ErrBadFrame, err)
	}
	crcIn := crc32.Update(crc32.Checksum(hdr[:], castagnoli), castagnoli, rest[:n])
	if got := readU32(rest[n:]); got != crcIn {
		return Frame{}, headerSize + n + trailerSize, fmt.Errorf("%w: CRC mismatch", ErrBadFrame)
	}
	t := MsgType(hdr[6])
	if t == 0 || t > msgMax {
		return Frame{}, headerSize + n + trailerSize, fmt.Errorf("%w: unknown message type %d", ErrBadFrame, uint8(t))
	}
	return Frame{Type: t, Payload: rest[:n:n]}, headerSize + n + trailerSize, nil
}

// Little-endian primitive helpers (the store codec's discipline; its
// helpers are unexported, so the cluster wire format carries its own).

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v), byte(v>>8)) }

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	b = appendU32(b, uint32(v))
	return appendU32(b, uint32(v>>32))
}

func readU16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }

func readU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func readU64(b []byte) uint64 {
	return uint64(readU32(b)) | uint64(readU32(b[4:]))<<32
}
