// Package par is the deterministic intra-fragment parallel kernel layer —
// the second of the paper's two nested levels of parallelism (§V): fragments
// fan out across leaders and workers (internal/sched), while *inside* every
// DFPT phase the data-parallel loops — grid-batch GEMMs, the CG Poisson
// stencil, density/potential integration, the sparse Hessian–vector products
// of the Lanczos solver — fan out across the cores of one node (the Sunway
// CPE clusters and ORISE GPUs of §V-B/§V-C; here, a bounded goroutine pool).
//
// # Determinism contract
//
// Every construct in this package is bit-deterministic for any worker count:
//
//   - Chunk boundaries are a pure function of the problem size n (and the
//     call site's minChunk), never of the worker count, GOMAXPROCS, or the
//     token budget. The same n always produces the same chunks.
//   - Reductions (ReduceSum, Dot, Norm2) compute one partial value per chunk
//     — each chunk accumulated serially, left to right — and combine the
//     partials in ascending chunk order on the calling goroutine. Which
//     worker computed a partial, and when, cannot affect the result.
//   - For bodies must write only to locations owned by their [lo,hi) range;
//     under that (checked by -race) the schedule cannot affect results.
//
// Float addition is not associative, so a chunked sum differs in the last
// bits from an unchunked one — but the chunked association is *fixed*, so
// results are bit-identical whether the chunks execute on 1 worker or 64.
// This is what preserves the store's content-addressed bit-reproducibility
// and the golden-spectrum guarantees while kernels scale.
//
// # Token budget
//
// A process-wide budget of kernel threads (default GOMAXPROCS, overridable
// with SetBudget / the qframan -kernel-threads flag / QF_KERNEL_THREADS)
// coordinates the two parallelism levels: the scheduler Reserve()s one token
// per displacement worker while a fragment is in flight, and kernels
// TryAcquire whatever remains. Few big fragments → many free tokens → wide
// kernels; many small fragments → no free tokens → kernels run inline on
// their caller. Acquisition never blocks, so nested parallel calls cannot
// deadlock and the host is never oversubscribed.
package par

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// maxChunks bounds the number of chunks a single call is split into; with
// minChunk it fully determines the (width-independent) chunk layout. 32
// chunks divide evenly across the modeled pool widths (2/4/8) while keeping
// per-chunk work large enough that the per-chunk bookkeeping (cursor bump,
// and under profile capture two clock reads) stays a small fraction of the
// chunk body.
const maxChunks = 32

// chunkLayout returns the deterministic chunk size and count for a range of
// n items: chunks are at least minChunk long, and at most maxChunks of them.
// The layout depends only on (n, minChunk) — never on workers or budget.
func chunkLayout(n, minChunk int) (size, count int) {
	if n <= 0 {
		return 0, 0
	}
	if minChunk < 1 {
		minChunk = 1
	}
	size = minChunk
	if c := (n + maxChunks - 1) / maxChunks; c > size {
		size = c
	}
	count = (n + size - 1) / size
	return size, count
}

// ---- Token budget ----

var (
	budgetMu    sync.Mutex
	budgetTotal int
	// tokens is the number of helper workers currently available. It can go
	// negative under reservation pressure; TryAcquire treats ≤0 as empty.
	tokens atomic.Int64
)

func init() {
	n := runtime.GOMAXPROCS(0)
	if s := os.Getenv("QF_KERNEL_THREADS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	budgetTotal = n
	tokens.Store(int64(n - 1)) // the calling goroutine is a worker too
}

// SetBudget sets the total kernel-thread budget (the caller counts as one;
// budget−1 helper tokens are available). n ≤ 0 resets to GOMAXPROCS.
// Results never depend on the budget — only wall time does.
func SetBudget(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	budgetMu.Lock()
	defer budgetMu.Unlock()
	tokens.Add(int64(n - budgetTotal))
	budgetTotal = n
}

// Budget returns the total kernel-thread budget.
func Budget() int {
	budgetMu.Lock()
	defer budgetMu.Unlock()
	return budgetTotal
}

// Reserve withholds n tokens from the kernel pool — one per goroutine the
// caller is about to keep busy with its own (fragment-level) parallelism —
// and returns a release function. While reserved, kernels go narrower so
// fragment fan-out and kernel fan-out never oversubscribe the host.
func Reserve(n int) (release func()) {
	if n <= 0 {
		return func() {}
	}
	tokens.Add(int64(-n))
	var once sync.Once
	return func() {
		once.Do(func() { tokens.Add(int64(n)) })
	}
}

// tryAcquire takes up to k helper tokens without blocking.
func tryAcquire(k int) int {
	if k <= 0 {
		return 0
	}
	for {
		cur := tokens.Load()
		if cur <= 0 {
			return 0
		}
		m := int64(k)
		if cur < m {
			m = cur
		}
		if tokens.CompareAndSwap(cur, cur-m) {
			return int(m)
		}
	}
}

func releaseTokens(m int) {
	if m > 0 {
		tokens.Add(int64(m))
	}
}

// ---- Worker pool ----

// idle parks finished workers for reuse; a dispatch prefers a parked worker
// over spawning a goroutine. The pool is bounded by the token budget, not by
// this channel (parked workers hold no tokens).
var idle = make(chan chan func(), 256)

func dispatch(fn func()) {
	select {
	case inbox := <-idle:
		inbox <- fn
	default:
		go workerLoop(fn)
	}
}

func workerLoop(fn func()) {
	inbox := make(chan func())
	for {
		fn()
		select {
		case idle <- inbox:
			fn = <-inbox
		default:
			return
		}
	}
}

// ---- Kernel entry points ----

// Chunks returns the deterministic chunk count of an n-item range with the
// given minChunk — how many per-chunk accumulators a ForChunks caller needs.
func Chunks(n, minChunk int) int {
	_, count := chunkLayout(n, minChunk)
	return count
}

// For executes body(lo, hi) over a partition of [0, n) on up to
// budget-limited workers. name labels the kernel in the observability
// metrics. Bodies must touch only state owned by their range; the chunk
// layout is a pure function of (n, minChunk), so any write pattern that is
// per-index is automatically bit-deterministic.
func For(name string, n, minChunk int, body func(lo, hi int)) {
	ForChunks(name, n, minChunk, func(_, lo, hi int) { body(lo, hi) })
}

// ForChunks is For with the chunk index exposed: body(c, lo, hi) may fill a
// per-chunk accumulator slot c, which the caller then combines in ascending
// chunk order for a deterministic reduction over non-scalar state (see
// scf.Forces). Chunk indices run 0..Chunks(n, minChunk)-1.
func ForChunks(name string, n, minChunk int, body func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	size, count := chunkLayout(n, minChunk)
	prof := profile.Load()
	if count <= 1 && prof == nil {
		body(0, 0, n)
		obsInline()
		return
	}
	helpers := 0
	if prof == nil {
		helpers = tryAcquire(count - 1)
	}
	if helpers == 0 {
		// Inline: one chunk, or no tokens free, or profiling (which times
		// every chunk individually on the caller). count ≤ maxChunks, so the
		// capture buffer lives on the stack; add copies it into the profile's
		// flat per-kernel log.
		if prof != nil {
			var durs [maxChunks]time.Duration
			for c := 0; c < count; c++ {
				t0 := time.Now()
				body(c, c*size, minInt((c+1)*size, n))
				durs[c] = time.Since(t0)
			}
			prof.add(name, durs[:count])
		} else {
			for c := 0; c < count; c++ {
				body(c, c*size, minInt((c+1)*size, n))
			}
		}
		obsInline()
		return
	}
	runChunked(name, size, count, n, helpers, func(c int) {
		body(c, c*size, minInt((c+1)*size, n))
	})
}

// ReduceSum computes the sum of body(lo, hi) over the deterministic chunk
// partition of [0, n), combining the per-chunk partial sums in ascending
// chunk order. The result is bit-identical for any worker count or budget.
func ReduceSum(name string, n, minChunk int, body func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	size, count := chunkLayout(n, minChunk)
	prof := profile.Load()
	if count == 1 && prof == nil {
		obsInline()
		return body(0, n)
	}
	partials := make([]float64, count)
	helpers := 0
	if prof == nil {
		helpers = tryAcquire(count - 1)
	}
	if helpers == 0 {
		if prof != nil {
			var durs [maxChunks]time.Duration
			for c := 0; c < count; c++ {
				t0 := time.Now()
				partials[c] = body(c*size, minInt((c+1)*size, n))
				durs[c] = time.Since(t0)
			}
			prof.add(name, durs[:count])
		} else {
			for c := 0; c < count; c++ {
				partials[c] = body(c*size, minInt((c+1)*size, n))
			}
		}
		obsInline()
	} else {
		runChunked(name, size, count, n, helpers, func(c int) {
			partials[c] = body(c*size, minInt((c+1)*size, n))
		})
	}
	var s float64
	for _, p := range partials { // ordered combine: chunk 0, 1, 2, …
		s += p
	}
	return s
}

// runChunked drains chunks 0..count-1 through an atomic cursor shared by the
// caller and `helpers` pool workers. Chunk→worker assignment is racy and
// irrelevant: every chunk writes only its own slots.
func runChunked(name string, size, count, n, helpers int, run func(chunk int)) {
	o := obsState.Load()
	if o != nil {
		o.jobs.Inc()
		o.width.Observe(float64(helpers + 1))
		o.busy.Add(int64(helpers))
	}
	var cursor atomic.Int64
	drain := func() {
		var t0 time.Time
		if o != nil {
			t0 = time.Now()
		}
		for {
			c := int(cursor.Add(1)) - 1
			if c >= count {
				break
			}
			run(c)
		}
		if o != nil {
			o.shard(name).ObserveDuration(time.Since(t0))
		}
	}
	var wg sync.WaitGroup
	wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		dispatch(func() {
			defer wg.Done()
			drain()
		})
	}
	drain()
	wg.Wait()
	releaseTokens(helpers)
	if o != nil {
		o.busy.Add(int64(-helpers))
	}
}

// dotChunk is the reduction floor for Dot/SumSq: vectors below it take the
// exact serial path, and longer vectors split into ≥2,048-element chunks —
// ~µs of fused multiply-add work per chunk, enough to amortize dispatch
// while giving the 10⁴–10⁵-element CG vectors of fragment Poisson solves
// real intra-solve parallelism.
const dotChunk = 2048

// dotRange is the per-chunk dot body: four independent accumulator chains
// (the SIMD-friendly unrolled form — the add-latency chain of the naive loop
// is the bottleneck, not bandwidth, for L1/L2-resident CG vectors). The
// association depends only on (lo, hi), which the chunk layout fixes, so the
// combined value stays bit-identical at any width.
func dotRange(a, b []float64, lo, hi int) float64 {
	var s0, s1, s2, s3 float64
	i := lo
	for ; i+3 < hi; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	var st float64
	for ; i < hi; i++ {
		st += a[i] * b[i]
	}
	return ((s0 + s1) + (s2 + s3)) + st
}

// Dot returns the inner product of two equal-length vectors with the
// deterministic chunked reduction (bit-identical at any width).
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("par: Dot length mismatch")
	}
	return ReduceSum("dot", len(a), dotChunk, func(lo, hi int) float64 {
		return dotRange(a, b, lo, hi)
	})
}

// SumSq returns Σ aᵢ² with the deterministic chunked reduction.
func SumSq(a []float64) float64 {
	return ReduceSum("dot", len(a), dotChunk, func(lo, hi int) float64 {
		return dotRange(a, a, lo, hi)
	})
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
