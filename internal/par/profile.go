package par

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Profile captures per-chunk kernel timings for the modeled-scaling
// experiment (EXPERIMENTS.md "Kernel scaling"). While capture is active,
// every For/ReduceSum runs its chunks serially on the caller, timing each
// chunk individually; Replay then computes the makespan a work-conserving
// w-worker pool would achieve on exactly those chunks. This is the same
// measure-small/model-large methodology as the simhpc scale experiments —
// it models intra-kernel scaling on hosts with fewer cores than the target
// width, with per-chunk costs that are measured, not synthesized.
//
// Storage is two flat slices per kernel name — all chunk durations
// back-to-back, plus the chunk count of every job — rather than a slice
// header and duration array per job. A production-resolution capture holds
// O(10⁸–10⁹) chunks across O(10⁷) jobs; the flat layout keeps that as a
// handful of pointer-free allocations the garbage collector never scans,
// instead of tens of millions of small objects whose mark cost alone would
// distort the non-kernel wall time the experiment reports.
type Profile struct {
	mu   sync.Mutex
	logs map[string]*kernelLog
}

type kernelLog struct {
	durs    []time.Duration // all jobs' chunks, concatenated in job order
	jobLens []int32         // chunks per job; job i owns the next jobLens[i] durs
}

var profile atomic.Pointer[Profile]

// StartProfile begins serial per-chunk capture on this process's kernels.
// Not for production paths: kernels run serially while active.
func StartProfile() *Profile {
	p := &Profile{logs: make(map[string]*kernelLog)}
	profile.Store(p)
	return p
}

// StopProfile ends capture.
func StopProfile() { profile.Store(nil) }

func (p *Profile) add(name string, durs []time.Duration) {
	p.mu.Lock()
	kl := p.logs[name]
	if kl == nil {
		kl = &kernelLog{}
		p.logs[name] = kl
	}
	kl.durs = append(kl.durs, durs...)
	kl.jobLens = append(kl.jobLens, int32(len(durs)))
	p.mu.Unlock()
}

// Jobs returns the number of captured parallel regions.
func (p *Profile) Jobs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, kl := range p.logs {
		n += len(kl.jobLens)
	}
	return n
}

// Chunks returns the total number of captured chunks.
func (p *Profile) Chunks() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, kl := range p.logs {
		n += len(kl.durs)
	}
	return n
}

// SerialSeconds returns the summed duration of every captured chunk — the
// kernel time a 1-thread run spends inside parallel regions.
func (p *Profile) SerialSeconds() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var s time.Duration
	for _, kl := range p.logs {
		for _, d := range kl.durs {
			s += d
		}
	}
	return s.Seconds()
}

// Replay returns the modeled kernel-region time at width w: for each
// captured job, chunks are assigned longest-processing-time-first to the
// least-loaded of w workers (the greedy schedule a work-conserving pool
// converges to), and the job costs its makespan. Job-to-job ordering is
// serial, as in the real pipeline where regions are separated by serial
// phases — so the total is a sum over jobs and the order in which kernels
// are visited cannot change it. w <= 1 returns SerialSeconds.
func (p *Profile) Replay(w int) float64 {
	if w <= 1 {
		return p.SerialSeconds()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var total time.Duration
	load := make([]time.Duration, w)
	var scratch []time.Duration
	for _, kl := range p.logs {
		off := 0
		for _, jl := range kl.jobLens {
			chunks := kl.durs[off : off+int(jl)]
			off += int(jl)
			scratch = append(scratch[:0], chunks...)
			sort.Slice(scratch, func(a, b int) bool { return scratch[a] > scratch[b] })
			for i := range load {
				load[i] = 0
			}
			for _, d := range scratch {
				mi := 0
				for i := 1; i < w; i++ {
					if load[i] < load[mi] {
						mi = i
					}
				}
				load[mi] += d
			}
			makespan := load[0]
			for _, l := range load[1:] {
				if l > makespan {
					makespan = l
				}
			}
			total += makespan
		}
	}
	return total.Seconds()
}

// ChunksByKernel returns the captured chunk count per kernel name. A kernel
// whose per-chunk times are below the timer or reporting resolution still
// shows its chunks here — the coverage check the benchmark harness uses to
// prove every wired kernel actually executed.
func (p *Profile) ChunksByKernel() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int, len(p.logs))
	for name, kl := range p.logs {
		out[name] = len(kl.durs)
	}
	return out
}

// ByKernel returns the captured serial seconds per kernel name, for the
// experiment's breakdown table.
func (p *Profile) ByKernel() map[string]float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]float64, len(p.logs))
	for name, kl := range p.logs {
		var s time.Duration
		for _, d := range kl.durs {
			s += d
		}
		out[name] = s.Seconds()
	}
	return out
}
