package par

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Profile captures per-chunk kernel timings for the modeled-scaling
// experiment (EXPERIMENTS.md "Kernel scaling"). While capture is active,
// every For/ReduceSum runs its chunks serially on the caller, timing each
// chunk individually; Replay then computes the makespan a work-conserving
// w-worker pool would achieve on exactly those chunks. This is the same
// measure-small/model-large methodology as the simhpc scale experiments —
// it models intra-kernel scaling on hosts with fewer cores than the target
// width, with per-chunk costs that are measured, not synthesized.
type Profile struct {
	mu   sync.Mutex
	jobs []job
}

type job struct {
	name   string
	chunks []time.Duration
}

var profile atomic.Pointer[Profile]

// StartProfile begins serial per-chunk capture on this process's kernels.
// Not for production paths: kernels run serially while active.
func StartProfile() *Profile {
	p := &Profile{}
	profile.Store(p)
	return p
}

// StopProfile ends capture.
func StopProfile() { profile.Store(nil) }

func (p *Profile) add(name string, durs []time.Duration) {
	p.mu.Lock()
	p.jobs = append(p.jobs, job{name: name, chunks: durs})
	p.mu.Unlock()
}

// Jobs returns the number of captured parallel regions.
func (p *Profile) Jobs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.jobs)
}

// Chunks returns the total number of captured chunks.
func (p *Profile) Chunks() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, j := range p.jobs {
		n += len(j.chunks)
	}
	return n
}

// SerialSeconds returns the summed duration of every captured chunk — the
// kernel time a 1-thread run spends inside parallel regions.
func (p *Profile) SerialSeconds() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var s time.Duration
	for _, j := range p.jobs {
		for _, d := range j.chunks {
			s += d
		}
	}
	return s.Seconds()
}

// Replay returns the modeled kernel-region time at width w: for each
// captured job, chunks are assigned longest-processing-time-first to the
// least-loaded of w workers (the greedy schedule a work-conserving pool
// converges to), and the job costs its makespan. Job-to-job ordering is
// serial, as in the real pipeline where regions are separated by serial
// phases. w <= 1 returns SerialSeconds.
func (p *Profile) Replay(w int) float64 {
	if w <= 1 {
		return p.SerialSeconds()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var total time.Duration
	load := make([]time.Duration, w)
	for _, j := range p.jobs {
		chunks := append([]time.Duration(nil), j.chunks...)
		sort.Slice(chunks, func(a, b int) bool { return chunks[a] > chunks[b] })
		for i := range load {
			load[i] = 0
		}
		for _, d := range chunks {
			mi := 0
			for i := 1; i < w; i++ {
				if load[i] < load[mi] {
					mi = i
				}
			}
			load[mi] += d
		}
		makespan := load[0]
		for _, l := range load[1:] {
			if l > makespan {
				makespan = l
			}
		}
		total += makespan
	}
	return total.Seconds()
}

// ByKernel returns the captured serial seconds per kernel name, for the
// experiment's breakdown table.
func (p *Profile) ByKernel() map[string]float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]float64)
	for _, j := range p.jobs {
		var s time.Duration
		for _, d := range j.chunks {
			s += d
		}
		out[j.name] += s.Seconds()
	}
	return out
}
