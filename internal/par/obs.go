package par

import (
	"sync"
	"sync/atomic"

	"qframan/internal/obs"
)

// obsHandles caches the pool's pre-resolved instruments so hot kernels never
// take the registry's map lock (same discipline as obs.Hot).
type obsHandles struct {
	jobs   *obs.Counter   // parallel jobs dispatched to the pool
	inline *obs.Counter   // kernel calls that ran inline (1 chunk / no tokens)
	busy   *obs.Gauge     // helper workers currently running kernel chunks
	width  *obs.Histogram // workers per parallel job (helpers + caller)

	mu     sync.Mutex
	shards map[string]*obs.Histogram // per-kernel drain durations
	reg    *obs.Registry
}

var obsState atomic.Pointer[obsHandles]

// SetObs points the pool's metrics at a registry; nil detaches. Counters:
// par_jobs_total, par_inline_total; gauge: par_workers_busy; histograms:
// par_job_width and par_shard_<kernel>_seconds (per-worker drain time, one
// observation per participating worker per job).
func SetObs(r *obs.Registry) {
	if r == nil {
		obsState.Store(nil)
		return
	}
	obsState.Store(&obsHandles{
		jobs:   r.Counter(obs.MetricParJobs),
		inline: r.Counter(obs.MetricParInline),
		busy:   r.Gauge(obs.MetricParWorkersBusy),
		width:  r.Histogram(obs.MetricParJobWidth, obs.CountBuckets),
		shards: make(map[string]*obs.Histogram),
		reg:    r,
	})
}

func (o *obsHandles) shard(name string) *obs.Histogram {
	o.mu.Lock()
	defer o.mu.Unlock()
	h := o.shards[name]
	if h == nil {
		h = o.reg.Histogram(obs.ParShardMetricName(name), obs.DurationBuckets)
		o.shards[name] = h
	}
	return h
}

func obsInline() {
	if o := obsState.Load(); o != nil {
		o.inline.Inc()
	}
}
