package par

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"qframan/internal/obs"
)

// withBudget runs f under a temporary kernel-thread budget.
func withBudget(t *testing.T, n int, f func()) {
	t.Helper()
	old := Budget()
	SetBudget(n)
	defer SetBudget(old)
	f()
}

func TestChunkLayoutPureAndCovering(t *testing.T) {
	for _, n := range []int{1, 2, 7, 63, 64, 65, 100, 4096, 4097, 1 << 20} {
		for _, mc := range []int{1, 8, 4096} {
			size, count := chunkLayout(n, mc)
			if size < mc || count > maxChunks {
				t.Fatalf("n=%d mc=%d: size=%d count=%d violates bounds", n, mc, size, count)
			}
			if (count-1)*size >= n || count*size < n {
				t.Fatalf("n=%d mc=%d: chunks don't cover exactly (size=%d count=%d)", n, mc, size, count)
			}
			// Purity: same inputs, same layout — trivially true for a pure
			// function, but guards against anyone adding width dependence.
			s2, c2 := chunkLayout(n, mc)
			if s2 != size || c2 != count {
				t.Fatalf("chunkLayout not deterministic for n=%d", n)
			}
		}
	}
	if s, c := chunkLayout(0, 8); s != 0 || c != 0 {
		t.Fatalf("n=0 should have no chunks")
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8} {
		withBudget(t, w, func() {
			const n = 10_001
			hits := make([]int32, n)
			For("test", n, 16, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					hits[i]++
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("width %d: index %d visited %d times", w, i, h)
				}
			}
		})
	}
}

// TestReduceSumBitIdenticalAcrossWidths is the core determinism property:
// the same reduction at widths 1, 3, and NumCPU produces bit-identical
// float64 results.
func TestReduceSumBitIdenticalAcrossWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 300_000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	widths := []int{1, 3, runtime.NumCPU()}
	var want, wantSq float64
	for wi, w := range widths {
		withBudget(t, w, func() {
			got := Dot(a, b)
			gotSq := SumSq(a)
			if wi == 0 {
				want, wantSq = got, gotSq
				return
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("Dot at width %d: %x != %x (width 1)", w, math.Float64bits(got), math.Float64bits(want))
			}
			if math.Float64bits(gotSq) != math.Float64bits(wantSq) {
				t.Fatalf("SumSq at width %d: %x != %x (width 1)", w, math.Float64bits(gotSq), math.Float64bits(wantSq))
			}
		})
	}
}

func TestSmallReductionMatchesSerial(t *testing.T) {
	// Below minChunk the reduction must be the plain serial loop —
	// bit-identical to the pre-par code path.
	a := []float64{0.1, 0.2, 0.3, -0.4, 1e-17, 1e17}
	var serial float64
	for _, v := range a {
		serial += v * v
	}
	if got := SumSq(a); math.Float64bits(got) != math.Float64bits(serial) {
		t.Fatalf("small SumSq diverges from serial: %v != %v", got, serial)
	}
}

func TestReserveNarrowsKernels(t *testing.T) {
	withBudget(t, 4, func() {
		release := Reserve(3) // 3 helper tokens exist; reserve them all
		var maxConc int32
		var mu sync.Mutex
		conc := 0
		For("test", 1<<16, 1, func(lo, hi int) {
			mu.Lock()
			conc++
			if int32(conc) > maxConc {
				maxConc = int32(conc)
			}
			mu.Unlock()
			time.Sleep(100 * time.Microsecond)
			mu.Lock()
			conc--
			mu.Unlock()
		})
		if maxConc > 1 {
			t.Fatalf("kernel used %d workers while all tokens reserved", maxConc)
		}
		release()
		release() // double release must not over-credit
		if got := Budget(); got != 4 {
			t.Fatalf("budget drifted to %d", got)
		}
	})
}

// TestPoolStress hammers nested For/ReduceSum from many goroutines; run
// under -race this is the pool's data-race gate.
func TestPoolStress(t *testing.T) {
	withBudget(t, 8, func() {
		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				a := make([]float64, 20_000)
				for i := range a {
					a[i] = rng.Float64()
				}
				for iter := 0; iter < 30; iter++ {
					out := make([]float64, len(a))
					For("stress", len(a), 64, func(lo, hi int) {
						for i := lo; i < hi; i++ {
							out[i] = a[i] * 2
						}
						// Nested reduction inside a For body must not
						// deadlock (TryAcquire never blocks).
						_ = ReduceSum("stress_inner", 128, 16, func(l, h int) float64 {
							return float64(h - l)
						})
					})
					s := SumSq(out)
					if s <= 0 {
						panic("impossible")
					}
				}
			}(int64(g))
		}
		wg.Wait()
	})
}

func TestObsCounters(t *testing.T) {
	r := obs.NewRegistry()
	SetObs(r)
	defer SetObs(nil)
	withBudget(t, 4, func() {
		For("obs_kernel", 1<<16, 1, func(lo, hi int) {})
		_ = Dot(make([]float64, 3), make([]float64, 3)) // inline path
	})
	s := r.Snapshot()
	if s.Counters[obs.MetricParJobs] == 0 && s.Counters[obs.MetricParInline] == 0 {
		t.Fatalf("no pool activity recorded: %+v", s.Counters)
	}
	if s.Gauges[obs.MetricParWorkersBusy] != 0 {
		t.Fatalf("busy gauge should return to 0, got %d", s.Gauges[obs.MetricParWorkersBusy])
	}
}

func TestProfileReplay(t *testing.T) {
	p := StartProfile()
	defer StopProfile()
	work := make([]float64, 1<<15)
	For("prof_kernel", len(work), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			work[i] = math.Sqrt(float64(i))
		}
	})
	if p.Jobs() == 0 || p.Chunks() < 2 {
		t.Fatalf("profile captured jobs=%d chunks=%d", p.Jobs(), p.Chunks())
	}
	serial := p.SerialSeconds()
	w4 := p.Replay(4)
	if serial <= 0 || w4 <= 0 {
		t.Fatalf("non-positive modeled times: serial=%v w4=%v", serial, w4)
	}
	if w4 > serial*1.0000001 {
		t.Fatalf("replay at width 4 slower than serial: %v > %v", w4, serial)
	}
	if p.Replay(1) != serial {
		t.Fatalf("replay(1) must equal serial")
	}
	if len(p.ByKernel()) != 1 {
		t.Fatalf("expected one kernel in breakdown, got %v", p.ByKernel())
	}
}

func TestSetBudgetRestoresTokens(t *testing.T) {
	old := Budget()
	SetBudget(2)
	SetBudget(16)
	SetBudget(old)
	if Budget() != old {
		t.Fatalf("budget not restored")
	}
	// All tokens must be back: a wide For should be able to go parallel.
	withBudget(t, 4, func() {
		var seen sync.Map
		For("budget_check", 1<<18, 1, func(lo, hi int) {
			seen.Store(lo, true)
			time.Sleep(10 * time.Microsecond)
		})
	})
}
