package par

import (
	"sync"
	"sync/atomic"
)

// Elastic is the cross-fragment batch aggregator of the paper's elastic
// workload offloading (§V-C): when several DFPT cycles run concurrently in
// one process, each emits streams of small same-shape workloads (grid-batch
// GEMMs, here generic items T keyed by a shape class K). Submitting through
// an Elastic merges the streams opportunistically: the first submitter of a
// key becomes that key's drainer and flushes whatever has accumulated — its
// own items plus anything concurrent submitters appended while a previous
// flush was running. Under concurrency, batches grow (more work per
// accelerator launch); with a single submitter, every submission flushes
// immediately and alone, so aggregation adds no latency and no timers.
//
// Determinism: items must be mutually independent — each writes only its own
// outputs — so how submissions coalesce into flushes cannot affect any
// result bit. The aggregator guarantees (a) every submitted item is flushed
// exactly once, (b) Ticket.Wait returns only after the submission's items
// have been flushed, and (c) per-key flushes never overlap. It guarantees
// nothing about which flush an item lands in: batch composition is timing-
// dependent by design, which is why the independence requirement is load-
// bearing (and why the batching on/off bit-identity tests exist).
type Elastic[K comparable, T any] struct {
	flush func(key K, items []T)

	mu      sync.Mutex
	pending map[K]*elasticQueue[T]

	stats ElasticStats
}

// elasticQueue is one key's accumulation state. draining marks that some
// submitter is acting as the key's drainer; waiters holds the completion
// channels of submissions not yet flushed.
type elasticQueue[T any] struct {
	items    []T
	waiters  []chan struct{}
	draining bool
}

// ElasticStats counts aggregator activity (atomic: read with Stats).
type ElasticStats struct {
	Submits int64 // Submit calls
	Items   int64 // items submitted
	Flushes int64 // flush invocations
	Merged  int64 // flushes that combined ≥2 submissions
}

// NewElastic builds an aggregator around a flush function. flush is called
// with all items accumulated for one key since the previous flush; calls for
// the same key never overlap, calls for different keys may.
func NewElastic[K comparable, T any](flush func(key K, items []T)) *Elastic[K, T] {
	return &Elastic[K, T]{flush: flush, pending: map[K]*elasticQueue[T]{}}
}

// Ticket is a handle for one submission; Wait blocks until its items have
// been flushed.
type Ticket struct{ done <-chan struct{} }

// Wait blocks until the submission's items have been executed. A submitter
// that became the drainer returns immediately (it already did the work).
func (t Ticket) Wait() {
	if t.done != nil {
		<-t.done
	}
}

// Submit hands items for key to the aggregator. If no drainer is active for
// the key, the calling goroutine drains — flushing its own items plus any
// that accumulate meanwhile — before returning; its Ticket is then already
// complete. Otherwise the items are queued for the active drainer and the
// Ticket completes when that drainer flushes them. Empty submissions return
// an already-complete Ticket.
func (e *Elastic[K, T]) Submit(key K, items []T) Ticket {
	if len(items) == 0 {
		return Ticket{}
	}
	atomic.AddInt64(&e.stats.Submits, 1)
	atomic.AddInt64(&e.stats.Items, int64(len(items)))

	e.mu.Lock()
	q := e.pending[key]
	if q == nil {
		q = &elasticQueue[T]{}
		e.pending[key] = q
	}
	q.items = append(q.items, items...)
	if q.draining {
		// An active drainer will pick these up on its next pass.
		done := make(chan struct{})
		q.waiters = append(q.waiters, done)
		e.mu.Unlock()
		return Ticket{done: done}
	}
	q.draining = true
	e.mu.Unlock()
	e.drain(key, q)
	return Ticket{}
}

// drain flushes the key's queue until it is empty, then steps down. The
// drainer re-checks under the lock after every flush, so items appended
// during a flush are merged into the next one rather than waiting for their
// own submitter to get scheduled.
func (e *Elastic[K, T]) drain(key K, q *elasticQueue[T]) {
	own := true // the first pass carries the drainer's own submission
	for {
		e.mu.Lock()
		items := q.items
		waiters := q.waiters
		q.items = nil
		q.waiters = nil
		if len(items) == 0 {
			q.draining = false
			delete(e.pending, key)
			e.mu.Unlock()
			return
		}
		e.mu.Unlock()

		subs := len(waiters)
		if own {
			subs++
			own = false
		}
		atomic.AddInt64(&e.stats.Flushes, 1)
		if subs >= 2 {
			atomic.AddInt64(&e.stats.Merged, 1)
		}
		e.flush(key, items)
		for _, w := range waiters {
			close(w)
		}
	}
}

// Stats returns a snapshot of the aggregator counters.
func (e *Elastic[K, T]) Stats() ElasticStats {
	return ElasticStats{
		Submits: atomic.LoadInt64(&e.stats.Submits),
		Items:   atomic.LoadInt64(&e.stats.Items),
		Flushes: atomic.LoadInt64(&e.stats.Flushes),
		Merged:  atomic.LoadInt64(&e.stats.Merged),
	}
}
