package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestElasticSingleSubmitterFlushesInline checks the no-concurrency fast
// path: a lone submission flushes immediately on the calling goroutine and
// its ticket is already complete.
func TestElasticSingleSubmitterFlushesInline(t *testing.T) {
	var flushed [][]int
	e := NewElastic[string, int](func(key string, items []int) {
		flushed = append(flushed, append([]int(nil), items...))
	})
	tk := e.Submit("a", []int{1, 2, 3})
	tk.Wait() // must not block: the submitter drained
	if len(flushed) != 1 || len(flushed[0]) != 3 {
		t.Fatalf("want one flush of 3 items, got %v", flushed)
	}
	s := e.Stats()
	if s.Submits != 1 || s.Items != 3 || s.Flushes != 1 || s.Merged != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestElasticEmptySubmission checks that empty submissions are free: no
// flush, ticket complete.
func TestElasticEmptySubmission(t *testing.T) {
	e := NewElastic[int, int](func(int, []int) { t.Fatal("flush called for empty submission") })
	e.Submit(7, nil).Wait()
	if s := e.Stats(); s.Submits != 0 || s.Flushes != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestElasticEveryItemFlushedExactlyOnce hammers one key from many
// goroutines and checks conservation: every item appears in exactly one
// flush, and per-key flushes never overlap.
func TestElasticEveryItemFlushedExactlyOnce(t *testing.T) {
	const goroutines = 16
	const perSub = 32
	var mu sync.Mutex
	seen := map[int]int{}
	var inFlush atomic.Int64
	e := NewElastic[string, int](func(key string, items []int) {
		if inFlush.Add(1) != 1 {
			t.Error("overlapping flushes for one key")
		}
		mu.Lock()
		for _, it := range items {
			seen[it]++
		}
		mu.Unlock()
		inFlush.Add(-1)
	})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			items := make([]int, perSub)
			for i := range items {
				items[i] = g*perSub + i
			}
			e.Submit("k", items).Wait()
		}(g)
	}
	wg.Wait()
	if len(seen) != goroutines*perSub {
		t.Fatalf("saw %d distinct items, want %d", len(seen), goroutines*perSub)
	}
	for it, n := range seen {
		if n != 1 {
			t.Fatalf("item %d flushed %d times", it, n)
		}
	}
	s := e.Stats()
	if s.Items != goroutines*perSub {
		t.Fatalf("stats.Items = %d, want %d", s.Items, goroutines*perSub)
	}
	if s.Flushes > s.Submits {
		t.Fatalf("more flushes (%d) than submissions (%d)", s.Flushes, s.Submits)
	}
}

// TestElasticMergesConcurrentSubmissions forces the merge path
// deterministically: the first flush blocks on a gate while two more
// submissions queue behind it, then must come out together in one flush.
func TestElasticMergesConcurrentSubmissions(t *testing.T) {
	firstEntered := make(chan struct{})
	release := make(chan struct{})
	var mu sync.Mutex
	var flushSizes []int
	first := true
	e := NewElastic[string, int](func(key string, items []int) {
		mu.Lock()
		flushSizes = append(flushSizes, len(items))
		wasFirst := first
		first = false
		mu.Unlock()
		if wasFirst {
			close(firstEntered)
			<-release
		}
	})

	done := make(chan struct{})
	go func() {
		e.Submit("k", []int{0}).Wait()
		close(done)
	}()
	<-firstEntered // drainer is inside flush #1

	// Queue two submissions behind the blocked drainer.
	var wg sync.WaitGroup
	queued := make(chan struct{}, 2)
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			queued <- struct{}{}
			e.Submit("k", []int{i}).Wait()
		}(i)
	}
	<-queued
	<-queued
	// Give both Submit calls a chance to append before releasing. The
	// waiters signal before Submit, so poll the stats until both queued.
	for {
		if s := e.Stats(); s.Submits == 3 {
			break
		}
	}
	close(release)
	wg.Wait()
	<-done

	mu.Lock()
	defer mu.Unlock()
	if len(flushSizes) != 2 || flushSizes[0] != 1 || flushSizes[1] != 2 {
		t.Fatalf("flush sizes = %v, want [1 2]", flushSizes)
	}
	if s := e.Stats(); s.Merged != 1 {
		t.Fatalf("stats.Merged = %d, want 1", s.Merged)
	}
}

// TestElasticKeysIndependent checks that different keys flush separately and
// never mix items.
func TestElasticKeysIndependent(t *testing.T) {
	var mu sync.Mutex
	byKey := map[string][]int{}
	e := NewElastic[string, int](func(key string, items []int) {
		mu.Lock()
		byKey[key] = append(byKey[key], items...)
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := "even"
			if g%2 == 1 {
				key = "odd"
			}
			e.Submit(key, []int{g}).Wait()
		}(g)
	}
	wg.Wait()
	if len(byKey["even"]) != 4 || len(byKey["odd"]) != 4 {
		t.Fatalf("byKey = %v", byKey)
	}
	for _, it := range byKey["even"] {
		if it%2 != 0 {
			t.Fatalf("odd item %d under key even", it)
		}
	}
}
