package raman

import (
	"math"
	"testing"

	"qframan/internal/fragment"
	"qframan/internal/hessian"
	"qframan/internal/structure"
)

// dimerGlobal runs the full QF pipeline on a single water dimer and returns
// the assembled global quantities.
func dimerGlobal(t *testing.T) *hessian.Global {
	t.Helper()
	sys := structure.BuildWaterDimerSystem(1)
	dec, err := fragment.Decompose(sys, fragment.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := hessian.DefaultJobOptions()
	datas := make([]*hessian.FragmentData, len(dec.Fragments))
	for i := range dec.Fragments {
		datas[i], err = hessian.ComputeFragment(&dec.Fragments[i], opt)
		if err != nil {
			t.Fatal(err)
		}
	}
	g, err := hessian.Assemble(dec, sys.Masses(), datas, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDenseModesWaterDimer(t *testing.T) {
	g := dimerGlobal(t)
	modes, err := DenseModes(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(modes.Wavenumbers) != 18 {
		t.Fatalf("modes = %d, want 18", len(modes.Wavenumbers))
	}
	// O–H stretch band present near 3600–3800.
	found := false
	for _, w := range modes.Wavenumbers {
		if w > 3400 && w < 3900 {
			found = true
		}
	}
	if !found {
		t.Error("no O–H stretch modes found")
	}
	// Activities non-negative.
	for p, a := range modes.Activity {
		if a < 0 {
			t.Fatalf("negative activity %g at mode %d", a, p)
		}
	}
}

func TestLanczosSpectrumMatchesDense(t *testing.T) {
	g := dimerGlobal(t)
	opt := DefaultOptions()
	opt.FreqMin, opt.FreqMax, opt.FreqStep = 200, 4000, 5
	opt.Sigma = 20
	opt.LanczosK = 18 * 2 // ≥ dim: exact subspace

	dense, err := DenseSpectrum(g, opt, 50)
	if err != nil {
		t.Fatal(err)
	}
	lan, err := LanczosSpectrum(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(dense.Freq) != len(lan.Freq) {
		t.Fatal("axis mismatch")
	}
	if sim := CosineSimilarity(dense, lan); sim < 0.995 {
		t.Fatalf("dense vs Lanczos cosine similarity %v", sim)
	}
}

func TestLanczosSpectrumSmallK(t *testing.T) {
	// Even with k far below the dimension the GAGQ spectrum should track
	// the dense result closely.
	g := dimerGlobal(t)
	opt := DefaultOptions()
	opt.FreqMin, opt.FreqMax, opt.FreqStep = 200, 4000, 5
	opt.Sigma = 40
	opt.LanczosK = 8

	dense, err := DenseSpectrum(g, opt, 50)
	if err != nil {
		t.Fatal(err)
	}
	lan, err := LanczosSpectrum(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sim := CosineSimilarity(dense, lan); sim < 0.9 {
		t.Fatalf("small-k cosine similarity %v", sim)
	}
}

func TestNormalize(t *testing.T) {
	s := &Spectrum{Freq: []float64{1, 2, 3}, Intensity: []float64{2, 8, 4}}
	s.Normalize()
	if s.Intensity[1] != 1 || s.Intensity[0] != 0.25 {
		t.Fatalf("normalized intensities %v", s.Intensity)
	}
	z := &Spectrum{Freq: []float64{1}, Intensity: []float64{0}}
	z.Normalize() // must not panic or divide by zero
	if z.Intensity[0] != 0 {
		t.Fatal("zero spectrum changed")
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := &Spectrum{Intensity: []float64{1, 0, 0}}
	b := &Spectrum{Intensity: []float64{1, 0, 0}}
	c := &Spectrum{Intensity: []float64{0, 1, 0}}
	if CosineSimilarity(a, b) != 1 {
		t.Fatal("identical spectra similarity != 1")
	}
	if CosineSimilarity(a, c) != 0 {
		t.Fatal("orthogonal spectra similarity != 0")
	}
	z := &Spectrum{Intensity: []float64{0, 0, 0}}
	if CosineSimilarity(a, z) != 0 {
		t.Fatal("zero spectrum similarity != 0")
	}
}

func TestLanczosSpectrumRequiresAlpha(t *testing.T) {
	g := &hessian.Global{H: hessian.NewBuilder(3).Build(), Masses: []float64{1}}
	if _, err := LanczosSpectrum(g, DefaultOptions()); err == nil {
		t.Fatal("accepted missing polarizability derivatives")
	}
}

func TestSpectrumAxis(t *testing.T) {
	opt := Options{FreqMin: 100, FreqMax: 200, FreqStep: 50, Sigma: 5, LanczosK: 4}
	xs := opt.axis()
	want := []float64{100, 150, 200}
	if len(xs) != len(want) {
		t.Fatalf("axis %v", xs)
	}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-12 {
			t.Fatalf("axis %v", xs)
		}
	}
}

func TestIRSpectrumWaterDimer(t *testing.T) {
	g := dimerGlobal(t)
	opt := DefaultOptions()
	opt.FreqMin, opt.FreqMax, opt.FreqStep = 200, 4000, 5
	opt.Sigma = 20
	opt.LanczosK = 36

	dense, err := DenseIRSpectrum(g, opt, 50)
	if err != nil {
		t.Fatal(err)
	}
	lan, err := LanczosIRSpectrum(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sim := CosineSimilarity(dense, lan); sim < 0.99 {
		t.Fatalf("dense vs Lanczos IR cosine similarity %v", sim)
	}
	// Water's bend (~1650) is strongly IR active: require real intensity
	// there relative to the maximum.
	dense.Normalize()
	var bend float64
	for i, f := range dense.Freq {
		if f > 1500 && f < 1800 && dense.Intensity[i] > bend {
			bend = dense.Intensity[i]
		}
	}
	if bend < 0.05 {
		t.Fatalf("bend region IR intensity %v — water bend should be IR active", bend)
	}
}

func TestIRRequiresDipoleDerivatives(t *testing.T) {
	g := &hessian.Global{H: hessian.NewBuilder(3).Build(), Masses: []float64{1}}
	if _, err := DenseIRSpectrum(g, DefaultOptions(), 0); err == nil {
		t.Fatal("accepted missing dipole derivatives")
	}
	if _, err := LanczosIRSpectrum(g, DefaultOptions()); err == nil {
		t.Fatal("accepted missing dipole derivatives")
	}
}

func TestSpectraNonNegative(t *testing.T) {
	g := dimerGlobal(t)
	opt := DefaultOptions()
	opt.FreqMin, opt.FreqMax, opt.FreqStep = 0, 4000, 7
	opt.Sigma = 15
	opt.LanczosK = 30
	for name, spec := range map[string]func() (*Spectrum, error){
		"raman-lanczos": func() (*Spectrum, error) { return LanczosSpectrum(g, opt) },
		"raman-dense":   func() (*Spectrum, error) { return DenseSpectrum(g, opt, 0) },
		"ir-lanczos":    func() (*Spectrum, error) { return LanczosIRSpectrum(g, opt) },
		"ir-dense":      func() (*Spectrum, error) { return DenseIRSpectrum(g, opt, 0) },
	} {
		s, err := spec()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, v := range s.Intensity {
			// GAGQ weights are squares; intensities must never go negative
			// beyond tiny numerical noise.
			if v < -1e-9 {
				t.Fatalf("%s: negative intensity %g at %v cm⁻¹", name, v, s.Freq[i])
			}
		}
	}
}
