// Package raman turns the assembled mass-weighted Hessian and
// polarizability-derivative vectors into Raman spectra. Two paths exist:
//
//   - Dense: diagonalize the Hessian, apply the orientation-averaged
//     intensity formula (paper Eq. 4) mode by mode. Exact, O(N³): the
//     validation reference for small systems.
//   - Lanczos: the paper's large-system solver (Eq. 5): the spectrum is a
//     combination of spectral densities dᵀδ_σ(ω−H)d evaluated with
//     Lanczos+GAGQ, one per polarizability component plus one for the trace
//     term — seven k-step Lanczos runs regardless of system size.
package raman

import (
	"fmt"
	"math"

	"qframan/internal/constants"
	"qframan/internal/hessian"
	"qframan/internal/lanczos"
	"qframan/internal/linalg"
)

// Options controls spectrum generation.
type Options struct {
	// FreqMin/FreqMax/FreqStep define the wavenumber axis in cm⁻¹.
	FreqMin, FreqMax, FreqStep float64
	// Sigma is the Gaussian smearing in cm⁻¹ (the paper uses 5 for the
	// gas-phase protein and 20 for solvated systems).
	Sigma float64
	// LanczosK is the number of Lanczos steps for the large-system path.
	LanczosK int
	// UseGAGQ selects the generalized averaged Gauss rule (recommended).
	UseGAGQ bool
	// Reorthogonalize controls the Lanczos iteration.
	Reorthogonalize bool
}

// DefaultOptions covers the full vibrational range with the paper's
// gas-phase smearing.
func DefaultOptions() Options {
	return Options{
		FreqMin: 0, FreqMax: 4000, FreqStep: 2,
		Sigma:           5,
		LanczosK:        200,
		UseGAGQ:         true,
		Reorthogonalize: true,
	}
}

// Spectrum is a sampled Raman spectrum.
type Spectrum struct {
	Freq      []float64 // cm⁻¹
	Intensity []float64 // arbitrary units (Eq. 4 prefactors included)
}

// Normalize scales the spectrum so its maximum is 1 (no-op for an all-zero
// spectrum).
func (s *Spectrum) Normalize() {
	var max float64
	for _, v := range s.Intensity {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return
	}
	for i := range s.Intensity {
		s.Intensity[i] /= max
	}
}

// CosineSimilarity returns the cosine of the angle between two spectra
// sampled on the same axis — the comparison metric of the validation ladder.
func CosineSimilarity(a, b *Spectrum) float64 {
	if len(a.Intensity) != len(b.Intensity) {
		panic("raman: spectra sampled on different axes")
	}
	na, nb := linalg.Norm2(a.Intensity), linalg.Norm2(b.Intensity)
	if na == 0 || nb == 0 {
		return 0
	}
	return linalg.Dot(a.Intensity, b.Intensity) / (na * nb)
}

func (o *Options) axis() []float64 {
	var xs []float64
	for x := o.FreqMin; x <= o.FreqMax+1e-9; x += o.FreqStep {
		xs = append(xs, x)
	}
	return xs
}

// eqFourWeights returns the per-component weights of the paper's Eq. 4 when
// expanded over the six independent tensor components:
// R ∝ 3/2·(Σ_i a_ii)² + 21/2·Σ_ij a_ij², the off-diagonal components
// appearing twice in the double sum.
var eqFourComponentWeights = [6]float64{10.5, 10.5, 10.5, 21, 21, 21}

const eqFourTraceWeight = 1.5

// Modes holds a dense normal-mode analysis.
type Modes struct {
	// Wavenumbers in cm⁻¹ (signed: imaginary modes negative), ascending.
	Wavenumbers []float64
	// Activity is the Eq. 4 Raman activity per mode.
	Activity []float64
}

// DenseModes diagonalizes the mass-weighted Hessian (must be small enough
// to densify) and computes per-mode Raman activities.
func DenseModes(g *hessian.Global) (*Modes, error) {
	n := g.H.Dim()
	dense := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for k := g.H.RowPtr[i]; k < g.H.RowPtr[i+1]; k++ {
			dense.Set(i, int(g.H.Col[k]), g.H.Val[k])
		}
	}
	dense.Symmetrize()
	vals, vecs := linalg.EigSym(dense)
	m := &Modes{
		Wavenumbers: make([]float64, n),
		Activity:    make([]float64, n),
	}
	for p := 0; p < n; p++ {
		m.Wavenumbers[p] = constants.WavenumberFromEigenvalue(vals[p])
		var a [6]float64
		for c := 0; c < 6; c++ {
			if g.DAlpha[c] == nil {
				continue
			}
			for i := 0; i < n; i++ {
				a[c] += vecs.At(i, p) * g.DAlpha[c][i]
			}
		}
		tr := a[0] + a[1] + a[2]
		act := eqFourTraceWeight * tr * tr
		for c := 0; c < 6; c++ {
			act += eqFourComponentWeights[c] * a[c] * a[c]
		}
		m.Activity[p] = act
	}
	return m, nil
}

// DenseSpectrum produces the exact spectrum from a dense mode analysis,
// dropping rigid-body modes below rigidCutoff cm⁻¹ (in absolute value).
func DenseSpectrum(g *hessian.Global, opt Options, rigidCutoff float64) (*Spectrum, error) {
	modes, err := DenseModes(g)
	if err != nil {
		return nil, err
	}
	xs := opt.axis()
	out := &Spectrum{Freq: xs, Intensity: make([]float64, len(xs))}
	pref := 1 / (math.Sqrt(2*math.Pi) * opt.Sigma)
	for p, w := range modes.Wavenumbers {
		if math.Abs(w) < rigidCutoff {
			continue
		}
		for xi, x := range xs {
			dx := (x - w) / opt.Sigma
			if dx > 8 || dx < -8 {
				continue
			}
			out.Intensity[xi] += modes.Activity[p] * pref * math.Exp(-0.5*dx*dx)
		}
	}
	return out, nil
}

// LanczosSpectrum produces the spectrum with the paper's Eq. 5 solver: seven
// spectral densities (six components + trace) evaluated by Lanczos+GAGQ on
// the sparse mass-weighted Hessian. Rigid-body translations are projected
// out of every start vector.
func LanczosSpectrum(g *hessian.Global, opt Options) (*Spectrum, error) {
	if g.DAlpha[0] == nil {
		return nil, fmt.Errorf("raman: polarizability derivatives missing")
	}
	n := g.H.Dim()
	xs := opt.axis()
	out := &Spectrum{Freq: xs, Intensity: make([]float64, len(xs))}
	trans := translationVectors(g.Masses)

	lopt := lanczos.Options{K: opt.LanczosK, Reorthogonalize: opt.Reorthogonalize}
	addDensity := func(d []float64, weight float64) error {
		dp := append([]float64(nil), d...)
		project(dp, trans)
		// Skip numerically vanishing start vectors (their spectral weight
		// is zero; normalizing them would amplify noise into NaNs).
		if linalg.Norm2(dp) < 1e-10*linalg.Norm2(d)+1e-300 {
			return nil
		}
		t, norm, err := lanczos.Run(g.H, dp, lopt)
		if err != nil {
			return err
		}
		dens := lanczos.SpectralDensity(t, norm, xs, opt.Sigma,
			constants.WavenumberFromEigenvalue, opt.UseGAGQ)
		for i := range out.Intensity {
			out.Intensity[i] += weight * dens[i]
		}
		return nil
	}

	for c := 0; c < 6; c++ {
		if err := addDensity(g.DAlpha[c], eqFourComponentWeights[c]); err != nil {
			return nil, err
		}
	}
	dTr := make([]float64, n)
	for i := 0; i < n; i++ {
		dTr[i] = g.DAlpha[0][i] + g.DAlpha[1][i] + g.DAlpha[2][i]
	}
	if err := addDensity(dTr, eqFourTraceWeight); err != nil {
		return nil, err
	}
	return out, nil
}

// translationVectors returns the three orthonormal mass-weighted rigid
// translation vectors.
func translationVectors(massesAU []float64) [][]float64 {
	n3 := 3 * len(massesAU)
	out := make([][]float64, 3)
	for d := 0; d < 3; d++ {
		v := make([]float64, n3)
		for a, m := range massesAU {
			v[3*a+d] = math.Sqrt(m)
		}
		linalg.Scal(1/linalg.Norm2(v), v)
		out[d] = v
	}
	return out
}

func project(d []float64, basis [][]float64) {
	for _, b := range basis {
		c := linalg.Dot(d, b)
		if c != 0 {
			linalg.Axpy(-c, b, d)
		}
	}
}
