package raman

import (
	"fmt"
	"math"

	"qframan/internal/constants"
	"qframan/internal/hessian"
	"qframan/internal/lanczos"
	"qframan/internal/linalg"
)

// IR spectroscopy falls out of the same machinery as Raman: the displacement
// loop delivers ∂μ/∂ξ alongside ∂α/∂ξ, and IR intensity per mode is
// Σ_k (∂μ_k/∂Q_p)². The large-system path evaluates three spectral
// densities d_kᵀ·δσ(ω−H)·d_k with the same Lanczos+GAGQ solver that Eq. 5
// uses for Raman — a natural extension the paper's framework supports.

// DenseIRModes returns per-mode IR intensities from a dense mode analysis.
func DenseIRModes(g *hessian.Global) (*Modes, error) {
	if g.DDipole[0] == nil {
		return nil, fmt.Errorf("raman: dipole derivatives missing")
	}
	n := g.H.Dim()
	dense := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for k := g.H.RowPtr[i]; k < g.H.RowPtr[i+1]; k++ {
			dense.Set(i, int(g.H.Col[k]), g.H.Val[k])
		}
	}
	dense.Symmetrize()
	vals, vecs := linalg.EigSym(dense)
	m := &Modes{
		Wavenumbers: make([]float64, n),
		Activity:    make([]float64, n),
	}
	for p := 0; p < n; p++ {
		m.Wavenumbers[p] = constants.WavenumberFromEigenvalue(vals[p])
		var act float64
		for k := 0; k < 3; k++ {
			var dm float64
			for i := 0; i < n; i++ {
				dm += vecs.At(i, p) * g.DDipole[k][i]
			}
			act += dm * dm
		}
		m.Activity[p] = act
	}
	return m, nil
}

// DenseIRSpectrum produces the exact IR spectrum, dropping rigid-body modes
// below rigidCutoff cm⁻¹.
func DenseIRSpectrum(g *hessian.Global, opt Options, rigidCutoff float64) (*Spectrum, error) {
	modes, err := DenseIRModes(g)
	if err != nil {
		return nil, err
	}
	xs := opt.axis()
	out := &Spectrum{Freq: xs, Intensity: make([]float64, len(xs))}
	pref := 1 / (math.Sqrt(2*math.Pi) * opt.Sigma)
	for p, w := range modes.Wavenumbers {
		if math.Abs(w) < rigidCutoff {
			continue
		}
		for xi, x := range xs {
			dx := (x - w) / opt.Sigma
			if dx > 8 || dx < -8 {
				continue
			}
			out.Intensity[xi] += modes.Activity[p] * pref * math.Exp(-0.5*dx*dx)
		}
	}
	return out, nil
}

// LanczosIRSpectrum is the large-system IR solver: three Lanczos+GAGQ
// spectral densities, one per dipole component.
func LanczosIRSpectrum(g *hessian.Global, opt Options) (*Spectrum, error) {
	if g.DDipole[0] == nil {
		return nil, fmt.Errorf("raman: dipole derivatives missing")
	}
	xs := opt.axis()
	out := &Spectrum{Freq: xs, Intensity: make([]float64, len(xs))}
	trans := translationVectors(g.Masses)
	lopt := lanczos.Options{K: opt.LanczosK, Reorthogonalize: opt.Reorthogonalize}
	for k := 0; k < 3; k++ {
		d := append([]float64(nil), g.DDipole[k]...)
		project(d, trans)
		if linalg.Norm2(d) < 1e-10*linalg.Norm2(g.DDipole[k])+1e-300 {
			continue
		}
		t, norm, err := lanczos.Run(g.H, d, lopt)
		if err != nil {
			return nil, err
		}
		dens := lanczos.SpectralDensity(t, norm, xs, opt.Sigma,
			constants.WavenumberFromEigenvalue, opt.UseGAGQ)
		for i := range out.Intensity {
			out.Intensity[i] += dens[i]
		}
	}
	return out, nil
}
