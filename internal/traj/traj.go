// Package traj is the incremental trajectory engine: it turns the one-shot
// QF-RAMAN pipeline into a streaming one, producing time-resolved Raman
// spectra along an MD trajectory where frame N+1 costs O(moved fragments)
// instead of O(system). The paper's headline 100M-atom spectrum (§VI)
// becomes a production tool only in this many-spectra shape — temperature
// ensembles and conformational averaging à la arXiv:2209.15423 — and the
// content-addressed fragment store already provides the key mechanism:
// fragments are addressed by a rigid-motion-canonical fingerprint, so a
// frame-to-frame diff of fingerprints identifies exactly the fragments
// whose physics changed.
//
// Three reuse tiers, cheapest first:
//
//  1. In-memory reuse — a fragment whose coordinates are bit-identical to
//     the previous frame keeps last frame's FragmentData pointer outright;
//     no store round trip, no rotation. (Bit-equality of positions implies
//     bit-equality of the canonical frame, so the held data is exactly what
//     a store lookup would return.)
//  2. Store-served — a fragment that moved rigidly (or matches any record
//     by content) keeps its fingerprint and is served by the store, rotated
//     into its new frame; no engine recompute.
//  3. Recompute — a fragment whose fingerprint changed runs the engine,
//     optionally warm-started: its reference SCF seeds from the converged
//     charges of the *same fragment identity* in the previous frame
//     (per-atom scalars are rotation-invariant). Warm-starting changes the
//     iteration path, not the physics — spectra agree within the SCF
//     tolerance — and Options.WarmStart=false restores strict bit-identity
//     with independent per-frame runs.
//
// Assembly is delta-aware too: hessian.IncrementalAssembler replays the
// recorded Eq. 1 contributions of unchanged fragments instead of
// re-gathering their 3N×3N blocks, bit-identically to a fresh assembly.
package traj

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"sync"
	"time"

	"qframan/internal/core"
	"qframan/internal/fragment"
	"qframan/internal/geom"
	"qframan/internal/hessian"
	"qframan/internal/obs"
	"qframan/internal/raman"
	"qframan/internal/sched"
	"qframan/internal/store"
	"qframan/internal/structure"
)

// Options configures the trajectory engine.
type Options struct {
	// Core is the one-shot pipeline configuration the engine wraps. The
	// scheduler options (including the cache store, observability scope,
	// and fault policy) are honored per frame; attach a store to enable
	// tier-2 reuse of rigidly-moved fragments.
	Core core.Config
	// WarmStart seeds each recomputed fragment's reference SCF from its own
	// identity's previous-frame converged charges. Off, every frame is
	// bit-identical to an independent per-frame run against the same store.
	WarmStart bool
}

// Engine diffs consecutive frames and recomputes only what moved. It is not
// safe for concurrent use; one engine drives one trajectory.
type Engine struct {
	opt Options
	sc  obs.Scope

	// prev maps fragment identity → last frame's state. Identity is the
	// fragment's role in the decomposition (kind + global atom indices +
	// occurrence ordinal), deliberately not its content hash: warm-start
	// seeds must follow the *molecule* as it moves, while content keys
	// follow the geometry.
	prev  map[string]*prevState
	asm   *hessian.IncrementalAssembler
	frame int

	mFrames, mMoved, mRotated, mReused, mRecomputed, mWarm *obs.Counter
	mFrameWall                                             *obs.Histogram
}

// prevState is one fragment identity's carry-over between frames.
type prevState struct {
	key    store.Key
	pos    []geom.Vec3
	data   *hessian.FragmentData
	warmDQ []float64
}

// New builds an engine over the given options.
func New(opt Options) *Engine {
	sc := opt.Core.Sched.Obs
	return &Engine{
		opt:         opt,
		sc:          sc,
		prev:        make(map[string]*prevState),
		asm:         hessian.NewIncrementalAssembler(),
		mFrames:     sc.R.Counter(obs.MetricTrajFrames),
		mMoved:      sc.R.Counter(obs.MetricTrajMoved),
		mRotated:    sc.R.Counter(obs.MetricTrajRotated),
		mReused:     sc.R.Counter(obs.MetricTrajReused),
		mRecomputed: sc.R.Counter(obs.MetricTrajRecomputed),
		mWarm:       sc.R.Counter(obs.MetricTrajWarmStarts),
		mFrameWall:  sc.R.Histogram(obs.MetricTrajFrameSeconds, obs.DurationBuckets),
	}
}

// FrameReport is one frame's diff/reuse/warm-start accounting.
type FrameReport struct {
	Frame     int
	Fragments int
	// Moved counts fragments whose content fingerprint changed since their
	// identity's previous frame — including identities appearing for the
	// first time (frame 0 counts everything as moved).
	Moved int
	// Rotated counts fragments whose fingerprint is unchanged but whose
	// coordinates moved rigidly: scheduled, served by the store's rotation
	// path, never recomputed.
	Rotated int
	// Reused counts fragments with bit-identical coordinates: previous
	// frame's data reused in memory with no store round trip.
	Reused int
	// Scheduled = Moved + Rotated: fragments that went through the
	// scheduler this frame.
	Scheduled int
	// Recomputed counts engine invocations (scheduler cache misses): moved
	// fragments minus those deduped against the store or each other.
	Recomputed int
	// CacheHits counts scheduled fragments served from the store.
	CacheHits int
	// WarmStarted counts recomputed fragments whose reference SCF was
	// seeded from their identity's previous frame.
	WarmStarted int
	// RefIters sums the reference-SCF iteration counts of recomputed
	// fragments — the number warm-starting drives down.
	RefIters int
	// AsmReused/AsmRebuilt count the incremental assembler's per-fragment
	// cache behavior.
	AsmReused  int
	AsmRebuilt int
	Elapsed    time.Duration
	// Degraded/Failed mirror the scheduler's fail-soft ledger, in
	// whole-decomposition fragment indices.
	Degraded bool
	Failed   []int
}

// FrameResult is one processed frame.
type FrameResult struct {
	Spectrum   *raman.Spectrum
	IRSpectrum *raman.Spectrum
	Global     *hessian.Global
	Report     FrameReport
	Sched      *sched.Report
}

// String renders the accounting line of qframan -traj.
func (r FrameReport) String() string {
	s := fmt.Sprintf("traj frame %d: fragments=%d moved=%d rotated=%d reused=%d recomputed=%d hits=%d warm=%d refiters=%d elapsed=%s",
		r.Frame, r.Fragments, r.Moved, r.Rotated, r.Reused, r.Recomputed, r.CacheHits, r.WarmStarted, r.RefIters, r.Elapsed.Round(time.Millisecond))
	if r.Degraded {
		s += fmt.Sprintf(" DEGRADED failed=%v", r.Failed)
	}
	return s
}

// identities assigns each fragment its cross-frame identity string: kind,
// coefficient sign, global atom indices, and an occurrence ordinal (a water
// monomer subtracted once per pair it joins yields several fragments with
// identical kind and atoms; decomposition order is deterministic, so the
// k-th copy maps to the previous frame's k-th copy).
func identities(dec *fragment.Decomposition) []string {
	seen := make(map[string]int, len(dec.Fragments))
	ids := make([]string, len(dec.Fragments))
	var b []byte
	for i := range dec.Fragments {
		f := &dec.Fragments[i]
		b = b[:0]
		b = append(b, byte(f.Kind))
		if f.Coeff < 0 {
			b = append(b, '-')
		} else {
			b = append(b, '+')
		}
		for _, g := range f.GlobalIdx {
			b = binary.AppendVarint(b, int64(g))
		}
		base := string(b)
		n := seen[base]
		seen[base] = n + 1
		ids[i] = base + "#" + strconv.Itoa(n)
	}
	return ids
}

// samePos reports bit-equality of two coordinate sets.
func samePos(a, b []geom.Vec3) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diff classifies each fragment of the frame against the previous frame's
// identity index. It returns the per-fragment identities, keys, and the
// classification (reused data filled in, scheduled indices listed).
type diffResult struct {
	ids       []string
	keys      []store.Key
	reused    []*hessian.FragmentData // non-nil exactly at tier-1 fragments
	scheduled []int                   // decomposition indices needing sched
	moved     map[int]bool            // scheduled subset whose key changed
	report    FrameReport
}

func (e *Engine) diff(dec *fragment.Decomposition) *diffResult {
	d := &diffResult{
		ids:    identities(dec),
		keys:   make([]store.Key, len(dec.Fragments)),
		reused: make([]*hessian.FragmentData, len(dec.Fragments)),
		moved:  make(map[int]bool),
	}
	for i := range dec.Fragments {
		f := &dec.Fragments[i]
		d.keys[i], _ = store.Fingerprint(f, e.opt.Core.Sched.Job)
		p := e.prev[d.ids[i]]
		switch {
		case p != nil && p.key == d.keys[i] && samePos(p.pos, f.Pos):
			d.reused[i] = p.data
			d.report.Reused++
		case p != nil && p.key == d.keys[i]:
			d.scheduled = append(d.scheduled, i)
			d.report.Rotated++
		default:
			d.scheduled = append(d.scheduled, i)
			d.moved[i] = true
			d.report.Moved++
		}
	}
	d.report.Scheduled = len(d.scheduled)
	return d
}

// partition fragments a frame with the engine configured in the pipeline
// config (nil Partitioner → the QF engine), so trajectory runs use exactly
// the partitioner a one-shot run over the same config would.
func (e *Engine) partition(sys *structure.System) (*fragment.Decomposition, error) {
	if p := e.opt.Core.Partitioner; p != nil {
		return p.Partition(sys)
	}
	return fragment.Decompose(sys, e.opt.Core.Fragment)
}

// Step processes the next frame of the trajectory and returns its spectrum
// and accounting. The first frame schedules every fragment — byte-for-byte
// the same computation as a one-shot run over the same system and store.
func (e *Engine) Step(sys *structure.System) (*FrameResult, error) {
	t0 := time.Now()
	frameSc, frameSpan := e.sc.Begin("traj.frame", "traj", obs.A("frame", int64(e.frame)))
	defer frameSpan.End()

	_, dspan := frameSc.Begin("traj.decompose", "traj", obs.A("atoms", int64(sys.NumAtoms())))
	dec, err := e.partition(sys)
	dspan.End()
	if err != nil {
		return nil, fmt.Errorf("traj: frame %d: decompose: %w", e.frame, err)
	}
	if len(dec.Fragments) == 0 {
		return nil, fmt.Errorf("traj: frame %d produced no fragments", e.frame)
	}

	_, fspan := frameSc.Begin("traj.diff", "traj", obs.A("fragments", int64(len(dec.Fragments))))
	d := e.diff(dec)
	fspan.End(obs.A("moved", int64(d.report.Moved)), obs.A("rotated", int64(d.report.Rotated)),
		obs.A("reused", int64(d.report.Reused)))

	datas := make([]*hessian.FragmentData, len(dec.Fragments))
	copy(datas, d.reused)
	next := make(map[string]*prevState, len(dec.Fragments))
	for i, fd := range d.reused {
		if fd != nil {
			next[d.ids[i]] = e.prev[d.ids[i]]
		}
	}

	var schedRep *sched.Report
	var failed []int
	warmed := 0
	refIters := 0
	if len(d.scheduled) > 0 {
		sub := &fragment.Decomposition{Fragments: make([]fragment.Fragment, len(d.scheduled))}
		for j, i := range d.scheduled {
			sub.Fragments[j] = dec.Fragments[i]
		}
		// Warm seeds and reference captures are keyed by the sub-fragment's
		// address — the one pointer sched hands the hooks.
		var mu sync.Mutex
		seeds := make(map[*fragment.Fragment][]float64)
		type refCap struct {
			dq    []float64
			iters int
		}
		caps := make(map[*fragment.Fragment]refCap)
		if e.opt.WarmStart {
			for j, i := range d.scheduled {
				if p := e.prev[d.ids[i]]; p != nil && d.moved[i] && p.warmDQ != nil {
					seeds[&sub.Fragments[j]] = p.warmDQ
				}
			}
		}
		opts := e.opt.Core.Sched
		opts.Obs = frameSc
		if len(seeds) > 0 {
			opts.WarmStart = func(f *fragment.Fragment) []float64 {
				mu.Lock()
				defer mu.Unlock()
				s := seeds[f]
				if s != nil {
					warmed++
				}
				return s
			}
		}
		opts.OnReference = func(f *fragment.Fragment, dq []float64, iters int) {
			mu.Lock()
			defer mu.Unlock()
			caps[f] = refCap{dq: dq, iters: iters}
			refIters += iters
		}
		subDatas, rep, err := sched.Run(sub, opts)
		if err != nil {
			return nil, fmt.Errorf("traj: frame %d: fragment jobs: %w", e.frame, err)
		}
		schedRep = rep
		d.report.Recomputed = rep.CacheMisses
		d.report.CacheHits = rep.CacheHits
		failedSub := make(map[int]bool, len(rep.Failed))
		for _, j := range rep.Failed {
			failedSub[j] = true
		}
		for j, i := range d.scheduled {
			if failedSub[j] {
				failed = append(failed, i)
				continue
			}
			datas[i] = subDatas[j]
			ps := &prevState{
				key:  d.keys[i],
				pos:  append([]geom.Vec3(nil), dec.Fragments[i].Pos...),
				data: subDatas[j],
			}
			if c, ok := caps[&sub.Fragments[j]]; ok {
				ps.warmDQ = c.dq
			} else if p := e.prev[d.ids[i]]; p != nil {
				// Store-served fragment: carry the previous charges forward
				// (per-atom scalars survive rigid motion).
				ps.warmDQ = p.warmDQ
			}
			next[d.ids[i]] = ps
		}
	}
	e.prev = next
	d.report.Frame = e.frame
	d.report.Fragments = len(dec.Fragments)
	d.report.WarmStarted = warmed
	d.report.RefIters = refIters
	d.report.Failed = failed
	d.report.Degraded = len(failed) > 0

	_, aspan := frameSc.Begin("traj.assemble", "traj", obs.A("fragments", int64(len(dec.Fragments))))
	g, err := e.asm.Assemble(dec, sys.Masses(), datas, !e.opt.Core.Sched.Job.SkipAlpha, failed)
	aspan.End(obs.A("reused", int64(e.asm.Reused)), obs.A("rebuilt", int64(e.asm.Rebuilt)))
	if err != nil {
		return nil, fmt.Errorf("traj: frame %d: assemble: %w", e.frame, err)
	}
	d.report.AsmReused, d.report.AsmRebuilt = e.asm.Reused, e.asm.Rebuilt

	res := &FrameResult{Global: g, Sched: schedRep}
	if !e.opt.Core.Sched.Job.SkipAlpha {
		_, sspan := frameSc.Begin("traj.spectrum", "traj")
		cfg := e.opt.Core
		cfg.Sched.Obs = frameSc
		res.Spectrum, res.IRSpectrum, err = core.SpectrumFromGlobal(g, cfg)
		sspan.End()
		if err != nil {
			return nil, fmt.Errorf("traj: frame %d: %w", e.frame, err)
		}
	}
	d.report.Elapsed = time.Since(t0)
	res.Report = d.report

	e.mFrames.Inc()
	e.mMoved.Add(int64(d.report.Moved))
	e.mRotated.Add(int64(d.report.Rotated))
	e.mReused.Add(int64(d.report.Reused))
	e.mRecomputed.Add(int64(d.report.Recomputed))
	e.mWarm.Add(int64(d.report.WarmStarted))
	e.mFrameWall.ObserveDuration(d.report.Elapsed)
	e.frame++
	return res, nil
}

// Diff classifies one frame against the previous one without computing
// anything: the accounting mode of qfstats -traj. It advances the same
// identity index as Step (minus warm-start charges and data, which only
// computation can produce), so successive Diff calls report exactly what a
// computing run would schedule.
func (e *Engine) Diff(sys *structure.System) (FrameReport, error) {
	t0 := time.Now()
	dec, err := e.partition(sys)
	if err != nil {
		return FrameReport{}, fmt.Errorf("traj: frame %d: decompose: %w", e.frame, err)
	}
	if len(dec.Fragments) == 0 {
		return FrameReport{}, fmt.Errorf("traj: frame %d produced no fragments", e.frame)
	}
	d := e.diff(dec)
	next := make(map[string]*prevState, len(dec.Fragments))
	for i := range dec.Fragments {
		next[d.ids[i]] = &prevState{
			key: d.keys[i],
			pos: append([]geom.Vec3(nil), dec.Fragments[i].Pos...),
		}
	}
	e.prev = next
	d.report.Frame = e.frame
	d.report.Fragments = len(dec.Fragments)
	d.report.Elapsed = time.Since(t0)
	e.frame++
	return d.report, nil
}
