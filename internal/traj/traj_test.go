package traj

import (
	"math"
	"testing"

	"qframan/internal/core"
	"qframan/internal/fragment"
	"qframan/internal/geom"
	"qframan/internal/hessian"
	"qframan/internal/linalg"
	"qframan/internal/raman"
	"qframan/internal/sched"
	"qframan/internal/store"
	"qframan/internal/structure"
)

// testConfig returns small-but-real pipeline settings: the 2-water box's
// fragments are tiny, and the coarse Raman axis keeps the spectra short.
func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Raman.FreqMin, cfg.Raman.FreqMax, cfg.Raman.FreqStep = 200, 4000, 25
	cfg.Raman.Sigma = 30
	cfg.Raman.LanczosK = 30
	return cfg
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// frames builds an nw-water trajectory of n perturbed frames and the
// per-frame Systems.
func trajSystems(t *testing.T, nx, ny, nz, n int, popt structure.PerturbOptions) []*structure.System {
	t.Helper()
	base := structure.BuildWaterBox(nx, ny, nz, geom.Vec3{})
	popt.Frames = n
	frames := structure.PerturbedTrajectory(base, popt)
	out := make([]*structure.System, len(frames))
	for i, f := range frames {
		sys, err := structure.ApplyFrame(base, f)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = sys
	}
	return out
}

func bitEqualSpectrum(t *testing.T, what string, a, b *raman.Spectrum) {
	t.Helper()
	if a == nil || b == nil {
		t.Fatalf("%s: nil spectrum (%v, %v)", what, a == nil, b == nil)
	}
	if len(a.Freq) != len(b.Freq) || len(a.Intensity) != len(b.Intensity) {
		t.Fatalf("%s: spectrum shapes differ", what)
	}
	for i := range a.Intensity {
		if math.Float64bits(a.Intensity[i]) != math.Float64bits(b.Intensity[i]) {
			t.Fatalf("%s: intensity[%d] differs: %x vs %x", what, i,
				math.Float64bits(a.Intensity[i]), math.Float64bits(b.Intensity[i]))
		}
	}
	for i := range a.Freq {
		if math.Float64bits(a.Freq[i]) != math.Float64bits(b.Freq[i]) {
			t.Fatalf("%s: freq[%d] differs", what, i)
		}
	}
}

// TestFrameZeroBitIdenticalOneShot: the acceptance anchor — a trajectory
// run's first frame must be byte-for-byte the spectrum a one-shot qframan
// run produces over the same system and an equivalent store.
func TestFrameZeroBitIdenticalOneShot(t *testing.T) {
	sys := structure.BuildWaterBox(2, 1, 1, geom.Vec3{})

	oneCfg := testConfig()
	oneCfg.Sched.Cache = sched.CacheOptions{Store: openStore(t, t.TempDir())}
	oneShot, err := core.ComputeRaman(sys, oneCfg)
	if err != nil {
		t.Fatal(err)
	}

	trajCfg := testConfig()
	trajCfg.Sched.Cache = sched.CacheOptions{Store: openStore(t, t.TempDir())}
	eng := New(Options{Core: trajCfg})
	res, err := eng.Step(sys)
	if err != nil {
		t.Fatal(err)
	}
	bitEqualSpectrum(t, "frame 0", res.Spectrum, oneShot.Spectrum)

	r := res.Report
	if r.Moved != r.Fragments || r.Reused != 0 || r.Rotated != 0 {
		t.Fatalf("frame 0 classified %+v; want everything moved", r)
	}
	if r.Recomputed == 0 || r.Scheduled != r.Fragments {
		t.Fatalf("frame 0 scheduled=%d recomputed=%d of %d", r.Scheduled, r.Recomputed, r.Fragments)
	}
}

// TestWarmOffBitIdentityAcrossFrames: with warm-start off, every frame of a
// trajectory run must be bit-identical to an independent per-frame run
// resumed against a store of its own — the -traj-warm=0 contract.
func TestWarmOffBitIdentityAcrossFrames(t *testing.T) {
	systems := trajSystems(t, 2, 2, 1, 3, structure.PerturbOptions{
		MoveFrac: 0.3, Jitter: 0.02, Seed: 7,
	})

	trajCfg := testConfig()
	trajCfg.Sched.Cache = sched.CacheOptions{Store: openStore(t, t.TempDir()), Resume: true}
	eng := New(Options{Core: trajCfg})

	refCfg := testConfig()
	refCfg.Sched.Cache = sched.CacheOptions{Store: openStore(t, t.TempDir()), Resume: true}

	sawReuse := false
	for i, sys := range systems {
		res, err := eng.Step(sys)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		ref, err := core.ComputeRaman(sys, refCfg)
		if err != nil {
			t.Fatalf("frame %d reference: %v", i, err)
		}
		bitEqualSpectrum(t, res.Report.String(), res.Spectrum, ref.Spectrum)
		r := res.Report
		if r.Moved+r.Rotated+r.Reused != r.Fragments {
			t.Fatalf("frame %d classification does not partition: %+v", i, r)
		}
		if i > 0 && r.Reused > 0 {
			sawReuse = true
		}
		if i > 0 && r.Moved == r.Fragments {
			t.Fatalf("frame %d: everything moved under a 50%% perturbation", i)
		}
	}
	if !sawReuse {
		t.Fatal("no frame reused any in-memory fragment data")
	}
}

// TestWarmStartGolden: warm-started frames must agree with cold ones within
// the SCF tolerance while spending fewer reference-SCF iterations.
func TestWarmStartGolden(t *testing.T) {
	systems := trajSystems(t, 2, 1, 1, 3, structure.PerturbOptions{
		MoveFrac: 0.8, Jitter: 0.03, Seed: 11,
	})

	run := func(warm bool) (specs []*raman.Spectrum, iters, warmed int) {
		cfg := testConfig()
		cfg.Sched.Cache = sched.CacheOptions{Store: openStore(t, t.TempDir()), Resume: true}
		eng := New(Options{Core: cfg, WarmStart: warm})
		for i, sys := range systems {
			res, err := eng.Step(sys)
			if err != nil {
				t.Fatalf("warm=%v frame %d: %v", warm, i, err)
			}
			specs = append(specs, res.Spectrum)
			if i > 0 { // frame 0 is identical either way: no seeds exist yet
				iters += res.Report.RefIters
				warmed += res.Report.WarmStarted
			}
		}
		return specs, iters, warmed
	}

	warmSpecs, warmIters, warmed := run(true)
	coldSpecs, coldIters, coldWarmed := run(false)
	if coldWarmed != 0 {
		t.Fatalf("cold run reported %d warm starts", coldWarmed)
	}
	if warmed == 0 {
		t.Fatal("warm run never seeded a reference SCF")
	}
	if warmIters >= coldIters {
		t.Fatalf("warm start saved nothing: %d iterations warm vs %d cold", warmIters, coldIters)
	}
	for i := range warmSpecs {
		var peak, diff float64
		for j := range warmSpecs[i].Intensity {
			peak = math.Max(peak, math.Abs(coldSpecs[i].Intensity[j]))
			diff = math.Max(diff, math.Abs(warmSpecs[i].Intensity[j]-coldSpecs[i].Intensity[j]))
		}
		if peak == 0 || diff/peak > 1e-6 {
			t.Fatalf("frame %d: warm spectrum deviates by %g of peak %g", i, diff, peak)
		}
	}
}

// fakeOptions overrides the engine with a deterministic 3N-dimensional
// payload (waterbox fragment frames rotate, so 1×1 fakes would be rejected
// by the store's tensor rotation) and counts invocations.
func fakeOptions(t *testing.T, calls *int) core.Config {
	t.Helper()
	cfg := testConfig()
	cfg.Sched.Job.SkipAlpha = true // no spectrum: this is a scheduling test
	cfg.Sched.Cache = sched.CacheOptions{Store: openStore(t, t.TempDir()), Resume: true}
	cfg.Sched.Process = func(f *fragment.Fragment, _ sched.Options) (*hessian.FragmentData, error) {
		*calls++ // sched serializes Process per leader; NumLeaders=1 below
		n3 := 3 * f.NumAtoms()
		fd := &hessian.FragmentData{Hess: linalg.NewMatrix(n3, n3)}
		for i := 0; i < n3; i++ {
			fd.Hess.Set(i, i, 1+float64(i))
		}
		return fd, nil
	}
	cfg.Sched.NumLeaders = 1
	cfg.Sched.WorkersPerLeader = 1
	return cfg
}

// TestRecomputePerFrameEqualsChangedKeys is the frame-diff property test:
// for every frame, the engine-invocation count must equal exactly the
// number of *distinct new* content keys — fragments whose fingerprint
// changed, minus store dedup — computed here by an independent seen-set
// simulation over store.Fingerprint.
func TestRecomputePerFrameEqualsChangedKeys(t *testing.T) {
	systems := trajSystems(t, 2, 2, 2, 4, structure.PerturbOptions{
		MoveFrac: 0.3, Jitter: 0.05, Seed: 3,
	})
	calls := 0
	cfg := fakeOptions(t, &calls)
	eng := New(Options{Core: cfg})

	seen := make(map[store.Key]bool)
	for i, sys := range systems {
		// Independent expectation: which distinct keys are new this frame?
		dec, err := fragment.Decompose(sys, cfg.Fragment)
		if err != nil {
			t.Fatal(err)
		}
		frameKeys := make(map[store.Key]bool)
		for j := range dec.Fragments {
			k, _ := store.Fingerprint(&dec.Fragments[j], cfg.Sched.Job)
			frameKeys[k] = true
		}
		expected := 0
		for k := range frameKeys {
			if !seen[k] {
				expected++
				seen[k] = true
			}
		}

		calls = 0
		res, err := eng.Step(sys)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		r := res.Report
		if r.Recomputed != expected || calls != expected {
			t.Fatalf("frame %d: recomputed=%d engine calls=%d, want exactly %d new keys (%+v)",
				i, r.Recomputed, calls, expected, r)
		}
		if r.Moved+r.Rotated+r.Reused != r.Fragments {
			t.Fatalf("frame %d classification does not partition: %+v", i, r)
		}
		if i == 0 && r.Moved != r.Fragments {
			t.Fatalf("frame 0: moved=%d of %d", r.Moved, r.Fragments)
		}
		if i > 0 && r.Reused == 0 {
			t.Fatalf("frame %d reused nothing under a 30%% perturbation", i)
		}
	}
}

// TestRigidMotionNeverRecomputes: a whole-system rigid translation changes
// every coordinate but no fingerprint — every fragment must be scheduled
// through the store's rotation path with zero engine calls. (Per-molecule
// rigid motion is *not* recompute-free: a 2-body fragment spanning a moved
// and an unmoved water genuinely changes shape.)
func TestRigidMotionNeverRecomputes(t *testing.T) {
	base := structure.BuildWaterBox(2, 2, 1, geom.Vec3{})
	systems := []*structure.System{base}
	for _, shift := range []geom.Vec3{{X: 0.25, Y: -0.5}, {X: 1.5, Z: 0.75}} {
		moved := structure.BuildWaterBox(2, 2, 1, geom.Vec3{})
		for i := range moved.Atoms {
			moved.Atoms[i].Pos = base.Atoms[i].Pos.Add(shift)
		}
		systems = append(systems, moved)
	}
	calls := 0
	eng := New(Options{Core: fakeOptions(t, &calls)})
	if _, err := eng.Step(systems[0]); err != nil {
		t.Fatal(err)
	}
	for i, sys := range systems[1:] {
		calls = 0
		res, err := eng.Step(sys)
		if err != nil {
			t.Fatalf("frame %d: %v", i+1, err)
		}
		r := res.Report
		if r.Recomputed != 0 || calls != 0 {
			t.Fatalf("frame %d: rigid motion recomputed %d fragments (%d calls)", i+1, r.Recomputed, calls)
		}
		if r.Moved != 0 {
			t.Fatalf("frame %d: rigid motion classified %d fragments as moved", i+1, r.Moved)
		}
		if r.Rotated == 0 {
			t.Fatalf("frame %d: no fragment took the store rotation path (%+v)", i+1, r)
		}
		if r.CacheHits != r.Scheduled {
			t.Fatalf("frame %d: %d of %d scheduled fragments served from store", i+1, r.CacheHits, r.Scheduled)
		}
	}
}

// TestDiffOnly: the computation-free Differ must report the same
// classification a computing run would schedule.
func TestDiffOnly(t *testing.T) {
	systems := trajSystems(t, 2, 2, 1, 3, structure.PerturbOptions{
		MoveFrac: 0.4, Jitter: 0.05, Seed: 9,
	})
	cfg := testConfig()
	eng := New(Options{Core: cfg})
	r0, err := eng.Diff(systems[0])
	if err != nil {
		t.Fatal(err)
	}
	if r0.Moved != r0.Fragments || r0.Frame != 0 {
		t.Fatalf("frame 0 diff: %+v", r0)
	}
	// Re-presenting the same frame must classify everything as reused.
	r1, err := eng.Diff(systems[0])
	if err != nil {
		t.Fatal(err)
	}
	if r1.Reused != r1.Fragments || r1.Moved != 0 || r1.Rotated != 0 {
		t.Fatalf("identical frame diff: %+v", r1)
	}
	r2, err := eng.Diff(systems[1])
	if err != nil {
		t.Fatal(err)
	}
	if r2.Moved == 0 || r2.Reused == 0 {
		t.Fatalf("perturbed frame diff found no movement or no reuse: %+v", r2)
	}
	if r2.Moved+r2.Rotated+r2.Reused != r2.Fragments {
		t.Fatalf("diff classification does not partition: %+v", r2)
	}
	if r2.String() == "" {
		t.Fatal("empty report line")
	}
}

// TestStepErrors covers the engine's failure surfaces.
func TestStepErrors(t *testing.T) {
	cfg := testConfig()
	eng := New(Options{Core: cfg})
	if _, err := eng.Step(&structure.System{}); err == nil {
		t.Fatal("empty system accepted")
	}
	if _, err := eng.Diff(&structure.System{}); err == nil {
		t.Fatal("empty system accepted by Diff")
	}
}
