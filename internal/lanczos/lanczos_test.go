package lanczos

import (
	"math"
	"math/rand"
	"testing"

	"qframan/internal/linalg"
)

func randomSymmetric(rng *rand.Rand, n int) *linalg.Matrix {
	m := linalg.NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	m.Symmetrize()
	return m
}

func randomVector(rng *rand.Rand, n int) []float64 {
	d := make([]float64, n)
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return d
}

func TestFullLanczosRecoversSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 20
	m := randomSymmetric(rng, n)
	d := randomVector(rng, n)
	tri, _, err := Run(DenseOperator{m}, d, Options{K: n, Reorthogonalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if tri.K() != n {
		t.Fatalf("expected %d steps, got %d", n, tri.K())
	}
	nodes, weights := tri.GaussRule()
	want, _ := linalg.EigSym(m)
	for i := range want {
		if math.Abs(nodes[i]-want[i]) > 1e-8 {
			t.Fatalf("Ritz value %d = %v, want %v", i, nodes[i], want[i])
		}
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-10 {
		t.Fatalf("Gauss weights sum to %v", sum)
	}
}

// momentsExact computes dᵀ·Hᵐ·d directly.
func momentsExact(m *linalg.Matrix, d []float64, maxM int) []float64 {
	n := m.Rows
	out := make([]float64, maxM+1)
	v := append([]float64(nil), d...)
	w := make([]float64, n)
	for p := 0; p <= maxM; p++ {
		out[p] = linalg.Dot(d, v)
		linalg.Gemv(false, 1, m, v, 0, w, nil)
		v, w = w, v
	}
	return out
}

func TestGaussRuleMomentExactness(t *testing.T) {
	// A k-step Gauss rule integrates polynomials up to degree 2k−1 exactly.
	rng := rand.New(rand.NewSource(2))
	n := 30
	k := 6
	m := randomSymmetric(rng, n)
	d := randomVector(rng, n)
	tri, norm, err := Run(DenseOperator{m}, d, Options{K: k, Reorthogonalize: true})
	if err != nil {
		t.Fatal(err)
	}
	nodes, weights := tri.GaussRule()
	exact := momentsExact(m, d, 2*k-1)
	for p := 0; p <= 2*k-1; p++ {
		var quad float64
		for j := range nodes {
			quad += weights[j] * math.Pow(nodes[j], float64(p))
		}
		quad *= norm * norm
		if math.Abs(quad-exact[p]) > 1e-7*math.Max(1, math.Abs(exact[p])) {
			t.Fatalf("moment %d: quadrature %v vs exact %v", p, quad, exact[p])
		}
	}
}

func TestGAGQMomentExactness(t *testing.T) {
	// The generalized averaged rule from k steps is exact at least up to
	// degree 2k−1 as well (and typically further).
	rng := rand.New(rand.NewSource(3))
	n := 30
	k := 6
	m := randomSymmetric(rng, n)
	d := randomVector(rng, n)
	tri, norm, err := Run(DenseOperator{m}, d, Options{K: k, Reorthogonalize: true})
	if err != nil {
		t.Fatal(err)
	}
	nodes, weights := tri.GAGQRule()
	if len(nodes) != 2*k-1 {
		t.Fatalf("GAGQ rule has %d nodes, want %d", len(nodes), 2*k-1)
	}
	exact := momentsExact(m, d, 2*k-1)
	for p := 0; p <= 2*k-1; p++ {
		var quad float64
		for j := range nodes {
			quad += weights[j] * math.Pow(nodes[j], float64(p))
		}
		quad *= norm * norm
		if math.Abs(quad-exact[p]) > 1e-7*math.Max(1, math.Abs(exact[p])) {
			t.Fatalf("moment %d: GAGQ %v vs exact %v", p, quad, exact[p])
		}
	}
}

func TestSpectralDensityMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 80
	m := randomSymmetric(rng, n)
	d := randomVector(rng, n)
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = -12 + 24*float64(i)/100
	}
	sigma := 0.6
	want := DenseSpectralDensity(m, d, xs, sigma, nil)
	tri, norm, err := Run(DenseOperator{m}, d, Options{K: 50, Reorthogonalize: true})
	if err != nil {
		t.Fatal(err)
	}
	got := SpectralDensity(tri, norm, xs, sigma, nil, true)
	// Relative L2 error.
	var num, den float64
	for i := range xs {
		num += (got[i] - want[i]) * (got[i] - want[i])
		den += want[i] * want[i]
	}
	if rel := math.Sqrt(num / den); rel > 2e-2 {
		t.Fatalf("Lanczos spectral density relative L2 error %v", rel)
	}
}

func TestGAGQBeatsPlainGauss(t *testing.T) {
	// At equal k the averaged rule should approximate the smoothed density
	// at least as well as the plain rule (aggregate over several seeds).
	xs := make([]float64, 81)
	for i := range xs {
		xs[i] = -10 + 20*float64(i)/80
	}
	sigma := 0.8
	var errG, errA float64
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(10 + seed))
		n := 60
		m := randomSymmetric(rng, n)
		d := randomVector(rng, n)
		want := DenseSpectralDensity(m, d, xs, sigma, nil)
		tri, norm, err := Run(DenseOperator{m}, d, Options{K: 12, Reorthogonalize: true})
		if err != nil {
			t.Fatal(err)
		}
		plain := SpectralDensity(tri, norm, xs, sigma, nil, false)
		avg := SpectralDensity(tri, norm, xs, sigma, nil, true)
		for i := range xs {
			errG += (plain[i] - want[i]) * (plain[i] - want[i])
			errA += (avg[i] - want[i]) * (avg[i] - want[i])
		}
	}
	if errA > errG {
		t.Fatalf("GAGQ error %v exceeds plain Gauss error %v", errA, errG)
	}
}

func TestEarlyTermination(t *testing.T) {
	// Start vector inside a 3-dimensional invariant subspace: the
	// recurrence must stop after ≤3 steps.
	n := 12
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, float64(i%3)) // eigenvalues 0,1,2 each 4×
	}
	d := make([]float64, n)
	d[0], d[1], d[2] = 1, 2, 3
	tri, _, err := Run(DenseOperator{m}, d, Options{K: 10, Reorthogonalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if tri.K() > 3 {
		t.Fatalf("expected ≤3 steps for a 3-dim invariant subspace, got %d", tri.K())
	}
}

func TestTransformApplied(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 15
	m := randomSymmetric(rng, n)
	// Shift to be positive definite so sqrt transform is smooth.
	for i := 0; i < n; i++ {
		m.Add(i, i, 10)
	}
	d := randomVector(rng, n)
	xs := []float64{2.5, 3.0, 3.5, 4.0}
	tri, norm, err := Run(DenseOperator{m}, d, Options{K: n, Reorthogonalize: true})
	if err != nil {
		t.Fatal(err)
	}
	sqrtT := func(x float64) float64 { return math.Sqrt(math.Abs(x)) }
	got := SpectralDensity(tri, norm, xs, 0.2, sqrtT, true)
	want := DenseSpectralDensity(m, d, xs, 0.2, sqrtT)
	for i := range xs {
		if math.Abs(got[i]-want[i]) > 1e-6*math.Max(1, want[i]) {
			t.Fatalf("transformed density at %v: %v vs %v", xs[i], got[i], want[i])
		}
	}
}

func TestRunValidation(t *testing.T) {
	m := linalg.Identity(4)
	if _, _, err := Run(DenseOperator{m}, []float64{1, 2}, DefaultOptions()); err == nil {
		t.Fatal("accepted wrong-length start vector")
	}
	if _, _, err := Run(DenseOperator{m}, make([]float64, 4), DefaultOptions()); err == nil {
		t.Fatal("accepted zero start vector")
	}
	if _, _, err := Run(DenseOperator{m}, []float64{1, 0, 0, 0}, Options{K: 0}); err == nil {
		t.Fatal("accepted K=0")
	}
}

func TestNoReorthogonalizationStillWorksForSmallK(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 40
	m := randomSymmetric(rng, n)
	d := randomVector(rng, n)
	tri, norm, err := Run(DenseOperator{m}, d, Options{K: 8, Reorthogonalize: false})
	if err != nil {
		t.Fatal(err)
	}
	nodes, weights := tri.GaussRule()
	exact := momentsExact(m, d, 3)
	for p := 0; p <= 3; p++ {
		var quad float64
		for j := range nodes {
			quad += weights[j] * math.Pow(nodes[j], float64(p))
		}
		quad *= norm * norm
		if math.Abs(quad-exact[p]) > 1e-6*math.Max(1, math.Abs(exact[p])) {
			t.Fatalf("moment %d without reorthogonalization: %v vs %v", p, quad, exact[p])
		}
	}
}

func TestGAGQAfterEarlyTermination(t *testing.T) {
	// K larger than the invariant subspace: the coupling β_k is ~0 and the
	// GAGQ rule must gracefully fall back to the plain Gauss rule instead
	// of augmenting through a meaningless coefficient.
	n := 12
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1e-5*float64(i%3)) // Hessian-like tiny eigenvalue scale
	}
	d := make([]float64, n)
	d[0], d[1], d[2] = 1, 2, 3
	tri, norm, err := Run(DenseOperator{m}, d, Options{K: 10, Reorthogonalize: true})
	if err != nil {
		t.Fatal(err)
	}
	nodes, weights := tri.GAGQRule()
	var sum float64
	for _, w := range weights {
		if math.IsNaN(w) {
			t.Fatal("NaN weight from GAGQ after early termination")
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-8 {
		t.Fatalf("GAGQ weights sum to %v", sum)
	}
	for _, x := range nodes {
		if math.IsNaN(x) {
			t.Fatal("NaN node from GAGQ after early termination")
		}
	}
	_ = norm
}
