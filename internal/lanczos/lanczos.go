// Package lanczos implements the paper's efficient Raman-spectra solver
// (§V-E): the matrix functional dᵀ·f(H)·d is evaluated with a k-step Lanczos
// recurrence whose tridiagonal matrix is augmented by the generalized
// averaged Gauss quadrature (GAGQ) of Spalević/Reichel into a (2k−1)×(2k−1)
// matrix T̂; diagonalizing T̂ yields Ritz nodes and weights that approximate
// the spectral measure of H seen from d. This replaces the impossible full
// diagonalization of the 3N×3N mass-weighted Hessian with k sparse
// matrix–vector products.
package lanczos

import (
	"fmt"
	"math"

	"qframan/internal/linalg"
	"qframan/internal/par"
)

// Operator is a symmetric linear operator (the sparse mass-weighted
// Hessian, or a dense reference).
type Operator interface {
	Dim() int
	// MulVec computes y = A·x; x and y have length Dim().
	MulVec(x, y []float64)
}

// DenseOperator adapts a symmetric dense matrix to the Operator interface.
type DenseOperator struct{ M *linalg.Matrix }

// Dim returns the dimension.
func (d DenseOperator) Dim() int { return d.M.Rows }

// MulVec computes y = M·x.
func (d DenseOperator) MulVec(x, y []float64) {
	linalg.Gemv(false, 1, d.M, x, 0, y, nil)
}

// Tridiagonal holds the Lanczos recurrence coefficients: Alpha has k
// entries, Beta has k entries where Beta[k−1] is the residual coupling
// coefficient β_k (needed by the GAGQ augmentation).
type Tridiagonal struct {
	Alpha []float64
	Beta  []float64
}

// K returns the number of completed Lanczos steps.
func (t *Tridiagonal) K() int { return len(t.Alpha) }

// Options controls the Lanczos iteration.
type Options struct {
	// K is the number of Lanczos steps.
	K int
	// Reorthogonalize enables full reorthogonalization against all stored
	// Lanczos vectors — O(k·n) memory but immune to the loss of
	// orthogonality that plagues the plain recurrence.
	Reorthogonalize bool
}

// DefaultOptions returns settings adequate for vibrational densities.
func DefaultOptions() Options { return Options{K: 150, Reorthogonalize: true} }

// Run executes the Lanczos recurrence from the (not necessarily normalized)
// start vector d. It returns the tridiagonal coefficients and ‖d‖. The
// recurrence stops early (fewer than K steps) if an invariant subspace is
// found; Beta then ends with the (tiny) terminating coefficient.
func Run(op Operator, d []float64, opt Options) (*Tridiagonal, float64, error) {
	n := op.Dim()
	if len(d) != n {
		return nil, 0, fmt.Errorf("lanczos: start vector has %d entries, operator dimension %d", len(d), n)
	}
	if opt.K <= 0 {
		return nil, 0, fmt.Errorf("lanczos: K must be positive")
	}
	// All recurrence reductions go through the pool's deterministic chunked
	// forms: below the chunk threshold they are exactly the serial loops;
	// above it the fixed chunk layout keeps them width-invariant, so the
	// recurrence (and the Ritz nodes built from it) is bit-reproducible for
	// any kernel-thread count.
	norm := math.Sqrt(par.SumSq(d))
	if norm == 0 {
		return nil, 0, fmt.Errorf("lanczos: zero start vector")
	}
	q := make([]float64, n)
	par.For("lanczos_vec", n, 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			q[i] = d[i] / norm
		}
	})
	var qs [][]float64 // stored vectors for reorthogonalization
	if opt.Reorthogonalize {
		qs = append(qs, append([]float64(nil), q...))
	}
	qPrev := make([]float64, n)
	w := make([]float64, n)
	t := &Tridiagonal{}
	var betaPrev float64
	for step := 0; step < opt.K; step++ {
		op.MulVec(q, w)
		alpha := par.Dot(q, w)
		t.Alpha = append(t.Alpha, alpha)
		par.For("lanczos_vec", n, 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				w[i] -= alpha*q[i] + betaPrev*qPrev[i]
			}
		})
		if opt.Reorthogonalize {
			// Two passes of classical Gram–Schmidt against all stored q's.
			for pass := 0; pass < 2; pass++ {
				for _, qi := range qs {
					c := par.Dot(w, qi)
					if c != 0 {
						linalg.Axpy(-c, qi, w)
					}
				}
			}
		}
		beta := math.Sqrt(par.SumSq(w))
		t.Beta = append(t.Beta, beta)
		if beta < 1e-13*math.Max(1, math.Abs(alpha)) {
			// Invariant subspace: the measure is fully resolved.
			break
		}
		qPrev, q = q, qPrev
		par.For("lanczos_vec", n, 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				q[i] = w[i] / beta
			}
		})
		if opt.Reorthogonalize {
			qs = append(qs, append([]float64(nil), q...))
		}
		betaPrev = beta
	}
	return t, norm, nil
}

// GaussRule returns the Gauss quadrature nodes (Ritz values) and weights of
// the plain k-step rule: nodes are eigenvalues of T_k, weights the squared
// first components of its eigenvectors.
func (t *Tridiagonal) GaussRule() (nodes, weights []float64) {
	k := t.K()
	d := append([]float64(nil), t.Alpha...)
	e := make([]float64, k-1)
	copy(e, t.Beta[:k-1])
	return ruleFromTridiag(d, e)
}

// GAGQRule returns the generalized averaged Gauss rule of Spalević built
// from k Lanczos steps: the (2k−1)×(2k−1) matrix
//
//	T̂ = [ T_k        β_k e_k e_1ᵀ ]
//	    [ β_k e_1 e_kᵀ   T'_{k−1} ]
//
// where T'_{k−1} is T_{k−1} with rows/columns reversed. Its eigen-pairs give
// nodes and weights that are substantially more accurate than the plain
// Gauss rule at negligible extra cost (the paper's §V-E choice).
func (t *Tridiagonal) GAGQRule() (nodes, weights []float64) {
	k := t.K()
	if k < 2 {
		return t.GaussRule()
	}
	// Early termination (β_k ≈ 0) means the measure is fully resolved by
	// the plain rule; the averaged augmentation would couple through a
	// numerically meaningless coefficient.
	var scale float64
	for _, a := range t.Alpha {
		scale = math.Max(scale, math.Abs(a))
	}
	if t.Beta[k-1] <= 1e-12*math.Max(1, scale) {
		return t.GaussRule()
	}
	m := 2*k - 1
	d := make([]float64, m)
	e := make([]float64, m-1)
	copy(d, t.Alpha) // α_1..α_k
	for i := 0; i < k-1; i++ {
		d[k+i] = t.Alpha[k-2-i] // α_{k−1}..α_1
	}
	copy(e, t.Beta[:k-1]) // β_1..β_{k−1}
	e[k-1] = t.Beta[k-1]  // coupling β_k
	for i := 0; i < k-2; i++ {
		e[k+i] = t.Beta[k-3-i] // β_{k−2}..β_1
	}
	return ruleFromTridiag(d, e)
}

func ruleFromTridiag(d, e []float64) (nodes, weights []float64) {
	vals, vecs := linalg.EigSymTridiag(d, e)
	weights = make([]float64, len(vals))
	for j := range vals {
		w := vecs.At(0, j)
		weights[j] = w * w
	}
	return vals, weights
}

// SpectralDensity evaluates s(x) = dᵀ·g_σ(x − H)·d on the given x values,
// where g_σ is a normalized Gaussian — the regularized δ of the paper's
// Eq. (8). transform maps operator eigenvalues to the x domain (pass nil
// for identity); for Raman it converts mass-weighted Hessian eigenvalues to
// wavenumbers. useGAGQ selects the augmented rule (recommended).
func SpectralDensity(t *Tridiagonal, dNorm float64, xs []float64, sigma float64, transform func(float64) float64, useGAGQ bool) []float64 {
	var nodes, weights []float64
	if useGAGQ {
		nodes, weights = t.GAGQRule()
	} else {
		nodes, weights = t.GaussRule()
	}
	if transform != nil {
		for i := range nodes {
			nodes[i] = transform(nodes[i])
		}
	}
	out := make([]float64, len(xs))
	norm2 := dNorm * dNorm
	pref := 1 / (math.Sqrt(2*math.Pi) * sigma)
	par.For("lanczos_density", len(xs), 64, func(lo, hi int) {
		for xi := lo; xi < hi; xi++ {
			x := xs[xi]
			var s float64
			for j := range nodes {
				dx := (x - nodes[j]) / sigma
				if dx > 8 || dx < -8 {
					continue
				}
				s += weights[j] * math.Exp(-0.5*dx*dx)
			}
			out[xi] = norm2 * pref * s
		}
	})
	return out
}

// DenseSpectralDensity is the exact reference: it diagonalizes the operator
// as a dense matrix and evaluates dᵀ·g_σ(x−H)·d directly. Only feasible for
// small systems; the validation ladder compares the Lanczos solver to it.
func DenseSpectralDensity(m *linalg.Matrix, d []float64, xs []float64, sigma float64, transform func(float64) float64) []float64 {
	vals, vecs := linalg.EigSym(m)
	n := m.Rows
	out := make([]float64, len(xs))
	pref := 1 / (math.Sqrt(2*math.Pi) * sigma)
	for j := 0; j < n; j++ {
		var proj float64
		for i := 0; i < n; i++ {
			proj += vecs.At(i, j) * d[i]
		}
		w := proj * proj
		x0 := vals[j]
		if transform != nil {
			x0 = transform(x0)
		}
		for xi, x := range xs {
			dx := (x - x0) / sigma
			if dx > 8 || dx < -8 {
				continue
			}
			out[xi] += w * pref * math.Exp(-0.5*dx*dx)
		}
	}
	return out
}
