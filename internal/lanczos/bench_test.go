package lanczos

import (
	"math/rand"
	"testing"
)

func BenchmarkRun(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 600
	m := randomSymmetric(rng, n)
	d := randomVector(rng, n)
	opt := Options{K: 100, Reorthogonalize: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(DenseOperator{m}, d, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGAGQRule(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := randomSymmetric(rng, 400)
	d := randomVector(rng, 400)
	t, _, err := Run(DenseOperator{m}, d, Options{K: 150, Reorthogonalize: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.GAGQRule()
	}
}
