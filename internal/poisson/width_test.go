package poisson

import (
	"math"
	"testing"

	"qframan/internal/geom"
	"qframan/internal/grid"
	"qframan/internal/par"
)

// TestSolveWidthInvariance is the Poisson half of CI's kernel-drift gate:
// the CG solution on the benchmark problem must be bit-identical at kernel
// widths 1 and 4 — the chunked dot/norm reductions combine their partials
// in fixed chunk order, so the entire iteration is width-invariant.
func TestSolveWidthInvariance(t *testing.T) {
	defer par.SetBudget(0)
	g := grid.Cover([]geom.Vec3{{}}, 8.0, 0.6)
	rho := gaussianCharge(g, geom.Vec3{}, 1.0, 1.0)

	var ref []float64
	refIters := 0
	for _, w := range []int{1, 4} {
		par.SetBudget(w)
		v, iters, err := Solve(g, rho, DefaultOptions())
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		if ref == nil {
			ref, refIters = v, iters
			continue
		}
		if iters != refIters {
			t.Fatalf("width %d took %d CG iterations, width 1 took %d", w, iters, refIters)
		}
		for i := range v {
			if math.Float64bits(v[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("width %d: potential[%d] drifts (%g vs %g)", w, i, v[i], ref[i])
			}
		}
	}
}
