package poisson

import (
	"math"
	"testing"

	"qframan/internal/geom"
	"qframan/internal/grid"
)

// gaussianCharge fills rho with a normalized Gaussian charge q·(α/π)^{3/2}
// exp(−α|r−c|²), whose exact potential is q·erf(√α·r)/r.
func gaussianCharge(g *grid.Grid, c geom.Vec3, q, alpha float64) []float64 {
	rho := make([]float64, g.NumPoints())
	n := q * math.Pow(alpha/math.Pi, 1.5)
	for i := range rho {
		rho[i] = n * math.Exp(-alpha*g.Point(i).Sub(c).Norm2())
	}
	return rho
}

func TestSolveGaussianCharge(t *testing.T) {
	center := geom.V(0, 0, 0)
	g := grid.Cover([]geom.Vec3{center}, 9.0, 0.45)
	alpha := 1.2
	rho := gaussianCharge(g, center, 1.0, alpha)
	v, iters, err := Solve(g, rho, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if iters == 0 {
		t.Fatal("solver did no work")
	}
	// Compare against the analytic potential at interior points not too
	// close to the center (stencil error grows with curvature).
	var worst float64
	checked := 0
	for i := range v {
		p := g.Point(i)
		r := p.Sub(center).Norm()
		if r < 1.5 || r > 6.0 {
			continue
		}
		want := math.Erf(math.Sqrt(alpha)*r) / r
		if e := math.Abs(v[i] - want); e > worst {
			worst = e
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no points checked")
	}
	if worst > 8e-3 {
		t.Fatalf("max potential error %g vs analytic", worst)
	}
}

func TestSolveDipoleDensity(t *testing.T) {
	// Two opposite Gaussian charges: net-zero density like a response
	// density; potential is the difference of the two analytic potentials.
	cp := geom.V(0.8, 0, 0)
	cm := geom.V(-0.8, 0, 0)
	g := grid.Cover([]geom.Vec3{cp, cm}, 9.0, 0.45)
	alpha := 1.0
	rho := gaussianCharge(g, cp, 1.0, alpha)
	neg := gaussianCharge(g, cm, -1.0, alpha)
	for i := range rho {
		rho[i] += neg[i]
	}
	v, _, err := Solve(g, rho, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := range v {
		p := g.Point(i)
		rp := p.Sub(cp).Norm()
		rm := p.Sub(cm).Norm()
		if rp < 1.8 || rm < 1.8 || rp > 6 || rm > 6 {
			continue
		}
		want := math.Erf(math.Sqrt(alpha)*rp)/rp - math.Erf(math.Sqrt(alpha)*rm)/rm
		if e := math.Abs(v[i] - want); e > worst {
			worst = e
		}
	}
	if worst > 8e-3 {
		t.Fatalf("dipole potential max error %g", worst)
	}
}

func TestSolveZeroDensity(t *testing.T) {
	g := grid.Cover([]geom.Vec3{{}}, 4, 0.8)
	rho := make([]float64, g.NumPoints())
	v, iters, err := Solve(g, rho, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if iters != 0 {
		t.Fatalf("zero density took %d iterations", iters)
	}
	for i, val := range v {
		if val != 0 {
			t.Fatalf("nonzero potential %g at %d for zero density", val, i)
		}
	}
}

func TestSolveValidation(t *testing.T) {
	g := grid.Cover([]geom.Vec3{{}}, 4, 0.8)
	if _, _, err := Solve(g, make([]float64, 3), DefaultOptions()); err == nil {
		t.Fatal("accepted wrong-sized rho")
	}
	opt := DefaultOptions()
	opt.MaxIter = 1
	rho := gaussianCharge(g, geom.Vec3{}, 1, 1)
	if _, _, err := Solve(g, rho, opt); err == nil {
		t.Fatal("claimed convergence after 1 iteration")
	}
}

func TestStencilConsistency(t *testing.T) {
	// The solution must satisfy the discrete equation exactly at interior
	// points (that is what CG solved): −∇²v = 4πρ.
	g := grid.Cover([]geom.Vec3{{}}, 6.0, 0.6)
	rho := gaussianCharge(g, geom.Vec3{}, 1.0, 1.0)
	v, _, err := Solve(g, rho, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h2 := g.H * g.H
	sx, sy, sz := 1, g.Nx, g.Nx*g.Ny
	var worst float64
	for iz := 1; iz < g.Nz-1; iz++ {
		for iy := 1; iy < g.Ny-1; iy++ {
			for ix := 1; ix < g.Nx-1; ix++ {
				i := g.Index(ix, iy, iz)
				lap := (v[i-sx] + v[i+sx] + v[i-sy] + v[i+sy] + v[i-sz] + v[i+sz] - 6*v[i]) / h2
				res := math.Abs(lap + 4*math.Pi*rho[i])
				if res > worst {
					worst = res
				}
			}
		}
	}
	if worst > 1e-5 {
		t.Fatalf("discrete residual %g", worst)
	}
}
