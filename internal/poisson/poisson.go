// Package poisson solves the electrostatic Poisson equation ∇²v = −4πρ on a
// uniform grid — the third phase of the paper's per-displacement DFPT cycle
// (§V-A: the response electrostatic potential v⁽¹⁾_es from the response
// density n⁽¹⁾). The solver is a matrix-free conjugate-gradient iteration over the
// 7-point Laplacian with Dirichlet boundary values supplied by a
// monopole+dipole multipole expansion of the charge on the grid.
package poisson

import (
	"fmt"
	"math"

	"qframan/internal/geom"
	"qframan/internal/grid"
	"qframan/internal/par"
)

// Options controls the CG iteration.
type Options struct {
	// Tol is the relative residual tolerance (‖r‖/‖b‖).
	Tol float64
	// MaxIter bounds the CG iterations.
	MaxIter int
}

// DefaultOptions returns tolerances adequate for the response potential.
func DefaultOptions() Options { return Options{Tol: 1e-8, MaxIter: 10000} }

// Solve computes the potential v (len = g.NumPoints()) for charge density
// rho (same layout) with multipole Dirichlet boundary conditions. It returns
// the number of CG iterations used.
func Solve(g *grid.Grid, rho []float64, opt Options) ([]float64, int, error) {
	n := g.NumPoints()
	if len(rho) != n {
		return nil, 0, fmt.Errorf("poisson: rho has %d entries, grid has %d points", len(rho), n)
	}
	if g.Nx < 3 || g.Ny < 3 || g.Nz < 3 {
		return nil, 0, fmt.Errorf("poisson: grid must be at least 3 points per axis")
	}

	v := make([]float64, n)
	setBoundary(g, rho, v)

	// Interior unknowns: solve A u = b with A = −∇² (SPD on the interior),
	// b = 4πρ + boundary terms folded in by keeping v's boundary fixed and
	// applying the stencil to the full array.
	h2 := g.H * g.H
	interior := make([]int, 0, n)
	for iz := 1; iz < g.Nz-1; iz++ {
		for iy := 1; iy < g.Ny-1; iy++ {
			for ix := 1; ix < g.Nx-1; ix++ {
				interior = append(interior, g.Index(ix, iy, iz))
			}
		}
	}

	// applyA computes (−∇² u) at interior points, treating u as zero on the
	// boundary (boundary contribution is moved to b). Sharded over interior
	// points; out[k] depends only on u, so any width gives identical bits.
	applyA := func(u, out []float64) {
		sx, sy, sz := 1, g.Nx, g.Nx*g.Ny
		par.For("poisson_stencil", len(interior), stencilChunk, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				idx := interior[k]
				out[k] = (6*u[idx] - u[idx-sx] - u[idx+sx] - u[idx-sy] - u[idx+sy] - u[idx-sz] - u[idx+sz]) / h2
			}
		})
	}

	// Build b = 4πρ + (1/h²)·(boundary neighbor values).
	nb := len(interior)
	b := make([]float64, nb)
	{
		sx, sy, sz := 1, g.Nx, g.Nx*g.Ny
		isBoundary := func(idx int) bool {
			ix, iy, iz := g.Coords(idx)
			return ix == 0 || ix == g.Nx-1 || iy == 0 || iy == g.Ny-1 || iz == 0 || iz == g.Nz-1
		}
		for k, idx := range interior {
			b[k] = 4 * math.Pi * rho[idx]
			for _, nIdx := range [6]int{idx - sx, idx + sx, idx - sy, idx + sy, idx - sz, idx + sz} {
				if isBoundary(nIdx) {
					b[k] += v[nIdx] / h2
				}
			}
		}
	}

	// Conjugate gradients on the interior; u stores values at interior
	// points embedded in a full-size scratch array (boundary zero) so the
	// stencil application stays simple.
	full := make([]float64, n)
	au := make([]float64, nb)
	u := make([]float64, nb)
	r := make([]float64, nb)
	p := make([]float64, nb)
	copy(r, b)
	copy(p, b)
	bNorm := norm(b)
	if bNorm == 0 {
		return v, 0, nil
	}
	rr := dot(r, r)
	iter := 0
	for ; iter < opt.MaxIter; iter++ {
		if math.Sqrt(rr)/bNorm < opt.Tol {
			break
		}
		// au = A p (via the full-array stencil with zero boundary). The
		// scatter overwrites every interior slot and never touches boundary
		// slots, which stay zero from allocation — no per-iteration clear.
		par.For("poisson_scatter", len(interior), stencilChunk, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				full[interior[k]] = p[k]
			}
		})
		applyA(full, au)
		pap := dot(p, au)
		if pap <= 0 {
			return nil, iter, fmt.Errorf("poisson: CG breakdown (pᵀAp = %g)", pap)
		}
		alpha := rr / pap
		par.For("poisson_axpy", nb, stencilChunk, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				u[k] += alpha * p[k]
				r[k] -= alpha * au[k]
			}
		})
		rrNew := dot(r, r)
		beta := rrNew / rr
		rr = rrNew
		par.For("poisson_axpy", nb, stencilChunk, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				p[k] = r[k] + beta*p[k]
			}
		})
	}
	if math.Sqrt(rr)/bNorm >= opt.Tol {
		return nil, iter, fmt.Errorf("poisson: CG did not converge in %d iterations (rel res %g)", iter, math.Sqrt(rr)/bNorm)
	}
	for k, idx := range interior {
		v[idx] = u[k]
	}
	return v, iter, nil
}

// setBoundary fills the boundary faces of v with the monopole+dipole
// expansion of rho about the charge centroid.
func setBoundary(g *grid.Grid, rho, v []float64) {
	w := g.Weight()
	var q float64
	var center geom.Vec3
	// Expansion origin: grid center (robust also for zero net charge).
	center = g.Origin.Add(geom.V(
		float64(g.Nx-1)*g.H/2, float64(g.Ny-1)*g.H/2, float64(g.Nz-1)*g.H/2))
	var p geom.Vec3
	for i, r := range rho {
		if r == 0 {
			continue
		}
		q += r * w
		d := g.Point(i).Sub(center)
		p = p.Add(d.Scale(r * w))
	}
	face := func(ix, iy, iz int) {
		pt := g.PointAt(ix, iy, iz)
		d := pt.Sub(center)
		rr := d.Norm()
		if rr == 0 {
			return
		}
		v[g.Index(ix, iy, iz)] = q/rr + p.Dot(d)/(rr*rr*rr)
	}
	for iy := 0; iy < g.Ny; iy++ {
		for ix := 0; ix < g.Nx; ix++ {
			face(ix, iy, 0)
			face(ix, iy, g.Nz-1)
		}
	}
	for iz := 0; iz < g.Nz; iz++ {
		for ix := 0; ix < g.Nx; ix++ {
			face(ix, 0, iz)
			face(ix, g.Ny-1, iz)
		}
	}
	for iz := 0; iz < g.Nz; iz++ {
		for iy := 0; iy < g.Ny; iy++ {
			face(0, iy, iz)
			face(g.Nx-1, iy, iz)
		}
	}
}

// stencilChunk is the minimum shard of grid points per worker; below it the
// memory-bound stencil and axpy loops don't amortize a dispatch. Fragment
// grids are small (10³–10⁵ interior points), so the floor also sets how many
// chunks — and hence how much intra-solve parallelism — a CG iteration has:
// 512 points is ~µs of stencil work, comfortably above the ~0.5µs
// parked-worker dispatch cost, and gives even a water monomer's ~10⁴-point
// grid enough chunks to occupy an 8-wide pool.
const stencilChunk = 512

// dot and norm use the pool's deterministic chunked reduction: partials are
// combined in fixed chunk order, so CG iterates are bit-identical for any
// kernel width (DESIGN.md §7).
func dot(a, b []float64) float64 { return par.Dot(a, b) }

func norm(a []float64) float64 { return math.Sqrt(par.SumSq(a)) }
