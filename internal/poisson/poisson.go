// Package poisson solves the electrostatic Poisson equation ∇²v = −4πρ on a
// uniform grid — the third phase of the paper's per-displacement DFPT cycle
// (§V-A: the response electrostatic potential v⁽¹⁾_es from the response
// density n⁽¹⁾). The solver is a matrix-free conjugate-gradient iteration over the
// 7-point Laplacian with Dirichlet boundary values supplied by a
// monopole+dipole multipole expansion of the charge on the grid.
package poisson

import (
	"fmt"
	"math"

	"qframan/internal/geom"
	"qframan/internal/grid"
	"qframan/internal/par"
)

// Options controls the CG iteration.
type Options struct {
	// Tol is the relative residual tolerance (‖r‖/‖b‖).
	Tol float64
	// MaxIter bounds the CG iterations.
	MaxIter int
}

// DefaultOptions returns tolerances adequate for the response potential.
func DefaultOptions() Options { return Options{Tol: 1e-8, MaxIter: 10000} }

// Solve computes the potential v (len = g.NumPoints()) for charge density
// rho (same layout) with multipole Dirichlet boundary conditions. It returns
// the number of CG iterations used.
func Solve(g *grid.Grid, rho []float64, opt Options) ([]float64, int, error) {
	n := g.NumPoints()
	if len(rho) != n {
		return nil, 0, fmt.Errorf("poisson: rho has %d entries, grid has %d points", len(rho), n)
	}
	if g.Nx < 3 || g.Ny < 3 || g.Nz < 3 {
		return nil, 0, fmt.Errorf("poisson: grid must be at least 3 points per axis")
	}

	v := make([]float64, n)
	setBoundary(g, rho, v)

	// Interior unknowns: solve A u = b with A = −∇² (SPD on the interior).
	// All CG vectors live in the FULL grid layout with boundary slots pinned
	// to exact zeros — the interior decomposes into contiguous x-runs of
	// length Nx−2 (one per interior (iy, iz) line), so the stencil reads and
	// writes sequential memory with no index indirection, the per-iteration
	// interior→full scatter of the compact layout disappears entirely, and
	// the reductions run over contiguous arrays (the boundary zeros
	// contribute exact +0 terms, which cannot perturb any partial sum).
	h2 := g.H * g.H
	invH2 := 1 / h2
	sy, sz := g.Nx, g.Nx*g.Ny
	runLen := g.Nx - 2                 // interior x-run length
	numRuns := (g.Ny - 2) * (g.Nz - 2) // one run per interior (iy, iz)
	runStart := make([]int, numRuns)   // full-layout index of each run
	for iz, ri := 1, 0; iz < g.Nz-1; iz++ {
		for iy := 1; iy < g.Ny-1; iy++ {
			runStart[ri] = g.Index(1, iy, iz)
			ri++
		}
	}
	// The chunk floor in runs: ≥ stencilChunk grid points per chunk, a pure
	// function of the grid shape so the layout is width-independent.
	runChunk := (stencilChunk + runLen - 1) / runLen
	stencilPartials := make([]float64, par.Chunks(numRuns, runChunk))

	// applyADot computes out = (−∇² u)/h² on the interior runs, treating u as
	// zero on the boundary (the boundary contribution is folded into b), and
	// returns uᵀ·out from the same pass — the CG curvature pᵀAp, fused into
	// the stencil so the iteration never re-reads p and Ap in a separate dot.
	// Per-chunk partials combine in ascending chunk order (the PR 4
	// determinism contract); out's boundary slots are never written and stay
	// zero from allocation.
	applyADot := func(u, out []float64) float64 {
		par.ForChunks("poisson_stencil", numRuns, runChunk, func(c, lo, hi int) {
			var s0, s1 float64
			for ri := lo; ri < hi; ri++ {
				i0 := runStart[ri]
				uc := u[i0 : i0+runLen]
				ul := u[i0-1 : i0-1+runLen]
				ur := u[i0+1 : i0+1+runLen]
				ud := u[i0-sy : i0-sy+runLen]
				uu := u[i0+sy : i0+sy+runLen]
				ub := u[i0-sz : i0-sz+runLen]
				uf := u[i0+sz : i0+sz+runLen]
				dst := out[i0 : i0+runLen]
				j := 0
				for ; j+1 < len(dst); j += 2 {
					d0 := (6*uc[j] - ul[j] - ur[j] - ud[j] - uu[j] - ub[j] - uf[j]) * invH2
					d1 := (6*uc[j+1] - ul[j+1] - ur[j+1] - ud[j+1] - uu[j+1] - ub[j+1] - uf[j+1]) * invH2
					dst[j], dst[j+1] = d0, d1
					s0 += uc[j] * d0
					s1 += uc[j+1] * d1
				}
				for ; j < len(dst); j++ {
					d := (6*uc[j] - ul[j] - ur[j] - ud[j] - uu[j] - ub[j] - uf[j]) * invH2
					dst[j] = d
					s0 += uc[j] * d
				}
			}
			stencilPartials[c] = s0 + s1
		})
		var s float64
		for _, pv := range stencilPartials { // ordered combine: chunk 0, 1, 2, …
			s += pv
		}
		return s
	}

	// Build b = 4πρ + (1/h²)·(boundary neighbor values), full layout. A run
	// has boundary neighbors only at its two x-ends, and along y (z) only
	// when it sits in the first or last interior y (z) layer — known from
	// the run's (iy, iz) alone, so no per-point coordinate decoding. Face
	// passes apply in the fixed order −x, +x, −y, +y, −z, +z, matching the
	// neighbor-fold order elementwise.
	b := make([]float64, n)
	for iz, ri := 1, 0; iz < g.Nz-1; iz++ {
		for iy := 1; iy < g.Ny-1; iy++ {
			i0 := runStart[ri]
			ri++
			bRun := b[i0 : i0+runLen]
			rhoRun := rho[i0 : i0+runLen]
			for j := range bRun {
				bRun[j] = 4 * math.Pi * rhoRun[j]
			}
			bRun[0] += v[i0-1] / h2
			bRun[runLen-1] += v[i0+runLen] / h2
			if iy == 1 {
				vn := v[i0-sy : i0-sy+runLen]
				for j := range bRun {
					bRun[j] += vn[j] / h2
				}
			}
			if iy == g.Ny-2 {
				vn := v[i0+sy : i0+sy+runLen]
				for j := range bRun {
					bRun[j] += vn[j] / h2
				}
			}
			if iz == 1 {
				vn := v[i0-sz : i0-sz+runLen]
				for j := range bRun {
					bRun[j] += vn[j] / h2
				}
			}
			if iz == g.Nz-2 {
				vn := v[i0+sz : i0+sz+runLen]
				for j := range bRun {
					bRun[j] += vn[j] / h2
				}
			}
		}
	}

	au := make([]float64, n)
	u := make([]float64, n)
	r := make([]float64, n)
	p := make([]float64, n)
	copy(r, b)
	copy(p, b)
	bNorm := norm(b)
	if bNorm == 0 {
		return v, 0, nil
	}
	// Per-chunk partials for the fused update+reduction region, combined in
	// ascending chunk order (the PR 4 determinism contract).
	partials := make([]float64, par.Chunks(n, stencilChunk))
	rr := dot(r, r)
	iter := 0
	for ; iter < opt.MaxIter; iter++ {
		if math.Sqrt(rr)/bNorm < opt.Tol {
			break
		}
		pap := applyADot(p, au)
		if pap <= 0 {
			return nil, iter, fmt.Errorf("poisson: CG breakdown (pᵀAp = %g)", pap)
		}
		alpha := rr / pap
		// Fused x-update, residual update, and ‖r‖² reduction: one pass over
		// the four vectors instead of two passes plus a separate dot.
		par.ForChunks("poisson_axpy", n, stencilChunk, func(c, lo, hi int) {
			var s0, s1 float64
			i := lo
			for ; i+1 < hi; i += 2 {
				u[i] += alpha * p[i]
				u[i+1] += alpha * p[i+1]
				r0 := r[i] - alpha*au[i]
				r1 := r[i+1] - alpha*au[i+1]
				r[i], r[i+1] = r0, r1
				s0 += r0 * r0
				s1 += r1 * r1
			}
			for ; i < hi; i++ {
				u[i] += alpha * p[i]
				ri := r[i] - alpha*au[i]
				r[i] = ri
				s0 += ri * ri
			}
			partials[c] = s0 + s1
		})
		var rrNew float64
		for _, s := range partials { // ordered combine: chunk 0, 1, 2, …
			rrNew += s
		}
		beta := rrNew / rr
		rr = rrNew
		par.For("poisson_axpy", n, stencilChunk, func(lo, hi int) {
			i := lo
			for ; i+3 < hi; i += 4 {
				p[i] = r[i] + beta*p[i]
				p[i+1] = r[i+1] + beta*p[i+1]
				p[i+2] = r[i+2] + beta*p[i+2]
				p[i+3] = r[i+3] + beta*p[i+3]
			}
			for ; i < hi; i++ {
				p[i] = r[i] + beta*p[i]
			}
		})
	}
	if math.Sqrt(rr)/bNorm >= opt.Tol {
		return nil, iter, fmt.Errorf("poisson: CG did not converge in %d iterations (rel res %g)", iter, math.Sqrt(rr)/bNorm)
	}
	for _, i0 := range runStart {
		copy(v[i0:i0+runLen], u[i0:i0+runLen])
	}
	return v, iter, nil
}

// setBoundary fills the boundary faces of v with the monopole+dipole
// expansion of rho about the grid center. Both passes — the charge-moment
// scan over the full grid and the face evaluation — run as
// "poisson_boundary" kernel regions: the scan is a chunked four-component
// reduction (q, pₓ, p_y, p_z partials combined in ascending chunk order),
// and each face point writes only its own slot. Point coordinates advance
// incrementally from each chunk's start, so the O(n) scan does no per-point
// index decoding.
func setBoundary(g *grid.Grid, rho, v []float64) {
	w := g.Weight()
	// Expansion origin: grid center (robust also for zero net charge).
	center := g.Origin.Add(geom.V(
		float64(g.Nx-1)*g.H/2, float64(g.Ny-1)*g.H/2, float64(g.Nz-1)*g.H/2))

	nChunks := par.Chunks(len(rho), stencilChunk)
	qPart := make([]float64, nChunks)
	pPart := make([]geom.Vec3, nChunks)
	par.ForChunks("poisson_boundary", len(rho), stencilChunk, func(c, lo, hi int) {
		ix, iy, iz := g.Coords(lo)
		x := g.Origin.X + float64(ix)*g.H - center.X
		y := g.Origin.Y + float64(iy)*g.H - center.Y
		z := g.Origin.Z + float64(iz)*g.H - center.Z
		x0 := g.Origin.X - center.X
		var q float64
		var p geom.Vec3
		for i := lo; i < hi; i++ {
			if r := rho[i]; r != 0 {
				rw := r * w
				q += rw
				p.X += x * rw
				p.Y += y * rw
				p.Z += z * rw
			}
			ix++
			x += g.H
			if ix == g.Nx {
				ix, x = 0, x0
				iy++
				y += g.H
				if iy == g.Ny {
					iy, y = 0, g.Origin.Y-center.Y
					z += g.H
				}
			}
		}
		qPart[c], pPart[c] = q, p
	})
	var q float64
	var p geom.Vec3
	for c := 0; c < nChunks; c++ { // ordered combine: chunk 0, 1, 2, …
		q += qPart[c]
		p = p.Add(pPart[c])
	}

	// Every boundary point exactly once: full z-faces, then y-faces without
	// the z-edges, then x-faces without the y- and z-edges.
	bidx := make([]int32, 0, 2*(g.Nx*g.Ny+g.Nx*g.Nz+g.Ny*g.Nz))
	for iy := 0; iy < g.Ny; iy++ {
		for ix := 0; ix < g.Nx; ix++ {
			bidx = append(bidx, int32(g.Index(ix, iy, 0)), int32(g.Index(ix, iy, g.Nz-1)))
		}
	}
	for iz := 1; iz < g.Nz-1; iz++ {
		for ix := 0; ix < g.Nx; ix++ {
			bidx = append(bidx, int32(g.Index(ix, 0, iz)), int32(g.Index(ix, g.Ny-1, iz)))
		}
	}
	for iz := 1; iz < g.Nz-1; iz++ {
		for iy := 1; iy < g.Ny-1; iy++ {
			bidx = append(bidx, int32(g.Index(0, iy, iz)), int32(g.Index(g.Nx-1, iy, iz)))
		}
	}
	par.For("poisson_boundary", len(bidx), 1024, func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			i := int(bidx[bi])
			d := g.Point(i).Sub(center)
			rr := d.Norm()
			if rr == 0 {
				continue
			}
			v[i] = q/rr + p.Dot(d)/(rr*rr*rr)
		}
	})
}

// stencilChunk is the minimum shard of grid points per worker; below it the
// memory-bound stencil and axpy loops don't amortize a dispatch. Fragment
// grids are small (10³–10⁵ interior points), so the floor also sets how many
// chunks — and hence how much intra-solve parallelism — a CG iteration has:
// 2,048 points is a few µs of stencil work, far above the ~0.5µs
// parked-worker dispatch cost and the per-chunk clock reads of profile
// capture, while a production-resolution monomer grid (~10⁵ points) still
// splits into the full 32-chunk layout an 8-wide pool needs.
const stencilChunk = 2048

// dot and norm use the pool's deterministic chunked reduction: partials are
// combined in fixed chunk order, so CG iterates are bit-identical for any
// kernel width (DESIGN.md §7).
func dot(a, b []float64) float64 { return par.Dot(a, b) }

func norm(a []float64) float64 { return math.Sqrt(par.SumSq(a)) }
