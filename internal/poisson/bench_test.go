package poisson

import (
	"testing"

	"qframan/internal/geom"
	"qframan/internal/grid"
)

func BenchmarkSolve(b *testing.B) {
	g := grid.Cover([]geom.Vec3{{}}, 8.0, 0.6)
	rho := gaussianCharge(g, geom.Vec3{}, 1.0, 1.0)
	b.ReportMetric(float64(g.NumPoints()), "gridpoints")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Solve(g, rho, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
