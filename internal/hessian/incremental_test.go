package hessian

import (
	"math"
	"math/rand"
	"testing"

	"qframan/internal/constants"
	"qframan/internal/fragment"
	"qframan/internal/linalg"
)

// randomDecomposition builds nf fragments over a natoms-atom system with
// overlapping scatter maps, signed coefficients, and cap atoms (GlobalIdx
// −1) — the full shape space AssembleDegraded handles.
func randomDecomposition(rng *rand.Rand, nf, natoms int) (*fragment.Decomposition, []float64) {
	dec := &fragment.Decomposition{Fragments: make([]fragment.Fragment, nf)}
	for i := range dec.Fragments {
		n := 2 + rng.Intn(3)
		gidx := make([]int, n)
		els := make([]constants.Element, n)
		for a := 0; a < n; a++ {
			gidx[a] = rng.Intn(natoms)
			els[a] = constants.O
		}
		if rng.Intn(2) == 0 {
			gidx[n-1] = -1 // cap hydrogen
			els[n-1] = constants.H
		}
		coeff := 1.0
		if rng.Intn(2) == 0 {
			coeff = -1
		}
		dec.Fragments[i] = fragment.Fragment{ID: i, Coeff: coeff, Els: els, GlobalIdx: gidx}
	}
	masses := make([]float64, natoms)
	for i := range masses {
		masses[i] = 1 + 15*rng.Float64()
	}
	return dec, masses
}

// randomData fills a fragment-sized data block with signed values and exact
// zeros (zeros exercise the builder's v != 0 skip and the ±0 vector adds).
func randomData(rng *rand.Rand, natoms int, withAlpha bool) *FragmentData {
	n3 := 3 * natoms
	fd := &FragmentData{Hess: linalg.NewMatrix(n3, n3)}
	for r := 0; r < n3; r++ {
		for c := 0; c < n3; c++ {
			if rng.Intn(3) > 0 {
				fd.Hess.Set(r, c, rng.NormFloat64())
			}
		}
	}
	if withAlpha {
		for c := range fd.DAlpha {
			fd.DAlpha[c] = make([]float64, n3)
			for i := range fd.DAlpha[c] {
				if rng.Intn(4) > 0 {
					fd.DAlpha[c][i] = rng.NormFloat64()
				}
			}
		}
	}
	if rng.Intn(4) > 0 {
		for k := range fd.DDipole {
			fd.DDipole[k] = make([]float64, n3)
			for i := range fd.DDipole[k] {
				fd.DDipole[k][i] = rng.NormFloat64()
			}
		}
	}
	return fd
}

// globalsBitEqual compares two assembled Globals to the last float64 bit.
func globalsBitEqual(t *testing.T, a, b *Global) {
	t.Helper()
	if a.H.N != b.H.N || len(a.H.Val) != len(b.H.Val) {
		t.Fatalf("Hessian shape differs: %dx%d nnz=%d vs %dx%d nnz=%d",
			a.H.N, a.H.N, len(a.H.Val), b.H.N, b.H.N, len(b.H.Val))
	}
	for i := range a.H.RowPtr {
		if a.H.RowPtr[i] != b.H.RowPtr[i] {
			t.Fatalf("RowPtr[%d] differs", i)
		}
	}
	for i := range a.H.Val {
		if a.H.Col[i] != b.H.Col[i] || math.Float64bits(a.H.Val[i]) != math.Float64bits(b.H.Val[i]) {
			t.Fatalf("Hessian entry %d differs: (%d,%v) vs (%d,%v)", i, a.H.Col[i], a.H.Val[i], b.H.Col[i], b.H.Val[i])
		}
	}
	for c := range a.DAlpha {
		if !bitEqualSlice(a.DAlpha[c], b.DAlpha[c]) {
			t.Fatalf("DAlpha[%d] differs", c)
		}
	}
	for k := range a.DDipole {
		if !bitEqualSlice(a.DDipole[k], b.DDipole[k]) {
			t.Fatalf("DDipole[%d] differs", k)
		}
	}
	if len(a.Dropped) != len(b.Dropped) {
		t.Fatalf("Dropped %v vs %v", a.Dropped, b.Dropped)
	}
	for i := range a.Dropped {
		if a.Dropped[i] != b.Dropped[i] {
			t.Fatalf("Dropped %v vs %v", a.Dropped, b.Dropped)
		}
	}
}

// TestIncrementalAssemblerBitIdentical: across a sequence of "frames" where
// some fragments keep their data pointer (reused), some get fresh objects
// (recomputed), and some fail, the cached reassembly must match a
// from-scratch AssembleDegraded bit-for-bit.
func TestIncrementalAssemblerBitIdentical(t *testing.T) {
	for _, withAlpha := range []bool{true, false} {
		rng := rand.New(rand.NewSource(11))
		dec, masses := randomDecomposition(rng, 12, 7)
		asm := NewIncrementalAssembler()
		datas := make([]*FragmentData, len(dec.Fragments))
		for i := range datas {
			datas[i] = randomData(rng, dec.Fragments[i].NumAtoms(), withAlpha)
		}
		for frame := 0; frame < 4; frame++ {
			var failed []int
			if frame > 0 {
				// Replace a random subset with fresh data (simulating
				// recompute), keep the rest's pointers, fail one fragment.
				for i := range datas {
					if rng.Intn(3) == 0 {
						datas[i] = randomData(rng, dec.Fragments[i].NumAtoms(), withAlpha)
					}
				}
				fi := rng.Intn(len(datas))
				datas[fi] = nil
				failed = []int{fi}
			}
			want, err := AssembleDegraded(dec, masses, datas, withAlpha, failed)
			if err != nil {
				t.Fatal(err)
			}
			got, err := asm.Assemble(dec, masses, datas, withAlpha, failed)
			if err != nil {
				t.Fatal(err)
			}
			globalsBitEqual(t, got, want)
			if frame > 0 && asm.Reused == 0 {
				t.Fatalf("frame %d (alpha=%v): cache reused nothing", frame, withAlpha)
			}
			if frame == 0 && asm.Reused != 0 {
				t.Fatalf("first assembly claims %d reused entries", asm.Reused)
			}
			// Restore the failed fragment for the next frame with new data.
			if len(failed) > 0 {
				fi := failed[0]
				datas[fi] = randomData(rng, dec.Fragments[fi].NumAtoms(), withAlpha)
			}
		}
	}
}

// TestIncrementalAssemblerInvalidation: a cached entry must be rebuilt when
// the fragment's assembly role (coefficient or scatter indices) changes even
// though the data pointer is unchanged.
func TestIncrementalAssemblerInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dec, masses := randomDecomposition(rng, 4, 5)
	datas := make([]*FragmentData, len(dec.Fragments))
	for i := range datas {
		datas[i] = randomData(rng, dec.Fragments[i].NumAtoms(), true)
	}
	asm := NewIncrementalAssembler()
	if _, err := asm.Assemble(dec, masses, datas, true, nil); err != nil {
		t.Fatal(err)
	}
	// Flip a coefficient: same pointer, different role.
	dec.Fragments[2].Coeff = -dec.Fragments[2].Coeff
	want, err := AssembleDegraded(dec, masses, datas, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := asm.Assemble(dec, masses, datas, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	globalsBitEqual(t, got, want)
	if asm.Rebuilt < 1 {
		t.Fatal("coefficient flip did not rebuild the cached contribution")
	}

	// Error paths must match AssembleDegraded's.
	if _, err := asm.Assemble(dec, masses, datas[:2], true, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	datas[1] = nil
	if _, err := asm.Assemble(dec, masses, datas, true, nil); err == nil {
		t.Fatal("silent nil data accepted")
	}
	if _, err := asm.Assemble(dec, masses, datas, true, []int{99}); err == nil {
		t.Fatal("out-of-range failed index accepted")
	}
}
