package hessian

import (
	"math"
	"testing"

	"qframan/internal/constants"
	"qframan/internal/fragment"
	"qframan/internal/geom"
	"qframan/internal/linalg"
	"qframan/internal/structure"
)

// waterFragment builds a standalone water fragment at the experimental
// geometry.
func waterFragment() *fragment.Fragment {
	theta := 104.52 * math.Pi / 180
	return &fragment.Fragment{
		Els: []constants.Element{constants.O, constants.H, constants.H},
		Pos: []geom.Vec3{
			{},
			geom.V(0.9572, 0, 0),
			geom.V(0.9572*math.Cos(theta), 0.9572*math.Sin(theta), 0),
		},
		GlobalIdx: []int{0, 1, 2},
		NumReal:   3,
		Coeff:     1,
	}
}

func waterMassesAMU() []float64 {
	return []float64{constants.O.MassAMU(), constants.H.MassAMU(), constants.H.MassAMU()}
}

// eigenFrequencies densifies the sparse mass-weighted Hessian and returns
// wavenumbers in cm⁻¹, ascending.
func eigenFrequencies(s *Sparse) []float64 {
	n := s.Dim()
	dense := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
			dense.Set(i, int(s.Col[k]), s.Val[k])
		}
	}
	dense.Symmetrize()
	vals, _ := linalg.EigSym(dense)
	out := make([]float64, n)
	for i, v := range vals {
		out[i] = constants.WavenumberFromEigenvalue(v)
	}
	return out
}

func TestWaterFrequencies(t *testing.T) {
	f := waterFragment()
	data, err := ComputeFragment(f, DefaultJobOptions())
	if err != nil {
		t.Fatal(err)
	}
	dec := &fragment.Decomposition{Fragments: []fragment.Fragment{*f}}
	g, err := Assemble(dec, waterMassesAMU(), []*FragmentData{data}, true)
	if err != nil {
		t.Fatal(err)
	}
	freqs := eigenFrequencies(g.H)
	// Six rigid-body modes near zero (reference is calibrated stationary).
	for i := 0; i < 6; i++ {
		if math.Abs(freqs[i]) > 30 {
			t.Fatalf("rigid mode %d at %.1f cm⁻¹", i, freqs[i])
		}
	}
	// Three vibrations near the model's calibration targets: bend ~1650,
	// stretches ~3600/3700 (experimental water: 1595/3657/3756).
	checks := []struct{ got, want, tol float64 }{
		{freqs[6], 1650, 120},
		{freqs[7], 3600, 150},
		{freqs[8], 3710, 150},
	}
	for i, c := range checks {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("water vibration %d at %.1f cm⁻¹, want %.0f±%.0f", i, c.got, c.want, c.tol)
		}
	}
	// Polarizability derivatives present and nonzero: water is Raman active.
	for c := 0; c < 3; c++ {
		if linalg.Norm2(g.DAlpha[c]) == 0 {
			t.Fatalf("diagonal polarizability derivative %d vanished", c)
		}
	}
}

func TestHessianTranslationSumRule(t *testing.T) {
	// Acoustic sum rule: Σ_J H[3I+d][3J+d'] = 0 (unweighted Cartesian
	// Hessian rows sum to zero by translation invariance).
	f := waterFragment()
	data, err := ComputeFragment(f, DefaultJobOptions())
	if err != nil {
		t.Fatal(err)
	}
	n := f.NumAtoms()
	for rd := 0; rd < 3*n; rd++ {
		for d := 0; d < 3; d++ {
			var sum float64
			for b := 0; b < n; b++ {
				sum += data.Hess.At(rd, 3*b+d)
			}
			if math.Abs(sum) > 1e-5 {
				t.Fatalf("row %d axis %d: translation sum %g", rd, d, sum)
			}
		}
	}
}

func TestQFExactForSingleDimer(t *testing.T) {
	// For exactly two waters within λ, the Eq. 1 combination telescopes to
	// the direct dimer calculation: w1 + w2 + (dimer − w1 − w2) = dimer.
	sys := structure.BuildWaterDimerSystem(1)
	dec, err := fragment.Decompose(sys, fragment.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Stats.NumWWPairs != 1 {
		t.Fatalf("expected 1 ww pair, got %d", dec.Stats.NumWWPairs)
	}
	opt := DefaultJobOptions()
	datas := make([]*FragmentData, len(dec.Fragments))
	for i := range dec.Fragments {
		datas[i], err = ComputeFragment(&dec.Fragments[i], opt)
		if err != nil {
			t.Fatal(err)
		}
	}
	g, err := Assemble(dec, sys.Masses(), datas, true)
	if err != nil {
		t.Fatal(err)
	}

	// Direct: the whole 6-atom system as one fragment.
	whole := &fragment.Fragment{
		Els:     make([]constants.Element, sys.NumAtoms()),
		Pos:     sys.Positions(),
		NumReal: sys.NumAtoms(),
		Coeff:   1,
	}
	for i, a := range sys.Atoms {
		whole.Els[i] = a.El
		whole.GlobalIdx = append(whole.GlobalIdx, i)
	}
	wholeData, err := ComputeFragment(whole, opt)
	if err != nil {
		t.Fatal(err)
	}
	decW := &fragment.Decomposition{Fragments: []fragment.Fragment{*whole}}
	gW, err := Assemble(decW, sys.Masses(), []*FragmentData{wholeData}, true)
	if err != nil {
		t.Fatal(err)
	}

	n := g.H.Dim()
	var worst float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if d := math.Abs(g.H.At(i, j) - gW.H.At(i, j)); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-8 {
		t.Fatalf("QF dimer Hessian differs from direct by %g", worst)
	}
	for c := 0; c < 6; c++ {
		for i := 0; i < n; i++ {
			if d := math.Abs(g.DAlpha[c][i] - gW.DAlpha[c][i]); d > 1e-6 {
				t.Fatalf("∂α component %d entry %d differs by %g", c, i, d)
			}
		}
	}
}

func TestBuildFragmentDataValidation(t *testing.T) {
	if _, err := BuildFragmentData(2, nil, DefaultStep, false); err == nil {
		t.Fatal("accepted empty results")
	}
	// Missing minus displacement.
	rs := make([]*DisplacementResult, 0, 12)
	for a := 0; a < 2; a++ {
		for d := 0; d < 3; d++ {
			rs = append(rs,
				&DisplacementResult{Atom: a, Axis: d, Sign: 1, Forces: make([]geom.Vec3, 2)},
				&DisplacementResult{Atom: a, Axis: d, Sign: 1, Forces: make([]geom.Vec3, 2)})
		}
	}
	if _, err := BuildFragmentData(2, rs, DefaultStep, false); err == nil {
		t.Fatal("accepted duplicate plus displacements")
	}
}

func TestRunDisplacementValidation(t *testing.T) {
	f := waterFragment()
	m, err := ModelForFragmentNoCal(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDisplacement(m, 0, 0, 2, DefaultJobOptions()); err == nil {
		t.Fatal("accepted sign 2")
	}
}

func TestSparseBuilderAndMulVec(t *testing.T) {
	b := NewBuilder(4)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2) // duplicate: must merge to 3
	b.Add(0, 3, -1)
	b.Add(3, 0, -1)
	b.Add(2, 1, 5)
	b.Add(1, 2, 5)
	b.Add(1, 1, 0) // explicit zero must be dropped
	s := b.Build()
	if s.At(0, 0) != 3 {
		t.Fatalf("merged entry = %v", s.At(0, 0))
	}
	if s.At(1, 1) != 0 {
		t.Fatal("zero entry retained")
	}
	if s.NNZ() != 5 {
		t.Fatalf("nnz = %d, want 5", s.NNZ())
	}
	if asym := s.MaxAbsAsymmetry(); asym != 0 {
		t.Fatalf("asymmetry %v", asym)
	}
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	s.MulVec(x, y)
	want := []float64{3*1 - 1*4, 5 * 3, 5 * 2, -1 * 1}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-14 {
			t.Fatalf("MulVec[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestSparseScaleRowsCols(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 1, 6)
	b.Add(1, 0, 6)
	b.ScaleRowsCols([]float64{2, 3})
	s := b.Build()
	if s.At(0, 1) != 1 {
		t.Fatalf("scaled entry = %v, want 1", s.At(0, 1))
	}
}

func TestAssembleValidation(t *testing.T) {
	f := waterFragment()
	dec := &fragment.Decomposition{Fragments: []fragment.Fragment{*f}}
	if _, err := Assemble(dec, waterMassesAMU(), nil, false); err == nil {
		t.Fatal("accepted missing fragment data")
	}
	if _, err := Assemble(dec, waterMassesAMU(), []*FragmentData{nil}, false); err == nil {
		t.Fatal("accepted nil fragment data")
	}
}
