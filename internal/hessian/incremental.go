package hessian

import (
	"fmt"
	"sort"

	"qframan/internal/constants"
	"qframan/internal/fragment"
)

// IncrementalAssembler is AssembleDegraded with a per-fragment contribution
// cache for trajectory runs: a fragment whose data, coefficient, and global
// scatter indices are unchanged since the previous frame replays its
// recorded Eq. 1 contribution instead of re-gathering it element by element
// from the 3N×3N block. The replay preserves the exact add order of
// AssembleDegraded — triplets enter the builder in the same sequence, vector
// adds (including exact zeros) execute in the same sequence — so the
// assembled Global is bit-identical to a from-scratch assembly; the golden
// tests assert it.
//
// Cache entries are keyed by the *FragmentData pointer: the trajectory
// engine hands an unchanged fragment the same pointer it held last frame,
// while recomputed and store-served fragments arrive as fresh objects and
// rebuild their entry. Entries whose pointers left the working set are
// dropped after every assembly, so the cache never outgrows one frame.
type IncrementalAssembler struct {
	cache map[*FragmentData]*fragContrib
	// Reused and Rebuilt report the previous Assemble call's cache
	// behavior — the per-frame reassembly accounting of qfstats -traj.
	Reused  int
	Rebuilt int
}

// NewIncrementalAssembler returns an empty assembler.
func NewIncrementalAssembler() *IncrementalAssembler {
	return &IncrementalAssembler{cache: make(map[*FragmentData]*fragContrib)}
}

// fragContrib is one fragment's recorded Eq. 1 contribution: the nonzero
// Hessian triplets in builder-insertion order and the dense vector adds in
// loop order, all pre-multiplied by the fragment coefficient.
type fragContrib struct {
	coeff     float64
	gidx      []int
	withAlpha bool
	// Hessian triplets (only v != 0, as AssembleDegraded inserts them).
	rows, cols []int32
	vals       []float64
	// Vector adds: vecIdx[k] is the mass-weighting row 3*ga+da of the k-th
	// add; alpha[c][k] / dip[k] hold the pre-multiplied addends.
	vecIdx []int32
	alpha  [6][]float64
	hasDip bool
	dip    [3][]float64
}

// buildContrib records the fragment's contribution by walking the data in
// exactly AssembleDegraded's loop order.
func buildContrib(f *fragment.Fragment, data *FragmentData, withAlpha bool) *fragContrib {
	c := &fragContrib{
		coeff:     f.Coeff,
		gidx:      append([]int(nil), f.GlobalIdx...),
		withAlpha: withAlpha,
		hasDip:    data.DDipole[0] != nil,
	}
	for la, ga := range f.GlobalIdx {
		if ga < 0 {
			continue
		}
		for lb, gb := range f.GlobalIdx {
			if gb < 0 {
				continue
			}
			for da := 0; da < 3; da++ {
				for db := 0; db < 3; db++ {
					v := f.Coeff * data.Hess.At(3*la+da, 3*lb+db)
					if v != 0 {
						c.rows = append(c.rows, int32(3*ga+da))
						c.cols = append(c.cols, int32(3*gb+db))
						c.vals = append(c.vals, v)
					}
				}
			}
		}
		for da := 0; da < 3; da++ {
			c.vecIdx = append(c.vecIdx, int32(3*ga+da))
			if withAlpha {
				for comp := 0; comp < 6; comp++ {
					c.alpha[comp] = append(c.alpha[comp], f.Coeff*data.DAlpha[comp][3*la+da])
				}
			}
			if c.hasDip {
				for k := 0; k < 3; k++ {
					c.dip[k] = append(c.dip[k], f.Coeff*data.DDipole[k][3*la+da])
				}
			}
		}
	}
	return c
}

// usable reports whether a cached contribution still describes the
// fragment's current assembly role.
func (c *fragContrib) usable(f *fragment.Fragment, withAlpha bool) bool {
	if c.coeff != f.Coeff || c.withAlpha != withAlpha || len(c.gidx) != len(f.GlobalIdx) {
		return false
	}
	for i, g := range c.gidx {
		if g != f.GlobalIdx[i] {
			return false
		}
	}
	return true
}

// Assemble is AssembleDegraded through the contribution cache: identical
// arguments, identical semantics, bit-identical output.
func (a *IncrementalAssembler) Assemble(dec *fragment.Decomposition, massesAMU []float64, frags []*FragmentData, withAlpha bool, failed []int) (*Global, error) {
	if len(frags) != len(dec.Fragments) {
		return nil, fmt.Errorf("hessian: %d fragment data for %d fragments", len(frags), len(dec.Fragments))
	}
	allowMissing := make(map[int]bool, len(failed))
	for _, fi := range failed {
		if fi < 0 || fi >= len(dec.Fragments) {
			return nil, fmt.Errorf("hessian: failed fragment index %d out of range", fi)
		}
		allowMissing[fi] = true
	}
	var dropped []int
	natoms := len(massesAMU)
	n3 := 3 * natoms
	massesAU := make([]float64, natoms)
	for i, m := range massesAMU {
		massesAU[i] = m * constants.AMUToElectronMass
	}

	b := NewBuilder(n3)
	var dAlpha [6][]float64
	if withAlpha {
		for c := range dAlpha {
			dAlpha[c] = make([]float64, n3)
		}
	}
	var dDip [3][]float64
	for k := range dDip {
		dDip[k] = make([]float64, n3)
	}
	a.Reused, a.Rebuilt = 0, 0
	next := make(map[*FragmentData]*fragContrib, len(frags))
	for fi := range dec.Fragments {
		f := &dec.Fragments[fi]
		data := frags[fi]
		if data == nil {
			if allowMissing[fi] {
				dropped = append(dropped, fi)
				continue
			}
			return nil, fmt.Errorf("hessian: missing data for fragment %d", fi)
		}
		c := a.cache[data]
		if c != nil && c.usable(f, withAlpha) {
			a.Reused++
		} else {
			c = buildContrib(f, data, withAlpha)
			a.Rebuilt++
		}
		next[data] = c
		for k := range c.vals {
			b.Add(int(c.rows[k]), int(c.cols[k]), c.vals[k])
		}
		for k, gi := range c.vecIdx {
			if withAlpha {
				for comp := 0; comp < 6; comp++ {
					dAlpha[comp][gi] += c.alpha[comp][k]
				}
			}
			if c.hasDip {
				for dk := 0; dk < 3; dk++ {
					dDip[dk][gi] += c.dip[dk][k]
				}
			}
		}
	}
	a.cache = next

	sqrtM := make([]float64, n3)
	for at := 0; at < natoms; at++ {
		s := sqrtAU(massesAU[at])
		sqrtM[3*at] = s
		sqrtM[3*at+1] = s
		sqrtM[3*at+2] = s
	}
	b.ScaleRowsCols(sqrtM)
	sort.Ints(dropped)
	g := &Global{H: b.Build(), Masses: massesAU, Dropped: dropped}
	if withAlpha {
		for c := 0; c < 6; c++ {
			for i := 0; i < n3; i++ {
				dAlpha[c][i] /= sqrtM[i]
			}
		}
		g.DAlpha = dAlpha
	}
	for k := 0; k < 3; k++ {
		for i := 0; i < n3; i++ {
			dDip[k][i] /= sqrtM[i]
		}
	}
	g.DDipole = dDip
	return g, nil
}
