// Package hessian computes per-fragment Hessians and polarizability
// derivatives through the paper's displacement loop — each displacement is
// one worker job: an SCF ground state, analytic forces, and a DFPT
// polarizability at the displaced geometry — and assembles the signed
// fragment contributions (Eq. 1) into the global sparse mass-weighted
// Hessian and the global ∂α/∂ξ vectors that feed the Raman solver.
package hessian

import (
	"fmt"
	"math"
	"sort"

	"qframan/internal/constants"
	"qframan/internal/dfpt"
	"qframan/internal/fragment"
	"qframan/internal/geom"
	"qframan/internal/linalg"
	"qframan/internal/obs"
	"qframan/internal/scf"
)

// DefaultStep is the finite-difference displacement in bohr.
const DefaultStep = 5e-3

// AlphaComponents enumerates the six independent polarizability components
// in the order (xx, yy, zz, xy, xz, yz).
var AlphaComponents = [6][2]int{{0, 0}, {1, 1}, {2, 2}, {0, 1}, {0, 2}, {1, 2}}

// DisplacementResult is the output of one worker job: forces, dipole
// moment, and polarizability at a single displaced geometry.
type DisplacementResult struct {
	Atom, Axis int
	Sign       int // +1 or −1
	Forces     []geom.Vec3
	Dipole     geom.Vec3
	Alpha      [3][3]float64
}

// JobOptions bundles the solver settings of a displacement job.
type JobOptions struct {
	Step float64
	SCF  scf.Options
	DFPT dfpt.Options
	// SkipAlpha disables the DFPT part (pure Hessian runs).
	SkipAlpha bool
	// Obs carries the observability handles of the executing attempt;
	// RunDisplacement and SolveReference derive the SCF/DFPT scopes from it.
	// Execution-only: excluded from the store's content fingerprint.
	Obs obs.Scope
}

// DefaultJobOptions returns production settings (γ-mode DFPT for speed and
// variational consistency; the grid mode is exercised by the performance
// benchmarks).
func DefaultJobOptions() JobOptions {
	return JobOptions{
		Step: DefaultStep,
		SCF:  scf.DefaultOptions(),
		DFPT: dfpt.DefaultOptions(),
	}
}

// RunDisplacement executes one worker job on the fragment model. Set
// opt.SCF.InitDeltaQ to the reference geometry's converged charges to
// warm-start the displaced SCF (the displacement is tiny, so the charges
// barely move — this is the displacement loop's dominant speedup).
func RunDisplacement(m *scf.Model, atom, axis, sign int, opt JobOptions) (*DisplacementResult, error) {
	if sign != 1 && sign != -1 {
		return nil, fmt.Errorf("hessian: sign must be ±1")
	}
	dsc, dspan := opt.Obs.Begin("disp", "disp",
		obs.A("atom", int64(atom)), obs.A("axis", int64(axis)), obs.A("sign", int64(sign)))
	defer dspan.End()
	opt.SCF.Obs = dsc
	opt.DFPT.Obs = dsc
	md := m.Displaced(atom, axis, float64(sign)*opt.Step)
	ground, err := md.SolveSCF(opt.SCF)
	if err != nil {
		return nil, fmt.Errorf("hessian: displaced SCF (atom %d axis %d sign %+d): %w", atom, axis, sign, err)
	}
	out := &DisplacementResult{
		Atom: atom, Axis: axis, Sign: sign,
		Forces: md.Forces(ground),
		Dipole: md.Dipole(ground),
	}
	if !opt.SkipAlpha {
		resp, err := dfpt.Polarizability(md, ground, opt.DFPT)
		if err != nil {
			return nil, fmt.Errorf("hessian: displaced DFPT (atom %d axis %d sign %+d): %w", atom, axis, sign, err)
		}
		out.Alpha = resp.Alpha
	}
	return out, nil
}

// FragmentData is the per-fragment output of the displacement loop.
type FragmentData struct {
	// Hess is the 3N×3N Cartesian Hessian (hartree/bohr²), symmetrized.
	Hess *linalg.Matrix
	// DAlpha[c][3a+d] = ∂α_c/∂r_{a,d} (a.u.) for component c of
	// AlphaComponents.
	DAlpha [6][]float64
	// DDipole[k][3a+d] = ∂μ_k/∂r_{a,d} (a.u.) — the IR analogue of DAlpha,
	// essentially free from the same displacement results.
	DDipole [3][]float64
}

// NumAtoms returns the atom count implied by the data's dimensions (the
// Hessian is 3N×3N and the derivative vectors have 3N entries), or 0 when
// no block is present.
func (fd *FragmentData) NumAtoms() int {
	if fd == nil {
		return 0
	}
	switch {
	case fd.Hess != nil:
		return fd.Hess.Rows / 3
	case fd.DAlpha[0] != nil:
		return len(fd.DAlpha[0]) / 3
	case fd.DDipole[0] != nil:
		return len(fd.DDipole[0]) / 3
	}
	return 0
}

// BitEqual reports whether two fragment data are identical to the last
// float64 bit, including the presence pattern of optional blocks. The
// checkpoint codec and the crash-resume tests rely on this strict notion of
// equality: a resumed run must reproduce an uninterrupted run exactly.
func (fd *FragmentData) BitEqual(o *FragmentData) bool {
	if fd == nil || o == nil {
		return fd == o
	}
	if (fd.Hess == nil) != (o.Hess == nil) {
		return false
	}
	if fd.Hess != nil {
		if fd.Hess.Rows != o.Hess.Rows || fd.Hess.Cols != o.Hess.Cols {
			return false
		}
		for i, v := range fd.Hess.Data {
			if math.Float64bits(v) != math.Float64bits(o.Hess.Data[i]) {
				return false
			}
		}
	}
	for c := range fd.DAlpha {
		if !bitEqualSlice(fd.DAlpha[c], o.DAlpha[c]) {
			return false
		}
	}
	for k := range fd.DDipole {
		if !bitEqualSlice(fd.DDipole[k], o.DDipole[k]) {
			return false
		}
	}
	return true
}

func bitEqualSlice(a, b []float64) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if math.Float64bits(v) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// Validate scans the fragment data for NaN or Inf entries — a diverged
// SCF/DFPT response that slipped through the solvers' own checks, or an
// injected divergence from the chaos harness. A nil receiver and nil
// sub-fields are accepted (test fakes and Hessian-only runs omit pieces).
func (fd *FragmentData) Validate() error {
	if fd == nil {
		return nil
	}
	if fd.Hess != nil {
		for r := 0; r < fd.Hess.Rows; r++ {
			for c := 0; c < fd.Hess.Cols; c++ {
				if v := fd.Hess.At(r, c); math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("hessian: non-finite Hessian entry (%d,%d) = %v", r, c, v)
				}
			}
		}
	}
	for comp, d := range fd.DAlpha {
		for i, v := range d {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("hessian: non-finite ∂α component %d entry %d = %v", comp, i, v)
			}
		}
	}
	for k, d := range fd.DDipole {
		for i, v := range d {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("hessian: non-finite ∂μ component %d entry %d = %v", k, i, v)
			}
		}
	}
	return nil
}

// BuildFragmentData assembles finite differences from the 6N displacement
// results of one fragment (each coordinate displaced by ±Step).
func BuildFragmentData(natoms int, results []*DisplacementResult, step float64, withAlpha bool) (*FragmentData, error) {
	n3 := 3 * natoms
	if len(results) != 2*n3 {
		return nil, fmt.Errorf("hessian: got %d displacement results, want %d", len(results), 2*n3)
	}
	// Index results by (coordinate, sign).
	plus := make([]*DisplacementResult, n3)
	minus := make([]*DisplacementResult, n3)
	for _, r := range results {
		c := 3*r.Atom + r.Axis
		if c < 0 || c >= n3 {
			return nil, fmt.Errorf("hessian: result for invalid coordinate %d", c)
		}
		if r.Sign > 0 {
			plus[c] = r
		} else {
			minus[c] = r
		}
	}
	for c := 0; c < n3; c++ {
		if plus[c] == nil || minus[c] == nil {
			return nil, fmt.Errorf("hessian: missing displacement results for coordinate %d", c)
		}
	}

	fd := &FragmentData{Hess: linalg.NewMatrix(n3, n3)}
	for c := 0; c < n3; c++ {
		fp, fm := plus[c].Forces, minus[c].Forces
		for b := 0; b < natoms; b++ {
			df := fp[b].Sub(fm[b]).Scale(1 / (2 * step))
			// H[row][c] = ∂²E/∂r_row∂r_c = −∂F_row/∂r_c.
			fd.Hess.Set(3*b+0, c, -df.X)
			fd.Hess.Set(3*b+1, c, -df.Y)
			fd.Hess.Set(3*b+2, c, -df.Z)
		}
	}
	fd.Hess.Symmetrize()

	if withAlpha {
		for comp, ij := range AlphaComponents {
			fd.DAlpha[comp] = make([]float64, n3)
			for c := 0; c < n3; c++ {
				fd.DAlpha[comp][c] = (plus[c].Alpha[ij[0]][ij[1]] - minus[c].Alpha[ij[0]][ij[1]]) / (2 * step)
			}
		}
	}
	for k := 0; k < 3; k++ {
		fd.DDipole[k] = make([]float64, n3)
	}
	for c := 0; c < n3; c++ {
		d := plus[c].Dipole.Sub(minus[c].Dipole).Scale(1 / (2 * step))
		fd.DDipole[0][c] = d.X
		fd.DDipole[1][c] = d.Y
		fd.DDipole[2][c] = d.Z
	}
	return fd, nil
}

// SmearingRungs is the electronic-temperature escalation ladder used when a
// fragment fails to converge: near-metallic fragments whose ground state
// converges can still have a divergent or glacial self-consistent response,
// and more smearing regularizes both. All displacements of a fragment are
// always computed at one rung, keeping every finite difference on a single
// consistent free-energy surface.
func SmearingRungs(base float64) []float64 {
	if base <= 0 {
		base = 0.002
	}
	return []float64{base, 2.5 * base, 5 * base, 10 * base, 25 * base}
}

// ComputeFragment runs the full displacement loop of one fragment serially,
// escalating the smearing rung when any part of the fragment fails to
// converge. The parallel runtime (internal/sched) distributes the same jobs
// across workers instead.
func ComputeFragment(f *fragment.Fragment, opt JobOptions) (*FragmentData, error) {
	m, err := ModelForFragment(f)
	if err != nil {
		return nil, err
	}
	var firstErr error
	rungs := SmearingRungs(opt.SCF.Smearing)
	for ri, sigma := range rungs {
		o := opt
		o.SCF.Smearing = sigma
		data, err := computeFragmentOnce(f, m, o, ri == len(rungs)-1)
		if err == nil {
			return data, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, fmt.Errorf("hessian: fragment %d failed at every smearing rung: %w", f.ID, firstErr)
}

func computeFragmentOnce(f *fragment.Fragment, m *scf.Model, opt JobOptions, lastRung bool) (*FragmentData, error) {
	refOpt, _, marginal, err := SolveReference(m, opt)
	if err != nil {
		return nil, err
	}
	if marginal && !lastRung {
		return nil, fmt.Errorf("hessian: marginal response at σ=%g; escalating", opt.SCF.Smearing)
	}
	opt = *refOpt
	natoms := f.NumAtoms()
	results := make([]*DisplacementResult, 0, 6*natoms)
	for a := 0; a < natoms; a++ {
		for d := 0; d < 3; d++ {
			for _, sign := range [2]int{1, -1} {
				r, err := RunDisplacement(m, a, d, sign, opt)
				if err != nil {
					return nil, err
				}
				results = append(results, r)
			}
		}
	}
	return BuildFragmentData(natoms, results, opt.Step, !opt.SkipAlpha)
}

// SolveReference runs the fragment's reference SCF (and DFPT unless
// SkipAlpha) at the options' smearing and returns options carrying the
// warm-start data (reference charges, response matrices, working response
// mixing) for the displaced worker jobs, plus the reference SCF result
// itself — the trajectory engine keeps its converged charges and iteration
// count to seed and account the same fragment's next frame. The marginal
// flag reports that the response only converged with heavy damping or very
// many cycles — a strong predictor that displaced geometries will diverge,
// so callers should prefer the next smearing rung when one is available.
func SolveReference(m *scf.Model, opt JobOptions) (*JobOptions, *scf.Result, bool, error) {
	o := opt
	if o.SCF.Smearing <= 0 {
		o.SCF.Smearing = 0.002
	}
	// Reference solves appear as direct scf/dfpt children of the attempt
	// span (displaced solves sit under a "disp" span instead).
	o.SCF.Obs = opt.Obs
	o.DFPT.Obs = opt.Obs
	ref, err := m.SolveSCF(o.SCF)
	if err != nil {
		return nil, nil, false, fmt.Errorf("hessian: reference SCF: %w", err)
	}
	o.SCF.InitDeltaQ = ref.DeltaQ
	marginal := false
	if !o.SkipAlpha {
		refResp, err := dfpt.Polarizability(m, ref, o.DFPT)
		if err != nil {
			return nil, nil, false, fmt.Errorf("hessian: reference DFPT: %w", err)
		}
		o.DFPT.InitP1 = refResp.P1
		// Skip mixing rungs the reference already proved divergent.
		o.DFPT.Mixing = refResp.MixingUsed
		marginal = refResp.MixingUsed < 0.9*opt.DFPT.Mixing || refResp.Cycles > 2*opt.DFPT.MaxIter
	}
	return &o, ref, marginal, nil
}

// ModelForFragment builds the SCF model of a fragment (positions are Å in
// the fragment, as extracted from the structure) and calibrates the
// reference potential so the fragment geometry is a stationary point — a
// prerequisite for rotation-clean finite-difference Hessians.
func ModelForFragment(f *fragment.Fragment) (*scf.Model, error) {
	m, err := scf.NewModel(f.Els, f.Pos)
	if err != nil {
		return nil, fmt.Errorf("hessian: fragment %d (%s): %w", f.ID, f.Kind, err)
	}
	if err := m.CalibrateRestForces(scf.DefaultOptions()); err != nil {
		return nil, fmt.Errorf("hessian: fragment %d (%s): %w", f.ID, f.Kind, err)
	}
	return m, nil
}

// Global collects the assembled whole-system quantities.
type Global struct {
	// H is the sparse mass-weighted Hessian (atomic units: eigenvalues are
	// squared angular frequencies).
	H *Sparse
	// DAlpha[c] is the mass-weighted polarizability derivative vector
	// ∂α_c/∂ξ for component c.
	DAlpha [6][]float64
	// DDipole[k] is the mass-weighted dipole derivative vector ∂μ_k/∂ξ
	// (drives IR intensities).
	DDipole [3][]float64
	// Masses are the per-atom masses in electron masses.
	Masses []float64
	// Dropped lists the fragments (decomposition indices, ascending) whose
	// signed Eq. 1 terms are missing from this assembly — the fail-soft
	// ledger of a degraded run. Empty for a complete assembly.
	Dropped []int
}

// Assemble combines per-fragment data with the Eq. 1 coefficients into the
// global mass-weighted Hessian and ∂α/∂ξ vectors. massesAMU are per-atom
// masses in amu (as returned by structure.System.Masses); frags[i] must
// correspond to dec.Fragments[i]. Cap-hydrogen rows (GlobalIdx −1) are
// dropped — their contributions cancel between the positively and negatively
// signed terms of the combination.
func Assemble(dec *fragment.Decomposition, massesAMU []float64, frags []*FragmentData, withAlpha bool) (*Global, error) {
	return AssembleDegraded(dec, massesAMU, frags, withAlpha, nil)
}

// AssembleDegraded is Assemble with a fail-soft allowance: fragments listed
// in failed may have nil data — their signed Eq. 1 terms are dropped from
// the sums and recorded in Global.Dropped — so a run that lost K fragments
// still yields a spectrum with exactly-known missing contributions. A nil
// entry for a fragment *not* in failed is still an error: silent data loss
// must never assemble.
func AssembleDegraded(dec *fragment.Decomposition, massesAMU []float64, frags []*FragmentData, withAlpha bool, failed []int) (*Global, error) {
	if len(frags) != len(dec.Fragments) {
		return nil, fmt.Errorf("hessian: %d fragment data for %d fragments", len(frags), len(dec.Fragments))
	}
	allowMissing := make(map[int]bool, len(failed))
	for _, fi := range failed {
		if fi < 0 || fi >= len(dec.Fragments) {
			return nil, fmt.Errorf("hessian: failed fragment index %d out of range", fi)
		}
		allowMissing[fi] = true
	}
	var dropped []int
	natoms := len(massesAMU)
	n3 := 3 * natoms
	massesAU := make([]float64, natoms)
	for i, m := range massesAMU {
		massesAU[i] = m * constants.AMUToElectronMass
	}

	b := NewBuilder(n3)
	var dAlpha [6][]float64
	if withAlpha {
		for c := range dAlpha {
			dAlpha[c] = make([]float64, n3)
		}
	}
	var dDip [3][]float64
	for k := range dDip {
		dDip[k] = make([]float64, n3)
	}
	for fi := range dec.Fragments {
		f := &dec.Fragments[fi]
		data := frags[fi]
		if data == nil {
			if allowMissing[fi] {
				dropped = append(dropped, fi)
				continue
			}
			return nil, fmt.Errorf("hessian: missing data for fragment %d", fi)
		}
		for la, ga := range f.GlobalIdx {
			if ga < 0 {
				continue
			}
			for lb, gb := range f.GlobalIdx {
				if gb < 0 {
					continue
				}
				for da := 0; da < 3; da++ {
					for db := 0; db < 3; db++ {
						v := f.Coeff * data.Hess.At(3*la+da, 3*lb+db)
						if v != 0 {
							b.Add(3*ga+da, 3*gb+db, v)
						}
					}
				}
			}
			if withAlpha {
				for c := 0; c < 6; c++ {
					for da := 0; da < 3; da++ {
						dAlpha[c][3*ga+da] += f.Coeff * data.DAlpha[c][3*la+da]
					}
				}
			}
			if data.DDipole[0] != nil {
				for k := 0; k < 3; k++ {
					for da := 0; da < 3; da++ {
						dDip[k][3*ga+da] += f.Coeff * data.DDipole[k][3*la+da]
					}
				}
			}
		}
	}

	// Mass weighting: H_mw = M^{-1/2} H M^{-1/2}, d_mw = M^{-1/2} d.
	sqrtM := make([]float64, n3)
	for a := 0; a < natoms; a++ {
		s := sqrtAU(massesAU[a])
		sqrtM[3*a] = s
		sqrtM[3*a+1] = s
		sqrtM[3*a+2] = s
	}
	b.ScaleRowsCols(sqrtM)
	sort.Ints(dropped)
	g := &Global{H: b.Build(), Masses: massesAU, Dropped: dropped}
	if withAlpha {
		for c := 0; c < 6; c++ {
			for i := 0; i < n3; i++ {
				dAlpha[c][i] /= sqrtM[i]
			}
		}
		g.DAlpha = dAlpha
	}
	for k := 0; k < 3; k++ {
		for i := 0; i < n3; i++ {
			dDip[k][i] /= sqrtM[i]
		}
	}
	g.DDipole = dDip
	return g, nil
}

func sqrtAU(m float64) float64 {
	if m <= 0 {
		panic("hessian: non-positive mass")
	}
	return math.Sqrt(m)
}

// ModelForFragmentNoCal builds the fragment model without force-balance
// calibration (diagnostics and benchmarks that only need the electronic
// problem).
func ModelForFragmentNoCal(f *fragment.Fragment) (*scf.Model, error) {
	m, err := scf.NewModel(f.Els, f.Pos)
	if err != nil {
		return nil, fmt.Errorf("hessian: fragment %d (%s): %w", f.ID, f.Kind, err)
	}
	return m, nil
}
