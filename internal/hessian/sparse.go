package hessian

import (
	"sort"

	"qframan/internal/par"
)

// Sparse is a CSR (compressed sparse row) symmetric matrix — the global
// mass-weighted Hessian. For a 100M-atom system the dense matrix would be
// 300M×300M (the paper's motivating impossibility, §IV-B); fragment locality
// makes the assembled matrix sparse with O(1) nonzeros per row, so the
// Lanczos solver's matrix–vector products are linear in system size.
type Sparse struct {
	N      int
	RowPtr []int32
	Col    []int32
	Val    []float64
}

// Dim returns the matrix dimension.
func (s *Sparse) Dim() int { return s.N }

// NNZ returns the number of stored nonzeros.
func (s *Sparse) NNZ() int { return len(s.Val) }

// MulVec computes y = S·x, row-sharded across the kernel pool. Each row
// accumulates in four independent chains over its column range — the fixed
// association depends only on the row's nonzero count, so results are
// bit-identical at any width — the property the Lanczos recurrence's
// bit-reproducibility rests on.
func (s *Sparse) MulVec(x, y []float64) {
	if len(x) != s.N || len(y) != s.N {
		panic("hessian: MulVec dimension mismatch")
	}
	par.For("spmv", s.N, 2048, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			k, end := s.RowPtr[i], s.RowPtr[i+1]
			var s0, s1, s2, s3 float64
			for ; k+3 < end; k += 4 {
				s0 += s.Val[k] * x[s.Col[k]]
				s1 += s.Val[k+1] * x[s.Col[k+1]]
				s2 += s.Val[k+2] * x[s.Col[k+2]]
				s3 += s.Val[k+3] * x[s.Col[k+3]]
			}
			var st float64
			for ; k < end; k++ {
				st += s.Val[k] * x[s.Col[k]]
			}
			y[i] = ((s0 + s1) + (s2 + s3)) + st
		}
	})
}

// At returns element (i,j); O(log nnz-per-row).
func (s *Sparse) At(i, j int) float64 {
	lo, hi := int(s.RowPtr[i]), int(s.RowPtr[i+1])
	k := lo + sort.Search(hi-lo, func(k int) bool { return int(s.Col[lo+k]) >= j })
	if k < hi && int(s.Col[k]) == j {
		return s.Val[k]
	}
	return 0
}

// MaxAbsAsymmetry returns max |S_ij − S_ji| — a health check; the assembled
// mass-weighted Hessian must be symmetric.
func (s *Sparse) MaxAbsAsymmetry() float64 {
	var worst float64
	for i := 0; i < s.N; i++ {
		for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
			j := int(s.Col[k])
			d := s.Val[k] - s.At(j, i)
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// Builder accumulates COO triplets and compresses them to CSR.
type Builder struct {
	n    int
	rows [][]entry
}

type entry struct {
	col int32
	val float64
}

// NewBuilder creates a builder for an n×n matrix.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, rows: make([][]entry, n)}
}

// Add accumulates v into (i,j).
func (b *Builder) Add(i, j int, v float64) {
	b.rows[i] = append(b.rows[i], entry{col: int32(j), val: v})
}

// ScaleRowsCols applies S ← D⁻¹·S·D⁻¹ with D = diag(d): every accumulated
// entry (i,j) is divided by d[i]·d[j]. Used for mass weighting.
func (b *Builder) ScaleRowsCols(d []float64) {
	for i := range b.rows {
		for k := range b.rows[i] {
			e := &b.rows[i][k]
			e.val /= d[i] * d[e.col]
		}
	}
}

// Build merges duplicate entries and returns the CSR matrix.
func (b *Builder) Build() *Sparse {
	s := &Sparse{N: b.n, RowPtr: make([]int32, b.n+1)}
	for i, row := range b.rows {
		sort.Slice(row, func(a, c int) bool { return row[a].col < row[c].col })
		for k := 0; k < len(row); {
			j := row[k].col
			var acc float64
			for ; k < len(row) && row[k].col == j; k++ {
				acc += row[k].val
			}
			if acc != 0 {
				s.Col = append(s.Col, j)
				s.Val = append(s.Val, acc)
			}
		}
		s.RowPtr[i+1] = int32(len(s.Col))
	}
	return s
}
