package hessian

import (
	"math"
	"strings"
	"testing"

	"qframan/internal/constants"
	"qframan/internal/fragment"
	"qframan/internal/linalg"
)

// twoAtomDecomposition maps two single-atom fragments onto a two-atom
// system — the smallest assembly where dropping one fragment's term is
// visible in the global Hessian.
func twoAtomDecomposition() *fragment.Decomposition {
	mk := func(id, atom int) fragment.Fragment {
		return fragment.Fragment{
			ID:        id,
			Els:       []constants.Element{constants.O},
			GlobalIdx: []int{atom},
			NumReal:   1,
			Coeff:     1,
		}
	}
	return &fragment.Decomposition{Fragments: []fragment.Fragment{mk(0, 0), mk(1, 1)}}
}

func unitFragmentData(scale float64) *FragmentData {
	h := linalg.NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		h.Set(i, i, scale)
	}
	fd := &FragmentData{Hess: h}
	for c := range fd.DAlpha {
		fd.DAlpha[c] = []float64{scale, scale, scale}
	}
	for k := range fd.DDipole {
		fd.DDipole[k] = []float64{scale, scale, scale}
	}
	return fd
}

func TestAssembleDegradedDropsExactlyTheFailedTerms(t *testing.T) {
	dec := twoAtomDecomposition()
	masses := []float64{constants.O.MassAMU(), constants.O.MassAMU()}

	full, err := Assemble(dec, masses, []*FragmentData{unitFragmentData(2), unitFragmentData(3)}, true)
	if err != nil {
		t.Fatal(err)
	}
	deg, err := AssembleDegraded(dec, masses, []*FragmentData{unitFragmentData(2), nil}, true, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(deg.Dropped) != 1 || deg.Dropped[0] != 1 {
		t.Fatalf("Dropped = %v, want [1]", deg.Dropped)
	}
	if len(full.Dropped) != 0 {
		t.Fatalf("complete assembly reported drops: %v", full.Dropped)
	}
	// Atom 0's block must be untouched, atom 1's block empty.
	for d := 0; d < 3; d++ {
		if deg.H.At(d, d) != full.H.At(d, d) {
			t.Fatalf("surviving block entry (%d,%d) changed: %v vs %v", d, d, deg.H.At(d, d), full.H.At(d, d))
		}
		if v := deg.H.At(3+d, 3+d); v != 0 {
			t.Fatalf("dropped fragment left Hessian residue at (%d,%d): %v", 3+d, 3+d, v)
		}
		if v := deg.DAlpha[0][3+d]; v != 0 {
			t.Fatalf("dropped fragment left ∂α residue: %v", v)
		}
		if v := deg.DDipole[0][3+d]; v != 0 {
			t.Fatalf("dropped fragment left ∂μ residue: %v", v)
		}
	}
}

func TestAssembleStillRejectsSilentLoss(t *testing.T) {
	dec := twoAtomDecomposition()
	masses := []float64{constants.O.MassAMU(), constants.O.MassAMU()}
	// nil data without a matching failed entry must stay an error.
	if _, err := Assemble(dec, masses, []*FragmentData{unitFragmentData(1), nil}, false); err == nil {
		t.Fatal("silent data loss assembled")
	}
	if _, err := AssembleDegraded(dec, masses, []*FragmentData{unitFragmentData(1), nil}, false, []int{0}); err == nil {
		t.Fatal("nil data for fragment 1 allowed by failed=[0]")
	}
	if _, err := AssembleDegraded(dec, masses, []*FragmentData{unitFragmentData(1), nil}, false, []int{5}); err == nil {
		t.Fatal("out-of-range failed index accepted")
	}
}

func TestValidateCatchesNonFinite(t *testing.T) {
	if err := (*FragmentData)(nil).Validate(); err != nil {
		t.Fatal("nil data must validate (test fakes omit everything)")
	}
	if err := (&FragmentData{}).Validate(); err != nil {
		t.Fatal("empty data must validate")
	}
	fd := unitFragmentData(1)
	if err := fd.Validate(); err != nil {
		t.Fatalf("healthy data rejected: %v", err)
	}
	fd.Hess.Set(1, 2, math.NaN())
	if err := fd.Validate(); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("NaN Hessian not caught: %v", err)
	}
	fd = unitFragmentData(1)
	fd.DAlpha[3][1] = math.Inf(1)
	if err := fd.Validate(); err == nil {
		t.Fatal("Inf ∂α not caught")
	}
	fd = unitFragmentData(1)
	fd.DDipole[2][0] = math.NaN()
	if err := fd.Validate(); err == nil {
		t.Fatal("NaN ∂μ not caught")
	}
}
