package linalg

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ for a
// symmetric positive-definite matrix. The input is not modified.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		panic("linalg: Cholesky on non-square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			lrow := l.Row(i)
			jrow := l.Row(j)
			for k := 0; k < j; k++ {
				s -= lrow[k] * jrow[k]
			}
			if i == j {
				if s <= 0 {
					return nil, ErrNotPositiveDefinite
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// ForwardSolve solves L·x = b for lower-triangular L, overwriting nothing.
func ForwardSolve(l *Matrix, b []float64) []float64 {
	n := l.Rows
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
	return x
}

// BackSolveT solves Lᵀ·x = b for lower-triangular L.
func BackSolveT(l *Matrix, b []float64) []float64 {
	n := l.Rows
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// GeneralizedEigSym solves the symmetric-definite generalized eigenproblem
// H·C = S·C·diag(ε), the central eigenproblem of the SCF engine, by the
// standard Cholesky reduction: S = L·Lᵀ, H̃ = L⁻¹·H·L⁻ᵀ, H̃·y = ε·y,
// C = L⁻ᵀ·y. Eigenvalues are ascending; column j of C is the S-orthonormal
// eigenvector for ε[j] (Cᵀ·S·C = I).
func GeneralizedEigSym(h, s *Matrix) ([]float64, *Matrix, error) {
	if h.Rows != h.Cols || s.Rows != s.Cols || h.Rows != s.Rows {
		panic("linalg: GeneralizedEigSym shape mismatch")
	}
	n := h.Rows
	l, err := Cholesky(s)
	if err != nil {
		return nil, nil, err
	}
	// Compute H̃ = L⁻¹ H L⁻ᵀ column by column: first W = L⁻¹ H
	// (forward solve per column), then H̃ = W L⁻ᵀ i.e. H̃ᵀ = L⁻¹ Wᵀ.
	w := NewMatrix(n, n)
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			col[i] = h.At(i, j)
		}
		x := ForwardSolve(l, col)
		for i := 0; i < n; i++ {
			w.Set(i, j, x[i])
		}
	}
	ht := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		copy(col, w.Row(j)) // row j of W = column j of Wᵀ
		x := ForwardSolve(l, col)
		for i := 0; i < n; i++ {
			ht.Set(j, i, x[i]) // (L⁻¹Wᵀ)ᵀ row j
		}
	}
	ht.Symmetrize()
	eps, y := EigSym(ht)
	// Back-transform eigenvectors: C = L⁻ᵀ Y, column by column.
	c := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			col[i] = y.At(i, j)
		}
		x := BackSolveT(l, col)
		for i := 0; i < n; i++ {
			c.Set(i, j, x[i])
		}
	}
	return eps, c, nil
}

// SolveLinear solves the dense linear system A·x = b by Gaussian elimination
// with partial pivoting. A and b are not modified.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols || len(b) != a.Rows {
		panic("linalg: SolveLinear shape mismatch")
	}
	n := a.Rows
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	for k := 0; k < n; k++ {
		// pivot
		p := k
		best := math.Abs(m.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(m.At(i, k)); v > best {
				best, p = v, i
			}
		}
		if best == 0 {
			return nil, errors.New("linalg: singular matrix in SolveLinear")
		}
		if p != k {
			mk, mp := m.Row(k), m.Row(p)
			for j := k; j < n; j++ {
				mk[j], mp[j] = mp[j], mk[j]
			}
			x[k], x[p] = x[p], x[k]
		}
		pivRow := m.Row(k)
		piv := pivRow[k]
		for i := k + 1; i < n; i++ {
			row := m.Row(i)
			f := row[k] / piv
			if f == 0 {
				continue
			}
			row[k] = 0
			for j := k + 1; j < n; j++ {
				row[j] -= f * pivRow[j]
			}
			x[i] -= f * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := m.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}
