// Package gemmref is the test-only reference implementation for the
// differential GEMM harness: the naive triple loop, written to be obviously
// correct and deliberately independent of internal/linalg's packed kernels
// (raw row-major slices, no shared helpers). It follows the same
// accumulation discipline the blocked kernel guarantees — one accumulator
// per output element, k ascending, alpha·s + beta·C applied once at the end,
// the beta == 0 case skipping the C term entirely — so the production kernel
// must match it bit for bit, not merely to within a tolerance.
package gemmref

// Gemm computes C = alpha·op(A)·op(B) + beta·C over row-major slices.
// a is ar×ac, b is br×bc, c is cr×cc; op is transpose when the corresponding
// trans flag is set. Shapes must agree (panics otherwise).
func Gemm(transA, transB bool, alpha float64, a []float64, ar, ac int, b []float64, br, bc int, beta float64, c []float64, cr, cc int) {
	m, k := ar, ac
	if transA {
		m, k = ac, ar
	}
	kb, n := br, bc
	if transB {
		kb, n = bc, br
	}
	if k != kb || cr != m || cc != n {
		panic("gemmref: shape mismatch")
	}
	at := func(i, kk int) float64 {
		if transA {
			return a[kk*ac+i]
		}
		return a[i*ac+kk]
	}
	bt := func(kk, j int) float64 {
		if transB {
			return b[j*bc+kk]
		}
		return b[kk*bc+j]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for kk := 0; kk < k; kk++ {
				s += at(i, kk) * bt(kk, j)
			}
			if beta == 0 {
				c[i*cc+j] = alpha * s
			} else {
				c[i*cc+j] = alpha*s + beta*c[i*cc+j]
			}
		}
	}
}
