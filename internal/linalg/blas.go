package linalg

import (
	"sync/atomic"

	"qframan/internal/par"
)

// Ops tracks BLAS-level operation counts and floating-point operation counts.
// The DFPT engine uses these counters to demonstrate the symmetry-aware
// strength reduction (paper §V-D, Fig. 6) — fewer GEMM/GEMV invocations for
// identical results — and the elastic offloading batcher uses the per-call
// FLOP estimate to group calls of similar computational strength (§V-C).
//
// Counters are updated atomically so concurrent workers can share them.
type Ops struct {
	GEMMCalls  atomic.Int64
	GEMVCalls  atomic.Int64
	FLOPs      atomic.Int64
	BatchCalls atomic.Int64 // batched-GEMM workloads issued to an accelerator
	// TransposeSkips counts GEMMs the batch planner never executed because
	// their result is the exact transpose of another call in the same batch
	// (§V-D strength reduction); the skipped FLOPs are excluded from FLOPs.
	TransposeSkips atomic.Int64
}

// Reset zeroes all counters.
func (o *Ops) Reset() {
	o.GEMMCalls.Store(0)
	o.GEMVCalls.Store(0)
	o.FLOPs.Store(0)
	o.BatchCalls.Store(0)
	o.TransposeSkips.Store(0)
}

// Snapshot returns the current counter values.
func (o *Ops) Snapshot() (gemm, gemv, flops, batches int64) {
	return o.GEMMCalls.Load(), o.GEMVCalls.Load(), o.FLOPs.Load(), o.BatchCalls.Load()
}

// DefaultOps is the process-wide counter set used when no explicit Ops is
// supplied.
var DefaultOps Ops

// GemmFLOPs returns the canonical FLOP count of a GEMM of shape (m×k)·(k×n).
func GemmFLOPs(m, k, n int) int64 { return 2 * int64(m) * int64(k) * int64(n) }

// gemmMinRows returns the minimum output-row chunk of a parallel GEMM so a
// chunk carries at least ~16 kFLOP (a few µs of fused multiply-adds) —
// below that the dispatch overhead beats the win, above it even the small
// per-fragment SCF/DFPT matrices (nao ≈ 10–30) split into a couple of
// chunks. Pure function of the problem shape, so the chunk layout (and with
// it bit-determinism) never depends on the worker count.
func gemmMinRows(k, n int) int {
	rowFLOPs := 2 * k * n
	if rowFLOPs <= 0 {
		return 1
	}
	return 1 + 16*1024/rowFLOPs
}

// gemmParName labels the par region per trans case so the observability
// breakdown keeps its historical kernel names.
func gemmParName(transA, transB bool) string {
	switch {
	case !transA && !transB:
		return "gemm_nn"
	case transA && !transB:
		return "gemm_tn"
	case !transA && transB:
		return "gemm_nt"
	default:
		return "gemm_tt"
	}
}

// Gemm computes C = alpha·op(A)·op(B) + beta·C where op is identity or
// transpose according to transA/transB. Shapes are validated against C.
// All four trans cases run the packed blocked kernel (block.go): op(A) and
// op(B) are packed into 4×4 micro-tile panels and each output element
// accumulates its k terms in ascending order in a single chain, so results
// are bit-identical at any kernel width, with batching on or off, and to the
// naive triple-loop reference. Row-panel chunks shard across the par pool
// and double as cache tiles.
func Gemm(transA, transB bool, alpha float64, a, b *Matrix, beta float64, c *Matrix, ops *Ops) {
	am, ak := a.Rows, a.Cols
	if transA {
		am, ak = a.Cols, a.Rows
	}
	bk, bn := b.Rows, b.Cols
	if transB {
		bk, bn = b.Cols, b.Rows
	}
	if ak != bk || c.Rows != am || c.Cols != bn {
		panic("linalg: Gemm shape mismatch")
	}
	if ops == nil {
		ops = &DefaultOps
	}
	ops.GEMMCalls.Add(1)
	ops.FLOPs.Add(GemmFLOPs(am, ak, bn))

	gemmBlocked(transA, transB, alpha, a, b, beta, c, am, ak, bn,
		gemmParName(transA, transB), false)
}

// MatMul returns op(A)·op(B) as a new matrix (alpha=1, beta=0).
func MatMul(transA, transB bool, a, b *Matrix, ops *Ops) *Matrix {
	am := a.Rows
	if transA {
		am = a.Cols
	}
	bn := b.Cols
	if transB {
		bn = b.Rows
	}
	c := NewMatrix(am, bn)
	Gemm(transA, transB, 1, a, b, 0, c, ops)
	return c
}

// Gemv computes y = alpha·op(A)·x + beta·y.
func Gemv(trans bool, alpha float64, a *Matrix, x []float64, beta float64, y []float64, ops *Ops) {
	m, n := a.Rows, a.Cols
	if trans {
		m, n = n, m
	}
	if len(x) != n || len(y) != m {
		panic("linalg: Gemv shape mismatch")
	}
	if ops == nil {
		ops = &DefaultOps
	}
	ops.GEMVCalls.Add(1)
	ops.FLOPs.Add(2 * int64(m) * int64(n))

	if beta == 0 {
		for i := range y {
			y[i] = 0
		}
	} else if beta != 1 {
		Scal(beta, y)
	}
	minRows := 1 + 16*1024/(n+1)
	if !trans {
		par.For("gemv_n", m, minRows, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				y[i] += alpha * Dot(a.Row(i), x)
			}
		})
	} else {
		// y[j] += alpha * Σ_k x[k]·A[k][j]; sharded over output index j,
		// with the same ascending-k accumulation and x[k]==0 skip as the
		// serial scatter form, so results match it bit for bit.
		par.For("gemv_t", m, minRows, func(lo, hi int) {
			for k := 0; k < a.Rows; k++ {
				v := alpha * x[k]
				if v == 0 {
					continue
				}
				row := a.Row(k)
				for j := lo; j < hi; j++ {
					y[j] += v * row[j]
				}
			}
		})
	}
}
