package linalg

import "sync/atomic"

// Ops tracks BLAS-level operation counts and floating-point operation counts.
// The DFPT engine uses these counters to demonstrate the symmetry-aware
// strength reduction (paper §V-D, Fig. 6) — fewer GEMM/GEMV invocations for
// identical results — and the elastic offloading batcher uses the per-call
// FLOP estimate to group calls of similar computational strength (§V-C).
//
// Counters are updated atomically so concurrent workers can share them.
type Ops struct {
	GEMMCalls  atomic.Int64
	GEMVCalls  atomic.Int64
	FLOPs      atomic.Int64
	BatchCalls atomic.Int64 // batched-GEMM workloads issued to an accelerator
}

// Reset zeroes all counters.
func (o *Ops) Reset() {
	o.GEMMCalls.Store(0)
	o.GEMVCalls.Store(0)
	o.FLOPs.Store(0)
	o.BatchCalls.Store(0)
}

// Snapshot returns the current counter values.
func (o *Ops) Snapshot() (gemm, gemv, flops, batches int64) {
	return o.GEMMCalls.Load(), o.GEMVCalls.Load(), o.FLOPs.Load(), o.BatchCalls.Load()
}

// DefaultOps is the process-wide counter set used when no explicit Ops is
// supplied.
var DefaultOps Ops

// GemmFLOPs returns the canonical FLOP count of a GEMM of shape (m×k)·(k×n).
func GemmFLOPs(m, k, n int) int64 { return 2 * int64(m) * int64(k) * int64(n) }

// Gemm computes C = alpha·op(A)·op(B) + beta·C where op is identity or
// transpose according to transA/transB. Shapes are validated against C.
// The kernel uses an ikj loop order over the untransposed layout for
// cache-friendly access.
func Gemm(transA, transB bool, alpha float64, a, b *Matrix, beta float64, c *Matrix, ops *Ops) {
	am, ak := a.Rows, a.Cols
	if transA {
		am, ak = a.Cols, a.Rows
	}
	bk, bn := b.Rows, b.Cols
	if transB {
		bk, bn = b.Cols, b.Rows
	}
	if ak != bk || c.Rows != am || c.Cols != bn {
		panic("linalg: Gemm shape mismatch")
	}
	if ops == nil {
		ops = &DefaultOps
	}
	ops.GEMMCalls.Add(1)
	ops.FLOPs.Add(GemmFLOPs(am, ak, bn))

	if beta == 0 {
		c.Zero()
	} else if beta != 1 {
		c.Scale(beta)
	}

	switch {
	case !transA && !transB:
		for i := 0; i < am; i++ {
			arow := a.Row(i)
			crow := c.Row(i)
			for k := 0; k < ak; k++ {
				v := alpha * arow[k]
				if v == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					crow[j] += v * bv
				}
			}
		}
	case transA && !transB:
		// C[i][j] += alpha * A[k][i] * B[k][j]
		for k := 0; k < ak; k++ {
			arow := a.Row(k)
			brow := b.Row(k)
			for i := 0; i < am; i++ {
				v := alpha * arow[i]
				if v == 0 {
					continue
				}
				crow := c.Row(i)
				for j, bv := range brow {
					crow[j] += v * bv
				}
			}
		}
	case !transA && transB:
		// C[i][j] += alpha * A[i][k] * B[j][k]
		for i := 0; i < am; i++ {
			arow := a.Row(i)
			crow := c.Row(i)
			for j := 0; j < bn; j++ {
				brow := b.Row(j)
				var s float64
				for k, av := range arow {
					s += av * brow[k]
				}
				crow[j] += alpha * s
			}
		}
	default: // transA && transB
		// C[i][j] += alpha * A[k][i] * B[j][k]
		for i := 0; i < am; i++ {
			crow := c.Row(i)
			for j := 0; j < bn; j++ {
				brow := b.Row(j)
				var s float64
				for k := 0; k < ak; k++ {
					s += a.Data[k*a.Cols+i] * brow[k]
				}
				crow[j] += alpha * s
			}
		}
	}
}

// MatMul returns op(A)·op(B) as a new matrix (alpha=1, beta=0).
func MatMul(transA, transB bool, a, b *Matrix, ops *Ops) *Matrix {
	am := a.Rows
	if transA {
		am = a.Cols
	}
	bn := b.Cols
	if transB {
		bn = b.Rows
	}
	c := NewMatrix(am, bn)
	Gemm(transA, transB, 1, a, b, 0, c, ops)
	return c
}

// Gemv computes y = alpha·op(A)·x + beta·y.
func Gemv(trans bool, alpha float64, a *Matrix, x []float64, beta float64, y []float64, ops *Ops) {
	m, n := a.Rows, a.Cols
	if trans {
		m, n = n, m
	}
	if len(x) != n || len(y) != m {
		panic("linalg: Gemv shape mismatch")
	}
	if ops == nil {
		ops = &DefaultOps
	}
	ops.GEMVCalls.Add(1)
	ops.FLOPs.Add(2 * int64(m) * int64(n))

	if beta == 0 {
		for i := range y {
			y[i] = 0
		}
	} else if beta != 1 {
		Scal(beta, y)
	}
	if !trans {
		for i := 0; i < m; i++ {
			y[i] += alpha * Dot(a.Row(i), x)
		}
	} else {
		for k := 0; k < a.Rows; k++ {
			v := alpha * x[k]
			if v == 0 {
				continue
			}
			row := a.Row(k)
			for j, av := range row {
				y[j] += v * av
			}
		}
	}
}
