package linalg

import (
	"sync/atomic"

	"qframan/internal/par"
)

// Ops tracks BLAS-level operation counts and floating-point operation counts.
// The DFPT engine uses these counters to demonstrate the symmetry-aware
// strength reduction (paper §V-D, Fig. 6) — fewer GEMM/GEMV invocations for
// identical results — and the elastic offloading batcher uses the per-call
// FLOP estimate to group calls of similar computational strength (§V-C).
//
// Counters are updated atomically so concurrent workers can share them.
type Ops struct {
	GEMMCalls  atomic.Int64
	GEMVCalls  atomic.Int64
	FLOPs      atomic.Int64
	BatchCalls atomic.Int64 // batched-GEMM workloads issued to an accelerator
}

// Reset zeroes all counters.
func (o *Ops) Reset() {
	o.GEMMCalls.Store(0)
	o.GEMVCalls.Store(0)
	o.FLOPs.Store(0)
	o.BatchCalls.Store(0)
}

// Snapshot returns the current counter values.
func (o *Ops) Snapshot() (gemm, gemv, flops, batches int64) {
	return o.GEMMCalls.Load(), o.GEMVCalls.Load(), o.FLOPs.Load(), o.BatchCalls.Load()
}

// DefaultOps is the process-wide counter set used when no explicit Ops is
// supplied.
var DefaultOps Ops

// GemmFLOPs returns the canonical FLOP count of a GEMM of shape (m×k)·(k×n).
func GemmFLOPs(m, k, n int) int64 { return 2 * int64(m) * int64(k) * int64(n) }

// gemmMinRows returns the minimum output-row chunk of a parallel GEMM so a
// chunk carries at least ~16 kFLOP (a few µs of fused multiply-adds) —
// below that the dispatch overhead beats the win, above it even the small
// per-fragment SCF/DFPT matrices (nao ≈ 10–30) split into a couple of
// chunks. Pure function of the problem shape, so the chunk layout (and with
// it bit-determinism) never depends on the worker count.
func gemmMinRows(k, n int) int {
	rowFLOPs := 2 * k * n
	if rowFLOPs <= 0 {
		return 1
	}
	return 1 + 16*1024/rowFLOPs
}

// Gemm computes C = alpha·op(A)·op(B) + beta·C where op is identity or
// transpose according to transA/transB. Shapes are validated against C.
// All four trans cases iterate output rows in the outer loop, so the kernel
// row-shards across the par pool; each output element accumulates its k
// terms in ascending order regardless of sharding, which keeps results
// bit-identical to the serial kernel at any width. The row chunks double as
// cache tiles: a chunk's slice of A and C stays resident while B streams.
func Gemm(transA, transB bool, alpha float64, a, b *Matrix, beta float64, c *Matrix, ops *Ops) {
	am, ak := a.Rows, a.Cols
	if transA {
		am, ak = a.Cols, a.Rows
	}
	bk, bn := b.Rows, b.Cols
	if transB {
		bk, bn = b.Cols, b.Rows
	}
	if ak != bk || c.Rows != am || c.Cols != bn {
		panic("linalg: Gemm shape mismatch")
	}
	if ops == nil {
		ops = &DefaultOps
	}
	ops.GEMMCalls.Add(1)
	ops.FLOPs.Add(GemmFLOPs(am, ak, bn))

	if beta == 0 {
		c.Zero()
	} else if beta != 1 {
		c.Scale(beta)
	}

	minRows := gemmMinRows(ak, bn)
	switch {
	case !transA && !transB:
		par.For("gemm_nn", am, minRows, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				arow := a.Row(i)
				crow := c.Row(i)
				for k := 0; k < ak; k++ {
					v := alpha * arow[k]
					if v == 0 {
						continue
					}
					brow := b.Row(k)
					for j, bv := range brow {
						crow[j] += v * bv
					}
				}
			}
		})
	case transA && !transB:
		// C[i][j] += alpha * A[k][i] * B[k][j], k ascending per element.
		par.For("gemm_tn", am, minRows, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				crow := c.Row(i)
				for k := 0; k < ak; k++ {
					v := alpha * a.Data[k*a.Cols+i]
					if v == 0 {
						continue
					}
					brow := b.Row(k)
					for j, bv := range brow {
						crow[j] += v * bv
					}
				}
			}
		})
	case !transA && transB:
		// C[i][j] += alpha * A[i][k] * B[j][k]
		par.For("gemm_nt", am, minRows, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				arow := a.Row(i)
				crow := c.Row(i)
				for j := 0; j < bn; j++ {
					brow := b.Row(j)
					var s float64
					for k, av := range arow {
						s += av * brow[k]
					}
					crow[j] += alpha * s
				}
			}
		})
	default: // transA && transB
		// C[i][j] += alpha * A[k][i] * B[j][k]
		par.For("gemm_tt", am, minRows, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				crow := c.Row(i)
				for j := 0; j < bn; j++ {
					brow := b.Row(j)
					var s float64
					for k := 0; k < ak; k++ {
						s += a.Data[k*a.Cols+i] * brow[k]
					}
					crow[j] += alpha * s
				}
			}
		})
	}
}

// MatMul returns op(A)·op(B) as a new matrix (alpha=1, beta=0).
func MatMul(transA, transB bool, a, b *Matrix, ops *Ops) *Matrix {
	am := a.Rows
	if transA {
		am = a.Cols
	}
	bn := b.Cols
	if transB {
		bn = b.Rows
	}
	c := NewMatrix(am, bn)
	Gemm(transA, transB, 1, a, b, 0, c, ops)
	return c
}

// Gemv computes y = alpha·op(A)·x + beta·y.
func Gemv(trans bool, alpha float64, a *Matrix, x []float64, beta float64, y []float64, ops *Ops) {
	m, n := a.Rows, a.Cols
	if trans {
		m, n = n, m
	}
	if len(x) != n || len(y) != m {
		panic("linalg: Gemv shape mismatch")
	}
	if ops == nil {
		ops = &DefaultOps
	}
	ops.GEMVCalls.Add(1)
	ops.FLOPs.Add(2 * int64(m) * int64(n))

	if beta == 0 {
		for i := range y {
			y[i] = 0
		}
	} else if beta != 1 {
		Scal(beta, y)
	}
	minRows := 1 + 16*1024/(n+1)
	if !trans {
		par.For("gemv_n", m, minRows, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				y[i] += alpha * Dot(a.Row(i), x)
			}
		})
	} else {
		// y[j] += alpha * Σ_k x[k]·A[k][j]; sharded over output index j,
		// with the same ascending-k accumulation and x[k]==0 skip as the
		// serial scatter form, so results match it bit for bit.
		par.For("gemv_t", m, minRows, func(lo, hi int) {
			for k := 0; k < a.Rows; k++ {
				v := alpha * x[k]
				if v == 0 {
					continue
				}
				row := a.Row(k)
				for j := lo; j < hi; j++ {
					y[j] += v * row[j]
				}
			}
		})
	}
}
