package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// checkEigenpairs verifies A·v = λ·v for every returned pair and that the
// eigenvector matrix is orthonormal.
func checkEigenpairs(t *testing.T, a *Matrix, vals []float64, vecs *Matrix, tol float64) {
	t.Helper()
	n := a.Rows
	for j := 0; j < n; j++ {
		v := make([]float64, n)
		for i := 0; i < n; i++ {
			v[i] = vecs.At(i, j)
		}
		av := make([]float64, n)
		Gemv(false, 1, a, v, 0, av, nil)
		for i := 0; i < n; i++ {
			if math.Abs(av[i]-vals[j]*v[i]) > tol {
				t.Fatalf("eigenpair %d: residual %g at row %d", j, av[i]-vals[j]*v[i], i)
			}
		}
	}
	// Orthonormality VᵀV = I.
	vtv := MatMul(true, false, vecs, vecs, nil)
	if d := vtv.MaxAbsDiff(Identity(n)); d > tol {
		t.Fatalf("eigenvectors not orthonormal: max deviation %g", d)
	}
	for j := 1; j < n; j++ {
		if vals[j] < vals[j-1] {
			t.Fatalf("eigenvalues not ascending at %d: %v > %v", j, vals[j-1], vals[j])
		}
	}
}

func TestEigSymDiagonal(t *testing.T) {
	a := NewMatrix(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, -1)
	a.Set(2, 2, 2)
	vals, vecs := EigSym(a)
	want := []float64{-1, 2, 3}
	for i, w := range want {
		if math.Abs(vals[i]-w) > 1e-13 {
			t.Fatalf("eigenvalue %d = %v, want %v", i, vals[i], w)
		}
	}
	checkEigenpairs(t, a, vals, vecs, 1e-12)
}

func TestEigSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := NewMatrixFrom(2, 2, []float64{2, 1, 1, 2})
	vals, vecs := EigSym(a)
	if math.Abs(vals[0]-1) > 1e-14 || math.Abs(vals[1]-3) > 1e-14 {
		t.Fatalf("eigenvalues %v, want [1 3]", vals)
	}
	checkEigenpairs(t, a, vals, vecs, 1e-13)
}

func TestEigSymRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 5, 10, 30, 60} {
		a := randomSymmetric(rng, n)
		vals, vecs := EigSym(a)
		checkEigenpairs(t, a, vals, vecs, 1e-9)
		// trace preserved
		var sum float64
		for _, v := range vals {
			sum += v
		}
		if math.Abs(sum-a.Trace()) > 1e-9 {
			t.Fatalf("n=%d: eigenvalue sum %v != trace %v", n, sum, a.Trace())
		}
	}
}

func TestEigSymMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomSymmetric(rng, 12)
	v1, _ := EigSym(a)
	v2, vecs2 := JacobiEig(a, 60)
	for i := range v1 {
		if math.Abs(v1[i]-v2[i]) > 1e-9 {
			t.Fatalf("eigenvalue %d: QL %v vs Jacobi %v", i, v1[i], v2[i])
		}
	}
	checkEigenpairs(t, a, v2, vecs2, 1e-8)
}

func TestEigSymTridiag(t *testing.T) {
	// Tridiagonal with d=2, e=-1 (discrete Laplacian) has analytic spectrum
	// λ_k = 2 - 2cos(kπ/(n+1)).
	n := 20
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	for i := range e {
		e[i] = -1
	}
	vals, vecs := EigSymTridiag(d, e)
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(vals[k-1]-want) > 1e-11 {
			t.Fatalf("Laplacian eigenvalue %d: got %v want %v", k, vals[k-1], want)
		}
	}
	// Build dense version and verify the eigenvectors.
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 2)
		if i+1 < n {
			a.Set(i, i+1, -1)
			a.Set(i+1, i, -1)
		}
	}
	checkEigenpairs(t, a, vals, vecs, 1e-10)
	// Eigenvalue-only path must agree.
	onlyVals := EigvalsSymTridiag(d, e)
	for i := range vals {
		if math.Abs(onlyVals[i]-vals[i]) > 1e-11 {
			t.Fatalf("EigvalsSymTridiag mismatch at %d", i)
		}
	}
}

func TestEigSymTridiagInputsPreserved(t *testing.T) {
	d := []float64{1, 2, 3}
	e := []float64{0.5, 0.25}
	d0 := append([]float64(nil), d...)
	e0 := append([]float64(nil), e...)
	EigSymTridiag(d, e)
	EigvalsSymTridiag(d, e)
	for i := range d {
		if d[i] != d0[i] {
			t.Fatal("EigSymTridiag modified d")
		}
	}
	for i := range e {
		if e[i] != e0[i] {
			t.Fatal("EigSymTridiag modified e")
		}
	}
}

func TestCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Build an SPD matrix A = MᵀM + n·I.
	n := 8
	m := randomMatrix(rng, n, n)
	a := MatMul(true, false, m, m, nil)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	llt := MatMul(false, true, l, l, nil)
	if d := llt.MaxAbsDiff(a); d > 1e-10 {
		t.Fatalf("L·Lᵀ differs from A by %g", d)
	}
	// Solve via forward/back substitution and check.
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	y := ForwardSolve(l, b)
	x := BackSolveT(l, y)
	ax := make([]float64, n)
	Gemv(false, 1, a, x, 0, ax, nil)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-9 {
			t.Fatalf("Cholesky solve residual %g at %d", ax[i]-b[i], i)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("Cholesky accepted an indefinite matrix")
	}
}

func TestGeneralizedEigSym(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 10
	h := randomSymmetric(rng, n)
	// SPD overlap: S = I + small random symmetric.
	s := Identity(n)
	p := randomSymmetric(rng, n)
	p.Scale(0.05)
	s.AddMatrix(p, 1)
	eps, c, err := GeneralizedEigSym(h, s)
	if err != nil {
		t.Fatal(err)
	}
	// Check H·C = S·C·diag(eps) and Cᵀ·S·C = I.
	hc := MatMul(false, false, h, c, nil)
	sc := MatMul(false, false, s, c, nil)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if math.Abs(hc.At(i, j)-eps[j]*sc.At(i, j)) > 1e-9 {
				t.Fatalf("generalized eigenpair %d residual %g", j, hc.At(i, j)-eps[j]*sc.At(i, j))
			}
		}
	}
	csc := MatMul(true, false, c, sc, nil)
	if d := csc.MaxAbsDiff(Identity(n)); d > 1e-9 {
		t.Fatalf("CᵀSC deviates from identity by %g", d)
	}
	for j := 1; j < n; j++ {
		if eps[j] < eps[j-1] {
			t.Fatal("generalized eigenvalues not ascending")
		}
	}
}

func TestGeneralizedEigSymReducesToStandard(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 7
	h := randomSymmetric(rng, n)
	eps, _, err := GeneralizedEigSym(h, Identity(n))
	if err != nil {
		t.Fatal(err)
	}
	vals, _ := EigSym(h)
	for i := range vals {
		if math.Abs(eps[i]-vals[i]) > 1e-10 {
			t.Fatalf("S=I generalized eig %v != standard %v", eps[i], vals[i])
		}
	}
}

func TestSolveLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 9
	a := randomMatrix(rng, n, n)
	for i := 0; i < n; i++ {
		a.Add(i, i, 5) // ensure well-conditioned
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	Gemv(false, 1, a, xTrue, 0, b, nil)
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-9 {
			t.Fatalf("SolveLinear x[%d] = %v want %v", i, x[i], xTrue[i])
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 4})
	if _, err := SolveLinear(a, []float64{1, 1}); err == nil {
		t.Fatal("SolveLinear accepted a singular matrix")
	}
}

// Property: eigenvalues of A+cI are eigenvalues of A shifted by c.
func TestEigShiftProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		a := randomSymmetric(r, n)
		c := r.NormFloat64()
		v1, _ := EigSym(a)
		shifted := a.Clone()
		for i := 0; i < n; i++ {
			shifted.Add(i, i, c)
		}
		v2, _ := EigSym(shifted)
		for i := range v1 {
			if math.Abs(v2[i]-(v1[i]+c)) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: det sign via Cholesky — MᵀM+I is always SPD.
func TestCholeskySPDProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		m := randomMatrix(r, n, n)
		a := MatMul(true, false, m, m, nil)
		for i := 0; i < n; i++ {
			a.Add(i, i, 1)
		}
		_, err := Cholesky(a)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
