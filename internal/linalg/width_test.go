package linalg

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"qframan/internal/par"
)

// TestGemmWidthInvariance is the kernel-drift gate run by CI at widths 1
// and 4: every trans case of Gemm (and both Gemv forms) must produce
// bit-identical output at any kernel width — far stricter than the 5% drift
// budget, and exactly what the row-sharded design guarantees.
func TestGemmWidthInvariance(t *testing.T) {
	shapes := [][3]int{{216, 40, 40}, {128, 128, 128}, {1000, 32, 32}, {7, 5, 3}}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		for _, trans := range [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
			transA, transB := trans[0], trans[1]
			rng := rand.New(rand.NewSource(7))
			ar, ac := m, k
			if transA {
				ar, ac = k, m
			}
			br, bc := k, n
			if transB {
				br, bc = n, k
			}
			a := randomMatrix(rng, ar, ac)
			b := randomMatrix(rng, br, bc)
			c0 := randomMatrix(rng, m, n)

			var ref *Matrix
			for _, w := range []int{1, 4} {
				par.SetBudget(w)
				c := NewMatrix(m, n)
				copy(c.Data, c0.Data)
				Gemm(transA, transB, 1.25, a, b, 0.5, c, nil)
				if ref == nil {
					ref = c
					continue
				}
				for i, v := range c.Data {
					if math.Float64bits(v) != math.Float64bits(ref.Data[i]) {
						t.Fatalf("gemm %dx%dx%d transA=%v transB=%v width %d: element %d drifts (%g vs %g)",
							m, k, n, transA, transB, w, i, v, ref.Data[i])
					}
				}
			}
			par.SetBudget(0)
		}
	}
}

func TestGemvWidthInvariance(t *testing.T) {
	defer par.SetBudget(0)
	rng := rand.New(rand.NewSource(11))
	a := randomMatrix(rng, 300, 200)
	for _, trans := range []bool{false, true} {
		nx, ny := a.Cols, a.Rows
		if trans {
			nx, ny = a.Rows, a.Cols
		}
		x := make([]float64, nx)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		var ref []float64
		for _, w := range []int{1, 4} {
			par.SetBudget(w)
			y := make([]float64, ny)
			Gemv(trans, 1.5, a, x, 0, y, nil)
			if ref == nil {
				ref = y
				continue
			}
			for i, v := range y {
				if math.Float64bits(v) != math.Float64bits(ref[i]) {
					t.Fatalf("gemv trans=%v width %d: element %d drifts", trans, w, i)
				}
			}
		}
	}
}

// TestExecuteWidthInvariance checks the batch fan-out path: a HostExecutor
// run of many independent GemmCalls matches the serial loop exactly.
func TestExecuteWidthInvariance(t *testing.T) {
	defer par.SetBudget(0)
	rng := rand.New(rand.NewSource(13))
	const nc = 24
	mk := func() ([]GemmCall, []*Matrix) {
		calls := make([]GemmCall, nc)
		outs := make([]*Matrix, nc)
		for i := range calls {
			a := randomMatrix(rng, 30, 20)
			b := randomMatrix(rng, 20, 25)
			c := NewMatrix(30, 25)
			calls[i] = GemmCall{Alpha: 1, A: a, B: b, C: c}
			outs[i] = c
		}
		return calls, outs
	}
	rng = rand.New(rand.NewSource(13))
	calls1, outs1 := mk()
	rng = rand.New(rand.NewSource(13))
	calls4, outs4 := mk()

	par.SetBudget(1)
	(&HostExecutor{}).Execute(calls1)
	par.SetBudget(4)
	(&HostExecutor{}).Execute(calls4)
	for i := range outs1 {
		for j, v := range outs1[i].Data {
			if math.Float64bits(v) != math.Float64bits(outs4[i].Data[j]) {
				t.Fatalf("batch call %d element %d drifts across widths", i, j)
			}
		}
	}
}

// TestExecuteBatchedWidthAndBatchingInvariance runs a mixed-shape batch —
// several padded shape classes plus a literal transpose pair — through
// ExecuteBatched over the cross product of kernel widths {1, 3, NumCPU} and
// batching {on, off}. Every combination must produce bit-identical outputs:
// grouping, class padding, pair skips, and pool width all invisible.
func TestExecuteBatchedWidthAndBatchingInvariance(t *testing.T) {
	defer par.SetBudget(0)
	defer SetGemmBatching(true)
	shapes := [][3]int{{30, 20, 25}, {33, 40, 31}, {7, 5, 3}, {64, 32, 32}, {1, 9, 1}}

	mk := func() ([]GemmCall, []*Matrix) {
		rng := rand.New(rand.NewSource(17))
		var calls []GemmCall
		var outs []*Matrix
		for _, sh := range shapes {
			m, k, n := sh[0], sh[1], sh[2]
			a := randomMatrix(rng, m, k)
			b := randomMatrix(rng, k, n)
			c := NewMatrix(m, n)
			calls = append(calls, GemmCall{Alpha: 1, A: a, B: b, C: c})
			outs = append(outs, c)
		}
		// Transpose pair of the first call: C = Bᵀ·Aᵀ = (A·B)ᵀ.
		first := calls[0]
		ct := NewMatrix(first.C.Cols, first.C.Rows)
		calls = append(calls, GemmCall{
			TransA: true, TransB: true, Alpha: 1, A: first.B, B: first.A, C: ct,
		})
		outs = append(outs, ct)
		return calls, outs
	}

	var ref []*Matrix
	var refDesc string
	for _, batching := range []bool{true, false} {
		for _, w := range []int{1, 3, runtime.NumCPU()} {
			SetGemmBatching(batching)
			par.SetBudget(w)
			calls, outs := mk()
			ExecuteBatched(calls, nil)
			if ref == nil {
				ref, refDesc = outs, "width 1 / batching on"
				continue
			}
			for i := range outs {
				for j, v := range outs[i].Data {
					if math.Float64bits(v) != math.Float64bits(ref[i].Data[j]) {
						t.Fatalf("width %d batching %v: call %d element %d differs from %s",
							w, batching, i, j, refDesc)
					}
				}
			}
		}
	}
}
