package linalg

import (
	"sync"

	"qframan/internal/par"
)

// This file implements the SIMD-friendly blocked GEMM kernel behind both the
// direct Gemm entry point and the elastic batch executor (paper §V-C): op(A)
// and op(B) are packed into register-tile panels (zero-padded to the 4×4
// micro-tile), the micro-kernel accumulates a 4×4 block of C in sixteen
// independent scalar chains (the ILP a superscalar core — or a compiler's
// vectorizer — needs), and the write-back masks the padded tails so they can
// never leak into C.
//
// # Bit-determinism of the blocked kernel
//
// Every output element C[i,j] is produced by exactly one accumulator whose k
// terms are added in ascending order, then combined as alpha·s + beta·C[i,j]
// (beta == 0 omits the C term entirely, per BLAS convention). Because each
// element's chain is independent, *any* loop blocking over i and j — tiles,
// panels, row chunks, batch grouping — yields bit-identical results; and
// because zero-padded tail rows/columns are discarded by the masked
// write-back while k is never padded, padding cannot perturb bits either.
// This is what makes blocked == unblocked == batched == the naive
// triple-loop reference (gemmref), exactly, and keeps the PR 4 width/batch
// invariance contract intact.

const (
	// mr×nr is the register micro-tile: 8 independent accumulator chains.
	// 4×2 is the sweet spot for the gc amd64 backend — 8 accumulators plus
	// 6 operand temporaries fit the 16 XMM registers without spilling
	// (a 4×4 tile's 16 accumulators + 8 temporaries spill and run slower).
	mr = 4
	nr = 2
)

// packPool recycles pack buffers; contents are fully overwritten (including
// pad lanes) on every use, so reuse cannot affect results.
var packPool = sync.Pool{New: func() any { return new([]float64) }}

func getPack(n int) *[]float64 {
	p := packPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

func putPack(p *[]float64) { packPool.Put(p) }

// packOpB packs op(B) (k×n) into nr-column panels: buf[jp*k*nr + kk*nr + c]
// holds op(B)[kk, jp*nr+c], zero when the column is past n.
func packOpB(trans bool, b *Matrix, k, n int, buf []float64) {
	np := (n + nr - 1) / nr
	if !trans {
		for jp := 0; jp < np; jp++ {
			j0 := jp * nr
			dst := buf[jp*k*nr:]
			cols := n - j0
			if cols > nr {
				cols = nr
			}
			for kk := 0; kk < k; kk++ {
				row := b.Data[kk*b.Cols+j0:]
				d := dst[kk*nr : kk*nr+nr]
				for c := 0; c < cols; c++ {
					d[c] = row[c]
				}
				for c := cols; c < nr; c++ {
					d[c] = 0
				}
			}
		}
	} else {
		// op(B)[kk, j] = B[j, kk]
		for jp := 0; jp < np; jp++ {
			j0 := jp * nr
			dst := buf[jp*k*nr:]
			cols := n - j0
			if cols > nr {
				cols = nr
			}
			for kk := 0; kk < k; kk++ {
				d := dst[kk*nr : kk*nr+nr]
				for c := 0; c < cols; c++ {
					d[c] = b.Data[(j0+c)*b.Cols+kk]
				}
				for c := cols; c < nr; c++ {
					d[c] = 0
				}
			}
		}
	}
}

// packOpAPanel packs rows [i0, i0+mr) of op(A) (m×k) into one mr-row panel:
// buf[kk*mr + r] holds op(A)[i0+r, kk], zero when the row is past m.
func packOpAPanel(trans bool, a *Matrix, i0, m, k int, buf []float64) {
	rows := m - i0
	if rows > mr {
		rows = mr
	}
	if !trans {
		if rows == mr {
			// Full panel: four row streams interleave into contiguous writes.
			r0 := a.Data[i0*a.Cols:]
			r1 := a.Data[(i0+1)*a.Cols:]
			r2 := a.Data[(i0+2)*a.Cols:]
			r3 := a.Data[(i0+3)*a.Cols:]
			for kk := 0; kk < k; kk++ {
				d := buf[kk*mr : kk*mr+mr : kk*mr+mr]
				d[0], d[1], d[2], d[3] = r0[kk], r1[kk], r2[kk], r3[kk]
			}
			return
		}
		for r := 0; r < rows; r++ {
			row := a.Data[(i0+r)*a.Cols:]
			for kk := 0; kk < k; kk++ {
				buf[kk*mr+r] = row[kk]
			}
		}
	} else {
		// op(A)[i, kk] = A[kk, i]
		for r := 0; r < rows; r++ {
			for kk := 0; kk < k; kk++ {
				buf[kk*mr+r] = a.Data[kk*a.Cols+i0+r]
			}
		}
	}
	for r := rows; r < mr; r++ {
		for kk := 0; kk < k; kk++ {
			buf[kk*mr+r] = 0
		}
	}
}

// microTile accumulates the mr×nr tile at (i0, j0) — acc[r][c] = Σ_k
// ap[k*mr+r]·bp[k*nr+c], k ascending, one independent chain per element —
// and applies the masked write-back C[i,j] = alpha·acc + beta·C[i,j] over
// the real (unpadded) extent in the same call, so accumulators never round-
// trip through memory. The reslice idiom keeps the k loop bounds-check-free.
func microTile(ap, bp []float64, k int, c *Matrix, i0, j0, m, n int, alpha, beta float64) {
	var c00, c01, c10, c11, c20, c21, c30, c31 float64
	kk := 0
	for ; kk+3 < k; kk += 4 {
		_ = ap[15]
		_ = bp[7]
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1 := bp[0], bp[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[4], ap[5], ap[6], ap[7]
		b0, b1 = bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[8], ap[9], ap[10], ap[11]
		b0, b1 = bp[4], bp[5]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[12], ap[13], ap[14], ap[15]
		b0, b1 = bp[6], bp[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		ap = ap[4*mr:]
		bp = bp[4*nr:]
	}
	for ; kk+1 < k; kk += 2 {
		_ = ap[7]
		_ = bp[3]
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1 := bp[0], bp[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[4], ap[5], ap[6], ap[7]
		b0, b1 = bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		ap = ap[2*mr:]
		bp = bp[2*nr:]
	}
	if kk < k {
		_ = ap[3]
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		_ = bp[1]
		b0, b1 := bp[0], bp[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
	}

	cd, ld := c.Data, c.Cols
	if i0+mr <= m && j0+nr <= n {
		// Full tile: unmasked write-back.
		o0 := i0*ld + j0
		o1, o2, o3 := o0+ld, o0+2*ld, o0+3*ld
		if beta == 0 {
			cd[o0], cd[o0+1] = alpha*c00, alpha*c01
			cd[o1], cd[o1+1] = alpha*c10, alpha*c11
			cd[o2], cd[o2+1] = alpha*c20, alpha*c21
			cd[o3], cd[o3+1] = alpha*c30, alpha*c31
		} else {
			cd[o0], cd[o0+1] = alpha*c00+beta*cd[o0], alpha*c01+beta*cd[o0+1]
			cd[o1], cd[o1+1] = alpha*c10+beta*cd[o1], alpha*c11+beta*cd[o1+1]
			cd[o2], cd[o2+1] = alpha*c20+beta*cd[o2], alpha*c21+beta*cd[o2+1]
			cd[o3], cd[o3+1] = alpha*c30+beta*cd[o3], alpha*c31+beta*cd[o3+1]
		}
		return
	}
	var acc [mr * nr]float64
	acc[0], acc[1] = c00, c01
	acc[2], acc[3] = c10, c11
	acc[4], acc[5] = c20, c21
	acc[6], acc[7] = c30, c31
	rows := m - i0
	if rows > mr {
		rows = mr
	}
	cols := n - j0
	if cols > nr {
		cols = nr
	}
	for r := 0; r < rows; r++ {
		crow := cd[(i0+r)*ld+j0:]
		for cc := 0; cc < cols; cc++ {
			if beta == 0 {
				crow[cc] = alpha * acc[r*nr+cc]
			} else {
				crow[cc] = alpha*acc[r*nr+cc] + beta*crow[cc]
			}
		}
	}
}

// gemmPanels runs the blocked kernel over row panels [p0, p1) against the
// packed op(B) buffer bp. onlyLower, when true, computes only the tiles on or
// below the diagonal and mirrors them — the symmetry-aware strength reduction
// for C = op(A)·op(A)ᵀ products (see gemmBlocked).
func gemmPanels(transA bool, alpha float64, a *Matrix, bp []float64, beta float64, c *Matrix, m, k, n, p0, p1 int, onlyLower bool) {
	apBuf := getPack(k * mr)
	defer putPack(apBuf)
	ap := *apBuf
	np := (n + nr - 1) / nr
	for pi := p0; pi < p1; pi++ {
		i0 := pi * mr
		packOpAPanel(transA, a, i0, m, k, ap)
		for jp := 0; jp < np; jp++ {
			j0 := jp * nr
			if onlyLower && j0 > i0+mr-1 {
				break // tiles strictly above the diagonal: produced by mirroring
			}
			microTile(ap, bp[jp*k*nr:], k, c, i0, j0, m, n, alpha, beta)
		}
	}
}

// mirrorLower fills the strict upper triangle of rows [r0, r1) of a square
// symmetric C from the lower triangle. For C = op(A)·op(A)ᵀ the mirrored
// element equals the directly computed one bit for bit: C[i,j] and C[j,i]
// accumulate the same products in the same k order.
func mirrorLower(c *Matrix, r0, r1 int) {
	n := c.Cols
	for i := r0; i < r1; i++ {
		for j := i + 1; j < n; j++ {
			c.Data[i*n+j] = c.Data[j*n+i]
		}
	}
}

// syrkCandidate reports whether the call computes op(A)·op(A)ᵀ into a square
// C — the pattern whose output is exactly symmetric, enabling half-compute.
func syrkCandidate(transA, transB bool, a, b *Matrix) bool {
	return a == b && transA != transB
}

// gemmBlocked is the shared blocked implementation: C = alpha·op(A)·op(B) +
// beta·C. parName labels the par region; inline — used by the batch executor,
// which parallelizes across batch members instead — runs everything on the
// caller. Shapes must have been validated by the caller.
func gemmBlocked(transA, transB bool, alpha float64, a, b *Matrix, beta float64, c *Matrix, m, k, n int, parName string, inline bool) {
	if m == 0 || n == 0 {
		return
	}
	bpBuf := getPack(k * nr * ((n + nr - 1) / nr))
	defer putPack(bpBuf)
	bp := *bpBuf
	packOpB(transB, b, k, n, bp)

	// op(A)·op(A)ᵀ with beta == 0 has an exactly symmetric result: compute
	// the lower triangle and mirror. (With beta ≠ 0 the old C may be
	// asymmetric, so the full product is computed.)
	syrk := syrkCandidate(transA, transB, a, b) && beta == 0 && m == n

	panels := (m + mr - 1) / mr
	if inline {
		gemmPanels(transA, alpha, a, bp, beta, c, m, k, n, 0, panels, syrk)
		if syrk {
			mirrorLower(c, 0, m)
		}
		return
	}
	// A chunk owns whole panels, so tile boundaries — and with them every
	// accumulator chain — are identical at any width.
	minPanels := 1 + gemmMinRows(k, n)/mr
	par.For(parName, panels, minPanels, func(lo, hi int) {
		gemmPanels(transA, alpha, a, bp, beta, c, m, k, n, lo, hi, syrk)
	})
	if syrk {
		par.For(parName, panels, minPanels, func(lo, hi int) {
			r1 := hi * mr
			if r1 > m {
				r1 = m
			}
			mirrorLower(c, lo*mr, r1)
		})
	}
}
