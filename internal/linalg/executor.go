package linalg

// GemmCall is one deferred GEMM invocation: C = alpha·op(A)·op(B) + beta·C.
// The DFPT grid phases produce thousands of small, mutually independent
// GemmCalls per cycle (one or a few per grid batch); collecting them and
// handing the whole set to an Executor is the strip-mining/privatization
// transformation of the paper's elastic workload offloading (§V-C, Fig. 5):
// the CPU-friendly preparation and reduction loops run separately, while the
// accelerator-friendly GEMMs arrive as a single packable workload.
type GemmCall struct {
	TransA, TransB bool
	Alpha          float64
	A, B           *Matrix
	Beta           float64
	C              *Matrix
	// TransferBytes is the host↔device traffic this call would require if
	// offloaded. Zero means "everything moves" (8 bytes per element of A,
	// B, and C); callers that know better — e.g. the DFPT grid phases,
	// whose basis tabulations stay resident on the accelerator across
	// cycles and whose fused kernels return only small reductions — set it
	// explicitly.
	TransferBytes int64
}

// FLOPs returns the floating-point cost of the call.
func (c *GemmCall) FLOPs() int64 {
	m, k := c.A.Rows, c.A.Cols
	if c.TransA {
		m, k = k, m
	}
	n := c.B.Cols
	if c.TransB {
		n = c.B.Rows
	}
	return GemmFLOPs(m, k, n)
}

// Shape returns the (m, k, n) GEMM dimensions.
func (c *GemmCall) Shape() (m, k, n int) {
	m, k = c.A.Rows, c.A.Cols
	if c.TransA {
		m, k = k, m
	}
	n = c.B.Cols
	if c.TransB {
		n = c.B.Rows
	}
	return
}

// Executor runs a set of independent GEMMs. Implementations may execute
// them one by one on the host, or pack them into batched workloads for a
// (simulated) accelerator.
type Executor interface {
	Execute(calls []GemmCall)
}

// HostExecutor runs every call directly on the host, counting into Ops.
type HostExecutor struct {
	Ops *Ops
}

// Execute runs the calls through the elastic batch path (batch.go):
// transpose-pair duplicates are strength-reduced, the rest group by padded
// shape class and fan across the kernel pool, merging with concurrent
// cycles' submissions. Calls write disjoint C matrices (the DFPT grid
// phases build one per batch) and every call computes its true shape with
// the same blocked kernel as a direct Gemm, so batching — on, off, merged
// or not — cannot change results.
func (h *HostExecutor) Execute(calls []GemmCall) {
	ExecuteBatched(calls, h.Ops)
}
