package linalg

import (
	"math/rand"
	"testing"
)

// Benchmark shapes mirror the engine's hot spots: grid-batch GEMMs
// (points×basis×basis) and SCF eigensolves.

func benchmarkGemm(b *testing.B, m, k, n int) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, m, k)
	bb := randomMatrix(rng, k, n)
	c := NewMatrix(m, n)
	b.SetBytes(int64(8 * (m*k + k*n + m*n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(false, false, 1, a, bb, 0, c, nil)
	}
	b.ReportMetric(float64(GemmFLOPs(m, k, n)*int64(b.N))/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkGemm_GridBatch(b *testing.B)  { benchmarkGemm(b, 216, 40, 40) }
func BenchmarkGemm_Square128(b *testing.B)  { benchmarkGemm(b, 128, 128, 128) }
func BenchmarkGemm_TallSkinny(b *testing.B) { benchmarkGemm(b, 1000, 32, 32) }

func BenchmarkEigSym(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		b.Run(itoa(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			a := randomSymmetric(rng, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				EigSym(a)
			}
		})
	}
}

func BenchmarkGeneralizedEigSym(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 64
	h := randomSymmetric(rng, n)
	s := Identity(n)
	p := randomSymmetric(rng, n)
	p.Scale(0.05)
	s.AddMatrix(p, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GeneralizedEigSym(h, s); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(v int) string {
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
