// Package linalg implements the dense linear algebra substrate for the
// QF-RAMAN reproduction: a row-major matrix type, BLAS-style kernels with
// global operation accounting (used by the elastic-offloading and
// strength-reduction experiments), symmetric eigensolvers, and a Cholesky
// factorization for the generalized eigenproblem HC = SCε.
//
// Everything is pure Go over float64. The kernels deliberately mirror the
// BLAS call structure of the paper's DFPT engine — the batched grid GEMMs
// of §V-C and the strength-reduced contractions of §V-D (Fig. 6) — so that
// "number of GEMM invocations" and "FLOPs per phase" are meaningful
// measured quantities. The hot kernels shard across internal/par's
// deterministic pool; see Gemm for the bit-identity argument.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFrom builds a matrix from a row-major slice, which is used
// directly (not copied).
func NewMatrixFrom(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("linalg: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates into element (i,j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies the contents of src into m; shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("linalg: CopyFrom shape mismatch")
	}
	copy(m.Data, src.Data)
}

// Zero sets every element to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Scale multiplies every element by s.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// AddMatrix accumulates s·b into m; shapes must match.
func (m *Matrix) AddMatrix(b *Matrix, s float64) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: AddMatrix shape mismatch")
	}
	for i, v := range b.Data {
		m.Data[i] += s * v
	}
}

// Symmetrize replaces m by (m + mᵀ)/2; m must be square.
func (m *Matrix) Symmetrize() {
	if m.Rows != m.Cols {
		panic("linalg: Symmetrize on non-square matrix")
	}
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.5 * (m.Data[i*n+j] + m.Data[j*n+i])
			m.Data[i*n+j] = v
			m.Data[j*n+i] = v
		}
	}
}

// MaxAbsDiff returns the max elementwise |m−b|; shapes must match.
func (m *Matrix) MaxAbsDiff(b *Matrix) float64 {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: MaxAbsDiff shape mismatch")
	}
	var d float64
	for i, v := range m.Data {
		d = math.Max(d, math.Abs(v-b.Data[i]))
	}
	return d
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// IsSymmetric reports whether m is square and symmetric to within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(m.Data[i*n+j]-m.Data[j*n+i]) > tol {
				return false
			}
		}
	}
	return true
}

// Trace returns the trace of a square matrix.
func (m *Matrix) Trace() float64 {
	if m.Rows != m.Cols {
		panic("linalg: Trace on non-square matrix")
	}
	var t float64
	for i := 0; i < m.Rows; i++ {
		t += m.Data[i*m.Cols+i]
	}
	return t
}

// Dot returns the Euclidean inner product of two equal-length vectors.
// Four independent accumulator chains break the add-latency dependency of
// the naive loop; the association is a fixed function of the length alone,
// so the value is deterministic (and identical wherever Dot is called).
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s0, s1, s2, s3 float64
	i, n := 0, len(a)
	for ; i+3 < n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	var st float64
	for ; i < n; i++ {
		st += a[i] * b[i]
	}
	return ((s0 + s1) + (s2 + s3)) + st
}

// Norm2 returns the Euclidean norm of a vector.
func Norm2(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// Axpy computes y += alpha*x, unrolled 4-wide. Each element is an
// independent chain, so unrolling cannot change any bit of the result.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: Axpy length mismatch")
	}
	i, n := 0, len(x)
	for ; i+3 < n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// Scal scales a vector in place.
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}
