package linalg_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"qframan/internal/linalg"
	"qframan/internal/linalg/gemmref"
)

// The differential harness: the packed blocked kernel (and the batch path
// built on it) must reproduce the naive triple-loop reference bit for bit —
// not approximately — for every trans case, over ragged shapes from 1×1 up
// through sizes straddling the micro-tile and 32-padding boundaries.

// fillMat populates a matrix with a mix of magnitudes, signs, and exact
// values (0, powers of two) so bit-level discrepancies have terms to bite on.
func fillMat(m *linalg.Matrix, rng *rand.Rand) {
	for i := range m.Data {
		switch rng.Intn(10) {
		case 0:
			m.Data[i] = 0
		case 1:
			m.Data[i] = math.Ldexp(1, rng.Intn(40)-20) // exact power of two
		case 2:
			m.Data[i] = -rng.Float64() * 1e8
		case 3:
			m.Data[i] = rng.Float64() * 1e-8
		default:
			m.Data[i] = rng.NormFloat64()
		}
	}
}

// bitEqual reports exact bitwise equality (NaN-safe via Float64bits).
func bitEqual(a, b []float64) (int, bool) {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return -1, true
}

// refGemm runs the reference on linalg matrices.
func refGemm(transA, transB bool, alpha float64, a, b *linalg.Matrix, beta float64, c *linalg.Matrix) {
	gemmref.Gemm(transA, transB, alpha,
		a.Data, a.Rows, a.Cols,
		b.Data, b.Rows, b.Cols,
		beta,
		c.Data, c.Rows, c.Cols)
}

// diffShapes is the ragged-shape sweep: 1×1, degenerate edges, shapes around
// the 4×2 register tile, and odd sizes straddling the 32-padding boundary
// (31/32/33) plus a grid-batch-like tall-skinny case.
var diffShapes = [][3]int{
	{1, 1, 1}, {1, 5, 1}, {5, 1, 3}, {2, 3, 1},
	{3, 4, 2}, {4, 4, 4}, {5, 7, 3}, {7, 5, 9},
	{8, 8, 8}, {9, 2, 11}, {13, 17, 6},
	{31, 31, 31}, {32, 32, 32}, {33, 33, 33},
	{31, 33, 32}, {33, 32, 31}, {32, 31, 33},
	{65, 3, 34}, {216, 40, 40}, {37, 64, 1},
}

// TestGemmMatchesReferenceBitwise sweeps every trans case, alpha/beta
// combination, and ragged shape, demanding exact bit equality with the
// naive reference.
func TestGemmMatchesReferenceBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	alphaBetas := [][2]float64{{1, 0}, {-0.5, 0}, {1, 1}, {2.25, -1.5}, {0, 0.5}}
	for _, sh := range diffShapes {
		m, k, n := sh[0], sh[1], sh[2]
		for ti, tc := range [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
			transA, transB := tc[0], tc[1]
			for _, ab := range alphaBetas {
				alpha, beta := ab[0], ab[1]
				ar, ac := m, k
				if transA {
					ar, ac = k, m
				}
				br, bc := k, n
				if transB {
					br, bc = n, k
				}
				a := linalg.NewMatrix(ar, ac)
				b := linalg.NewMatrix(br, bc)
				fillMat(a, rng)
				fillMat(b, rng)
				c := linalg.NewMatrix(m, n)
				fillMat(c, rng) // nonzero initial C exercises the beta path
				want := c.Clone()

				linalg.Gemm(transA, transB, alpha, a, b, beta, c, nil)
				refGemm(transA, transB, alpha, a, b, beta, want)

				if i, ok := bitEqual(c.Data, want.Data); !ok {
					t.Fatalf("shape %dx%dx%d trans case %d alpha=%g beta=%g: C[%d] = %x, reference %x",
						m, k, n, ti, alpha, beta, i, math.Float64bits(c.Data[i]), math.Float64bits(want.Data[i]))
				}
			}
		}
	}
}

// TestGemmSyrkPathMatchesReference pins the symmetry-aware half-compute
// path (A == B, opposite trans, beta == 0) to the reference bitwise,
// including the mirrored upper triangle.
func TestGemmSyrkPathMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sh := range [][2]int{{1, 1}, {3, 5}, {7, 2}, {31, 9}, {33, 40}, {64, 17}} {
		m, k := sh[0], sh[1]
		for _, tc := range [][2]bool{{false, true}, {true, false}} {
			transA, transB := tc[0], tc[1]
			ar, ac := m, k
			if transA {
				ar, ac = k, m
			}
			a := linalg.NewMatrix(ar, ac)
			fillMat(a, rng)
			c := linalg.NewMatrix(m, m)
			want := linalg.NewMatrix(m, m)
			linalg.Gemm(transA, transB, 1, a, a, 0, c, nil)
			refGemm(transA, transB, 1, a, a, 0, want)
			if i, ok := bitEqual(c.Data, want.Data); !ok {
				t.Fatalf("syrk %dx%d transA=%v: C[%d] differs from reference", m, k, transA, i)
			}
		}
	}
}

// TestExecuteBatchedMatchesReference runs mixed-shape, mixed-trans batches
// through the batch path — batching on and off — against the reference.
func TestExecuteBatchedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var calls []linalg.GemmCall
	var want []*linalg.Matrix
	for _, sh := range diffShapes {
		m, k, n := sh[0], sh[1], sh[2]
		transA := rng.Intn(2) == 0
		transB := rng.Intn(2) == 0
		ar, ac := m, k
		if transA {
			ar, ac = k, m
		}
		br, bc := k, n
		if transB {
			br, bc = n, k
		}
		a := linalg.NewMatrix(ar, ac)
		b := linalg.NewMatrix(br, bc)
		fillMat(a, rng)
		fillMat(b, rng)
		calls = append(calls, linalg.GemmCall{
			TransA: transA, TransB: transB, Alpha: 1.5, A: a, B: b,
			C: linalg.NewMatrix(m, n),
		})
		w := linalg.NewMatrix(m, n)
		refGemm(transA, transB, 1.5, a, b, 0, w)
		want = append(want, w)
	}
	for _, batching := range []bool{true, false} {
		t.Run(fmt.Sprintf("batching=%v", batching), func(t *testing.T) {
			old := linalg.GemmBatching()
			defer linalg.SetGemmBatching(old)
			linalg.SetGemmBatching(batching)
			for i := range calls {
				calls[i].C.Zero()
			}
			linalg.ExecuteBatched(calls, nil)
			for i := range calls {
				if j, ok := bitEqual(calls[i].C.Data, want[i].Data); !ok {
					t.Fatalf("call %d: C[%d] differs from reference", i, j)
				}
			}
		})
	}
}

// TestTransposePairSkipBitExact builds a batch with a literal transpose
// pair (the dfpt naive-h1 pattern) and checks that the skipped call's
// result is bit-identical to executing it, and that the skip was counted.
func TestTransposePairSkipBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	x := linalg.NewMatrix(57, 13) // npts×nloc, odd sizes
	v := linalg.NewMatrix(57, 13)
	fillMat(x, rng)
	fillMat(v, rng)

	run := func(batching bool) (*linalg.Matrix, *linalg.Matrix, int64) {
		old := linalg.GemmBatching()
		defer linalg.SetGemmBatching(old)
		linalg.SetGemmBatching(batching)
		m2 := linalg.NewMatrix(13, 13)
		m3 := linalg.NewMatrix(13, 13)
		var ops linalg.Ops
		linalg.ExecuteBatched([]linalg.GemmCall{
			{TransA: true, Alpha: 1, A: x, B: v, C: m2},
			{TransA: true, Alpha: 1, A: v, B: x, C: m3},
		}, &ops)
		return m2, m3, ops.TransposeSkips.Load()
	}

	m2on, m3on, skipsOn := run(true)
	m2off, m3off, skipsOff := run(false)

	if skipsOn != 1 {
		t.Fatalf("batching on: TransposeSkips = %d, want 1", skipsOn)
	}
	if skipsOff != 0 {
		t.Fatalf("batching off: TransposeSkips = %d, want 0", skipsOff)
	}
	if i, ok := bitEqual(m2on.Data, m2off.Data); !ok {
		t.Fatalf("m2 differs between batching on/off at %d", i)
	}
	if i, ok := bitEqual(m3on.Data, m3off.Data); !ok {
		t.Fatalf("m3 (skipped vs executed) differs at %d", i)
	}
	// And both match the reference.
	want := linalg.NewMatrix(13, 13)
	refGemm(true, false, 1, v, x, 0, want)
	if i, ok := bitEqual(m3on.Data, want.Data); !ok {
		t.Fatalf("skipped m3 differs from reference at %d", i)
	}
	// The skipped result is the exact transpose of its source.
	for i := 0; i < 13; i++ {
		for j := 0; j < 13; j++ {
			if math.Float64bits(m3on.At(i, j)) != math.Float64bits(m2on.At(j, i)) {
				t.Fatalf("m3[%d,%d] != m2[%d,%d] bitwise", i, j, j, i)
			}
		}
	}
}
