package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randomSymmetric(rng *rand.Rand, n int) *Matrix {
	m := randomMatrix(rng, n, n)
	m.Symmetrize()
	return m
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 {
		t.Fatalf("At/Set round trip failed: %v", m.Data)
	}
	m.Add(1, 2, 2)
	if m.At(1, 2) != 7 {
		t.Fatalf("Add failed: got %v", m.At(1, 2))
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone is not a deep copy")
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, 4, 7)
	tr := m.T()
	if tr.Rows != 7 || tr.Cols != 4 {
		t.Fatalf("transpose shape got %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	back := tr.T()
	if back.MaxAbsDiff(m) != 0 {
		t.Fatal("double transpose changed the matrix")
	}
}

func TestSymmetrize(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomMatrix(rng, 6, 6)
	s := m.Clone()
	s.Symmetrize()
	if !s.IsSymmetric(0) {
		t.Fatal("Symmetrize did not produce a symmetric matrix")
	}
	// (i,j) element should be the average.
	want := 0.5 * (m.At(1, 3) + m.At(3, 1))
	if s.At(1, 3) != want {
		t.Fatalf("Symmetrize value wrong: got %v want %v", s.At(1, 3), want)
	}
}

func TestIdentityTrace(t *testing.T) {
	id := Identity(5)
	if id.Trace() != 5 {
		t.Fatalf("identity trace = %v", id.Trace())
	}
	if !id.IsSymmetric(0) {
		t.Fatal("identity not symmetric")
	}
}

// naiveGemm is an independent reference implementation.
func naiveGemm(transA, transB bool, alpha float64, a, b *Matrix, beta float64, c *Matrix) *Matrix {
	get := func(m *Matrix, tr bool, i, j int) float64 {
		if tr {
			return m.At(j, i)
		}
		return m.At(i, j)
	}
	am, ak := a.Rows, a.Cols
	if transA {
		am, ak = ak, am
	}
	bn := b.Cols
	if transB {
		bn = b.Rows
	}
	out := NewMatrix(am, bn)
	for i := 0; i < am; i++ {
		for j := 0; j < bn; j++ {
			var s float64
			for k := 0; k < ak; k++ {
				s += get(a, transA, i, k) * get(b, transB, k, j)
			}
			out.Set(i, j, alpha*s+beta*c.At(i, j))
		}
	}
	return out
}

func TestGemmAllTransposeCombos(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const m, k, n = 5, 7, 4
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			a := randomMatrix(rng, m, k)
			if ta {
				a = randomMatrix(rng, k, m)
			}
			b := randomMatrix(rng, k, n)
			if tb {
				b = randomMatrix(rng, n, k)
			}
			c := randomMatrix(rng, m, n)
			want := naiveGemm(ta, tb, 1.3, a, b, 0.7, c)
			got := c.Clone()
			Gemm(ta, tb, 1.3, a, b, 0.7, got, nil)
			if d := got.MaxAbsDiff(want); d > 1e-12 {
				t.Errorf("Gemm(transA=%v, transB=%v) differs from naive by %g", ta, tb, d)
			}
		}
	}
}

func TestGemmBetaZeroIgnoresGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomMatrix(rng, 3, 3)
	b := randomMatrix(rng, 3, 3)
	c := NewMatrix(3, 3)
	for i := range c.Data {
		c.Data[i] = math.NaN() // beta=0 must overwrite, never read
	}
	Gemm(false, false, 1, a, b, 0, c, nil)
	for _, v := range c.Data {
		if math.IsNaN(v) {
			t.Fatal("Gemm with beta=0 read the destination")
		}
	}
}

func TestGemmCounters(t *testing.T) {
	var ops Ops
	a := Identity(8)
	b := Identity(8)
	c := NewMatrix(8, 8)
	Gemm(false, false, 1, a, b, 0, c, &ops)
	Gemm(false, false, 1, a, b, 0, c, &ops)
	gemm, _, flops, _ := ops.Snapshot()
	if gemm != 2 {
		t.Fatalf("GEMM calls = %d, want 2", gemm)
	}
	if want := 2 * GemmFLOPs(8, 8, 8); flops != want {
		t.Fatalf("FLOPs = %d, want %d", flops, want)
	}
	ops.Reset()
	if g, _, f, _ := ops.Snapshot(); g != 0 || f != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestGemv(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(rng, 4, 6)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, 4)
	Gemv(false, 2.0, a, x, 0, y, nil)
	for i := 0; i < 4; i++ {
		want := 2.0 * Dot(a.Row(i), x)
		if math.Abs(y[i]-want) > 1e-12 {
			t.Fatalf("Gemv row %d: got %v want %v", i, y[i], want)
		}
	}
	// transposed
	xt := make([]float64, 4)
	for i := range xt {
		xt[i] = rng.NormFloat64()
	}
	yt := make([]float64, 6)
	Gemv(true, 1.0, a, xt, 0, yt, nil)
	at := a.T()
	for i := 0; i < 6; i++ {
		want := Dot(at.Row(i), xt)
		if math.Abs(yt[i]-want) > 1e-12 {
			t.Fatalf("Gemv^T row %d: got %v want %v", i, yt[i], want)
		}
	}
}

func TestVectorOps(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Fatalf("Dot = %v", Dot(x, y))
	}
	if math.Abs(Norm2(x)-math.Sqrt(14)) > 1e-15 {
		t.Fatalf("Norm2 = %v", Norm2(x))
	}
	Axpy(2, x, y)
	if y[0] != 6 || y[1] != 9 || y[2] != 12 {
		t.Fatalf("Axpy result %v", y)
	}
	Scal(0.5, y)
	if y[0] != 3 {
		t.Fatalf("Scal result %v", y)
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random shapes.
func TestGemmTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(8)
		k := 1 + r.Intn(8)
		n := 1 + r.Intn(8)
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		ab := MatMul(false, false, a, b, nil)
		btat := MatMul(true, true, b, a, nil)
		return ab.T().MaxAbsDiff(btat) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Frobenius norm is invariant under transpose.
func TestFrobeniusTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMatrix(r, 1+r.Intn(10), 1+r.Intn(10))
		return math.Abs(m.FrobeniusNorm()-m.T().FrobeniusNorm()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
