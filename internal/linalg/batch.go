package linalg

import (
	"os"
	"sync/atomic"

	"qframan/internal/par"
)

// This file is the host side of the elastic batched-GEMM offload (paper
// §V-C): independent GemmCalls are grouped into same-shape-class batches —
// dimensions padded up to multiples of BatchStride, exactly the grouping the
// simulated accelerator (internal/accel) offloads — and each group runs as
// one "gemm_batch" kernel that fans across batch members. Groups from
// *concurrent* DFPT cycles are merged opportunistically through a
// process-wide par.Elastic aggregator, so several fragments in flight yield
// fewer, larger batches (more work per launch) without any added latency
// when a cycle runs alone.
//
// Padding exists only in the grouping key. The host kernel computes every
// call at its true shape — the blocked micro-kernel masks its register-tile
// tails at write-back (block.go), so padded lanes are never even computed,
// let alone leaked — which is why batching on vs off is bit-identical.

// BatchStride is the shape-class padding stride (the paper batches with a
// stride of 32); a call of shape (m,k,n) lands in class (⌈m/32⌉·32, …).
const BatchStride = 32

// gemmBatching gates the batch path: 1 = group + aggregate (default),
// 0 = run every call as a plain Gemm. QF_GEMM_BATCH=0/off/false disables.
var gemmBatching atomic.Bool

func init() {
	on := true
	switch os.Getenv("QF_GEMM_BATCH") {
	case "0", "off", "false":
		on = false
	}
	gemmBatching.Store(on)
}

// SetGemmBatching toggles the batched execution path at runtime (the
// QF_GEMM_BATCH env knob sets the initial state). Results never depend on
// the setting — only grouping and wall time do.
func SetGemmBatching(on bool) { gemmBatching.Store(on) }

// GemmBatching reports whether the batch path is enabled.
func GemmBatching() bool { return gemmBatching.Load() }

// batchClass is the padded shape class used for grouping.
type batchClass struct{ m, k, n int }

func padStride(v int) int { return (v + BatchStride - 1) / BatchStride * BatchStride }

func classOf(c *GemmCall) batchClass {
	m, k, n := c.Shape()
	return batchClass{padStride(m), padStride(k), padStride(n)}
}

// gemmBatcher merges same-class groups across concurrent submitters. The
// flush runs each call at its true shape with the inline blocked kernel —
// parallelism comes from fanning across batch members, so profiling sees one
// flat "gemm_batch" region with no nested kernels.
var gemmBatcher = par.NewElastic(func(_ batchClass, calls []GemmCall) {
	par.For("gemm_batch", len(calls), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c := &calls[i]
			m, k, n := c.Shape()
			gemmBlocked(c.TransA, c.TransB, c.Alpha, c.A, c.B, c.Beta, c.C, m, k, n, "", true)
		}
	})
})

// GemmBatchStats returns the cross-fragment aggregator counters (how many
// submissions, how many flushes, how many flushes merged work from
// concurrent cycles).
func GemmBatchStats() par.ElasticStats { return gemmBatcher.Stats() }

// transposeInto sets dst = srcᵀ elementwise; shapes must be transposes.
func transposeInto(dst, src *Matrix) {
	if dst.Rows != src.Cols || dst.Cols != src.Rows {
		panic("linalg: transposeInto shape mismatch")
	}
	for i := 0; i < src.Rows; i++ {
		row := src.Row(i)
		for j, v := range row {
			dst.Data[j*dst.Cols+i] = v
		}
	}
}

// transposePairOf reports whether call j is the exact transpose pair of call
// i — C_j = alpha·op(B_i)ᵀ·op(A_i)ᵀ = C_iᵀ — detected by pointer identity on
// the operands. Both calls must overwrite their outputs (beta == 0, so no
// stale-C term), share alpha, and write distinct C matrices. When it holds,
// C_j's every element accumulates the same products in the same ascending-k
// order as the mirrored element of C_i (a·b == b·a bitwise), so copying the
// transpose reproduces the skipped GEMM bit for bit.
func transposePairOf(i, j *GemmCall) bool {
	return j.A == i.B && j.B == i.A &&
		j.TransA == !i.TransB && j.TransB == !i.TransA &&
		j.Alpha == i.Alpha && i.Beta == 0 && j.Beta == 0 &&
		i.C != j.C
}

// ExecuteBatched runs a set of independent GemmCalls through the elastic
// batch path: transpose-pair duplicates are strength-reduced to a copy,
// the rest are split by padded shape class (mixed-shape submissions are
// legal — they simply split), and each class group is submitted to the
// cross-fragment aggregator. Counting: executed calls add to GEMMCalls and
// FLOPs; skipped calls add only to TransposeSkips (§V-D — fewer invocations,
// identical results). Blocks until every call's C is final.
func ExecuteBatched(calls []GemmCall, ops *Ops) {
	if ops == nil {
		ops = &DefaultOps
	}
	if !gemmBatching.Load() {
		for i := range calls {
			c := &calls[i]
			Gemm(c.TransA, c.TransB, c.Alpha, c.A, c.B, c.Beta, c.C, ops)
		}
		return
	}

	// Strength reduction: find calls whose result is the exact transpose of
	// an earlier call in this submission. Pointer-keyed lookup: a pair match
	// requires j's (A, B) to be i's (B, A).
	type opsKey struct{ a, b *Matrix }
	byOps := make(map[opsKey]int, len(calls))
	skipOf := make([]int, len(calls)) // index of the source call, or -1
	for i := range calls {
		c := &calls[i]
		skipOf[i] = -1
		if src, ok := byOps[opsKey{c.B, c.A}]; ok && transposePairOf(&calls[src], c) {
			skipOf[i] = src
			ops.TransposeSkips.Add(1)
			continue
		}
		// First executed call with these operands wins the slot; later
		// identical-operand calls would be their own pair sources.
		if _, dup := byOps[opsKey{c.A, c.B}]; !dup {
			byOps[opsKey{c.A, c.B}] = i
		}
	}

	// Split executed calls by padded shape class and submit each group.
	groups := map[batchClass][]GemmCall{}
	var order []batchClass // deterministic submission order
	for i := range calls {
		if skipOf[i] >= 0 {
			continue
		}
		c := &calls[i]
		ops.GEMMCalls.Add(1)
		ops.FLOPs.Add(c.FLOPs())
		key := classOf(c)
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], *c)
	}
	ops.BatchCalls.Add(int64(len(order)))
	tickets := make([]par.Ticket, 0, len(order))
	for _, key := range order {
		tickets = append(tickets, gemmBatcher.Submit(key, groups[key]))
	}
	for _, t := range tickets {
		t.Wait()
	}

	// All sources are final; materialize the skipped results.
	for i := range calls {
		if src := skipOf[i]; src >= 0 {
			transposeInto(calls[i].C, calls[src].C)
		}
	}
}
