package linalg

import (
	"fmt"
	"math"
)

// EigSym computes all eigenvalues and eigenvectors of the symmetric matrix a.
// It returns the eigenvalues in ascending order and a matrix whose column j
// is the eigenvector for eigenvalue j. The input is not modified.
//
// The implementation is the classic Householder tridiagonalization (tred2)
// followed by the implicit-shift QL iteration (tql2), the same reduction used
// by dense LAPACK drivers.
func EigSym(a *Matrix) ([]float64, *Matrix) {
	if a.Rows != a.Cols {
		panic("linalg: EigSym on non-square matrix")
	}
	n := a.Rows
	z := a.Clone()
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(z, d, e)
	if err := tql2(d, e, z); err != nil {
		panic(err)
	}
	return d, z
}

// EigSymTridiag computes eigenvalues and eigenvectors of the symmetric
// tridiagonal matrix with diagonal d (length n) and off-diagonal e (length
// n−1). It returns ascending eigenvalues and the eigenvector matrix.
// The inputs are not modified.
func EigSymTridiag(d, e []float64) ([]float64, *Matrix) {
	n := len(d)
	if len(e) != n-1 && !(n == 0 && len(e) == 0) {
		panic("linalg: EigSymTridiag off-diagonal length must be n-1")
	}
	dd := make([]float64, n)
	copy(dd, d)
	// tql2 uses the tred2 convention: ee[i] is the subdiagonal element
	// coupling rows i−1 and i, so ee[0] is unused.
	ee := make([]float64, n)
	copy(ee[1:], e)
	z := Identity(n)
	if err := tql2(dd, ee, z); err != nil {
		panic(err)
	}
	return dd, z
}

// EigvalsSymTridiag computes only the eigenvalues of a symmetric tridiagonal
// matrix, ascending. Inputs are not modified.
func EigvalsSymTridiag(d, e []float64) []float64 {
	n := len(d)
	dd := make([]float64, n)
	copy(dd, d)
	// tqlEigvals expects the subdiagonal directly at ee[0..n-2].
	ee := make([]float64, n)
	copy(ee[:n-1], e)
	if err := tqlEigvals(dd, ee); err != nil {
		panic(err)
	}
	return dd
}

// tred2 reduces the symmetric matrix stored in z to tridiagonal form with
// diagonal d and off-diagonal e (e[0] unused space at index n-1 after shift),
// accumulating the orthogonal transformation in z.
// This is an adaptation of the EISPACK/Numerical Recipes tred2 routine.
func tred2(z *Matrix, d, e []float64) {
	n := z.Rows
	for i := n - 1; i > 0; i-- {
		l := i - 1
		var h, scale float64
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(z.At(i, k))
			}
			if scale == 0 {
				e[i] = z.At(i, l)
			} else {
				for k := 0; k <= l; k++ {
					v := z.At(i, k) / scale
					z.Set(i, k, v)
					h += v * v
				}
				f := z.At(i, l)
				g := math.Sqrt(h)
				if f > 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				z.Set(i, l, f-g)
				f = 0
				for j := 0; j <= l; j++ {
					z.Set(j, i, z.At(i, j)/h)
					g = 0
					for k := 0; k <= j; k++ {
						g += z.At(j, k) * z.At(i, k)
					}
					for k := j + 1; k <= l; k++ {
						g += z.At(k, j) * z.At(i, k)
					}
					e[j] = g / h
					f += e[j] * z.At(i, j)
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = z.At(i, j)
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						z.Add(j, k, -(f*e[k] + g*z.At(i, k)))
					}
				}
			}
		} else {
			e[i] = z.At(i, l)
		}
		d[i] = h
	}
	d[0] = 0
	e[0] = 0
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				var g float64
				for k := 0; k <= l; k++ {
					g += z.At(i, k) * z.At(k, j)
				}
				for k := 0; k <= l; k++ {
					z.Add(k, j, -g*z.At(k, i))
				}
			}
		}
		d[i] = z.At(i, i)
		z.Set(i, i, 1)
		for j := 0; j <= l; j++ {
			z.Set(j, i, 0)
			z.Set(i, j, 0)
		}
	}
}

// tql2 computes eigenvalues (into d, ascending) and eigenvectors (columns of
// z, which must be initialized with the tred2 accumulation or the identity)
// of a symmetric tridiagonal matrix via the implicit QL method.
// On input e[1..n-1] holds the subdiagonal (tred2 convention); e is destroyed.
//
// Internally the eigenvectors are kept transposed (one per row) so the
// Givens-rotation updates run over contiguous memory — this loop dominates
// the SCF engine's profile.
func tql2(d, e []float64, z *Matrix) error {
	n := len(d)
	if n == 0 {
		return nil
	}
	zt := z.T()
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		iter := 0
		for {
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= math.SmallestNonzeroFloat64 ||
					math.Abs(e[m])+dd == dd {
					break
				}
			}
			if m == l {
				break
			}
			iter++
			if iter > 80 {
				return fmt.Errorf("linalg: tql2 failed to converge at row %d", l)
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			sg := r
			if g < 0 {
				sg = -r
			}
			g = d[m] - d[l] + e[l]/(g+sg)
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				zi := zt.Row(i)
				zi1 := zt.Row(i + 1)
				for k := 0; k < n; k++ {
					f = zi1[k]
					zi1[k] = s*zi[k] + c*f
					zi[k] = c*zi[k] - s*f
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	// Sort eigenvalues ascending, permuting eigenvector rows (transposed
	// storage), then write the result back as columns of z.
	for i := 0; i < n-1; i++ {
		k := i
		p := d[i]
		for j := i + 1; j < n; j++ {
			if d[j] < p {
				k = j
				p = d[j]
			}
		}
		if k != i {
			d[k] = d[i]
			d[i] = p
			ri, rk := zt.Row(i), zt.Row(k)
			for j := 0; j < n; j++ {
				ri[j], rk[j] = rk[j], ri[j]
			}
		}
	}
	for i := 0; i < n; i++ {
		row := zt.Row(i)
		for j := 0; j < n; j++ {
			z.Set(j, i, row[j])
		}
	}
	return nil
}

// tqlEigvals is tql2 without eigenvector accumulation. On input e[0..n-2]
// holds the subdiagonal directly (already shifted); e is destroyed.
func tqlEigvals(d, e []float64) error {
	n := len(d)
	if n == 0 {
		return nil
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		iter := 0
		for {
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m])+dd == dd {
					break
				}
			}
			if m == l {
				break
			}
			iter++
			if iter > 80 {
				return fmt.Errorf("linalg: tql eigenvalue iteration failed at row %d", l)
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			sg := r
			if g < 0 {
				sg = -r
			}
			g = d[m] - d[l] + e[l]/(g+sg)
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	// insertion sort ascending
	for i := 1; i < n; i++ {
		v := d[i]
		j := i - 1
		for j >= 0 && d[j] > v {
			d[j+1] = d[j]
			j--
		}
		d[j+1] = v
	}
	return nil
}

// JacobiEig computes eigenvalues and eigenvectors of a symmetric matrix by
// the cyclic Jacobi method. It is slower than EigSym and exists as an
// independent cross-check for the validation ladder. Eigenvalues are
// returned ascending with matching eigenvector columns.
func JacobiEig(a *Matrix, maxSweeps int) ([]float64, *Matrix) {
	if a.Rows != a.Cols {
		panic("linalg: JacobiEig on non-square matrix")
	}
	n := a.Rows
	m := a.Clone()
	v := Identity(n)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-30 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp, akq := m.At(k, p), m.At(k, q)
					m.Set(k, p, c*akp-s*akq)
					m.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := m.At(p, k), m.At(q, k)
					m.Set(p, k, c*apk-s*aqk)
					m.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	d := make([]float64, n)
	for i := range d {
		d[i] = m.At(i, i)
	}
	// sort ascending with vectors
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		k := idx[i]
		key := d[k]
		j := i - 1
		for j >= 0 && d[idx[j]] > key {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = k
	}
	ds := make([]float64, n)
	vs := NewMatrix(n, n)
	for c2, src := range idx {
		ds[c2] = d[src]
		for r := 0; r < n; r++ {
			vs.Set(r, c2, v.At(r, src))
		}
	}
	return ds, vs
}
