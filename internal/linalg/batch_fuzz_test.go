package linalg_test

import (
	"math"
	"math/rand"
	"testing"

	"qframan/internal/linalg"
)

// FuzzGemmBatch drives the batch executor with arbitrary batch compositions
// — mixed shapes (including ones straddling the 32-padding boundary), mixed
// trans flags, interleaved transpose pairs — and checks three invariants
// against a per-call direct Gemm oracle:
//
//  1. Bit-exactness: every C matches the unbatched result exactly, so
//     grouping, padding classes, and pair-skips never change numerics.
//  2. Padding never leaks: each C lives in the middle of a guarded backing
//     array whose sentinel lanes must survive untouched — a kernel that
//     wrote a padded tail would trip them.
//  3. Mixed-shape submissions split rather than reject: the batch path
//     completes every call no matter how shapes are interleaved.
func FuzzGemmBatch(f *testing.F) {
	f.Add(int64(1), uint8(3))
	f.Add(int64(7), uint8(8))
	f.Add(int64(42), uint8(1))
	f.Add(int64(-99), uint8(12))
	f.Fuzz(func(t *testing.T, seed int64, nCalls uint8) {
		if nCalls == 0 || nCalls > 24 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		dim := func() int {
			// Bias toward micro-tile and padding boundaries.
			edges := []int{1, 2, 3, 4, 5, 7, 8, 31, 32, 33, 40, 64, 65}
			if rng.Intn(2) == 0 {
				return edges[rng.Intn(len(edges))]
			}
			return 1 + rng.Intn(70)
		}

		const guard = 8
		const sentinel = -12345.6789
		type guarded struct {
			backing []float64
			mat     *linalg.Matrix
		}
		newGuarded := func(rows, cols int) guarded {
			backing := make([]float64, rows*cols+2*guard)
			for i := 0; i < guard; i++ {
				backing[i] = sentinel
				backing[len(backing)-1-i] = sentinel
			}
			return guarded{backing: backing,
				mat: linalg.NewMatrixFrom(rows, cols, backing[guard:guard+rows*cols])}
		}
		fill := func(m *linalg.Matrix) {
			for i := range m.Data {
				m.Data[i] = rng.NormFloat64()
			}
		}

		var calls []linalg.GemmCall
		var guards []guarded
		var oracle []*linalg.Matrix
		for ci := 0; ci < int(nCalls); ci++ {
			if len(calls) > 0 && rng.Intn(4) == 0 {
				// Inject a transpose pair of a random earlier call that has
				// beta == 0, exercising the §V-D skip under fuzz.
				src := calls[rng.Intn(len(calls))]
				g := newGuarded(src.C.Cols, src.C.Rows)
				calls = append(calls, linalg.GemmCall{
					TransA: !src.TransB, TransB: !src.TransA,
					Alpha: src.Alpha, A: src.B, B: src.A, C: g.mat,
				})
				guards = append(guards, g)
				continue
			}
			m, k, n := dim(), dim(), dim()
			transA := rng.Intn(2) == 0
			transB := rng.Intn(2) == 0
			ar, ac := m, k
			if transA {
				ar, ac = k, m
			}
			br, bc := k, n
			if transB {
				br, bc = n, k
			}
			a := linalg.NewMatrix(ar, ac)
			b := linalg.NewMatrix(br, bc)
			fill(a)
			fill(b)
			g := newGuarded(m, n)
			calls = append(calls, linalg.GemmCall{
				TransA: transA, TransB: transB, Alpha: 1, A: a, B: b, C: g.mat,
			})
			guards = append(guards, g)
		}

		// Oracle: every call — including injected pairs — via a direct Gemm
		// on a fresh C, no batching involved.
		for i := range calls {
			c := &calls[i]
			w := linalg.NewMatrix(c.C.Rows, c.C.Cols)
			linalg.Gemm(c.TransA, c.TransB, c.Alpha, c.A, c.B, 0, w, nil)
			oracle = append(oracle, w)
		}

		old := linalg.GemmBatching()
		defer linalg.SetGemmBatching(old)
		linalg.SetGemmBatching(true)
		linalg.ExecuteBatched(calls, nil)

		for i := range calls {
			got, want := calls[i].C.Data, oracle[i].Data
			for j := range got {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					t.Fatalf("call %d: C[%d] = %g, direct Gemm %g", i, j, got[j], want[j])
				}
			}
		}
		for gi, g := range guards {
			for i := 0; i < guard; i++ {
				if g.backing[i] != sentinel || g.backing[len(g.backing)-1-i] != sentinel {
					t.Fatalf("call %d: guard lane clobbered — padded tail leaked out of C", gi)
				}
			}
		}
	})
}
