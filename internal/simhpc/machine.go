// Package simhpc is a discrete-event simulator of the two supercomputers
// the paper evaluates on (§V-B) — ORISE (6,000 nodes × 4 GPUs, 32
// processes/node) and the new Sunway (96,000 SW26010-pro nodes, 6
// processes/node) — running
// the QF-RAMAN fragment workload under the system-size-sensitive load
// balancer. The simulator executes the *actual* packing policy from
// internal/sched over hundreds of thousands of virtual processes and
// millions of fragments, which is precisely the regime of the paper's
// Figs. 8, 10, and 11; per-fragment costs follow the paper's measured
// size-to-time relation (5.4× between 9- and 35-atom fragments, 19× between
// 9 and 68), with the absolute scale calibrated against this repository's
// real DFPT engine.
package simhpc

import (
	"math/rand"
	"sort"

	"qframan/internal/fragment"
	"qframan/internal/structure"
)

// Machine describes one supercomputer for the simulator. The schedulable
// unit is a *leader group* — one per accelerator (ORISE: one per GPU,
// Sunway: one per core group) — whose worker processes split a fragment's
// displacement jobs among themselves (§V-A). This is why the paper can
// strong-scale 88,800 protein fragments onto 192,000 processes: the master
// balances fragments over 24,000 leader groups, and each group's 8 workers
// divide the 6N displacements internally.
type Machine struct {
	Name           string
	MaxNodes       int
	LeadersPerNode int
	// WorkersPerLeader processes serve each leader; a fragment's cost on a
	// leader group is divided by this fan-out.
	WorkersPerLeader int
	// BaseDispSeconds is the virtual cost of one displacement job of a
	// 9-atom reference fragment on one process.
	BaseDispSeconds float64
	// AssignLatencySeconds is the master→leader task-assignment round trip.
	AssignLatencySeconds float64
	// MasterServiceSeconds is the master's per-assignment service time
	// (the master is serial: heavy task traffic contends here).
	MasterServiceSeconds float64
	// JitterFraction is the amplitude of deterministic per-fragment noise.
	JitterFraction float64
}

// ORISE models the ORISE supercomputer (24,000 processes on 750 nodes in
// the paper's smallest configuration).
func ORISE() Machine {
	return Machine{
		Name:             "ORISE",
		MaxNodes:         6000,
		LeadersPerNode:   4, // one leader per GPU
		WorkersPerLeader: 8, // 32 processes per node

		BaseDispSeconds:      0.275,
		AssignLatencySeconds: 30e-6,
		MasterServiceSeconds: 2e-6,
		JitterFraction:       0.03,
	}
}

// Sunway models the new-generation Sunway (6 processes per SW26010-pro
// node; 96,000 nodes in the full system).
func Sunway() Machine {
	return Machine{
		Name:             "Sunway",
		MaxNodes:         96000,
		LeadersPerNode:   1, // one leader per SW26010-pro node…
		WorkersPerLeader: 6, // …whose six core-group processes split the jobs

		BaseDispSeconds:      1.19,
		AssignLatencySeconds: 20e-6,
		MasterServiceSeconds: 1.5e-6,
		JitterFraction:       0.02,
	}
}

// dispCostFactor is the per-displacement cost relative to a 9-atom
// fragment, fitted to the paper's measured per-fragment ratios
// (t_frag ∝ 6n·d(n); 5.4× for 35 vs 9 atoms, 19× for 68 vs 9).
func dispCostFactor(n int) float64 {
	x := float64(n - 9)
	return 1 + 0.00653*x + 0.000324*x*x
}

// FragmentCostSeconds returns the virtual time one leader group needs for
// the full displacement loop of an n-atom fragment (6n displacement jobs
// plus the reference), its workers dividing the jobs. BaseDispSeconds is
// calibrated so the water-dimer weak-scaling throughput at the paper's base
// configuration lands near the published value (2,406.3/s on 750 ORISE
// nodes; 1,661.3/s on 12,000 Sunway nodes).
func (m *Machine) FragmentCostSeconds(n int) float64 {
	jobs := float64(6*n + 1)
	return m.BaseDispSeconds * jobs * dispCostFactor(n) / float64(m.WorkersPerLeader)
}

// Workload is a population of fragments identified by atom count.
type Workload struct {
	Name  string
	Sizes []int
}

// TotalJobs returns the total number of worker jobs: 6N displacements plus
// the undisplaced reference calculation per fragment. (The paper's water
// weak-scaling count, 3,343,536 "fragments (with atomic displacement)" on
// 750 nodes, is exactly 90,366 six-atom dimers × 37 such jobs.)
func (w *Workload) TotalJobs() int64 {
	var n int64
	for _, s := range w.Sizes {
		n += 6*int64(s) + 1
	}
	return n
}

// WaterDimerWorkload reproduces the paper's uniform benchmark: n water
// dimer fragments of exactly 6 atoms.
func WaterDimerWorkload(n int) Workload {
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = 6
	}
	return Workload{Name: "water-dimer", Sizes: sizes}
}

// proteinSizePool builds a realistic fragment-size multiset by actually
// decomposing a synthetic folded protein once, then resampling.
func proteinSizePool(seed int64) []int {
	seq := structure.RandomSequence(120, seed)
	sys, err := structure.BuildProteinFolded(seq, 20)
	if err != nil {
		panic(err)
	}
	dec, err := fragment.Decompose(sys, fragment.DefaultOptions())
	if err != nil {
		panic(err)
	}
	pool := make([]int, 0, len(dec.Fragments))
	for i := range dec.Fragments {
		pool = append(pool, dec.Fragments[i].NumAtoms())
	}
	sort.Ints(pool)
	return pool
}

// ProteinWorkload draws n fragment sizes from a real QF decomposition of a
// synthetic protein (sizes span roughly 9–70 atoms like the paper's S
// protein).
func ProteinWorkload(n int, seed int64) Workload {
	pool := proteinSizePool(seed)
	rng := rand.New(rand.NewSource(seed))
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = pool[rng.Intn(len(pool))]
	}
	return Workload{Name: "protein", Sizes: sizes}
}

// MixedWorkload interleaves protein fragments and water dimers — the
// paper's Sunway configuration processes both together.
func MixedWorkload(nProtein, nWater int, seed int64) Workload {
	p := ProteinWorkload(nProtein, seed)
	w := WaterDimerWorkload(nWater)
	sizes := append(p.Sizes, w.Sizes...)
	rng := rand.New(rand.NewSource(seed + 1))
	rng.Shuffle(len(sizes), func(i, j int) { sizes[i], sizes[j] = sizes[j], sizes[i] })
	return Workload{Name: "mixed", Sizes: sizes}
}
