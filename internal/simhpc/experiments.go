package simhpc

import (
	"fmt"

	"qframan/internal/sched"
)

// Paper workload magnitudes (§VII-B): fragment counts of the smallest
// configurations; weak scaling doubles them with the node count.
const (
	// ORISEWaterFragments is the dimer count behind the paper's
	// "3,343,536 fragments (with atomic displacement)": 90,366 six-atom
	// dimers × (6·6+1) jobs.
	ORISEWaterFragments   = 90366
	ORISEProteinFragments = 88800   // 750 nodes
	SunwayMixedFragments  = 4151294 // 12,000 nodes
)

// ORISENodeCounts and SunwayNodeCounts are the paper's evaluation points.
var (
	ORISENodeCounts  = []int{750, 1500, 3000, 6000}
	SunwayNodeCounts = []int{12000, 24000, 48000, 96000}
)

// ExperimentRow is one line of a scaling experiment.
type ExperimentRow struct {
	RunResult
	// Efficiency is relative to the first node count of the sweep (1.0).
	Efficiency float64
}

// ExperimentOptions configures a sweep. Scale divides both node counts and
// fragment counts, letting the paper's configurations (up to 96,000 nodes /
// 25.9M fragments) run quickly at reduced size with identical ratios;
// Scale=1 reproduces the full published configuration.
type ExperimentOptions struct {
	Scale    int
	Packer   sched.PackerOptions
	Prefetch bool
	Seed     int64
	// NodeMTBFSeconds > 0 runs the sweep with injected node failures (see
	// RunConfig.NodeMTBFSeconds) so Fig. 8/10/11-style experiments expose
	// the load-balance and efficiency cost of fault recovery.
	NodeMTBFSeconds float64
}

// DefaultExperimentOptions uses the paper's policy at 1/16 scale.
func DefaultExperimentOptions() ExperimentOptions {
	return ExperimentOptions{
		Scale:    16,
		Packer:   sched.DefaultPackerOptions(0),
		Prefetch: true,
		Seed:     1,
	}
}

func (o *ExperimentOptions) scaled(v int) int {
	s := o.Scale
	if s < 1 {
		s = 1
	}
	n := v / s
	if n < 1 {
		n = 1
	}
	return n
}

// StrongScaling runs a fixed workload across the node sweep (the paper's
// Fig. 10).
func StrongScaling(m Machine, w Workload, nodeCounts []int, opt ExperimentOptions) ([]ExperimentRow, error) {
	var rows []ExperimentRow
	var base *RunResult
	for _, nodes := range nodeCounts {
		res, err := Simulate(m, w, RunConfig{
			Nodes:           opt.scaled(nodes),
			Packer:          opt.Packer,
			Prefetch:        opt.Prefetch,
			Seed:            opt.Seed,
			NodeMTBFSeconds: opt.NodeMTBFSeconds,
		})
		if err != nil {
			return nil, err
		}
		if base == nil {
			base = res
		}
		rows = append(rows, ExperimentRow{RunResult: *res, Efficiency: StrongEfficiency(base, res)})
	}
	return rows, nil
}

// WeakScaling doubles the workload with the node count (the paper's
// Fig. 11). makeWorkload builds a workload with the requested fragment
// count.
func WeakScaling(m Machine, makeWorkload func(frags int) Workload, baseFrags int, nodeCounts []int, opt ExperimentOptions) ([]ExperimentRow, error) {
	if len(nodeCounts) == 0 {
		return nil, fmt.Errorf("simhpc: empty node sweep")
	}
	var rows []ExperimentRow
	var base *RunResult
	n0 := nodeCounts[0]
	for _, nodes := range nodeCounts {
		frags := int(int64(baseFrags) * int64(nodes) / int64(n0))
		res, err := Simulate(m, makeWorkload(opt.scaled(frags)), RunConfig{
			Nodes:           opt.scaled(nodes),
			Packer:          opt.Packer,
			Prefetch:        opt.Prefetch,
			Seed:            opt.Seed,
			NodeMTBFSeconds: opt.NodeMTBFSeconds,
		})
		if err != nil {
			return nil, err
		}
		if base == nil {
			base = res
		}
		rows = append(rows, ExperimentRow{RunResult: *res, Efficiency: WeakEfficiency(base, res)})
	}
	return rows, nil
}

// LoadBalance runs a fixed workload across the node sweep and reports the
// execution-time variation across leader groups (the paper's Fig. 8): with
// the population fixed, fewer fragments land on each leader as nodes grow,
// so the variation widens — exactly the paper's observation ("the time
// variance increases with the number of nodes").
func LoadBalance(m Machine, w Workload, nodeCounts []int, opt ExperimentOptions) ([]ExperimentRow, error) {
	return StrongScaling(m, w, nodeCounts, opt)
}

// SunwayMixedWorkload builds the Sunway mixed population: protein fragments
// co-scheduled with water dimers (the paper co-locates both systems, which
// it credits for Sunway's tighter balance).
func SunwayMixedWorkload(frags int, seed int64) Workload {
	nProtein := frags / 20 // ~5% protein-sized fragments
	return MixedWorkload(nProtein, frags-nProtein, seed)
}
