package simhpc

import (
	"container/heap"
	"fmt"
	"math"

	"qframan/internal/faults"
	"qframan/internal/sched"
)

// RunConfig configures one simulated execution.
type RunConfig struct {
	Nodes    int
	Packer   sched.PackerOptions
	Prefetch bool
	Seed     int64
	// NodeMTBFSeconds, when positive, turns faults on: each node fails
	// with an exponential mean time between failures of this many virtual
	// seconds, killing the task its leader group is executing at a uniform
	// point of its execution. The wasted partial work is paid and the task
	// re-executes on the same group — the paper-scale effect is dramatic
	// because the *system* MTBF divides by the node count (a 24 h per-node
	// MTBF across 96,000 nodes is one failure every ~0.9 s).
	NodeMTBFSeconds float64
}

// maxSimRetries caps re-executions of one task so a cost ≫ MTBF
// configuration degrades into a visibly terrible makespan instead of an
// unbounded loop.
const maxSimRetries = 50

// ProcStats summarizes the per-leader-group execution-time distribution —
// the quantity behind the paper's Fig. 8 (execution time variation across
// computing nodes).
type ProcStats struct {
	MeanBusySeconds float64
	// MinDeviation and MaxDeviation are (min−mean)/mean and
	// (max−mean)/mean, e.g. −0.01 and +0.015 for the paper's −1%…+1.5%.
	MinDeviation, MaxDeviation float64
}

// RunResult is the outcome of one simulation.
type RunResult struct {
	Machine   string
	Nodes     int
	Procs     int // total worker processes
	Leaders   int // leader groups (scheduling units)
	Fragments int
	Jobs      int64 // displacement jobs
	// MakespanSeconds is the virtual wall-clock time.
	MakespanSeconds float64
	// ThroughputJobs is displacement jobs per virtual second.
	ThroughputJobs float64
	// ThroughputFragments is fragments per virtual second (the paper's
	// weak-scaling metric counts fragment·displacement units; both are
	// reported).
	ThroughputFragments float64
	NumTasks            int
	Proc                ProcStats
	MasterBusySeconds   float64
	// Retries counts task re-executions caused by injected node failures
	// (zero when RunConfig.NodeMTBFSeconds is off).
	Retries int64
	// WastedSeconds is the total partial work lost to those failures,
	// summed over all leader groups.
	WastedSeconds float64
}

// procEvent is a heap entry: the time a process becomes idle.
type procEvent struct {
	t    float64
	proc int32
}

type eventHeap []procEvent

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].t < h[j].t }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(procEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// jitter returns a deterministic multiplicative noise factor for a fragment
// on a process.
func jitter(seed int64, frag, proc int, amplitude float64) float64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(frag)*0xC2B2AE3D27D4EB4F ^ uint64(proc)*0x165667B19E3779F9
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	u := float64(x&0xFFFFFF)/float64(1<<24)*2 - 1 // uniform in (−1,1)
	return 1 + amplitude*u
}

// Simulate runs the workload on the machine at the given node count using
// the system-size-sensitive (or ablation) packing policy and returns the
// virtual-time results. The event loop models: idle process → master
// assignment (serial master with service time + latency, hidden by
// prefetch) → task execution (sum of per-fragment costs with deterministic
// noise) → idle.
func Simulate(m Machine, w Workload, cfg RunConfig) (*RunResult, error) {
	if cfg.Nodes <= 0 || cfg.Nodes > m.MaxNodes {
		return nil, fmt.Errorf("simhpc: %s supports 1–%d nodes, got %d", m.Name, m.MaxNodes, cfg.Nodes)
	}
	leaders := cfg.Nodes * m.LeadersPerNode
	cfg.Packer.NumLeaders = leaders
	packer := sched.NewPacker(w.Sizes, cfg.Packer)

	busy := make([]float64, leaders)
	var masterFree, makespan, masterBusy float64
	h := make(eventHeap, leaders)
	for p := range h {
		h[p] = procEvent{t: 0, proc: int32(p)}
	}
	heap.Init(&h)

	numTasks := 0
	var retries int64
	var totalWasted float64
	for {
		task := packer.Next()
		if task == nil {
			break
		}
		numTasks++
		ev := heap.Pop(&h).(procEvent)

		// Master assignment: the serial master serves requests in order;
		// without prefetch the process additionally idles for the
		// round-trip latency.
		start := math.Max(ev.t, masterFree)
		masterFree = start + m.MasterServiceSeconds
		masterBusy += m.MasterServiceSeconds
		if !cfg.Prefetch {
			// Un-prefetched assignment exposes the round-trip latency;
			// with prefetch it is fully overlapped with the previous task.
			start += m.AssignLatencySeconds
		}

		var cost float64
		for _, fi := range task.Fragments {
			cost += m.FragmentCostSeconds(w.Sizes[fi]) * jitter(cfg.Seed, fi, int(ev.proc), m.JitterFraction)
		}
		// Node-failure injection: draw per execution attempt; a failure at
		// a uniform fraction of the task wastes that partial work and the
		// task restarts from scratch (the runtime's straggler requeue plus
		// retry make this the dominant recovery path at scale).
		var wasted float64
		if cfg.NodeMTBFSeconds > 0 {
			pFail := 1 - math.Exp(-cost/cfg.NodeMTBFSeconds)
			for attempt := 1; attempt <= maxSimRetries; attempt++ {
				if faults.Uniform(cfg.Seed, task.ID, int(ev.proc)*64+attempt, 0x6A) >= pFail {
					break
				}
				frac := faults.Uniform(cfg.Seed, task.ID, int(ev.proc)*64+attempt, 0x6B)
				wasted += frac * cost
				retries++
			}
		}
		end := start + wasted + cost
		busy[ev.proc] += wasted + cost
		totalWasted += wasted
		if end > makespan {
			makespan = end
		}
		heap.Push(&h, procEvent{t: end, proc: ev.proc})
	}

	res := &RunResult{
		Machine:           m.Name,
		Nodes:             cfg.Nodes,
		Procs:             leaders * m.WorkersPerLeader,
		Leaders:           leaders,
		Fragments:         len(w.Sizes),
		Jobs:              w.TotalJobs(),
		MakespanSeconds:   makespan,
		NumTasks:          numTasks,
		MasterBusySeconds: masterBusy,
		Retries:           retries,
		WastedSeconds:     totalWasted,
	}
	if makespan > 0 {
		res.ThroughputJobs = float64(res.Jobs) / makespan
		res.ThroughputFragments = float64(res.Fragments) / makespan
	}
	var sum, min, max float64
	min = math.Inf(1)
	for _, b := range busy {
		sum += b
		min = math.Min(min, b)
		max = math.Max(max, b)
	}
	mean := sum / float64(leaders)
	res.Proc.MeanBusySeconds = mean
	if mean > 0 {
		res.Proc.MinDeviation = (min - mean) / mean
		res.Proc.MaxDeviation = (max - mean) / mean
	}
	return res, nil
}

// Efficiency computes parallel efficiency of run r relative to base: ideal
// scaling keeps nodes×time constant (strong scaling) or throughput/node
// constant (weak scaling — pass the throughputs).
func StrongEfficiency(base, r *RunResult) float64 {
	return base.MakespanSeconds * float64(base.Nodes) / (r.MakespanSeconds * float64(r.Nodes))
}

// WeakEfficiency is throughput-per-node relative to the base run.
func WeakEfficiency(base, r *RunResult) float64 {
	return (r.ThroughputJobs / float64(r.Nodes)) / (base.ThroughputJobs / float64(base.Nodes))
}
