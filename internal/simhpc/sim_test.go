package simhpc

import (
	"math"
	"testing"

	"qframan/internal/sched"
)

func testOpts() ExperimentOptions {
	opt := DefaultExperimentOptions()
	opt.Scale = 64 // keep unit tests fast
	return opt
}

func TestSimulateBasics(t *testing.T) {
	m := ORISE()
	w := WaterDimerWorkload(5000)
	res, err := Simulate(m, w, RunConfig{Nodes: 10, Packer: sched.DefaultPackerOptions(0), Prefetch: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs != 320 {
		t.Fatalf("procs = %d, want 320", res.Procs)
	}
	if res.MakespanSeconds <= 0 || res.ThroughputJobs <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	if res.Jobs != int64(5000*(6*6+1)) {
		t.Fatalf("jobs = %d", res.Jobs)
	}
	if res.Leaders != 40 {
		t.Fatalf("leaders = %d, want 40", res.Leaders)
	}
	// Work conservation: total busy time ≈ Σ fragment costs.
	var want float64
	for _, s := range w.Sizes {
		want += m.FragmentCostSeconds(s)
	}
	got := res.Proc.MeanBusySeconds * float64(res.Leaders)
	if math.Abs(got-want)/want > m.JitterFraction {
		t.Fatalf("busy-time sum %v vs workload cost %v", got, want)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	m := Sunway()
	w := ProteinWorkload(2000, 7)
	cfg := RunConfig{Nodes: 20, Packer: sched.DefaultPackerOptions(0), Prefetch: true, Seed: 3}
	a, err := Simulate(m, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(m, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MakespanSeconds != b.MakespanSeconds || a.NumTasks != b.NumTasks {
		t.Fatal("simulation not deterministic")
	}
}

func TestSimulateValidation(t *testing.T) {
	m := ORISE()
	w := WaterDimerWorkload(10)
	if _, err := Simulate(m, w, RunConfig{Nodes: 0}); err == nil {
		t.Fatal("accepted zero nodes")
	}
	if _, err := Simulate(m, w, RunConfig{Nodes: m.MaxNodes + 1}); err == nil {
		t.Fatal("accepted too many nodes")
	}
}

func TestCostModelMatchesPaperRatios(t *testing.T) {
	m := ORISE()
	r95 := m.FragmentCostSeconds(35) / m.FragmentCostSeconds(9)
	if math.Abs(r95-5.4) > 0.3 {
		t.Fatalf("35:9 fragment cost ratio %v, paper says 5.4", r95)
	}
	r19 := m.FragmentCostSeconds(68) / m.FragmentCostSeconds(9)
	if math.Abs(r19-19) > 1.5 {
		t.Fatalf("68:9 fragment cost ratio %v, paper says 19", r19)
	}
}

func TestStrongScalingEfficiencyHigh(t *testing.T) {
	opt := testOpts()
	w := ProteinWorkload(ORISEProteinFragments/opt.Scale, 5)
	rows, err := StrongScaling(ORISE(), w, ORISENodeCounts, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Efficiency != 1 {
		t.Fatalf("base efficiency %v", rows[0].Efficiency)
	}
	for i, r := range rows {
		if r.Efficiency < 0.85 || r.Efficiency > 1.02 {
			t.Fatalf("row %d efficiency %v out of the near-linear regime", i, r.Efficiency)
		}
	}
	// Efficiency decreases (or stays) as nodes grow.
	for i := 1; i < len(rows); i++ {
		if rows[i].Efficiency > rows[i-1].Efficiency+0.02 {
			t.Fatalf("efficiency increased anomalously: %v", rows)
		}
	}
}

func TestWeakScalingEfficiencyHigh(t *testing.T) {
	opt := testOpts()
	mk := func(frags int) Workload { return WaterDimerWorkload(frags) }
	rows, err := WeakScaling(ORISE(), mk, ORISEWaterFragments, ORISENodeCounts, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.Efficiency < 0.9 || r.Efficiency > 1.05 {
			t.Fatalf("row %d weak efficiency %v", i, r.Efficiency)
		}
	}
	// Throughput roughly doubles with nodes.
	if rows[1].ThroughputJobs < 1.8*rows[0].ThroughputJobs {
		t.Fatalf("throughput did not scale: %v vs %v", rows[1].ThroughputJobs, rows[0].ThroughputJobs)
	}
}

func TestLoadBalanceDeviationsSmall(t *testing.T) {
	opt := testOpts()
	w := ProteinWorkload(ORISEProteinFragments/opt.Scale, 11)
	rows, err := LoadBalance(ORISE(), w, ORISENodeCounts, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 8: tight at the base configuration (−1%…+1.5%), widening
	// as the fixed population spreads over more leaders (−9.2%…+12.7% at
	// 6,000 nodes) but still bounded.
	if rows[0].Proc.MaxDeviation > 0.05 || rows[0].Proc.MinDeviation < -0.05 {
		t.Fatalf("base-config deviations %v/%v too large",
			rows[0].Proc.MinDeviation, rows[0].Proc.MaxDeviation)
	}
	last := rows[len(rows)-1]
	if last.Proc.MaxDeviation > 0.5 || last.Proc.MinDeviation < -0.5 {
		t.Fatalf("largest-config deviations %v/%v out of bounds",
			last.Proc.MinDeviation, last.Proc.MaxDeviation)
	}
	if last.Proc.MaxDeviation <= rows[0].Proc.MaxDeviation {
		t.Fatalf("variation did not widen with node count: %v → %v",
			rows[0].Proc.MaxDeviation, last.Proc.MaxDeviation)
	}
}

func TestSizeSensitiveBeatsStaticBlock(t *testing.T) {
	opt := testOpts()
	w := ProteinWorkload(40000, 13)
	cfgDyn := RunConfig{Nodes: 40, Packer: sched.DefaultPackerOptions(0), Prefetch: true, Seed: 1}
	dyn, err := Simulate(ORISE(), w, cfgDyn)
	if err != nil {
		t.Fatal(err)
	}
	pk := sched.DefaultPackerOptions(0)
	pk.Policy = sched.StaticBlock
	static, err := Simulate(ORISE(), w, RunConfig{Nodes: 40, Packer: pk, Prefetch: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dyn.MakespanSeconds >= static.MakespanSeconds {
		t.Fatalf("size-sensitive makespan %v not better than static %v",
			dyn.MakespanSeconds, static.MakespanSeconds)
	}
	_ = opt
}

func TestPrefetchHelpsWithoutBatching(t *testing.T) {
	// With single-fragment FIFO tasks and an assignment latency comparable
	// to the task length, the master round trip is exposed; prefetch must
	// shorten the makespan. (At the real machines' microsecond latencies
	// the effect is tiny per task but accumulates over millions of tasks.)
	w := WaterDimerWorkload(60000)
	pk := sched.DefaultPackerOptions(0)
	pk.Policy = sched.FIFO
	pk.FIFOTaskSize = 1
	m := ORISE()
	m.AssignLatencySeconds = 0.5
	with, err := Simulate(m, w, RunConfig{Nodes: 8, Packer: pk, Prefetch: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Simulate(m, w, RunConfig{Nodes: 8, Packer: pk, Prefetch: false, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if with.MakespanSeconds >= without.MakespanSeconds {
		t.Fatalf("prefetch %v not faster than no-prefetch %v",
			with.MakespanSeconds, without.MakespanSeconds)
	}
}

func TestWorkloadGenerators(t *testing.T) {
	w := WaterDimerWorkload(10)
	for _, s := range w.Sizes {
		if s != 6 {
			t.Fatal("water dimer fragments must have 6 atoms")
		}
	}
	p := ProteinWorkload(500, 3)
	min, max := p.Sizes[0], p.Sizes[0]
	for _, s := range p.Sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if min < 5 || max > 100 || max-min < 10 {
		t.Fatalf("protein fragment sizes [%d,%d] implausible", min, max)
	}
	mix := SunwayMixedWorkload(1000, 3)
	if len(mix.Sizes) != 1000 {
		t.Fatalf("mixed workload size %d", len(mix.Sizes))
	}
}

func TestSimulateWithNodeFaults(t *testing.T) {
	m := ORISE()
	w := WaterDimerWorkload(5000)
	base := RunConfig{Nodes: 10, Packer: sched.DefaultPackerOptions(0), Prefetch: true, Seed: 1}
	clean, err := Simulate(m, w, base)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Retries != 0 || clean.WastedSeconds != 0 {
		t.Fatalf("faults off must mean zero retries, got %d / %vs", clean.Retries, clean.WastedSeconds)
	}

	faulty := base
	faulty.NodeMTBFSeconds = 100 // task costs are ~seconds: failures are frequent
	res, err := Simulate(m, w, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 {
		t.Fatal("aggressive MTBF injected no failures")
	}
	if res.WastedSeconds <= 0 {
		t.Fatal("retries must waste partial work")
	}
	if res.MakespanSeconds <= clean.MakespanSeconds {
		t.Fatalf("fault recovery cannot be free: faulty makespan %v vs clean %v",
			res.MakespanSeconds, clean.MakespanSeconds)
	}
	// Every fragment is still processed exactly the workload's job count —
	// failures re-execute work, they never drop it.
	if res.Jobs != clean.Jobs || res.Fragments != clean.Fragments {
		t.Fatalf("fault injection changed the workload: %+v vs %+v", res, clean)
	}

	// Determinism: same seed, same faults, same makespan.
	res2, err := Simulate(m, w, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if res2.MakespanSeconds != res.MakespanSeconds || res2.Retries != res.Retries {
		t.Fatal("fault injection is not deterministic in the seed")
	}
}

func TestExperimentSweepsWithFaults(t *testing.T) {
	opt := testOpts()
	opt.NodeMTBFSeconds = 200
	rows, err := StrongScaling(ORISE(), WaterDimerWorkload(3000), ORISENodeCounts, opt)
	if err != nil {
		t.Fatal(err)
	}
	var retries int64
	for _, r := range rows {
		retries += r.Retries
	}
	if retries == 0 {
		t.Fatal("fault-enabled sweep recorded no retries")
	}
}
