package sched

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qframan/internal/constants"
	"qframan/internal/faults"
	"qframan/internal/fragment"
	"qframan/internal/hessian"
	"qframan/internal/linalg"
)

// fakeDecomposition builds a synthetic decomposition of nf fragments with
// the given atom counts — enough structure for the packer and the ledger,
// no quantum content.
func fakeDecomposition(sizes []int) *fragment.Decomposition {
	dec := &fragment.Decomposition{Fragments: make([]fragment.Fragment, len(sizes))}
	for i, n := range sizes {
		dec.Fragments[i] = fragment.Fragment{
			ID:  i,
			Els: make([]constants.Element, n),
		}
	}
	return dec
}

func randomSizes(rng *rand.Rand, nf int) []int {
	sizes := make([]int, nf)
	for i := range sizes {
		sizes[i] = 3 + rng.Intn(66) // the paper's 9–68-atom span, roughly
	}
	return sizes
}

// fakeData is the deterministic per-fragment payload: comparing it across
// runs proves a chaotic run produced exactly the fault-free numbers.
func fakeData(fragID int) *hessian.FragmentData {
	h := linalg.NewMatrix(1, 1)
	h.Set(0, 0, float64(fragID)*1.25+0.5)
	return &hessian.FragmentData{Hess: h}
}

// fakeProcess sleeps a deterministic sub-millisecond time and returns the
// fragment's payload.
func fakeProcess(f *fragment.Fragment, _ Options) (*hessian.FragmentData, error) {
	time.Sleep(time.Duration(faults.Uniform(11, f.ID, 0, 1) * float64(time.Millisecond)))
	return fakeData(f.ID), nil
}

func chaosRetry() faults.RetryPolicy {
	return faults.RetryPolicy{
		MaxAttempts:    5,
		Base:           200 * time.Microsecond,
		Max:            2 * time.Millisecond,
		Multiplier:     2,
		JitterFraction: 0.2,
	}
}

// checkExactlyOnce asserts every fragment's result is present, correct, and
// was accepted exactly once across all leaders.
func checkExactlyOnce(t *testing.T, dec *fragment.Decomposition, datas []*hessian.FragmentData, report *Report) {
	t.Helper()
	if len(datas) != len(dec.Fragments) {
		t.Fatalf("got %d results for %d fragments", len(datas), len(dec.Fragments))
	}
	for i, d := range datas {
		if d == nil || d.Hess == nil {
			t.Fatalf("fragment %d lost", i)
		}
		if got, want := d.Hess.At(0, 0), float64(i)*1.25+0.5; got != want {
			t.Fatalf("fragment %d carries payload %v, want %v", i, got, want)
		}
	}
	if len(report.Failed) != 0 || report.Degraded {
		t.Fatalf("unexpected degradation: failed %v", report.Failed)
	}
	accepted := 0
	for _, ls := range report.Leaders {
		accepted += ls.Fragments
	}
	if accepted != len(dec.Fragments) {
		t.Fatalf("leaders accepted %d completions for %d fragments (duplicates or losses)", accepted, len(dec.Fragments))
	}
}

// TestChaosExactlyOnceAllPolicies is the scheduler's chaos property test:
// random task sizes, injected transient errors, NaN divergences, panics,
// stragglers (plus watchdog-induced duplicate completions) across every
// packing policy — and every fragment must still complete exactly once with
// the right payload.
func TestChaosExactlyOnceAllPolicies(t *testing.T) {
	for _, pol := range []Policy{SizeSensitive, FIFO, StaticBlock} {
		for seed := int64(1); seed <= 3; seed++ {
			pol, seed := pol, seed
			t.Run(fmt.Sprintf("policy%d_seed%d", pol, seed), func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(seed))
				dec := fakeDecomposition(randomSizes(rng, 30+rng.Intn(31)))
				opt := DefaultOptions()
				opt.NumLeaders = 4
				opt.WorkersPerLeader = 1
				opt.Packer.Policy = pol
				opt.Prefetch = true
				opt.StragglerTimeout = 10 * time.Millisecond
				opt.Retry = chaosRetry()
				opt.Injector = faults.NewInjector(faults.Config{
					Seed:           seed,
					TransientRate:  0.15,
					NaNRate:        0.10,
					PanicRate:      0.05,
					StragglerRate:  0.05,
					StragglerDelay: 25 * time.Millisecond,
					MaxPerFragment: 2,
				})
				opt.Process = fakeProcess
				datas, report, err := Run(dec, opt)
				if err != nil {
					t.Fatal(err)
				}
				checkExactlyOnce(t, dec, datas, report)
			})
		}
	}
}

// TestChaosAcceptance is the PR's acceptance scenario: a ≥40-fragment run
// with ≥10% of fragments hit by transient worker failures plus two
// artificial stragglers completes with zero lost fragments, a positive
// retry count, and results identical to a fault-free run.
func TestChaosAcceptance(t *testing.T) {
	const nf = 48
	sizes := make([]int, nf)
	for i := range sizes {
		sizes[i] = 6 + i%30
	}

	clean := func() ([]*hessian.FragmentData, *Report) {
		dec := fakeDecomposition(sizes)
		opt := DefaultOptions()
		opt.NumLeaders = 4
		opt.WorkersPerLeader = 1
		opt.Process = fakeProcess
		datas, report, err := Run(dec, opt)
		if err != nil {
			t.Fatal(err)
		}
		return datas, report
	}
	cleanDatas, _ := clean()

	inj := faults.NewInjector(faults.Config{
		Seed:           9,
		TransientRate:  0.30,
		StragglerFrags: []int{5, 17},
		StragglerDelay: 60 * time.Millisecond,
		MaxPerFragment: 2,
	})
	// The injector is a pure function of the seed: count the fault
	// population up front so the ≥10% claim is checked, not assumed.
	faulted := 0
	for fi := 0; fi < nf; fi++ {
		if inj.WouldFault(fi, 1) {
			faulted++
		}
	}
	if faulted < nf/10 {
		t.Fatalf("seed 9 injects first-attempt faults into only %d/%d fragments — below the 10%% floor", faulted, nf)
	}

	dec := fakeDecomposition(sizes)
	opt := DefaultOptions()
	opt.NumLeaders = 4
	opt.WorkersPerLeader = 1
	opt.StragglerTimeout = 15 * time.Millisecond
	opt.Retry = chaosRetry()
	opt.Injector = inj
	opt.Process = fakeProcess
	datas, report, err := Run(dec, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkExactlyOnce(t, dec, datas, report)
	if report.Retries == 0 {
		t.Fatal("chaos run reported zero retries despite injected transient failures")
	}
	if report.Requeues == 0 {
		t.Fatal("stragglers were never requeued by the watchdog")
	}
	for i := range datas {
		if datas[i].Hess.MaxAbsDiff(cleanDatas[i].Hess) != 0 {
			t.Fatalf("fragment %d differs between chaotic and fault-free runs", i)
		}
	}
}

// TestDeterministicFailureDegrades: a fragment forced into deterministic
// failure consumes the fail-soft budget — the run completes degraded with
// exactly that fragment reported failed and everything else intact.
func TestDeterministicFailureDegrades(t *testing.T) {
	dec := fakeDecomposition(randomSizes(rand.New(rand.NewSource(2)), 40))
	opt := DefaultOptions()
	opt.NumLeaders = 3
	opt.WorkersPerLeader = 1
	opt.Retry = chaosRetry()
	opt.MaxFailedFragments = 1
	opt.Injector = faults.NewInjector(faults.Config{Seed: 4, HardFailFrags: []int{7}})
	opt.Process = fakeProcess
	datas, report, err := Run(dec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Degraded || len(report.Failed) != 1 || report.Failed[0] != 7 {
		t.Fatalf("want degraded run with Failed == [7], got degraded=%v failed=%v", report.Degraded, report.Failed)
	}
	if datas[7] != nil {
		t.Fatal("failed fragment must have a nil result slot")
	}
	for i, d := range datas {
		if i != 7 && d == nil {
			t.Fatalf("fragment %d lost alongside the failed one", i)
		}
	}
}

// TestDeterministicFailureAbortsWithoutBudget: with no fail-soft budget the
// run must abort with the *real* error — not the old masked
// "fragment N never processed".
func TestDeterministicFailureAbortsWithoutBudget(t *testing.T) {
	dec := fakeDecomposition([]int{6, 6, 6, 6, 6, 6, 6, 6})
	opt := DefaultOptions()
	opt.NumLeaders = 2
	opt.WorkersPerLeader = 1
	opt.Prefetch = true
	opt.Packer.Policy = FIFO
	opt.Packer.FIFOTaskSize = 1
	opt.Retry = chaosRetry()
	opt.Injector = faults.NewInjector(faults.Config{Seed: 1, HardFailFrags: []int{0}})
	opt.Process = fakeProcess
	_, _, err := Run(dec, opt)
	if err == nil {
		t.Fatal("hard failure with zero budget must abort the run")
	}
	if strings.Contains(err.Error(), "never processed") {
		t.Fatalf("root error masked by bookkeeping: %v", err)
	}
	if !strings.Contains(err.Error(), "forced divergence") {
		t.Fatalf("abort error does not carry the injected root cause: %v", err)
	}
}

// TestMultiLeaderErrorsJoined: when several leaders fail concurrently every
// error must surface (errors.Join), not just the lowest-indexed leader's.
func TestMultiLeaderErrorsJoined(t *testing.T) {
	const nl = 4
	dec := fakeDecomposition([]int{6, 6, 6, 6})
	var entered atomic.Int32
	ready := make(chan struct{})
	opt := DefaultOptions()
	opt.NumLeaders = nl
	opt.WorkersPerLeader = 1
	opt.Prefetch = false
	opt.Packer.Policy = FIFO
	opt.Packer.FIFOTaskSize = 1
	opt.Process = func(f *fragment.Fragment, _ Options) (*hessian.FragmentData, error) {
		// Barrier: every leader must be mid-fragment before any fails, so
		// all four failures race into the abort path together.
		if entered.Add(1) == nl {
			close(ready)
		}
		<-ready
		return nil, fmt.Errorf("engine exploded on fragment %d", f.ID)
	}
	_, _, err := Run(dec, opt)
	if err == nil {
		t.Fatal("run must fail")
	}
	for fi := 0; fi < nl; fi++ {
		if !strings.Contains(err.Error(), fmt.Sprintf("engine exploded on fragment %d", fi)) {
			t.Fatalf("error from fragment %d masked: %v", fi, err)
		}
	}
}

// TestPanicRecoveredAndRetried: a panic in the fragment engine is recovered
// at the leader, classified transient, and the retry completes the run.
func TestPanicRecoveredAndRetried(t *testing.T) {
	dec := fakeDecomposition([]int{6, 6, 6, 6, 6, 6})
	var calls sync.Map
	opt := DefaultOptions()
	opt.NumLeaders = 2
	opt.WorkersPerLeader = 1
	opt.Retry = chaosRetry()
	opt.Process = func(f *fragment.Fragment, o Options) (*hessian.FragmentData, error) {
		if _, loaded := calls.LoadOrStore(f.ID, true); !loaded && f.ID == 2 {
			panic("worker segfault stand-in")
		}
		return fakeData(f.ID), nil
	}
	datas, report, err := Run(dec, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkExactlyOnce(t, dec, datas, report)
	if report.Panics != 1 {
		t.Fatalf("recovered panics = %d, want 1", report.Panics)
	}
	if report.Retries != 1 {
		t.Fatalf("retries = %d, want 1", report.Retries)
	}
}

// TestNaNResultRejected: a result carrying NaN — an organic divergence the
// solvers missed — must be rejected, and with no retry able to fix a
// deterministic failure it lands in the fail-soft ledger.
func TestNaNResultRejected(t *testing.T) {
	dec := fakeDecomposition([]int{6, 6, 6})
	opt := DefaultOptions()
	opt.NumLeaders = 1
	opt.WorkersPerLeader = 1
	opt.Retry = chaosRetry()
	opt.MaxFailedFragments = 1
	opt.Process = func(f *fragment.Fragment, _ Options) (*hessian.FragmentData, error) {
		d := fakeData(f.ID)
		if f.ID == 1 {
			d.Hess.Set(0, 0, math.NaN())
		}
		return d, nil
	}
	datas, report, err := Run(dec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Failed) != 1 || report.Failed[0] != 1 {
		t.Fatalf("NaN fragment not in failure ledger: %v", report.Failed)
	}
	if datas[0] == nil || datas[2] == nil {
		t.Fatal("healthy fragments lost")
	}
	if report.Retries != 0 {
		t.Fatalf("organic NaN must not be retried (deterministic), got %d retries", report.Retries)
	}
}

// TestTransientExhaustionFallsBackToBudget: a fragment whose transient
// failures outlast the retry budget degrades (budget permitting) instead of
// aborting.
func TestTransientExhaustionFallsBackToBudget(t *testing.T) {
	dec := fakeDecomposition([]int{6, 6, 6, 6})
	opt := DefaultOptions()
	opt.NumLeaders = 2
	opt.WorkersPerLeader = 1
	opt.Retry = chaosRetry() // 5 attempts
	opt.MaxFailedFragments = 1
	opt.Process = func(f *fragment.Fragment, _ Options) (*hessian.FragmentData, error) {
		if f.ID == 3 {
			return nil, faults.MarkTransient(fmt.Errorf("flaky interconnect"))
		}
		return fakeData(f.ID), nil
	}
	datas, report, err := Run(dec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Failed) != 1 || report.Failed[0] != 3 {
		t.Fatalf("exhausted fragment not failed: %v", report.Failed)
	}
	if report.Retries != opt.Retry.Attempts()-1 {
		t.Fatalf("retries = %d, want %d (budget exhausted)", report.Retries, opt.Retry.Attempts()-1)
	}
	if datas[3] != nil {
		t.Fatal("exhausted fragment must have nil data")
	}
}
