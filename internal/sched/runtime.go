package sched

import (
	"fmt"
	"sync"
	"time"

	"qframan/internal/fragment"
	"qframan/internal/hessian"
	"qframan/internal/scf"
)

// Options configures the goroutine runtime.
type Options struct {
	NumLeaders       int
	WorkersPerLeader int
	Packer           PackerOptions
	Job              hessian.JobOptions
	// Prefetch lets a leader request its next task while the current one
	// is still executing (Fig. 4(d)/(e)); workers that finish early start
	// on the prefetched task immediately.
	Prefetch bool
	// StragglerTimeout re-enqueues fragments that have been processing
	// longer than this without completing (Fig. 4(a): "fragments processed
	// for a long time but not yet completed are marked un-processed again").
	// The first completion wins; late duplicates are discarded. Zero
	// disables the watchdog.
	StragglerTimeout time.Duration
	// Process overrides the fragment engine (the leader's model build +
	// displacement fan-out). Tests and custom engines use it; nil selects
	// the built-in SCF+DFPT pipeline.
	Process func(f *fragment.Fragment, opt Options) (*hessian.FragmentData, error)
}

// DefaultOptions sizes the runtime for functional (single-machine) runs.
func DefaultOptions() Options {
	return Options{
		NumLeaders:       2,
		WorkersPerLeader: 2,
		Packer:           DefaultPackerOptions(2),
		Job:              hessian.DefaultJobOptions(),
		Prefetch:         true,
	}
}

// LeaderStats records per-leader accounting for the load-balance analyses.
type LeaderStats struct {
	Tasks         int
	Fragments     int
	Displacements int
	Busy          time.Duration
}

// Report summarizes a run.
type Report struct {
	Leaders  []LeaderStats
	Elapsed  time.Duration
	NumTasks int
	// Requeues counts straggler re-enqueues performed by the watchdog.
	Requeues int
}

// Run executes the displacement loops of all fragments on the three-level
// runtime and returns per-fragment data in decomposition order.
func Run(dec *fragment.Decomposition, opt Options) ([]*hessian.FragmentData, *Report, error) {
	if opt.NumLeaders <= 0 || opt.WorkersPerLeader <= 0 {
		return nil, nil, fmt.Errorf("sched: need at least one leader and one worker")
	}
	nf := len(dec.Fragments)
	sizes := make([]int, nf)
	for i := range dec.Fragments {
		sizes[i] = dec.Fragments[i].NumAtoms()
	}
	opt.Packer.NumLeaders = opt.NumLeaders
	packer := NewPacker(sizes, opt.Packer)
	process := opt.Process
	if process == nil {
		process = leaderProcessFragment
	}

	// The master hands out tasks through a mutex-guarded packer: this is
	// the "leader-available → task-assignment" signal loop of Fig. 4(a),
	// collapsed into synchronous calls because goroutines are cheap. The
	// master also tracks per-fragment state for the straggler watchdog.
	const (
		statePending = iota
		stateProcessing
		stateDone
	)
	var mu sync.Mutex
	state := make([]int, nf)
	startedAt := make([]time.Time, nf)
	var requeued []int
	results := make([]*hessian.FragmentData, nf)
	report := &Report{Leaders: make([]LeaderStats, opt.NumLeaders)}

	nextTask := func() *Task {
		mu.Lock()
		defer mu.Unlock()
		if len(requeued) > 0 {
			fi := requeued[0]
			requeued = requeued[1:]
			report.Requeues++
			return &Task{ID: -1, Fragments: []int{fi}}
		}
		for {
			t := packer.Next()
			if t == nil {
				return nil
			}
			// Drop fragments already completed via a requeue duplicate.
			kept := t.Fragments[:0]
			for _, fi := range t.Fragments {
				if state[fi] == statePending {
					kept = append(kept, fi)
				}
			}
			if len(kept) > 0 {
				t.Fragments = kept
				return t
			}
		}
	}
	markProcessing := func(fi int) bool {
		mu.Lock()
		defer mu.Unlock()
		if state[fi] == stateDone {
			return false
		}
		state[fi] = stateProcessing
		startedAt[fi] = time.Now()
		return true
	}
	complete := func(fi int, data *hessian.FragmentData) {
		mu.Lock()
		defer mu.Unlock()
		if state[fi] != stateDone {
			state[fi] = stateDone
			results[fi] = data
		}
	}

	errs := make([]error, opt.NumLeaders)
	start := time.Now()
	stopWatchdog := make(chan struct{})
	if opt.StragglerTimeout > 0 {
		go func() {
			ticker := time.NewTicker(opt.StragglerTimeout / 4)
			defer ticker.Stop()
			for {
				select {
				case <-stopWatchdog:
					return
				case <-ticker.C:
					mu.Lock()
					for fi := range state {
						if state[fi] == stateProcessing && time.Since(startedAt[fi]) > opt.StragglerTimeout {
							state[fi] = statePending
							requeued = append(requeued, fi)
						}
					}
					mu.Unlock()
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for l := 0; l < opt.NumLeaders; l++ {
		wg.Add(1)
		go func(leaderID int) {
			defer wg.Done()
			stats := &report.Leaders[leaderID]
			var pending *Task
			for {
				task := pending
				pending = nil
				if task == nil {
					task = nextTask()
				}
				if task == nil {
					return
				}
				if opt.Prefetch {
					pending = nextTask()
				}
				t0 := time.Now()
				for _, fi := range task.Fragments {
					if !markProcessing(fi) {
						continue // completed elsewhere meanwhile
					}
					data, err := process(&dec.Fragments[fi], opt)
					if err != nil {
						errs[leaderID] = err
						return
					}
					complete(fi, data)
					stats.Fragments++
					stats.Displacements += 6 * dec.Fragments[fi].NumAtoms()
				}
				stats.Tasks++
				stats.Busy += time.Since(t0)
				mu.Lock()
				report.NumTasks++
				mu.Unlock()
			}
		}(l)
	}
	wg.Wait()
	close(stopWatchdog)
	report.Elapsed = time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	for i, r := range results {
		if r == nil {
			return nil, nil, fmt.Errorf("sched: fragment %d never processed", i)
		}
	}
	return results, report, nil
}

// leaderProcessFragment runs one fragment: the leader builds the model,
// generates all atomic displacements, and fans them out to its workers
// (static partition — the computational strength of a fragment does not
// change with the displaced atom, §V-A).
func leaderProcessFragment(f *fragment.Fragment, opt Options) (*hessian.FragmentData, error) {
	m, err := hessian.ModelForFragment(f)
	if err != nil {
		return nil, err
	}
	// One reference SCF+DFPT solve warm-starts all of this fragment's
	// workers; if anything fails to converge the whole fragment escalates
	// to the next smearing rung (all displacements must share one
	// free-energy surface).
	var refErr error
	rungs := hessian.SmearingRungs(opt.Job.SCF.Smearing)
	for ri, sigma := range rungs {
		o := opt.Job
		o.SCF.Smearing = sigma
		refOpt, marginal, err := hessian.SolveReference(m, o)
		if err != nil {
			refErr = err
			continue
		}
		if marginal && ri != len(rungs)-1 {
			refErr = fmt.Errorf("sched: marginal response at σ=%g", sigma)
			continue
		}
		data, err := runFragmentWorkers(f, m, opt, *refOpt)
		if err == nil {
			return data, nil
		}
		refErr = err
	}
	return nil, fmt.Errorf("sched: fragment %d failed at every smearing rung: %w", f.ID, refErr)
}

// runFragmentWorkers fans the displacement jobs out to the leader's workers.
func runFragmentWorkers(f *fragment.Fragment, m *scf.Model, opt Options, jobOpt hessian.JobOptions) (*hessian.FragmentData, error) {
	opt.Job = jobOpt
	natoms := f.NumAtoms()
	type dispJob struct{ atom, axis, sign int }
	jobs := make([]dispJob, 0, 6*natoms)
	for a := 0; a < natoms; a++ {
		for d := 0; d < 3; d++ {
			jobs = append(jobs, dispJob{a, d, +1}, dispJob{a, d, -1})
		}
	}
	results := make([]*hessian.DisplacementResult, len(jobs))
	errs := make([]error, opt.WorkersPerLeader)
	var wg sync.WaitGroup
	for w := 0; w < opt.WorkersPerLeader; w++ {
		wg.Add(1)
		go func(workerID int) {
			defer wg.Done()
			// Static partition of displacements across workers.
			for k := workerID; k < len(jobs); k += opt.WorkersPerLeader {
				j := jobs[k]
				r, err := hessian.RunDisplacement(m, j.atom, j.axis, j.sign, opt.Job)
				if err != nil {
					errs[workerID] = err
					return
				}
				results[k] = r
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return hessian.BuildFragmentData(natoms, results, opt.Job.Step, !opt.Job.SkipAlpha)
}
