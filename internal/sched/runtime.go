package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"qframan/internal/faults"
	"qframan/internal/fragment"
	"qframan/internal/hessian"
	"qframan/internal/obs"
	"qframan/internal/par"
	"qframan/internal/scf"
	"qframan/internal/store"
)

// Options configures the goroutine runtime.
type Options struct {
	NumLeaders       int
	WorkersPerLeader int
	Packer           PackerOptions
	Job              hessian.JobOptions
	// Prefetch lets a leader request its next task while the current one
	// is still executing (Fig. 4(d)/(e)); workers that finish early start
	// on the prefetched task immediately.
	Prefetch bool
	// StragglerTimeout re-enqueues fragments that have been processing
	// longer than this without completing (Fig. 4(a): "fragments processed
	// for a long time but not yet completed are marked un-processed again").
	// The first completion wins; late duplicates are discarded. Zero
	// disables the watchdog.
	StragglerTimeout time.Duration
	// Retry bounds per-fragment retries of transient failures (injected
	// chaos, recovered panics, NaN-poisoned results) with exponential
	// backoff. Deterministic failures — the engine's own convergence
	// errors after every smearing rung — are never retried: they reproduce.
	Retry faults.RetryPolicy
	// MaxFailedFragments is the fail-soft budget K: a run may complete
	// "degraded" with up to K deterministically-failed fragments, whose
	// signed Eq. 1 terms the assembly then drops (Report.Failed lists
	// them). Zero keeps the strict behavior: any unrecoverable fragment
	// aborts the run.
	MaxFailedFragments int
	// Injector, when non-nil, is consulted before every processing attempt
	// and may stall it, fail it, poison its result with NaNs, or panic —
	// the chaos-testing hook (see internal/faults).
	Injector faults.Injector
	// Process overrides the fragment engine (the leader's model build +
	// displacement fan-out). Tests and custom engines use it; nil selects
	// the built-in SCF+DFPT pipeline (DefaultProcess).
	Process ProcessFunc
	// WarmStart, when non-nil, supplies an initial per-atom charge guess
	// for a fragment's reference SCF — the trajectory engine seeds a moved
	// fragment with the converged charges of its own previous frame (per-
	// atom scalars are rotation-invariant, so the seed survives rigid
	// motion). A nil or wrong-length return falls back to the cold start.
	// Seeding is keyed by fragment *identity*, never by content hash: it
	// changes the iteration path, not the fingerprint, so warm-started
	// results converge to the same answer within the SCF tolerance but are
	// not guaranteed bit-identical to cold ones (the -traj-warm=0 escape
	// hatch restores strict bit-identity).
	WarmStart func(f *fragment.Fragment) []float64
	// OnReference, when non-nil, observes each computed fragment's
	// converged reference SCF: its charges (the next frame's warm seed) and
	// iteration count (the warm-start accounting). Called from leader
	// goroutines — implementations must be safe for concurrent use.
	OnReference func(f *fragment.Fragment, deltaQ []float64, iters int)
	// Cancel, when non-nil, is the job-scoped run handle of a serving
	// frontend: closing it aborts the run. Leaders stop taking work,
	// in-flight attempts finish (and their checkpoints still land, so
	// another job sharing the store can take over their keys), and Run
	// returns an error wrapping ErrCancelled. A run whose fragments all
	// resolved before the close is a normal completion.
	Cancel <-chan struct{}
	// Cache wires the persistent fragment-result store into the runtime:
	// content-addressed lookup before dispatch, checkpoint writes on
	// completion, and deterministic within-run dedup of identical
	// fragments.
	Cache CacheOptions
	// Obs carries the observability sinks (span tracer, metrics registry).
	// The runtime records run/task/frag/attempt spans, dispatch and cache
	// metrics, and the per-fragment ledger behind Report.Stragglers; the
	// scope is threaded down to the SCF/DFPT engine for per-phase spans.
	// The zero Scope disables all of it.
	Obs obs.Scope
	// Backend, when non-nil, replaces the in-process leader/worker fan-out
	// with a pluggable dispatch backend — Run delegates the whole fragment
	// loop to it. internal/cluster.Client implements this to fan fragments
	// out to remote worker daemons over the wire (qframan -cluster);
	// in-process options that configure the goroutine runtime (Prefetch,
	// StragglerTimeout, Injector, MaxFailedFragments) do not apply, while
	// Job, Cancel, and Obs are honored by every backend.
	Backend Backend
}

// Backend is a pluggable dispatch backend for the fragment loop: it receives
// the full decomposition and must return per-fragment data in decomposition
// order, exactly as the in-process runtime would. Implementations must
// preserve the determinism contract — results bit-identical to the
// in-process store-backed run — and honor Options.Cancel.
type Backend interface {
	Run(dec *fragment.Decomposition, opt Options) ([]*hessian.FragmentData, *Report, error)
}

// ProcessFunc is the fragment-engine signature of Options.Process.
type ProcessFunc func(f *fragment.Fragment, opt Options) (*hessian.FragmentData, error)

// ErrCancelled is wrapped into Run's error when Options.Cancel closes
// before every fragment resolves; errors.Is(err, ErrCancelled) identifies a
// cancelled job.
var ErrCancelled = errors.New("sched: run cancelled")

// DefaultProcess is the built-in SCF+DFPT fragment engine — what runs when
// Options.Process is nil. Serving wrappers (admission gates, cancellation
// probes) delegate to it after their own bookkeeping.
func DefaultProcess(f *fragment.Fragment, opt Options) (*hessian.FragmentData, error) {
	return leaderProcessFragment(f, opt)
}

// CacheOptions configures the runtime's use of a checkpoint store.
type CacheOptions struct {
	// Store is the open store; nil disables caching entirely.
	Store *store.Store
	// Resume serves results recorded by *previous* runs. Without it the
	// store still checkpoints completions and dedupes identical fragments
	// within this run, but pre-existing records are ignored (and
	// re-verified by overwriting them when their fragments recompute).
	Resume bool
	// ReadOnly disables checkpoint writes (lookup-only cache).
	ReadOnly bool
}

// DefaultOptions sizes the runtime for functional (single-machine) runs.
func DefaultOptions() Options {
	return Options{
		NumLeaders:       2,
		WorkersPerLeader: 2,
		Packer:           DefaultPackerOptions(2),
		Job:              hessian.DefaultJobOptions(),
		Prefetch:         true,
		Retry:            faults.DefaultRetryPolicy(),
	}
}

// LeaderStats records per-leader accounting for the load-balance analyses.
type LeaderStats struct {
	Tasks         int
	Fragments     int
	Displacements int
	Busy          time.Duration
}

// Report summarizes a run.
type Report struct {
	Leaders  []LeaderStats
	Elapsed  time.Duration
	NumTasks int
	// Requeues counts straggler re-enqueues performed by the watchdog.
	Requeues int
	// Retries counts failed attempts that were re-enqueued by the retry
	// policy (transient failures only).
	Retries int
	// Panics counts attempts that panicked and were recovered at a leader.
	Panics int
	// Failed lists the fragments (ascending) that exhausted recovery and
	// were dropped under the MaxFailedFragments budget; their result slots
	// are nil and their Eq. 1 terms are missing from any assembly.
	Failed []int
	// Degraded is true when Failed is non-empty: the run completed but the
	// spectrum omits the failed fragments' contributions.
	Degraded bool
	// CacheHits counts fragments served from the store without computing:
	// Resumed of them from records a previous run wrote, Deduped of them
	// from records another fragment of this run wrote (identical geometry
	// under the content-addressed key). CacheHits == Resumed + Deduped.
	CacheHits int
	// CacheMisses counts fragments that went through the engine.
	CacheMisses int
	Resumed     int
	Deduped     int
	// StoreErrors counts store operations (lookups, checkpoints) that
	// failed — including CRC-corrupt records, which are evicted and
	// recomputed. Store failures degrade to recomputation, never abort.
	StoreErrors int
	// Stragglers is the per-phase latency and top-K slowest-fragment
	// summary assembled from the observability ledger; nil when the run had
	// no Options.Obs sinks attached.
	Stragglers *obs.StragglerSummary
}

// StragglerTopK is how many slowest fragments Report.Stragglers keeps.
const StragglerTopK = 10

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// fragment lifecycle states tracked by the master.
const (
	statePending = iota
	stateProcessing
	stateDone
	stateFailed
)

// retryEntry is a fragment waiting out its backoff before re-dispatch.
type retryEntry struct {
	fi      int
	readyAt time.Time
}

// waitTick is how long an idle leader sleeps when unresolved fragments
// exist but none is dispatchable yet (backoff pending or processing
// elsewhere).
const waitTick = time.Millisecond

// dedupWaitTick is the requeue delay of a fragment waiting for its key's
// elected producer to finish computing their shared result.
const dedupWaitTick = 2 * time.Millisecond

// Run executes the displacement loops of all fragments on the three-level
// runtime and returns per-fragment data in decomposition order. With a
// fail-soft budget (Options.MaxFailedFragments > 0) the returned slice may
// contain nils exactly at Report.Failed.
func Run(dec *fragment.Decomposition, opt Options) ([]*hessian.FragmentData, *Report, error) {
	if opt.Backend != nil {
		return opt.Backend.Run(dec, opt)
	}
	if opt.NumLeaders <= 0 || opt.WorkersPerLeader <= 0 {
		return nil, nil, fmt.Errorf("sched: need at least one leader and one worker")
	}
	nf := len(dec.Fragments)
	sizes := make([]int, nf)
	for i := range dec.Fragments {
		sizes[i] = dec.Fragments[i].NumAtoms()
	}
	opt.Packer.NumLeaders = opt.NumLeaders
	packer := NewPacker(sizes, opt.Packer)
	process := opt.Process
	if process == nil {
		process = leaderProcessFragment
	}

	// Observability: the run span roots the trace; dispatch-side metric
	// instruments are resolved once here (every handle is nil-safe, so
	// with no registry attached each site costs one branch).
	obsSc := opt.Obs
	obsOn := obsSc.Enabled()
	tracing := obsSc.Tracing()
	runSc, runSpan := obsSc.Begin("sched.run", "sched",
		obs.A("fragments", int64(nf)), obs.A("leaders", int64(opt.NumLeaders)))
	mQueue := obsSc.R.Gauge(obs.MetricQueueDepth)
	mRetries := obsSc.R.Counter(obs.MetricRetries)
	mRequeues := obsSc.R.Counter(obs.MetricRequeues)
	mPanics := obsSc.R.Counter(obs.MetricPanics)
	mDedup := obsSc.R.Counter(obs.MetricDedupWaits)
	mHits := obsSc.R.Counter(obs.MetricCacheHits)
	mMisses := obsSc.R.Counter(obs.MetricCacheMisses)
	mFragWall := obsSc.R.Histogram(obs.MetricFragmentSeconds, obs.DurationBuckets)
	mQueue.Set(int64(nf))
	// Per-fragment ledger feeding Report.Stragglers: wall time across
	// attempts, engine-side phase accumulators, and cache provenance.
	var fragStats []obs.FragStats
	var fragWall []time.Duration
	var fragSpans []*obs.Span
	var cacheServed []bool
	if obsOn {
		fragStats = make([]obs.FragStats, nf)
		fragWall = make([]time.Duration, nf)
		fragSpans = make([]*obs.Span, nf)
		cacheServed = make([]bool, nf)
	}

	// With a store attached, fingerprint every fragment up front and elect
	// one deterministic producer per content key — the lowest fragment
	// index. Only producers compute; every other fragment of a key class
	// waits and is served the producer's checkpointed result, rotated into
	// its own frame. Electing by index (rather than first-to-arrive) makes
	// results independent of goroutine scheduling, which is what lets a
	// resumed run bit-match an uninterrupted one.
	cacheOn := opt.Cache.Store != nil
	if cacheOn && obsOn {
		opt.Cache.Store.SetObs(obsSc)
	}
	var keys []store.Key
	var frames []store.Frame
	producer := make(map[store.Key]int)
	if cacheOn {
		keys = make([]store.Key, nf)
		frames = make([]store.Frame, nf)
		for i := range dec.Fragments {
			keys[i], frames[i] = store.Fingerprint(&dec.Fragments[i], opt.Job)
			if _, ok := producer[keys[i]]; !ok {
				producer[keys[i]] = i
			}
		}
	}

	// The master hands out tasks through a mutex-guarded packer: this is
	// the "leader-available → task-assignment" signal loop of Fig. 4(a),
	// collapsed into synchronous calls because goroutines are cheap. The
	// master also tracks per-fragment state for the straggler watchdog and
	// the retry/fail-soft ledger.
	var mu sync.Mutex
	state := make([]int, nf)
	attempts := make([]int, nf)
	startedAt := make([]time.Time, nf)
	var retryQ []retryEntry
	var failed []int
	resolved := 0 // fragments done or failed
	aborted := false
	cancelled := false
	var abortErrs []error
	results := make([]*hessian.FragmentData, nf)
	report := &Report{Leaders: make([]LeaderStats, opt.NumLeaders)}

	// nextTask pops dispatchable work. A nil task with wait=true means
	// "nothing to hand out *yet*": fragments are still processing (and may
	// fail back into the queue) or waiting out a backoff, so the leader
	// should stay alive and poll. wait=false means the run is over for
	// this leader (all fragments resolved, or aborting).
	nextTask := func() (*Task, bool) {
		mu.Lock()
		defer mu.Unlock()
		if aborted {
			return nil, false
		}
		// Cancellation is observed here, the one gate every leader passes
		// between tasks. A run whose fragments all resolved already is left
		// to complete normally.
		if opt.Cancel != nil && resolved < nf {
			select {
			case <-opt.Cancel:
				if !cancelled {
					cancelled = true
					abortErrs = append(abortErrs, fmt.Errorf("%w (%d of %d fragments resolved)", ErrCancelled, resolved, nf))
				}
				aborted = true
				return nil, false
			default:
			}
		}
		// Compact the retry queue — entries resolved elsewhere are stale —
		// and dispatch the first one whose backoff has elapsed.
		now := time.Now()
		kept := retryQ[:0]
		var ready *Task
		for _, e := range retryQ {
			if state[e.fi] != statePending {
				continue
			}
			if ready == nil && !e.readyAt.After(now) {
				ready = &Task{ID: -1, Fragments: []int{e.fi}}
				continue
			}
			kept = append(kept, e)
		}
		retryQ = kept
		if ready != nil {
			return ready, false
		}
		for {
			t := packer.Next()
			if t == nil {
				return nil, resolved < nf
			}
			// Drop fragments already completed via a requeue duplicate.
			kept := t.Fragments[:0]
			for _, fi := range t.Fragments {
				if state[fi] == statePending {
					kept = append(kept, fi)
				}
			}
			if len(kept) > 0 {
				t.Fragments = kept
				return t, false
			}
		}
	}
	// markProcessing claims a fragment for one attempt and returns its
	// 1-based attempt number.
	markProcessing := func(fi int) (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if state[fi] != statePending {
			return 0, false
		}
		state[fi] = stateProcessing
		startedAt[fi] = time.Now()
		attempts[fi]++
		if tracing && fragSpans[fi] == nil {
			// The fragment span opens at first claim and ends at
			// resolution, covering queue waits between attempts.
			fragSpans[fi] = obsSc.T.Begin(runSpan, "frag", "frag",
				obs.A("frag", int64(fi)), obs.A("atoms", int64(sizes[fi])))
		}
		return attempts[fi], true
	}
	complete := func(fi int, data *hessian.FragmentData, served bool) bool {
		mu.Lock()
		defer mu.Unlock()
		if state[fi] == stateDone || state[fi] == stateFailed {
			return false // a duplicate (straggler) attempt lost the race
		}
		state[fi] = stateDone
		results[fi] = data
		resolved++
		if obsOn {
			fragWall[fi] += time.Since(startedAt[fi])
			cacheServed[fi] = served
			mFragWall.ObserveDuration(fragWall[fi])
			mQueue.Set(int64(nf - resolved))
			if sp := fragSpans[fi]; sp != nil {
				sp.End(obs.A("attempts", int64(attempts[fi])), obs.A("cachehit", b2i(served)))
			}
		}
		return true
	}
	// unmark releases a claim taken by markProcessing without recording an
	// attempt — used by fragments that must wait for their key's producer.
	// The attempt counter is rolled back so waiting never consumes retry
	// budget.
	unmark := func(fi, attempt int) {
		mu.Lock()
		defer mu.Unlock()
		if state[fi] == stateProcessing && attempts[fi] == attempt {
			state[fi] = statePending
			attempts[fi]--
			mDedup.Inc()
			retryQ = append(retryQ, retryEntry{fi: fi, readyAt: time.Now().Add(dedupWaitTick)})
		}
	}
	// election verdicts for a fragment whose store lookup missed.
	const (
		produceNow = iota
		produceWait
		produceRecheck
	)
	// elect decides whether fi should run the engine for its key after a
	// lookup miss. The elected producer (and any fragment inheriting from
	// a permanently failed one) computes. A fragment whose producer is
	// still in flight waits. A fragment whose producer completed re-checks
	// the store once — the checkpoint lands before completion, so the
	// re-check hits unless writes are disabled or failed, and only then
	// does the fragment compute for itself.
	elect := func(fi int) int {
		mu.Lock()
		defer mu.Unlock()
		p := producer[keys[fi]]
		switch {
		case p == fi:
			return produceNow
		case state[p] == stateFailed:
			producer[keys[fi]] = fi
			return produceNow
		case state[p] == stateDone:
			return produceRecheck
		}
		return produceWait
	}
	// lookup serves a fragment from the store if an eligible record
	// exists; prior-run records require Resume. Store errors (corrupt or
	// unreadable records) degrade to a miss and are counted. The lookup is
	// recorded as a store.get child of the attempt span.
	lookup := func(fi int, parent uint64, track int32) (*hessian.FragmentData, bool) {
		var t0 time.Time
		if tracing {
			t0 = time.Now()
		}
		fd, prior, err := opt.Cache.Store.Get(keys[fi], frames[fi])
		if tracing {
			obsSc.T.Record(parent, track, "store.get", "store",
				obsSc.T.Since(t0), time.Since(t0), obs.A("hit", b2i(fd != nil)))
		}
		if err != nil {
			mu.Lock()
			report.StoreErrors++
			mu.Unlock()
			return nil, false
		}
		if fd == nil || (prior && !opt.Cache.Resume) {
			return nil, false
		}
		return fd, prior
	}
	// restore returns undispatched fragments (a prefetched task, or the
	// unprocessed remainder of the current task) to the pool when a leader
	// exits early, so surviving leaders can finish them instead of the run
	// ending with fragments silently un-processed.
	restore := func(frags []int) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		for _, fi := range frags {
			if state[fi] == statePending {
				retryQ = append(retryQ, retryEntry{fi: fi, readyAt: now})
			}
		}
	}
	// fail records one failed attempt. Transient failures inside the retry
	// budget go back to the queue with backoff; anything else consumes the
	// fail-soft budget or aborts the run. Returns false when the leader
	// should stop (run aborting). Only the attempt that currently owns the
	// fragment may drive its state: a stale attempt — one the watchdog
	// already requeued and another leader restarted — reports nothing.
	fail := func(fi, attempt int, err error) bool {
		mu.Lock()
		defer mu.Unlock()
		if state[fi] != stateProcessing || attempts[fi] != attempt {
			return !aborted
		}
		if obsOn {
			fragWall[fi] += time.Since(startedAt[fi])
		}
		if faults.IsTransient(err) && attempts[fi] < opt.Retry.Attempts() {
			state[fi] = statePending
			report.Retries++
			mRetries.Inc()
			retryQ = append(retryQ, retryEntry{
				fi:      fi,
				readyAt: time.Now().Add(opt.Retry.Backoff(fi, attempts[fi])),
			})
			return true
		}
		if len(failed) < opt.MaxFailedFragments {
			state[fi] = stateFailed
			failed = append(failed, fi)
			resolved++
			if obsOn {
				mFragWall.ObserveDuration(fragWall[fi])
				mQueue.Set(int64(nf - resolved))
				if sp := fragSpans[fi]; sp != nil {
					sp.End(obs.A("attempts", int64(attempts[fi])), obs.A("failed", 1))
				}
			}
			return true
		}
		aborted = true
		abortErrs = append(abortErrs, fmt.Errorf("sched: fragment %d (attempt %d): %w", fi, attempts[fi], err))
		return false
	}

	// attemptFragment runs one processing attempt under the injector's
	// chaos plan, with panics recovered and results scrubbed for NaN. The
	// attempt's observability scope rides into the engine via Job.Obs.
	attemptFragment := func(fi, attempt int, sc obs.Scope) (data *hessian.FragmentData, err error) {
		var act faults.Action
		if opt.Injector != nil {
			act = opt.Injector.Plan(fi, attempt)
		}
		if act.Delay > 0 {
			time.Sleep(act.Delay)
		}
		if act.Err != nil {
			return nil, act.Err
		}
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				report.Panics++
				mu.Unlock()
				mPanics.Inc()
				data, err = nil, faults.Recovered(r)
			}
		}()
		if act.Panic {
			panic(fmt.Sprintf("faults: injected panic (fragment %d attempt %d)", fi, attempt))
		}
		o := opt
		o.Job.Obs = sc
		data, err = process(&dec.Fragments[fi], o)
		if err != nil {
			return nil, err
		}
		if act.NaN && data != nil && data.Hess != nil {
			data.Hess.Set(0, 0, math.NaN())
		}
		if verr := data.Validate(); verr != nil {
			if act.NaN {
				// The divergence was injected: the clean retry will succeed.
				verr = faults.MarkTransient(verr)
			}
			return nil, fmt.Errorf("sched: fragment %d result rejected: %w", fi, verr)
		}
		return data, nil
	}

	start := time.Now()
	stopWatchdog := make(chan struct{})
	if opt.StragglerTimeout > 0 {
		go func() {
			ticker := time.NewTicker(opt.StragglerTimeout / 4)
			defer ticker.Stop()
			for {
				select {
				case <-stopWatchdog:
					return
				case <-ticker.C:
					mu.Lock()
					now := time.Now()
					for fi := range state {
						if state[fi] == stateProcessing && now.Sub(startedAt[fi]) > opt.StragglerTimeout {
							state[fi] = statePending
							report.Requeues++
							mRequeues.Inc()
							if obsOn {
								fragWall[fi] += now.Sub(startedAt[fi])
							}
							retryQ = append(retryQ, retryEntry{fi: fi, readyAt: now})
						}
					}
					mu.Unlock()
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for l := 0; l < opt.NumLeaders; l++ {
		wg.Add(1)
		go func(leaderID int) {
			defer wg.Done()
			stats := &report.Leaders[leaderID]
			// Trace lanes: leader l owns track 1+l*(W+1); its W workers take
			// the following W tracks (see runFragmentWorkers). Track 0 holds
			// the run and fragment spans.
			leaderTrack := int32(1 + leaderID*(opt.WorkersPerLeader+1))
			var pending *Task
			defer func() {
				if pending != nil {
					restore(pending.Fragments)
				}
			}()
			for {
				task := pending
				pending = nil
				if task == nil {
					var wait bool
					task, wait = nextTask()
					if task == nil {
						if !wait {
							return
						}
						time.Sleep(waitTick)
						continue
					}
				}
				if opt.Prefetch && pending == nil {
					pending, _ = nextTask()
				}
				var taskSpan *obs.Span
				if tracing {
					taskSpan = obsSc.T.BeginOn(leaderTrack, runSpan, "task", "sched",
						obs.A("task", int64(task.ID)), obs.A("nfrags", int64(len(task.Fragments))))
				}
				t0 := time.Now()
				for i, fi := range task.Fragments {
					attempt, ok := markProcessing(fi)
					if !ok {
						continue // completed elsewhere meanwhile
					}
					attSc := runSc
					var attSpan *obs.Span
					if obsOn {
						attSc = attSc.WithTrack(leaderTrack).WithFrag(&fragStats[fi])
						if tracing {
							attSpan = obsSc.T.BeginOn(leaderTrack, fragSpans[fi], "attempt", "sched",
								obs.A("frag", int64(fi)), obs.A("attempt", int64(attempt)))
							attSc = attSc.WithSpan(attSpan)
						}
					}
					var data *hessian.FragmentData
					served, servedPrior := false, false
					if cacheOn {
						fd, prior := lookup(fi, attSpan.ID(), leaderTrack)
						if fd == nil {
							switch elect(fi) {
							case produceWait:
								unmark(fi, attempt) // wait for the key's producer
								attSpan.End(obs.A("wait", 1))
								continue
							case produceRecheck:
								// Producer completed after our miss; its
								// checkpoint (if writes are on) landed
								// before completion, so look again.
								fd, prior = lookup(fi, attSpan.ID(), leaderTrack)
							}
						}
						if fd != nil {
							data, served, servedPrior = fd, true, prior
						}
					}
					if data == nil {
						var err error
						data, err = attemptFragment(fi, attempt, attSc)
						if err != nil {
							attSpan.End(obs.A("err", 1))
							if !fail(fi, attempt, err) {
								taskSpan.End()
								restore(task.Fragments[i+1:])
								return
							}
							continue
						}
						if cacheOn && !opt.Cache.ReadOnly {
							// Checkpoint, and serve the canonical roundtrip
							// so computed and cache-served completions are
							// bit-identical. A failed checkpoint degrades
							// to keeping the in-memory result.
							var pt0 time.Time
							if tracing {
								pt0 = time.Now()
							}
							rt, perr := opt.Cache.Store.Put(keys[fi], frames[fi], data)
							if tracing {
								obsSc.T.Record(attSpan.ID(), leaderTrack, "store.put", "store",
									obsSc.T.Since(pt0), time.Since(pt0), obs.A("err", b2i(perr != nil)))
							}
							if perr != nil {
								mu.Lock()
								report.StoreErrors++
								mu.Unlock()
							} else {
								data = rt
							}
						}
					}
					attSpan.End(obs.A("cachehit", b2i(served)))
					if complete(fi, data, served) {
						stats.Fragments++
						stats.Displacements += 6 * dec.Fragments[fi].NumAtoms()
						if cacheOn {
							mu.Lock()
							if served {
								report.CacheHits++
								if servedPrior {
									report.Resumed++
								} else {
									report.Deduped++
								}
								mHits.Inc()
							} else {
								report.CacheMisses++
								mMisses.Inc()
							}
							mu.Unlock()
						}
					}
				}
				taskSpan.End()
				stats.Tasks++
				stats.Busy += time.Since(t0)
				mu.Lock()
				report.NumTasks++
				mu.Unlock()
			}
		}(l)
	}
	wg.Wait()
	close(stopWatchdog)
	report.Elapsed = time.Since(start)
	runSpan.End()
	if obsOn {
		rows := make([]obs.FragStat, nf)
		for i := range rows {
			rows[i] = obs.FragStat{
				Frag: i, Atoms: sizes[i], Attempts: attempts[i],
				Wall: fragWall[i], Phase: fragStats[i].PhaseTotals(),
				Cycles: fragStats[i].Cycles(), SCFIters: fragStats[i].SCFIters(),
				CacheHit: cacheServed[i],
			}
		}
		report.Stragglers = obs.Stragglers(rows, StragglerTopK)
	}

	sort.Ints(failed)
	report.Failed = failed
	report.Degraded = len(failed) > 0
	if len(abortErrs) > 0 {
		// Prefer the real failures over any "never processed" bookkeeping:
		// every leader's abort reason is reported, none masked.
		return nil, nil, errors.Join(abortErrs...)
	}
	failedSet := make(map[int]bool, len(failed))
	for _, fi := range failed {
		failedSet[fi] = true
	}
	for i, r := range results {
		if r == nil && !failedSet[i] {
			return nil, nil, fmt.Errorf("sched: fragment %d never processed", i)
		}
	}
	return results, report, nil
}

// leaderProcessFragment runs one fragment: the leader builds the model,
// generates all atomic displacements, and fans them out to its workers
// (static partition — the computational strength of a fragment does not
// change with the displaced atom, §V-A).
func leaderProcessFragment(f *fragment.Fragment, opt Options) (*hessian.FragmentData, error) {
	_, mspan := opt.Job.Obs.Begin("model", "engine")
	m, err := hessian.ModelForFragment(f)
	mspan.End()
	if err != nil {
		return nil, err
	}
	// One reference SCF+DFPT solve warm-starts all of this fragment's
	// workers; if anything fails to converge the whole fragment escalates
	// to the next smearing rung (all displacements must share one
	// free-energy surface). A trajectory warm seed (previous frame's
	// converged charges for this fragment identity) starts the reference
	// SCF closer to its fixed point; wrong-length seeds are ignored rather
	// than failing the fragment.
	var seed []float64
	if opt.WarmStart != nil {
		if s := opt.WarmStart(f); len(s) == f.NumAtoms() {
			seed = s
		}
	}
	var refErr error
	rungs := hessian.SmearingRungs(opt.Job.SCF.Smearing)
	for ri, sigma := range rungs {
		o := opt.Job
		o.SCF.Smearing = sigma
		if seed != nil {
			o.SCF.InitDeltaQ = seed
		}
		refOpt, ref, marginal, err := hessian.SolveReference(m, o)
		if err != nil {
			refErr = err
			continue
		}
		if marginal && ri != len(rungs)-1 {
			refErr = fmt.Errorf("sched: marginal response at σ=%g", sigma)
			continue
		}
		data, err := runFragmentWorkers(f, m, opt, *refOpt)
		if err == nil {
			if opt.OnReference != nil {
				opt.OnReference(f, ref.DeltaQ, ref.Iterations)
			}
			return data, nil
		}
		refErr = err
	}
	return nil, fmt.Errorf("sched: fragment %d failed at every smearing rung: %w", f.ID, refErr)
}

// runFragmentWorkers fans the displacement jobs out to the leader's workers.
func runFragmentWorkers(f *fragment.Fragment, m *scf.Model, opt Options, jobOpt hessian.JobOptions) (*hessian.FragmentData, error) {
	opt.Job = jobOpt
	natoms := f.NumAtoms()
	type dispJob struct{ atom, axis, sign int }
	jobs := make([]dispJob, 0, 6*natoms)
	for a := 0; a < natoms; a++ {
		for d := 0; d < 3; d++ {
			jobs = append(jobs, dispJob{a, d, +1}, dispJob{a, d, -1})
		}
	}
	results := make([]*hessian.DisplacementResult, len(jobs))
	// Fragment-level and kernel-level parallelism share one token budget:
	// each displacement worker holds a token while this fragment is in
	// flight, so with many fragments active the inner kernels run narrow,
	// and in the straggler tail (few fragments, idle cores) they widen —
	// the adaptive split of ISSUE 5 without any explicit mode switch.
	release := par.Reserve(opt.WorkersPerLeader)
	defer release()
	errs := make([]error, opt.WorkersPerLeader)
	var wg sync.WaitGroup
	for w := 0; w < opt.WorkersPerLeader; w++ {
		wg.Add(1)
		go func(workerID int) {
			defer wg.Done()
			// Each worker records on its own trace lane, offset from the
			// leader's track (see the lane layout in Run).
			wopt := opt.Job
			if wopt.Obs.Enabled() {
				wopt.Obs = wopt.Obs.WithTrack(wopt.Obs.Track + 1 + int32(workerID))
			}
			// Static partition of displacements across workers.
			for k := workerID; k < len(jobs); k += opt.WorkersPerLeader {
				j := jobs[k]
				r, err := hessian.RunDisplacement(m, j.atom, j.axis, j.sign, wopt)
				if err != nil {
					errs[workerID] = err
					return
				}
				results[k] = r
			}
		}(w)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return hessian.BuildFragmentData(natoms, results, opt.Job.Step, !opt.Job.SkipAlpha)
}
