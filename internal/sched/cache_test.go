package sched

import (
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"qframan/internal/constants"
	"qframan/internal/faults"
	"qframan/internal/fragment"
	"qframan/internal/geom"
	"qframan/internal/hessian"
	"qframan/internal/store"
)

// cacheDecomposition builds nf synthetic fragments with distinct collinear
// geometries: every fragment gets a unique content key, and the collinear
// poses keep the canonical frames rotation-free so the 1×1 fake payloads
// never meet the tensor rotations (which require 3N-dimensional data).
func cacheDecomposition(nf int) *fragment.Decomposition {
	dec := &fragment.Decomposition{Fragments: make([]fragment.Fragment, nf)}
	for i := range dec.Fragments {
		pos := make([]geom.Vec3, 3)
		for j := range pos {
			pos[j] = geom.Vec3{X: float64(j) * (1 + float64(i)/16)}
		}
		dec.Fragments[i] = fragment.Fragment{
			ID:  i,
			Els: []constants.Element{constants.O, constants.H, constants.H},
			Pos: pos,
		}
	}
	return dec
}

// cacheOptions wires a store into minimal single-leader options with a
// counting engine.
func cacheOptions(t *testing.T, s *store.Store, resume bool, calls *atomic.Int64) Options {
	t.Helper()
	opt := DefaultOptions()
	opt.NumLeaders = 2
	opt.WorkersPerLeader = 1
	opt.Cache = CacheOptions{Store: s, Resume: resume}
	opt.Process = func(f *fragment.Fragment, _ Options) (*hessian.FragmentData, error) {
		if calls != nil {
			calls.Add(1)
		}
		return fakeData(f.ID), nil
	}
	return opt
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestCacheWarmRunZeroRecompute: a second run over the same system must be
// served entirely from the store — zero engine calls, zero misses.
func TestCacheWarmRunZeroRecompute(t *testing.T) {
	dir := t.TempDir()
	dec := cacheDecomposition(12)

	var cold atomic.Int64
	s := openStore(t, dir)
	datas, rep, err := Run(dec, cacheOptions(t, s, false, &cold))
	if err != nil {
		t.Fatal(err)
	}
	checkExactlyOnce(t, dec, datas, rep)
	if cold.Load() != 12 || rep.CacheMisses != 12 || rep.CacheHits != 0 {
		t.Fatalf("cold run: %d engine calls, %d misses, %d hits; want 12/12/0",
			cold.Load(), rep.CacheMisses, rep.CacheHits)
	}
	s.Close()

	var warm atomic.Int64
	s2 := openStore(t, dir)
	datas2, rep2, err := Run(dec, cacheOptions(t, s2, true, &warm))
	if err != nil {
		t.Fatal(err)
	}
	checkExactlyOnce(t, dec, datas2, rep2)
	if warm.Load() != 0 {
		t.Fatalf("warm run invoked the engine %d times, want 0", warm.Load())
	}
	if rep2.CacheMisses != 0 || rep2.Resumed != 12 || rep2.CacheHits != 12 || rep2.Deduped != 0 {
		t.Fatalf("warm run: misses=%d resumed=%d hits=%d deduped=%d; want 0/12/12/0",
			rep2.CacheMisses, rep2.Resumed, rep2.CacheHits, rep2.Deduped)
	}
	for i := range datas {
		if !datas[i].BitEqual(datas2[i]) {
			t.Fatalf("fragment %d: warm result is not bit-identical to cold", i)
		}
	}
}

// TestCacheWithinRunDedup: identical geometries collapse to one engine call;
// every copy carries the producer's exact bits.
func TestCacheWithinRunDedup(t *testing.T) {
	dec := cacheDecomposition(9)
	for i := 1; i < len(dec.Fragments); i++ { // make all copies of fragment 0
		dec.Fragments[i].Pos = dec.Fragments[0].Pos
	}
	var calls atomic.Int64
	s := openStore(t, t.TempDir())
	datas, rep, err := Run(dec, cacheOptions(t, s, false, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("%d engine calls for 9 identical fragments, want 1", calls.Load())
	}
	if rep.Deduped != 8 || rep.CacheMisses != 1 || rep.Resumed != 0 {
		t.Fatalf("deduped=%d misses=%d resumed=%d; want 8/1/0", rep.Deduped, rep.CacheMisses, rep.Resumed)
	}
	for i, d := range datas {
		if !d.BitEqual(datas[0]) {
			t.Fatalf("fragment %d: deduped copy differs bitwise from the producer's result", i)
		}
	}
}

// TestCacheCrashResumeBitMatch is the tentpole property: kill a run via a
// deterministic hard fault, resume into the same store, and the resumed
// results must be bit-identical to an uninterrupted run's.
func TestCacheCrashResumeBitMatch(t *testing.T) {
	dec := cacheDecomposition(10)

	// The uninterrupted reference run, in its own store.
	refStore := openStore(t, t.TempDir())
	ref, _, err := Run(dec, cacheOptions(t, refStore, false, nil))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	s := openStore(t, dir)
	crash := cacheOptions(t, s, false, nil)
	crash.MaxFailedFragments = 0
	crash.Injector = faults.NewInjector(faults.Config{Seed: 3, HardFailFrags: []int{7}})
	if _, _, err := Run(dec, crash); err == nil {
		t.Fatal("hard-failed run reported success")
	}
	s.Close()

	s2 := openStore(t, dir)
	datas, rep, err := Run(dec, cacheOptions(t, s2, true, nil))
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	checkExactlyOnce(t, dec, datas, rep)
	if rep.Resumed == 0 {
		t.Fatal("resume recomputed everything: no checkpointed fragment was served")
	}
	if rep.Resumed+rep.CacheMisses+rep.Deduped != 10 {
		t.Fatalf("resumed=%d + misses=%d + deduped=%d != 10", rep.Resumed, rep.CacheMisses, rep.Deduped)
	}
	for i := range ref {
		if !datas[i].BitEqual(ref[i]) {
			t.Fatalf("fragment %d: resumed result differs bitwise from uninterrupted run", i)
		}
	}
}

// TestCacheKeyIsolation: records written under one JobOptions must never be
// served to a run with different physics settings.
func TestCacheKeyIsolation(t *testing.T) {
	dec := cacheDecomposition(6)
	dir := t.TempDir()

	s := openStore(t, dir)
	if _, _, err := Run(dec, cacheOptions(t, s, false, nil)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	mutations := map[string]func(*Options){
		"Step":        func(o *Options) { o.Job.Step *= 2 },
		"GridSpacing": func(o *Options) { o.Job.DFPT.GridSpacing *= 1.5 },
	}
	for name, mutate := range mutations {
		s2 := openStore(t, dir)
		var calls atomic.Int64
		opt := cacheOptions(t, s2, true, &calls)
		mutate(&opt)
		_, rep, err := Run(dec, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.CacheHits != 0 || rep.Resumed != 0 {
			t.Fatalf("%s: %d cross-hits (%d resumed) across changed job options, want 0",
				name, rep.CacheHits, rep.Resumed)
		}
		if calls.Load() != 6 {
			t.Fatalf("%s: engine ran %d times, want 6", name, calls.Load())
		}
		s2.Close()
	}
}

// TestCacheIgnoresPriorWithoutResume: without -resume, prior-run records are
// invisible; the run recomputes (and re-vouches) everything.
func TestCacheIgnoresPriorWithoutResume(t *testing.T) {
	dec := cacheDecomposition(5)
	dir := t.TempDir()
	s := openStore(t, dir)
	if _, _, err := Run(dec, cacheOptions(t, s, false, nil)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	var calls atomic.Int64
	s2 := openStore(t, dir)
	_, rep, err := Run(dec, cacheOptions(t, s2, false, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != 0 || calls.Load() != 5 {
		t.Fatalf("without Resume: resumed=%d, engine calls=%d; want 0/5", rep.Resumed, calls.Load())
	}
}

// TestCacheCorruptRecordRequeued: a bit-flipped object must be detected,
// counted, and transparently recomputed with the correct payload.
func TestCacheCorruptRecordRequeued(t *testing.T) {
	dec := cacheDecomposition(4)
	dir := t.TempDir()
	s := openStore(t, dir)
	if _, _, err := Run(dec, cacheOptions(t, s, false, nil)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip one bit in one object record.
	var objects []string
	filepath.Walk(filepath.Join(dir, "objects"), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			objects = append(objects, path)
		}
		return nil
	})
	if len(objects) != 4 {
		t.Fatalf("found %d objects, want 4", len(objects))
	}
	blob, err := os.ReadFile(objects[2])
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x04
	if err := os.WriteFile(objects[2], blob, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	datas, rep, err := Run(dec, cacheOptions(t, s2, true, nil))
	if err != nil {
		t.Fatal(err)
	}
	checkExactlyOnce(t, dec, datas, rep)
	if rep.StoreErrors == 0 {
		t.Fatal("corrupt record was not counted as a store error")
	}
	if rep.CacheMisses != 1 || rep.Resumed != 3 {
		t.Fatalf("misses=%d resumed=%d; want 1 recomputed, 3 resumed", rep.CacheMisses, rep.Resumed)
	}
}

// TestCacheReadOnlyStore: with checkpointing disabled nothing is written,
// every fragment computes itself (no producer to wait on after completion —
// the recheck path), and the run still terminates exactly-once.
func TestCacheReadOnlyStore(t *testing.T) {
	dec := cacheDecomposition(8)
	for i := 1; i < 4; i++ { // a dedup class that can never be served
		dec.Fragments[i].Pos = dec.Fragments[0].Pos
	}
	var calls atomic.Int64
	dir := t.TempDir()
	s := openStore(t, dir)
	opt := cacheOptions(t, s, false, &calls)
	opt.Cache.ReadOnly = true
	datas, rep, err := Run(dec, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkExactlyOnce(t, dec, datas, rep)
	if calls.Load() != 8 {
		t.Fatalf("read-only run made %d engine calls, want 8 (no serving possible)", calls.Load())
	}
	if s.Len() != 0 {
		t.Fatalf("read-only run wrote %d objects", s.Len())
	}
	if rep.CacheHits != 0 {
		t.Fatalf("read-only run reported %d hits", rep.CacheHits)
	}
}

// TestCacheProducerFailureTakeover: when a key's elected producer fails
// permanently under a fail-soft budget, a waiting duplicate must inherit the
// election and compute, so the class still completes.
func TestCacheProducerFailureTakeover(t *testing.T) {
	dec := cacheDecomposition(6)
	dec.Fragments[3].Pos = dec.Fragments[0].Pos // fragment 0 produces for both
	opt := cacheOptions(t, openStore(t, t.TempDir()), false, nil)
	opt.MaxFailedFragments = 1
	opt.Injector = faults.NewInjector(faults.Config{Seed: 5, HardFailFrags: []int{0}})
	datas, rep, err := Run(dec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed) != 1 || rep.Failed[0] != 0 {
		t.Fatalf("Failed = %v, want [0]", rep.Failed)
	}
	if datas[3] == nil || !datas[3].BitEqual(fakeData(3)) {
		t.Fatal("fragment 3 did not take over production after its producer failed")
	}
}
