package sched

import (
	"sync"
	"testing"
	"time"

	"qframan/internal/fragment"
	"qframan/internal/hessian"
	"qframan/internal/structure"
)

// serialFragment runs the displacement loop without the runtime.
func serialFragment(f *fragment.Fragment, opt Options) (*hessian.FragmentData, error) {
	return hessian.ComputeFragment(f, opt.Job)
}

func TestPackerCoversAllFragmentsOnce(t *testing.T) {
	sizes := []int{9, 35, 12, 6, 6, 68, 22, 6, 14, 30, 6, 6, 9, 41}
	for _, pol := range []Policy{SizeSensitive, FIFO, StaticBlock} {
		opt := DefaultPackerOptions(3)
		opt.Policy = pol
		p := NewPacker(sizes, opt)
		seen := map[int]int{}
		for {
			task := p.Next()
			if task == nil {
				break
			}
			if len(task.Fragments) == 0 {
				t.Fatalf("policy %v: empty task", pol)
			}
			for _, f := range task.Fragments {
				seen[f]++
			}
		}
		if len(seen) != len(sizes) {
			t.Fatalf("policy %v: covered %d fragments, want %d", pol, len(seen), len(sizes))
		}
		for f, c := range seen {
			if c != 1 {
				t.Fatalf("policy %v: fragment %d handed out %d times", pol, f, c)
			}
		}
	}
}

func TestPackerLargeFragmentsAreSingletons(t *testing.T) {
	sizes := []int{68, 6, 6, 6, 6, 6, 6, 6, 60, 6, 6, 6}
	p := NewPacker(sizes, DefaultPackerOptions(2))
	first := p.Next()
	second := p.Next()
	if len(first.Fragments) != 1 || sizes[first.Fragments[0]] != 68 {
		t.Fatalf("first task %v should be the 68-atom fragment alone", first.Fragments)
	}
	if len(second.Fragments) != 1 || sizes[second.Fragments[0]] != 60 {
		t.Fatalf("second task %v should be the 60-atom fragment alone", second.Fragments)
	}
}

func TestPackerMediumPacked(t *testing.T) {
	// Uniform mid-size fragments well below the large cut: they must be
	// packed several to a task until the pool drains.
	sizes := make([]int, 40)
	for i := range sizes {
		sizes[i] = 10
	}
	sizes[0] = 30 // defines maxSize so the rest are "medium"
	opt := DefaultPackerOptions(2)
	p := NewPacker(sizes, opt)
	p.Next() // the 30-atom task
	task := p.Next()
	if len(task.Fragments) < 2 {
		t.Fatalf("medium task has %d fragments, want packed", len(task.Fragments))
	}
}

func TestPackerTailShrinksGranularity(t *testing.T) {
	sizes := make([]int, 30)
	for i := range sizes {
		sizes[i] = 8
	}
	opt := DefaultPackerOptions(4)
	p := NewPacker(sizes, opt)
	var lastSize int
	for {
		task := p.Next()
		if task == nil {
			break
		}
		lastSize = len(task.Fragments)
	}
	if lastSize != 1 {
		t.Fatalf("final tail task has %d fragments, want 1", lastSize)
	}
}

func TestRunWaterDimers(t *testing.T) {
	sys := structure.BuildWaterDimerSystem(3)
	dec, err := fragment.Decompose(sys, fragment.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	datas, report, err := Run(dec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(datas) != len(dec.Fragments) {
		t.Fatalf("results %d for %d fragments", len(datas), len(dec.Fragments))
	}
	for i, d := range datas {
		if d == nil || d.Hess == nil {
			t.Fatalf("fragment %d has no data", i)
		}
		want := 3 * dec.Fragments[i].NumAtoms()
		if d.Hess.Rows != want {
			t.Fatalf("fragment %d Hessian %d×%d, want %d", i, d.Hess.Rows, d.Hess.Cols, want)
		}
	}
	var frags int
	for _, ls := range report.Leaders {
		frags += ls.Fragments
	}
	if frags != len(dec.Fragments) {
		t.Fatalf("leaders report %d fragments, want %d", frags, len(dec.Fragments))
	}
	if report.NumTasks == 0 || report.Elapsed == 0 {
		t.Fatal("report not populated")
	}
}

func TestRunMatchesSerial(t *testing.T) {
	// The parallel runtime must produce the same numbers as the serial
	// displacement loop.
	sys := structure.BuildWaterDimerSystem(1)
	dec, err := fragment.Decompose(sys, fragment.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.NumLeaders = 2
	opt.WorkersPerLeader = 3
	parallel, _, err := Run(dec, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dec.Fragments {
		serial, err := serialFragment(&dec.Fragments[i], opt)
		if err != nil {
			t.Fatal(err)
		}
		if d := parallel[i].Hess.MaxAbsDiff(serial.Hess); d > 1e-12 {
			t.Fatalf("fragment %d: parallel Hessian differs from serial by %g", i, d)
		}
	}
}

func TestRunValidation(t *testing.T) {
	sys := structure.BuildWaterDimerSystem(1)
	dec, _ := fragment.Decompose(sys, fragment.DefaultOptions())
	opt := DefaultOptions()
	opt.NumLeaders = 0
	if _, _, err := Run(dec, opt); err == nil {
		t.Fatal("accepted zero leaders")
	}
}

func TestStragglerRequeue(t *testing.T) {
	// A fake engine: the first attempt at fragment 0 stalls far beyond the
	// straggler timeout; the watchdog must hand it to another leader, whose
	// fast attempt completes the run. First completion wins.
	sys := structure.BuildWaterDimerSystem(4)
	dec, err := fragment.Decompose(sys, fragment.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	attempts := map[int]int{}
	release := make(chan struct{})
	opt := DefaultOptions()
	opt.NumLeaders = 2
	opt.StragglerTimeout = 50 * time.Millisecond
	opt.Packer.Policy = FIFO
	opt.Packer.FIFOTaskSize = 1
	opt.Prefetch = false
	opt.Process = func(f *fragment.Fragment, o Options) (*hessian.FragmentData, error) {
		mu.Lock()
		attempts[f.ID]++
		first := f.ID == dec.Fragments[0].ID && attempts[f.ID] == 1
		mu.Unlock()
		if first {
			<-release // stall until the whole run would otherwise be done
		} else {
			time.Sleep(5 * time.Millisecond)
		}
		return &hessian.FragmentData{Hess: nil}, nil
	}
	done := make(chan struct{})
	var report *Report
	var runErr error
	go func() {
		_, report, runErr = Run(dec, opt)
		close(done)
	}()
	// Give the run ample time to finish everything except the straggler,
	// requeue it, and complete it elsewhere; then release the stalled call.
	time.Sleep(400 * time.Millisecond)
	close(release)
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	if report.Requeues == 0 {
		t.Fatal("straggler was never requeued")
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts[dec.Fragments[0].ID] < 2 {
		t.Fatalf("fragment 0 attempted %d times, want ≥2", attempts[dec.Fragments[0].ID])
	}
}
