// Package sched implements the paper's three-level master–leader–worker
// runtime (§V-A, Fig. 3) with the system-size-sensitive load balancer
// (§V-B, Fig. 4): the master packs fragments into tasks whose granularity
// shrinks as the un-processed pool drains, leaders split each fragment into
// its atomic-displacement jobs and prefetch their next task, and workers run
// the per-displacement SCF+DFPT step. The same packing policy also drives
// the discrete-event supercomputer simulator (internal/simhpc) at the
// paper's node counts.
package sched

import (
	"sort"
)

// Task is a set of fragment indices assigned to one leader as a unit.
type Task struct {
	ID        int
	Fragments []int
}

// Policy selects the packing strategy; the paper's system-size-sensitive
// policy is the default, the others exist for the ablation benchmarks.
type Policy int

const (
	// SizeSensitive is the paper's policy: large fragments one per task,
	// medium fragments packed together, tail granularity shrinking to one.
	SizeSensitive Policy = iota
	// FIFO packs fragments in input order into fixed-size tasks.
	FIFO
	// StaticBlock pre-partitions fragments into one contiguous block per
	// leader (no dynamic balancing at all).
	StaticBlock
)

// PackerOptions tunes the size-sensitive policy.
type PackerOptions struct {
	Policy Policy
	// NumLeaders is used to decide when the tail begins and by StaticBlock.
	NumLeaders int
	// LargeFraction: fragments with ≥ LargeFraction·maxSize atoms are
	// dispatched as single-fragment tasks.
	LargeFraction float64
	// PackTargetAtoms is the accumulated size at which a medium task is
	// closed.
	PackTargetAtoms int
	// MaxPack bounds the number of fragments per task.
	MaxPack int
	// FIFOTaskSize is the fixed task size of the FIFO policy.
	FIFOTaskSize int
}

// DefaultPackerOptions returns the paper-flavored defaults.
func DefaultPackerOptions(numLeaders int) PackerOptions {
	return PackerOptions{
		Policy:          SizeSensitive,
		NumLeaders:      numLeaders,
		LargeFraction:   0.6,
		PackTargetAtoms: 90,
		MaxPack:         16,
		FIFOTaskSize:    4,
	}
}

// Packer hands out tasks on demand, implementing Fig. 4(b): the fragment
// pool is sorted by size; large fragments ship first as single-fragment
// tasks, medium fragments are packed to a target size, and once the pool is
// nearly drained the granularity decreases until every task is a single
// small fragment, letting busy and idle leaders finish together.
type Packer struct {
	opt    PackerOptions
	sizes  []int
	order  []int // fragment indices, sorted by size descending
	next   int   // cursor into order
	nextID int
	block  int // StaticBlock: fragments per leader
}

// NewPacker builds a packer over the fragment sizes (atom counts).
func NewPacker(sizes []int, opt PackerOptions) *Packer {
	p := &Packer{opt: opt, sizes: sizes}
	p.order = make([]int, len(sizes))
	for i := range p.order {
		p.order[i] = i
	}
	if opt.Policy == SizeSensitive {
		sort.SliceStable(p.order, func(a, b int) bool {
			return sizes[p.order[a]] > sizes[p.order[b]]
		})
	}
	if opt.Policy == StaticBlock {
		n := opt.NumLeaders
		if n <= 0 {
			n = 1
		}
		p.block = (len(sizes) + n - 1) / n
	}
	return p
}

// Remaining returns the number of fragments not yet handed out.
func (p *Packer) Remaining() int { return len(p.order) - p.next }

// Next returns the next task, or nil when the pool is drained.
func (p *Packer) Next() *Task {
	if p.next >= len(p.order) {
		return nil
	}
	var frags []int
	switch p.opt.Policy {
	case FIFO:
		n := p.opt.FIFOTaskSize
		if n <= 0 {
			n = 1
		}
		for len(frags) < n && p.next < len(p.order) {
			frags = append(frags, p.order[p.next])
			p.next++
		}
	case StaticBlock:
		for len(frags) < p.block && p.next < len(p.order) {
			frags = append(frags, p.order[p.next])
			p.next++
		}
	default: // SizeSensitive
		maxSize := p.sizes[p.order[0]]
		largeCut := int(p.opt.LargeFraction * float64(maxSize))
		first := p.order[p.next]
		if p.sizes[first] >= largeCut {
			// Large fragment: its own task.
			frags = append(frags, first)
			p.next++
			break
		}
		// Tail: when few fragments remain relative to the leader count,
		// shrink granularity down to single fragments.
		tail := p.Remaining() <= 2*p.opt.NumLeaders
		budget := p.opt.PackTargetAtoms
		maxPack := p.opt.MaxPack
		if tail {
			// Granularity shrinks with the remaining pool — shrinks only:
			// the configured MaxPack stays a hard ceiling.
			maxPack = p.Remaining() / p.opt.NumLeaders
			if maxPack < 1 {
				maxPack = 1
			}
			if p.opt.MaxPack > 0 && maxPack > p.opt.MaxPack {
				maxPack = p.opt.MaxPack
			}
			budget = p.sizes[first] * maxPack
		}
		atoms := 0
		for len(frags) < maxPack && p.next < len(p.order) {
			f := p.order[p.next]
			if atoms > 0 && atoms+p.sizes[f] > budget {
				break
			}
			frags = append(frags, f)
			atoms += p.sizes[f]
			p.next++
		}
	}
	t := &Task{ID: p.nextID, Fragments: frags}
	p.nextID++
	return t
}
