package sched

import "testing"

// drainPacker pulls every task from a fresh packer and asserts the
// invariants that hold for every policy and every input: no empty tasks,
// strictly increasing task IDs, in-range fragment indices, each fragment
// delivered exactly once, and a drained packer that keeps returning nil.
func drainPacker(t *testing.T, sizes []int, opt PackerOptions) []*Task {
	t.Helper()
	p := NewPacker(sizes, opt)
	var tasks []*Task
	delivered := make(map[int]int)
	prevID := -1
	for {
		task := p.Next()
		if task == nil {
			break
		}
		if len(task.Fragments) == 0 {
			t.Fatalf("task %d is empty", task.ID)
		}
		if task.ID <= prevID {
			t.Fatalf("task IDs not strictly increasing: %d after %d", task.ID, prevID)
		}
		prevID = task.ID
		for _, f := range task.Fragments {
			if f < 0 || f >= len(sizes) {
				t.Fatalf("task %d contains out-of-range fragment %d (pool size %d)", task.ID, f, len(sizes))
			}
			delivered[f]++
		}
		tasks = append(tasks, task)
		if len(tasks) > len(sizes)+1 {
			t.Fatalf("packer produced %d tasks for %d fragments: not terminating", len(tasks), len(sizes))
		}
	}
	if r := p.Remaining(); r != 0 {
		t.Fatalf("drained packer reports %d remaining", r)
	}
	if p.Next() != nil {
		t.Fatal("Next() on a drained packer returned a task")
	}
	for i := range sizes {
		if delivered[i] != 1 {
			t.Fatalf("fragment %d delivered %d times, want exactly once", i, delivered[i])
		}
	}
	return tasks
}

// repeat builds n copies of size v.
func repeat(v, n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// TestPackerEdgeCases exercises the degenerate pools a real decomposition
// can produce — an empty system, one huge fragment, the waterbox's
// all-identical fragments, and a protein giant amid solvent tinies — under
// every packing policy. The size-sensitive policy additionally guarantees
// that large fragments ship solo and MaxPack is never exceeded, including
// in the shrinking tail.
func TestPackerEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		sizes []int
		opt   PackerOptions
		check func(t *testing.T, tasks []*Task, sizes []int, opt PackerOptions)
	}{
		{
			name:  "empty-pool",
			sizes: nil,
			opt:   DefaultPackerOptions(4),
			check: func(t *testing.T, tasks []*Task, _ []int, _ PackerOptions) {
				if len(tasks) != 0 {
					t.Fatalf("empty pool produced %d tasks", len(tasks))
				}
			},
		},
		{
			name:  "single-oversized",
			sizes: []int{5000},
			opt:   DefaultPackerOptions(8),
			check: func(t *testing.T, tasks []*Task, _ []int, _ PackerOptions) {
				if len(tasks) != 1 || len(tasks[0].Fragments) != 1 {
					t.Fatalf("one oversized fragment should be one single-fragment task, got %d tasks", len(tasks))
				}
			},
		},
		{
			// Every fragment equals maxSize, so every fragment clears the
			// LargeFraction cut: the waterbox degenerates to solo tasks.
			name:  "all-equal",
			sizes: repeat(10, 12),
			opt:   DefaultPackerOptions(4),
			check: func(t *testing.T, tasks []*Task, sizes []int, _ PackerOptions) {
				if len(tasks) != len(sizes) {
					t.Fatalf("all-equal pool: got %d tasks, want %d solo tasks", len(tasks), len(sizes))
				}
				for _, task := range tasks {
					if len(task.Fragments) != 1 {
						t.Fatalf("all-equal pool: task %d carries %d fragments, want 1", task.ID, len(task.Fragments))
					}
				}
			},
		},
		{
			name:  "giant-plus-tiny",
			sizes: append([]int{1000}, repeat(3, 40)...),
			opt:   DefaultPackerOptions(4),
			check: func(t *testing.T, tasks []*Task, sizes []int, opt PackerOptions) {
				first := tasks[0]
				if len(first.Fragments) != 1 || sizes[first.Fragments[0]] != 1000 {
					t.Fatalf("giant fragment not dispatched first and solo: task 0 = %v", first.Fragments)
				}
				// Granularity only shrinks after the giant: the tail must
				// not coarsen as idle leaders wait for the last fragments.
				prev := -1
				for _, task := range tasks[1:] {
					if prev >= 0 && len(task.Fragments) > prev {
						t.Fatalf("task %d grew to %d fragments after one of %d", task.ID, len(task.Fragments), prev)
					}
					prev = len(task.Fragments)
				}
			},
		},
		{
			// MaxPack=1 with a 2-fragment tail is the corner where the
			// tail's Remaining/NumLeaders granularity (=2) would exceed
			// the configured ceiling if it were not clamped.
			name:  "maxpack-one-tail",
			sizes: []int{100, 5, 5, 5, 5},
			opt: PackerOptions{
				Policy:          SizeSensitive,
				NumLeaders:      1,
				LargeFraction:   0.6,
				PackTargetAtoms: 90,
				MaxPack:         1,
			},
			check: func(t *testing.T, tasks []*Task, _ []int, _ PackerOptions) {},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tasks := drainPacker(t, tc.sizes, tc.opt)
			// Size-sensitive guarantees on top of the universal ones.
			if tc.opt.Policy == SizeSensitive && len(tc.sizes) > 0 {
				maxSize := 0
				for _, s := range tc.sizes {
					if s > maxSize {
						maxSize = s
					}
				}
				largeCut := int(tc.opt.LargeFraction * float64(maxSize))
				for _, task := range tasks {
					if tc.opt.MaxPack > 0 && len(task.Fragments) > tc.opt.MaxPack {
						t.Fatalf("task %d carries %d fragments, MaxPack is %d", task.ID, len(task.Fragments), tc.opt.MaxPack)
					}
					if len(task.Fragments) > 1 {
						for _, f := range task.Fragments {
							if tc.sizes[f] >= largeCut {
								t.Fatalf("large fragment %d (%d atoms ≥ cut %d) packed with %d others",
									f, tc.sizes[f], largeCut, len(task.Fragments)-1)
							}
						}
					}
				}
			}
			tc.check(t, tasks, tc.sizes, tc.opt)
		})
	}
}

// TestPackerEdgeCasesAllPolicies re-drains the edge pools under FIFO and
// StaticBlock: the delivery invariants are policy-independent.
func TestPackerEdgeCasesAllPolicies(t *testing.T) {
	pools := map[string][]int{
		"empty-pool":      nil,
		"single-fragment": {5000},
		"all-equal":       repeat(10, 12),
		"giant-plus-tiny": append([]int{1000}, repeat(3, 40)...),
	}
	for _, policy := range []Policy{FIFO, StaticBlock} {
		for name, sizes := range pools {
			opt := DefaultPackerOptions(4)
			opt.Policy = policy
			t.Run(name, func(t *testing.T) {
				drainPacker(t, sizes, opt)
			})
		}
	}
}
