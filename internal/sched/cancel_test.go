package sched

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"qframan/internal/fragment"
	"qframan/internal/hessian"
)

// TestCancelAbortsRun: closing the cancel channel mid-run must abort with
// ErrCancelled instead of draining the queue.
func TestCancelAbortsRun(t *testing.T) {
	dec := cacheDecomposition(24)
	cancel := make(chan struct{})
	started := make(chan struct{}, 64)
	opt := DefaultOptions()
	opt.NumLeaders = 2
	opt.WorkersPerLeader = 1
	opt.Process = func(f *fragment.Fragment, _ Options) (*hessian.FragmentData, error) {
		started <- struct{}{}
		time.Sleep(time.Millisecond)
		return fakeData(f.ID), nil
	}
	go func() {
		<-started // at least one fragment is in flight
		close(cancel)
	}()
	opt.Cancel = cancel
	_, _, err := Run(dec, opt)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled run returned %v, want ErrCancelled", err)
	}
}

// TestCancelAlreadyClosed: a run handed a closed cancel channel does no
// engine work at all.
func TestCancelAlreadyClosed(t *testing.T) {
	dec := cacheDecomposition(8)
	cancel := make(chan struct{})
	close(cancel)
	var calls atomic.Int64
	opt := DefaultOptions()
	opt.Process = func(f *fragment.Fragment, _ Options) (*hessian.FragmentData, error) {
		calls.Add(1)
		return fakeData(f.ID), nil
	}
	opt.Cancel = cancel
	if _, _, err := Run(dec, opt); !errors.Is(err, ErrCancelled) {
		t.Fatalf("got %v, want ErrCancelled", err)
	}
	if calls.Load() != 0 {
		t.Fatalf("pre-cancelled run made %d engine calls, want 0", calls.Load())
	}
}

// TestCancelNilChannelIsNormalRun: the zero Options keep today's behavior.
func TestCancelNilChannelIsNormalRun(t *testing.T) {
	dec := cacheDecomposition(6)
	opt := DefaultOptions()
	opt.Process = func(f *fragment.Fragment, _ Options) (*hessian.FragmentData, error) {
		return fakeData(f.ID), nil
	}
	datas, rep, err := Run(dec, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkExactlyOnce(t, dec, datas, rep)
}

// TestCacheProducerTakeoverUnderCancellation is the cross-job takeover
// property behind the serving daemon: job A (one tenant) is cancelled while
// its elected producer for a shared key class is mid-fragment and its
// attempt dies with the job; job B (another tenant), sharing the store,
// must take over production of that key and finish with results
// bit-identical to an undisturbed reference run.
func TestCacheProducerTakeoverUnderCancellation(t *testing.T) {
	const nf = 6
	mkDec := func() *fragment.Decomposition {
		dec := cacheDecomposition(nf)
		// Fragments 0 and 3 share one geometry: 0 is the elected producer.
		dec.Fragments[3].Pos = dec.Fragments[0].Pos
		return dec
	}

	// Reference: job B's decomposition alone against a clean store.
	ref, _, err := Run(mkDec(), cacheOptions(t, openStore(t, t.TempDir()), false, nil))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	sA := openStore(t, dir)
	cancel := make(chan struct{})
	inFlight := make(chan struct{})
	optA := cacheOptions(t, sA, false, nil)
	optA.NumLeaders = 1 // one leader: fragment 0 is the first and only in-flight attempt
	optA.Process = func(f *fragment.Fragment, _ Options) (*hessian.FragmentData, error) {
		if f.ID == 0 {
			close(inFlight)
			<-cancel // the producer attempt hangs until the job is killed…
			return nil, errors.New("job torn down mid-fragment")
		}
		return fakeData(f.ID), nil
	}
	optA.Cancel = cancel
	done := make(chan error, 1)
	go func() {
		_, _, err := Run(mkDec(), optA)
		done <- err
	}()
	<-inFlight
	close(cancel)
	if err := <-done; !errors.Is(err, ErrCancelled) && err == nil {
		t.Fatalf("cancelled producer job returned %v", err)
	}
	sA.Close()

	// Job B: same geometry, same store, different tenant. The shared key's
	// producer never checkpointed, so B must compute it for itself.
	sB := openStore(t, dir)
	var calls atomic.Int64
	datas, rep, err := Run(mkDec(), cacheOptions(t, sB, true, &calls))
	if err != nil {
		t.Fatalf("takeover job failed: %v", err)
	}
	if len(datas) != nf {
		t.Fatalf("takeover job returned %d results, want %d", len(datas), nf)
	}
	for i := range ref {
		if !datas[i].BitEqual(ref[i]) {
			t.Fatalf("fragment %d: takeover result differs bitwise from reference", i)
		}
	}
	if calls.Load() == 0 {
		t.Fatal("takeover job computed nothing: the dead producer's key was served from nowhere")
	}
	// The shared class must have exactly one producer in job B, with the
	// copy deduped from it.
	if rep.Deduped == 0 {
		t.Fatalf("shared key class not deduped in takeover job (report: %+v)", rep)
	}
}

// TestCancelledJobCheckpointsSurvive: fragments job A completed before the
// cancel must be resumable by job B — the cancel loses in-flight work only.
func TestCancelledJobCheckpointsSurvive(t *testing.T) {
	const nf = 10
	dir := t.TempDir()
	sA := openStore(t, dir)
	cancel := make(chan struct{})
	var completedByA atomic.Int64
	optA := cacheOptions(t, sA, false, nil)
	optA.NumLeaders = 1
	optA.Process = func(f *fragment.Fragment, _ Options) (*hessian.FragmentData, error) {
		n := completedByA.Add(1)
		if n == 4 { // kill the job after three clean completions
			close(cancel)
			return nil, errors.New("torn down")
		}
		return fakeData(f.ID), nil
	}
	optA.Cancel = cancel
	if _, _, err := Run(cacheDecomposition(nf), optA); err == nil {
		t.Fatal("cancelled run reported success")
	}
	sA.Close()

	sB := openStore(t, dir)
	datas, rep, err := Run(cacheDecomposition(nf), cacheOptions(t, sB, true, nil))
	if err != nil {
		t.Fatal(err)
	}
	checkExactlyOnce(t, cacheDecomposition(nf), datas, rep)
	if rep.Resumed == 0 {
		t.Fatal("no checkpoint from the cancelled job was resumed")
	}
}
