package grid

import (
	"math"
	"testing"

	"qframan/internal/basis"
	"qframan/internal/constants"
	"qframan/internal/geom"
)

func TestCoverContainsPoints(t *testing.T) {
	pts := []geom.Vec3{{}, geom.V(3, 1, -2), geom.V(-1, 4, 0)}
	g := Cover(pts, 2.0, 0.5)
	last := g.PointAt(g.Nx-1, g.Ny-1, g.Nz-1)
	for _, p := range pts {
		if p.X < g.Origin.X || p.Y < g.Origin.Y || p.Z < g.Origin.Z {
			t.Fatalf("point %v outside grid origin %v", p, g.Origin)
		}
		if p.X > last.X || p.Y > last.Y || p.Z > last.Z {
			t.Fatalf("point %v outside grid end %v", p, last)
		}
	}
	// Margin respected.
	if g.Origin.X > -1-2+1e-9 {
		t.Fatalf("margin not applied: origin %v", g.Origin)
	}
}

func TestIndexRoundTrip(t *testing.T) {
	g := Cover([]geom.Vec3{{}, geom.V(5, 4, 3)}, 1, 0.7)
	for i := 0; i < g.NumPoints(); i++ {
		ix, iy, iz := g.Coords(i)
		if g.Index(ix, iy, iz) != i {
			t.Fatalf("index round trip failed at %d", i)
		}
	}
}

func TestWeightIntegratesGaussian(t *testing.T) {
	// ∫exp(−αr²) = (π/α)^{3/2}; a fine grid should integrate it well.
	alpha := 0.8
	g := Cover([]geom.Vec3{{}}, 7.0, 0.35)
	var sum float64
	for i := 0; i < g.NumPoints(); i++ {
		p := g.Point(i)
		sum += math.Exp(-alpha * p.Norm2())
	}
	sum *= g.Weight()
	want := math.Pow(math.Pi/alpha, 1.5)
	if math.Abs(sum-want)/want > 1e-3 {
		t.Fatalf("grid integral %v, want %v", sum, want)
	}
}

func TestBatches(t *testing.T) {
	els := []constants.Element{constants.O, constants.H, constants.H}
	pos := []geom.Vec3{{}, geom.V(1.8, 0, 0), geom.V(-0.45, 1.75, 0)}
	set := basis.ForAtoms(els, pos)
	g := Cover(pos, 6.0, 0.6)
	batches := g.Batches(8, set)
	if len(batches) == 0 {
		t.Fatal("no batches")
	}
	// Every batch point index valid and unique across batches that include it.
	seen := map[int]int{}
	for _, b := range batches {
		if len(b.Funcs) == 0 {
			t.Fatal("batch with no functions was not skipped")
		}
		for _, idx := range b.Indices {
			if idx < 0 || idx >= g.NumPoints() {
				t.Fatalf("invalid grid index %d", idx)
			}
			seen[idx]++
			if seen[idx] > 1 {
				t.Fatalf("grid point %d appears in two batches", idx)
			}
		}
	}
	// Correctness of function assignment: for every batch point p and every
	// function NOT assigned to the batch, |χ(p)| must be negligible.
	assigned := make([]map[int]bool, len(batches))
	for bi, b := range batches {
		assigned[bi] = map[int]bool{}
		for _, f := range b.Funcs {
			assigned[bi][f] = true
		}
	}
	for bi, b := range batches {
		for _, idx := range b.Indices {
			p := g.Point(idx)
			for fi := range set.Funcs {
				if assigned[bi][fi] {
					continue
				}
				if v := math.Abs(set.Funcs[fi].ValueAt(p)); v > 1e-6 {
					t.Fatalf("batch %d point %d: unassigned function %d has value %g", bi, idx, fi, v)
				}
			}
		}
	}
}

func TestBatchesCoverAllFunctionSupport(t *testing.T) {
	els := []constants.Element{constants.C}
	pos := []geom.Vec3{geom.V(1, 2, 3)}
	set := basis.ForAtoms(els, pos)
	g := Cover(pos, 7.0, 0.5)
	batches := g.Batches(6, set)
	// Sum of |χ|² over batch-assigned points ≈ 1 (normalization) for each
	// function: proves no support is lost by the batch assignment.
	for fi := range set.Funcs {
		var sum float64
		for _, b := range batches {
			in := false
			for _, f := range b.Funcs {
				if f == fi {
					in = true
					break
				}
			}
			if !in {
				continue
			}
			for _, idx := range b.Indices {
				v := set.Funcs[fi].ValueAt(g.Point(idx))
				sum += v * v
			}
		}
		sum *= g.Weight()
		if math.Abs(sum-1) > 5e-3 {
			t.Fatalf("function %d: batched ∫|χ|² = %v, want ≈1", fi, sum)
		}
	}
}
