// Package grid provides the uniform real-space integration grid of the
// quantum engine. Following the paper's real-space DFPT design, the grid is
// partitioned into small batches of points; each batch only "sees" the basis
// functions whose support intersects it, so the density and Hamiltonian
// integrations become many small GEMMs — the workload profile that the
// paper's elastic offloading scheme (§V-C) is built to batch.
package grid

import (
	"math"

	"qframan/internal/basis"
	"qframan/internal/geom"
)

// Grid is a uniform Cartesian grid. All lengths in bohr.
type Grid struct {
	Origin     geom.Vec3
	H          float64 // spacing
	Nx, Ny, Nz int
}

// Cover builds a grid covering all points with the given margin on every
// side and spacing h.
func Cover(points []geom.Vec3, margin, h float64) *Grid {
	if len(points) == 0 || h <= 0 || margin < 0 {
		panic("grid: Cover needs points, positive spacing, non-negative margin")
	}
	lo, hi := points[0], points[0]
	for _, p := range points[1:] {
		lo.X = math.Min(lo.X, p.X)
		lo.Y = math.Min(lo.Y, p.Y)
		lo.Z = math.Min(lo.Z, p.Z)
		hi.X = math.Max(hi.X, p.X)
		hi.Y = math.Max(hi.Y, p.Y)
		hi.Z = math.Max(hi.Z, p.Z)
	}
	lo = lo.Sub(geom.V(margin, margin, margin))
	hi = hi.Add(geom.V(margin, margin, margin))
	n := func(span float64) int { return int(math.Ceil(span/h)) + 1 }
	return &Grid{
		Origin: lo,
		H:      h,
		Nx:     n(hi.X - lo.X),
		Ny:     n(hi.Y - lo.Y),
		Nz:     n(hi.Z - lo.Z),
	}
}

// NumPoints returns the total number of grid points.
func (g *Grid) NumPoints() int { return g.Nx * g.Ny * g.Nz }

// Weight returns the integration weight per point, h³.
func (g *Grid) Weight() float64 { return g.H * g.H * g.H }

// Index maps (ix,iy,iz) to the linear index (x fastest).
func (g *Grid) Index(ix, iy, iz int) int { return (iz*g.Ny+iy)*g.Nx + ix }

// Coords inverts Index.
func (g *Grid) Coords(i int) (ix, iy, iz int) {
	ix = i % g.Nx
	iy = (i / g.Nx) % g.Ny
	iz = i / (g.Nx * g.Ny)
	return
}

// Point returns the position of linear index i.
func (g *Grid) Point(i int) geom.Vec3 {
	ix, iy, iz := g.Coords(i)
	return g.PointAt(ix, iy, iz)
}

// PointAt returns the position of grid node (ix,iy,iz).
func (g *Grid) PointAt(ix, iy, iz int) geom.Vec3 {
	return g.Origin.Add(geom.V(float64(ix)*g.H, float64(iy)*g.H, float64(iz)*g.H))
}

// Batch is a contiguous block of grid points together with the indices of
// the basis functions whose support touches it.
type Batch struct {
	// Indices are the linear grid indices of the batch's points.
	Indices []int
	// Funcs are basis-function indices (into the Set) relevant on this
	// batch; empty batches (no relevant functions) are omitted entirely.
	Funcs []int
}

// Batches partitions the grid into cubes of side points per axis and
// assigns to each the basis functions whose support sphere intersects the
// cube. Batches with no relevant functions are skipped — they contribute
// nothing to densities or matrix elements.
func (g *Grid) Batches(side int, set *basis.Set) []Batch {
	if side <= 0 {
		panic("grid: batch side must be positive")
	}
	bx := (g.Nx + side - 1) / side
	by := (g.Ny + side - 1) / side
	bz := (g.Nz + side - 1) / side
	funcsOf := make([][]int, bx*by*bz)

	clamp := func(v, n int) int {
		if v < 0 {
			return 0
		}
		if v >= n {
			return n - 1
		}
		return v
	}
	for fi := range set.Funcs {
		f := &set.Funcs[fi]
		r := f.SupportRadius()
		// Batch index ranges the support sphere can touch.
		lox := clamp(int((f.Center.X-r-g.Origin.X)/g.H)/side, bx)
		hix := clamp(int((f.Center.X+r-g.Origin.X)/g.H)/side, bx)
		loy := clamp(int((f.Center.Y-r-g.Origin.Y)/g.H)/side, by)
		hiy := clamp(int((f.Center.Y+r-g.Origin.Y)/g.H)/side, by)
		loz := clamp(int((f.Center.Z-r-g.Origin.Z)/g.H)/side, bz)
		hiz := clamp(int((f.Center.Z+r-g.Origin.Z)/g.H)/side, bz)
		for cz := loz; cz <= hiz; cz++ {
			for cy := loy; cy <= hiy; cy++ {
				for cx := lox; cx <= hix; cx++ {
					b := (cz*by+cy)*bx + cx
					funcsOf[b] = append(funcsOf[b], fi)
				}
			}
		}
	}

	var out []Batch
	for cz := 0; cz < bz; cz++ {
		for cy := 0; cy < by; cy++ {
			for cx := 0; cx < bx; cx++ {
				b := (cz*by+cy)*bx + cx
				funcs := funcsOf[b]
				if len(funcs) == 0 {
					continue
				}
				var idx []int
				for iz := cz * side; iz < min((cz+1)*side, g.Nz); iz++ {
					for iy := cy * side; iy < min((cy+1)*side, g.Ny); iy++ {
						for ix := cx * side; ix < min((cx+1)*side, g.Nx); ix++ {
							idx = append(idx, g.Index(ix, iy, iz))
						}
					}
				}
				out = append(out, Batch{Indices: idx, Funcs: funcs})
			}
		}
	}
	return out
}
