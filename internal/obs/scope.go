package obs

import (
	"sync/atomic"
	"time"
)

// Phase enumerates the four DFPT phases of the paper (§V-A): the response
// density matrix P⁽¹⁾, the real-space response density n⁽¹⁾(r), the
// Poisson solve for v⁽¹⁾(r), and the response Hamiltonian H⁽¹⁾. The cycle
// executes them in the order n1, v1, h1, p1 (the Hamiltonian is built from
// the previous iterate's density before the new P⁽¹⁾ is formed).
type Phase int

const (
	PhaseP1 Phase = iota
	PhaseN1
	PhaseV1
	PhaseH1
	NumPhases
)

// PhaseNames are the span and metric names of the phases, indexed by Phase.
var PhaseNames = [NumPhases]string{"p1", "n1", "v1", "h1"}

// Metric names recorded by the instrumented runtime (see DESIGN.md §6).
const (
	MetricFragmentSeconds = "sched_fragment_seconds"
	MetricQueueDepth      = "sched_queue_depth"
	MetricRetries         = "sched_retries_total"
	MetricRequeues        = "sched_requeues_total"
	MetricPanics          = "sched_panics_total"
	MetricDedupWaits      = "sched_dedup_waits_total"
	MetricCacheHits       = "sched_cache_hits_total"
	MetricCacheMisses     = "sched_cache_misses_total"
	MetricStoreGetSeconds = "store_get_seconds"
	MetricStorePutSeconds = "store_put_seconds"
	MetricStoreReplayRecs = "store_replay_records_total"
	MetricSCFIterations   = "scf_iterations"
	MetricSCFSolves       = "scf_solves_total"
	MetricDFPTCycles      = "dfpt_cycles_total"
	// Kernel-pool metrics recorded by internal/par (see DESIGN.md §7).
	MetricParJobs        = "par_jobs_total"
	MetricParInline      = "par_inline_total"
	MetricParWorkersBusy = "par_workers_busy"
	MetricParJobWidth    = "par_job_width"
	// Distributed-runtime metrics recorded by internal/cluster (see
	// DESIGN.md §9). The per-worker and per-RPC series derive from these
	// via Registry.WithLabel ({worker="..."} / {rpc="..."}).
	MetricClusterWorkers      = "cluster_workers_connected"
	MetricClusterLeases       = "cluster_leases_total"
	MetricClusterReassigns    = "cluster_lease_reassigns_total"
	MetricClusterDupResults   = "cluster_duplicate_results_total"
	MetricClusterFrameErrors  = "cluster_frame_errors_total"
	MetricClusterBytesIn      = "cluster_rpc_in_bytes_total"
	MetricClusterBytesOut     = "cluster_rpc_out_bytes_total"
	MetricClusterFrames       = "cluster_rpc_frames_total"
	MetricClusterLocalHits    = "cluster_cache_local_hits_total"
	MetricClusterCoordHits    = "cluster_cache_coord_hits_total"
	MetricClusterFetchHits    = "cluster_cache_fetch_hits_total"
	MetricClusterRecomputes   = "cluster_cache_recomputes_total"
	MetricClusterTaskFails    = "cluster_task_failures_total"
	MetricClusterWorkerFrags  = "cluster_worker_fragments_total"
	MetricClusterLeaseSeconds = "cluster_lease_seconds"
	// Trajectory-engine metrics recorded by internal/traj (see DESIGN.md
	// §10): per-frame diff classification counts, engine recomputes,
	// warm-started references, and frame wall time.
	MetricTrajFrames       = "traj_frames_total"
	MetricTrajMoved        = "traj_moved_total"
	MetricTrajRotated      = "traj_rotated_total"
	MetricTrajReused       = "traj_reused_total"
	MetricTrajRecomputed   = "traj_recomputed_total"
	MetricTrajWarmStarts   = "traj_warm_starts_total"
	MetricTrajFrameSeconds = "traj_frame_seconds"
	// Per-phase duration histograms: dfpt_phase_<name>_seconds.
	metricPhasePrefix = "dfpt_phase_"
	metricPhaseSuffix = "_seconds"
	// Per-kernel shard-drain histograms: par_shard_<kernel>_seconds.
	metricShardPrefix = "par_shard_"
)

// ParShardMetricName returns the drain-duration histogram name of one
// named kernel of the par pool.
func ParShardMetricName(kernel string) string {
	return metricShardPrefix + kernel + metricPhaseSuffix
}

// PhaseMetricName returns the histogram name of one DFPT phase.
func PhaseMetricName(p Phase) string {
	return metricPhasePrefix + PhaseNames[p] + metricPhaseSuffix
}

// Hot holds pre-resolved instruments for the per-cycle and per-solve hot
// paths, so instrumented inner loops never take the registry's map lock.
// PhaseTime histograms observe per-solve phase totals (one sample per DFPT
// ladder direction); exact per-cycle phase distributions come from the
// trace spans via AnalyzeTrace.
type Hot struct {
	PhaseTime  [NumPhases]*Histogram
	DFPTCycles *Counter
	SCFIters   *Histogram
	SCFSolves  *Counter
}

func newHot(r *Registry) *Hot {
	if r == nil {
		return nil
	}
	h := &Hot{
		DFPTCycles: r.Counter(MetricDFPTCycles),
		SCFIters:   r.Histogram(MetricSCFIterations, CountBuckets),
		SCFSolves:  r.Counter(MetricSCFSolves),
	}
	for p := Phase(0); p < NumPhases; p++ {
		h.PhaseTime[p] = r.Histogram(PhaseMetricName(p), DurationBuckets)
	}
	return h
}

// FragStats accumulates one fragment's engine-side cost. The scheduler
// allocates one per fragment and threads a pointer down through the Scope;
// concurrent workers of one leader add to it, so all fields are atomic.
type FragStats struct {
	phaseNS [NumPhases]atomic.Int64
	cycles  atomic.Int64
	scfIter atomic.Int64
}

// AddPhase accumulates one phase duration. Nil-safe.
func (fs *FragStats) AddPhase(p Phase, d time.Duration) {
	if fs != nil {
		fs.phaseNS[p].Add(int64(d))
	}
}

// AddCycle counts one completed DFPT cycle. Nil-safe.
func (fs *FragStats) AddCycle() {
	if fs != nil {
		fs.cycles.Add(1)
	}
}

// AddCycles counts a batch of completed DFPT cycles. Nil-safe.
func (fs *FragStats) AddCycles(n int) {
	if fs != nil {
		fs.cycles.Add(int64(n))
	}
}

// AddSCFIters accumulates SCF iterations. Nil-safe.
func (fs *FragStats) AddSCFIters(n int) {
	if fs != nil {
		fs.scfIter.Add(int64(n))
	}
}

// PhaseTotals returns the per-phase duration sums.
func (fs *FragStats) PhaseTotals() [NumPhases]time.Duration {
	var out [NumPhases]time.Duration
	if fs != nil {
		for p := range out {
			out[p] = time.Duration(fs.phaseNS[p].Load())
		}
	}
	return out
}

// Cycles returns the DFPT cycle count.
func (fs *FragStats) Cycles() int64 {
	if fs == nil {
		return 0
	}
	return fs.cycles.Load()
}

// SCFIters returns the accumulated SCF iteration count.
func (fs *FragStats) SCFIters() int64 {
	if fs == nil {
		return 0
	}
	return fs.scfIter.Load()
}

// Scope carries the observability handles through the engine layers: the
// tracer and registry to record into, the parent span for new spans, the
// track (trace lane) of the executing worker, and the per-fragment stats
// accumulator. Scopes are small values copied freely down the call tree;
// the zero Scope disables every site it reaches.
type Scope struct {
	T     *Tracer
	R     *Registry
	Hot   *Hot
	FS    *FragStats
	Span  *Span
	Track int32
}

// NewScope builds the root scope over a tracer and/or registry (either may
// be nil).
func NewScope(t *Tracer, r *Registry) Scope {
	return Scope{T: t, R: r, Hot: newHot(r)}
}

// Enabled reports whether any instrumentation sink is attached.
func (s Scope) Enabled() bool { return s.T != nil || s.R != nil }

// Tracing reports whether spans are being recorded.
func (s Scope) Tracing() bool { return s.T != nil }

// Begin opens a child span and returns the derived scope (with the new span
// as parent) plus the span itself.
func (s Scope) Begin(name, cat string, args ...Arg) (Scope, *Span) {
	sp := s.T.BeginOn(s.Track, s.Span, name, cat, args...)
	s.Span = sp
	return s, sp
}

// WithSpan re-parents the scope under an existing span.
func (s Scope) WithSpan(sp *Span) Scope {
	s.Span = sp
	return s
}

// WithFrag attaches a fragment-stats accumulator.
func (s Scope) WithFrag(fs *FragStats) Scope {
	s.FS = fs
	return s
}

// WithTrack moves the scope (and spans begun from it) to a trace lane.
func (s Scope) WithTrack(track int32) Scope {
	s.Track = track
	return s
}

// RecordSCF records one SCF solve: a span carrying the iteration count,
// the iteration histogram, and the fragment accumulator.
func (s Scope) RecordSCF(start time.Time, iters int) {
	if s.T != nil {
		s.T.Record(s.Span.ID(), s.Track, "scf", "scf",
			s.T.Since(start), time.Since(start), A("iters", int64(iters)))
	}
	if s.Hot != nil {
		s.Hot.SCFIters.Observe(float64(iters))
		s.Hot.SCFSolves.Inc()
	}
	s.FS.AddSCFIters(iters)
}

// RecordDFPTCycle records one DFPT cycle — a cycle span with exactly four
// phase children in execution order (n1, v1, h1, p1) — plus the phase
// histograms and fragment accumulator. It is the single-sample form of
// RecordDFPTCycles; solvers on the hot path should accumulate locally and
// flush one batch per solve instead.
func (s Scope) RecordDFPTCycle(iter int, start time.Time, durs [NumPhases]time.Duration, total time.Duration) {
	s.RecordDFPTCycles(start, []CycleSample{{Iter: int32(iter), Durs: durs, Total: total}})
}

// RecordDFPTCycles records one solve's worth of DFPT cycles in a single
// batch: the phase histograms observe the solve's per-phase totals, the
// fragment accumulator gains the same totals plus the cycle count, and the
// tracer stores one compact 64-byte record per cycle under one shard lock
// (expanded to the cycle span and its four phase children at Snapshot).
// base is the solve's wall-clock anchor; sample offsets are relative to it.
// Keeping the per-cycle cost to a local append is what holds tracing
// overhead under the 3% budget on µs-scale gamma-mode cycles.
func (s Scope) RecordDFPTCycles(base time.Time, samples []CycleSample) {
	if len(samples) == 0 {
		return
	}
	var tot [NumPhases]time.Duration
	for i := range samples {
		for p := Phase(0); p < NumPhases; p++ {
			tot[p] += samples[i].Durs[p]
		}
	}
	if s.Hot != nil {
		for p := Phase(0); p < NumPhases; p++ {
			s.Hot.PhaseTime[p].Observe(tot[p].Seconds())
		}
		s.Hot.DFPTCycles.Add(int64(len(samples)))
	}
	if s.FS != nil {
		for p := Phase(0); p < NumPhases; p++ {
			s.FS.AddPhase(p, tot[p])
		}
		s.FS.AddCycles(len(samples))
	}
	s.T.recordCycles(s.Span.ID(), s.Track, base, samples)
}
