package obs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentHammer drives the registry and the span recorder from 64
// goroutines while other goroutines snapshot both concurrently, then
// checks the final totals equal the sum of recorded events exactly. Run
// under -race in CI, this is the data-race proof for the whole layer.
func TestConcurrentHammer(t *testing.T) {
	const (
		goroutines = 64
		events     = 500
	)
	tr := NewTracer()
	tr.SetMaxSpans(int64(goroutines*events*6) + 10)
	reg := NewRegistry()
	sc := NewScope(tr, reg)
	ctr := reg.Counter("hammer_total")
	gauge := reg.Gauge("hammer_gauge")
	hist := reg.Histogram("hammer_seconds", DurationBuckets)

	var stop atomic.Bool
	var snapshots sync.WaitGroup
	for i := 0; i < 4; i++ {
		snapshots.Add(1)
		go func() {
			defer snapshots.Done()
			for !stop.Load() {
				snap := reg.Snapshot()
				if snap.Counters["hammer_total"] < 0 {
					t.Error("counter went negative")
					return
				}
				_ = tr.Snapshot()
				_ = tr.Len()
			}
		}()
	}

	var workers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			fs := &FragStats{}
			wsc := sc.WithTrack(int32(g)).WithFrag(fs)
			for i := 0; i < events; i++ {
				ctr.Inc()
				gauge.Set(int64(i))
				hist.Observe(float64(i) * 1e-6)
				child, sp := wsc.Begin("work", "test", A("g", int64(g)))
				child.RecordDFPTCycle(i, time.Now(), [NumPhases]time.Duration{
					PhaseP1: time.Nanosecond, PhaseN1: time.Nanosecond,
					PhaseV1: time.Nanosecond, PhaseH1: time.Nanosecond,
				}, 4*time.Nanosecond)
				sp.End()
			}
			if fs.Cycles() != events {
				t.Errorf("goroutine %d: fragment cycles = %d, want %d", g, fs.Cycles(), events)
			}
		}(g)
	}
	workers.Wait()
	stop.Store(true)
	snapshots.Wait()

	snap := reg.Snapshot()
	if got := snap.Counters["hammer_total"]; got != goroutines*events {
		t.Fatalf("counter total = %d, want %d", got, goroutines*events)
	}
	h := snap.Hists["hammer_seconds"]
	if h.Count != goroutines*events {
		t.Fatalf("histogram count = %d, want %d", h.Count, goroutines*events)
	}
	var bucketSum int64
	for _, c := range h.Counts {
		bucketSum += c
	}
	if bucketSum != h.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, h.Count)
	}
	if got := snap.Counters[MetricDFPTCycles]; got != goroutines*events {
		t.Fatalf("cycle counter = %d, want %d", got, goroutines*events)
	}
	phaseCount := snap.Hists[PhaseMetricName(PhaseP1)].Count
	if phaseCount != goroutines*events {
		t.Fatalf("phase histogram count = %d, want %d", phaseCount, goroutines*events)
	}

	// Spans: one "work" + one cycle + four phases per event, none dropped.
	spans := tr.Snapshot()
	want := goroutines * events * 6
	if len(spans) != want {
		t.Fatalf("recorded %d spans, want %d (dropped %d)", len(spans), want, tr.Dropped())
	}
	counts := map[string]int{}
	for i := range spans {
		counts[spans[i].Name]++
	}
	if counts["work"] != goroutines*events || counts["dfpt.cycle"] != goroutines*events ||
		counts["p1"] != goroutines*events {
		t.Fatalf("span name counts = %v", counts)
	}
	// Every span id must be unique (the recorder's ids are the nesting
	// backbone of the trace format).
	seen := make(map[uint64]bool, len(spans))
	for i := range spans {
		if seen[spans[i].ID] {
			t.Fatalf("duplicate span id %d", spans[i].ID)
		}
		seen[spans[i].ID] = true
	}
}
