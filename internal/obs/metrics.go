package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. All methods are nil-safe.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-anywhere instantaneous metric. All methods are nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram. Bounds are inclusive upper edges
// in ascending order; one implicit overflow bucket catches the rest.
// Observe is wait-free (atomic adds only), so 64 workers can hammer one
// histogram while another goroutine snapshots it.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 sum, CAS-accumulated
}

// NewHistogram builds a histogram with the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ExpBuckets returns n bucket bounds growing geometrically from start.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets is the default latency layout: 10 µs to ~3 min in ×2.5
// steps — wide enough for a 3-atom water SCF and a 68-atom fragment's full
// displacement loop on one scale.
var DurationBuckets = ExpBuckets(10e-6, 2.5, 18)

// CountBuckets is the default layout for iteration-count metrics.
var CountBuckets = ExpBuckets(1, 2, 14)

// Registry is a named collection of metrics. Get-or-create lookups take a
// mutex, so hot paths should resolve their instruments once (see Hot);
// the instruments themselves are wait-free. All methods are nil-safe: a
// nil registry returns nil instruments whose methods no-op.
//
// A Registry value is a *view* over shared storage: WithLabel derives a view
// that appends a {key="value"} label set to every instrument name it
// resolves, while recording into the same underlying store. A multi-tenant
// service hands each job a labeled view of the daemon registry, so one
// /metrics snapshot carries per-job series (sched_cache_hits_total{job="7"})
// next to the process-wide ones.
type Registry struct {
	st     *regState
	labels string // rendered label suffix, e.g. `{job="7",tenant="a"}`
}

// regState is the storage shared by a registry and all its label views.
type regState struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{st: &regState{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}}
}

// WithLabel returns a view of r that resolves every instrument under
// name{key="value"} — appended after any labels the view already carries —
// recording into the same shared storage as r. Label views are cheap and
// safe to create concurrently; a nil registry stays nil-safe.
func (r *Registry) WithLabel(key, value string) *Registry {
	if r == nil {
		return nil
	}
	set := key + `="` + value + `"`
	labels := "{" + set + "}"
	if r.labels != "" { // splice into the existing set: {a="b"} → {a="b",c="d"}
		labels = r.labels[:len(r.labels)-1] + "," + set + "}"
	}
	return &Registry{st: r.st, labels: labels}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil || r.st == nil {
		return nil
	}
	name += r.labels
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	c := r.st.counters[name]
	if c == nil {
		c = &Counter{}
		r.st.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil || r.st == nil {
		return nil
	}
	name += r.labels
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	g := r.st.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.st.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later callers inherit the original bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil || r.st == nil {
		return nil
	}
	name += r.labels
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	h := r.st.hists[name]
	if h == nil {
		h = NewHistogram(bounds)
		r.st.hists[name] = h
	}
	return h
}

// HistSnapshot is a point-in-time copy of one histogram.
type HistSnapshot struct {
	Bounds []float64
	Counts []int64 // len(Bounds)+1; last is the overflow bucket
	Count  int64
	Sum    float64
}

// Quantile returns the q-quantile (0 < q < 1) estimated by linear
// interpolation inside the containing bucket. The overflow bucket reports
// its lower edge. An empty histogram reports 0.
func (h HistSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	var cum int64
	for i, c := range h.Counts {
		if float64(cum+c) >= rank {
			if i == len(h.Bounds) { // overflow bucket
				return h.Bounds[len(h.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			hi := h.Bounds[i]
			if c == 0 {
				return hi
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Mean returns the exact mean of all observations.
func (h HistSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot is a point-in-time copy of a whole registry.
type Snapshot struct {
	At       time.Time
	Counters map[string]int64
	Gauges   map[string]int64
	Hists    map[string]HistSnapshot
}

// Snapshot copies every metric at one instant — including the series of
// every label view sharing this registry's storage. Counters and histogram
// totals are each internally consistent (atomic loads); the snapshot as a
// whole is not a global barrier, which is fine for monitoring.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{At: time.Now(), Counters: map[string]int64{}, Gauges: map[string]int64{}, Hists: map[string]HistSnapshot{}}
	if r == nil || r.st == nil {
		return s
	}
	r.st.mu.Lock()
	counters := make(map[string]*Counter, len(r.st.counters))
	for k, v := range r.st.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.st.gauges))
	for k, v := range r.st.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.st.hists))
	for k, v := range r.st.hists {
		hists[k] = v
	}
	r.st.mu.Unlock()
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		hs := HistSnapshot{Bounds: h.bounds, Counts: make([]int64, len(h.counts))}
		for i := range h.counts {
			c := h.counts[i].Load()
			hs.Counts[i] = c
			hs.Count += c
		}
		hs.Sum = math.Float64frombits(h.sumBits.Load())
		s.Hists[k] = hs
	}
	return s
}

// WriteText dumps the snapshot in a flat, grep-friendly text form:
//
//	<name> <value>                      counters and gauges
//	<name>_count / _sum / _p50/_p95/_p99  histograms
//
// Names are sorted, so successive dumps diff cleanly.
func (s Snapshot) WriteText(w io.Writer) error {
	var names []string
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, s.Counters[k]); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, s.Gauges[k]); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Hists[k]
		_, err := fmt.Fprintf(w, "%s_count %d\n%s_sum %.9g\n%s_p50 %.6g\n%s_p95 %.6g\n%s_p99 %.6g\n",
			k, h.Count, k, h.Sum, k, h.Quantile(0.50), k, h.Quantile(0.95), k, h.Quantile(0.99))
		if err != nil {
			return err
		}
	}
	return nil
}
